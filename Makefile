# firestarter-go — common tasks

GO ?= go

.PHONY: all build test vet bench bench-smoke obsv-smoke chaos-smoke eval examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate every table and figure of the paper (plus extensions).
eval:
	$(GO) run ./cmd/firebench

# The same experiments as Go benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# A fast end-to-end pass over every experiment with a reduced workload —
# CI smoke coverage for the full firebench surface, parallel harness on.
bench-smoke:
	$(GO) run ./cmd/firebench -requests 40 -faults 4 -concurrency 2 -parallel 4 > /dev/null
	@echo bench-smoke OK

# End-to-end observability smoke: drive the hardened nginx analog with
# spans, metrics and the guest profiler exported as JSONL, then lint the
# three files (schema + monotonic cycles + exactly one profile total).
# The Observe run itself fails if metrics totals don't reconcile with the
# runtime counters or profiler attribution doesn't sum to machine cycles.
obsv-smoke:
	$(GO) run ./cmd/firebench -experiment nginx -requests 60 \
		-trace-out /tmp/fire-trace.jsonl \
		-metrics-out /tmp/fire-metrics.jsonl \
		-profile /tmp/fire-profile.jsonl > /dev/null
	$(GO) run ./cmd/obsvlint -schema trace /tmp/fire-trace.jsonl
	$(GO) run ./cmd/obsvlint -schema metrics /tmp/fire-metrics.jsonl
	$(GO) run ./cmd/obsvlint -schema profile /tmp/fire-profile.jsonl
	@echo obsv-smoke OK

# Chaos soak smoke: a small seeded fault sweep (fail-stop + fail-silent,
# all five apps) under the full recovery escalation ladder, with the
# campaign-global span log linted. The campaign itself fails if any
# incarnation death is not attributed to a ladder rung or the stats /
# metrics / span accounting surfaces disagree.
chaos-smoke:
	$(GO) run ./cmd/firebench -experiment chaos -requests 30 -faults 2 \
		-concurrency 2 -parallel 4 \
		-trace-out /tmp/fire-chaos.jsonl > /dev/null
	$(GO) run ./cmd/obsvlint -schema trace /tmp/fire-chaos.jsonl
	@echo chaos-smoke OK

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/webserver
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/customapp

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
