# firestarter-go — common tasks

GO ?= go

.PHONY: all build test vet bench bench-smoke obsv-smoke chaos-smoke trace-smoke fleet-smoke openloop-smoke domains-smoke diff-smoke replay-smoke eval examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate every table and figure of the paper (plus extensions).
eval:
	$(GO) run ./cmd/firebench

# The same experiments as Go benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# A fast end-to-end pass over every experiment with a reduced workload —
# CI smoke coverage for the full firebench surface, parallel harness on.
bench-smoke:
	$(GO) run ./cmd/firebench -requests 40 -faults 4 -concurrency 2 -parallel 4 > /dev/null
	@echo bench-smoke OK

# End-to-end observability smoke: drive the hardened nginx analog with
# spans, metrics and the guest profiler exported as JSONL, then lint the
# three files (schema + monotonic cycles + exactly one profile total).
# The Observe run itself fails if metrics totals don't reconcile with the
# runtime counters or profiler attribution doesn't sum to machine cycles.
obsv-smoke:
	$(GO) run ./cmd/firebench -experiment nginx -requests 60 \
		-trace-out /tmp/fire-trace.jsonl \
		-metrics-out /tmp/fire-metrics.jsonl \
		-profile /tmp/fire-profile.jsonl > /dev/null
	$(GO) run ./cmd/obsvlint -schema trace /tmp/fire-trace.jsonl
	$(GO) run ./cmd/obsvlint -schema metrics /tmp/fire-metrics.jsonl
	$(GO) run ./cmd/obsvlint -schema profile /tmp/fire-profile.jsonl
	@echo obsv-smoke OK

# Chaos soak smoke: a small seeded fault sweep (fail-stop + fail-silent,
# all five apps) under the full recovery escalation ladder, with the
# campaign-global span log linted. The campaign itself fails if any
# incarnation death is not attributed to a ladder rung or the stats /
# metrics / span accounting surfaces disagree.
chaos-smoke:
	$(GO) run ./cmd/firebench -experiment chaos -requests 30 -faults 2 \
		-concurrency 2 -parallel 4 \
		-trace-out /tmp/fire-chaos.jsonl > /dev/null
	$(GO) run ./cmd/obsvlint -schema trace /tmp/fire-chaos.jsonl
	@echo chaos-smoke OK

# Request-tracing smoke: the full round trip. A chaos soak exports the
# campaign-global span log; obsvlint validates schema AND trace-ID
# causality (every req-start reaches exactly one terminal, no orphaned
# trace references); firetrace must pass -strict and emit the analysis,
# Chrome trace and folded stacks; then the chaos run and an nginx
# observability run are repeated and every artifact must compare
# byte-for-byte — the determinism contract behind all trace tooling.
trace-smoke:
	$(GO) build -o /tmp/firebench-bin ./cmd/firebench
	$(GO) build -o /tmp/obsvlint-bin ./cmd/obsvlint
	$(GO) build -o /tmp/firetrace-bin ./cmd/firetrace
	/tmp/firebench-bin -experiment chaos -requests 30 -faults 2 \
		-concurrency 2 -parallel 4 \
		-trace-out /tmp/fire-trace-smoke.jsonl > /dev/null
	/tmp/obsvlint-bin -schema trace -causality /tmp/fire-trace-smoke.jsonl
	/tmp/firebench-bin -experiment nginx -requests 60 \
		-trace-out /tmp/fire-trace-nginx.jsonl \
		-profile /tmp/fire-trace-prof.jsonl > /dev/null
	/tmp/obsvlint-bin -schema trace -causality /tmp/fire-trace-nginx.jsonl
	/tmp/firetrace-bin -strict -breakdown -timeline 3 \
		-chrome /tmp/fire-trace-chrome.json \
		-folded /tmp/fire-trace-folded.txt -profile /tmp/fire-trace-prof.jsonl \
		/tmp/fire-trace-smoke.jsonl > /tmp/fire-trace-report.txt
	/tmp/firebench-bin -experiment chaos -requests 30 -faults 2 \
		-concurrency 2 -parallel 4 \
		-trace-out /tmp/fire-trace-smoke2.jsonl > /dev/null
	cmp /tmp/fire-trace-smoke.jsonl /tmp/fire-trace-smoke2.jsonl
	cp /tmp/fire-trace-smoke2.jsonl /tmp/fire-trace-smoke.jsonl
	/tmp/firetrace-bin -strict -breakdown -timeline 3 \
		-chrome /tmp/fire-trace-chrome2.json \
		/tmp/fire-trace-smoke.jsonl > /tmp/fire-trace-report2.txt
	cmp /tmp/fire-trace-report.txt /tmp/fire-trace-report2.txt
	cmp /tmp/fire-trace-chrome.json /tmp/fire-trace-chrome2.json
	@echo trace-smoke OK

# Fleet tier smoke: the replica-scaling experiment (chaos matrix behind
# the deterministic L4 balancer) at 1 and 2 replicas, serial vs
# -parallel 4 — the rendered table and the experiment-global span log
# must compare byte-for-byte, and the span log must pass the trace
# schema AND trace-ID causality (every balancer-level req-start reaches
# exactly one terminal across fail-overs and drain hand-offs). The
# experiment itself fails on any stats/metrics/span reconciliation
# mismatch or silent incarnation death.
fleet-smoke:
	$(GO) build -o /tmp/firebench-bin ./cmd/firebench
	$(GO) build -o /tmp/obsvlint-bin ./cmd/obsvlint
	/tmp/firebench-bin -experiment fleet -requests 30 -concurrency 2 \
		-replicas 1,2 \
		-trace-out /tmp/fire-fleet.jsonl > /tmp/fire-fleet-report.txt
	/tmp/obsvlint-bin -schema trace -causality /tmp/fire-fleet.jsonl
	/tmp/firebench-bin -experiment fleet -requests 30 -concurrency 2 \
		-replicas 1,2 -parallel 4 \
		-trace-out /tmp/fire-fleet2.jsonl > /tmp/fire-fleet-report2.txt
	cmp /tmp/fire-fleet-report.txt /tmp/fire-fleet-report2.txt
	cmp /tmp/fire-fleet.jsonl /tmp/fire-fleet2.jsonl
	@echo fleet-smoke OK

# Open-loop workload smoke: the offered-load sweep (Poisson arrivals at
# fixed multiples of the calibrated service rate, 20k-client population
# with churn, slow readers, fragmentation and pipelining), serial vs
# -parallel 4 — the rendered latency-vs-load ladder and the
# experiment-global span log must compare byte-for-byte, and the span
# log must pass the trace schema AND trace-ID causality (every offered
# arrival reaches exactly one terminal, shed arrivals included). The
# experiment itself fails on any stats/metrics/span reconciliation
# mismatch or silent incarnation death.
openloop-smoke:
	$(GO) build -o /tmp/firebench-bin ./cmd/firebench
	$(GO) build -o /tmp/obsvlint-bin ./cmd/obsvlint
	/tmp/firebench-bin -experiment openloop -requests 60 \
		-trace-out /tmp/fire-openloop.jsonl > /tmp/fire-openloop-report.txt
	/tmp/obsvlint-bin -schema trace -causality /tmp/fire-openloop.jsonl
	/tmp/firebench-bin -experiment openloop -requests 60 -parallel 4 \
		-trace-out /tmp/fire-openloop2.jsonl > /tmp/fire-openloop-report2.txt
	cmp /tmp/fire-openloop-report.txt /tmp/fire-openloop-report2.txt
	cmp /tmp/fire-openloop.jsonl /tmp/fire-openloop2.jsonl
	@echo openloop-smoke OK

# Heap-domain smoke: the undo-vs-discard ablation plus the fail-silent
# containment matrix on the arena-pooled servers, serial vs -parallel 4
# — the rendered tables and the containment span log must compare
# byte-for-byte, and the span log must pass the trace schema AND
# causality, including the domain ordering rules (a discard only after a
# crash, a switch before any non-zero-domain discard, every violation
# resolved by its crash). The experiment itself fails on any cross-
# request taint leak or stats/metrics/span reconciliation mismatch.
domains-smoke:
	$(GO) build -o /tmp/firebench-bin ./cmd/firebench
	$(GO) build -o /tmp/obsvlint-bin ./cmd/obsvlint
	/tmp/firebench-bin -experiment domains -requests 60 -faults 4 \
		-concurrency 2 \
		-trace-out /tmp/fire-domains.jsonl > /tmp/fire-domains-report.txt
	/tmp/obsvlint-bin -schema trace -causality /tmp/fire-domains.jsonl
	/tmp/firebench-bin -experiment domains -requests 60 -faults 4 \
		-concurrency 2 -parallel 4 \
		-trace-out /tmp/fire-domains2.jsonl > /tmp/fire-domains-report2.txt
	cmp /tmp/fire-domains-report.txt /tmp/fire-domains-report2.txt
	cmp /tmp/fire-domains.jsonl /tmp/fire-domains2.jsonl
	@echo domains-smoke OK

# Differential-execution smoke: the default firebench suite under the
# tree-walking interpreter and the compiled bytecode backend must render
# byte-for-byte identical output — the backend equivalence contract
# (docs/RUNTIME.md "Bytecode backend") checked end to end.
diff-smoke:
	$(GO) build -o /tmp/firebench-bin ./cmd/firebench
	/tmp/firebench-bin -backend tree -requests 40 -faults 4 \
		-concurrency 2 -parallel 4 > /tmp/fire-diff-tree.txt
	/tmp/firebench-bin -backend bytecode -requests 40 -faults 4 \
		-concurrency 2 -parallel 4 > /tmp/fire-diff-bytecode.txt
	cmp /tmp/fire-diff-tree.txt /tmp/fire-diff-bytecode.txt
	@echo diff-smoke OK

# Flight-recorder smoke: a chaos campaign with -record-out captures a
# replay manifest for every incarnation that ended unrecovered or with
# the breaker open; each one must then (a) re-execute to completion
# with every span verified against the recorded hash chain and the
# replayed stream byte-identical to the companion file, (b) halt at the
# recorded faulting instruction under the default -stop-at-cycle -1,
# and (c) survive a -reverse-step (re-execution to the boundary one
# retired instruction earlier, cross-checked against the checkpoint
# ring). Any divergence — one span, one digest — fails the build.
replay-smoke:
	$(GO) build -o /tmp/firebench-bin ./cmd/firebench
	$(GO) build -o /tmp/firetrace-bin ./cmd/firetrace
	rm -rf /tmp/fire-replay /tmp/fire-replay2
	/tmp/firebench-bin -experiment chaos -requests 24 -faults 1 \
		-concurrency 2 -seed 3 -parallel 4 \
		-record-out /tmp/fire-replay -fingerprint > /dev/null
	/tmp/firebench-bin -experiment chaos -requests 40 -faults 2 \
		-concurrency 2 -parallel 4 \
		-record-out /tmp/fire-replay2 -fingerprint > /dev/null
	ls /tmp/fire-replay/*.json /tmp/fire-replay2/*.json > /dev/null
	for m in /tmp/fire-replay/*.json /tmp/fire-replay2/*.json; do \
		/tmp/firetrace-bin -manifest $$m > /dev/null || exit 1; \
		/tmp/firetrace-bin -replay $$m -stop-at-cycle 0 \
			-replay-spans $$m.replayed.jsonl > /dev/null || exit 1; \
		cmp $$m.replayed.jsonl $${m%.json}.spans.jsonl || exit 1; \
		/tmp/firetrace-bin -replay $$m > /dev/null || exit 1; \
		/tmp/firetrace-bin -replay $$m -reverse-step -ckpt-every 1000 \
			> /dev/null || exit 1; \
	done
	@echo replay-smoke OK

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/webserver
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/customapp

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
