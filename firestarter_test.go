package firestarter_test

import (
	"strings"
	"testing"

	firestarter "github.com/firestarter-go/firestarter"
)

const crashySrc = `
int handle() {
	char *p = malloc(64);
	if (!p) {
		puts("request aborted");
		return -1;
	}
	int *q = NULL;
	*q = 1;
	free(p);
	return 0;
}
int main() {
	int failures = 0;
	for (int i = 0; i < 3; i++) {
		if (handle() == -1) { failures++; }
	}
	return failures;
}`

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := firestarter.Compile("int main() { return x; }"); err == nil {
		t.Fatal("compile of invalid source succeeded")
	}
	if _, err := firestarter.Compile("int main() { return 0; }"); err != nil {
		t.Fatalf("compile of valid source failed: %v", err)
	}
}

func TestMustCompilePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	firestarter.MustCompile("int main() { return x; }")
}

func TestHardenedServerRecovers(t *testing.T) {
	prog := firestarter.MustCompile(crashySrc)
	srv, err := firestarter.NewServer(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := srv.Run(0)
	if out.Kind != firestarter.OutExited || srv.ExitCode() != 3 {
		t.Fatalf("outcome = %v code=%d, want 3 handled failures", out.Kind, srv.ExitCode())
	}
	st := srv.Stats()
	if st.Injections != 3 {
		t.Errorf("injections = %d, want 3", st.Injections)
	}
	if strings.Count(srv.Stdout(), "request aborted") != 3 {
		t.Errorf("stdout = %q", srv.Stdout())
	}
}

func TestVanillaServerDies(t *testing.T) {
	prog := firestarter.MustCompile(crashySrc)
	srv, err := firestarter.NewServer(prog, firestarter.WithoutProtection())
	if err != nil {
		t.Fatal(err)
	}
	out := srv.Run(0)
	if out.Kind != firestarter.OutTrapped {
		t.Fatalf("vanilla outcome = %v, want trapped", out.Kind)
	}
	if srv.Protected() {
		t.Error("Protected() = true for vanilla server")
	}
}

func TestModesExposeDifferentBehaviour(t *testing.T) {
	prog := firestarter.MustCompile(`
int main() {
	char *p = malloc(64);
	if (!p) { return 1; }
	p[0] = 1;
	free(p);
	return 0;
}`)
	stm, err := firestarter.NewServer(prog, firestarter.WithMode(firestarter.ModeSTMOnly))
	if err != nil {
		t.Fatal(err)
	}
	stm.Run(0)
	if st := stm.Stats(); st.HTMBegins != 0 || st.STMBegins == 0 {
		t.Errorf("STM-only stats = %+v", st)
	}
}

func TestBuiltinAppsListedAndServing(t *testing.T) {
	all := firestarter.BuiltinApps()
	if len(all) != 5 {
		t.Fatalf("BuiltinApps = %d, want 5", len(all))
	}
	if _, err := firestarter.Builtin("nope"); err == nil {
		t.Error("Builtin(nope) succeeded")
	}
	app, err := firestarter.Builtin("nginx")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := firestarter.NewAppServer(app)
	if err != nil {
		t.Fatal(err)
	}
	res := srv.DriveWorkload(app.Protocol, app.Port, 30, 4, 1)
	if res.ServerDied || res.Completed < 25 {
		t.Fatalf("workload result = %+v", res)
	}
	if res.CyclesPerRequest() <= 0 {
		t.Error("no throughput metric")
	}
}

func TestWithFaultAndRecovery(t *testing.T) {
	app, err := firestarter.Builtin("nginx")
	if err != nil {
		t.Fatal(err)
	}
	faults, err := firestarter.PlanFaults(app, firestarter.FailStop, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) == 0 {
		t.Fatal("no faults planned")
	}
	// One fault per experiment. Faults landing in irrecoverable regions
	// (after write/send) legitimately kill the server — the paper's
	// Table IV is below 100% for the same reason — but a healthy
	// recovery surface must recover a majority.
	recovered, died := 0, 0
	for _, f := range faults {
		srv, err := firestarter.NewAppServer(app, firestarter.WithFault(f))
		if err != nil {
			t.Fatal(err)
		}
		res := srv.DriveWorkload(app.Protocol, app.Port, 40, 4, 1)
		if res.ServerDied {
			died++
			continue
		}
		if srv.Stats().Injections > 0 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatalf("no fault recovered via injection (%d died, %d planned)", died, len(faults))
	}
	t.Logf("recovered %d, died %d of %d faults", recovered, died, len(faults))
}

func TestAnalyzeSites(t *testing.T) {
	prog := firestarter.MustCompile(`
int main() {
	char buf[8];
	int fd = open("/f", 0);
	if (fd < 0) { return 1; }
	int n = read(fd, buf, 8);
	if (n < 0) { return 2; }
	write(1, buf, n);
	close(fd);
	return 0;
}`)
	gates, embeds, breaks := firestarter.AnalyzeSites(prog)
	if gates != 2 || breaks != 1 || embeds != 1 {
		t.Errorf("sites = %d/%d/%d, want 2 gates (open,read), 1 embed (close), 1 break (write)", gates, embeds, breaks)
	}
}

func TestSetupHookRuns(t *testing.T) {
	prog := firestarter.MustCompile(`
int main() {
	char path[4];
	path[0] = '/'; path[1] = 'x'; path[2] = 0;
	int fd = open(path, 0);
	if (fd < 0) { return 1; }
	int st[2];
	fstat(fd, st);
	close(fd);
	return st[0];
}`)
	srv, err := firestarter.NewServer(prog, firestarter.WithSetup(func(o *firestarter.OS) {
		o.FS().Add("/x", []byte("12345"))
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(0)
	if srv.ExitCode() != 5 {
		t.Fatalf("exit = %d, want 5 (file size)", srv.ExitCode())
	}
}

func TestWithMaskedWritesEnlargesSurface(t *testing.T) {
	// A checked socket write becomes a recovery gate under the masked
	// model: a persistent crash right after it is survivable.
	src := `
int main() {
	int s = socket();
	if (s < 0) { return 1; }
	if (bind(s, 80) == -1) { return 2; }
	if (listen(s, 4) == -1) { return 3; }
	int fd = -1;
	while (fd < 0) { fd = accept(s); }
	char buf[8];
	buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
	int w = write(fd, buf, 2);
	if (w < 0) {
		puts("send failed, dropping client");
		close(fd);
		return 70;
	}
	int *q = NULL;
	*q = 1;        // persistent crash after the (masked) write
	return 0;
}`
	prog := firestarter.MustCompile(src)

	run := func(opts ...firestarter.Option) (*firestarter.Server, firestarter.Outcome) {
		srv, err := firestarter.NewServer(prog, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if out := srv.Run(30_000); out.Kind != firestarter.OutStepLimit {
			t.Fatalf("setup run = %v", out.Kind)
		}
		c := srv.Connect(80)
		if c == nil {
			t.Fatal("connect failed")
		}
		out := srv.Run(0)
		return srv, out
	}

	// Conservative model: the crash lands after an irrecoverable write →
	// fatal.
	if _, out := run(); out.Kind != firestarter.OutTrapped {
		t.Fatalf("conservative model outcome = %v, want trapped", out.Kind)
	}

	// Masked model: the write is a gate; the crash diverts into the
	// "send failed" path, with the network effect retracted.
	srv, out := run(firestarter.WithMaskedWrites())
	if out.Kind != firestarter.OutExited || srv.ExitCode() != 70 {
		t.Fatalf("masked model: %v code=%d, want exit 70", out.Kind, srv.ExitCode())
	}
	if srv.Stats().Injections != 1 {
		t.Errorf("injections = %d, want 1", srv.Stats().Injections)
	}
	if !strings.Contains(srv.Stdout(), "send failed") {
		t.Errorf("stdout = %q", srv.Stdout())
	}
}

func TestFacadeAccessorsAndOptions(t *testing.T) {
	prog := firestarter.MustCompile(`
int main() {
	char *p = malloc(32);
	if (!p) { return 1; }
	memset(p, 1, 32);
	free(p);
	return 0;
}`)
	if prog.IR() == nil || prog.InstrCount() == 0 {
		t.Fatal("Program accessors broken")
	}
	srv, err := firestarter.NewServer(prog,
		firestarter.WithThreshold(0.04),
		firestarter.WithSampleSize(8),
		firestarter.WithRetries(2),
		firestarter.WithStickyDivert(),
		firestarter.WithInterrupts(100_000, 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if srv.OS() == nil || srv.Machine() == nil || srv.Runtime() == nil {
		t.Fatal("Server accessors broken")
	}
	out := srv.Run(0)
	if out.Kind != firestarter.OutExited || srv.ExitCode() != 0 {
		t.Fatalf("run: %v code=%d", out.Kind, srv.ExitCode())
	}
	if srv.Cycles() <= 0 {
		t.Error("Cycles not accounted")
	}
	if st := srv.HTMStats(); st.Begins == 0 {
		t.Errorf("HTMStats = %+v, want begins > 0", st)
	}
	// Vanilla server returns zero-value stats, not panics.
	v, err := firestarter.NewServer(prog, firestarter.WithoutProtection())
	if err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.GateExecs != 0 {
		t.Errorf("vanilla stats = %+v", st)
	}
	if st := v.HTMStats(); st.Begins != 0 {
		t.Errorf("vanilla HTM stats = %+v", st)
	}
}

func TestFaultInBlockCalling(t *testing.T) {
	app, err := firestarter.Builtin("nginx")
	if err != nil {
		t.Fatal(err)
	}
	f, err := firestarter.FaultInBlockCalling(app, "serve_ssi", "memcpy")
	if err != nil {
		t.Fatal(err)
	}
	if f.Func != "serve_ssi" || f.Kind != firestarter.FailStop {
		t.Fatalf("fault = %+v", f)
	}
	if _, err := firestarter.FaultInBlockCalling(app, "nope", "memcpy"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := firestarter.FaultInBlockCalling(app, "serve_ssi", "fork"); err == nil {
		t.Error("absent libcall accepted")
	}
	// The fault actually recovers end to end (the §VI-F webserver example
	// in miniature).
	srv, err := firestarter.NewAppServer(app, firestarter.WithFault(f))
	if err != nil {
		t.Fatal(err)
	}
	if out := srv.Run(0); out.Kind != firestarter.OutBlocked {
		t.Fatalf("boot: %v", out.Kind)
	}
	c := srv.Connect(app.Port)
	c.ClientDeliver([]byte("GET /ssi HTTP/1.1\r\n\r\n"))
	if out := srv.Run(0); out.Kind == firestarter.OutTrapped {
		t.Fatal("server died")
	}
	if srv.Stats().Injections == 0 {
		t.Error("no injection")
	}
}
