// Kvstore: survivability campaign on the Redis analog.
//
// The example reproduces the paper's Table IV methodology on one server:
// profile the key-value store under its SET/GET workload, plant one
// persistent fail-stop fault per experiment into the non-critical handler
// code, and measure how many of the triggered crashes FIRestarter converts
// into handled errors while the store keeps serving.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"os"

	firestarter "github.com/firestarter-go/firestarter"
)

func main() {
	app, err := firestarter.Builtin("redis")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	faults, err := firestarter.PlanFaults(app, firestarter.FailStop, 10, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("planned %d persistent fail-stop faults in profiled non-critical blocks\n\n", len(faults))

	recovered, died, silent := 0, 0, 0
	for _, f := range faults {
		srv, err := firestarter.NewAppServer(app, firestarter.WithFault(f))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := srv.DriveWorkload(app.Protocol, app.Port, 80, 4, 7)
		st := srv.Stats()
		switch {
		case res.ServerDied:
			died++
			fmt.Printf("  %-40s DIED (trap %d)\n", f, res.TrapCode)
		case st.Injections > 0:
			recovered++
			fmt.Printf("  %-40s RECOVERED (%d crashes rolled back, %d injections, %d/%d requests ok)\n",
				f, st.Crashes, st.Injections, res.Completed, res.Completed+res.BadResp)
		default:
			silent++
			fmt.Printf("  %-40s not triggered by this workload\n", f)
		}
	}

	fmt.Printf("\nsurvivability: %d recovered, %d died, %d untriggered (of %d)\n",
		recovered, died, silent, len(faults))
	if recovered == 0 {
		os.Exit(1)
	}
}
