// Quickstart: harden a tiny program with a persistent null-pointer bug and
// watch FIRestarter convert the crash into an error the program already
// handles.
//
// The program allocates a buffer per "request"; a residual bug dereferences
// NULL right after a successful allocation. Unprotected, the first request
// kills the process. Hardened, FIRestarter rolls back to the checkpoint
// after malloc, injects ENOMEM into it, and the program's own out-of-memory
// path absorbs the failure — for every request.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	firestarter "github.com/firestarter-go/firestarter"
)

const src = `
int handled = 0;

int handle_request(int n) {
	char *buf = malloc(256);
	if (!buf) {
		// The error handling FIRestarter piggybacks on (§V of the paper).
		puts("request failed: out of memory, degrading gracefully");
		return -1;
	}
	memset(buf, 0, 256);
	if (n == 2) {
		int *p = NULL;
		*p = 42;          // the residual bug: crashes on request #2, forever
	}
	buf[0] = 'o'; buf[1] = 'k'; buf[2] = 0;
	puts(buf);
	free(buf);
	handled++;
	return 0;
}

int main() {
	int failures = 0;
	for (int i = 0; i < 5; i++) {
		if (handle_request(i) == -1) { failures++; }
	}
	putint(handled);
	puts(" requests handled");
	putint(failures);
	puts(" absorbed by error handling");
	return failures;
}`

func main() {
	prog, err := firestarter.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}

	fmt.Println("--- unprotected run ---")
	vanilla, err := firestarter.NewServer(prog, firestarter.WithoutProtection())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out := vanilla.Run(0)
	fmt.Print(vanilla.Stdout())
	fmt.Printf("outcome: %v (trap: %v)\n\n", out.Kind, out.Trap)

	fmt.Println("--- FIRestarter-hardened run ---")
	hardened, err := firestarter.NewServer(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = hardened.Run(0)
	fmt.Print(hardened.Stdout())
	st := hardened.Stats()
	fmt.Printf("outcome: %v, exit code %d\n", out.Kind, hardened.ExitCode())
	fmt.Printf("recovery: %d crashes rolled back, %d faults injected, %d transactions\n",
		st.Crashes, st.Injections, st.GateExecs)
	if out.Kind != firestarter.OutExited || st.Injections == 0 {
		os.Exit(1)
	}
}
