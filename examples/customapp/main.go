// Customapp: hardening your own server, with the recovery trace.
//
// This example is the downstream-user path: write a small event-driven
// service in mini-C, harden it with the default pipeline, drive it with a
// custom workload, inject a persistent bug, and read the recovery event
// trace — the crash→rollback→retry→inject story in the order it happened.
//
// The service is a tiny line-based calculator ("ADD 2 3\n" → "5\n") whose
// division handler has a residual crash: dividing by zero traps fail-stop.
// FIRestarter converts that into a malloc failure the handler already
// knows how to refuse.
//
// Run with: go run ./examples/customapp
package main

import (
	"fmt"
	"os"

	firestarter "github.com/firestarter-go/firestarter"
)

const calcSrc = `
int g_conns[64];
struct cl { int fd; int rlen; char rbuf[128]; };

int put_int(char *dst, int v) {
	char tmp[24];
	int i = 0;
	int pos = 0;
	if (v < 0) { dst[0] = '-'; pos = 1; v = -v; }
	if (v == 0) { dst[pos] = '0'; return pos + 1; }
	while (v > 0) { tmp[i] = '0' + v % 10; v /= 10; i++; }
	while (i > 0) { i--; dst[pos] = tmp[i]; pos++; }
	return pos;
}

int answer(int fd, int v) {
	char out[32];
	int n = put_int(out, v);
	out[n] = '\n';
	if (write(fd, out, n + 1) < 0) { return -1; }
	return 0;
}

int execute(int fd, char *line) {
	// "<OP> <a> <b>": tokenize in place.
	int i = 0;
	while (line[i] != ' ' && line[i] != 0) { i++; }
	if (line[i] == 0) { return answer(fd, -1); }
	line[i] = 0;
	char *sa = line + i + 1;
	int j = 0;
	while (sa[j] != ' ' && sa[j] != 0) { j++; }
	if (sa[j] == 0) { return answer(fd, -1); }
	sa[j] = 0;
	int a = atoi(sa);
	int b = atoi(sa + j + 1);

	// Handlers allocate a scratch result record per request, with the
	// error handling FIRestarter will divert into.
	char *scratch = malloc(64);
	if (!scratch) {
		puts("calc: request refused (no memory)");
		char msg[6];
		msg[0] = 'E'; msg[1] = 'R'; msg[2] = 'R'; msg[3] = '\n';
		write(fd, msg, 4);
		return 0;
	}
	int v = 0;
	if (strcmp(line, "ADD") == 0) { v = a + b; }
	else if (strcmp(line, "MUL") == 0) { v = a * b; }
	else if (strcmp(line, "DIV") == 0) { v = a / b; }   // residual bug: b==0 traps
	int rc = answer(fd, v);
	free(scratch);
	return rc;
}

int main() {
	int s = socket();
	if (s == -1) { return 1; }
	if (bind(s, 7000) == -1) { return 2; }
	if (listen(s, 16) == -1) { return 3; }
	int ep = epoll_create();
	if (ep == -1) { return 4; }
	if (epoll_ctl(ep, 1, s) == -1) { return 5; }
	puts("calc: ready");
	int events[8];
	while (1) {
		int n = epoll_wait(ep, events, 8);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == s) {
				int nf = accept(s);
				if (nf < 0) { continue; }
				struct cl *c = calloc(1, sizeof(struct cl));
				if (!c) { close(nf); continue; }
				c->fd = nf;
				g_conns[nf] = c;
				epoll_ctl(ep, 1, nf);
			} else {
				struct cl *c = g_conns[fd];
				if (!c) { continue; }
				int got = read(fd, c->rbuf + c->rlen, 127 - c->rlen);
				if (got <= 0) {
					if (got < 0 && errno() == 11) { continue; }
					epoll_ctl(ep, 2, fd);
					close(fd);
					g_conns[fd] = 0;
					free(c);
					continue;
				}
				c->rlen = c->rlen + got;
				int start = 0;
				for (int k = 0; k < c->rlen; k++) {
					if (c->rbuf[k] == '\n') {
						c->rbuf[k] = 0;
						execute(fd, c->rbuf + start);
						start = k + 1;
					}
				}
				int rest = c->rlen - start;
				if (rest > 0 && start > 0) { memcpy(c->rbuf, c->rbuf + start, rest); }
				c->rlen = rest;
			}
		}
	}
	return 0;
}`

func main() {
	prog, err := firestarter.Compile(calcSrc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	srv, err := firestarter.NewServer(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.Runtime().EnableTrace()

	if out := srv.Run(0); out.Kind != firestarter.OutBlocked {
		fmt.Fprintf(os.Stderr, "server did not start: %v\n", out.Kind)
		os.Exit(1)
	}
	conn := srv.Connect(7000)

	ask := func(q string) string {
		conn.ClientDeliver([]byte(q))
		if out := srv.Run(0); out.Kind == firestarter.OutTrapped {
			fmt.Printf("%-12q CRASHED THE SERVER\n", q)
			os.Exit(1)
		}
		return string(conn.ClientTake())
	}

	fmt.Printf("ADD 2 3    -> %q\n", ask("ADD 2 3\n"))
	fmt.Printf("MUL 6 7    -> %q\n", ask("MUL 6 7\n"))
	fmt.Printf("DIV 10 2   -> %q\n", ask("DIV 10 2\n"))
	fmt.Printf("DIV 1 0    -> %q   (the residual bug, survived)\n", ask("DIV 1 0\n"))
	fmt.Printf("ADD 4 4    -> %q   (service continues)\n", ask("ADD 4 4\n"))

	st := srv.Stats()
	fmt.Printf("\nstats: %d crashes rolled back, %d injections, %d unrecovered\n",
		st.Crashes, st.Injections, st.Unrecovered)
	fmt.Println("\nrecovery trace:")
	fmt.Print(srv.Runtime().RenderTrace())
	if st.Injections == 0 || st.Unrecovered != 0 {
		os.Exit(1)
	}
}
