// Adaptive: the hybrid HTM/STM story of the paper's §IV, live.
//
// The Lighttpd analog is driven with the same HTTP workload under four
// configurations — unprotected, HTM-only, STM-only, and full FIRestarter
// with its dynamic adaptation policy — and the example prints the
// throughput cost and hardware-transaction behaviour of each, showing why
// hybrid checkpointing is the interesting point in the design space:
// HTM-only is cheap but unprotected after aborts, STM-only is safe but
// slow, and the adaptive hybrid keeps almost all of HTM's speed at full
// protection.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"os"

	firestarter "github.com/firestarter-go/firestarter"
)

func main() {
	app, err := firestarter.Builtin("lighttpd")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	const requests = 400
	type config struct {
		name string
		opts []firestarter.Option
	}
	configs := []config{
		{"vanilla (unprotected)", []firestarter.Option{firestarter.WithoutProtection()}},
		{"HTM-only baseline", []firestarter.Option{
			firestarter.WithMode(firestarter.ModeHTMOnly),
			firestarter.WithInterrupts(250_000, 1),
		}},
		{"STM-only baseline", []firestarter.Option{
			firestarter.WithMode(firestarter.ModeSTMOnly),
		}},
		{"FIRestarter (θ=1%, S=4)", []firestarter.Option{
			firestarter.WithThreshold(0.01),
			firestarter.WithSampleSize(4),
			firestarter.WithInterrupts(250_000, 1),
		}},
	}

	var baseline float64
	fmt.Printf("%-26s %16s %12s %14s %12s\n",
		"configuration", "cycles/request", "overhead", "HTM aborts", "STM txs")
	for i, cfg := range configs {
		srv, err := firestarter.NewAppServer(app, cfg.opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := srv.DriveWorkload(app.Protocol, app.Port, requests, 4, 1)
		if res.ServerDied || res.Completed == 0 {
			fmt.Fprintf(os.Stderr, "%s: run failed (%+v)\n", cfg.name, res)
			os.Exit(1)
		}
		cpr := res.CyclesPerRequest()
		if i == 0 {
			baseline = cpr
		}
		overhead := (cpr/baseline - 1) * 100
		st := srv.Stats()
		fmt.Printf("%-26s %16.0f %11.1f%% %14d %12d\n",
			cfg.name, cpr, overhead, st.HTMAborts, st.STMBegins)
	}

	fmt.Println("\nnote: HTM-only gives no recovery guarantee after an abort —")
	fmt.Println("only STM-only and FIRestarter keep the full recovery surface.")
}
