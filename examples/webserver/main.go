// Webserver: the paper's §VI-F Nginx case study end to end.
//
// A fail-stop fault is planted in the SSI substitution code of the built-in
// Nginx analog — the shape of nginx ticket #1263, where a subrequest
// needing server-side-include substitution dereferenced NULL. The hardened
// server is then driven with live HTTP traffic including the poisoned /ssi
// route: FIRestarter rolls the crash back, makes the preceding pread return
// -1/EINVAL, and nginx's own error path produces an empty response while
// every other request keeps being served.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"os"
	"strings"

	firestarter "github.com/firestarter-go/firestarter"
)

func main() {
	app, err := firestarter.Builtin("nginx")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Plant the persistent crash in the SSI substitution block (the code
	// following the second pread — where nginx #1263 dereferenced NULL).
	fault, err := firestarter.FaultInBlockCalling(app, "serve_ssi", "memcpy")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv, err := firestarter.NewAppServer(app, firestarter.WithFault(fault))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Boot to the event loop.
	if out := srv.Run(0); out.Kind != firestarter.OutBlocked {
		fmt.Fprintf(os.Stderr, "server did not start: %v\n", out.Kind)
		os.Exit(1)
	}
	fmt.Println("nginx analog booted with a planted SSI crash")

	// The poisoned request.
	ssi := srv.Connect(app.Port)
	ssi.ClientDeliver([]byte("GET /ssi HTTP/1.1\r\n\r\n"))
	out := srv.Run(0)
	if out.Kind == firestarter.OutTrapped {
		fmt.Println("server crashed — recovery failed")
		os.Exit(1)
	}
	resp := string(ssi.ClientTake())
	fmt.Printf("SSI response after recovery: %q\n", firstLine(resp))

	// The server keeps serving.
	normal := srv.Connect(app.Port)
	normal.ClientDeliver([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	srv.Run(0)
	fmt.Printf("follow-up response:          %q\n", firstLine(string(normal.ClientTake())))

	st := srv.Stats()
	fmt.Printf("\ncrashes rolled back: %d, faults injected into pread: %d, unrecovered: %d\n",
		st.Crashes, st.Injections, st.Unrecovered)
	if st.Injections == 0 || st.Unrecovered != 0 {
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.Index(s, "\r\n"); i >= 0 {
		return s[:i]
	}
	return s
}
