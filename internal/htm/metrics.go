package htm

import "github.com/firestarter-go/firestarter/internal/obsv"

// Publish copies the hardware model's counters into a metrics registry.
// Publishing happens at collection time — the transaction hot paths never
// touch the registry, so enabling metrics changes no charged cycle.
func (s Stats) Publish(reg *obsv.Registry, labels ...obsv.Label) {
	reg.Counter("htm.begins", labels...).Add(s.Begins)
	reg.Counter("htm.commits", labels...).Add(s.Commits)
	reg.Counter("htm.aborts", labels...).Add(s.Aborts)
	reg.Counter("htm.aborts_capacity", labels...).Add(s.ByCapac)
	reg.Counter("htm.aborts_interrupt", labels...).Add(s.ByIntr)
	reg.Counter("htm.aborts_conflict", labels...).Add(s.ByConfl)
	reg.Counter("htm.aborts_explicit", labels...).Add(s.ByExplcit)
	reg.Gauge("htm.peak_write_lines", labels...).SetMax(int64(s.PeakWriteLines))
}
