package htm

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/firestarter-go/firestarter/internal/mem"
)

func newSpace(t *testing.T) *mem.Space {
	t.Helper()
	s := mem.NewSpace()
	if err := s.Map(mem.HeapBase, 1<<20); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCommitKeepsStores(t *testing.T) {
	s := newSpace(t)
	h := New(Config{})
	tx := h.Begin(s)
	if err := tx.Store(mem.HeapBase, 99, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load(mem.HeapBase, 8)
	if err != nil || v != 99 {
		t.Fatalf("after commit: %d, %v", v, err)
	}
	st := h.Stats()
	if st.Begins != 1 || st.Commits != 1 || st.Aborts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAbortRestoresMemory(t *testing.T) {
	s := newSpace(t)
	if err := s.Store(mem.HeapBase+8, 1234, 8); err != nil {
		t.Fatal(err)
	}
	h := New(Config{})
	tx := h.Begin(s)
	if err := tx.Store(mem.HeapBase+8, 777, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.Store(mem.HeapBase+256, 888, 8); err != nil {
		t.Fatal(err)
	}
	tx.Abort(AbortExplicit)
	v1, _ := s.Load(mem.HeapBase+8, 8)
	v2, _ := s.Load(mem.HeapBase+256, 8)
	if v1 != 1234 || v2 != 0 {
		t.Fatalf("after abort: %d, %d; want 1234, 0", v1, v2)
	}
	if st := h.Stats(); st.ByExplcit != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCapacityAbortOnTotalLines(t *testing.T) {
	s := newSpace(t)
	h := New(Config{Sets: 4, Ways: 2}) // tiny cache: 8 lines
	tx := h.Begin(s)
	var abortErr *AbortError
	for i := 0; i < 100; i++ {
		err := tx.Store(mem.HeapBase+int64(i)*mem.CacheLineSize, int64(i), 8)
		if err != nil {
			if !errors.As(err, &abortErr) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
	}
	if abortErr == nil || abortErr.Cause != AbortCapacity {
		t.Fatalf("expected capacity abort, got %v", abortErr)
	}
	// All stores rolled back.
	for i := 0; i < 8; i++ {
		v, _ := s.Load(mem.HeapBase+int64(i)*mem.CacheLineSize, 8)
		if v != 0 {
			t.Fatalf("line %d not rolled back: %d", i, v)
		}
	}
}

func TestAssociativityAbort(t *testing.T) {
	s := mem.NewSpace()
	if err := s.Map(mem.HeapBase, 1<<22); err != nil {
		t.Fatal(err)
	}
	h := New(Config{Sets: 64, Ways: 2})
	tx := h.Begin(s)
	// Hammer one set: addresses that differ by Sets*LineSize map to the
	// same set.
	stride := int64(64 * mem.CacheLineSize)
	var abortErr *AbortError
	for i := 0; i < 10; i++ {
		err := tx.Store(mem.HeapBase+int64(i)*stride, 1, 8)
		if err != nil {
			if !errors.As(err, &abortErr) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
	}
	if abortErr == nil || abortErr.Cause != AbortCapacity {
		t.Fatalf("expected associativity(capacity) abort, got %v", abortErr)
	}
	if h.Stats().ByCapac != 1 {
		t.Errorf("stats = %+v", h.Stats())
	}
}

func TestDefaultCapacityIs512Lines(t *testing.T) {
	s := mem.NewSpace()
	if err := s.Map(mem.HeapBase, 1<<22); err != nil {
		t.Fatal(err)
	}
	h := New(Config{})
	tx := h.Begin(s)
	// 512 sequential lines fit exactly (64 sets × 8 ways, sequential
	// lines spread evenly across sets).
	for i := 0; i < 512; i++ {
		if err := tx.Store(mem.HeapBase+int64(i)*mem.CacheLineSize, 1, 8); err != nil {
			t.Fatalf("store %d aborted early: %v", i, err)
		}
	}
	err := tx.Store(mem.HeapBase+512*mem.CacheLineSize, 1, 8)
	var abortErr *AbortError
	if !errors.As(err, &abortErr) || abortErr.Cause != AbortCapacity {
		t.Fatalf("store 513 should capacity-abort, got %v", err)
	}
}

func TestInterruptAborts(t *testing.T) {
	s := newSpace(t)
	h := New(Config{MeanInstrsPerInterrupt: 100, Seed: 1})
	aborted := 0
	for i := 0; i < 50; i++ {
		tx := h.Begin(s)
		if err := tx.Store(mem.HeapBase, int64(i), 8); err != nil {
			t.Fatal(err)
		}
		if err := tx.Tick(200); err != nil {
			var abortErr *AbortError
			if !errors.As(err, &abortErr) || abortErr.Cause != AbortInterrupt {
				t.Fatalf("unexpected tick error: %v", err)
			}
			aborted++
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if aborted == 0 {
		t.Fatal("no interrupt aborts with mean gap 100 and ticks of 200")
	}
	if h.Stats().ByIntr != int64(aborted) {
		t.Errorf("stats = %+v, want %d interrupt aborts", h.Stats(), aborted)
	}
}

func TestInterruptDisabled(t *testing.T) {
	s := newSpace(t)
	h := New(Config{})
	tx := h.Begin(s)
	if err := tx.Tick(1 << 40); err != nil {
		t.Fatalf("tick with interrupts disabled: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanningStoreTouchesTwoLines(t *testing.T) {
	s := newSpace(t)
	h := New(Config{})
	tx := h.Begin(s)
	if err := tx.Store(mem.HeapBase+mem.CacheLineSize-4, 0x1122334455667788, 8); err != nil {
		t.Fatal(err)
	}
	if got := tx.WriteSetLines(); got != 2 {
		t.Fatalf("WriteSetLines = %d, want 2", got)
	}
	tx.Abort(AbortExplicit)
	v, _ := s.Load(mem.HeapBase+mem.CacheLineSize-4, 8)
	if v != 0 {
		t.Fatalf("spanning store not rolled back: %#x", v)
	}
}

func TestStoreToUnmappedDoesNotGrowWriteSet(t *testing.T) {
	s := newSpace(t)
	h := New(Config{})
	tx := h.Begin(s)
	err := tx.Store(0x40, 1, 8)
	if !errors.Is(err, mem.ErrUnmapped) {
		t.Fatalf("expected unmapped error, got %v", err)
	}
	if tx.WriteSetLines() != 0 {
		t.Fatalf("write set grew on faulting store")
	}
	// The transaction is still live; it can be explicitly aborted.
	tx.Abort(AbortExplicit)
}

func TestFinishedTransactionRejectsOps(t *testing.T) {
	s := newSpace(t)
	h := New(Config{})
	tx := h.Begin(s)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Store(mem.HeapBase, 1, 8); err == nil {
		t.Error("store on finished tx should fail")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit should fail")
	}
	tx.Abort(AbortExplicit) // must be a no-op
	if st := h.Stats(); st.Aborts != 0 {
		t.Errorf("abort after commit counted: %+v", st)
	}
}

func TestAbortRateAndPeak(t *testing.T) {
	s := newSpace(t)
	h := New(Config{})
	for i := 0; i < 4; i++ {
		tx := h.Begin(s)
		if err := tx.Store(mem.HeapBase+int64(i*128), 1, 8); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		} else {
			tx.Abort(AbortExplicit)
		}
	}
	st := h.Stats()
	if st.AbortRate() != 0.5 {
		t.Errorf("AbortRate = %f, want 0.5", st.AbortRate())
	}
	if st.PeakWriteLines != 1 {
		t.Errorf("PeakWriteLines = %d, want 1", st.PeakWriteLines)
	}
	h.ResetStats()
	if h.Stats().Begins != 0 {
		t.Error("ResetStats did not clear")
	}
}

// Property: for any sequence of 8-byte stores within one transaction that
// then aborts, memory is byte-identical to the pre-transaction state.
func TestAbortRestoresExactlyProperty(t *testing.T) {
	s := newSpace(t)
	// Pre-fill deterministic baseline.
	for i := int64(0); i < 4096; i += 8 {
		if err := s.Store(mem.HeapBase+i, i*3+1, 8); err != nil {
			t.Fatal(err)
		}
	}
	h := New(Config{})
	f := func(offsets []uint16, vals []int64) bool {
		tx := h.Begin(s)
		n := len(offsets)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			addr := mem.HeapBase + int64(offsets[i]%4096)
			if err := tx.Store(addr, vals[i], 8); err != nil {
				return false
			}
		}
		tx.Abort(AbortExplicit)
		for i := int64(0); i < 4096; i += 8 {
			v, err := s.Load(mem.HeapBase+i, 8)
			if err != nil || v != i*3+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConflictAbortAccounting(t *testing.T) {
	s := newSpace(t)
	h := New(Config{})
	tx := h.Begin(s)
	if err := tx.Store(mem.HeapBase, 5, 8); err != nil {
		t.Fatal(err)
	}
	// A conflicting writer on another core (injected by the caller in
	// simulation) aborts the transaction with the conflict cause.
	tx.Abort(AbortConflict)
	st := h.Stats()
	if st.ByConfl != 1 || st.Aborts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if v, _ := s.Load(mem.HeapBase, 8); v != 0 {
		t.Fatalf("conflict abort did not roll back: %d", v)
	}
}

func TestAbortCauseStrings(t *testing.T) {
	for _, c := range []AbortCause{AbortNone, AbortCapacity, AbortInterrupt, AbortConflict, AbortExplicit, AbortCause(99)} {
		if c.String() == "" {
			t.Errorf("cause %d has empty string", c)
		}
	}
	e := &AbortError{Cause: AbortCapacity}
	if e.Error() == "" {
		t.Error("AbortError.Error empty")
	}
}

func TestInterruptClockSpansTransactions(t *testing.T) {
	// The interrupt process keeps ticking across transactions, like a
	// real timer: with a mean gap of 1000 and ticks of 400, an abort
	// must eventually hit even though no single transaction exceeds the
	// mean.
	s := newSpace(t)
	h := New(Config{MeanInstrsPerInterrupt: 1000, Seed: 5})
	aborted := false
	for i := 0; i < 100 && !aborted; i++ {
		tx := h.Begin(s)
		if err := tx.Tick(400); err != nil {
			aborted = true
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if !aborted {
		t.Fatal("interrupt never fired across 100 transactions × 400 instructions")
	}
}
