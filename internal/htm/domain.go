package htm

// Domain is the cache-coherence directory shared by the TSX instances of
// all threads scheduled over one address space. Real TSX aborts a
// transaction when another core's access hits a line in its read or write
// set (the MESI invalidation doubles as conflict detection); the Domain
// reproduces that: every live transaction registers here, loads and stores
// consult the other live transactions' line sets, and the loser is doomed
// with AbortConflict using the requester-wins policy of an invalidation-
// based protocol.
//
// The Domain also carries the STM fallback's global commit lock. Hardware
// transactions subscribe to the lock's cache line at Begin (lock elision,
// §IV-B): acquiring the lock for an STM transaction therefore dooms every
// live hardware transaction, and a Begin while the lock is held aborts
// immediately — software and hardware transactions never run concurrently.
//
// A nil Domain (the default) keeps the single-threaded behaviour of the
// model bit-for-bit: no read tracking, no conflict checks, no lock.
type Domain struct {
	// active lists live transactions in Begin order. A slice, not a map:
	// conflict resolution must visit victims in a deterministic order.
	active []*Tx

	// lockOwner is the thread id holding the STM commit lock, -1 if free.
	lockOwner int

	// Conflicts counts cross-thread dooms issued by this domain
	// (including lock-acquisition dooms), for campaign reporting.
	Conflicts int64
}

// NewDomain returns an empty conflict domain with the commit lock free.
func NewDomain() *Domain { return &Domain{lockOwner: -1} }

func (d *Domain) register(tx *Tx) { d.active = append(d.active, tx) }

func (d *Domain) unregister(tx *Tx) {
	for i, t := range d.active {
		if t == tx {
			d.active = append(d.active[:i], d.active[i+1:]...)
			return
		}
	}
}

// doomConflicting aborts every other live transaction whose tracked lines
// collide with an access to line by thread tid. A store collides with both
// read and write sets (invalidation); a load collides with write sets only
// (a shared read of a modified line forces the writer to surrender it).
func (d *Domain) doomConflicting(tid int, line int64, isStore bool) {
	var victims []*Tx
	for _, t := range d.active {
		if t.tid == tid {
			continue
		}
		if _, w := t.lines[line]; w {
			victims = append(victims, t)
			continue
		}
		if isStore {
			if _, r := t.reads[line]; r {
				victims = append(victims, t)
			}
		}
	}
	for _, t := range victims {
		d.doom(t)
	}
}

// doom rolls a victim back immediately (restoring its lines, so the
// aggressor observes pre-transaction memory) and marks it doomed; the
// victim's thread consumes the pending AbortConflict from its next Load,
// Store, Tick or Commit and runs the normal abort handler.
func (d *Domain) doom(tx *Tx) {
	d.Conflicts++
	tx.rollback(AbortConflict)
	tx.doomed = AbortConflict
}

// LockHeldByOther reports whether the STM commit lock is held by a thread
// other than tid (the line a hardware transaction subscribes to at Begin).
func (d *Domain) LockHeldByOther(tid int) bool {
	return d.lockOwner != -1 && d.lockOwner != tid
}

// AcquireLock takes the STM commit lock for thread tid. It fails (returns
// false) while another thread holds it. Taking the lock writes the line
// every live hardware transaction subscribed to, so they are all doomed.
func (d *Domain) AcquireLock(tid int) bool {
	if d.lockOwner == tid {
		return true
	}
	if d.lockOwner != -1 {
		return false
	}
	d.lockOwner = tid
	for _, t := range append([]*Tx(nil), d.active...) {
		if t.tid != tid {
			d.doom(t)
		}
	}
	return true
}

// ReleaseLock drops the commit lock if tid holds it.
func (d *Domain) ReleaseLock(tid int) {
	if d.lockOwner == tid {
		d.lockOwner = -1
	}
}
