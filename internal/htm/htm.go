// Package htm models Intel TSX-style hardware transactional memory, which
// FIRestarter repurposes as a lightweight checkpointing mechanism (§IV-A of
// the paper).
//
// The model captures the properties of real TSX that matter for the paper's
// experiments:
//
//   - The write set is buffered in an L1-data-cache model: 64-byte lines in
//     a 64-set × 8-way configuration (32 KiB). A transaction whose dirty
//     lines exceed total capacity — or overflow the ways of any single set —
//     aborts with a capacity abort. This is the cliff that makes regions
//     following large allocations (malloc + initialization) abort at high
//     rates in Fig. 3.
//   - Asynchronous events (interrupts, page faults) abort transactions at
//     unpredictable times. We model them as a seeded Poisson-like process
//     over the retired-instruction count.
//   - A fault inside a transaction (the crash FIRestarter wants to roll
//     back) aborts it with an explicit abort code, restoring memory and
//     letting the abort handler run — exactly how FIRestarter's recovery
//     path rides on XABORT semantics.
//
// Dirty lines are snapshotted on first touch and restored on abort, so
// rollback is genuine: post-abort memory is byte-identical to the state at
// Begin.
package htm

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// AbortCause enumerates why a hardware transaction aborted.
type AbortCause int

// Abort causes, mirroring the TSX status word's interesting bits.
const (
	AbortNone      AbortCause = iota // sentinel: no abort
	AbortCapacity                    // write set exceeded L1 capacity/associativity
	AbortInterrupt                   // asynchronous event (interrupt, page fault)
	AbortConflict                    // cache-line conflict with another core
	AbortExplicit                    // XABORT: a fault occurred inside the transaction
)

// String returns a short human-readable cause name.
func (c AbortCause) String() string {
	switch c {
	case AbortNone:
		return "none"
	case AbortCapacity:
		return "capacity"
	case AbortInterrupt:
		return "interrupt"
	case AbortConflict:
		return "conflict"
	case AbortExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// AbortError reports a transaction abort from Store or Tick.
type AbortError struct {
	Cause AbortCause
}

// Error implements error.
func (e *AbortError) Error() string {
	return fmt.Sprintf("htm: transaction aborted (%s)", e.Cause)
}

// Config parameterizes the TSX model.
type Config struct {
	// Sets and Ways describe the L1D write-buffer geometry. Zero values
	// default to 64 sets × 8 ways (32 KiB of 64-byte lines), the
	// Skylake-era L1D the paper's i7-6700K testbed has.
	Sets int
	Ways int

	// MeanInstrsPerInterrupt is the expected number of retired
	// instructions between asynchronous aborts, modelling timer
	// interrupts and page faults. Zero disables interrupt aborts.
	MeanInstrsPerInterrupt float64

	// Seed feeds the deterministic interrupt process.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Sets == 0 {
		c.Sets = 64
	}
	if c.Ways == 0 {
		c.Ways = 8
	}
	return c
}

// Stats aggregates transaction outcomes across a TSX instance's lifetime.
type Stats struct {
	Begins    int64
	Commits   int64
	Aborts    int64
	ByCapac   int64
	ByIntr    int64
	ByConfl   int64
	ByExplcit int64

	// PeakWriteLines is the largest write set (in cache lines) observed
	// in any transaction, committed or aborted.
	PeakWriteLines int
}

// AbortRate returns aborts/begins, or 0 when no transaction ran.
func (s *Stats) AbortRate() float64 {
	if s.Begins == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Begins)
}

// TSX is a hardware-transactional-memory device attached to an address
// space. It supports one live transaction at a time (the simulation is
// single-threaded, per the paper's fault model).
type TSX struct {
	cfg   Config
	rng   *rand.Rand
	stats Stats

	// instrsToIntr counts down retired instructions to the next modelled
	// asynchronous event; it keeps ticking between transactions, like a
	// real timer.
	instrsToIntr int64

	// free parks the last finished Tx for reuse by the next Begin.
	// Transactions are frequent and short, so recycling the write-set
	// map, the per-set counters and the line snapshot buffers removes
	// the model's main allocation churn. Safe because a TSX has at most
	// one live transaction and a finished Tx refuses further stores.
	// A doomed Tx may be parked here with its abort still undelivered;
	// that is fine because the owning thread always consumes the doom
	// (Load/Store/Tick/Commit) before it can reach another Begin.
	free *Tx

	// domain, when non-nil, is the shared conflict directory connecting
	// this core's transactions to the other threads' (see Domain).
	domain   *Domain
	threadID int
}

// AttachDomain joins this TSX instance to a shared conflict domain as
// thread tid. Call before the first Begin; a nil domain (the default)
// preserves the single-threaded model exactly.
func (t *TSX) AttachDomain(d *Domain, tid int) {
	t.domain = d
	t.threadID = tid
}

// New returns a TSX model with the given configuration.
func New(cfg Config) *TSX {
	cfg = cfg.withDefaults()
	t := &TSX{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	t.scheduleInterrupt()
	return t
}

// Stats returns a snapshot of the accumulated statistics.
func (t *TSX) Stats() Stats { return t.stats }

// ResetStats zeroes the accumulated statistics (used between benchmark
// phases).
func (t *TSX) ResetStats() { t.stats = Stats{} }

func (t *TSX) scheduleInterrupt() {
	if t.cfg.MeanInstrsPerInterrupt <= 0 {
		t.instrsToIntr = -1
		return
	}
	// Exponentially distributed gap, floor 1.
	gap := int64(t.rng.ExpFloat64() * t.cfg.MeanInstrsPerInterrupt)
	if gap < 1 {
		gap = 1
	}
	t.instrsToIntr = gap
}

// Tx is a live hardware transaction.
type Tx struct {
	owner *TSX
	space *mem.Space

	// lines maps dirty line address → snapshot of the line's original
	// contents, taken on first touch.
	lines map[int64][]byte

	// perSet counts dirty lines per cache set for associativity aborts.
	perSet []int8

	// bufs is a free list of line-sized snapshot buffers recycled
	// across transactions by finish.
	bufs [][]byte

	// reads is the read set (line addresses), tracked only when the
	// transaction belongs to a conflict domain; nil otherwise.
	reads map[int64]struct{}

	// dom and tid tie a live transaction to its conflict domain; dom is
	// cleared by finish when the transaction leaves the active list.
	dom *Domain
	tid int

	// doomed holds a cross-thread abort (AbortConflict) delivered by the
	// domain while the owning thread was suspended. Memory is already
	// rolled back; the owner's next Load/Store/Tick/Commit consumes it.
	doomed AbortCause

	done bool
}

// Begin starts a transaction against the given address space.
func (t *TSX) Begin(space *mem.Space) *Tx {
	t.stats.Begins++
	tx := t.free
	if tx != nil {
		t.free = nil
		tx.space = space
		tx.done = false
	} else {
		tx = &Tx{
			owner:  t,
			space:  space,
			lines:  make(map[int64][]byte, 16),
			perSet: make([]int8, t.cfg.Sets),
		}
	}
	if d := t.domain; d != nil {
		tx.dom = d
		tx.tid = t.threadID
		if tx.reads == nil {
			tx.reads = make(map[int64]struct{}, 16)
		}
		d.register(tx)
		// Subscribe to the STM commit lock's line: beginning while a
		// software transaction holds it aborts immediately (elision).
		if d.LockHeldByOther(t.threadID) {
			d.doom(tx)
		}
	}
	return tx
}

// WriteSetLines returns the number of distinct dirty cache lines.
func (tx *Tx) WriteSetLines() int { return len(tx.lines) }

// Store performs a transactional store. On success the memory is written
// and the touched lines join the write set. If the write set overflows the
// modelled L1, the transaction rolls back and an *AbortError with
// AbortCapacity is returned. Faulting accesses (unmapped memory) are
// reported as-is without rolling back — the caller decides to Abort (this
// mirrors hardware, where the fault reaches the handler which then aborts).
func (tx *Tx) Store(addr, val int64, width int) error {
	if tx.doomed != AbortNone {
		return tx.consumeDoom()
	}
	if tx.done {
		return fmt.Errorf("htm: store on finished transaction")
	}
	first, second, spans := mem.LinesTouched(addr, width)
	if d := tx.dom; d != nil {
		// Invalidate the line in the other cores first, so their
		// rollbacks land before we snapshot the original contents.
		d.doomConflicting(tx.tid, first, true)
		if spans {
			d.doomConflicting(tx.tid, second, true)
		}
	}
	if err := tx.touch(first); err != nil {
		return err
	}
	if spans {
		if err := tx.touch(second); err != nil {
			return err
		}
	}
	if err := tx.space.Store(addr, val, width); err != nil {
		return err
	}
	return nil
}

// touch snapshots a line into the write set, aborting on capacity overflow.
func (tx *Tx) touch(line int64) error {
	if _, ok := tx.lines[line]; ok {
		return nil
	}
	if !tx.space.Mapped(line, mem.CacheLineSize) {
		// The store itself will fault; don't grow the write set.
		return nil
	}
	set := (line / mem.CacheLineSize) % int64(tx.owner.cfg.Sets)
	if int(tx.perSet[set]) >= tx.owner.cfg.Ways ||
		len(tx.lines) >= tx.owner.cfg.Sets*tx.owner.cfg.Ways {
		tx.rollback(AbortCapacity)
		return &AbortError{Cause: AbortCapacity}
	}
	var snap []byte
	if n := len(tx.bufs); n > 0 {
		snap = tx.bufs[n-1]
		tx.bufs = tx.bufs[:n-1]
		if err := tx.space.ReadInto(line, snap); err != nil {
			return err
		}
	} else {
		var err error
		snap, err = tx.space.ReadBytes(line, mem.CacheLineSize)
		if err != nil {
			return err
		}
	}
	tx.lines[line] = snap
	tx.perSet[set]++
	return nil
}

// Load performs a transactional load. In a conflict domain the touched
// lines join the read set (dooming any other transaction that has them in
// its write set — the writer loses the line when we request it shared);
// outside a domain this is a plain memory load. A pending cross-thread
// abort is delivered here like on Store.
func (tx *Tx) Load(addr int64, width int) (int64, error) {
	if tx.doomed != AbortNone {
		return 0, tx.consumeDoom()
	}
	if tx.done {
		return 0, fmt.Errorf("htm: load on finished transaction")
	}
	if d := tx.dom; d != nil {
		first, second, spans := mem.LinesTouched(addr, width)
		d.doomConflicting(tx.tid, first, false)
		tx.reads[first] = struct{}{}
		if spans {
			d.doomConflicting(tx.tid, second, false)
			tx.reads[second] = struct{}{}
		}
	}
	return tx.space.Load(addr, width)
}

// Tick retires n instructions inside the transaction and may deliver an
// asynchronous abort. On abort the transaction is rolled back and an
// *AbortError with AbortInterrupt is returned. A pending cross-thread
// conflict abort is delivered here too.
func (tx *Tx) Tick(n int64) error {
	if tx.doomed != AbortNone {
		return tx.consumeDoom()
	}
	if tx.done {
		return nil
	}
	o := tx.owner
	if o.instrsToIntr < 0 {
		return nil
	}
	o.instrsToIntr -= n
	if o.instrsToIntr > 0 {
		return nil
	}
	o.scheduleInterrupt()
	tx.rollback(AbortInterrupt)
	return &AbortError{Cause: AbortInterrupt}
}

// TickBudget reports how many Tick(1) calls are guaranteed to be complete
// no-ops from here: no abort, no doom delivery, no state change beyond
// the interrupt countdown. Callers may defer that many single-instruction
// ticks and apply them later in one batched Tick(n) with identical
// semantics — the guarantee holds only until the next operation on the
// transaction (Load, Store, Commit, Abort, or a delivered tick), after
// which the budget must be re-queried.
func (tx *Tx) TickBudget() int64 {
	if tx.doomed != AbortNone || tx.done {
		return 0
	}
	if tx.owner.instrsToIntr < 0 {
		return math.MaxInt64
	}
	// The tick that drives the countdown to zero aborts; everything
	// strictly before it is a pure decrement.
	return tx.owner.instrsToIntr - 1
}

// Commit makes the transaction's stores permanent and discards snapshots.
// A transaction doomed by a cross-thread conflict cannot commit; the
// pending AbortConflict is delivered instead.
func (tx *Tx) Commit() error {
	if tx.doomed != AbortNone {
		return tx.consumeDoom()
	}
	if tx.done {
		return fmt.Errorf("htm: commit on finished transaction")
	}
	tx.finish()
	tx.owner.stats.Commits++
	return nil
}

// Abort rolls the transaction back with the given cause (normally
// AbortExplicit, for a fault inside the transaction). Aborting an
// already-doomed transaction just discards the pending conflict.
func (tx *Tx) Abort(cause AbortCause) {
	if tx.doomed != AbortNone {
		tx.doomed = AbortNone
		return
	}
	if tx.done {
		return
	}
	tx.rollback(cause)
}

// PendingAbort delivers a cross-thread doom without retiring instructions;
// the scheduler polls it when a thread resumes so a victim learns about a
// conflict before executing anything.
func (tx *Tx) PendingAbort() error {
	if tx.doomed != AbortNone {
		return tx.consumeDoom()
	}
	return nil
}

// consumeDoom clears and reports a cross-thread abort. The rollback
// already happened when the domain doomed us (the aggressor needed the
// pre-transaction memory image); only the notification was pending.
func (tx *Tx) consumeDoom() error {
	cause := tx.doomed
	tx.doomed = AbortNone
	return &AbortError{Cause: cause}
}

func (tx *Tx) rollback(cause AbortCause) {
	for line, snap := range tx.lines {
		// The line was mapped when snapshotted; if the program unmapped
		// it mid-transaction (via an embedded libcall) the restore is
		// skipped — compensation actions own that state.
		if tx.space.Mapped(line, mem.CacheLineSize) {
			if err := tx.space.WriteBytes(line, snap); err != nil {
				panic(fmt.Sprintf("htm: rollback write failed: %v", err))
			}
		}
	}
	st := &tx.owner.stats
	st.Aborts++
	switch cause {
	case AbortCapacity:
		st.ByCapac++
	case AbortInterrupt:
		st.ByIntr++
	case AbortConflict:
		st.ByConfl++
	case AbortExplicit:
		st.ByExplcit++
	}
	tx.finish()
}

func (tx *Tx) finish() {
	if n := len(tx.lines); n > tx.owner.stats.PeakWriteLines {
		tx.owner.stats.PeakWriteLines = n
	}
	// Recycle in place: snapshot buffers go to the free list, the map
	// and counters are cleared, and the Tx is parked for the next Begin.
	for line, snap := range tx.lines {
		tx.bufs = append(tx.bufs, snap)
		delete(tx.lines, line)
	}
	for i := range tx.perSet {
		tx.perSet[i] = 0
	}
	if tx.dom != nil {
		tx.dom.unregister(tx)
		tx.dom = nil
		for line := range tx.reads {
			delete(tx.reads, line)
		}
	}
	tx.space = nil
	tx.done = true
	tx.owner.free = tx
}
