// Package faultinj is the reproduction's analog of HSFI (van der Kouwe &
// Tanenbaum, DSN'16), the fault injection framework the paper's §VI-B
// survivability evaluation uses.
//
// Following the paper's methodology:
//
//   - The target program is first profiled under its standard workload to
//     find basic blocks that actually execute, so every planted fault is
//     exercised.
//   - Faults go into *non-critical* paths: request-handling code rather
//     than the event loop and startup sequence (critical paths retry or
//     exit and are assumed test-covered; §VI-B).
//   - One fault is planted per experiment, into a randomly selected
//     candidate block, in the *vanilla* program — FIRestarter's
//     instrumentation is applied afterwards, emulating residual bugs
//     surviving in shipped source.
//
// Two fault families are supported: fail-stop faults (an injected fatal
// trap, the paper's main fault model) and fail-silent software faults
// (flipped branches, corrupted constants, wrong operators, off-by-one
// offsets — HSFI's fault types), most of which corrupt results without
// crashing.
package faultinj

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"github.com/firestarter-go/firestarter/internal/ir"
)

// Kind is a fault type.
type Kind int

// Fault kinds. FailStop is the paper's primary model; the rest are HSFI's
// fail-silent software fault types.
const (
	FailStop Kind = iota + 1
	FlipBranch
	CorruptConst
	WrongOperator
	OffByOne
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case FailStop:
		return "fail-stop"
	case FlipBranch:
		return "flip-branch"
	case CorruptConst:
		return "corrupt-const"
	case WrongOperator:
		return "wrong-operator"
	case OffByOne:
		return "off-by-one"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalJSON encodes the kind by its stable String name, so recorded
// fault plans (internal/replay manifests) survive enum reordering.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind from its String name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for c := FailStop; c <= OffByOne; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("faultinj: unknown fault kind %q", s)
}

// Fault is one planted fault. The json encoding (name-encoded Kind,
// stable field names) is the wire format of recorded fault plans.
type Fault struct {
	ID    int    `json:"id"`
	Kind  Kind   `json:"kind"`
	Func  string `json:"func"`
	Block int    `json:"block"`
	Index int    `json:"index"` // instruction index within the block
}

// String identifies the fault in reports.
func (f Fault) String() string {
	return fmt.Sprintf("#%d %s at %s.b%d.%d", f.ID, f.Kind, f.Func, f.Block, f.Index)
}

// Profile records block execution, split into a startup phase (critical)
// and a serving phase.
type Profile struct {
	startup      map[string]map[int]bool
	serving      map[string]map[int]bool
	servingPhase bool
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		startup: map[string]map[int]bool{},
		serving: map[string]map[int]bool{},
	}
}

// MarkServing switches recording from the startup phase to the serving
// phase (call it once the server has booted and blocked for the first
// time).
func (p *Profile) MarkServing() { p.servingPhase = true }

// HookFunc is the machine BlockHook; pair with MarkServing.
func (p *Profile) HookFunc(fn string, blk int) {
	m := p.startup
	if p.servingPhase {
		m = p.serving
	}
	set, ok := m[fn]
	if !ok {
		set = map[int]bool{}
		m[fn] = set
	}
	set[blk] = true
}

// ServingBlocks returns the blocks executed only during the serving phase
// (the non-critical candidates), excluding the entry function entirely
// (event loop = critical path), in deterministic order.
func (p *Profile) ServingBlocks(entryFunc string) []BlockRef {
	var out []BlockRef
	fns := make([]string, 0, len(p.serving))
	for fn := range p.serving {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		if fn == entryFunc {
			continue
		}
		blks := make([]int, 0, len(p.serving[fn]))
		for b := range p.serving[fn] {
			if p.startup[fn][b] {
				continue // also runs at startup: critical
			}
			blks = append(blks, b)
		}
		sort.Ints(blks)
		for _, b := range blks {
			out = append(out, BlockRef{Func: fn, Block: b})
		}
	}
	return out
}

// BlockRef names one basic block.
type BlockRef struct {
	Func  string
	Block int
}

// PlanFaults selects up to max candidate blocks (seeded, deterministic)
// and assigns one fault of the given kind to a random instruction of each.
// Blocks too small to host the fault kind are skipped.
func PlanFaults(prog *ir.Program, candidates []BlockRef, kind Kind, max int, seed int64) []Fault {
	rng := rand.New(rand.NewSource(seed))
	shuffled := append([]BlockRef(nil), candidates...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var faults []Fault
	for _, c := range shuffled {
		if len(faults) >= max {
			break
		}
		f := prog.Funcs[c.Func]
		if f == nil || c.Block >= len(f.Blocks) {
			continue
		}
		blk := f.Blocks[c.Block]
		idx, ok := pickIndex(blk, kind, rng)
		if !ok {
			continue
		}
		faults = append(faults, Fault{
			ID:    len(faults) + 1,
			Kind:  kind,
			Func:  c.Func,
			Block: c.Block,
			Index: idx,
		})
	}
	return faults
}

// pickIndex chooses an instruction the fault kind can target.
func pickIndex(blk *ir.Block, kind Kind, rng *rand.Rand) (int, bool) {
	var eligible []int
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		switch kind {
		case FailStop:
			// Anywhere before the terminator.
			if i < len(blk.Instrs)-1 || len(blk.Instrs) == 1 {
				eligible = append(eligible, i)
			}
		case FlipBranch:
			if in.Op == ir.OpBr {
				eligible = append(eligible, i)
			}
		case CorruptConst:
			if in.Op == ir.OpConst {
				eligible = append(eligible, i)
			}
		case WrongOperator:
			if in.Op == ir.OpBin {
				eligible = append(eligible, i)
			}
		case OffByOne:
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				eligible = append(eligible, i)
			}
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[rng.Intn(len(eligible))], true
}

// Apply plants the fault into a deep copy of the program and returns it.
func Apply(prog *ir.Program, f Fault) (*ir.Program, error) {
	p := prog.Clone()
	fn := p.Funcs[f.Func]
	if fn == nil {
		return nil, fmt.Errorf("faultinj: no function %q", f.Func)
	}
	if f.Block >= len(fn.Blocks) {
		return nil, fmt.Errorf("faultinj: %s has no block %d", f.Func, f.Block)
	}
	blk := fn.Blocks[f.Block]
	if f.Index >= len(blk.Instrs) {
		return nil, fmt.Errorf("faultinj: %s.b%d has no instruction %d", f.Func, f.Block, f.Index)
	}
	in := &blk.Instrs[f.Index]
	switch f.Kind {
	case FailStop:
		// Truncate the block at the fault point: execution reaching it
		// crashes fail-stop (the code after the trap is the "lost"
		// remainder of the faulty region).
		blk.Instrs = append(blk.Instrs[:f.Index:f.Index], ir.Instr{Op: ir.OpTrap, Imm: ir.TrapInjected})
	case FlipBranch:
		if in.Op != ir.OpBr {
			return nil, fmt.Errorf("faultinj: %s is not a branch", f)
		}
		in.Then, in.Else = in.Else, in.Then
	case CorruptConst:
		if in.Op != ir.OpConst {
			return nil, fmt.Errorf("faultinj: %s is not a const", f)
		}
		in.Imm++
	case WrongOperator:
		if in.Op != ir.OpBin {
			return nil, fmt.Errorf("faultinj: %s is not a binop", f)
		}
		in.Bin = wrongOp(in.Bin)
	case OffByOne:
		if in.Op != ir.OpLoad && in.Op != ir.OpStore {
			return nil, fmt.Errorf("faultinj: %s is not a memory access", f)
		}
		in.Imm++
	default:
		return nil, fmt.Errorf("faultinj: unknown kind %v", f.Kind)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faultinj: fault %s broke the program: %w", f, err)
	}
	// Keep the planted program pre-resolved: the clone remapped existing
	// caches, but a FailStop truncation may have synthesized instructions.
	if err := p.Resolve(); err != nil {
		return nil, fmt.Errorf("faultinj: resolving planted program: %w", err)
	}
	return p, nil
}

// wrongOp maps an operator to HSFI's "wrong operator" substitution.
func wrongOp(b ir.BinKind) ir.BinKind {
	switch b {
	case ir.BinAdd:
		return ir.BinSub
	case ir.BinSub:
		return ir.BinAdd
	case ir.BinMul:
		return ir.BinAdd
	case ir.BinLt:
		return ir.BinLe
	case ir.BinLe:
		return ir.BinLt
	case ir.BinGt:
		return ir.BinGe
	case ir.BinGe:
		return ir.BinGt
	case ir.BinEq:
		return ir.BinNe
	case ir.BinNe:
		return ir.BinEq
	case ir.BinAnd:
		return ir.BinOr
	case ir.BinOr:
		return ir.BinAnd
	default:
		return ir.BinAdd
	}
}
