package faultinj

// Corruption-reach checking for the heap-domain containment guarantee.
//
// The rewind-and-discard strategy claims that discarding a request's
// protection domain contains fail-silent corruption: once a domain is
// discarded, no later response may carry bytes derived from its memory.
// libsim records the domain provenance of every connection write (the
// WriteTaint audit trail); CheckReach turns that record into leak
// verdicts the chaos containment table asserts are empty.

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/libsim"
)

// Leak is one containment violation: a connection write whose source
// bytes derive from a protection domain other than the request being
// served — either a domain that was already discarded (a stale pointer
// surviving recovery) or a live foreign request's domain (cross-request
// snooping).
type Leak struct {
	Seq     int64   // write sequence number from the audit trail
	FD      int64   // connection written
	Trace   int64   // request trace of that connection (0 untraced)
	Addr    int64   // guest source buffer
	Serving int32   // domain register at write time
	Doms    []int32 // offending source domains
	Stale   bool    // at least one offending domain was already discarded
}

// String renders the leak for test failures and the containment report.
func (l Leak) String() string {
	kind := "foreign"
	if l.Stale {
		kind = "stale"
	}
	return fmt.Sprintf("write seq=%d fd=%d trace=%d addr=%#x serving=%d %s doms=%v",
		l.Seq, l.FD, l.Trace, l.Addr, l.Serving, kind, l.Doms)
}

// CheckReach audits a run's connection writes against the domain tags of
// their source ranges. A write is clean when every tagged source page
// belongs to the serving request's own domain; shared (untagged) memory
// is always legal — static strings, globals and the heap are not
// request-private. Anything else is a leak: bytes from a discarded
// domain's addresses (Stale) or from a live foreign domain.
func CheckReach(taints []libsim.WriteTaint) []Leak {
	var leaks []Leak
	for _, t := range taints {
		var bad []int32
		stale := false
		for _, d := range t.Doms {
			if d == t.Serving && !staleDom(t.Stale, d) {
				continue
			}
			bad = append(bad, d)
			if staleDom(t.Stale, d) {
				stale = true
			}
		}
		if len(bad) == 0 {
			continue
		}
		leaks = append(leaks, Leak{
			Seq: t.Seq, FD: t.FD, Trace: t.Trace, Addr: t.Addr,
			Serving: t.Serving, Doms: bad, Stale: stale,
		})
	}
	return leaks
}

func staleDom(stale []int32, d int32) bool {
	for _, s := range stale {
		if s == d {
			return true
		}
	}
	return false
}
