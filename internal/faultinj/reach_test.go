package faultinj_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/libsim"
)

// TestCheckReachHandBuiltLeaks feeds the checker a hand-built audit trail
// covering every verdict class: clean same-domain writes, shared-memory
// writes, a write sourcing a live foreign request's domain, and a write
// sourcing a domain that had already been discarded (the stale-pointer
// case the rewind strategy must contain).
func TestCheckReachHandBuiltLeaks(t *testing.T) {
	taints := []libsim.WriteTaint{
		// Clean: response bytes from the serving request's own arena.
		{Seq: 1, FD: 5, Trace: 101, Addr: 0x6000_0000, Len: 64, Serving: 1, Doms: []int32{1}},
		// Clean: shared memory only (no tagged pages at all).
		{Seq: 2, FD: 5, Trace: 101, Addr: 0x1000_0000, Len: 16, Serving: 1},
		// Leak: bytes from live foreign domain 2 while serving domain 1.
		{Seq: 3, FD: 5, Trace: 101, Addr: 0x6001_0000, Len: 32, Serving: 1, Doms: []int32{1, 2}},
		// Leak: bytes from domain 1, discarded by the time of the write.
		{Seq: 4, FD: 7, Trace: 102, Addr: 0x6000_0040, Len: 8, Serving: 3,
			Doms: []int32{1}, Stale: []int32{1}},
	}
	leaks := faultinj.CheckReach(taints)
	if len(leaks) != 2 {
		t.Fatalf("leaks = %d (%v), want 2", len(leaks), leaks)
	}
	if leaks[0].Seq != 3 || leaks[0].Stale || len(leaks[0].Doms) != 1 || leaks[0].Doms[0] != 2 {
		t.Errorf("foreign leak = %+v", leaks[0])
	}
	if leaks[1].Seq != 4 || !leaks[1].Stale || leaks[1].Doms[0] != 1 {
		t.Errorf("stale leak = %+v", leaks[1])
	}
	if leaks[1].Trace != 102 || leaks[1].Serving != 3 {
		t.Errorf("leak attribution = %+v", leaks[1])
	}
}

// TestCheckReachCleanRun asserts the empty verdict on an all-clean trail
// (what the chaos containment table requires of every cell).
func TestCheckReachCleanRun(t *testing.T) {
	taints := []libsim.WriteTaint{
		{Seq: 1, Serving: 1, Doms: []int32{1}},
		{Seq: 2, Serving: 2, Doms: []int32{2}},
		{Seq: 3, Serving: 0}, // boot-time write, no arena live
	}
	if leaks := faultinj.CheckReach(taints); len(leaks) != 0 {
		t.Fatalf("clean run produced leaks: %v", leaks)
	}
}
