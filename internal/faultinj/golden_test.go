package faultinj_test

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/faultinj"
)

// TestPlanFaultsGolden pins the exact plan PlanFaults produces for a
// fixed (prog, candidates, kind, max, seed) tuple. Recorded replay
// manifests (internal/replay) reference planted faults by plan output;
// if this test starts failing, a refactor changed the plan for a given
// seed and every previously recorded manifest is silently invalidated —
// treat that as a wire-format break, not a test to update casually.
func TestPlanFaultsGolden(t *testing.T) {
	prog := compileTarget(t)
	cands := []faultinj.BlockRef{
		{Func: "helper", Block: 0},
		{Func: "helper", Block: 1},
		{Func: "helper", Block: 2},
		{Func: "helper", Block: 3},
	}

	golden := []struct {
		kind faultinj.Kind
		seed int64
		want []faultinj.Fault
	}{
		{faultinj.FailStop, 7, []faultinj.Fault{
			{1, faultinj.FailStop, "helper", 1, 1},
			{2, faultinj.FailStop, "helper", 2, 0},
			{3, faultinj.FailStop, "helper", 0, 3},
		}},
		{faultinj.CorruptConst, 7, []faultinj.Fault{
			{1, faultinj.CorruptConst, "helper", 1, 0},
			{2, faultinj.CorruptConst, "helper", 2, 0},
			{3, faultinj.CorruptConst, "helper", 0, 0},
		}},
		{faultinj.WrongOperator, 7, []faultinj.Fault{
			{1, faultinj.WrongOperator, "helper", 1, 1},
			{2, faultinj.WrongOperator, "helper", 2, 1},
			{3, faultinj.WrongOperator, "helper", 0, 1},
		}},
		{faultinj.FlipBranch, 7, []faultinj.Fault{
			{1, faultinj.FlipBranch, "helper", 0, 5},
		}},
		{faultinj.FailStop, 99, []faultinj.Fault{
			{1, faultinj.FailStop, "helper", 0, 2},
			{2, faultinj.FailStop, "helper", 2, 0},
			{3, faultinj.FailStop, "helper", 3, 0},
		}},
		{faultinj.CorruptConst, 99, []faultinj.Fault{
			{1, faultinj.CorruptConst, "helper", 0, 0},
			{2, faultinj.CorruptConst, "helper", 2, 0},
			{3, faultinj.CorruptConst, "helper", 1, 0},
		}},
	}

	for _, g := range golden {
		got := faultinj.PlanFaults(prog, cands, g.kind, 3, g.seed)
		if len(got) != len(g.want) {
			t.Errorf("%v seed=%d: %d faults, want %d", g.kind, g.seed, len(got), len(g.want))
			continue
		}
		for i := range got {
			if got[i] != g.want[i] {
				t.Errorf("%v seed=%d fault %d = %v, want %v",
					g.kind, g.seed, i, got[i], g.want[i])
			}
		}
	}
}

// TestFaultJSONRoundTrip locks the fault wire format: the Kind encodes
// by name (stable across enum reordering) and decoding rebuilds the
// identical Fault.
func TestFaultJSONRoundTrip(t *testing.T) {
	all := []faultinj.Kind{
		faultinj.FailStop, faultinj.FlipBranch, faultinj.CorruptConst,
		faultinj.WrongOperator, faultinj.OffByOne,
	}
	for _, k := range all {
		f := faultinj.Fault{ID: 3, Kind: k, Func: "serve_request", Block: 4, Index: 7}
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		var back faultinj.Fault
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if back != f {
			t.Errorf("round trip %v != %v", back, f)
		}
	}
	// The encoded kind is the String name, not the enum ordinal.
	data, _ := json.Marshal(faultinj.Fault{ID: 1, Kind: faultinj.FlipBranch})
	want := `"kind":"flip-branch"`
	if !strings.Contains(string(data), want) {
		t.Errorf("encoding %s missing %s", data, want)
	}
	// Unknown names are a hard decode error, never a zero Kind.
	var f faultinj.Fault
	if err := json.Unmarshal([]byte(`{"id":1,"kind":"melt-cpu"}`), &f); err == nil {
		t.Error("unknown kind decoded without error")
	}
}
