package faultinj_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
)

const target = `
int helper(int x) {
	int y = x * 3;
	if (y > 10) {
		return y - 1;
	}
	return y + 1;
}
int main() {
	int total = 0;
	for (int i = 0; i < 5; i++) {
		total += helper(i);
	}
	return total;
}`

func compileTarget(t *testing.T) *ir.Program {
	t.Helper()
	prog, err := minic.Compile(target, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runProg(t *testing.T, prog *ir.Program) (int64, interp.Outcome) {
	t.Helper()
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(1_000_000)
	return m.ExitCode(), out
}

func TestBaselineResult(t *testing.T) {
	// helper(i) for i=0..4: y=0,3,6,9,12 → 1,4,7,10,11 → 33. Anchors the corruption tests.
	code, out := runProg(t, compileTarget(t))
	if out.Kind != interp.OutExited || code != 33 {
		t.Fatalf("baseline = %d (%v), want 33", code, out.Kind)
	}
}

func TestFailStopFaultCrashes(t *testing.T) {
	prog := compileTarget(t)
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: "helper", Block: 0, Index: 1}
	fp, err := faultinj.Apply(prog, fault)
	if err != nil {
		t.Fatal(err)
	}
	_, out := runProg(t, fp)
	if out.Kind != interp.OutTrapped || out.Code != ir.TrapInjected {
		t.Fatalf("outcome = %+v, want injected trap", out)
	}
	// The original program is untouched.
	if code, out := runProg(t, prog); out.Kind != interp.OutExited || code != 33 {
		t.Fatalf("original mutated: %d (%v)", code, out.Kind)
	}
}

func TestFailSilentFaultsCorruptWithoutCrash(t *testing.T) {
	prog := compileTarget(t)
	// Find a binop in helper for WrongOperator.
	f := prog.Funcs["helper"]
	var blk, idx int
	found := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpBin && b.Instrs[i].Bin == ir.BinMul {
				blk, idx = b.ID, i
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no multiply found in helper")
	}
	fp, err := faultinj.Apply(prog, faultinj.Fault{
		ID: 1, Kind: faultinj.WrongOperator, Func: "helper", Block: blk, Index: idx,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, out := runProg(t, fp)
	if out.Kind != interp.OutExited {
		t.Fatalf("fail-silent fault crashed: %+v", out)
	}
	if code == 33 {
		t.Fatal("fault did not corrupt the result")
	}
}

func TestFlipBranchChangesBehaviour(t *testing.T) {
	prog := compileTarget(t)
	f := prog.Funcs["helper"]
	var blk, idx int
	found := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpBr {
				blk, idx = b.ID, i
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no branch in helper")
	}
	fp, err := faultinj.Apply(prog, faultinj.Fault{
		ID: 1, Kind: faultinj.FlipBranch, Func: "helper", Block: blk, Index: idx,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, out := runProg(t, fp)
	if out.Kind != interp.OutExited || code == 33 {
		t.Fatalf("flip-branch: code=%d out=%v", code, out.Kind)
	}
}

func TestApplyValidatesTargets(t *testing.T) {
	prog := compileTarget(t)
	cases := []faultinj.Fault{
		{Kind: faultinj.FailStop, Func: "nope", Block: 0, Index: 0},
		{Kind: faultinj.FailStop, Func: "helper", Block: 99, Index: 0},
		{Kind: faultinj.FailStop, Func: "helper", Block: 0, Index: 99},
		{Kind: faultinj.FlipBranch, Func: "helper", Block: 0, Index: 0}, // not a branch
	}
	for _, f := range cases {
		if _, err := faultinj.Apply(prog, f); err == nil {
			t.Errorf("Apply(%v) succeeded, want error", f)
		}
	}
}

func TestProfileSeparatesPhases(t *testing.T) {
	prog := compileTarget(t)
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := faultinj.NewProfile()
	m.BlockHook = p.HookFunc
	// Run a few steps as "startup", then the rest as "serving".
	m.Run(10)
	p.MarkServing()
	m.Run(0)

	blocks := p.ServingBlocks("main")
	if len(blocks) == 0 {
		t.Fatal("no serving-phase candidate blocks")
	}
	for _, b := range blocks {
		if b.Func == "main" {
			t.Errorf("entry-function block %v offered as candidate", b)
		}
	}
}

func TestPlanFaultsDeterministic(t *testing.T) {
	prog := compileTarget(t)
	cands := []faultinj.BlockRef{
		{Func: "helper", Block: 0},
		{Func: "helper", Block: 1},
		{Func: "helper", Block: 2},
		{Func: "helper", Block: 3},
	}
	a := faultinj.PlanFaults(prog, cands, faultinj.FailStop, 3, 42)
	b := faultinj.PlanFaults(prog, cands, faultinj.FailStop, 3, 42)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("plans differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Disjoint seeds must be able to produce distinct plans: across a
	// seed sweep at least one plan must differ from seed 42's (a fixed,
	// deterministic check — no randomness in the test itself).
	distinct := false
	for seed := int64(43); seed < 53 && !distinct; seed++ {
		c := faultinj.PlanFaults(prog, cands, faultinj.FailStop, 3, seed)
		if len(c) != len(a) {
			distinct = true
			break
		}
		for i := range a {
			if a[i] != c[i] {
				distinct = true
				break
			}
		}
	}
	if !distinct {
		t.Error("seeds 42..52 all produced the identical plan: planning ignores the seed")
	}
}

func TestApplyFailStopOnGatelessBlock(t *testing.T) {
	// The target program calls no library function, so every planted
	// fail-stop fault lands in a block with no injectable gate (the
	// hardened runtime cannot divert it — the case the escalation ladder
	// sheds or reboots through). Apply must still produce a valid
	// program that traps with the injected code.
	prog := compileTarget(t)
	blk := prog.Funcs["helper"].Blocks[0]
	for i := range blk.Instrs {
		if blk.Instrs[i].Op == ir.OpLib {
			t.Fatalf("target block unexpectedly contains a lib call")
		}
	}
	fp, err := faultinj.Apply(prog, faultinj.Fault{
		ID: 1, Kind: faultinj.FailStop, Func: "helper", Block: 0, Index: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, out := runProg(t, fp)
	if out.Kind != interp.OutTrapped || out.Code != ir.TrapInjected {
		t.Fatalf("outcome = %+v, want injected trap", out)
	}
}

func TestPlanSkipsIneligibleBlocks(t *testing.T) {
	prog := compileTarget(t)
	// FlipBranch in blocks with no branch: plan must be empty rather
	// than invalid.
	cands := []faultinj.BlockRef{{Func: "main", Block: 0}}
	faults := faultinj.PlanFaults(prog, cands, faultinj.FlipBranch, 5, 1)
	for _, f := range faults {
		if _, err := faultinj.Apply(prog, f); err != nil {
			t.Errorf("planned fault %v does not apply: %v", f, err)
		}
	}
}

func TestKindAndFaultStrings(t *testing.T) {
	kinds := []faultinj.Kind{
		faultinj.FailStop, faultinj.FlipBranch, faultinj.CorruptConst,
		faultinj.WrongOperator, faultinj.OffByOne, faultinj.Kind(42),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
	f := faultinj.Fault{ID: 3, Kind: faultinj.OffByOne, Func: "g", Block: 2, Index: 1}
	if got := f.String(); got != "#3 off-by-one at g.b2.1" {
		t.Errorf("Fault.String() = %q", got)
	}
}

func TestCorruptConstAndOffByOne(t *testing.T) {
	src := `
int main() {
	int buf[4];
	buf[0] = 10; buf[1] = 20; buf[2] = 30; buf[3] = 40;
	int idx = 1;
	return buf[idx] + 100;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	if code, out := runProg(t, prog); out.Kind != interp.OutExited || code != 120 {
		t.Fatalf("baseline = %d (%v)", code, out.Kind)
	}

	// CorruptConst: find the constant 100 and bump it.
	f := prog.Funcs["main"]
	corrupted := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpConst && b.Instrs[i].Imm == 100 {
				fp, err := faultinj.Apply(prog, faultinj.Fault{
					ID: 1, Kind: faultinj.CorruptConst, Func: "main", Block: b.ID, Index: i,
				})
				if err != nil {
					t.Fatal(err)
				}
				code, out := runProg(t, fp)
				if out.Kind != interp.OutExited || code != 121 {
					t.Fatalf("corrupt-const run = %d (%v), want 121", code, out.Kind)
				}
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Fatal("constant 100 not found")
	}

	// OffByOne: shift a load/store offset; the result must change (or
	// the program crash), never silently validate-fail.
	planted := false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				fp, err := faultinj.Apply(prog, faultinj.Fault{
					ID: 2, Kind: faultinj.OffByOne, Func: "main", Block: b.ID, Index: i,
				})
				if err != nil {
					t.Fatalf("off-by-one apply: %v", err)
				}
				runProg(t, fp) // must not panic the simulator
				planted = true
			}
		}
	}
	if !planted {
		t.Fatal("no memory access found")
	}
}

func TestWrongOperatorCoversComparisons(t *testing.T) {
	// Each comparison flips to its adjacent operator; verify through the
	// program's observable behaviour for < vs <=.
	src := `
int main() {
	int hits = 0;
	for (int i = 0; i < 10; i++) { hits++; }
	return hits;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["main"]
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpBin && b.Instrs[i].Bin == ir.BinLt {
				fp, err := faultinj.Apply(prog, faultinj.Fault{
					ID: 1, Kind: faultinj.WrongOperator, Func: "main", Block: b.ID, Index: i,
				})
				if err != nil {
					t.Fatal(err)
				}
				code, out := runProg(t, fp)
				if out.Kind != interp.OutExited || code != 11 {
					t.Fatalf("< → <= run = %d (%v), want 11 iterations", code, out.Kind)
				}
				return
			}
		}
	}
	t.Fatal("no < comparison found")
}
