package libsim

import "sort"

// File is an in-memory filesystem node.
type File struct {
	Name string
	Data []byte
	Mode int64
}

// FS is the in-memory filesystem. Paths are flat strings (the example
// servers use paths like "/www/index.html"; no directory semantics are
// needed beyond prefix naming).
type FS struct {
	files map[string]*File

	// WriteLog records every mutation with externally visible effect
	// (write, unlink, rename, fsync); the evaluation uses it to check
	// that irrecoverable operations are never silently rolled back.
	WriteLog []string
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string]*File)}
}

// Add creates or replaces a file with the given contents.
func (fs *FS) Add(name string, data []byte) *File {
	f := &File{Name: name, Data: append([]byte(nil), data...), Mode: 0644}
	fs.files[name] = f
	return f
}

// Lookup returns the file or nil.
func (fs *FS) Lookup(name string) *File { return fs.files[name] }

// Remove deletes a file, reporting whether it existed.
func (fs *FS) Remove(name string) bool {
	if _, ok := fs.files[name]; !ok {
		return false
	}
	delete(fs.files, name)
	return true
}

// Rename moves a file, reporting whether the source existed.
func (fs *FS) Rename(from, to string) bool {
	f, ok := fs.files[from]
	if !ok {
		return false
	}
	delete(fs.files, from)
	f.Name = to
	fs.files[to] = f
	return true
}

// Names returns all file names in sorted order.
func (fs *FS) Names() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OpenFile is an open file descriptor's state.
type OpenFile struct {
	File   *File
	Offset int64
	Flags  int64
}

// Open flags (subset of fcntl.h).
const (
	ORdOnly = 0
	OWrOnly = 1
	ORdWr   = 2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)
