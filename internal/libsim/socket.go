package libsim

// Listener is a bound, listening socket with an accept queue.
type Listener struct {
	Port    int64
	backlog int
	queue   []*Conn
	closed  bool

	// Opts records setsockopt settings (so tests can assert on them and
	// compensation can be observed).
	Opts map[int64]int64
}

// Pending returns the number of connections waiting to be accepted.
func (l *Listener) Pending() int { return len(l.queue) }

// Conn is one established connection. The server side reads from in and
// writes to out; the client endpoint (package netsim) does the reverse.
type Conn struct {
	in, out      []byte
	clientClosed bool // client sent FIN: reads drain then return 0
	serverClosed bool // server closed its fd
	reset        bool // client sent RST: reads/writes fail with ECONNRESET

	// trace is the causal trace ID of the request the server is currently
	// consuming on this connection; pendingTrace holds a delivered-but-
	// unread request's ID until the server's first read promotes it (so a
	// crash before the server touches the new request is never attributed
	// to a trace that hasn't started). 0 means untraced.
	trace        int64
	pendingTrace int64
}

// CloseServer closes the server side of the connection.
func (c *Conn) CloseServer() { c.serverClosed = true }

// ServerClosed reports whether the server closed its end.
func (c *Conn) ServerClosed() bool { return c.serverClosed }

// ClientDeliver appends bytes arriving from the client (netsim side).
func (c *Conn) ClientDeliver(data []byte) { c.in = append(c.in, data...) }

// ClientDeliverTraced delivers request bytes stamped with a causal trace
// ID. The ID becomes the connection's active trace when the server first
// reads the bytes (see OS.SetTraceHook); until then it is only pending.
func (c *Conn) ClientDeliverTraced(data []byte, trace int64) {
	c.in = append(c.in, data...)
	if trace != 0 {
		c.pendingTrace = trace
	}
}

// Trace returns the connection's active trace ID (0 = untraced).
func (c *Conn) Trace() int64 { return c.trace }

// PromoteTrace marks trace as this connection's active trace if it is the
// one still pending. A proxy that forwarded the request to a back-end
// whose first read promoted it there calls this to mirror the promotion
// onto the client-facing front, so a pipelining client can observe that
// the server has started consuming its request.
func (c *Conn) PromoteTrace(trace int64) {
	if trace != 0 && c.pendingTrace == trace {
		c.pendingTrace = 0
	}
	if trace != 0 {
		c.trace = trace
	}
}

// ClientClose marks the client end closed (FIN).
func (c *Conn) ClientClose() { c.clientClosed = true }

// ClientReset aborts the connection from the client end (RST, the effect
// of closing with unread data or SO_LINGER 0). Queued inbound data is
// discarded and the peer's subsequent reads and writes fail with
// ECONNRESET, unlike the graceful drain-then-EOF of ClientClose.
func (c *Conn) ClientReset() {
	c.reset = true
	c.in = nil
}

// ClientTake drains and returns everything the server has written
// (netsim side).
func (c *Conn) ClientTake() []byte {
	out := c.out
	c.out = nil
	return out
}

// ClientTakeN drains at most n response bytes, leaving the rest queued —
// a slow reader whose receive window admits only part of what the server
// wrote. The undrained remainder keeps exerting backpressure exactly like
// a real socket buffer: the server's writes still land, the client just
// hasn't consumed them.
func (c *Conn) ClientTakeN(n int) []byte {
	if n <= 0 || len(c.out) == 0 {
		return nil
	}
	if n >= len(c.out) {
		return c.ClientTake()
	}
	out := append([]byte(nil), c.out[:n]...)
	c.out = append(c.out[:0], c.out[n:]...)
	return out
}

// OutboundLen returns bytes written by the server but not yet drained by
// the client — the slow-reader backlog.
func (c *Conn) OutboundLen() int { return len(c.out) }

// Readable reports whether a server-side read would make progress: data is
// queued, or the client closed (EOF and ECONNRESET are both readable).
func (c *Conn) Readable() bool { return len(c.in) > 0 || c.clientClosed || c.reset }

// NewConn returns a detached connection, not queued on any listener. The
// fleet balancer owns the listening endpoint Go-side: it hands detached
// conns to the workload driver as the client-facing front and proxies
// their bytes to a replica's real listener.
func NewConn() *Conn { return &Conn{} }

// ProxyTake drains the client→server direction from the balancer side:
// everything the client delivered, plus the pending (not yet active)
// trace ID stamped on it, which is cleared — the balancer re-stamps it
// on the back-end connection so the replica's first read still promotes
// it. Returns (nil, 0) when nothing is queued.
func (c *Conn) ProxyTake() (data []byte, trace int64) {
	data = c.in
	trace = c.pendingTrace
	c.in = nil
	c.pendingTrace = 0
	return data, trace
}

// ProxyDeliver queues response bytes toward the client on behalf of the
// back-end replica (the balancer-side mirror of a server write).
func (c *Conn) ProxyDeliver(data []byte) { c.out = append(c.out, data...) }

// ClientGone reports whether the client end is gone (FIN or RST): the
// balancer drops such conns instead of failing them over.
func (c *Conn) ClientGone() bool { return c.clientClosed || c.reset }

// ClientResetSeen reports an abortive close specifically (RST).
func (c *Conn) ClientResetSeen() bool { return c.reset }

// InboundLen returns queued unread bytes (tests).
func (c *Conn) InboundLen() int { return len(c.in) }

// Connect establishes a client connection to a bound port, Go-side. It
// returns the connection to drive from the client end, or nil if no
// listener is bound or the accept queue is full.
func (o *OS) Connect(port int64) *Conn {
	l, ok := o.ports[port]
	if !ok || l.closed {
		return nil
	}
	if l.backlog > 0 && len(l.queue) >= l.backlog {
		return nil
	}
	c := &Conn{}
	l.queue = append(l.queue, c)
	return c
}

// ListenerOn returns the listener bound to port, or nil (tests).
func (o *OS) ListenerOn(port int64) *Listener { return o.ports[port] }

// Unbind releases a bound port without closing the socket's descriptor —
// the compensation action for bind(2), which must revert the binding while
// leaving the fd for the application's own error handling to close.
func (o *OS) Unbind(port int64) bool {
	l, ok := o.ports[port]
	if !ok {
		return false
	}
	l.Port = 0
	delete(o.ports, port)
	return true
}

// PortOfFD returns the bound port of a listener descriptor, or -1.
func (o *OS) PortOfFD(fd int64) int64 {
	s := o.lookupFD(fd)
	if s == nil || s.Kind != FDListener {
		return -1
	}
	return s.Listener.Port
}

// SockOutLen returns the bytes queued toward the client on a connection
// descriptor, or -1 for non-connection descriptors. Together with
// TruncateSockOut it implements the paper's proposed write-masking
// extension (§V-A): a socket write's network-visible effect can be
// retracted while the bytes are still in flight, letting write/send join
// the recoverable classes.
func (o *OS) SockOutLen(fd int64) int64 {
	s := o.lookupFD(fd)
	if s == nil || s.Kind != FDConn {
		return -1
	}
	return int64(len(s.Conn.out))
}

// TruncateSockOut drops bytes queued after position n on a connection
// (the compensation action for a masked write).
func (o *OS) TruncateSockOut(fd, n int64) bool {
	s := o.lookupFD(fd)
	if s == nil || s.Kind != FDConn {
		return false
	}
	if n >= 0 && n < int64(len(s.Conn.out)) {
		s.Conn.out = s.Conn.out[:n]
	}
	return true
}

// Epoll is an epoll instance: the watched-descriptor set as a bitmap
// indexed by fd. Descriptors are small ints from the slab, so the dense
// representation replaces the old map (one alloc per conn plus hash
// churn per wait) and makes the ready scan a naturally-ordered sweep.
type Epoll struct {
	watched []bool
}

// watch marks fd as watched, growing the bitmap as needed.
func (e *Epoll) watch(fd int64) {
	if fd < 0 {
		return
	}
	for int64(len(e.watched)) <= fd {
		e.watched = append(e.watched, false)
	}
	e.watched[fd] = true
}

// unwatch clears fd from the watched set.
func (e *Epoll) unwatch(fd int64) {
	if fd >= 0 && fd < int64(len(e.watched)) {
		e.watched[fd] = false
	}
}

// readyFDs returns watched descriptors that are currently readable, in
// ascending fd order (deterministic). The returned slice is the OS's
// reusable scratch buffer, valid until the next call.
func (o *OS) readyFDs(ep *Epoll) []int64 {
	ready := o.epready[:0]
	for i := range ep.watched {
		if !ep.watched[i] {
			continue
		}
		fd := int64(i)
		s := o.lookupFD(fd)
		if s == nil {
			continue
		}
		switch s.Kind {
		case FDListener:
			if len(s.Listener.queue) > 0 {
				ready = append(ready, fd)
			}
		case FDConn:
			if s.Conn.Readable() {
				ready = append(ready, fd)
			}
		case FDEventFD:
			ready = append(ready, fd)
		}
	}
	o.epready = ready
	return ready
}
