// Package libsim is the simulated operating system and C library that
// protected programs run against.
//
// Library calls are the heart of FIRestarter: they are the only way a
// program interacts with its environment, they report errors through
// documented return values and errno, and they define the boundaries of the
// crash transactions. This package provides executable semantics for the
// calls the example servers use — file descriptors, TCP-style sockets with
// an accept queue and byte streams, epoll, an in-memory filesystem, a heap
// allocator, time — plus the Go-side hooks the recovery runtime needs to
// run compensation actions (close an fd, free a block, restore a file
// offset) when it injects a fault.
//
// All writes the library performs into application memory (read(2) filling
// a buffer, memset, memcpy, ...) go through a pluggable store function so
// that the active crash transaction captures them: in HTM mode they join
// the hardware write set (and can abort it — the paper's Fig. 3 shows
// exactly this for post-malloc initialization), in STM mode they are undo-
// logged, and on rollback they are reverted like any program store.
package libsim

import (
	"encoding/binary"
	"fmt"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// Errno values (Linux numbering) reported by simulated calls.
const (
	EPERM      = 1
	ENOENT     = 2
	EINTR      = 4
	EBADF      = 9
	EAGAIN     = 11
	ENOMEM     = 12
	EACCES     = 13
	EFAULT     = 14
	EINVAL     = 22
	EMFILE     = 24
	ENOSPC     = 28
	EPIPE      = 32
	EDEADLK    = 35
	ENOTCONN   = 107
	EADDRINUSE = 98
	ECONNRESET = 104
)

// FDKind distinguishes descriptor flavours in the fd table.
type FDKind int

// Descriptor kinds.
const (
	FDFree FDKind = iota
	FDFile
	FDListener
	FDConn
	FDEpoll
	FDEventFD
	FDPipe
)

// FD is one slot in the descriptor table.
type FD struct {
	Kind     FDKind
	File     *OpenFile
	Listener *Listener
	Conn     *Conn
	Epoll    *Epoll
	NonBlock bool
}

// StoreFunc writes into application memory on behalf of a library call.
// The recovery runtime points it at the active transaction so library
// writes are checkpointed like program stores.
type StoreFunc func(addr, val int64, width int) error

// TraceFunc observes the activation of a request trace ID: the server
// just consumed the first bytes of a newly delivered traced request. The
// recovery runtime installs one to emit the req-start span; the scheduler
// re-points it at the running thread's runtime on context switch, exactly
// like the store hook.
type TraceFunc func(trace int64)

// ErrBlocked is returned by a call that would block (e.g. epoll_wait with
// nothing ready); the interpreter yields to the workload driver and retries
// the call on resume.
var ErrBlocked = fmt.Errorf("libsim: call would block")

// ThreadOps is the scheduler's side of the pthread-style library calls
// (thread_create, thread_join, mutex_lock, mutex_unlock). The OS only
// dispatches; thread and mutex state live in the scheduler. Blocking
// operations return ErrBlocked and are retried when the scheduler wakes
// the calling thread. Implementations set o.Errno on failure themselves.
type ThreadOps interface {
	// Create spawns a thread running the named function with one integer
	// argument and returns its id (>= 1), or -1 with errno set.
	Create(fn string, arg int64) (int64, error)
	// Join waits for a thread to exit; returns 0 on success, -1 with
	// errno set for an unknown id, or ErrBlocked while it still runs.
	Join(tid int64) (int64, error)
	// MutexLock/MutexUnlock return 0 or a pthread-style error code
	// directly (EDEADLK for a recursive lock, EPERM for unlocking a
	// mutex the caller does not hold). Lock returns ErrBlocked while
	// another thread holds the mutex.
	MutexLock(id int64) (int64, error)
	MutexUnlock(id int64) (int64, error)
	// Cancel tears down a thread that should not have been created (the
	// compensation action for a rolled-back thread_create).
	Cancel(tid int64) bool
}

// OS is a simulated operating system instance bound to one address space.
// It is single-threaded, like the paper's protected servers (§VII).
type OS struct {
	Space *mem.Space
	Errno int64

	fds    []FD // value slab: slots are reused in place, never freed to the GC
	heap   *Heap
	fs     *FS
	clock  int64 // nanoseconds, advanced by Tick and time calls
	pid    int64
	stdout []byte // bytes written to fd 1/2 (program log)

	store     StoreFunc
	onTrace   TraceFunc
	threads   ThreadOps
	deferFree DeferFreeFunc
	cycles    *int64
	wscratch  []byte  // reusable buffer for doWrite payloads (never escapes)
	epready   []int64 // reusable ready-list for readyFDs (never escapes)

	// lastRead is held by value and its Data buffer is reused across
	// reads: only the most recent record is ever reachable (LastRead),
	// and the read/recv compensation copies the bytes out via Unread
	// before the next read can overwrite them. FD -1 means no read yet.
	lastRead ReadRecord

	// servingFD is the connection descriptor most recently read from or
	// written to — the request the server is currently handling. The
	// recovery runtime's shed rung closes it when it drops a request
	// (-1 when no connection has been touched yet).
	servingFD int64

	// ports maps bound port → listener for the client side (netsim).
	ports map[int64]*Listener

	// arena is the per-request bump-arena manager (see arena.go);
	// inert until EnableArenas.
	arena arenaState

	// OOMAfter, when positive, makes the allocator fail with ENOMEM
	// after that many more successful allocations (fault-injection aid).
	OOMAfter int64

	// Trace, when non-nil, receives one line per library call (used by
	// the profiling experiments).
	Trace func(name string)
}

// New returns an OS bound to the given address space.
func New(space *mem.Space) *OS {
	o := &OS{
		Space:     space,
		heap:      newHeap(space),
		fs:        NewFS(),
		pid:       4242,
		ports:     make(map[int64]*Listener),
		servingFD: -1,
	}
	o.store = space.Store
	o.lastRead.FD = -1
	// Reserve stdin/stdout/stderr so application fds start at 3.
	o.fds = []FD{{Kind: FDFile}, {Kind: FDFile}, {Kind: FDFile}}
	return o
}

// FS returns the in-memory filesystem (for preloading a document root).
func (o *OS) FS() *FS { return o.fs }

// Heap exposes the allocator (for tests and compensation actions).
func (o *OS) Heap() *Heap { return o.heap }

// SetCycleSink points the library's cost accounting at the machine's
// cycle counter, so bulk operations (memcpy, read, pread, ...) cost the
// same under every runtime. A nil sink disables charging.
func (o *OS) SetCycleSink(c *int64) { o.cycles = c }

// charge adds n cycles of library-internal work.
func (o *OS) charge(n int64) {
	if o.cycles != nil {
		*o.cycles += n
	}
}

// SetStore installs the transaction-aware store function. A nil store
// restores direct writes.
func (o *OS) SetStore(s StoreFunc) {
	if s == nil {
		o.store = o.Space.Store
		return
	}
	o.store = s
}

// SetTraceHook installs the request-trace activation hook (nil disables
// it). The hook fires from doRead when a pending trace ID is promoted to
// the connection's active trace — no cycles are charged for it, so
// enabling tracing never perturbs the cost model.
func (o *OS) SetTraceHook(f TraceFunc) { o.onTrace = f }

// CurrentTrace returns the trace ID of the request being served — the
// active trace of the serving connection — or 0 when there is none.
func (o *OS) CurrentTrace() int64 {
	s := o.lookupFD(o.servingFD)
	if s == nil || s.Kind != FDConn {
		return 0
	}
	return s.Conn.trace
}

// ServingFD returns the raw serving descriptor (scheduler save/restore;
// unlike ServingConnFD it does not validate liveness).
func (o *OS) ServingFD() int64 { return o.servingFD }

// SetServingFD restores a previously saved serving descriptor. The
// scheduler swaps it per thread on context switch so each thread's notion
// of "the request being served" survives preemption.
func (o *OS) SetServingFD(fd int64) { o.servingFD = fd }

// SetThreads installs the scheduler hook behind the pthread-style calls.
// Without one (the single-threaded default) those calls fail with EINVAL.
func (o *OS) SetThreads(t ThreadOps) { o.threads = t }

// Threads returns the installed scheduler hook (compensation actions).
func (o *OS) Threads() ThreadOps { return o.threads }

// Stdout returns everything the program wrote to stdout/stderr.
func (o *OS) Stdout() string { return string(o.stdout) }

// StdoutLen returns the current length of the program's output; the
// recovery runtime snapshots it at transaction begin so log lines written
// by embedded printf/puts calls can be compensated on rollback.
func (o *OS) StdoutLen() int { return len(o.stdout) }

// TruncateStdout discards output written after position n (rollback
// compensation for embedded output calls).
func (o *OS) TruncateStdout(n int) {
	if n >= 0 && n < len(o.stdout) {
		o.stdout = o.stdout[:n]
	}
}

// Pid returns the simulated process id.
func (o *OS) Pid() int64 { return o.pid }

// Now returns the simulated clock in nanoseconds.
func (o *OS) Now() int64 { return o.clock }

// AdvanceClock moves the simulated clock forward.
func (o *OS) AdvanceClock(ns int64) { o.clock += ns }

// allocFD finds the lowest free descriptor slot, appends if necessary.
// The table is a value slab: the FD is copied into the slot, so the
// steady state (slot reuse after CloseFD) allocates nothing.
func (o *OS) allocFD(fd FD) int64 {
	for i := range o.fds {
		if o.fds[i].Kind == FDFree {
			o.fds[i] = fd
			return int64(i)
		}
	}
	if len(o.fds) >= 1024 {
		return -1
	}
	o.fds = append(o.fds, fd)
	return int64(len(o.fds) - 1)
}

// lookupFD returns a pointer into the descriptor slab, or nil. The
// pointer is only valid until the next allocFD (which may grow the
// slab); no handler holds one across an allocation.
func (o *OS) lookupFD(fd int64) *FD {
	if fd < 0 || fd >= int64(len(o.fds)) {
		return nil
	}
	if o.fds[fd].Kind == FDFree {
		return nil
	}
	return &o.fds[fd]
}

// CloseFD closes a descriptor Go-side (used by compensation actions). It
// returns false for an invalid descriptor.
func (o *OS) CloseFD(fd int64) bool {
	s := o.lookupFD(fd)
	if s == nil {
		return false
	}
	switch s.Kind {
	case FDListener:
		delete(o.ports, s.Listener.Port)
		s.Listener.closed = true
	case FDConn:
		s.Conn.CloseServer()
		// The owning request is over (close or shed): discard its arena
		// so the slab never leaks across connections.
		if o.arena.cur != nil && o.arena.cur.fd == fd {
			o.arenaRetire()
		}
	}
	if fd >= 3 {
		o.fds[fd] = FD{Kind: FDFree}
	}
	return true
}

// ServingConnFD returns the connection descriptor most recently read from
// or written to — the runtime's best guess at "the request being served" —
// or -1 when there is none (never touched, closed, or not a connection).
func (o *OS) ServingConnFD() int64 {
	s := o.lookupFD(o.servingFD)
	if s == nil || s.Kind != FDConn {
		return -1
	}
	return o.servingFD
}

// ShedConn force-closes the connection currently being served — the
// connection-reset half of the recovery runtime's shed rung. It returns
// the closed descriptor, or -1 if no live connection was being served.
// The client side observes the close (ServerClosed) and reconnects; the
// epoll ready scan skips the freed slot automatically.
func (o *OS) ShedConn() int64 {
	fd := o.ServingConnFD()
	o.servingFD = -1
	if fd < 0 {
		return -1
	}
	o.CloseFD(fd)
	return fd
}

// OpenFDs counts live descriptors (excluding std streams); tests use it to
// detect descriptor leaks across recovery.
func (o *OS) OpenFDs() int {
	n := 0
	for i := range o.fds {
		if i >= 3 && o.fds[i].Kind != FDFree {
			n++
		}
	}
	return n
}

// String names the descriptor kind for diagnostics.
func (k FDKind) String() string {
	switch k {
	case FDFree:
		return "free"
	case FDFile:
		return "file"
	case FDListener:
		return "listener"
	case FDConn:
		return "conn"
	case FDEpoll:
		return "epoll"
	case FDEventFD:
		return "eventfd"
	case FDPipe:
		return "pipe"
	default:
		return fmt.Sprintf("fdkind(%d)", int(k))
	}
}

// OpenFDList renders the live descriptor table (excluding std streams) as
// "fd=N kind" strings in fd order — the open-FD section of a replay
// state dump.
func (o *OS) OpenFDList() []string {
	var out []string
	for i := range o.fds {
		if i >= 3 && o.fds[i].Kind != FDFree {
			out = append(out, fmt.Sprintf("fd=%d %s", i, o.fds[i].Kind))
		}
	}
	return out
}

// writeBytes pushes a byte slice into application memory through the
// transaction-aware store, in 8-byte words where possible (modelling the
// word-granular store instrumentation real compiler passes emit), with
// byte stores at the unaligned tail.
func (o *OS) writeBytes(addr int64, data []byte) error {
	i := 0
	for ; i+8 <= len(data); i += 8 {
		w := int64(binary.LittleEndian.Uint64(data[i : i+8]))
		o.charge(2)
		if err := o.store(addr+int64(i), w, 8); err != nil {
			return err
		}
	}
	for ; i < len(data); i++ {
		o.charge(2)
		if err := o.store(addr+int64(i), int64(data[i]), 1); err != nil {
			return err
		}
	}
	return nil
}
