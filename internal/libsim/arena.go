package libsim

// Per-request bump-pointer arenas over protection domains (the
// rewind-and-discard checkpoint backend's memory half).
//
// When arenas are enabled, the application routes request-scoped
// allocations through the arena_alloc library call (the apache
// request-pool idiom) and delimits request scope with arena_reset. Each
// request's arena is a fixed-size slab carved from the dedicated arena
// segment (mem.ArenaBase), mapped on first use, tagged with a fresh
// monotonically increasing domain ID, and torn down through
// mem.Space.Unmap — the same path ordinary unmaps take, so TLB entries
// and domain tags are invalidated together. Slab base addresses are
// recycled LIFO, which keeps the address stream (and therefore every
// downstream cycle count) deterministic.
//
// The arena manager also keeps the fail-silent containment record: every
// connection write is audited against the domain tags of its source
// range (see WriteTaint), and every discarded domain is remembered, so
// the faultinj corruption-reach checker can prove that no post-recovery
// response bytes derive from a discarded request's memory.

import "github.com/firestarter-go/firestarter/internal/mem"

// ArenaSlabSize is the fixed per-request arena capacity (16 pages).
// Requests that outgrow it fall back to the ordinary heap — counted, and
// the dynamic policy backs off from the rewind strategy when fallbacks
// make O(1) discard ineffective.
const ArenaSlabSize = 16 * mem.PageSize

// Arena is one request's bump allocator.
type Arena struct {
	base int64
	size int64
	used int64
	dom  int32
	fd   int64           // owning connection descriptor
	sz   map[int64]int64 // chunk start -> aligned size (realloc support)
}

// Dom returns the arena's protection domain ID.
func (a *Arena) Dom() int32 { return a.dom }

// Base returns the slab base address.
func (a *Arena) Base() int64 { return a.base }

// Used returns the current bump offset.
func (a *Arena) Used() int64 { return a.used }

// ArenaStats is the arena manager's accounting, reconciled against the
// core.arena_* metrics.
type ArenaStats struct {
	Allocs    int64 // successful arena_alloc bumps
	Fallbacks int64 // arena_alloc requests served by the heap instead
	Retires   int64 // arenas discarded at request end (arena_reset/close)
	Slabs     int64 // distinct slabs ever mapped
}

// WriteTaint records the domain provenance of one connection write while
// arenas are enabled. Doms holds the distinct non-zero domain tags of
// the source range's pages; Stale is the subset that had already been
// discarded when the write happened. The faultinj corruption-reach
// checker turns these into leak verdicts.
type WriteTaint struct {
	Seq     int64 // write sequence number (per OS, from 1)
	FD      int64
	Trace   int64 // active trace of the written connection (0 untraced)
	Addr    int64 // guest source buffer
	Len     int64
	Serving int32 // current domain register at write time
	Doms    []int32
	Stale   []int32
}

// arenaState is the OS-level arena manager.
type arenaState struct {
	on        bool
	cur       *Arena
	freeSlabs []int64 // recycled slab bases, LIFO
	nextSlab  int64
	nextDom   int32
	stats     ArenaStats

	discarded map[int32]bool
	order     []int32 // discard order (deterministic reporting)

	taintSeq int64
	taints   []WriteTaint

	onEnter  func(dom int32)
	onRetire func(dom int32)
}

// EnableArenas switches on per-request arenas (and domain checking on
// the underlying space). Idempotent.
func (o *OS) EnableArenas() {
	if o.arena.on {
		return
	}
	o.arena.on = true
	o.arena.nextSlab = mem.ArenaBase
	o.arena.nextDom = 1
	o.arena.discarded = make(map[int32]bool)
	o.Space.EnableDomains()
}

// ArenasEnabled reports whether per-request arenas are on.
func (o *OS) ArenasEnabled() bool { return o.arena.on }

// SetArenaHooks installs the runtime's domain lifecycle observers:
// enter fires when a request's domain becomes current (first
// arena_alloc), retire when it is discarded at request end. Like the
// trace hook, neither charges cycles.
func (o *OS) SetArenaHooks(enter, retire func(dom int32)) {
	o.arena.onEnter = enter
	o.arena.onRetire = retire
}

// ArenaStats returns the manager's counters.
func (o *OS) ArenaStats() ArenaStats { return o.arena.stats }

// ActiveArena returns the live arena (nil when none).
func (o *OS) ActiveArena() *Arena { return o.arena.cur }

// ActiveArenaDom returns the live arena's domain, or 0.
func (o *OS) ActiveArenaDom() int32 {
	if o.arena.cur == nil {
		return 0
	}
	return o.arena.cur.dom
}

// WriteTaints returns the containment audit trail: one record per
// connection write performed while arenas were enabled.
func (o *OS) WriteTaints() []WriteTaint { return o.arena.taints }

// DiscardedDoms returns every discarded domain ID in discard order.
func (o *OS) DiscardedDoms() []int32 { return o.arena.order }

// arenaOwns reports whether addr lies in the arena segment. Frees of
// arena addresses are no-ops (bump arenas reclaim wholesale), including
// stale pointers into already-discarded slabs — the access itself traps,
// but a free must not be misdiagnosed as heap corruption.
func (o *OS) arenaOwns(addr int64) bool {
	return o.arena.on && addr >= mem.ArenaBase && addr < mem.ArenaLimit
}

// arenaOpen maps and tags a fresh arena for the serving connection,
// switching the current-domain register to it.
func (o *OS) arenaOpen(fd int64) *Arena {
	st := &o.arena
	var base int64
	if n := len(st.freeSlabs); n > 0 {
		base = st.freeSlabs[n-1]
		st.freeSlabs = st.freeSlabs[:n-1]
	} else {
		if st.nextSlab+ArenaSlabSize > mem.ArenaLimit {
			return nil // segment exhausted: callers fall back to the heap
		}
		base = st.nextSlab
		st.nextSlab += ArenaSlabSize
		st.stats.Slabs++
	}
	if err := o.Space.Map(base, ArenaSlabSize); err != nil {
		return nil
	}
	dom := st.nextDom
	st.nextDom++
	if err := o.Space.TagDomain(base, ArenaSlabSize, dom); err != nil {
		return nil
	}
	a := &Arena{base: base, size: ArenaSlabSize, dom: dom, fd: fd, sz: make(map[int64]int64)}
	st.cur = a
	o.Space.SetDomain(dom)
	if st.onEnter != nil {
		st.onEnter(dom)
	}
	return a
}

// arenaRetire discards the live arena: the slab is unmapped (clearing
// its pages, TLB entries and domain tags in one pass), its base recycled
// and its domain recorded as discarded forever. O(1) in the cost model —
// no undo replay, no per-chunk work.
func (o *OS) arenaRetire() {
	st := &o.arena
	a := st.cur
	if a == nil {
		return
	}
	st.cur = nil
	st.discarded[a.dom] = true
	st.order = append(st.order, a.dom)
	st.stats.Retires++
	_ = o.Space.Unmap(a.base, a.size)
	st.freeSlabs = append(st.freeSlabs, a.base)
	o.Space.SetDomain(0)
	if st.onRetire != nil {
		st.onRetire(a.dom)
	}
}

// ArenaAlloc is the arena_alloc implementation. With arenas off it is
// exactly malloc, so the pool apps run unchanged (and comparably) under
// the HTM/STM strategies. With arenas on it bumps the serving request's
// arena, opening one on first use and retiring a stale one if the
// serving connection changed without an arena_reset.
func (o *OS) ArenaAlloc(size int64) (int64, error) {
	if !o.arena.on {
		return o.alloc(size)
	}
	if o.oomNow() {
		o.Errno = ENOMEM
		return 0, nil
	}
	a := o.arena.cur
	if a != nil && a.fd != o.servingFD {
		o.arenaRetire()
		a = nil
	}
	if a == nil {
		a = o.arenaOpen(o.servingFD)
	}
	if size <= 0 {
		size = heapAlign
	}
	size = align(size)
	if a == nil || a.used+size > a.size {
		// Oversized request (or exhausted segment): heap fallback. The
		// chunk escapes O(1) discard, which the rewind policy's back-off
		// watches through this counter.
		o.arena.stats.Fallbacks++
		addr := o.heap.Alloc(size)
		if addr == 0 {
			o.Errno = ENOMEM
		}
		return addr, nil
	}
	addr := a.base + a.used
	a.used += size
	a.sz[addr] = size
	o.arena.stats.Allocs++
	return addr, nil
}

// ArenaReset is the arena_reset implementation: the application's
// request-end marker. Discards the serving request's arena (no-op when
// arenas are off or none is live).
func (o *OS) ArenaReset() {
	if o.arena.on {
		o.arenaRetire()
	}
}

// arenaRealloc regrows an arena chunk by bump-allocating a copy (bump
// arenas never free). Returns the new address, 0 on ENOMEM.
func (o *OS) arenaRealloc(addr, size int64) (int64, error) {
	a := o.arena.cur
	var old int64
	if a != nil {
		old = a.sz[addr]
	}
	naddr, err := o.ArenaAlloc(size)
	if err != nil || naddr == 0 {
		return naddr, err
	}
	if old > 0 {
		if size < old {
			old = size
		}
		data, err := o.Space.ReadBytes(addr, old)
		if err != nil {
			return 0, err
		}
		if err := o.Space.WriteBytes(naddr, data); err != nil {
			return 0, err
		}
	}
	return naddr, nil
}

// ArenaTxMark returns the live arena's bump offset, the O(1) checkpoint
// the rewind strategy records at transaction entry (-1 when no arena is
// live — the transaction then has nothing to discard).
func (o *OS) ArenaTxMark() int64 {
	if !o.arena.on || o.arena.cur == nil {
		return -1
	}
	return o.arena.cur.used
}

// ArenaTxRewind discards everything the transaction bump-allocated:
// chunks above the mark are dropped and their bytes rezeroed so the
// retry re-allocates them byte-identically. Constant cost-model work —
// the Go-side rezero is host work, not simulated cycles (documented in
// docs/RUNTIME.md).
func (o *OS) ArenaTxRewind(mark int64) {
	a := o.arena.cur
	if !o.arena.on || a == nil || mark < 0 || mark >= a.used {
		return
	}
	for addr := range a.sz {
		if addr >= a.base+mark {
			delete(a.sz, addr)
		}
	}
	_ = o.heap.scrub(a.base+mark, a.used-mark)
	a.used = mark
}

// auditWrite records the domain provenance of a connection write (the
// containment audit). Called from doWrite with the serving connection's
// trace; charges nothing.
func (o *OS) auditWrite(fd, buf, n, trace int64) {
	st := &o.arena
	st.taintSeq++
	t := WriteTaint{
		Seq: st.taintSeq, FD: fd, Trace: trace,
		Addr: buf, Len: n,
		Serving: o.Space.CurrentDomain(),
	}
	first := buf / mem.PageSize
	last := (buf + n - 1) / mem.PageSize
	seen := int32(0)
	for p := first; p <= last; p++ {
		d := o.Space.PageDomain(p * mem.PageSize)
		if d == 0 || d == seen {
			continue
		}
		seen = d
		t.Doms = append(t.Doms, d)
		if st.discarded[d] {
			t.Stale = append(t.Stale, d)
		}
	}
	st.taints = append(st.taints, t)
}
