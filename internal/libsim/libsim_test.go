package libsim

import (
	"errors"
	"testing"

	"github.com/firestarter-go/firestarter/internal/mem"
)

func newOS(t *testing.T) *OS {
	t.Helper()
	s := mem.NewSpace()
	if err := s.Map(mem.GlobalBase, 1<<16); err != nil {
		t.Fatal(err)
	}
	return New(s)
}

// putStr writes a C string into the global segment and returns its address.
func putStr(t *testing.T, o *OS, off int64, s string) int64 {
	t.Helper()
	addr := mem.GlobalBase + off
	if err := o.Space.WriteBytes(addr, append([]byte(s), 0)); err != nil {
		t.Fatal(err)
	}
	return addr
}

func call(t *testing.T, o *OS, name string, args ...int64) int64 {
	t.Helper()
	v, err := o.Call(name, args)
	if err != nil {
		t.Fatalf("%s%v: %v", name, args, err)
	}
	return v
}

func TestMallocFree(t *testing.T) {
	o := newOS(t)
	p := call(t, o, "malloc", 100)
	if p == 0 {
		t.Fatal("malloc returned 0")
	}
	if err := o.Space.Store(p+50, 7, 8); err != nil {
		t.Fatalf("allocated memory not writable: %v", err)
	}
	call(t, o, "free", p)
	if o.Heap().LiveBytes() != 0 {
		t.Errorf("LiveBytes = %d after free", o.Heap().LiveBytes())
	}
}

func TestFreeNullIsNoop(t *testing.T) {
	o := newOS(t)
	call(t, o, "free", 0)
}

func TestWildFreeIsCorruption(t *testing.T) {
	o := newOS(t)
	_, err := o.Call("free", []int64{0x1234})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wild free: err = %v, want ErrCorrupt", err)
	}
}

func TestDoubleFreeIsCorruption(t *testing.T) {
	o := newOS(t)
	p := call(t, o, "malloc", 64)
	call(t, o, "free", p)
	_, err := o.Call("free", []int64{p})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("double free: err = %v, want ErrCorrupt", err)
	}
}

func TestHeapReuseAndCoalesce(t *testing.T) {
	o := newOS(t)
	h := o.Heap()
	a := h.Alloc(64)
	b := h.Alloc(64)
	c := h.Alloc(64)
	h.Free(a)
	h.Free(c)
	if h.FreeListLen() != 2 {
		t.Fatalf("free list = %d spans, want 2 (non-adjacent)", h.FreeListLen())
	}
	h.Free(b)
	if h.FreeListLen() != 1 {
		t.Fatalf("free list = %d spans after coalescing, want 1", h.FreeListLen())
	}
	d := h.Alloc(192)
	if d != a {
		t.Errorf("coalesced span not reused: got %#x, want %#x", d, a)
	}
}

func TestCallocZeroesRecycledMemory(t *testing.T) {
	o := newOS(t)
	p := call(t, o, "malloc", 64)
	if err := o.Space.Store(p, -1, 8); err != nil {
		t.Fatal(err)
	}
	call(t, o, "free", p)
	q := call(t, o, "calloc", 8, 8)
	if q != p {
		t.Fatalf("expected recycled chunk %#x, got %#x", p, q)
	}
	v, _ := o.Space.Load(q, 8)
	if v != 0 {
		t.Fatalf("calloc memory not zeroed: %#x", v)
	}
}

func TestReallocPreservesData(t *testing.T) {
	o := newOS(t)
	p := call(t, o, "malloc", 16)
	if err := o.Space.Store(p, 0xdeadbeef, 8); err != nil {
		t.Fatal(err)
	}
	q := call(t, o, "realloc", p, 256)
	if q == 0 {
		t.Fatal("realloc failed")
	}
	v, _ := o.Space.Load(q, 8)
	if v != 0xdeadbeef {
		t.Fatalf("realloc lost data: %#x", v)
	}
}

func TestPosixMemalign(t *testing.T) {
	o := newOS(t)
	out := int64(mem.GlobalBase + 0x100)
	r := call(t, o, "posix_memalign", out, 4096, 100)
	if r != 0 {
		t.Fatalf("posix_memalign = %d", r)
	}
	p, _ := o.Space.Load(out, 8)
	if p == 0 || p%4096 != 0 {
		t.Fatalf("pointer %#x not 4096-aligned", p)
	}
}

func TestOOMInjection(t *testing.T) {
	o := newOS(t)
	o.OOMAfter = 3
	if call(t, o, "malloc", 8) == 0 {
		t.Fatal("alloc 1 failed early")
	}
	if call(t, o, "malloc", 8) == 0 {
		t.Fatal("alloc 2 failed early")
	}
	if p := call(t, o, "malloc", 8); p != 0 {
		t.Fatalf("alloc 3 should fail, got %#x", p)
	}
	if o.Errno != ENOMEM {
		t.Errorf("errno = %d, want ENOMEM", o.Errno)
	}
}

func TestSocketLifecycle(t *testing.T) {
	o := newOS(t)
	s := call(t, o, "socket")
	if r := call(t, o, "setsockopt", s, 2, 1); r != 0 {
		t.Fatalf("setsockopt = %d", r)
	}
	if r := call(t, o, "bind", s, 8080); r != 0 {
		t.Fatalf("bind = %d", r)
	}
	if r := call(t, o, "listen", s, 16); r != 0 {
		t.Fatalf("listen = %d", r)
	}
	// Second bind to the same port: EADDRINUSE, per the paper's Listing 1.
	s2 := call(t, o, "socket")
	if r := call(t, o, "bind", s2, 8080); r != -1 {
		t.Fatalf("second bind = %d, want -1", r)
	}
	if o.Errno != EADDRINUSE {
		t.Errorf("errno = %d, want EADDRINUSE", o.Errno)
	}
	// Closing the first socket frees the port.
	call(t, o, "close", s)
	if r := call(t, o, "bind", s2, 8080); r != 0 {
		t.Fatalf("bind after close = %d", r)
	}
}

func TestAcceptReadWrite(t *testing.T) {
	o := newOS(t)
	s := call(t, o, "socket")
	call(t, o, "bind", s, 80)
	call(t, o, "listen", s, 16)

	if r := call(t, o, "accept", s); r != -1 || o.Errno != EAGAIN {
		t.Fatalf("accept on empty queue = %d errno=%d", r, o.Errno)
	}

	c := o.Connect(80)
	if c == nil {
		t.Fatal("Connect failed")
	}
	c.ClientDeliver([]byte("GET / HTTP/1.1\r\n\r\n"))

	fd := call(t, o, "accept", s)
	if fd < 0 {
		t.Fatalf("accept = %d", fd)
	}
	buf := int64(mem.GlobalBase + 0x1000)
	n := call(t, o, "read", fd, buf, 1024)
	if n != 18 {
		t.Fatalf("read = %d, want 18", n)
	}
	got, _ := o.Space.ReadBytes(buf, n)
	if string(got) != "GET / HTTP/1.1\r\n\r\n" {
		t.Fatalf("read data = %q", got)
	}

	resp := putStr(t, o, 0x2000, "HTTP/1.1 200 OK\r\n")
	if w := call(t, o, "write", fd, resp, 17); w != 17 {
		t.Fatalf("write = %d", w)
	}
	if string(c.ClientTake()) != "HTTP/1.1 200 OK\r\n" {
		t.Fatal("client did not receive response")
	}
}

func TestReadEOFAfterClientClose(t *testing.T) {
	o := newOS(t)
	s := call(t, o, "socket")
	call(t, o, "bind", s, 80)
	call(t, o, "listen", s, 4)
	c := o.Connect(80)
	fd := call(t, o, "accept", s)
	buf := int64(mem.GlobalBase + 0x1000)

	if r := call(t, o, "read", fd, buf, 64); r != -1 || o.Errno != EAGAIN {
		t.Fatalf("read with no data = %d errno=%d", r, o.Errno)
	}
	c.ClientClose()
	if r := call(t, o, "read", fd, buf, 64); r != 0 {
		t.Fatalf("read after FIN = %d, want 0 (EOF)", r)
	}
}

func TestUnreadCompensation(t *testing.T) {
	o := newOS(t)
	s := call(t, o, "socket")
	call(t, o, "bind", s, 80)
	call(t, o, "listen", s, 4)
	c := o.Connect(80)
	c.ClientDeliver([]byte("hello"))
	fd := call(t, o, "accept", s)
	buf := int64(mem.GlobalBase + 0x1000)
	call(t, o, "read", fd, buf, 64)

	rec := o.LastRead()
	if rec == nil || string(rec.Data) != "hello" {
		t.Fatalf("LastRead = %+v", rec)
	}
	if !o.Unread(fd, rec.Data) {
		t.Fatal("Unread failed")
	}
	if n := call(t, o, "read", fd, buf, 64); n != 5 {
		t.Fatalf("re-read after Unread = %d", n)
	}
}

func TestEpoll(t *testing.T) {
	o := newOS(t)
	s := call(t, o, "socket")
	call(t, o, "bind", s, 80)
	call(t, o, "listen", s, 4)
	ep := call(t, o, "epoll_create")
	call(t, o, "epoll_ctl", ep, EpollCtlAdd, s)

	evbuf := int64(mem.GlobalBase + 0x3000)
	if _, err := o.Call("epoll_wait", []int64{ep, evbuf, 8}); !errors.Is(err, ErrBlocked) {
		t.Fatalf("epoll_wait with nothing ready: %v, want ErrBlocked", err)
	}

	o.Connect(80)
	n := call(t, o, "epoll_wait", ep, evbuf, 8)
	if n != 1 {
		t.Fatalf("epoll_wait = %d, want 1", n)
	}
	fd0, _ := o.Space.Load(evbuf, 8)
	if fd0 != s {
		t.Fatalf("ready fd = %d, want %d", fd0, s)
	}

	call(t, o, "epoll_ctl", ep, EpollCtlDel, s)
	if _, err := o.Call("epoll_wait", []int64{ep, evbuf, 8}); !errors.Is(err, ErrBlocked) {
		t.Fatalf("epoll_wait after del: %v, want ErrBlocked", err)
	}
}

func TestFileIO(t *testing.T) {
	o := newOS(t)
	o.FS().Add("/www/index.html", []byte("<html>hi</html>"))

	path := putStr(t, o, 0, "/www/index.html")
	fd := call(t, o, "open", path, ORdOnly)
	if fd < 0 {
		t.Fatalf("open = %d", fd)
	}
	statBuf := int64(mem.GlobalBase + 0x500)
	call(t, o, "fstat", fd, statBuf)
	size, _ := o.Space.Load(statBuf, 8)
	if size != 15 {
		t.Fatalf("fstat size = %d, want 15", size)
	}
	buf := int64(mem.GlobalBase + 0x600)
	n := call(t, o, "pread", fd, buf, 1024, 6)
	if n != 9 {
		t.Fatalf("pread = %d, want 9", n)
	}
	got, _ := o.Space.ReadBytes(buf, n)
	if string(got) != "hi</html>" {
		t.Fatalf("pread data = %q", got)
	}
	call(t, o, "close", fd)
	if o.OpenFDs() != 0 {
		t.Errorf("OpenFDs = %d after close", o.OpenFDs())
	}
}

func TestOpenMissingAndCreate(t *testing.T) {
	o := newOS(t)
	path := putStr(t, o, 0, "/nope")
	if r := call(t, o, "open", path, ORdOnly); r != -1 || o.Errno != ENOENT {
		t.Fatalf("open missing = %d errno=%d", r, o.Errno)
	}
	fd := call(t, o, "open", path, OCreat|OWrOnly)
	if fd < 0 {
		t.Fatalf("open O_CREAT = %d", fd)
	}
	data := putStr(t, o, 0x100, "wal-entry")
	call(t, o, "write", fd, data, 9)
	if f := o.FS().Lookup("/nope"); f == nil || string(f.Data) != "wal-entry" {
		t.Fatalf("file content = %+v", f)
	}
	if len(o.FS().WriteLog) == 0 {
		t.Error("WriteLog empty after external-effect ops")
	}
}

func TestUnlinkRenameFsync(t *testing.T) {
	o := newOS(t)
	o.FS().Add("/a", []byte("x"))
	a := putStr(t, o, 0, "/a")
	b := putStr(t, o, 0x40, "/b")
	if r := call(t, o, "rename", a, b); r != 0 {
		t.Fatalf("rename = %d", r)
	}
	if o.FS().Lookup("/b") == nil || o.FS().Lookup("/a") != nil {
		t.Fatal("rename did not move the file")
	}
	fd := call(t, o, "open", b, ORdWr)
	if r := call(t, o, "fsync", fd); r != 0 {
		t.Fatalf("fsync = %d", r)
	}
	if r := call(t, o, "unlink", b); r != 0 {
		t.Fatalf("unlink = %d", r)
	}
	if r := call(t, o, "unlink", b); r != -1 || o.Errno != ENOENT {
		t.Fatalf("second unlink = %d errno=%d", r, o.Errno)
	}
}

func TestStringHelpers(t *testing.T) {
	o := newOS(t)
	a := putStr(t, o, 0, "hello")
	b := putStr(t, o, 0x40, "help")
	if n := call(t, o, "strlen", a); n != 5 {
		t.Errorf("strlen = %d", n)
	}
	if r := call(t, o, "strcmp", a, a); r != 0 {
		t.Errorf("strcmp equal = %d", r)
	}
	if r := call(t, o, "strcmp", a, b); r >= 0 {
		t.Errorf("strcmp(hello, help) = %d, want negative", r)
	}
	if r := call(t, o, "strncmp", a, b, 3); r != 0 {
		t.Errorf("strncmp 3 = %d", r)
	}
	dst := int64(mem.GlobalBase + 0x80)
	call(t, o, "strcpy", dst, a)
	got, _ := o.Space.ReadCString(dst, 32)
	if got != "hello" {
		t.Errorf("strcpy = %q", got)
	}
	num := putStr(t, o, 0xc0, "-473x")
	if v := call(t, o, "atoi", num); v != -473 {
		t.Errorf("atoi = %d", v)
	}
}

func TestMemsetMemcpyThroughStoreFunc(t *testing.T) {
	o := newOS(t)
	var stores int
	o.SetStore(func(addr, val int64, width int) error {
		stores++
		return o.Space.Store(addr, val, width)
	})
	dst := int64(mem.GlobalBase + 0x100)
	call(t, o, "memset", dst, 'A', 10)
	// Word-granular instrumentation: one 8-byte store plus two tail bytes.
	if stores != 3 {
		t.Errorf("memset issued %d tracked stores, want 3", stores)
	}
	got, _ := o.Space.ReadBytes(dst, 10)
	if string(got) != "AAAAAAAAAA" {
		t.Errorf("memset result = %q", got)
	}
	src := putStr(t, o, 0x200, "0123456789")
	stores = 0
	call(t, o, "memcpy", dst, src, 10)
	if stores != 3 {
		t.Errorf("memcpy issued %d tracked stores, want 3", stores)
	}
	o.SetStore(nil) // restore direct stores
	call(t, o, "memset", dst, 'B', 4)
	got, _ = o.Space.ReadBytes(dst, 10)
	if string(got) != "BBBB456789" {
		t.Errorf("after direct memset = %q", got)
	}
}

func TestDeferFreeHook(t *testing.T) {
	o := newOS(t)
	p := call(t, o, "malloc", 32)
	deferred := []int64{}
	o.SetDeferFree(func(addr int64) bool {
		deferred = append(deferred, addr)
		return true
	})
	call(t, o, "free", p)
	if len(deferred) != 1 || deferred[0] != p {
		t.Fatalf("deferred = %v", deferred)
	}
	if o.Heap().SizeOf(p) < 0 {
		t.Fatal("chunk freed despite deferral")
	}
	o.SetDeferFree(nil)
	call(t, o, "free", p)
	if o.Heap().SizeOf(p) >= 0 {
		t.Fatal("chunk not freed after hook removed")
	}
}

func TestMiscCalls(t *testing.T) {
	o := newOS(t)
	if v := call(t, o, "getpid"); v != o.Pid() {
		t.Errorf("getpid = %d", v)
	}
	t0 := call(t, o, "clock_gettime")
	t1 := call(t, o, "clock_gettime")
	if t1 <= t0 {
		t.Errorf("clock not monotonic: %d then %d", t0, t1)
	}
	msg := putStr(t, o, 0, "boot ok")
	call(t, o, "puts", msg)
	call(t, o, "putint", 42)
	if o.Stdout() != "boot ok\n42" {
		t.Errorf("stdout = %q", o.Stdout())
	}
}

func TestUnknownCall(t *testing.T) {
	o := newOS(t)
	if _, err := o.Call("fork", nil); err == nil {
		t.Fatal("unknown call should error")
	}
	if Known("fork") {
		t.Error("Known(fork) = true")
	}
	if !Known("malloc") {
		t.Error("Known(malloc) = false")
	}
}

func TestBadFDErrors(t *testing.T) {
	o := newOS(t)
	cases := [][]any{
		{"bind", []int64{99, 80}},
		{"listen", []int64{99, 4}},
		{"accept", []int64{99}},
		{"read", []int64{99, 0, 0}},
		{"write", []int64{99, 0, 0}},
		{"close", []int64{99}},
		{"fstat", []int64{99, 0}},
		{"epoll_ctl", []int64{99, EpollCtlAdd, 1}},
	}
	for _, c := range cases {
		name := c[0].(string)
		args := c[1].([]int64)
		o.Errno = 0
		r, err := o.Call(name, args)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r != -1 || o.Errno != EBADF {
			t.Errorf("%s(bad fd) = %d errno=%d, want -1/EBADF", name, r, o.Errno)
		}
	}
}

func TestFcntlNonblock(t *testing.T) {
	o := newOS(t)
	s := call(t, o, "socket")
	if r := call(t, o, "fcntl", s, FSetFl, 1); r != 0 {
		t.Fatalf("fcntl F_SETFL = %d", r)
	}
	if r := call(t, o, "fcntl", s, FGetFl, 0); r != 1 {
		t.Fatalf("fcntl F_GETFL = %d, want 1", r)
	}
}

func TestLseek(t *testing.T) {
	o := newOS(t)
	o.FS().Add("/f", []byte("0123456789"))
	path := putStr(t, o, 0, "/f")
	fd := call(t, o, "open", path, ORdOnly)
	if r := call(t, o, "lseek", fd, 4, SeekSet); r != 4 {
		t.Fatalf("lseek SET = %d", r)
	}
	if r := call(t, o, "lseek", fd, 2, SeekCur); r != 6 {
		t.Fatalf("lseek CUR = %d", r)
	}
	if r := call(t, o, "lseek", fd, -1, SeekEnd); r != 9 {
		t.Fatalf("lseek END = %d", r)
	}
	buf := int64(mem.GlobalBase + 0x100)
	if n := call(t, o, "read", fd, buf, 8); n != 1 {
		t.Fatalf("read after seek = %d", n)
	}
}

func TestMmapMunmap(t *testing.T) {
	o := newOS(t)
	p := call(t, o, "mmap", 8192)
	if p <= 0 || p%mem.PageSize != 0 {
		t.Fatalf("mmap = %#x", p)
	}
	if err := o.Space.Store(p+4096, 1, 8); err != nil {
		t.Fatalf("mapped memory not writable: %v", err)
	}
	if r := call(t, o, "munmap", p, 8192); r != 0 {
		t.Fatalf("munmap = %d", r)
	}
	if r := call(t, o, "munmap", p, 8192); r != -1 || o.Errno != EINVAL {
		t.Fatalf("double munmap = %d errno=%d", r, o.Errno)
	}
}
