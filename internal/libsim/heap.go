package libsim

import (
	"sort"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// Heap is a first-fit, address-ordered free-list allocator over the
// simulated heap segment. Chunk metadata lives Go-side (the simulated
// program cannot corrupt it, matching a hardened allocator); freeing an
// address the allocator never handed out reports heap corruption, which
// the interpreter converts into a fail-stop crash.
type Heap struct {
	space *mem.Space
	brk   int64 // next never-used address
	live  map[int64]int64
	free  []span // address-ordered

	// accounting
	liveBytes  int64
	peakBytes  int64
	allocCount int64
	failNext   *int64 // points at OS.OOMAfter
}

type span struct {
	addr, size int64
}

const heapAlign = 16

// zeroPage is the scrub source for recycled chunks: writing from a shared
// static buffer page by page avoids allocating a size-length zero slice on
// every guest malloc.
var zeroPage [mem.PageSize]byte

// scrub zeroes [addr, addr+size) in the space.
func (h *Heap) scrub(addr, size int64) error {
	for size > 0 {
		n := size
		if n > mem.PageSize {
			n = mem.PageSize
		}
		if err := h.space.WriteBytes(addr, zeroPage[:n]); err != nil {
			return err
		}
		addr += n
		size -= n
	}
	return nil
}

func newHeap(space *mem.Space) *Heap {
	return &Heap{
		space: space,
		brk:   mem.HeapBase,
		live:  make(map[int64]int64),
	}
}

// LiveBytes returns currently allocated bytes.
func (h *Heap) LiveBytes() int64 { return h.liveBytes }

// PeakBytes returns the allocation high-water mark.
func (h *Heap) PeakBytes() int64 { return h.peakBytes }

// AllocCount returns the number of successful allocations.
func (h *Heap) AllocCount() int64 { return h.allocCount }

// SizeOf returns the size of a live allocation, or -1 if addr is not a
// live chunk start.
func (h *Heap) SizeOf(addr int64) int64 {
	if sz, ok := h.live[addr]; ok {
		return sz
	}
	return -1
}

func align(n int64) int64 {
	return (n + heapAlign - 1) &^ (heapAlign - 1)
}

// Alloc returns the address of a fresh chunk of at least size bytes, or 0
// if the heap is exhausted (ENOMEM). Returned memory is zeroed, so calloc
// and malloc coincide (fresh pages are zero and recycled chunks are
// scrubbed here — a deliberate simplification, noted in DESIGN.md).
func (h *Heap) Alloc(size int64) int64 {
	if size <= 0 {
		size = heapAlign
	}
	size = align(size)
	addr := h.take(size)
	if addr == 0 {
		return 0
	}
	if err := h.space.Map(addr, size); err != nil {
		return 0
	}
	// Scrub recycled memory so allocations are deterministic.
	if err := h.scrub(addr, size); err != nil {
		return 0
	}
	h.live[addr] = size
	h.liveBytes += size
	if h.liveBytes > h.peakBytes {
		h.peakBytes = h.liveBytes
	}
	h.allocCount++
	return addr
}

// AllocAligned allocates with the given power-of-two alignment
// (posix_memalign). Returns 0 on exhaustion or bad alignment.
func (h *Heap) AllocAligned(alignment, size int64) int64 {
	if alignment <= 0 || alignment&(alignment-1) != 0 {
		return 0
	}
	if alignment <= heapAlign {
		return h.Alloc(size)
	}
	// Allocate from the bump region, rounded up to the alignment.
	aligned := (h.brk + alignment - 1) &^ (alignment - 1)
	end := aligned + align(size)
	if end > mem.HeapLimit {
		return 0
	}
	h.brk = end
	if err := h.space.Map(aligned, align(size)); err != nil {
		return 0
	}
	h.live[aligned] = align(size)
	h.liveBytes += align(size)
	if h.liveBytes > h.peakBytes {
		h.peakBytes = h.liveBytes
	}
	h.allocCount++
	return aligned
}

// take finds space in the free list or bumps brk.
func (h *Heap) take(size int64) int64 {
	for i, s := range h.free {
		if s.size >= size {
			addr := s.addr
			if s.size == size {
				h.free = append(h.free[:i], h.free[i+1:]...)
			} else {
				h.free[i] = span{addr: s.addr + size, size: s.size - size}
			}
			return addr
		}
	}
	if h.brk+size > mem.HeapLimit {
		return 0
	}
	addr := h.brk
	h.brk += size
	return addr
}

// Free releases a chunk. It reports false for a pointer that is not a live
// chunk start (double free / wild free), which callers treat as heap
// corruption — a fail-stop crash.
func (h *Heap) Free(addr int64) bool {
	size, ok := h.live[addr]
	if !ok {
		return false
	}
	delete(h.live, addr)
	h.liveBytes -= size
	h.insertFree(span{addr: addr, size: size})
	return true
}

func (h *Heap) insertFree(s span) {
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].addr >= s.addr })
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = s
	// Coalesce with neighbours.
	if i+1 < len(h.free) && h.free[i].addr+h.free[i].size == h.free[i+1].addr {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].addr+h.free[i-1].size == h.free[i].addr {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
}

// Realloc grows or shrinks a chunk, copying the payload. Returns the new
// address, 0 on exhaustion, or -1 for a wild pointer.
func (h *Heap) Realloc(addr, size int64) int64 {
	if addr == 0 {
		return h.Alloc(size)
	}
	old, ok := h.live[addr]
	if !ok {
		return -1
	}
	size = align(size)
	if size <= old {
		return addr
	}
	naddr := h.Alloc(size)
	if naddr == 0 {
		return 0
	}
	data, err := h.space.ReadBytes(addr, old)
	if err != nil {
		return 0
	}
	if err := h.space.WriteBytes(naddr, data); err != nil {
		return 0
	}
	h.Free(addr)
	return naddr
}

// FreeListLen returns the number of free spans (for tests of coalescing).
func (h *Heap) FreeListLen() int { return len(h.free) }
