package libsim

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// acceptConn binds a listener on port, connects a client and accepts it,
// returning the client conn and the server-side fd.
func acceptConn(t *testing.T, o *OS, port int64) (*Conn, int64) {
	t.Helper()
	s := call(t, o, "socket")
	call(t, o, "bind", s, port)
	call(t, o, "listen", s, 16)
	c := o.Connect(port)
	if c == nil {
		t.Fatal("Connect failed")
	}
	fd := call(t, o, "accept", s)
	if fd < 0 {
		t.Fatalf("accept = %d", fd)
	}
	return c, fd
}

// TestSlowReaderBackpressure models a slow-loris-style reader: the server
// keeps writing while the client drains its end a few bytes at a time (or
// not at all). The undrained bytes must stay queued without perturbing the
// server's writes, partial takes must preserve byte order, and shedding
// the connection must not destroy responses already written — the client
// still drains them after the server side is gone.
func TestSlowReaderBackpressure(t *testing.T) {
	o := newOS(t)
	c, fd := acceptConn(t, o, 80)

	resp := putStr(t, o, 0x2000, "aaaabbbbccccdddd")
	if w := call(t, o, "write", fd, resp, 16); w != 16 {
		t.Fatalf("write = %d", w)
	}
	if c.OutboundLen() != 16 {
		t.Fatalf("outbound = %d, want 16", c.OutboundLen())
	}

	// Partial drains come out in order and shrink the backlog.
	if got := string(c.ClientTakeN(4)); got != "aaaa" {
		t.Fatalf("first take = %q", got)
	}
	if got := string(c.ClientTakeN(6)); got != "bbbbcc" {
		t.Fatalf("second take = %q", got)
	}
	if c.OutboundLen() != 6 {
		t.Fatalf("outbound after takes = %d, want 6", c.OutboundLen())
	}

	// A reader that never drains: the server's writes keep landing.
	if w := call(t, o, "write", fd, resp, 16); w != 16 {
		t.Fatalf("second write = %d", w)
	}
	if c.OutboundLen() != 22 {
		t.Fatalf("outbound with sleeping reader = %d, want 22", c.OutboundLen())
	}
	if got := c.ClientTakeN(0); got != nil {
		t.Fatalf("zero take = %q", got)
	}

	// Shed the connection mid-backlog: the server end closes, but the
	// bytes it already wrote still reach the slow client.
	o.SetServingFD(fd)
	if shed := o.ShedConn(); shed != fd {
		t.Fatalf("ShedConn = %d, want %d", shed, fd)
	}
	if !c.ServerClosed() {
		t.Fatal("shed did not close the server end")
	}
	if got := string(c.ClientTakeN(100)); got != "ccddddaaaabbbbccccdddd" {
		t.Fatalf("drain after shed = %q", got)
	}
	if c.OutboundLen() != 0 {
		t.Fatalf("outbound after full drain = %d", c.OutboundLen())
	}
}

// TestFragmentedRequestBoundaries delivers one request split across
// multiple client writes at every possible byte boundary: the server-side
// reads must reassemble the exact bytes, and a trace stamped on the first
// fragment must promote on the server's first read regardless of where
// the split falls.
func TestFragmentedRequestBoundaries(t *testing.T) {
	req := "GET /x\n"
	for cut := 1; cut < len(req); cut++ {
		o := newOS(t)
		c, fd := acceptConn(t, o, 80)

		c.ClientDeliverTraced([]byte(req[:cut]), 42)
		c.ClientDeliver([]byte(req[cut:]))
		if c.Trace() != 0 {
			t.Fatalf("cut=%d: trace active before any server read", cut)
		}

		buf := int64(mem.GlobalBase + 0x1000)
		var got strings.Builder
		for got.Len() < len(req) {
			n := call(t, o, "read", fd, buf, 4) // small reads: arbitrary regrouping
			if n <= 0 {
				t.Fatalf("cut=%d: read = %d with %d bytes assembled", cut, n, got.Len())
			}
			b, _ := o.Space.ReadBytes(buf, n)
			got.Write(b)
			if c.Trace() != 42 {
				t.Fatalf("cut=%d: trace not promoted on first read", cut)
			}
		}
		if got.String() != req {
			t.Fatalf("cut=%d: reassembled %q, want %q", cut, got.String(), req)
		}
	}
}

// TestPipelinedRequestsOneConnection sends two requests back-to-back on
// one connection before the server answers either: the server reads the
// concatenated bytes, answers in order, and the responses drain in FIFO
// order. The trace slot is single-entry, so the second request's ID is
// stamped only after the first promoted — the ordering contract the
// open-loop driver enforces before pipelining a traced request.
func TestPipelinedRequestsOneConnection(t *testing.T) {
	o := newOS(t)
	c, fd := acceptConn(t, o, 80)

	c.ClientDeliverTraced([]byte("one\n"), 7)
	buf := int64(mem.GlobalBase + 0x1000)
	if n := call(t, o, "read", fd, buf, 64); n != 4 {
		t.Fatalf("read = %d", n)
	}
	if c.Trace() != 7 {
		t.Fatal("first request's trace not promoted")
	}

	// First request started: the client may now pipeline the second one
	// even though no response has been written yet.
	c.ClientDeliverTraced([]byte("two\n"), 8)
	r1 := putStr(t, o, 0x2000, "ONE\n")
	if w := call(t, o, "write", fd, r1, 4); w != 4 {
		t.Fatalf("write = %d", w)
	}
	if n := call(t, o, "read", fd, buf, 64); n != 4 {
		t.Fatalf("second read = %d", n)
	}
	if c.Trace() != 8 {
		t.Fatal("second request's trace not promoted")
	}
	r2 := putStr(t, o, 0x3000, "TWO\n")
	if w := call(t, o, "write", fd, r2, 4); w != 4 {
		t.Fatalf("second write = %d", w)
	}

	// FIFO drain, also under a partial (slow) take.
	if got := string(c.ClientTakeN(5)); got != "ONE\nT" {
		t.Fatalf("pipelined drain = %q", got)
	}
	if got := string(c.ClientTake()); got != "WO\n" {
		t.Fatalf("pipelined tail = %q", got)
	}
}

// TestPipelinedRequestsShedMidStream sheds the connection between the two
// pipelined requests: the first response survives for the client to
// drain, the second request's bytes die with the connection (reads fail
// once the fd is gone), and the client observes the close.
func TestPipelinedRequestsShedMidStream(t *testing.T) {
	o := newOS(t)
	c, fd := acceptConn(t, o, 80)

	c.ClientDeliverTraced([]byte("one\n"), 7)
	buf := int64(mem.GlobalBase + 0x1000)
	call(t, o, "read", fd, buf, 64)
	r1 := putStr(t, o, 0x2000, "ONE\n")
	call(t, o, "write", fd, r1, 4)

	c.ClientDeliverTraced([]byte("two\n"), 8)
	o.SetServingFD(fd)
	if shed := o.ShedConn(); shed != fd {
		t.Fatalf("ShedConn = %d, want %d", shed, fd)
	}

	if !c.ServerClosed() {
		t.Fatal("client cannot see the shed")
	}
	if got := string(c.ClientTake()); got != "ONE\n" {
		t.Fatalf("response written before shed = %q", got)
	}
	// The shed fd is recycled: a further server read must not succeed.
	if r := call(t, o, "read", fd, buf, 64); r != -1 {
		t.Fatalf("read on shed fd = %d, want -1", r)
	}
	if c.InboundLen() == 0 {
		t.Fatal("unread pipelined request vanished without the close accounting for it")
	}
}
