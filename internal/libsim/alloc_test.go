package libsim

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// serveSetup binds a listener and an epoll instance the way the app
// servers do, returning (epfd, lfd, scratch buffer address).
func serveSetup(tb testing.TB, o *OS) (epfd, lfd, buf int64) {
	tb.Helper()
	lfd, err := o.Call("socket", nil)
	if err != nil || lfd < 0 {
		tb.Fatalf("socket: fd=%d err=%v", lfd, err)
	}
	if v, err := o.Call("bind", []int64{lfd, 80}); err != nil || v != 0 {
		tb.Fatalf("bind: v=%d err=%v", v, err)
	}
	if _, err := o.Call("listen", []int64{lfd, 16}); err != nil {
		tb.Fatal(err)
	}
	epfd, err = o.Call("epoll_create", nil)
	if err != nil || epfd < 0 {
		tb.Fatalf("epoll_create: fd=%d err=%v", epfd, err)
	}
	return epfd, lfd, buf
}

// cycleArgs holds pre-built argument slices for one request cycle, so
// the measurement below counts the library's allocations, not the test's
// own `[]int64{...}` literals escaping into the indirect call table.
type cycleArgs struct {
	accept, add, wait, read, write, del, close []int64
}

// requestCycle drives one full request through the library-call surface
// with full connection churn: connect + accept a fresh conn, epoll-watch
// it, read the request, write the response, close and drain it. The fd
// slot and therefore every descriptor number repeats each cycle (lowest
// free slot), which is what lets the caller pre-build the arg slices.
func requestCycle(o *OS, a *cycleArgs) {
	c := o.Connect(80)
	o.Call("accept", a.accept)
	o.Call("epoll_ctl", a.add)
	c.ClientDeliverTraced([]byte("GET /\n"), 7)
	o.Call("epoll_wait", a.wait)
	o.Call("read", a.read)
	o.Call("write", a.write)
	o.Call("epoll_ctl", a.del)
	o.Call("close", a.close)
	c.ClientTake()
}

func newCycle(tb testing.TB) (*OS, *cycleArgs) {
	tb.Helper()
	s := mem.NewSpace()
	if err := s.Map(mem.GlobalBase, 1<<16); err != nil {
		tb.Fatal(err)
	}
	o := New(s)
	epfd, lfd, buf := serveSetup(tb, o)
	buf = mem.GlobalBase

	// One probe cycle to learn the (stable) conn descriptor number.
	c := o.Connect(80)
	cfd, err := o.Call("accept", []int64{lfd})
	if err != nil || cfd < 0 {
		tb.Fatalf("accept: fd=%d err=%v", cfd, err)
	}
	o.Call("close", []int64{cfd})
	c.ClientTake()

	args := &cycleArgs{
		accept: []int64{lfd},
		add:    []int64{epfd, EpollCtlAdd, cfd},
		wait:   []int64{epfd, buf, 8},
		read:   []int64{cfd, buf + 64, 64},
		write:  []int64{cfd, buf + 64, 6},
		del:    []int64{epfd, EpollCtlDel, cfd},
		close:  []int64{cfd},
	}
	// Warm up: size the fd slab, the epoll bitmap, the lastRead buffer
	// and the write scratch.
	for i := 0; i < 4; i++ {
		requestCycle(o, args)
	}
	return o, args
}

// TestRequestCycleAllocFree pins the alloc-count regression contract for
// the per-request path: after warm-up, a full connect/accept/epoll/read/
// write/close cycle performs at most 4 Go allocations — the client-side
// Conn object and its in/out byte queues (inherent connection churn the
// test itself drives), never anything per-request on the server side.
// Before the slab refactor this path also allocated an *FD per accept,
// an epoll map entry per watch, and a ReadRecord plus a fresh data copy
// per read (~4 more objects per cycle); this test fails if any of that
// churn comes back.
func TestRequestCycleAllocFree(t *testing.T) {
	o, args := newCycle(t)
	allocs := testing.AllocsPerRun(200, func() {
		requestCycle(o, args)
	})
	if allocs > 4 {
		t.Fatalf("request cycle allocates %.1f objects/run, want <= 4", allocs)
	}
}

// BenchmarkRequestCycle measures the slab-allocated per-request library
// path; run with -benchmem to see the allocation count the regression
// test above pins.
func BenchmarkRequestCycle(b *testing.B) {
	o, args := newCycle(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requestCycle(o, args)
	}
}
