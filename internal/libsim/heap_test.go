package libsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/firestarter-go/firestarter/internal/mem"
)

func newHeapT(t *testing.T) *Heap {
	t.Helper()
	return newHeap(mem.NewSpace())
}

func TestHeapAlignment(t *testing.T) {
	h := newHeapT(t)
	for _, size := range []int64{1, 15, 16, 17, 100} {
		p := h.Alloc(size)
		if p%16 != 0 {
			t.Errorf("Alloc(%d) = %#x, not 16-aligned", size, p)
		}
	}
}

func TestHeapZeroSizeAlloc(t *testing.T) {
	h := newHeapT(t)
	p := h.Alloc(0)
	if p == 0 {
		t.Fatal("Alloc(0) failed; C malloc(0) returns a unique pointer")
	}
	q := h.Alloc(0)
	if q == p {
		t.Fatal("two zero-size allocations aliased")
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := newHeapT(t)
	total := int64(mem.HeapLimit - mem.HeapBase)
	if p := h.Alloc(total + 1); p != 0 {
		t.Fatalf("oversized alloc succeeded: %#x", p)
	}
	// A sane allocation still works afterwards.
	if p := h.Alloc(64); p == 0 {
		t.Fatal("allocation after failed oversize request")
	}
}

func TestAllocAlignedValidation(t *testing.T) {
	h := newHeapT(t)
	if h.AllocAligned(3, 64) != 0 {
		t.Error("non-power-of-two alignment accepted")
	}
	if h.AllocAligned(0, 64) != 0 {
		t.Error("zero alignment accepted")
	}
	p := h.AllocAligned(1<<16, 64)
	if p == 0 || p%(1<<16) != 0 {
		t.Errorf("64 KiB alignment: %#x", p)
	}
}

// TestHeapNoOverlapProperty drives random alloc/free interleavings and
// checks the allocator's core invariants: live chunks never overlap,
// LiveBytes equals the sum of live chunk sizes, and double frees are
// rejected.
func TestHeapNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		h := newHeap(mem.NewSpace())
		rng := rand.New(rand.NewSource(seed))
		live := map[int64]int64{} // addr → requested size
		for op := 0; op < 300; op++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				size := int64(rng.Intn(900) + 1)
				p := h.Alloc(size)
				if p == 0 {
					return false // heap exhausted far too early
				}
				// Overlap check against every live chunk (sizes are
				// rounded to 16 inside the allocator).
				rsize := (size + 15) &^ 15
				for q, qs := range live {
					qr := (qs + 15) &^ 15
					if p < q+qr && q < p+rsize {
						t.Logf("overlap: [%#x,+%d) vs [%#x,+%d)", p, rsize, q, qr)
						return false
					}
				}
				live[p] = size
			} else {
				// Free a random live chunk.
				for p := range live {
					if !h.Free(p) {
						t.Logf("free of live chunk %#x rejected", p)
						return false
					}
					if h.Free(p) {
						t.Logf("double free of %#x accepted", p)
						return false
					}
					delete(live, p)
					break
				}
			}
			var want int64
			for _, s := range live {
				want += (s + 15) &^ 15
			}
			if h.LiveBytes() != want {
				t.Logf("LiveBytes = %d, want %d", h.LiveBytes(), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHeapPeakTracking(t *testing.T) {
	h := newHeapT(t)
	a := h.Alloc(1000)
	b := h.Alloc(1000)
	h.Free(a)
	h.Free(b)
	if h.PeakBytes() < 2000 {
		t.Errorf("PeakBytes = %d, want >= 2000", h.PeakBytes())
	}
	if h.LiveBytes() != 0 {
		t.Errorf("LiveBytes = %d after freeing all", h.LiveBytes())
	}
	if h.AllocCount() != 2 {
		t.Errorf("AllocCount = %d", h.AllocCount())
	}
}

func TestReallocShrinkKeepsChunk(t *testing.T) {
	h := newHeapT(t)
	p := h.Alloc(256)
	q := h.Realloc(p, 64)
	if q != p {
		t.Errorf("shrinking realloc moved the chunk: %#x -> %#x", p, q)
	}
}

func TestReallocWild(t *testing.T) {
	h := newHeapT(t)
	if r := h.Realloc(0xdead0, 64); r != -1 {
		t.Errorf("wild realloc = %#x, want -1 (corruption)", r)
	}
}

func TestSizeOf(t *testing.T) {
	h := newHeapT(t)
	p := h.Alloc(100)
	if got := h.SizeOf(p); got != 112 { // rounded to 16
		t.Errorf("SizeOf = %d, want 112", got)
	}
	if h.SizeOf(p+16) != -1 {
		t.Error("interior pointer reported as chunk")
	}
}
