package libsim

import "testing"

// TestDescriptorTableExhaustionEMFILE exercises the fd-table limit: every
// allocating call fails with EMFILE once 1024 descriptors are live, and a
// single close makes allocation work again (lowest-free-slot reuse).
func TestDescriptorTableExhaustionEMFILE(t *testing.T) {
	o := newOS(t)
	var last int64 = -1
	for i := 0; i < 1024; i++ {
		fd, err := o.Call("socket", nil)
		if err != nil {
			t.Fatalf("socket #%d: %v", i, err)
		}
		if fd < 0 {
			break
		}
		last = fd
	}
	if last < 0 {
		t.Fatal("no descriptors allocated at all")
	}
	fd := call(t, o, "socket")
	if fd != -1 {
		t.Fatalf("socket beyond the table limit returned %d, want -1", fd)
	}
	if o.Errno != EMFILE {
		t.Fatalf("errno = %d, want EMFILE (%d)", o.Errno, EMFILE)
	}
	// epoll_create and open allocate from the same table.
	if fd := call(t, o, "epoll_create"); fd != -1 || o.Errno != EMFILE {
		t.Fatalf("epoll_create at the limit: fd=%d errno=%d, want -1/EMFILE", fd, o.Errno)
	}
	call(t, o, "close", last)
	if fd := call(t, o, "socket"); fd != last {
		t.Fatalf("after close, socket = %d, want reused slot %d", fd, last)
	}
}

// resetConn builds a listener, connects a client, accepts it server-side,
// and returns the accepted fd plus the client end.
func resetConn(t *testing.T) (*OS, int64, *Conn) {
	t.Helper()
	o := newOS(t)
	s := call(t, o, "socket")
	if r := call(t, o, "bind", s, 9000); r != 0 {
		t.Fatalf("bind: %d (errno %d)", r, o.Errno)
	}
	if r := call(t, o, "listen", s, 8); r != 0 {
		t.Fatalf("listen: %d (errno %d)", r, o.Errno)
	}
	c := o.Connect(9000)
	if c == nil {
		t.Fatal("Connect returned nil")
	}
	fd := call(t, o, "accept", s)
	if fd < 0 {
		t.Fatalf("accept: %d (errno %d)", fd, o.Errno)
	}
	return o, fd, c
}

// TestReadAfterClientResetECONNRESET: an RST (client close with unread
// data / SO_LINGER 0) discards queued inbound bytes and makes the peer's
// reads fail with ECONNRESET — not the graceful drain-then-EOF of a FIN.
func TestReadAfterClientResetECONNRESET(t *testing.T) {
	o, fd, c := resetConn(t)
	c.ClientDeliver([]byte("half a request"))
	c.ClientReset()
	buf := putStr(t, o, 0, "xxxxxxxxxxxxxxxx")
	n := call(t, o, "read", fd, buf, 16)
	if n != -1 {
		t.Fatalf("read on reset connection = %d, want -1", n)
	}
	if o.Errno != ECONNRESET {
		t.Fatalf("errno = %d, want ECONNRESET (%d)", o.Errno, ECONNRESET)
	}
	if c.InboundLen() != 0 {
		t.Fatalf("%d queued bytes survived the reset", c.InboundLen())
	}
	// A reset connection still counts as readable so epoll reports it and
	// the server learns of the error instead of waiting forever.
	if !c.Readable() {
		t.Fatal("reset connection not readable")
	}
}

// TestWriteAfterClientResetECONNRESET: writes to a reset peer fail with
// ECONNRESET (the first failure is ECONNRESET; EPIPE is for FIN'd peers).
func TestWriteAfterClientResetECONNRESET(t *testing.T) {
	o, fd, c := resetConn(t)
	c.ClientReset()
	buf := putStr(t, o, 0, "response")
	n := call(t, o, "write", fd, buf, 8)
	if n != -1 {
		t.Fatalf("write on reset connection = %d, want -1", n)
	}
	if o.Errno != ECONNRESET {
		t.Fatalf("errno = %d, want ECONNRESET (%d)", o.Errno, ECONNRESET)
	}
}

// TestAcceptEAGAINOnEmptyQueue: accept on a non-blocking listener with an
// empty queue fails immediately with EAGAIN rather than blocking — the
// contract the event loops' accept-until-drained idiom relies on.
func TestAcceptEAGAINOnEmptyQueue(t *testing.T) {
	o := newOS(t)
	s := call(t, o, "socket")
	call(t, o, "bind", s, 9000)
	call(t, o, "listen", s, 8)
	fd := call(t, o, "accept", s)
	if fd != -1 {
		t.Fatalf("accept on empty queue = %d, want -1", fd)
	}
	if o.Errno != EAGAIN {
		t.Fatalf("errno = %d, want EAGAIN (%d)", o.Errno, EAGAIN)
	}
	// Drain exactly one pending connection, then EAGAIN again.
	if c := o.Connect(9000); c == nil {
		t.Fatal("Connect returned nil")
	}
	if fd := call(t, o, "accept", s); fd < 0 {
		t.Fatalf("accept with one pending connection: %d (errno %d)", fd, o.Errno)
	}
	if fd := call(t, o, "accept", s); fd != -1 || o.Errno != EAGAIN {
		t.Fatalf("second accept: fd=%d errno=%d, want -1/EAGAIN", fd, o.Errno)
	}
}
