package libsim

import (
	"errors"
	"testing"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// arenaConn builds an OS with arenas enabled and one accepted, served
// connection (servingFD set by a first read), returning the conn fd.
func arenaConn(t *testing.T, o *OS) int64 {
	t.Helper()
	_, lfd, _ := serveSetup(t, o)
	c := o.Connect(80)
	cfd, err := o.Call("accept", []int64{lfd})
	if err != nil || cfd < 0 {
		t.Fatalf("accept: fd=%d err=%v", cfd, err)
	}
	c.ClientDeliver([]byte("GET /\n"))
	if n, err := o.Call("read", []int64{cfd, mem.GlobalBase, 64}); err != nil || n <= 0 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	return cfd
}

func newArenaOS(t *testing.T) *OS {
	t.Helper()
	s := mem.NewSpace()
	if err := s.Map(mem.GlobalBase, 1<<16); err != nil {
		t.Fatal(err)
	}
	o := New(s)
	o.EnableArenas()
	return o
}

func TestArenaAllocBumpsAndIsolates(t *testing.T) {
	o := newArenaOS(t)
	arenaConn(t, o)

	p1, err := o.Call("arena_alloc", []int64{100})
	if err != nil || p1 == 0 {
		t.Fatalf("arena_alloc: p=%#x err=%v", p1, err)
	}
	if p1 < mem.ArenaBase || p1 >= mem.ArenaLimit {
		t.Fatalf("arena chunk %#x outside arena segment", p1)
	}
	p2, err := o.Call("arena_alloc", []int64{8})
	if err != nil || p2 != p1+112 { // 100 aligned to 16
		t.Fatalf("second chunk = %#x, want %#x", p2, p1+112)
	}
	dom := o.ActiveArenaDom()
	if dom == 0 || o.Space.CurrentDomain() != dom {
		t.Fatalf("current domain = %d, arena dom = %d", o.Space.CurrentDomain(), dom)
	}
	// The owning domain can use its chunk.
	if err := o.Space.Store(p1, 42, 8); err != nil {
		t.Fatalf("own-domain store: %v", err)
	}
	// The shared domain cannot.
	o.Space.SetDomain(0)
	if _, err := o.Space.Load(p1, 8); !errors.Is(err, mem.ErrDomain) {
		t.Fatalf("foreign load err = %v, want ErrDomain", err)
	}
	o.Space.SetDomain(dom)

	st := o.ArenaStats()
	if st.Allocs != 2 || st.Fallbacks != 0 || st.Slabs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArenaResetDiscardsAndRecycles(t *testing.T) {
	o := newArenaOS(t)
	arenaConn(t, o)

	p1, _ := o.Call("arena_alloc", []int64{64})
	dom1 := o.ActiveArenaDom()
	if _, err := o.Call("arena_reset", nil); err != nil {
		t.Fatal(err)
	}
	// Discarded domain is recorded; slab unmapped; register back to 0.
	if got := o.DiscardedDoms(); len(got) != 1 || got[0] != dom1 {
		t.Fatalf("DiscardedDoms = %v, want [%d]", got, dom1)
	}
	if o.Space.CurrentDomain() != 0 {
		t.Fatalf("current domain after reset = %d", o.Space.CurrentDomain())
	}
	if _, err := o.Space.Load(p1, 8); !errors.Is(err, mem.ErrUnmapped) {
		t.Fatalf("discarded chunk load err = %v, want ErrUnmapped", err)
	}

	// Next request recycles the same slab base under a fresh domain.
	p2, _ := o.Call("arena_alloc", []int64{64})
	if p2 != p1 {
		t.Fatalf("recycled chunk = %#x, want %#x", p2, p1)
	}
	dom2 := o.ActiveArenaDom()
	if dom2 == dom1 || dom2 == 0 {
		t.Fatalf("recycled dom = %d, old %d; domains must never repeat", dom2, dom1)
	}
	if v, err := o.Space.Load(p2, 8); err != nil || v != 0 {
		t.Fatalf("recycled chunk not zeroed: v=%d err=%v", v, err)
	}
	if st := o.ArenaStats(); st.Retires != 1 || st.Slabs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArenaTxMarkRewind(t *testing.T) {
	o := newArenaOS(t)
	arenaConn(t, o)

	pre, _ := o.Call("arena_alloc", []int64{32})
	if err := o.Space.Store(pre, 7, 8); err != nil {
		t.Fatal(err)
	}
	mark := o.ArenaTxMark()
	if mark != 32 {
		t.Fatalf("mark = %d, want 32", mark)
	}
	in, _ := o.Call("arena_alloc", []int64{48})
	if err := o.Space.Store(in, 9, 8); err != nil {
		t.Fatal(err)
	}
	o.ArenaTxRewind(mark)
	// Pre-tx chunk survives; in-tx chunk's bytes are rezeroed and the
	// retry re-allocates the same address.
	if v, _ := o.Space.Load(pre, 8); v != 7 {
		t.Fatalf("pre-tx chunk = %d, want 7", v)
	}
	if v, _ := o.Space.Load(in, 8); v != 0 {
		t.Fatalf("rewound chunk = %d, want 0", v)
	}
	in2, _ := o.Call("arena_alloc", []int64{48})
	if in2 != in {
		t.Fatalf("retry chunk = %#x, want %#x", in2, in)
	}
}

func TestArenaFallbackToHeap(t *testing.T) {
	o := newArenaOS(t)
	arenaConn(t, o)
	p, err := o.Call("arena_alloc", []int64{ArenaSlabSize + 1})
	if err != nil || p == 0 {
		t.Fatalf("oversized arena_alloc: p=%#x err=%v", p, err)
	}
	if p >= mem.ArenaBase && p < mem.ArenaLimit {
		t.Fatalf("oversized chunk %#x landed in arena segment", p)
	}
	if st := o.ArenaStats(); st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}
	// Heap chunks free normally even with arenas on.
	if _, err := o.Call("free", []int64{p}); err != nil {
		t.Fatalf("free of fallback chunk: %v", err)
	}
}

func TestArenaFreeIsNoOpIncludingStale(t *testing.T) {
	o := newArenaOS(t)
	arenaConn(t, o)
	p, _ := o.Call("arena_alloc", []int64{16})
	if _, err := o.Call("free", []int64{p}); err != nil {
		t.Fatalf("free of live arena chunk: %v", err)
	}
	o.Call("arena_reset", nil)
	// A stale free after discard must not be misdiagnosed as heap
	// corruption (the access itself would trap; the free is a no-op).
	if _, err := o.Call("free", []int64{p}); err != nil {
		t.Fatalf("stale free: %v", err)
	}
}

func TestArenaOffIsMalloc(t *testing.T) {
	s := mem.NewSpace()
	o := New(s)
	p, err := o.Call("arena_alloc", []int64{100})
	if err != nil || p == 0 {
		t.Fatalf("arena_alloc (off): p=%#x err=%v", p, err)
	}
	if p < mem.HeapBase || p >= mem.HeapLimit {
		t.Fatalf("arenas-off chunk %#x not on the heap", p)
	}
	if _, err := o.Call("free", []int64{p}); err != nil {
		t.Fatalf("free: %v", err)
	}
	if _, err := o.Call("arena_reset", nil); err != nil {
		t.Fatalf("arena_reset (off): %v", err)
	}
}

func TestArenaWriteTaintAudit(t *testing.T) {
	o := newArenaOS(t)
	cfd := arenaConn(t, o)

	p, _ := o.Call("arena_alloc", []int64{64})
	dom := o.ActiveArenaDom()
	// Clean write: response bytes come from the serving request's own
	// arena.
	if n, err := o.Call("write", []int64{cfd, p, 16}); err != nil || n != 16 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	taints := o.WriteTaints()
	if len(taints) != 1 {
		t.Fatalf("taints = %d, want 1", len(taints))
	}
	tt := taints[0]
	if tt.Serving != dom || len(tt.Doms) != 1 || tt.Doms[0] != dom || len(tt.Stale) != 0 {
		t.Fatalf("clean taint = %+v (dom %d)", tt, dom)
	}

	// Leaking write: the source page's domain was discarded, then its
	// slab recycled under a new domain — a stale-pointer response write
	// shows up as a Stale (and foreign) source.
	o.Call("arena_reset", nil)
	o.Call("arena_alloc", []int64{64})
	// Rewind the domain register to simulate fail-silent code writing
	// from the old pointer while another page still carries a live tag:
	// the recycled slab's page now belongs to the new domain, which is
	// foreign to no-one (it is serving) — so instead check the discard
	// bookkeeping path via a second conn's leftovers below.
	taint2 := o.WriteTaints()
	if len(taint2) != 1 {
		t.Fatalf("reset/alloc must not write: %d taints", len(taint2))
	}
}
