package libsim

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/mem"
)

// Fcntl and epoll command numbers (Linux values).
const (
	FGetFl = 3
	FSetFl = 4

	EpollCtlAdd = 1
	EpollCtlDel = 2

	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// DeferFreeFunc lets the recovery runtime defer a free() that executes
// inside a live transaction until the transaction commits (the paper's
// "operation deferrable" class). It returns true when the free has been
// queued; false means no transaction is active and the free should happen
// immediately.
type DeferFreeFunc func(addr int64) bool

// SetDeferFree installs the runtime's deferred-free hook (nil to clear).
func (o *OS) SetDeferFree(f DeferFreeFunc) { o.deferFree = f }

// ReadRecord describes the most recent data-consuming read, kept so the
// compensation action for read/recv can push the bytes back into the
// source queue ("state restoration needed" class).
type ReadRecord struct {
	FD   int64
	Data []byte
}

// LastRead returns the most recent consuming read's record (nil if none).
// The record and its Data buffer are reused by the next read; consumers
// (the read/recv compensation) only ever inspect the latest record and
// copy the bytes out via Unread, so the aliasing is invisible.
func (o *OS) LastRead() *ReadRecord {
	if o.lastRead.FD < 0 {
		return nil
	}
	return &o.lastRead
}

// setLastRead records a consuming read, reusing the Data buffer so the
// per-request read path allocates nothing in steady state.
func (o *OS) setLastRead(fd int64, data []byte) {
	o.lastRead.FD = fd
	o.lastRead.Data = append(o.lastRead.Data[:0], data...)
}

// Unread pushes data back to the front of a connection's inbound queue,
// used by the read/recv compensation action.
func (o *OS) Unread(fd int64, data []byte) bool {
	s := o.lookupFD(fd)
	if s == nil || s.Kind != FDConn {
		return false
	}
	s.Conn.in = append(append([]byte(nil), data...), s.Conn.in...)
	return true
}

type handler struct {
	args int
	fn   func(o *OS, a []int64) (int64, error)
}

// Call executes the named library function. It returns the call's result
// and sets o.Errno on failure. The error return is reserved for simulation-
// level conditions: ErrBlocked (the interpreter should yield and retry),
// memory access errors from transaction-aware stores (which the runtime
// turns into aborts/crashes), and ErrCorrupt for operations that real libc
// would abort the process for (wild free).
func (o *OS) Call(name string, args []int64) (int64, error) {
	h, ok := callTable[name]
	if !ok {
		return 0, fmt.Errorf("libsim: unknown library function %q", name)
	}
	if h.args >= 0 && len(args) != h.args {
		return 0, fmt.Errorf("libsim: %s called with %d args, want %d", name, len(args), h.args)
	}
	if o.Trace != nil {
		o.Trace(name)
	}
	return h.fn(o, args)
}

// Known reports whether name is an implemented library function.
func Known(name string) bool {
	_, ok := callTable[name]
	return ok
}

// ErrCorrupt reports heap corruption (wild/double free): real allocators
// abort the process, so the interpreter converts this into a fail-stop
// crash inside the application.
var ErrCorrupt = fmt.Errorf("libsim: heap corruption detected")

var callTable = buildCallTable()

func buildCallTable() map[string]handler {
	t := map[string]handler{}

	// --- memory management -------------------------------------------------
	t["malloc"] = handler{1, func(o *OS, a []int64) (int64, error) {
		return o.alloc(a[0])
	}}
	t["calloc"] = handler{2, func(o *OS, a []int64) (int64, error) {
		return o.alloc(a[0] * a[1])
	}}
	t["realloc"] = handler{2, func(o *OS, a []int64) (int64, error) {
		if o.arenaOwns(a[0]) {
			return o.arenaRealloc(a[0], a[1])
		}
		if o.oomNow() {
			o.Errno = ENOMEM
			return 0, nil
		}
		r := o.heap.Realloc(a[0], a[1])
		if r == -1 {
			return 0, ErrCorrupt
		}
		if r == 0 {
			o.Errno = ENOMEM
		}
		return r, nil
	}}
	t["posix_memalign"] = handler{3, func(o *OS, a []int64) (int64, error) {
		// posix_memalign(outptr, alignment, size): returns an errno
		// value directly, 0 on success.
		if o.oomNow() {
			return ENOMEM, nil
		}
		addr := o.heap.AllocAligned(a[1], a[2])
		if addr == 0 {
			return ENOMEM, nil
		}
		if err := o.store(a[0], addr, 8); err != nil {
			return 0, err
		}
		return 0, nil
	}}
	t["free"] = handler{1, func(o *OS, a []int64) (int64, error) {
		if a[0] == 0 {
			return 0, nil
		}
		if o.arenaOwns(a[0]) {
			return 0, nil // bump arenas reclaim wholesale at request end
		}
		if o.deferFree != nil && o.deferFree(a[0]) {
			return 0, nil
		}
		if !o.heap.Free(a[0]) {
			return 0, ErrCorrupt
		}
		return 0, nil
	}}
	t["arena_alloc"] = handler{1, func(o *OS, a []int64) (int64, error) {
		return o.ArenaAlloc(a[0])
	}}
	t["arena_reset"] = handler{0, func(o *OS, a []int64) (int64, error) {
		o.ArenaReset()
		return 0, nil
	}}
	t["mmap"] = handler{1, func(o *OS, a []int64) (int64, error) {
		// Anonymous mapping of a[0] bytes (page-aligned chunk from the
		// allocator's aligned path).
		if o.oomNow() {
			o.Errno = ENOMEM
			return -1, nil
		}
		addr := o.heap.AllocAligned(mem.PageSize, a[0])
		if addr == 0 {
			o.Errno = ENOMEM
			return -1, nil
		}
		return addr, nil
	}}
	t["munmap"] = handler{2, func(o *OS, a []int64) (int64, error) {
		if !o.heap.Free(a[0]) {
			o.Errno = EINVAL
			return -1, nil
		}
		return 0, nil
	}}

	// --- string/memory helpers (embedded libcalls) --------------------------
	t["memset"] = handler{3, func(o *OS, a []int64) (int64, error) {
		dst, c, n := a[0], a[1], a[2]
		if n < 0 {
			return dst, nil
		}
		splat := c & 0xff
		word := splat | splat<<8 | splat<<16 | splat<<24 | splat<<32 | splat<<40 | splat<<48 | splat<<56
		i := int64(0)
		for ; i+8 <= n; i += 8 {
			o.charge(2)
			if err := o.store(dst+i, word, 8); err != nil {
				return 0, err
			}
		}
		for ; i < n; i++ {
			o.charge(2)
			if err := o.store(dst+i, splat, 1); err != nil {
				return 0, err
			}
		}
		return dst, nil
	}}
	t["memcpy"] = handler{3, func(o *OS, a []int64) (int64, error) {
		dst, src, n := a[0], a[1], a[2]
		if n < 0 {
			return dst, nil
		}
		i := int64(0)
		for ; i+8 <= n; i += 8 {
			w, err := o.Space.Load(src+i, 8)
			if err != nil {
				return 0, err
			}
			o.charge(3)
			if err := o.store(dst+i, w, 8); err != nil {
				return 0, err
			}
		}
		for ; i < n; i++ {
			b, err := o.Space.Load(src+i, 1)
			if err != nil {
				return 0, err
			}
			o.charge(3)
			if err := o.store(dst+i, b, 1); err != nil {
				return 0, err
			}
		}
		return dst, nil
	}}
	t["strlen"] = handler{1, func(o *OS, a []int64) (int64, error) {
		n := int64(0)
		for {
			b, err := o.Space.Load(a[0]+n, 1)
			if err != nil {
				return 0, err
			}
			o.charge(1)
			if b == 0 {
				return n, nil
			}
			n++
		}
	}}
	t["strcmp"] = handler{2, func(o *OS, a []int64) (int64, error) {
		return o.strncmp(a[0], a[1], -1)
	}}
	t["strncmp"] = handler{3, func(o *OS, a []int64) (int64, error) {
		return o.strncmp(a[0], a[1], a[2])
	}}
	t["strcpy"] = handler{2, func(o *OS, a []int64) (int64, error) {
		dst, src := a[0], a[1]
		for i := int64(0); ; i++ {
			b, err := o.Space.Load(src+i, 1)
			if err != nil {
				return 0, err
			}
			o.charge(3)
			if err := o.store(dst+i, b, 1); err != nil {
				return 0, err
			}
			if b == 0 {
				return dst, nil
			}
		}
	}}
	t["atoi"] = handler{1, func(o *OS, a []int64) (int64, error) {
		s, err := o.Space.ReadCString(a[0], 64)
		if err != nil {
			return 0, err
		}
		var v int64
		neg := false
		for i, ch := range []byte(s) {
			if i == 0 && ch == '-' {
				neg = true
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			v = v*10 + int64(ch-'0')
		}
		if neg {
			v = -v
		}
		return v, nil
	}}

	// --- sockets -------------------------------------------------------------
	t["socket"] = handler{0, func(o *OS, a []int64) (int64, error) {
		fd := o.allocFD(FD{Kind: FDListener, Listener: &Listener{Opts: map[int64]int64{}}})
		if fd < 0 {
			o.Errno = EMFILE
			return -1, nil
		}
		return fd, nil
	}}
	t["setsockopt"] = handler{3, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDListener {
			o.Errno = EBADF
			return -1, nil
		}
		s.Listener.Opts[a[1]] = a[2]
		return 0, nil
	}}
	t["getsockopt"] = handler{2, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDListener {
			o.Errno = EBADF
			return -1, nil
		}
		return s.Listener.Opts[a[1]], nil
	}}
	t["bind"] = handler{2, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDListener {
			o.Errno = EBADF
			return -1, nil
		}
		port := a[1]
		if _, taken := o.ports[port]; taken {
			o.Errno = EADDRINUSE
			return -1, nil
		}
		s.Listener.Port = port
		o.ports[port] = s.Listener
		return 0, nil
	}}
	t["listen"] = handler{2, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDListener {
			o.Errno = EBADF
			return -1, nil
		}
		s.Listener.backlog = int(a[1])
		return 0, nil
	}}
	t["accept"] = handler{1, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDListener {
			o.Errno = EBADF
			return -1, nil
		}
		if len(s.Listener.queue) == 0 {
			o.Errno = EAGAIN
			return -1, nil
		}
		c := s.Listener.queue[0]
		s.Listener.queue = s.Listener.queue[1:]
		fd := o.allocFD(FD{Kind: FDConn, Conn: c})
		if fd < 0 {
			o.Errno = EMFILE
			return -1, nil
		}
		return fd, nil
	}}
	t["read"] = handler{3, func(o *OS, a []int64) (int64, error) {
		return o.doRead(a[0], a[1], a[2])
	}}
	t["recv"] = handler{3, func(o *OS, a []int64) (int64, error) {
		return o.doRead(a[0], a[1], a[2])
	}}
	t["write"] = handler{3, func(o *OS, a []int64) (int64, error) {
		return o.doWrite(a[0], a[1], a[2])
	}}
	t["send"] = handler{3, func(o *OS, a []int64) (int64, error) {
		return o.doWrite(a[0], a[1], a[2])
	}}
	t["close"] = handler{1, func(o *OS, a []int64) (int64, error) {
		if !o.CloseFD(a[0]) {
			o.Errno = EBADF
			return -1, nil
		}
		return 0, nil
	}}
	t["shutdown"] = handler{2, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDConn {
			o.Errno = EBADF
			return -1, nil
		}
		s.Conn.CloseServer()
		return 0, nil
	}}
	t["fcntl"] = handler{3, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil {
			o.Errno = EBADF
			return -1, nil
		}
		switch a[1] {
		case FSetFl:
			s.NonBlock = a[2] != 0
			return 0, nil
		case FGetFl:
			if s.NonBlock {
				return 1, nil
			}
			return 0, nil
		default:
			o.Errno = EINVAL
			return -1, nil
		}
	}}

	// --- epoll ---------------------------------------------------------------
	t["epoll_create"] = handler{0, func(o *OS, a []int64) (int64, error) {
		fd := o.allocFD(FD{Kind: FDEpoll, Epoll: &Epoll{}})
		if fd < 0 {
			o.Errno = EMFILE
			return -1, nil
		}
		return fd, nil
	}}
	t["epoll_ctl"] = handler{3, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDEpoll {
			o.Errno = EBADF
			return -1, nil
		}
		switch a[1] {
		case EpollCtlAdd:
			if o.lookupFD(a[2]) == nil {
				o.Errno = EBADF
				return -1, nil
			}
			s.Epoll.watch(a[2])
		case EpollCtlDel:
			s.Epoll.unwatch(a[2])
		default:
			o.Errno = EINVAL
			return -1, nil
		}
		return 0, nil
	}}
	t["epoll_wait"] = handler{3, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDEpoll {
			o.Errno = EBADF
			return -1, nil
		}
		if a[2] <= 0 {
			o.Errno = EINVAL
			return -1, nil
		}
		ready := o.readyFDs(s.Epoll)
		if len(ready) == 0 {
			return 0, ErrBlocked
		}
		n := int64(len(ready))
		if n > a[2] {
			n = a[2]
		}
		for i := int64(0); i < n; i++ {
			if err := o.store(a[1]+i*8, ready[i], 8); err != nil {
				return 0, err
			}
		}
		return n, nil
	}}

	// --- files ---------------------------------------------------------------
	t["open"] = handler{2, func(o *OS, a []int64) (int64, error) {
		return o.doOpen(a[0], a[1])
	}}
	t["open64"] = handler{2, func(o *OS, a []int64) (int64, error) {
		return o.doOpen(a[0], a[1])
	}}
	t["fstat"] = handler{2, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDFile || s.File == nil {
			o.Errno = EBADF
			return -1, nil
		}
		if err := o.store(a[1], int64(len(s.File.File.Data)), 8); err != nil {
			return 0, err
		}
		if err := o.store(a[1]+8, s.File.File.Mode, 8); err != nil {
			return 0, err
		}
		return 0, nil
	}}
	t["stat"] = handler{2, func(o *OS, a []int64) (int64, error) {
		path, err := o.Space.ReadCString(a[0], 256)
		if err != nil {
			return 0, err
		}
		f := o.fs.Lookup(path)
		if f == nil {
			o.Errno = ENOENT
			return -1, nil
		}
		if err := o.store(a[1], int64(len(f.Data)), 8); err != nil {
			return 0, err
		}
		if err := o.store(a[1]+8, f.Mode, 8); err != nil {
			return 0, err
		}
		return 0, nil
	}}
	t["pread"] = handler{4, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDFile || s.File == nil {
			o.Errno = EBADF
			return -1, nil
		}
		off, n := a[3], a[2]
		data := s.File.File.Data
		if off < 0 || n < 0 {
			o.Errno = EINVAL
			return -1, nil
		}
		if off >= int64(len(data)) {
			return 0, nil
		}
		end := off + n
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if err := o.writeBytes(a[1], data[off:end]); err != nil {
			return 0, err
		}
		return end - off, nil
	}}
	t["pwrite"] = handler{4, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDFile || s.File == nil {
			o.Errno = EBADF
			return -1, nil
		}
		if a[2] < 0 || a[3] < 0 {
			o.Errno = EINVAL
			return -1, nil
		}
		buf, err := o.Space.ReadBytes(a[1], a[2])
		if err != nil {
			return 0, err
		}
		f := s.File.File
		off := a[3]
		for int64(len(f.Data)) < off+a[2] {
			f.Data = append(f.Data, 0)
		}
		copy(f.Data[off:], buf)
		o.fs.WriteLog = append(o.fs.WriteLog, fmt.Sprintf("pwrite %s %d@%d", f.Name, a[2], off))
		return a[2], nil
	}}
	t["lseek"] = handler{3, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDFile || s.File == nil {
			o.Errno = EBADF
			return -1, nil
		}
		f := s.File
		switch a[2] {
		case SeekSet:
			f.Offset = a[1]
		case SeekCur:
			f.Offset += a[1]
		case SeekEnd:
			f.Offset = int64(len(f.File.Data)) + a[1]
		default:
			o.Errno = EINVAL
			return -1, nil
		}
		if f.Offset < 0 {
			f.Offset = 0
			o.Errno = EINVAL
			return -1, nil
		}
		return f.Offset, nil
	}}
	t["unlink"] = handler{1, func(o *OS, a []int64) (int64, error) {
		path, err := o.Space.ReadCString(a[0], 256)
		if err != nil {
			return 0, err
		}
		if !o.fs.Remove(path) {
			o.Errno = ENOENT
			return -1, nil
		}
		o.fs.WriteLog = append(o.fs.WriteLog, "unlink "+path)
		return 0, nil
	}}
	t["rename"] = handler{2, func(o *OS, a []int64) (int64, error) {
		from, err := o.Space.ReadCString(a[0], 256)
		if err != nil {
			return 0, err
		}
		to, err := o.Space.ReadCString(a[1], 256)
		if err != nil {
			return 0, err
		}
		if !o.fs.Rename(from, to) {
			o.Errno = ENOENT
			return -1, nil
		}
		o.fs.WriteLog = append(o.fs.WriteLog, "rename "+from+" "+to)
		return 0, nil
	}}
	t["fsync"] = handler{1, func(o *OS, a []int64) (int64, error) {
		s := o.lookupFD(a[0])
		if s == nil || s.Kind != FDFile || s.File == nil {
			o.Errno = EBADF
			return -1, nil
		}
		o.fs.WriteLog = append(o.fs.WriteLog, "fsync "+s.File.File.Name)
		return 0, nil
	}}

	// --- misc ----------------------------------------------------------------
	t["getpid"] = handler{0, func(o *OS, a []int64) (int64, error) {
		return o.pid, nil
	}}
	t["errno"] = handler{0, func(o *OS, a []int64) (int64, error) {
		return o.Errno, nil
	}}
	t["htons"] = handler{1, func(o *OS, a []int64) (int64, error) {
		v := a[0] & 0xffff
		return (v>>8 | v<<8) & 0xffff, nil
	}}
	t["ntohl"] = handler{1, func(o *OS, a []int64) (int64, error) {
		v := uint32(a[0])
		return int64(v>>24 | (v>>8)&0xff00 | (v<<8)&0xff0000 | v<<24), nil
	}}
	t["time"] = handler{0, func(o *OS, a []int64) (int64, error) {
		o.clock += 1000
		return o.clock / 1_000_000_000, nil
	}}
	t["clock_gettime"] = handler{0, func(o *OS, a []int64) (int64, error) {
		o.clock += 1000
		return o.clock, nil
	}}
	t["gettimeofday"] = handler{0, func(o *OS, a []int64) (int64, error) {
		o.clock += 1000
		return o.clock / 1000, nil
	}}
	t["usleep"] = handler{1, func(o *OS, a []int64) (int64, error) {
		o.clock += a[0] * 1000
		return 0, nil
	}}
	t["puts"] = handler{1, func(o *OS, a []int64) (int64, error) {
		s, err := o.Space.ReadCString(a[0], 4096)
		if err != nil {
			return 0, err
		}
		o.stdout = append(o.stdout, s...)
		o.stdout = append(o.stdout, '\n')
		return int64(len(s)) + 1, nil
	}}
	t["printf"] = handler{1, func(o *OS, a []int64) (int64, error) {
		s, err := o.Space.ReadCString(a[0], 4096)
		if err != nil {
			return 0, err
		}
		o.stdout = append(o.stdout, s...)
		return int64(len(s)), nil
	}}
	t["putint"] = handler{1, func(o *OS, a []int64) (int64, error) {
		s := fmt.Sprintf("%d", a[0])
		o.stdout = append(o.stdout, s...)
		return int64(len(s)), nil
	}}

	// --- threads (pthread analogs, dispatched to the scheduler) --------------
	// thread_create(name, arg) spawns the named function as a thread and
	// returns its id; thread_join(tid) blocks until it exits. mutex_lock/
	// mutex_unlock return 0 or a pthread-style error code directly (no
	// errno), like the pthread_mutex_* family. All of them fail with
	// EINVAL when no scheduler is attached (single-threaded runs).
	t["thread_create"] = handler{2, func(o *OS, a []int64) (int64, error) {
		if o.threads == nil {
			o.Errno = EINVAL
			return -1, nil
		}
		name, err := o.Space.ReadCString(a[0], 128)
		if err != nil {
			return 0, err
		}
		o.charge(800) // clone + stack setup
		return o.threads.Create(name, a[1])
	}}
	t["thread_join"] = handler{1, func(o *OS, a []int64) (int64, error) {
		if o.threads == nil {
			o.Errno = EINVAL
			return -1, nil
		}
		o.charge(40)
		return o.threads.Join(a[0])
	}}
	t["mutex_lock"] = handler{1, func(o *OS, a []int64) (int64, error) {
		if o.threads == nil {
			return EINVAL, nil
		}
		o.charge(20)
		return o.threads.MutexLock(a[0])
	}}
	t["mutex_unlock"] = handler{1, func(o *OS, a []int64) (int64, error) {
		if o.threads == nil {
			return EINVAL, nil
		}
		o.charge(20)
		return o.threads.MutexUnlock(a[0])
	}}

	return t
}

func (o *OS) alloc(size int64) (int64, error) {
	if o.oomNow() {
		o.Errno = ENOMEM
		return 0, nil
	}
	addr := o.heap.Alloc(size)
	if addr == 0 {
		o.Errno = ENOMEM
	}
	return addr, nil
}

// oomNow consumes one tick of the OOMAfter countdown and reports whether
// this allocation should fail.
func (o *OS) oomNow() bool {
	if o.OOMAfter > 0 {
		o.OOMAfter--
		return o.OOMAfter == 0
	}
	return false
}

func (o *OS) strncmp(p, q, n int64) (int64, error) {
	for i := int64(0); n < 0 || i < n; i++ {
		o.charge(2)
		a, err := o.Space.Load(p+i, 1)
		if err != nil {
			return 0, err
		}
		b, err := o.Space.Load(q+i, 1)
		if err != nil {
			return 0, err
		}
		if a != b {
			if a < b {
				return -1, nil
			}
			return 1, nil
		}
		if a == 0 {
			return 0, nil
		}
	}
	return 0, nil
}

func (o *OS) doRead(fd, buf, n int64) (int64, error) {
	s := o.lookupFD(fd)
	if s == nil {
		o.Errno = EBADF
		return -1, nil
	}
	if n < 0 {
		o.Errno = EINVAL
		return -1, nil
	}
	switch s.Kind {
	case FDConn:
		c := s.Conn
		if c.reset {
			o.Errno = ECONNRESET
			return -1, nil
		}
		if len(c.in) == 0 {
			if c.clientClosed {
				return 0, nil // EOF
			}
			o.Errno = EAGAIN
			return -1, nil
		}
		take := n
		if take > int64(len(c.in)) {
			take = int64(len(c.in))
		}
		data := c.in[:take]
		if err := o.writeBytes(buf, data); err != nil {
			return 0, err
		}
		o.setLastRead(fd, data)
		o.servingFD = fd
		if c.pendingTrace != 0 {
			// First read of a traced request: promote the pending ID to
			// the connection's active trace and announce the activation.
			c.trace = c.pendingTrace
			c.pendingTrace = 0
			if o.onTrace != nil {
				o.onTrace(c.trace)
			}
		}
		c.in = c.in[take:]
		return take, nil
	case FDFile:
		f := s.File
		if f == nil {
			o.Errno = EBADF
			return -1, nil
		}
		data := f.File.Data
		if f.Offset >= int64(len(data)) {
			return 0, nil
		}
		end := f.Offset + n
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chunk := data[f.Offset:end]
		if err := o.writeBytes(buf, chunk); err != nil {
			return 0, err
		}
		o.setLastRead(fd, chunk)
		got := end - f.Offset
		f.Offset = end
		return got, nil
	default:
		o.Errno = EBADF
		return -1, nil
	}
}

func (o *OS) doWrite(fd, buf, n int64) (int64, error) {
	s := o.lookupFD(fd)
	if s == nil {
		o.Errno = EBADF
		return -1, nil
	}
	if n < 0 {
		o.Errno = EINVAL
		return -1, nil
	}
	// Every sink below copies the payload out (append or copy into the
	// target), so a reusable scratch buffer is safe and avoids one
	// allocation per write call.
	if int64(cap(o.wscratch)) < n {
		o.wscratch = make([]byte, n)
	}
	data := o.wscratch[:n]
	if err := o.Space.ReadInto(buf, data); err != nil {
		return 0, err
	}
	o.charge(n)
	switch s.Kind {
	case FDConn:
		c := s.Conn
		if c.reset {
			o.Errno = ECONNRESET
			return -1, nil
		}
		if c.serverClosed {
			o.Errno = EPIPE
			return -1, nil
		}
		if o.arena.on {
			o.auditWrite(fd, buf, n, c.trace)
		}
		c.out = append(c.out, data...)
		o.servingFD = fd
		return n, nil
	case FDFile:
		if fd <= 2 || s.File == nil {
			o.stdout = append(o.stdout, data...)
			return n, nil
		}
		f := s.File
		file := f.File
		if f.Flags&OAppend != 0 {
			f.Offset = int64(len(file.Data))
		}
		for int64(len(file.Data)) < f.Offset+n {
			file.Data = append(file.Data, 0)
		}
		copy(file.Data[f.Offset:], data)
		f.Offset += n
		o.fs.WriteLog = append(o.fs.WriteLog, fmt.Sprintf("write %s %d", file.Name, n))
		return n, nil
	default:
		o.Errno = EBADF
		return -1, nil
	}
}

func (o *OS) doOpen(pathAddr, flags int64) (int64, error) {
	path, err := o.Space.ReadCString(pathAddr, 256)
	if err != nil {
		return 0, err
	}
	f := o.fs.Lookup(path)
	if f == nil {
		if flags&OCreat == 0 {
			o.Errno = ENOENT
			return -1, nil
		}
		f = o.fs.Add(path, nil)
		o.fs.WriteLog = append(o.fs.WriteLog, "creat "+path)
	}
	if flags&OTrunc != 0 {
		f.Data = nil
		o.fs.WriteLog = append(o.fs.WriteLog, "trunc "+path)
	}
	fd := o.allocFD(FD{Kind: FDFile, File: &OpenFile{File: f, Flags: flags}})
	if fd < 0 {
		o.Errno = EMFILE
		return -1, nil
	}
	return fd, nil
}
