package obsv

// Span-stream fingerprinting. A SpanLog maintains an FNV-1a hash chain
// over its events, updated at append time: after event i the chain value
// is ChainFingerprint(chain_{i-1}, e_i), with chain_{-1} =
// FingerprintSeed. Because every field that enters the hash is stamped
// before the append returns, Fingerprint(log.Events()) always equals
// log.Fingerprint() — the one exception is engineered: a truncated
// marker's Detail is rewritten by later drops, so it is excluded from
// the chain.
//
// The chain is the divergence detector of the record/replay layer
// (internal/replay): a recording stores the per-span chain values, and a
// replayed run that produces a different event at position i differs at
// chain value i — the first mismatch names the exact span.

// FingerprintSeed is the chain's initial value (the FNV-1a 64-bit offset
// basis).
const FingerprintSeed uint64 = 14695981039346656037

const fnvPrime uint64 = 1099511628211

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvInt(h uint64, v int64) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(u>>(8*i)))
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	h = fnvInt(h, int64(len(s)))
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// ChainFingerprint folds one event into the chain. Every field
// participates except a truncated marker's Detail (rewritten in place as
// later events are dropped, so it cannot be hashed at append time).
func ChainFingerprint(h uint64, e SpanEvent) uint64 {
	h = fnvInt(h, e.Seq)
	h = fnvInt(h, e.Cycles)
	h = fnvInt(h, int64(e.Thread))
	h = fnvInt(h, int64(e.Replica))
	h = fnvInt(h, int64(e.Inc))
	h = fnvInt(h, e.Trace)
	h = fnvStr(h, e.Kind)
	h = fnvInt(h, int64(e.Site))
	h = fnvStr(h, e.Call)
	h = fnvStr(h, e.Variant)
	h = fnvStr(h, e.Cause)
	if e.Kind != SpanTruncated {
		h = fnvStr(h, e.Detail)
	}
	return h
}

// Fingerprint computes the chain value of an event stream from scratch.
// For any SpanLog l, Fingerprint(l.Events()) == l.Fingerprint().
func Fingerprint(events []SpanEvent) uint64 {
	h := FingerprintSeed
	for _, e := range events {
		h = ChainFingerprint(h, e)
	}
	return h
}

// Fingerprint returns the incremental hash-chain value over every event
// appended so far (FingerprintSeed for an empty log). Maintained at
// append time, so reading it is O(1).
func (l *SpanLog) Fingerprint() uint64 {
	if l.seq == 0 {
		return FingerprintSeed
	}
	return l.fp
}
