package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// FuncStat is one profiled function (or library call, when Lib is true).
type FuncStat struct {
	Name       string
	Lib        bool  // a library call bucket, not a guest function
	Calls      int64 // completed entries (guest) or executed calls (lib)
	FlatCycles int64 // cycles charged in the function itself
	CumCycles  int64 // cycles charged in the function and its callees
	FlatSteps  int64 // instructions retired in the function itself
}

// SiteStat attributes library-call cycles to one call site (Table III's
// per-site view). Site 0 collects calls the analyzer did not mark.
type SiteStat struct {
	Site   int
	Name   string
	Calls  int64
	Cycles int64
}

// pframe is one shadow-stack entry mirroring a machine frame.
type pframe struct {
	name        string
	stat        *FuncStat
	entryCycles int64
	recursive   bool // same function deeper on the stack (skip cum)
}

// Profile attributes charged cycles and retired instructions to guest
// functions and library-call sites. It mirrors the machine's call stack
// through the interp profiler hooks (Enter/Exit/Lib/Sync); every charged
// cycle between attach and Finish lands in exactly one flat bucket, so
// the per-function flat attribution sums to the machine's total.
//
// The profiler is deterministic: it samples the cost-model cycle counter,
// never the host clock.
type Profile struct {
	stack []pframe
	funcs map[string]*FuncStat
	sites map[siteKey]*SiteStat

	outside *FuncStat // cycles charged with an empty shadow stack

	started               bool
	startCycles           int64
	startSteps            int64
	lastCycles, lastSteps int64
	finished              bool
}

type siteKey struct {
	name string
	site int
}

// NewProfile returns an empty profile ready to attach to a machine.
func NewProfile() *Profile {
	return &Profile{
		funcs: make(map[string]*FuncStat),
		sites: make(map[siteKey]*SiteStat),
	}
}

// fn fetches or creates a function bucket.
func (p *Profile) fn(name string, lib bool) *FuncStat {
	k := name
	if lib {
		k = "lib:" + name
	}
	fs := p.funcs[k]
	if fs == nil {
		fs = &FuncStat{Name: name, Lib: lib}
		p.funcs[k] = fs
	}
	return fs
}

// charge attributes [lastCycles, cycles) to the current top of stack.
func (p *Profile) charge(cycles, steps int64) {
	dc := cycles - p.lastCycles
	ds := steps - p.lastSteps
	if dc == 0 && ds == 0 {
		return
	}
	var fs *FuncStat
	if n := len(p.stack); n > 0 {
		fs = p.stack[n-1].stat
	} else {
		if p.outside == nil {
			p.outside = p.fn("(outside)", false)
		}
		fs = p.outside
	}
	fs.FlatCycles += dc
	fs.FlatSteps += ds
	p.lastCycles = cycles
	p.lastSteps = steps
}

// start initializes the attribution baseline on the first hook call.
func (p *Profile) start(cycles, steps int64) {
	if !p.started {
		p.started = true
		p.startCycles, p.startSteps = cycles, steps
		p.lastCycles, p.lastSteps = cycles, steps
	}
}

// push enters a frame on the shadow stack.
func (p *Profile) push(name string, cycles int64, countCall bool) {
	fs := p.fn(name, false)
	if countCall {
		fs.Calls++
	}
	rec := false
	for i := range p.stack {
		if p.stack[i].name == name {
			rec = true
			break
		}
	}
	p.stack = append(p.stack, pframe{name: name, stat: fs, entryCycles: cycles, recursive: rec})
}

// pop leaves the top frame, attributing its inclusive time.
func (p *Profile) pop(cycles int64) {
	n := len(p.stack)
	f := p.stack[n-1]
	p.stack = p.stack[:n-1]
	if !f.recursive {
		f.stat.CumCycles += cycles - f.entryCycles
	}
}

// Enter implements the interp profiler hook: the machine pushed fn.
func (p *Profile) Enter(fn string, cycles, steps int64) {
	p.start(cycles, steps)
	p.charge(cycles, steps)
	p.push(fn, cycles, true)
}

// Exit implements the interp profiler hook: the machine popped a frame.
func (p *Profile) Exit(cycles, steps int64) {
	p.start(cycles, steps)
	p.charge(cycles, steps)
	if len(p.stack) > 0 {
		p.pop(cycles)
	}
}

// Lib implements the interp profiler hook: a library call that started at
// startCycles just returned. The call's cycles are attributed to the
// library bucket (and its site), not to the enclosing guest function.
func (p *Profile) Lib(name string, site int, startCycles, cycles, steps int64) {
	p.start(cycles, steps)
	if startCycles < p.lastCycles {
		// A snapshot restore inside the call already resynced past the
		// call's start; only the remainder belongs to the library.
		startCycles = p.lastCycles
	}
	// Up to the call start: the enclosing function's own work.
	p.charge(startCycles, steps)
	dc := cycles - startCycles
	fs := p.fn(name, true)
	fs.Calls++
	fs.FlatCycles += dc
	fs.CumCycles += dc
	sk := siteKey{name: name, site: site}
	ss := p.sites[sk]
	if ss == nil {
		ss = &SiteStat{Site: site, Name: name}
		p.sites[sk] = ss
	}
	ss.Calls++
	ss.Cycles += dc
	p.lastCycles = cycles
	p.lastSteps = steps
}

// Sync implements the interp profiler hook: the machine's stack changed
// wholesale (snapshot restore, profiler attach). Cycles up to now belong
// to the old top; the shadow stack is then rebuilt to match, keeping the
// common prefix's entry times so cumulative attribution stays sane.
func (p *Profile) Sync(stack []string, cycles, steps int64) {
	p.start(cycles, steps)
	p.charge(cycles, steps)
	keep := 0
	for keep < len(p.stack) && keep < len(stack) && p.stack[keep].name == stack[keep] {
		keep++
	}
	for len(p.stack) > keep {
		p.pop(cycles)
	}
	for _, name := range stack[keep:] {
		// Restored frames are re-entries of calls already counted.
		p.push(name, cycles, false)
	}
}

// Finish closes the profile at the machine's final cycle/step counts:
// trailing cycles are charged, live frames contribute their partial
// inclusive time, and further hook calls are ignored.
func (p *Profile) Finish(cycles, steps int64) {
	if p.finished {
		return
	}
	p.start(cycles, steps)
	p.charge(cycles, steps)
	for len(p.stack) > 0 {
		p.pop(cycles)
	}
	p.finished = true
}

// TotalCycles returns the cycles attributed since attach; after Finish it
// equals the machine's charged-cycle delta exactly.
func (p *Profile) TotalCycles() int64 { return p.lastCycles - p.startCycles }

// TotalSteps returns the instructions attributed since attach.
func (p *Profile) TotalSteps() int64 { return p.lastSteps - p.startSteps }

// Funcs returns all function buckets ordered by flat cycles (descending),
// name as the tiebreak.
func (p *Profile) Funcs() []FuncStat {
	out := make([]FuncStat, 0, len(p.funcs))
	for _, fs := range p.funcs {
		out = append(out, *fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FlatCycles != out[j].FlatCycles {
			return out[i].FlatCycles > out[j].FlatCycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Sites returns the per-library-call-site attribution ordered by cycles
// (descending), site ID as the tiebreak.
func (p *Profile) Sites() []SiteStat {
	out := make([]SiteStat, 0, len(p.sites))
	for _, ss := range p.sites {
		out = append(out, *ss)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderTop formats the top-n functions (flat + cumulative) as a table.
func (p *Profile) RenderTop(n int) string {
	funcs := p.Funcs()
	if n > 0 && len(funcs) > n {
		funcs = funcs[:n]
	}
	total := p.TotalCycles()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %14s %6s %14s %10s %9s\n",
		"function", "flat-cycles", "flat%", "cum-cycles", "steps", "calls")
	for _, f := range funcs {
		name := f.Name
		if f.Lib {
			name = "lib:" + name
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(f.FlatCycles) / float64(total)
		}
		fmt.Fprintf(&sb, "%-28s %14d %5.1f%% %14d %10d %9d\n",
			name, f.FlatCycles, pct, f.CumCycles, f.FlatSteps, f.Calls)
	}
	fmt.Fprintf(&sb, "%-28s %14d %5.1f%% %14s %10d\n", "total", total, 100.0, "-", p.TotalSteps())
	return sb.String()
}

// jsonProfileLine is the stable JSONL encoding of one profile row.
type jsonProfileLine struct {
	Type   string `json:"type"` // "func", "libsite", "total"
	Name   string `json:"name,omitempty"`
	Lib    bool   `json:"lib,omitempty"`
	Site   *int   `json:"site,omitempty"`
	Calls  int64  `json:"calls,omitempty"`
	Flat   int64  `json:"flat_cycles,omitempty"`
	Cum    int64  `json:"cum_cycles,omitempty"`
	Steps  int64  `json:"flat_steps,omitempty"`
	Cycles int64  `json:"cycles,omitempty"`
}

// WriteJSONL writes the full profile: every function bucket, every
// library site, and a terminal total line.
func (p *Profile) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, f := range p.Funcs() {
		line := jsonProfileLine{Type: "func", Name: f.Name, Lib: f.Lib,
			Calls: f.Calls, Flat: f.FlatCycles, Cum: f.CumCycles, Steps: f.FlatSteps}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	for _, s := range p.Sites() {
		site := s.Site
		line := jsonProfileLine{Type: "libsite", Name: s.Name, Site: &site,
			Calls: s.Calls, Cycles: s.Cycles}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return enc.Encode(jsonProfileLine{Type: "total", Cycles: p.TotalCycles(), Steps: p.TotalSteps()})
}
