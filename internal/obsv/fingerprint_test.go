package obsv

import "testing"

func fpEvents(n int) []SpanEvent {
	evs := make([]SpanEvent, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, SpanEvent{
			Cycles: int64(100 * (i + 1)),
			Thread: i % 3,
			Trace:  int64(i),
			Kind:   SpanBegin,
			Site:   i,
			Call:   "malloc",
		})
	}
	return evs
}

func TestFingerprintIncrementalMatchesBatch(t *testing.T) {
	var l SpanLog
	if l.Fingerprint() != FingerprintSeed {
		t.Fatalf("empty log fingerprint = %#x, want seed", l.Fingerprint())
	}
	for _, e := range fpEvents(10) {
		l.Append(e)
	}
	if got, want := l.Fingerprint(), Fingerprint(l.Events()); got != want {
		t.Errorf("incremental %#x != batch-over-Events %#x", got, want)
	}
}

func TestFingerprintDeterministicAndOrderSensitive(t *testing.T) {
	var a, b SpanLog
	for _, e := range fpEvents(6) {
		a.Append(e)
		b.Append(e)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical append sequences disagree: %#x vs %#x",
			a.Fingerprint(), b.Fingerprint())
	}

	// Swapping two events must change the chain: the fingerprint is a
	// stream identity, not a multiset hash.
	evs := fpEvents(6)
	evs[2], evs[3] = evs[3], evs[2]
	var c SpanLog
	for _, e := range evs {
		c.Append(e)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("reordered stream produced the same fingerprint")
	}
}

// The truncated marker's Detail is rewritten in place as later events are
// dropped; the chain must exclude it so the incremental value keeps
// matching a batch recomputation over Events().
func TestFingerprintStableAcrossTruncation(t *testing.T) {
	l := SpanLog{Limit: 4}
	for _, e := range fpEvents(10) {
		l.Append(e)
	}
	if l.Dropped() == 0 {
		t.Fatal("expected drops")
	}
	after := l.Fingerprint()
	if got := Fingerprint(l.Events()); got != after {
		t.Errorf("batch %#x != incremental %#x after truncation", got, after)
	}
	// Further drops rewrite the marker Detail but never move the chain.
	l.Append(SpanEvent{Kind: SpanCrash})
	if l.Fingerprint() != after {
		t.Error("dropped event moved the fingerprint")
	}
	if got := Fingerprint(l.Events()); got != after {
		t.Errorf("batch %#x != incremental %#x after more drops", got, after)
	}
}
