// Package obsv is FIRestarter's cycle-domain observability layer: a
// deterministic metrics registry, structured transaction spans, and a
// guest profiler. Everything in this package is timestamped in cost-model
// cycles — never wall-clock time — so for a fixed seed every output is
// byte-identical across hosts, runs and harness parallelism.
//
// The three pieces mirror what the paper's evaluation (§VI) actually
// measures:
//
//   - Registry: counters, gauges and fixed-bucket histograms keyed by
//     name + labels (site, thread). The runtime packages (core, htm, stm,
//     sched, workload) publish their counters into a registry at
//     collection time, so the hot paths charge no extra cycles and
//     allocate nothing while the program runs.
//   - SpanLog: begin/abort(cause)/commit/recovery events of every crash
//     transaction, emitted as JSONL. This is the structured superset of
//     the old flat recovery trace (which survives as a rendering).
//   - Profile: attributes retired instructions and charged cycles to
//     guest functions and library-call sites (flat + cumulative), with
//     zero cost when no profiler is attached.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is one key=value dimension of a metric (site, thread, app, ...).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricKind distinguishes registry entry types.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the kind name used in JSONL output.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Metric is one registry entry. Counters and gauges use Value; histograms
// use Buckets/Counts/Sum/Count (Counts has len(Buckets)+1 entries, the
// last one the overflow bucket).
type Metric struct {
	Name   string
	Labels []Label
	Kind   MetricKind

	Value int64

	Buckets []int64
	Counts  []int64
	Sum     int64
	Count   int64
}

// Add increments a counter (or gauge) by n.
func (m *Metric) Add(n int64) { m.Value += n }

// Inc increments a counter by one.
func (m *Metric) Inc() { m.Value++ }

// Set sets a gauge's value.
func (m *Metric) Set(v int64) { m.Value = v }

// SetMax raises a gauge to v if v is larger (peak tracking).
func (m *Metric) SetMax(v int64) {
	if v > m.Value {
		m.Value = v
	}
}

// Observe records one histogram sample.
func (m *Metric) Observe(v int64) {
	if m.Kind != KindHistogram {
		panic("obsv: Observe on non-histogram " + m.Name)
	}
	i := sort.Search(len(m.Buckets), func(i int) bool { return v <= m.Buckets[i] })
	m.Counts[i]++
	m.Sum += v
	m.Count++
}

// key builds the registry map key: name plus sorted labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('|')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// Registry is a deterministic metrics registry. The zero value is not
// usable; create with NewRegistry. Lookups are by (name, labels); all
// rendering orders entries by that key, so output order never depends on
// map iteration.
type Registry struct {
	byKey map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*Metric)}
}

// get fetches or creates the metric, checking kind consistency.
func (r *Registry) get(name string, kind MetricKind, labels []Label) *Metric {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	k := key(name, ls)
	m := r.byKey[k]
	if m == nil {
		m = &Metric{Name: name, Labels: ls, Kind: kind}
		r.byKey[k] = m
	}
	if m.Kind != kind {
		panic(fmt.Sprintf("obsv: metric %s registered as %s, requested as %s", k, m.Kind, kind))
	}
	return m
}

// Counter fetches or creates a counter.
func (r *Registry) Counter(name string, labels ...Label) *Metric {
	return r.get(name, KindCounter, labels)
}

// Gauge fetches or creates a gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Metric {
	return r.get(name, KindGauge, labels)
}

// Histogram fetches or creates a fixed-bucket histogram. The bucket bounds
// are upper bounds, ascending; samples above the last bound land in an
// implicit overflow bucket. Bounds are fixed at creation — re-requesting
// with different bounds panics, keeping series comparable across runs.
func (r *Registry) Histogram(name string, buckets []int64, labels ...Label) *Metric {
	m := r.get(name, KindHistogram, labels)
	if m.Buckets == nil {
		m.Buckets = append([]int64(nil), buckets...)
		m.Counts = make([]int64, len(buckets)+1)
	} else if len(m.Buckets) != len(buckets) {
		panic("obsv: histogram " + name + " re-registered with different buckets")
	}
	return m
}

// Metrics returns all entries ordered by (name, labels).
func (r *Registry) Metrics() []*Metric {
	keys := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Metric, len(keys))
	for i, k := range keys {
		out[i] = r.byKey[k]
	}
	return out
}

// Total sums the Value of every counter/gauge with the given name across
// all label sets (per-thread registries aggregate this way).
func (r *Registry) Total(name string) int64 {
	var sum int64
	for _, m := range r.byKey {
		if m.Name == name && m.Kind != KindHistogram {
			sum += m.Value
		}
	}
	return sum
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.byKey) }

// jsonMetric is the stable JSONL encoding of a metric.
type jsonMetric struct {
	Type    string            `json:"type"`
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *int64            `json:"value,omitempty"`
	Buckets []int64           `json:"buckets,omitempty"`
	Counts  []int64           `json:"counts,omitempty"`
	Sum     *int64            `json:"sum,omitempty"`
	Count   *int64            `json:"count,omitempty"`
}

// WriteJSONL writes one JSON object per metric, ordered by (name, labels).
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, m := range r.Metrics() {
		jm := jsonMetric{Type: m.Kind.String(), Name: m.Name}
		if len(m.Labels) > 0 {
			jm.Labels = make(map[string]string, len(m.Labels))
			for _, l := range m.Labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		if m.Kind == KindHistogram {
			jm.Buckets = m.Buckets
			jm.Counts = m.Counts
			sum, count := m.Sum, m.Count
			jm.Sum, jm.Count = &sum, &count
		} else {
			v := m.Value
			jm.Value = &v
		}
		if err := enc.Encode(jm); err != nil {
			return err
		}
	}
	return nil
}

// Render formats the registry as a human-readable table, one series per
// line, in the same deterministic order as WriteJSONL.
func (r *Registry) Render() string {
	var sb strings.Builder
	for _, m := range r.Metrics() {
		sb.WriteString(m.Name)
		if len(m.Labels) > 0 {
			sb.WriteByte('{')
			for i, l := range m.Labels {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(l.Key + "=" + l.Value)
			}
			sb.WriteByte('}')
		}
		if m.Kind == KindHistogram {
			fmt.Fprintf(&sb, " count=%d sum=%d", m.Count, m.Sum)
		} else {
			fmt.Fprintf(&sb, " %d", m.Value)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Standard fixed bucket sets. Fixed bounds (rather than adaptive ones)
// keep histogram series comparable across runs and threads.
var (
	// CycleBuckets grades cycle-valued samples (recovery latency,
	// transaction windows) on a coarse log scale.
	CycleBuckets = []int64{100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000}

	// CountBuckets grades small cardinalities (write-set lines, undo-log
	// entries, instructions per transaction).
	CountBuckets = []int64{1, 4, 16, 64, 256, 1_024, 4_096}
)
