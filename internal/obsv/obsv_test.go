package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryDeterministicOrderAndTotals(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order scrambled on purpose: output order must not
		// depend on it.
		r.Counter("htm.begins", L("thread", "1")).Add(7)
		r.Counter("core.crashes").Add(3)
		r.Counter("htm.begins", L("thread", "0")).Add(5)
		r.Gauge("stm.peak_log_len").Set(42)
		h := r.Histogram("core.latency_cycles", CycleBuckets)
		h.Observe(50)
		h.Observe(2_500)
		h.Observe(9_999_999) // overflow bucket
		return r
	}
	a, b := &bytes.Buffer{}, &bytes.Buffer{}
	if err := build().WriteJSONL(a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two identical registries rendered differently:\n%s\nvs\n%s", a, b)
	}
	r := build()
	if got := r.Total("htm.begins"); got != 12 {
		t.Errorf("Total(htm.begins) = %d, want 12", got)
	}
	// Every line parses as JSON with a type and name.
	for _, line := range strings.Split(strings.TrimSpace(a.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if m["type"] == "" || m["name"] == "" {
			t.Errorf("line missing type/name: %q", line)
		}
	}
	// Histogram accounting.
	h := r.Histogram("core.latency_cycles", CycleBuckets)
	if h.Count != 3 || h.Sum != 50+2_500+9_999_999 {
		t.Errorf("histogram count=%d sum=%d", h.Count, h.Sum)
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.Counts[len(h.Counts)-1])
	}
}

func TestRegistryLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", L("a", "1"), L("b", "2")).Inc()
	r.Counter("x", L("b", "2"), L("a", "1")).Inc()
	if r.Len() != 1 {
		t.Fatalf("label permutations created %d series, want 1", r.Len())
	}
	if got := r.Total("x"); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
}

func TestSpanLogTruncation(t *testing.T) {
	l := &SpanLog{Limit: 3}
	for i := 0; i < 10; i++ {
		l.Append(SpanEvent{Cycles: int64(i), Kind: SpanCrash, Site: i})
	}
	if l.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", l.Dropped())
	}
	events := l.Events()
	// 3 stored + 1 terminal marker.
	if len(events) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(events))
	}
	last := events[len(events)-1]
	if last.Kind != SpanTruncated {
		t.Fatalf("last event kind = %q, want truncated", last.Kind)
	}
	if !strings.Contains(last.Detail, "dropped=7") {
		t.Errorf("marker detail = %q, want dropped=7", last.Detail)
	}
	// Seq is dense and monotonic over stored events.
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 4 {
		t.Errorf("JSONL lines = %d, want 4", n)
	}
}

func TestSpanLogNoTruncationUnderLimit(t *testing.T) {
	l := &SpanLog{Limit: 10}
	for i := 0; i < 5; i++ {
		if !l.Append(SpanEvent{Kind: SpanBegin}) {
			t.Fatal("append under limit refused")
		}
	}
	if l.Dropped() != 0 || l.Len() != 5 {
		t.Fatalf("dropped=%d len=%d, want 0/5", l.Dropped(), l.Len())
	}
}

// TestProfileAttributionSums drives the profile through a synthetic call
// story and checks the exactness invariant: flat cycles sum to the
// machine's total charged cycles.
func TestProfileAttributionSums(t *testing.T) {
	p := NewProfile()
	// main starts at cycle 0.
	p.Sync([]string{"main"}, 0, 0)
	p.Enter("handler", 10, 5)    // main ran 10 cycles
	p.Lib("read", 3, 25, 60, 12) // handler ran 15, read cost 35
	p.Enter("helper", 80, 20)    // handler ran 20 more
	p.Exit(95, 25)               // helper ran 15
	p.Exit(100, 30)              // handler ran 5 more
	p.Finish(130, 40)            // main ran 30 more

	if got := p.TotalCycles(); got != 130 {
		t.Fatalf("TotalCycles = %d, want 130", got)
	}
	var flatSum int64
	byName := map[string]FuncStat{}
	for _, f := range p.Funcs() {
		flatSum += f.FlatCycles
		key := f.Name
		if f.Lib {
			key = "lib:" + f.Name
		}
		byName[key] = f
	}
	if flatSum != 130 {
		t.Fatalf("flat cycles sum = %d, want 130", flatSum)
	}
	if got := byName["main"].FlatCycles; got != 40 {
		t.Errorf("main flat = %d, want 40", got)
	}
	if got := byName["handler"].FlatCycles; got != 40 {
		t.Errorf("handler flat = %d, want 40", got)
	}
	if got := byName["helper"].FlatCycles; got != 15 {
		t.Errorf("helper flat = %d, want 15", got)
	}
	if got := byName["lib:read"].FlatCycles; got != 35 {
		t.Errorf("read flat = %d, want 35", got)
	}
	// Cumulative: handler covers 10..100 = 90 cycles.
	if got := byName["handler"].CumCycles; got != 90 {
		t.Errorf("handler cum = %d, want 90", got)
	}
	// main's cumulative spans the whole run.
	if got := byName["main"].CumCycles; got != 130 {
		t.Errorf("main cum = %d, want 130", got)
	}
	// Site attribution.
	sites := p.Sites()
	if len(sites) != 1 || sites[0].Site != 3 || sites[0].Cycles != 35 {
		t.Errorf("sites = %+v, want one read@3 with 35 cycles", sites)
	}
	// Steps: 40 total retired.
	if got := p.TotalSteps(); got != 40 {
		t.Errorf("TotalSteps = %d, want 40", got)
	}
}

// TestProfileSyncAfterRollback models a snapshot restore: the stack is
// rebuilt mid-run and attribution still sums exactly.
func TestProfileSyncAfterRollback(t *testing.T) {
	p := NewProfile()
	p.Sync([]string{"main"}, 0, 0)
	p.Enter("worker", 10, 2)
	p.Enter("deep", 30, 6)
	// Crash: restore rewinds to main/worker (common prefix keeps entry
	// times).
	p.Sync([]string{"main", "worker"}, 50, 10)
	p.Exit(70, 14) // worker returns
	p.Finish(90, 18)

	var flatSum int64
	for _, f := range p.Funcs() {
		flatSum += f.FlatCycles
	}
	if flatSum != 90 {
		t.Fatalf("flat sum after sync = %d, want 90", flatSum)
	}
	// Re-entering deeper frames through Sync must not recount calls.
	p2 := NewProfile()
	p2.Sync([]string{"main"}, 0, 0)
	p2.Enter("f", 5, 1)
	p2.Sync([]string{"main", "f", "g"}, 10, 2) // restore into a deeper stack
	p2.Finish(20, 4)
	for _, f := range p2.Funcs() {
		if f.Name == "g" && f.Calls != 0 {
			t.Errorf("sync-pushed frame counted %d calls, want 0", f.Calls)
		}
		if f.Name == "f" && f.Calls != 1 {
			t.Errorf("f calls = %d, want 1", f.Calls)
		}
	}
}

func TestProfileRecursionCumNotDoubleCounted(t *testing.T) {
	p := NewProfile()
	p.Sync([]string{"main"}, 0, 0)
	p.Enter("rec", 10, 1)
	p.Enter("rec", 20, 2)
	p.Exit(30, 3)
	p.Exit(40, 4)
	p.Finish(50, 5)
	for _, f := range p.Funcs() {
		if f.Name == "rec" {
			// Outer rec spans 10..40 = 30; the inner frame must not add.
			if f.CumCycles != 30 {
				t.Errorf("rec cum = %d, want 30", f.CumCycles)
			}
		}
	}
}

func TestProfileJSONLAndRender(t *testing.T) {
	p := NewProfile()
	p.Sync([]string{"main"}, 0, 0)
	p.Lib("malloc", 1, 5, 40, 3)
	p.Finish(100, 10)
	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var total struct {
		Type   string `json:"type"`
		Cycles int64  `json:"cycles"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &total); err != nil {
		t.Fatal(err)
	}
	if total.Type != "total" || total.Cycles != 100 {
		t.Errorf("total line = %+v, want total/100", total)
	}
	out := p.RenderTop(10)
	if !strings.Contains(out, "lib:malloc") || !strings.Contains(out, "total") {
		t.Errorf("RenderTop missing rows:\n%s", out)
	}
}
