package obsv

import (
	"math"
	"math/bits"
)

// Hist is an HDR-style log-linear histogram over non-negative int64
// samples (cost-model cycles, instruction counts). Values below
// histSubCount are recorded exactly; above that each power-of-two octave
// is split into histSubCount linear sub-buckets, bounding the relative
// quantile error at 1/histSubCount (~3%). Memory is O(log(max) * 32)
// regardless of sample count, so unbounded request streams are safe.
//
// Everything is integer- and order-deterministic: two histograms fed the
// same samples in any order report identical counts and quantiles, which
// is what lets the bench layer reconcile a histogram rebuilt from
// Stats().LatencyCycles exactly against one filled on the fly.
type Hist struct {
	counts   []int64
	count    int64
	sum      int64
	min, max int64
}

// histSubBits sets the sub-bucket resolution (2^5 = 32 per octave).
const histSubBits = 5

// histSubCount is the number of exact small-value buckets and the number
// of linear sub-buckets per octave.
const histSubCount = 1 << histSubBits

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{min: -1} }

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	// v is in [2^(n-1), 2^n); shift it into [histSubCount, 2*histSubCount)
	// so each octave contributes histSubCount buckets.
	n := bits.Len64(uint64(v))
	shift := n - histSubBits - 1
	sub := v >> shift
	return int(sub) + histSubCount*shift
}

// histUpper returns the largest value mapping to bucket i.
func histUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	shift := i/histSubCount - 1
	sub := uint64(i%histSubCount + histSubCount)
	// Compute in uint64: for samples in the top octave (shift 57 with
	// 32 sub-buckets) the signed expression (sub+1)<<shift - 1 overflows
	// int64 and wraps negative. Clamp to MaxInt64 instead.
	if shift >= 63 {
		return math.MaxInt64
	}
	upper := (sub+1)<<shift - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Observe records one sample. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := histIndex(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds every sample of other into h. Bucket counts add
// bucket-wise, so a merged histogram reports exactly the counts and
// quantiles of one fed the concatenated sample streams — the fleet
// campaign reducer uses this to aggregate per-campaign latency
// histograms into one per-size readout without keeping raw samples.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.count == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]int64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the exact sum of recorded samples.
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Hist) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1] by nearest rank over
// the buckets: the upper bound of the bucket holding the q-th sample,
// clamped to the observed [Min, Max] so reported quantiles never exceed a
// value that was actually recorded. Returns 0 when empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	rank := histRank(q, h.count)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := histUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.Min() {
				v = h.Min()
			}
			return v
		}
	}
	return h.max
}

// histRank computes the 1-based nearest rank ceil(q*count). The standard
// quantiles are per-mille fractions, which the float expression
// `rank := int64(q*float64(count)); if float64(rank) < q*float64(count)`
// mis-rounds at bucket boundaries (0.99*float64(n) can land one ulp above
// or below the exact product, off-by-one-ing p99/p999 for adversarial
// counts). When q is exactly a per-mille fraction the rank is computed
// with integer arithmetic — ceil(num*count/1000) via a 128-bit product,
// immune to both float error and int64 overflow — and only irrational
// quantiles take the float path.
func histRank(q float64, count int64) int64 {
	if q >= 1 {
		return count
	}
	if num := int64(math.Round(q * 1000)); num > 0 && num < 1000 && float64(num)/1000 == q {
		hi, lo := bits.Mul64(uint64(num), uint64(count))
		quot, rem := bits.Div64(hi, lo, 1000)
		if rem > 0 {
			quot++
		}
		return int64(quot)
	}
	rank := int64(q * float64(count))
	if float64(rank) < q*float64(count) {
		rank++
	}
	return rank
}

// Percentiles is the standard tail-latency readout.
type Percentiles struct {
	P50, P90, P99, P999 int64
}

// Percentiles returns the p50/p90/p99/p999 readout.
func (h *Hist) Percentiles() Percentiles {
	return Percentiles{
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
	}
}
