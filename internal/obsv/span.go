package obsv

import (
	"encoding/json"
	"fmt"
	"io"
)

// Span event kinds. A crash transaction's life is a sequence of spans:
// begin → (abort | crash → retry/inject → recovered | commit), with
// latch-stm/unrecovered as terminal policy events. The escalation-ladder
// rungs above injection emit shed (drop the offending request, resume at
// the quiesce point), reboot (supervised restart of a fresh incarnation)
// and breaker-open (the crash-loop breaker gave up).
const (
	SpanBegin       = "begin"
	SpanCommit      = "commit"
	SpanAbort       = "abort"
	SpanCrash       = "crash"
	SpanRetry       = "retry"
	SpanInject      = "inject"
	SpanLatchSTM    = "latch-stm"
	SpanRecovered   = "recovered"
	SpanUnrecovered = "unrecovered"
	SpanShed        = "shed"
	SpanReboot      = "reboot"
	SpanBreakerOpen = "breaker-open"
	SpanTruncated   = "truncated"
)

// Fleet-tier span kinds. The L4 balancer emits replica-up when a replica
// incarnation boots (including the first boot), replica-down when one
// dies, and handoff when a live connection migrates between replicas —
// on fail-over from a dead replica or when draining one whose crash-loop
// breaker window is filling up.
const (
	SpanHandoff     = "handoff"
	SpanReplicaUp   = "replica-up"
	SpanReplicaDown = "replica-down"
)

// Request-lifecycle span kinds (span schema v2). A request's causal chain
// is bracketed by req-start (the server consumed its first bytes) and
// exactly one terminal req-done (a validated — or rejected — response
// reached the client) or req-lost (the request can never complete: its
// connection died, the server died, or the run ended with it in flight).
const (
	SpanReqStart = "req-start"
	SpanReqDone  = "req-done"
	SpanReqLost  = "req-lost"
)

// Heap-domain span kinds (the rewind-and-discard checkpoint strategy).
// domain-switch marks a request's protection domain becoming current
// (its first arena allocation); domain-discard marks a crash rolling the
// domain's arena back in O(1) (rollback discards only — request-end
// retires are counters, not spans, so a discard never follows the same
// transaction's commit); domain-violation marks a cross-domain access
// trapping as a fail-stop crash cause (the containment guarantee: the
// next span on that thread is the crash/shed/unrecovered it becomes).
// latch-domains is the §IV-C policy latching a gate to the rewind
// strategy.
const (
	SpanDomainSwitch    = "domain-switch"
	SpanDomainDiscard   = "domain-discard"
	SpanDomainViolation = "domain-violation"
	SpanLatchDomains    = "latch-domains"
)

// SpanEvent is one structured transaction event, timestamped in cost-model
// cycles. Field order is the JSONL column order; json.Marshal preserves
// it, so encoded output is byte-deterministic.
type SpanEvent struct {
	Seq     int64  `json:"seq"`
	Cycles  int64  `json:"cycles"`
	Thread  int    `json:"thread"`
	Replica int    `json:"replica,omitempty"` // 1-based fleet replica (0 = not a fleet run)
	Inc     int    `json:"inc,omitempty"`     // 1-based supervisor incarnation on that replica
	Trace   int64  `json:"trace,omitempty"`   // causal request trace ID (0 = none)
	Kind    string `json:"kind"`
	Site    int    `json:"site,omitempty"`
	Call    string `json:"call,omitempty"`
	Variant string `json:"variant,omitempty"` // "htm", "stm" or "domain"
	Cause   string `json:"cause,omitempty"`   // abort cause
	Detail  string `json:"detail,omitempty"`
}

// DefaultSpanLimit bounds a span log (crash storms, §VII of the paper).
const DefaultSpanLimit = 50_000

// SpanLog is a bounded, deterministic event buffer. Once Limit events are
// recorded a single terminal "truncated" marker is appended and further
// events only increment the dropped counter — truncation is never silent.
type SpanLog struct {
	// Limit caps recorded events (<= 0 means DefaultSpanLimit).
	Limit int

	events  []SpanEvent
	dropped int64
	seq     int64
	fp      uint64 // incremental hash chain (see fingerprint.go)
}

// limit resolves the effective cap.
func (l *SpanLog) limit() int {
	if l.Limit <= 0 {
		return DefaultSpanLimit
	}
	return l.Limit
}

// Append records an event (stamping Seq) and reports whether it was
// stored. At the cap the first refused event appends the terminal
// truncated marker; subsequent ones only count. The marker's Detail is
// stamped here — never on read — so Events, WriteJSONL and any direct
// consumer observe the same bytes no matter when they look.
func (l *SpanLog) Append(e SpanEvent) bool {
	if len(l.events) >= l.limit() {
		l.dropped++
		if l.dropped == 1 {
			l.seq++
			marker := SpanEvent{
				Seq:    l.seq,
				Cycles: e.Cycles,
				Thread: e.Thread,
				Kind:   SpanTruncated,
			}
			l.chain(marker)
			l.events = append(l.events, marker)
		}
		l.stampMarker()
		return false
	}
	l.seq++
	e.Seq = l.seq
	l.chain(e)
	l.events = append(l.events, e)
	return true
}

// chain folds a stored event into the incremental fingerprint.
func (l *SpanLog) chain(e SpanEvent) {
	if l.seq == 1 {
		l.fp = FingerprintSeed
	}
	l.fp = ChainFingerprint(l.fp, e)
}

// Len returns the number of stored events (including a truncated marker).
func (l *SpanLog) Len() int { return len(l.events) }

// Dropped returns how many events were discarded past the cap.
func (l *SpanLog) Dropped() int64 { return l.dropped }

// Events returns a copy of the stored events. The truncated marker's
// Detail carries the dropped count as of the last Append — reading is a
// pure copy and never rewrites stored state.
func (l *SpanLog) Events() []SpanEvent {
	return append([]SpanEvent(nil), l.events...)
}

// stampMarker refreshes the stored truncated marker's Detail with the
// current dropped count (called from Append only).
func (l *SpanLog) stampMarker() {
	if l.dropped == 0 || len(l.events) == 0 {
		return
	}
	last := &l.events[len(l.events)-1]
	if last.Kind == SpanTruncated {
		last.Detail = fmt.Sprintf("dropped=%d limit=%d", l.dropped, l.limit())
	}
}

// WriteJSONL writes one JSON object per event.
func (l *SpanLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
