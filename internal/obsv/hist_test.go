package obsv

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistExactSmallValues(t *testing.T) {
	h := NewHist()
	for v := int64(0); v < histSubCount; v++ {
		h.Observe(v)
	}
	if h.Count() != histSubCount {
		t.Fatalf("count = %d", h.Count())
	}
	// Small values are bucketed exactly, so every quantile is the exact
	// nearest-rank sample.
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %d, want 15", got)
	}
	if got := h.Quantile(1.0); got != 31 {
		t.Errorf("p100 = %d, want 31", got)
	}
	if h.Min() != 0 || h.Max() != 31 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistQuantileErrorBoundAndClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHist()
	var samples []int64
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1_000_000)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		rank := int(q * float64(len(samples)))
		if rank > 0 {
			rank--
		}
		exact := samples[rank]
		got := h.Quantile(q)
		// Log-linear bucketing guarantees <= 1/histSubCount relative error
		// above the exact value, and the clamp keeps it under the max.
		hi := exact + exact/histSubCount + 1
		if got < exact-exact/histSubCount-1 || got > hi {
			t.Errorf("q=%v: got %d, exact %d (allowed up to %d)", q, got, exact, hi)
		}
		if got > h.Max() {
			t.Errorf("q=%v: %d exceeds observed max %d", q, got, h.Max())
		}
	}
	var sum int64
	for _, v := range samples {
		sum += v
	}
	if h.Sum() != sum {
		t.Errorf("sum = %d, want %d", h.Sum(), sum)
	}
}

func TestHistOrderIndependent(t *testing.T) {
	vals := []int64{9, 100000, 3, 77, 77, 2048, 0, 55555, 1}
	a, b := NewHist(), NewHist()
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	if a.Percentiles() != b.Percentiles() {
		t.Errorf("order-dependent percentiles: %+v vs %+v", a.Percentiles(), b.Percentiles())
	}
	if a.Sum() != b.Sum() || a.Count() != b.Count() || a.Max() != b.Max() || a.Min() != b.Min() {
		t.Errorf("order-dependent aggregates")
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not all-zero")
	}
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative sample not clamped: %+v", h)
	}
}

func TestHistBucketContinuity(t *testing.T) {
	// Every value maps into a bucket whose upper bound is >= the value,
	// and indices are non-decreasing in the value.
	last := -1
	for v := int64(0); v < 5000; v++ {
		i := histIndex(v)
		if i < last {
			t.Fatalf("index regressed at v=%d: %d < %d", v, i, last)
		}
		if histUpper(i) < v {
			t.Fatalf("upper(%d)=%d < v=%d", i, histUpper(i), v)
		}
		last = i
	}
}

// TestHistRankMatchesSortedOracle is the property test for the integer
// nearest-rank computation: for adversarial sample counts (around
// per-mille boundaries, where ceil(q*n) used to mis-round through float
// arithmetic) and small exactly-bucketed values, Quantile must return
// precisely the sorted-slice nearest-rank sample.
func TestHistRankMatchesSortedOracle(t *testing.T) {
	quantiles := []float64{0.001, 0.5, 0.9, 0.99, 0.999, 1.0}
	// Counts chosen adversarially: multiples of 1000 (exact per-mille
	// boundaries), off-by-one around them, powers of two, and primes.
	counts := []int{1, 2, 3, 7, 31, 100, 127, 999, 1000, 1001, 2000, 2048, 4999, 5000, 5001, 10000}
	for _, n := range counts {
		h := NewHist()
		samples := make([]int64, 0, n)
		// Keep every sample below histSubCount so bucketing is exact and
		// the only possible error is the rank computation itself.
		for i := 0; i < n; i++ {
			v := int64(i % histSubCount)
			samples = append(samples, v)
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			// Oracle: 1-based nearest rank ceil(q*n), computed safely in
			// big-enough float math for these small n and cross-checked by
			// construction (q*1000 is integral for every q above).
			num := int64(math.Round(q * 1000))
			rank := (num*int64(n) + 999) / 1000
			if rank < 1 {
				rank = 1
			}
			if rank > int64(n) {
				rank = int64(n)
			}
			want := samples[rank-1]
			if got := h.Quantile(q); got != want {
				t.Errorf("n=%d q=%v: Quantile=%d, oracle rank %d -> %d", n, q, got, rank, want)
			}
		}
	}
}

// TestHistRankIntegerExact pins histRank against exact integer ceil for
// counts where float rounding of q*count is known to land on the wrong
// side of the boundary in at least one direction.
func TestHistRankIntegerExact(t *testing.T) {
	for _, q := range []float64{0.001, 0.5, 0.9, 0.99, 0.999} {
		num := int64(math.Round(q * 1000))
		for _, n := range []int64{1, 3, 999, 1000, 1001, 10_000, 1 << 20, 1 << 40, math.MaxInt64 / 2, math.MaxInt64} {
			want := oracleCeilMul(num, n)
			if got := histRank(q, n); got != want {
				t.Errorf("histRank(%v, %d) = %d, want %d", q, n, got, want)
			}
		}
	}
	if got := histRank(1.0, 77); got != 77 {
		t.Errorf("histRank(1, 77) = %d", got)
	}
}

// oracleCeilMul computes ceil(num*n/1000) without overflow (num < 1000),
// as an independent oracle for histRank's 128-bit path.
func oracleCeilMul(num, n int64) int64 {
	nq := n / 1000
	nr := n % 1000
	// num*n = num*nq*1000 + num*nr, so the ceil-division splits cleanly.
	return num*nq + (num*nr+999)/1000
}

// TestHistUpperNearMaxDoesNotOverflow is the regression test for the
// histUpper int64 overflow: a sample in the top octave used to compute a
// negative bucket upper bound ((sub+1)<<shift - 1 wraps), which made
// Quantile fall through the min-clamp and report Min instead of a
// top-octave value.
func TestHistUpperNearMaxDoesNotOverflow(t *testing.T) {
	near := int64(math.MaxInt64 - 10)
	i := histIndex(near)
	if up := histUpper(i); up < near {
		t.Fatalf("histUpper(%d) = %d < sample %d (overflow wrap)", i, up, near)
	}
	h := NewHist()
	h.Observe(1)
	h.Observe(near)
	if got := h.Quantile(1.0); got != near {
		t.Errorf("p100 with near-max sample = %d, want %d (max clamp)", got, near)
	}
	if got := h.Quantile(0.999); got != near {
		t.Errorf("p999 with near-max sample = %d, want %d", got, near)
	}
	// The top bucket's bound itself saturates rather than wrapping.
	top := histIndex(math.MaxInt64)
	if up := histUpper(top); up != math.MaxInt64 {
		t.Errorf("histUpper(top) = %d, want MaxInt64", up)
	}
}

// TestSpanLogMarkerStampedAtAppend is the regression test for the old
// mutating-copy asymmetry: the truncated marker's Detail used to be
// rewritten on every Events() call, so a reader could observe different
// bytes depending on when it looked relative to concurrent Appends. The
// marker is now stamped at append time and reads are pure copies.
func TestSpanLogMarkerStampedAtAppend(t *testing.T) {
	l := &SpanLog{Limit: 2}
	for i := 0; i < 4; i++ {
		l.Append(SpanEvent{Cycles: int64(i), Kind: SpanCrash})
	}
	first := l.Events()
	if got := first[len(first)-1].Detail; got != "dropped=2 limit=2" {
		t.Fatalf("marker detail after 2 drops = %q", got)
	}
	// Reading must not mutate: a second read sees identical bytes.
	second := l.Events()
	if first[len(first)-1] != second[len(second)-1] {
		t.Errorf("Events() mutated the marker between reads")
	}
	// Further drops update the stored marker (at append time).
	l.Append(SpanEvent{Cycles: 9, Kind: SpanCrash})
	third := l.Events()
	if got := third[len(third)-1].Detail; got != "dropped=3 limit=2" {
		t.Errorf("marker detail after 3rd drop = %q", got)
	}
	// The returned copies are detached from the log's storage.
	third[0].Kind = "tampered"
	if l.Events()[0].Kind == "tampered" {
		t.Errorf("Events() returned aliased storage")
	}
}
