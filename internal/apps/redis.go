package apps

import "github.com/firestarter-go/firestarter/internal/libsim"

// Redis returns the Redis analog: a single-threaded event loop over a
// chained hash table, speaking a newline-framed SET/GET/DEL protocol (the
// paper's SET/GET workload). Every entry is individually allocated —
// key and value strings duplicated onto the heap — so the allocation
// gates sit exactly where Redis's sds/dict allocations sit.
func Redis() *App {
	return &App{
		Name:        "redis",
		Port:        6379,
		Protocol:    "redis",
		QuiesceFunc: "main",
		Setup:       func(o *libsim.OS) {},
		Source:      redisSrc,
	}
}

const redisSrc = `
// redis-sim: in-memory key-value store.

int g_listen = -1;
int g_epoll = -1;
int g_stop = 0;
int g_conns[128];
int g_buckets[64];     // bucket heads (struct entry*)
int g_keys = 0;

struct entry {
	char *key;
	char *val;
	struct entry *next;
};

struct client {
	int fd;
	int rlen;
	char rbuf[512];
};

int rhash(char *s) {
	int h = 5381;
	int i = 0;
	while (s[i]) {
		h = h * 33 + s[i];
		i++;
	}
	if (h < 0) { h = -h; }
	return h % 64;
}

int itoa_r(char *dst, int v) {
	char tmp[24];
	int i = 0;
	int pos = 0;
	if (v < 0) { dst[0] = '-'; pos = 1; v = -v; }
	if (v == 0) { dst[pos] = '0'; dst[pos+1] = 0; return pos + 1; }
	while (v > 0) { tmp[i] = '0' + v % 10; v /= 10; i++; }
	while (i > 0) { i--; dst[pos] = tmp[i]; pos++; }
	dst[pos] = 0;
	return pos;
}

char *rstrdup(char *s) {
	int n = strlen(s);
	char *d = malloc(n + 1);
	if (!d) { return NULL; }
	memcpy(d, s, n + 1);
	return d;
}

struct entry *lookup(char *key) {
	int b = rhash(key);
	struct entry *e = g_buckets[b];
	while (e) {
		if (strcmp(e->key, key) == 0) { return e; }
		e = e->next;
	}
	return NULL;
}

// db_set inserts or updates; returns 0 on success, -1 on OOM.
int db_set(char *key, char *val) {
	struct entry *e = lookup(key);
	if (e) {
		char *nv = rstrdup(val);
		if (!nv) { return -1; }
		free(e->val);
		e->val = nv;
		return 0;
	}
	struct entry *ne = malloc(sizeof(struct entry));
	if (!ne) { return -1; }
	ne->key = rstrdup(key);
	if (!ne->key) {
		free(ne);
		return -1;
	}
	ne->val = rstrdup(val);
	if (!ne->val) {
		free(ne->key);
		free(ne);
		return -1;
	}
	int b = rhash(key);
	ne->next = g_buckets[b];
	g_buckets[b] = ne;
	g_keys = g_keys + 1;
	return 0;
}

int db_del(char *key) {
	int b = rhash(key);
	struct entry *e = g_buckets[b];
	struct entry *prev = NULL;
	while (e) {
		if (strcmp(e->key, key) == 0) {
			if (prev) {
				prev->next = e->next;
			} else {
				g_buckets[b] = e->next;
			}
			free(e->key);
			free(e->val);
			free(e);
			g_keys = g_keys - 1;
			return 1;
		}
		prev = e;
		e = e->next;
	}
	return 0;
}

int reply(int fd, char *s) {
	int n = strlen(s);
	if (write(fd, s, n) < 0) { return -1; }
	return 0;
}

// execute runs one command line (already NUL-terminated, no newline).
int execute(int fd, char *line) {
	// Tokenize: cmd key [value].
	int i = 0;
	while (line[i] != ' ' && line[i] != 0) { i++; }
	if (line[i] == 0) {
		if (strcmp(line, "QUIT") == 0) {
			g_stop = 1;
			return reply(fd, "+OK\n");
		}
		return reply(fd, "-ERR\n");
	}
	line[i] = 0;
	char *cmd = line;
	char *key = line + i + 1;
	int j = 0;
	while (key[j] != ' ' && key[j] != 0) { j++; }
	char *val = NULL;
	if (key[j] == ' ') {
		key[j] = 0;
		val = key + j + 1;
	}

	if (strcmp(cmd, "SET") == 0) {
		if (!val) { return reply(fd, "-ERR\n"); }
		if (db_set(key, val) == -1) {
			puts("redis: oom on SET");
			return reply(fd, "-OOM\n");
		}
		return reply(fd, "+OK\n");
	}
	if (strcmp(cmd, "GET") == 0) {
		struct entry *e = lookup(key);
		if (!e) { return reply(fd, "$-1\n"); }
		char out[256];
		out[0] = '$';
		int n = strlen(e->val);
		memcpy(out + 1, e->val, n);
		out[n+1] = '\n';
		if (write(fd, out, n + 2) < 0) { return -1; }
		return 0;
	}
	if (strcmp(cmd, "DEL") == 0) {
		if (db_del(key)) { return reply(fd, ":1\n"); }
		return reply(fd, ":0\n");
	}
	if (strcmp(cmd, "EXISTS") == 0) {
		if (lookup(key)) { return reply(fd, ":1\n"); }
		return reply(fd, ":0\n");
	}
	if (strcmp(cmd, "INCR") == 0) {
		struct entry *e = lookup(key);
		char num[32];
		if (!e) {
			num[0] = '1';
			num[1] = 0;
			if (db_set(key, num) == -1) {
				puts("redis: oom on INCR");
				return reply(fd, "-OOM\n");
			}
			return reply(fd, ":1\n");
		}
		int v = atoi(e->val) + 1;
		itoa_r(num, v);
		char *nv = rstrdup(num);
		if (!nv) {
			puts("redis: oom on INCR");
			return reply(fd, "-OOM\n");
		}
		free(e->val);
		e->val = nv;
		char out[40];
		out[0] = ':';
		int n = itoa_r(out + 1, v);
		out[n+1] = '\n';
		if (write(fd, out, n + 2) < 0) { return -1; }
		return 0;
	}
	return reply(fd, "-ERR\n");
}

void client_close(struct client *c) {
	epoll_ctl(g_epoll, 2, c->fd);
	close(c->fd);
	g_conns[c->fd] = 0;
	free(c);
}

void client_read(struct client *c) {
	int n = read(c->fd, c->rbuf + c->rlen, 511 - c->rlen);
	if (n == 0) { client_close(c); return; }
	if (n < 0) {
		if (errno() == 11) { return; }
		client_close(c);
		return;
	}
	c->rlen = c->rlen + n;
	// Process every complete line in the buffer.
	int start = 0;
	for (int i = 0; i < c->rlen; i++) {
		if (c->rbuf[i] == '\n') {
			c->rbuf[i] = 0;
			if (execute(c->fd, c->rbuf + start) < 0) {
				client_close(c);
				return;
			}
			start = i + 1;
		}
	}
	// Shift the partial tail to the front.
	int rest = c->rlen - start;
	if (rest > 0 && start > 0) {
		memcpy(c->rbuf, c->rbuf + start, rest);
	}
	c->rlen = rest;
}

void client_accept() {
	while (1) {
		int fd = accept(g_listen);
		if (fd < 0) { return; }
		if (fd >= 128) { close(fd); return; }
		struct client *c = malloc(sizeof(struct client));
		if (!c) {
			puts("redis: accept alloc failed");
			close(fd);
			return;
		}
		c->fd = fd;
		c->rlen = 0;
		g_conns[fd] = c;
		if (epoll_ctl(g_epoll, 1, fd) == -1) {
			close(fd);
			g_conns[fd] = 0;
			free(c);
			return;
		}
	}
}

int main() {
	int s = socket();
	if (s == -1) { puts("redis: socket failed"); return 1; }
	if (setsockopt(s, 2, 1) == -1) {
		close(s);
		return 1;
	}
	if (bind(s, 6379) == -1) {
		puts("redis: bind failed");
		close(s);
		return 1;
	}
	if (listen(s, 64) == -1) {
		close(s);
		return 1;
	}
	g_listen = s;
	int ep = epoll_create();
	if (ep == -1) { return 1; }
	g_epoll = ep;
	if (epoll_ctl(ep, 1, s) == -1) { return 1; }
	puts("redis-sim: ready");

	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				client_accept();
			} else {
				struct client *c = g_conns[fd];
				if (c) { client_read(c); }
			}
		}
	}
	return 0;
}
`
