package apps

import "github.com/firestarter-go/firestarter/internal/libsim"

// Pool variants: the same servers restructured around per-request memory
// pools (the apache apr_pool / nginx request-pool idiom). Request-scoped
// buffers come from arena_alloc and are reclaimed wholesale by one
// arena_reset at request end — there are no per-chunk frees on the
// request path. Cross-request state (the redis database entries, the
// per-connection con/client structs) stays on the ordinary heap.
//
// With the runtime's heap domains off, arena_alloc degrades to malloc
// and arena_reset to a no-op, so the same program text runs under the
// HTM/STM strategies for the ablation's baseline rows. With domains on,
// each request's pool is a protection-domain-tagged arena the
// rewind-and-discard strategy can snapshot and roll back in O(1).

// LighttpdPool returns the pool-allocating Lighttpd variant (its own
// port so it can run beside the original).
func LighttpdPool() *App {
	return &App{
		Name:        "lighttpd-pool",
		Port:        8083,
		Protocol:    "http",
		QuiesceFunc: "main",
		Setup:       docRoot,
		Source:      lighttpdPoolSrc,
	}
}

// RedisPool returns the pool-allocating Redis variant.
func RedisPool() *App {
	return &App{
		Name:        "redis-pool",
		Port:        6380,
		Protocol:    "redis",
		QuiesceFunc: "main",
		Setup:       func(o *libsim.OS) {},
		Source:      redisPoolSrc,
	}
}

// PoolApps returns the arena-allocating server variants (the heap-domain
// ablation and containment subjects).
func PoolApps() []*App {
	return []*App{LighttpdPool(), RedisPool()}
}

const lighttpdPoolSrc = `
// lighttpd-pool-sim: modular event-driven HTTP server, request pools.

int g_listen = -1;
int g_epoll = -1;
int g_stop = 0;
int g_requests = 0;
int g_conns[128];

struct con {
	int fd;
	int rlen;
	int dav_fd;       // mod_webdav per-connection resource
	char rbuf[512];
};

int lt_append(char *dst, int pos, char *s) {
	int n = strlen(s);
	memcpy(dst + pos, s, n);
	return pos + n;
}

int lt_int(char *dst, int pos, int v) {
	char tmp[24];
	int i = 0;
	if (v == 0) { dst[pos] = '0'; return pos + 1; }
	while (v > 0) { tmp[i] = '0' + v % 10; v /= 10; i++; }
	while (i > 0) { i--; dst[pos] = tmp[i]; pos++; }
	return pos;
}

int http_reply(int fd, int code, char *body, int blen) {
	char hdr[192];
	int pos = 0;
	pos = lt_append(hdr, pos, "HTTP/1.1 ");
	pos = lt_int(hdr, pos, code);
	if (code == 200) {
		pos = lt_append(hdr, pos, " OK");
	} else if (code == 404) {
		pos = lt_append(hdr, pos, " Not Found");
	} else if (code == 403) {
		pos = lt_append(hdr, pos, " Forbidden");
	} else {
		pos = lt_append(hdr, pos, " Internal Server Error");
	}
	pos = lt_append(hdr, pos, "\r\nContent-Length: ");
	pos = lt_int(hdr, pos, blen);
	pos = lt_append(hdr, pos, "\r\n\r\n");
	if (write(fd, hdr, pos) < 0) { return -1; }
	if (blen > 0) {
		if (write(fd, body, blen) < 0) { return -1; }
	}
	return 0;
}

int http_error(int fd, int code) {
	char body[48];
	int pos = 0;
	if (code == 404) {
		pos = lt_append(body, pos, "404 - Not Found");
	} else if (code == 403) {
		pos = lt_append(body, pos, "403 - Forbidden");
	} else {
		pos = lt_append(body, pos, "500 - Internal Server Error");
	}
	return http_reply(fd, code, body, pos);
}

// mod_status: generated status page from the request pool.
int mod_status(int fd) {
	char *page = arena_alloc(128);
	if (!page) {
		puts("lighttpd-pool: status alloc failed");
		return http_error(fd, 500);
	}
	int pos = lt_append(page, 0, "<html>requests handled: ");
	pos = lt_int(page, pos, g_requests);
	pos = lt_append(page, pos, "</html>");
	return http_reply(fd, 200, page, pos);
}

// mod_webdav: PROPFIND over /dav resources; the response document is
// pool-allocated and reclaimed with the request.
int mod_webdav(struct con *c, char *path) {
	char full[256];
	int pos = lt_append(full, 0, path);
	full[pos] = 0;
	int f = open64(full, 0);
	if (f == -1) {
		puts("lighttpd-pool: webdav open failed");
		return http_error(c->fd, 403);
	}
	c->dav_fd = f;
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		c->dav_fd = -1;
		return http_error(c->fd, 500);
	}
	int size = st[0];
	char *xml = arena_alloc(size + 96);
	if (!xml) {
		puts("lighttpd-pool: webdav alloc failed");
		close(f);
		c->dav_fd = -1;
		return http_error(c->fd, 500);
	}
	memset(xml, 0, size + 96);
	int xpos = lt_append(xml, 0, "<propfind><size>");
	xpos = lt_int(xml, xpos, size);
	xpos = lt_append(xml, xpos, "</size><data>");
	int got = pread(f, xml + xpos, size, 0);
	if (got < 0) {
		close(f);
		c->dav_fd = -1;
		return http_error(c->fd, 500);
	}
	xpos = xpos + got;
	xpos = lt_append(xml, xpos, "</data></propfind>");
	close(f);
	c->dav_fd = -1;
	return http_reply(c->fd, 200, xml, xpos);
}

// mod_largefile: delivery path for big resources (own allocation site).
int mod_largefile(int fd, int f, int size) {
	char *body = arena_alloc(size + 1);
	if (!body) {
		puts("lighttpd-pool: large alloc failed");
		close(f);
		return http_error(fd, 500);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		close(f);
		return http_error(fd, 500);
	}
	close(f);
	return http_reply(fd, 200, body, got);
}

// mod_staticfile: plain file delivery from the request pool.
int mod_staticfile(int fd, char *path) {
	char full[256];
	int pos = lt_append(full, 0, "/www");
	if (strcmp(path, "/") == 0) {
		pos = lt_append(full, pos, "/index.html");
	} else {
		pos = lt_append(full, pos, path);
	}
	full[pos] = 0;
	int f = open(full, 0);
	if (f == -1) {
		return http_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		return http_error(fd, 500);
	}
	int size = st[0];
	if (size > 32768) {
		return mod_largefile(fd, f, size);
	}
	char *body = arena_alloc(size + 1);
	if (!body) {
		puts("lighttpd-pool: alloc failed, aborting request");
		close(f);
		return http_error(fd, 500);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		close(f);
		return http_error(fd, 500);
	}
	close(f);
	return http_reply(fd, 200, body, got);
}

// mod_ssi: include processing (simplified: serve the .shtml source).
int mod_ssi(int fd) {
	char full[24];
	int pos = lt_append(full, 0, "/www/ssi.shtml");
	full[pos] = 0;
	int f = open(full, 0);
	if (f == -1) {
		return http_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		return http_error(fd, 500);
	}
	int size = st[0];
	char *body = arena_alloc(size + 1);
	if (!body) {
		close(f);
		return http_error(fd, 500);
	}
	int got = pread(f, body, size, 0);
	if (got < 0) {
		close(f);
		return http_error(fd, 500);
	}
	close(f);
	return http_reply(fd, 200, body, got);
}

// dispatch walks the module chain, first match wins.
int dispatch(struct con *c, char *path) {
	g_requests = g_requests + 1;
	if (strcmp(path, "/quit") == 0) {
		g_stop = 1;
		char none[4];
		return http_reply(c->fd, 200, none, 0);
	}
	if (strcmp(path, "/status") == 0) {
		return mod_status(c->fd);
	}
	if (strncmp(path, "/dav", 4) == 0) {
		return mod_webdav(c, path);
	}
	if (strncmp(path, "/ssi", 4) == 0) {
		return mod_ssi(c->fd);
	}
	return mod_staticfile(c->fd, path);
}

void con_close(struct con *c) {
	epoll_ctl(g_epoll, 2, c->fd);
	close(c->fd);
	if (c->dav_fd >= 0) {
		close(c->dav_fd);
	}
	g_conns[c->fd] = 0;
	free(c);
}

void con_read(struct con *c) {
	int n = read(c->fd, c->rbuf + c->rlen, 511 - c->rlen);
	if (n == 0) { con_close(c); return; }
	if (n < 0) {
		if (errno() == 11) { return; }
		con_close(c);
		return;
	}
	c->rlen = c->rlen + n;
	c->rbuf[c->rlen] = 0;
	if (c->rlen < 4) { return; }
	int e = c->rlen;
	if (c->rbuf[e-4] != '\r' || c->rbuf[e-3] != '\n' || c->rbuf[e-2] != '\r' || c->rbuf[e-1] != '\n') {
		return;
	}
	// Parse the request line (accepts GET and PROPFIND).
	int i = 0;
	while (c->rbuf[i] != ' ' && c->rbuf[i] != 0) { i++; }
	if (c->rbuf[i] == 0) { con_close(c); return; }
	i++;
	int start = i;
	while (c->rbuf[i] != ' ' && c->rbuf[i] != 0) { i++; }
	if (c->rbuf[i] == 0) { con_close(c); return; }
	c->rbuf[i] = 0;
	int rc = dispatch(c, c->rbuf + start);
	// Request end: reclaim the whole pool in one call.
	arena_reset();
	if (rc < 0) {
		con_close(c);
		return;
	}
	c->rlen = 0;
}

void con_accept() {
	while (1) {
		int fd = accept(g_listen);
		if (fd < 0) { return; }
		if (fd >= 128) { close(fd); return; }
		struct con *c = malloc(sizeof(struct con));
		if (!c) {
			puts("lighttpd-pool: accept alloc failed");
			close(fd);
			return;
		}
		c->fd = fd;
		c->rlen = 0;
		c->dav_fd = -1;
		g_conns[fd] = c;
		if (epoll_ctl(g_epoll, 1, fd) == -1) {
			close(fd);
			g_conns[fd] = 0;
			free(c);
			return;
		}
	}
}

int main() {
	int s = socket();
	if (s == -1) { puts("lighttpd-pool: socket failed"); return 1; }
	if (setsockopt(s, 2, 1) == -1) {
		puts("lighttpd-pool: setsockopt failed");
		close(s);
		return 1;
	}
	if (bind(s, 8083) == -1) {
		puts("lighttpd-pool: bind failed");
		close(s);
		return 1;
	}
	if (listen(s, 64) == -1) {
		puts("lighttpd-pool: listen failed");
		close(s);
		return 1;
	}
	g_listen = s;
	int ep = epoll_create();
	if (ep == -1) { puts("lighttpd-pool: epoll_create failed"); return 1; }
	g_epoll = ep;
	if (epoll_ctl(ep, 1, s) == -1) { return 1; }
	puts("lighttpd-pool-sim: ready");

	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				con_accept();
			} else {
				struct con *c = g_conns[fd];
				if (c) { con_read(c); }
			}
		}
	}
	return 0;
}
`

const redisPoolSrc = `
// redis-pool-sim: in-memory key-value store, request pools.

int g_listen = -1;
int g_epoll = -1;
int g_stop = 0;
int g_conns[128];
int g_buckets[64];     // bucket heads (struct entry*)
int g_keys = 0;

struct entry {
	char *key;
	char *val;
	struct entry *next;
};

struct client {
	int fd;
	int rlen;
	char rbuf[512];
};

int rhash(char *s) {
	int h = 5381;
	int i = 0;
	while (s[i]) {
		h = h * 33 + s[i];
		i++;
	}
	if (h < 0) { h = -h; }
	return h % 64;
}

int itoa_r(char *dst, int v) {
	char tmp[24];
	int i = 0;
	int pos = 0;
	if (v < 0) { dst[0] = '-'; pos = 1; v = -v; }
	if (v == 0) { dst[pos] = '0'; dst[pos+1] = 0; return pos + 1; }
	while (v > 0) { tmp[i] = '0' + v % 10; v /= 10; i++; }
	while (i > 0) { i--; dst[pos] = tmp[i]; pos++; }
	dst[pos] = 0;
	return pos;
}

// rstrdup copies onto the ordinary heap: database entries outlive the
// request that created them.
char *rstrdup(char *s) {
	int n = strlen(s);
	char *d = malloc(n + 1);
	if (!d) { return NULL; }
	memcpy(d, s, n + 1);
	return d;
}

// astrdup copies into the request pool: command tokens and response
// buffers die with the request.
char *astrdup(char *s) {
	int n = strlen(s);
	char *d = arena_alloc(n + 1);
	if (!d) { return NULL; }
	memcpy(d, s, n + 1);
	return d;
}

struct entry *lookup(char *key) {
	int b = rhash(key);
	struct entry *e = g_buckets[b];
	while (e) {
		if (strcmp(e->key, key) == 0) { return e; }
		e = e->next;
	}
	return NULL;
}

// db_set inserts or updates; returns 0 on success, -1 on OOM.
int db_set(char *key, char *val) {
	struct entry *e = lookup(key);
	if (e) {
		char *nv = rstrdup(val);
		if (!nv) { return -1; }
		free(e->val);
		e->val = nv;
		return 0;
	}
	struct entry *ne = malloc(sizeof(struct entry));
	if (!ne) { return -1; }
	ne->key = rstrdup(key);
	if (!ne->key) {
		free(ne);
		return -1;
	}
	ne->val = rstrdup(val);
	if (!ne->val) {
		free(ne->key);
		free(ne);
		return -1;
	}
	int b = rhash(key);
	ne->next = g_buckets[b];
	g_buckets[b] = ne;
	g_keys = g_keys + 1;
	return 0;
}

int db_del(char *key) {
	int b = rhash(key);
	struct entry *e = g_buckets[b];
	struct entry *prev = NULL;
	while (e) {
		if (strcmp(e->key, key) == 0) {
			if (prev) {
				prev->next = e->next;
			} else {
				g_buckets[b] = e->next;
			}
			free(e->key);
			free(e->val);
			free(e);
			g_keys = g_keys - 1;
			return 1;
		}
		prev = e;
		e = e->next;
	}
	return 0;
}

int reply(int fd, char *s) {
	int n = strlen(s);
	if (write(fd, s, n) < 0) { return -1; }
	return 0;
}

// execute runs one command line. The line is duplicated into the request
// pool before tokenizing, and bulk replies are built there too — every
// command allocates, which is exactly the shape the rewind strategy's
// O(1) discard pays off on.
int execute(int fd, char *line) {
	char *l = astrdup(line);
	if (!l) { return reply(fd, "-OOM\n"); }
	// Tokenize: cmd key [value].
	int i = 0;
	while (l[i] != ' ' && l[i] != 0) { i++; }
	if (l[i] == 0) {
		if (strcmp(l, "QUIT") == 0) {
			g_stop = 1;
			return reply(fd, "+OK\n");
		}
		return reply(fd, "-ERR\n");
	}
	l[i] = 0;
	char *cmd = l;
	char *key = l + i + 1;
	int j = 0;
	while (key[j] != ' ' && key[j] != 0) { j++; }
	char *val = NULL;
	if (key[j] == ' ') {
		key[j] = 0;
		val = key + j + 1;
	}

	if (strcmp(cmd, "SET") == 0) {
		if (!val) { return reply(fd, "-ERR\n"); }
		if (db_set(key, val) == -1) {
			puts("redis-pool: oom on SET");
			return reply(fd, "-OOM\n");
		}
		return reply(fd, "+OK\n");
	}
	if (strcmp(cmd, "GET") == 0) {
		struct entry *e = lookup(key);
		if (!e) { return reply(fd, "$-1\n"); }
		int n = strlen(e->val);
		char *out = arena_alloc(n + 3);
		if (!out) { return reply(fd, "-OOM\n"); }
		out[0] = '$';
		memcpy(out + 1, e->val, n);
		out[n+1] = '\n';
		if (write(fd, out, n + 2) < 0) { return -1; }
		return 0;
	}
	if (strcmp(cmd, "DEL") == 0) {
		if (db_del(key)) { return reply(fd, ":1\n"); }
		return reply(fd, ":0\n");
	}
	if (strcmp(cmd, "EXISTS") == 0) {
		if (lookup(key)) { return reply(fd, ":1\n"); }
		return reply(fd, ":0\n");
	}
	if (strcmp(cmd, "INCR") == 0) {
		struct entry *e = lookup(key);
		char num[32];
		if (!e) {
			num[0] = '1';
			num[1] = 0;
			if (db_set(key, num) == -1) {
				puts("redis-pool: oom on INCR");
				return reply(fd, "-OOM\n");
			}
			return reply(fd, ":1\n");
		}
		int v = atoi(e->val) + 1;
		itoa_r(num, v);
		char *nv = rstrdup(num);
		if (!nv) {
			puts("redis-pool: oom on INCR");
			return reply(fd, "-OOM\n");
		}
		free(e->val);
		e->val = nv;
		char *out = arena_alloc(40);
		if (!out) { return reply(fd, "-OOM\n"); }
		out[0] = ':';
		int n = itoa_r(out + 1, v);
		out[n+1] = '\n';
		if (write(fd, out, n + 2) < 0) { return -1; }
		return 0;
	}
	return reply(fd, "-ERR\n");
}

void client_close(struct client *c) {
	epoll_ctl(g_epoll, 2, c->fd);
	close(c->fd);
	g_conns[c->fd] = 0;
	free(c);
}

void client_read(struct client *c) {
	int n = read(c->fd, c->rbuf + c->rlen, 511 - c->rlen);
	if (n == 0) { client_close(c); return; }
	if (n < 0) {
		if (errno() == 11) { return; }
		client_close(c);
		return;
	}
	c->rlen = c->rlen + n;
	// Process every complete line in the buffer.
	int start = 0;
	for (int i = 0; i < c->rlen; i++) {
		if (c->rbuf[i] == '\n') {
			c->rbuf[i] = 0;
			int rc = execute(c->fd, c->rbuf + start);
			// Request end: the command's pool dies here.
			arena_reset();
			if (rc < 0) {
				client_close(c);
				return;
			}
			start = i + 1;
		}
	}
	// Shift the partial tail to the front.
	int rest = c->rlen - start;
	if (rest > 0 && start > 0) {
		memcpy(c->rbuf, c->rbuf + start, rest);
	}
	c->rlen = rest;
}

void client_accept() {
	while (1) {
		int fd = accept(g_listen);
		if (fd < 0) { return; }
		if (fd >= 128) { close(fd); return; }
		struct client *c = malloc(sizeof(struct client));
		if (!c) {
			puts("redis-pool: accept alloc failed");
			close(fd);
			return;
		}
		c->fd = fd;
		c->rlen = 0;
		g_conns[fd] = c;
		if (epoll_ctl(g_epoll, 1, fd) == -1) {
			close(fd);
			g_conns[fd] = 0;
			free(c);
			return;
		}
	}
}

int main() {
	int s = socket();
	if (s == -1) { puts("redis-pool: socket failed"); return 1; }
	if (setsockopt(s, 2, 1) == -1) {
		close(s);
		return 1;
	}
	if (bind(s, 6380) == -1) {
		puts("redis-pool: bind failed");
		close(s);
		return 1;
	}
	if (listen(s, 64) == -1) {
		close(s);
		return 1;
	}
	g_listen = s;
	int ep = epoll_create();
	if (ep == -1) { return 1; }
	g_epoll = ep;
	if (epoll_ctl(ep, 1, s) == -1) { return 1; }
	puts("redis-pool-sim: ready");

	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				client_accept();
			} else {
				struct client *c = g_conns[fd];
				if (c) { client_read(c); }
			}
		}
	}
	return 0;
}
`
