package apps_test

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// startVanilla boots an app under the Direct (uninstrumented) runtime.
func startVanilla(t *testing.T, app *apps.App) (*libsim.OS, *interp.Machine) {
	t.Helper()
	prog, err := app.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", app.Name, err)
	}
	o := libsim.New(mem.NewSpace())
	if app.Setup != nil {
		app.Setup(o)
	}
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatalf("machine %s: %v", app.Name, err)
	}
	return o, m
}

// startHardened boots an app under the full FIRestarter runtime.
func startHardened(t *testing.T, app *apps.App, cfg core.Config) (*libsim.OS, *interp.Machine, *core.Runtime) {
	t.Helper()
	prog, err := app.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", app.Name, err)
	}
	tr, err := transform.Apply(prog, nil)
	if err != nil {
		t.Fatalf("transform %s: %v", app.Name, err)
	}
	o := libsim.New(mem.NewSpace())
	if app.Setup != nil {
		app.Setup(o)
	}
	rt := core.New(tr, o, cfg)
	m, err := interp.New(tr.Prog, o, rt)
	if err != nil {
		t.Fatalf("machine %s: %v", app.Name, err)
	}
	rt.Attach(m)
	return o, m, rt
}

func TestAllAppsCompile(t *testing.T) {
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			prog, err := app.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if _, err := transform.Apply(prog, nil); err != nil {
				t.Fatalf("transform: %v", err)
			}
		})
	}
}

func TestVanillaServersServeWorkload(t *testing.T) {
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			o, m := startVanilla(t, app)
			d := &workload.Driver{
				OS: o, M: m, Port: app.Port,
				Gen:         workload.ForProtocol(app.Protocol),
				Concurrency: 4, Seed: 1,
			}
			res := d.Run(60)
			if res.ServerDied {
				t.Fatalf("server died (trap %d); stdout:\n%s", res.TrapCode, tail(o.Stdout()))
			}
			if res.Stalled {
				t.Fatalf("driver stalled after %d completions; stdout:\n%s", res.Completed, tail(o.Stdout()))
			}
			if res.Completed < 55 {
				t.Fatalf("completed %d/60 (bad %d)", res.Completed, res.BadResp)
			}
			if res.BadResp > 5 {
				t.Errorf("bad responses: %d", res.BadResp)
			}
		})
	}
}

func TestHardenedServersServeWorkload(t *testing.T) {
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			o, m, rt := startHardened(t, app, core.Config{})
			d := &workload.Driver{
				OS: o, M: m, Port: app.Port,
				Gen:         workload.ForProtocol(app.Protocol),
				Concurrency: 4, Seed: 1,
			}
			res := d.Run(60)
			if res.ServerDied {
				t.Fatalf("server died (trap %d); stdout:\n%s", res.TrapCode, tail(o.Stdout()))
			}
			if res.Completed < 55 {
				t.Fatalf("completed %d/60 (bad %d, stalled %v)", res.Completed, res.BadResp, res.Stalled)
			}
			st := rt.Stats()
			if st.GateExecs == 0 {
				t.Error("no gate executions under load")
			}
			if st.Crashes != 0 || st.Unrecovered != 0 {
				t.Errorf("unexpected crashes under clean load: %+v", st)
			}
		})
	}
}

func TestNginxServesExactContent(t *testing.T) {
	app := apps.Nginx()
	o, m := startVanilla(t, app)
	if out := m.Run(3_000_000); out.Kind != interp.OutBlocked {
		t.Fatalf("startup outcome = %v", out.Kind)
	}
	if !strings.Contains(o.Stdout(), "nginx-sim: ready") {
		t.Fatalf("no ready banner: %q", o.Stdout())
	}
	c := o.Connect(app.Port)
	c.ClientDeliver([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	m.Run(3_000_000)
	resp := string(c.ClientTake())
	if !strings.HasPrefix(resp, "HTTP/1.1 200 OK\r\nContent-Length: 51\r\n\r\n") {
		t.Fatalf("response = %q", resp)
	}
	if !strings.HasSuffix(resp, "<html><body>welcome to the test suite</body></html>") {
		t.Fatalf("body mismatch: %q", resp)
	}
	// Keep-alive: second request on the same connection.
	c.ClientDeliver([]byte("GET /missing.html HTTP/1.1\r\n\r\n"))
	m.Run(3_000_000)
	resp = string(c.ClientTake())
	if !strings.HasPrefix(resp, "HTTP/1.1 404") {
		t.Fatalf("404 response = %q", resp)
	}
}

func tail(s string) string {
	if len(s) > 800 {
		return "..." + s[len(s)-800:]
	}
	return s
}
