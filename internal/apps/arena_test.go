package apps_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// TestPoolAppsCompile mirrors TestAllAppsCompile for the pool variants.
func TestPoolAppsCompile(t *testing.T) {
	for _, app := range apps.PoolApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			prog, err := app.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if apps.ByName(app.Name) == nil {
				t.Fatalf("ByName(%q) = nil", app.Name)
			}
		})
	}
}

// TestPoolAppsServeWorkload runs the pool variants under every checkpoint
// strategy that can host them. With arenas off (plain hybrid) arena_alloc
// degrades to malloc; with domains on, request buffers live in
// domain-tagged arenas and the containment audit must come back clean.
func TestPoolAppsServeWorkload(t *testing.T) {
	cfgs := map[string]core.Config{
		"hybrid":         {},
		"hybrid-domains": {EnableDomains: true},
		"stm-domains":    {Mode: core.ModeSTMOnly, EnableDomains: true},
		"rewind":         {Mode: core.ModeRewind},
	}
	for _, app := range apps.PoolApps() {
		for name, cfg := range cfgs {
			app, cfg := app, cfg
			t.Run(app.Name+"/"+name, func(t *testing.T) {
				o, m, rt := startHardened(t, app, cfg)
				d := &workload.Driver{
					OS: o, M: m, Port: app.Port,
					Gen:         workload.ForProtocol(app.Protocol),
					Concurrency: 4, Seed: 1,
				}
				res := d.Run(60)
				if res.ServerDied {
					t.Fatalf("server died (trap %d); stdout:\n%s", res.TrapCode, tail(o.Stdout()))
				}
				if res.Completed < 55 {
					t.Fatalf("completed %d/60 (bad %d, stalled %v)", res.Completed, res.BadResp, res.Stalled)
				}
				if res.BadResp > 5 {
					t.Errorf("bad responses: %d", res.BadResp)
				}
				st := rt.Stats()
				if cfg.EnableDomains || cfg.Mode == core.ModeRewind {
					if !o.ArenasEnabled() {
						t.Fatal("domains on but arenas not enabled")
					}
					ast := o.ArenaStats()
					if ast.Allocs == 0 || ast.Retires == 0 {
						t.Fatalf("pool app made no arena allocations: %+v", ast)
					}
					if st.DomainSwitches == 0 || st.DomainRetires != ast.Retires {
						t.Fatalf("domain lifecycle: stats %+v vs arenas %+v", st, ast)
					}
					if leaks := faultinj.CheckReach(o.WriteTaints()); len(leaks) != 0 {
						t.Fatalf("containment leaks on a clean run: %v", leaks)
					}
				} else if o.ArenasEnabled() {
					t.Fatal("arenas enabled without domains")
				}
				if cfg.Mode == core.ModeRewind {
					if st.DomainBegins == 0 || st.DomainCommits == 0 {
						t.Fatalf("rewind mode ran no domain transactions: %+v", st)
					}
					if st.HTMBegins != 0 || st.STMBegins != 0 {
						t.Fatalf("rewind mode used other strategies: %+v", st)
					}
				}
			})
		}
	}
}
