package apps

import "strings"

// NginxMT returns the multi-worker Nginx analog: the single-worker event
// loop of Nginx() replicated across N worker threads that share one
// listening socket (each worker has its own epoll instance watching it,
// accept-on-wake, like nginx without accept_mutex). Workers share the
// heap and globals, so the hardened build exercises the concurrency the
// paper's testbed has: transactions opened at malloc gates in different
// workers race on shared cache lines — the per-path hit counters all
// live in one line — and a mutex-protected request counter drives the
// pthread gates (mutex_lock with its unlock compensation, mutex_unlock as
// a transaction break).
//
// The workers serve forever; the benchmark driver measures a fixed
// request count and discards the instance, as with a real server under a
// load generator. workers must be between 1 and 8.
func NginxMT(workers int) *App {
	if workers < 1 {
		workers = 1
	}
	if workers > 8 {
		workers = 8
	}
	digits := "12345678"
	return &App{
		Name:     "nginx-mt",
		Port:     8080,
		Protocol: "http",
		Setup:    docRoot,
		Source:   strings.ReplaceAll(nginxMTSrc, "@W@", digits[workers-1:workers]),
	}
}

const nginxMTSrc = `
// nginx-mt-sim: master + N worker threads, shared listener.

int g_listen = -1;
int g_stop = 0;
int g_nworkers = @W@;
int g_conns[128];        // fd -> struct conn* (fds are process-global)
int g_epolls[8];         // per-worker epoll instances

// Shared per-path hit counters: eight adjacent ints, one 64-byte cache
// line. Every request increments one slot inside the post-malloc
// transaction, so overlapping transactions in different workers conflict
// here — the organic source of TSX conflict aborts.
int g_hits[8];

// Total request counter, guarded by mutex 1.
int g_total = 0;

struct conn {
	int fd;
	int ep;              // owning worker's epoll
	int rlen;
	int requests;
	char rbuf[512];
};

int append_str(char *dst, int pos, char *s) {
	int n = strlen(s);
	memcpy(dst + pos, s, n);
	return pos + n;
}

int append_int(char *dst, int pos, int v) {
	char tmp[24];
	int i = 0;
	if (v == 0) {
		dst[pos] = '0';
		return pos + 1;
	}
	while (v > 0) {
		tmp[i] = '0' + v % 10;
		v /= 10;
		i++;
	}
	while (i > 0) {
		i--;
		dst[pos] = tmp[i];
		pos++;
	}
	return pos;
}

int send_all(int fd, char *buf, int n) {
	int sent = write(fd, buf, n);
	if (sent < 0) {
		puts("write failed");
		return -1;
	}
	return sent;
}

int send_response(int fd, int code, char *body, int blen) {
	char hdr[256];
	int pos = 0;
	if (code == 200) {
		pos = append_str(hdr, pos, "HTTP/1.1 200 OK\r\nContent-Length: ");
	} else if (code == 404) {
		pos = append_str(hdr, pos, "HTTP/1.1 404 Not Found\r\nContent-Length: ");
	} else {
		pos = append_str(hdr, pos, "HTTP/1.1 500 Internal Server Error\r\nContent-Length: ");
	}
	pos = append_int(hdr, pos, blen);
	pos = append_str(hdr, pos, "\r\n\r\n");
	if (send_all(fd, hdr, pos) < 0) { return -1; }
	if (blen > 0) {
		if (send_all(fd, body, blen) < 0) { return -1; }
	}
	return 0;
}

int send_error(int fd, int code) {
	char body[64];
	int pos = 0;
	if (code == 404) {
		pos = append_str(body, pos, "<html>404 not found</html>");
	} else {
		pos = append_str(body, pos, "<html>500 internal error</html>");
	}
	return send_response(fd, code, body, pos);
}

// serve_static maps the URL path onto /www and streams the file. The
// checked malloc opens the crash transaction; the hit-counter store right
// after it is the cross-worker conflict point, and the memset keeps the
// transaction live long enough to be preempted mid-flight.
int serve_static(int fd, char *path) {
	char full[256];
	int pos = append_str(full, 0, "/www");
	if (strcmp(path, "/") == 0) {
		pos = append_str(full, pos, "/index.html");
	} else {
		pos = append_str(full, pos, path);
	}
	full[pos] = 0;
	int h = pos % 8;

	int f = open(full, 0);
	if (f < 0) {
		return send_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		puts("fstat failed");
		close(f);
		return send_error(fd, 500);
	}
	int size = st[0];
	char *body = malloc(size + 1);
	if (!body) {
		puts("malloc failed, aborting request");
		close(f);
		return send_error(fd, 500);
	}
	g_hits[h] = g_hits[h] + 1;
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		puts("pread failed");
		free(body);
		close(f);
		return send_error(fd, 500);
	}
	close(f);
	int rc = send_response(fd, 200, body, got);
	free(body);
	return rc;
}

// serve_ssi: as in the single-worker analog (§VI-F case study target).
int serve_ssi(int fd) {
	char full[32];
	int pos = append_str(full, 0, "/www/ssi.shtml");
	full[pos] = 0;
	int f = open(full, 0);
	if (f < 0) {
		return send_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		return send_error(fd, 500);
	}
	int size = st[0];
	char *body = malloc(size + 64);
	if (!body) {
		puts("malloc failed, aborting request");
		close(f);
		return send_error(fd, 500);
	}
	int got = pread(f, body, size, 0);
	if (got < 0) {
		free(body);
		close(f);
		return send_response(fd, 200, body, 0);
	}
	char varbuf[16];
	int vlen = pread(f, varbuf, 6, 13);
	if (vlen < 0) {
		free(body);
		close(f);
		return send_response(fd, 200, body, 0);
	}
	memcpy(body + got, varbuf, vlen);
	close(f);
	int rc = send_response(fd, 200, body, got + vlen);
	free(body);
	return rc;
}

int handle_request(int fd, char *req) {
	// Parse "GET <path> HTTP/1.1".
	int i = 0;
	while (req[i] != ' ' && req[i] != 0) { i++; }
	if (req[i] == 0) { return send_error(fd, 500); }
	i++;
	int start = i;
	while (req[i] != ' ' && req[i] != 0) { i++; }
	if (req[i] == 0) { return send_error(fd, 500); }
	req[i] = 0;
	char *path = req + start;
	// Shared request statistics under the lock (nginx's shared-memory
	// stats zone analog).
	if (mutex_lock(1) == 0) {
		g_total = g_total + 1;
		if (mutex_unlock(1) != 0) {
			puts("mutex_unlock failed");
		}
	}
	if (strncmp(path, "/ssi", 4) == 0) {
		return serve_ssi(fd);
	}
	return serve_static(fd, path);
}

void close_conn(struct conn *c) {
	int fd = c->fd;
	epoll_ctl(c->ep, 2, fd);
	close(fd);
	g_conns[fd] = 0;
	free(c);
}

void on_readable(struct conn *c) {
	int n = read(c->fd, c->rbuf + c->rlen, 511 - c->rlen);
	if (n == 0) {
		close_conn(c);
		return;
	}
	if (n < 0) {
		if (errno() == 11) { return; }   // EAGAIN
		puts("read failed");
		close_conn(c);
		return;
	}
	c->rlen = c->rlen + n;
	c->rbuf[c->rlen] = 0;
	if (c->rlen < 4) { return; }
	int e = c->rlen;
	if (c->rbuf[e-4] != '\r' || c->rbuf[e-3] != '\n' || c->rbuf[e-2] != '\r' || c->rbuf[e-1] != '\n') {
		return;
	}
	if (handle_request(c->fd, c->rbuf) < 0) {
		close_conn(c);
		return;
	}
	c->requests = c->requests + 1;
	c->rlen = 0;                      // keep-alive
}

// on_accept takes ONE connection per epoll wake (no accept loop): the
// accepting worker goes on to serve the request, and the next pending
// connection wakes whichever worker the scheduler runs next — the load
// spreads without an accept mutex.
void on_accept(int ep) {
	int fd = accept(g_listen);
	if (fd < 0) { return; }            // EAGAIN: another worker won the race
	if (fd >= 128) { close(fd); return; }
	struct conn *c = malloc(sizeof(struct conn));
	if (!c) {
		puts("malloc failed, rejecting connection");
		close(fd);
		return;
	}
	c->fd = fd;
	c->ep = ep;
	c->rlen = 0;
	c->requests = 0;
	g_conns[fd] = c;
	fcntl(fd, 4, 1);
	if (epoll_ctl(ep, 1, fd) == -1) {
		puts("epoll_ctl failed");
		close(fd);
		g_conns[fd] = 0;
		free(c);
		return;
	}
}

int worker(int wid) {
	int ep = epoll_create();
	if (ep == -1) {
		puts("epoll_create failed");
		return 1;
	}
	g_epolls[wid] = ep;
	if (epoll_ctl(ep, 1, g_listen) == -1) {
		puts("epoll_ctl listener failed");
		return 1;
	}
	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }       // critical path: retry
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				on_accept(ep);
			} else {
				struct conn *c = g_conns[fd];
				if (c) { on_readable(c); }
			}
		}
	}
	return 0;
}

int main() {
	int s = socket();
	if (s == -1) {
		puts("socket() failed");
		return 1;
	}
	int reuseaddr = 1;
	if (setsockopt(s, 2, reuseaddr) == -1) {
		puts("setsockopt() failed");
		close(s);
		return 1;
	}
	if (bind(s, 8080) == -1) {
		puts("bind() failed");
		close(s);
		return 1;
	}
	if (listen(s, 64) == -1) {
		puts("listen() failed");
		close(s);
		return 1;
	}
	g_listen = s;
	puts("nginx-mt-sim: ready");

	int tids[8];
	int w = 0;
	while (w < g_nworkers) {
		int t = thread_create("worker", w);
		if (t < 0) {
			puts("thread_create failed");
			return 1;
		}
		tids[w] = t;
		w = w + 1;
	}
	w = 0;
	while (w < g_nworkers) {
		if (thread_join(tids[w]) != 0) {
			puts("thread_join failed");
		}
		w = w + 1;
	}
	return 0;
}
`
