package apps_test

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
)

// session drives one connection against a booted vanilla app.
type session struct {
	t *testing.T
	m *interp.Machine
	c *libsim.Conn
}

func dial(t *testing.T, app *apps.App) (*session, *libsim.OS) {
	t.Helper()
	o, m := startVanilla(t, app)
	if out := m.Run(5_000_000); out.Kind != interp.OutBlocked {
		t.Fatalf("startup outcome = %v", out.Kind)
	}
	c := o.Connect(app.Port)
	if c == nil {
		t.Fatalf("connect to %s:%d failed", app.Name, app.Port)
	}
	return &session{t: t, m: m, c: c}, o
}

func (s *session) roundTrip(req string) string {
	s.t.Helper()
	s.c.ClientDeliver([]byte(req))
	if out := s.m.Run(50_000_000); out.Kind == interp.OutTrapped {
		s.t.Fatalf("server died on %q: %+v", req, out.Trap)
	}
	return string(s.c.ClientTake())
}

func TestRedisProtocol(t *testing.T) {
	s, _ := dial(t, apps.Redis())
	tests := []struct{ req, want string }{
		{"GET nothing\n", "$-1\n"},
		{"SET k1 hello\n", "+OK\n"},
		{"GET k1\n", "$hello\n"},
		{"SET k1 world\n", "+OK\n"}, // update in place
		{"GET k1\n", "$world\n"},
		{"SET k2 two\n", "+OK\n"},
		{"DEL k1\n", ":1\n"},
		{"DEL k1\n", ":0\n"},
		{"GET k1\n", "$-1\n"},
		{"GET k2\n", "$two\n"},
		{"BOGUS k\n", "-ERR\n"},
	}
	for _, tt := range tests {
		if got := s.roundTrip(tt.req); got != tt.want {
			t.Errorf("%q → %q, want %q", tt.req, got, tt.want)
		}
	}
}

func TestRedisPipelinedCommands(t *testing.T) {
	s, _ := dial(t, apps.Redis())
	got := s.roundTrip("SET a 1\nSET b 2\nGET a\nGET b\n")
	if got != "+OK\n+OK\n$1\n$2\n" {
		t.Fatalf("pipelined = %q", got)
	}
}

func TestPostgresProtocolAndWAL(t *testing.T) {
	s, o := dial(t, apps.Postgres())
	tests := []struct{ req, want string }{
		{"SELECT 7\n", "NONE\n"},
		{"INSERT 7 alpha\n", "OK\n"},
		{"SELECT 7\n", "ROW alpha\n"},
		{"INSERT 7 beta\n", "OK\n"}, // update
		{"SELECT 7\n", "ROW beta\n"},
		{"GARBAGE\n", "ERR\n"},
	}
	for _, tt := range tests {
		if got := s.roundTrip(tt.req); got != tt.want {
			t.Errorf("%q → %q, want %q", tt.req, got, tt.want)
		}
	}
	// The write-ahead rule: both inserts must be on the WAL before their
	// effects were acknowledged.
	wal := o.FS().Lookup("/pgdata/wal")
	if wal == nil {
		t.Fatal("no WAL file")
	}
	if !strings.Contains(string(wal.Data), "INS 7 alpha") ||
		!strings.Contains(string(wal.Data), "INS 7 beta") {
		t.Errorf("WAL content = %q", wal.Data)
	}
	// And fsync was issued per insert.
	syncs := 0
	for _, line := range o.FS().WriteLog {
		if strings.HasPrefix(line, "fsync") {
			syncs++
		}
	}
	if syncs < 2 {
		t.Errorf("fsyncs = %d, want >= 2", syncs)
	}
}

func TestLighttpdModules(t *testing.T) {
	s, _ := dial(t, apps.Lighttpd())
	// mod_status.
	resp := s.roundTrip("GET /status HTTP/1.1\r\n\r\n")
	if !strings.HasPrefix(resp, "HTTP/1.1 200") || !strings.Contains(resp, "requests handled: ") {
		t.Errorf("/status = %q", resp)
	}
	// mod_webdav PROPFIND.
	resp = s.roundTrip("PROPFIND /dav/notes.txt HTTP/1.1\r\n\r\n")
	if !strings.HasPrefix(resp, "HTTP/1.1 200") ||
		!strings.Contains(resp, "<propfind><size>20</size>") ||
		!strings.Contains(resp, "dav resource content") {
		t.Errorf("PROPFIND = %q", resp)
	}
	// Missing dav resource → 403 in lighttpd-sim's webdav semantics? No:
	// open fails with ENOENT and the module reports 403 (matching the
	// paper's recovery-path response for this module).
	resp = s.roundTrip("PROPFIND /dav/ghost HTTP/1.1\r\n\r\n")
	if !strings.HasPrefix(resp, "HTTP/1.1 403") {
		t.Errorf("missing dav resource = %q", resp)
	}
	// mod_ssi.
	resp = s.roundTrip("GET /ssi HTTP/1.1\r\n\r\n")
	if !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Errorf("/ssi = %q", resp)
	}
}

func TestApacheHeaderParsing(t *testing.T) {
	s, o := dial(t, apps.Apache())
	// Connection: close must be honoured.
	resp := s.roundTrip("GET /small.txt HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n")
	if !strings.HasPrefix(resp, "HTTP/1.1 200") || !strings.HasSuffix(resp, "ok") {
		t.Fatalf("response = %q", resp)
	}
	if out := s.m.Run(1_000_000); out.Kind == interp.OutTrapped {
		t.Fatalf("server died closing connection")
	}
	if !s.c.ServerClosed() {
		t.Error("Connection: close not honoured")
	}
	// The access log recorded the request.
	log := o.FS().Lookup("/logs/access.log")
	if log == nil || !strings.Contains(string(log.Data), "GET /small.txt 200") {
		t.Errorf("access log = %+v", log)
	}
	// Non-GET methods are rejected with 500.
	s2, _ := dial(t, apps.Apache())
	resp = s2.roundTrip("PUT /x HTTP/1.1\r\n\r\n")
	if !strings.HasPrefix(resp, "HTTP/1.1 500") {
		t.Errorf("PUT = %q", resp)
	}
}

func TestNginxLargeFilePath(t *testing.T) {
	s, _ := dial(t, apps.Nginx())
	resp := s.roundTrip("GET /big.bin HTTP/1.1\r\n\r\n")
	if !strings.HasPrefix(resp, "HTTP/1.1 200 OK\r\nContent-Length: 49152\r\n\r\n") {
		t.Fatalf("big.bin header = %q", resp[:60])
	}
	if len(resp) != len("HTTP/1.1 200 OK\r\nContent-Length: 49152\r\n\r\n")+49152 {
		t.Fatalf("big.bin body truncated: %d bytes", len(resp))
	}
}

func TestQuitPathsStopServers(t *testing.T) {
	for _, app := range apps.WebServers() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			s, _ := dial(t, app)
			s.c.ClientDeliver([]byte("GET /quit HTTP/1.1\r\n\r\n"))
			out := s.m.Run(50_000_000)
			if out.Kind != interp.OutExited {
				t.Fatalf("outcome after /quit = %v", out.Kind)
			}
		})
	}
}

func TestRedisIncrAndExists(t *testing.T) {
	s, _ := dial(t, apps.Redis())
	tests := []struct{ req, want string }{
		{"EXISTS c\n", ":0\n"},
		{"INCR c\n", ":1\n"},
		{"INCR c\n", ":2\n"},
		{"INCR c\n", ":3\n"},
		{"EXISTS c\n", ":1\n"},
		{"GET c\n", "$3\n"},
		{"SET c 41\n", "+OK\n"},
		{"INCR c\n", ":42\n"},
		{"DEL c\n", ":1\n"},
		{"INCR c\n", ":1\n"}, // recreated from scratch
	}
	for _, tt := range tests {
		if got := s.roundTrip(tt.req); got != tt.want {
			t.Errorf("%q → %q, want %q", tt.req, got, tt.want)
		}
	}
}

func TestPostgresDeleteAndCount(t *testing.T) {
	s, o := dial(t, apps.Postgres())
	tests := []struct{ req, want string }{
		{"COUNT\n", "COUNT 0\n"},
		{"INSERT 1 one\n", "OK\n"},
		{"INSERT 2 two\n", "OK\n"},
		{"INSERT 3 three\n", "OK\n"},
		{"COUNT\n", "COUNT 3\n"},
		{"DELETE 2\n", "OK\n"},
		{"DELETE 2\n", "NONE\n"},
		{"COUNT\n", "COUNT 2\n"},
		{"SELECT 2\n", "NONE\n"},
		{"SELECT 3\n", "ROW three\n"},
	}
	for _, tt := range tests {
		if got := s.roundTrip(tt.req); got != tt.want {
			t.Errorf("%q → %q, want %q", tt.req, got, tt.want)
		}
	}
	// Deletions hit the WAL too (write-ahead rule for all mutations).
	wal := o.FS().Lookup("/pgdata/wal")
	if wal == nil || !strings.Contains(string(wal.Data), "DEL 2") {
		t.Errorf("WAL missing DEL record: %q", wal.Data)
	}
}

func TestNginxHeadMethod(t *testing.T) {
	s, _ := dial(t, apps.Nginx())
	resp := s.roundTrip("HEAD /index.html HTTP/1.1\r\n\r\n")
	if resp != "HTTP/1.1 200 OK\r\nContent-Length: 51\r\n\r\n" {
		t.Fatalf("HEAD response = %q (body must be omitted)", resp)
	}
	// A GET afterwards still carries the body (per-request flag reset).
	resp = s.roundTrip("GET /index.html HTTP/1.1\r\n\r\n")
	if !strings.HasSuffix(resp, "</body></html>") {
		t.Fatalf("GET after HEAD lost its body: %q", resp)
	}
}
