package apps

// Nginx returns the Nginx analog: a single-worker epoll event loop,
// keep-alive HTTP/1.1 connections, per-request heap allocation, static
// file serving and an SSI handler (the subject of the paper's §VI-F null-
// pointer case study, whose recovery path injects EINVAL into pread and
// yields an empty response). The startup sequence — setsockopt, bind,
// listen with EADDRINUSE handling — mirrors the paper's Listing 1.
func Nginx() *App {
	return &App{
		Name:        "nginx",
		Port:        8080,
		Protocol:    "http",
		QuiesceFunc: "main",
		Setup:       docRoot,
		Source:      nginxSrc,
	}
}

const nginxSrc = `
// nginx-sim: event-driven worker process.

int g_listen = -1;
int g_epoll = -1;
int g_stop = 0;
int g_conns[128];        // fd -> struct conn*

struct conn {
	int fd;
	int rlen;
	int requests;
	char rbuf[512];
};

int append_str(char *dst, int pos, char *s) {
	int n = strlen(s);
	memcpy(dst + pos, s, n);
	return pos + n;
}

int append_int(char *dst, int pos, int v) {
	char tmp[24];
	int i = 0;
	if (v == 0) {
		dst[pos] = '0';
		return pos + 1;
	}
	while (v > 0) {
		tmp[i] = '0' + v % 10;
		v /= 10;
		i++;
	}
	while (i > 0) {
		i--;
		dst[pos] = tmp[i];
		pos++;
	}
	return pos;
}

int send_all(int fd, char *buf, int n) {
	int sent = write(fd, buf, n);
	if (sent < 0) {
		puts("write failed");
		return -1;
	}
	return sent;
}

int send_response(int fd, int code, char *body, int blen) {
	char hdr[256];
	int pos = 0;
	if (code == 200) {
		pos = append_str(hdr, pos, "HTTP/1.1 200 OK\r\nContent-Length: ");
	} else if (code == 404) {
		pos = append_str(hdr, pos, "HTTP/1.1 404 Not Found\r\nContent-Length: ");
	} else {
		pos = append_str(hdr, pos, "HTTP/1.1 500 Internal Server Error\r\nContent-Length: ");
	}
	pos = append_int(hdr, pos, blen);
	pos = append_str(hdr, pos, "\r\n\r\n");
	if (send_all(fd, hdr, pos) < 0) { return -1; }
	if (blen > 0 && !g_head_req) {
		if (send_all(fd, body, blen) < 0) { return -1; }
	}
	return 0;
}

int send_error(int fd, int code) {
	char body[64];
	int pos = 0;
	if (code == 404) {
		pos = append_str(body, pos, "<html>404 not found</html>");
	} else {
		pos = append_str(body, pos, "<html>500 internal error</html>");
	}
	return send_response(fd, code, body, pos);
}

// serve_large delivers big responses through the large-buffer path (its
// own allocation site, like nginx's output chain buffers).
int serve_large(int fd, int f, int size) {
	char *body = malloc(size + 1);
	if (!body) {
		puts("malloc failed, aborting request");
		close(f);
		return send_error(fd, 500);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		puts("pread failed");
		free(body);
		close(f);
		return send_error(fd, 500);
	}
	close(f);
	int rc = send_response(fd, 200, body, got);
	free(body);
	return rc;
}

// serve_static maps the URL path onto /www and streams the file.
int serve_static(int fd, char *path) {
	char full[256];
	int pos = append_str(full, 0, "/www");
	if (strcmp(path, "/") == 0) {
		pos = append_str(full, pos, "/index.html");
	} else {
		pos = append_str(full, pos, path);
	}
	full[pos] = 0;

	int f = open(full, 0);
	if (f < 0) {
		return send_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		puts("fstat failed");
		close(f);
		return send_error(fd, 500);
	}
	int size = st[0];
	if (size > 32768) {
		return serve_large(fd, f, size);
	}
	char *body = malloc(size + 1);
	if (!body) {
		puts("malloc failed, aborting request");
		close(f);
		return send_error(fd, 500);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		puts("pread failed");
		free(body);
		close(f);
		return send_error(fd, 500);
	}
	close(f);
	int rc = send_response(fd, 200, body, got);
	free(body);
	return rc;
}

// serve_ssi handles server-side-include pages: the body is read, then the
// include variable is fetched with a second pread — the call the paper's
// case study diverts with EINVAL, producing an empty response.
int serve_ssi(int fd) {
	char full[32];
	int pos = append_str(full, 0, "/www/ssi.shtml");
	full[pos] = 0;
	int f = open(full, 0);
	if (f < 0) {
		return send_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		return send_error(fd, 500);
	}
	int size = st[0];
	char *body = malloc(size + 64);
	if (!body) {
		puts("malloc failed, aborting request");
		close(f);
		return send_error(fd, 500);
	}
	int got = pread(f, body, size, 0);
	if (got < 0) {
		// SSI variable unavailable: empty response, like the patched
		// production incident.
		free(body);
		close(f);
		return send_response(fd, 200, body, 0);
	}
	// Substitute the include marker with the variable value.
	char varbuf[16];
	int vlen = pread(f, varbuf, 6, 13);
	if (vlen < 0) {
		free(body);
		close(f);
		return send_response(fd, 200, body, 0);
	}
	memcpy(body + got, varbuf, vlen);
	close(f);
	int rc = send_response(fd, 200, body, got + vlen);
	free(body);
	return rc;
}

int g_head_req = 0;

int handle_request(int fd, char *req) {
	// Parse "GET|HEAD <path> HTTP/1.1".
	g_head_req = 0;
	if (strncmp(req, "HEAD", 4) == 0) { g_head_req = 1; }
	int i = 0;
	while (req[i] != ' ' && req[i] != 0) { i++; }
	if (req[i] == 0) { return send_error(fd, 500); }
	i++;
	int start = i;
	while (req[i] != ' ' && req[i] != 0) { i++; }
	if (req[i] == 0) { return send_error(fd, 500); }
	req[i] = 0;
	char *path = req + start;
	puts(path);                      // access log (embedded)
	if (strcmp(path, "/quit") == 0) {
		g_stop = 1;
		char none[4];
		return send_response(fd, 200, none, 0);
	}
	if (strncmp(path, "/ssi", 4) == 0) {
		return serve_ssi(fd);
	}
	return serve_static(fd, path);
}

void close_conn(struct conn *c) {
	int fd = c->fd;
	epoll_ctl(g_epoll, 2, fd);
	close(fd);
	g_conns[fd] = 0;
	free(c);
}

void on_readable(struct conn *c) {
	int n = read(c->fd, c->rbuf + c->rlen, 511 - c->rlen);
	if (n == 0) {
		close_conn(c);
		return;
	}
	if (n < 0) {
		if (errno() == 11) { return; }   // EAGAIN
		puts("read failed");
		close_conn(c);
		return;
	}
	c->rlen = c->rlen + n;
	c->rbuf[c->rlen] = 0;
	// Complete request? (ends with CRLFCRLF)
	if (c->rlen < 4) { return; }
	int e = c->rlen;
	if (c->rbuf[e-4] != '\r' || c->rbuf[e-3] != '\n' || c->rbuf[e-2] != '\r' || c->rbuf[e-1] != '\n') {
		return;
	}
	if (handle_request(c->fd, c->rbuf) < 0) {
		close_conn(c);
		return;
	}
	c->requests = c->requests + 1;
	c->rlen = 0;                      // keep-alive: await the next request
}

void on_accept() {
	while (1) {
		int fd = accept(g_listen);
		if (fd < 0) { return; }        // EAGAIN: queue drained
		if (fd >= 128) { close(fd); return; }
		struct conn *c = malloc(sizeof(struct conn));
		if (!c) {
			puts("malloc failed, rejecting connection");
			close(fd);
			return;
		}
		c->fd = fd;
		c->rlen = 0;
		c->requests = 0;
		g_conns[fd] = c;
		fcntl(fd, 4, 1);
		if (epoll_ctl(g_epoll, 1, fd) == -1) {
			puts("epoll_ctl failed");
			close(fd);
			g_conns[fd] = 0;
			free(c);
			return;
		}
	}
}

int main() {
	int s = socket();
	if (s == -1) {
		puts("socket() failed");
		return 1;
	}
	int reuseaddr = 1;
	int ret_s = setsockopt(s, 2, reuseaddr);
	if (ret_s == -1) {
		puts("setsockopt() failed");
		if (close(s) == -1) { puts("close failed"); }
		return 1;
	}
	int ret_b = bind(s, 8080);
	if (ret_b == -1) {
		int err = errno();
		puts("bind() failed");
		if (close(s) == -1) { puts("close failed"); }
		if (err != 98) { return 1; }   // EADDRINUSE handled by retry elsewhere
		return 1;
	}
	if (listen(s, 64) == -1) {
		puts("listen() failed");
		close(s);
		return 1;
	}
	g_listen = s;
	int ep = epoll_create();
	if (ep == -1) {
		puts("epoll_create failed");
		close(s);
		return 1;
	}
	g_epoll = ep;
	if (epoll_ctl(ep, 1, s) == -1) {
		puts("epoll_ctl listener failed");
		return 1;
	}
	puts("nginx-sim: ready");

	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }       // critical path: retry
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				on_accept();
			} else {
				struct conn *c = g_conns[fd];
				if (c) { on_readable(c); }
			}
		}
	}
	puts("nginx-sim: shutting down");
	return 0;
}
`
