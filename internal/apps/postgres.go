package apps

import "github.com/firestarter-go/firestarter/internal/libsim"

// Postgres returns the PostgreSQL analog: a row store with a write-ahead
// log. Every INSERT appends a WAL record (write + fsync — irrecoverable
// transaction breaks, which is why the paper reports PostgreSQL's
// recovery surface and HTM gains as the weakest of the five), and a
// shared-memory statistics region is mapped at startup (the paper's §VII
// shared-memory caveat).
func Postgres() *App {
	return &App{
		Name:        "postgres",
		Port:        5432,
		Protocol:    "sql",
		QuiesceFunc: "main",
		Setup: func(o *libsim.OS) {
			o.FS().Add("/pgdata/wal", nil)
		},
		Source: postgresSrc,
	}
}

const postgresSrc = `
// postgres-sim: row store with WAL.

int g_listen = -1;
int g_epoll = -1;
int g_stop = 0;
int g_walfd = -1;
int g_shm = 0;        // shared-memory stats region (mmap)
int g_conns[128];
int g_table = 0;      // head of the row list (struct row*)

struct row {
	int key;
	char *val;
	struct row *next;
};

struct session {
	int fd;
	int rlen;
	char rbuf[512];
};

int pg_append(char *dst, int pos, char *s) {
	int n = strlen(s);
	memcpy(dst + pos, s, n);
	return pos + n;
}

int pg_int(char *dst, int pos, int v) {
	char tmp[24];
	int i = 0;
	if (v < 0) { dst[pos] = '-'; pos++; v = -v; }
	if (v == 0) { dst[pos] = '0'; return pos + 1; }
	while (v > 0) { tmp[i] = '0' + v % 10; v /= 10; i++; }
	while (i > 0) { i--; dst[pos] = tmp[i]; pos++; }
	return pos;
}

// wal_append persists one log record before the in-memory update becomes
// visible (write-ahead rule). write() and fsync() are irrecoverable.
int wal_append(int key, char *val) {
	if (g_walfd < 0) { return -1; }
	char rec[300];
	int pos = pg_append(rec, 0, "INS ");
	pos = pg_int(rec, pos, key);
	pos = pg_append(rec, pos, " ");
	pos = pg_append(rec, pos, val);
	pos = pg_append(rec, pos, "\n");
	int w = write(g_walfd, rec, pos);
	if (w < 0) {
		puts("postgres: wal write failed");
		return -1;
	}
	if (fsync(g_walfd) == -1) {
		puts("postgres: wal fsync failed");
		return -1;
	}
	return 0;
}

struct row *find_row(int key) {
	struct row *r = g_table;
	while (r) {
		if (r->key == key) { return r; }
		r = r->next;
	}
	return NULL;
}

int insert_row(int key, char *val) {
	if (wal_append(key, val) == -1) { return -1; }
	struct row *r = find_row(key);
	int n = strlen(val);
	char *nv = malloc(n + 1);
	if (!nv) {
		puts("postgres: oom on insert");
		return -1;
	}
	memcpy(nv, val, n + 1);
	if (r) {
		free(r->val);
		r->val = nv;
	} else {
		struct row *nr = malloc(sizeof(struct row));
		if (!nr) {
			puts("postgres: oom on row");
			free(nv);
			return -1;
		}
		nr->key = key;
		nr->val = nv;
		nr->next = g_table;
		g_table = nr;
	}
	// Bump the shared-memory insert counter (externally visible state).
	int *stats = g_shm;
	if (stats) {
		stats[0] = stats[0] + 1;
	}
	return 0;
}

int reply(int fd, char *s, int n) {
	if (write(fd, s, n) < 0) { return -1; }
	return 0;
}

int run_statement(int fd, char *line) {
	if (strncmp(line, "INSERT ", 7) == 0) {
		char *rest = line + 7;
		int i = 0;
		while (rest[i] != ' ' && rest[i] != 0) { i++; }
		if (rest[i] == 0) { return reply(fd, "ERR\n", 4); }
		rest[i] = 0;
		int key = atoi(rest);
		char *val = rest + i + 1;
		if (insert_row(key, val) == -1) {
			return reply(fd, "ERR\n", 4);
		}
		return reply(fd, "OK\n", 3);
	}
	if (strncmp(line, "SELECT ", 7) == 0) {
		int key = atoi(line + 7);
		struct row *r = find_row(key);
		if (!r) { return reply(fd, "NONE\n", 5); }
		char out[300];
		int pos = pg_append(out, 0, "ROW ");
		pos = pg_append(out, pos, r->val);
		pos = pg_append(out, pos, "\n");
		return reply(fd, out, pos);
	}
	if (strncmp(line, "DELETE ", 7) == 0) {
		int key = atoi(line + 7);
		struct row *r = g_table;
		struct row *prev = NULL;
		while (r) {
			if (r->key == key) {
				char rec[64];
				int pos = pg_append(rec, 0, "DEL ");
				pos = pg_int(rec, pos, key);
				pos = pg_append(rec, pos, "\n");
				if (write(g_walfd, rec, pos) < 0) { return reply(fd, "ERR\n", 4); }
				if (fsync(g_walfd) == -1) { return reply(fd, "ERR\n", 4); }
				if (prev) { prev->next = r->next; } else { g_table = r->next; }
				free(r->val);
				free(r);
				return reply(fd, "OK\n", 3);
			}
			prev = r;
			r = r->next;
		}
		return reply(fd, "NONE\n", 5);
	}
	if (strncmp(line, "COUNT", 5) == 0) {
		int n = 0;
		struct row *r = g_table;
		while (r) { n++; r = r->next; }
		char out[40];
		int pos = pg_append(out, 0, "COUNT ");
		pos = pg_int(out, pos, n);
		pos = pg_append(out, pos, "\n");
		return reply(fd, out, pos);
	}
	if (strncmp(line, "QUIT", 4) == 0) {
		g_stop = 1;
		return reply(fd, "OK\n", 3);
	}
	return reply(fd, "ERR\n", 4);
}

void end_session(struct session *s) {
	epoll_ctl(g_epoll, 2, s->fd);
	close(s->fd);
	g_conns[s->fd] = 0;
	free(s);
}

void session_read(struct session *s) {
	int n = read(s->fd, s->rbuf + s->rlen, 511 - s->rlen);
	if (n == 0) { end_session(s); return; }
	if (n < 0) {
		if (errno() == 11) { return; }
		end_session(s);
		return;
	}
	s->rlen = s->rlen + n;
	int start = 0;
	for (int i = 0; i < s->rlen; i++) {
		if (s->rbuf[i] == '\n') {
			s->rbuf[i] = 0;
			if (run_statement(s->fd, s->rbuf + start) < 0) {
				end_session(s);
				return;
			}
			start = i + 1;
		}
	}
	int rest = s->rlen - start;
	if (rest > 0 && start > 0) {
		memcpy(s->rbuf, s->rbuf + start, rest);
	}
	s->rlen = rest;
}

void session_accept() {
	while (1) {
		int fd = accept(g_listen);
		if (fd < 0) { return; }
		if (fd >= 128) { close(fd); return; }
		struct session *s = calloc(1, sizeof(struct session));
		if (!s) {
			puts("postgres: accept alloc failed");
			close(fd);
			return;
		}
		s->fd = fd;
		g_conns[fd] = s;
		if (epoll_ctl(g_epoll, 1, fd) == -1) {
			close(fd);
			g_conns[fd] = 0;
			free(s);
			return;
		}
	}
}

int main() {
	// Shared-memory statistics region (irrecoverable interactions, §VII).
	int shm = mmap(4096);
	if (shm == -1) {
		puts("postgres: mmap failed");
		return 1;
	}
	g_shm = shm;

	char walpath[16];
	int wp = pg_append(walpath, 0, "/pgdata/wal");
	walpath[wp] = 0;
	int wal = open(walpath, 0x401);     // O_WRONLY|O_APPEND
	if (wal == -1) {
		puts("postgres: cannot open wal");
		return 1;
	}
	g_walfd = wal;

	int s = socket();
	if (s == -1) { return 1; }
	if (setsockopt(s, 2, 1) == -1) {
		close(s);
		return 1;
	}
	if (bind(s, 5432) == -1) {
		puts("postgres: bind failed");
		close(s);
		return 1;
	}
	if (listen(s, 64) == -1) {
		close(s);
		return 1;
	}
	g_listen = s;
	int ep = epoll_create();
	if (ep == -1) { return 1; }
	g_epoll = ep;
	if (epoll_ctl(ep, 1, s) == -1) { return 1; }
	puts("postgres-sim: ready");

	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				session_accept();
			} else {
				struct session *c = g_conns[fd];
				if (c) { session_read(c); }
			}
		}
	}
	return 0;
}
`
