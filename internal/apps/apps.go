// Package apps contains the five event-driven server applications the
// paper evaluates — analogs of Nginx, Apache, Lighttpd, Redis and
// PostgreSQL — written in mini-C (package minic) against the simulated
// libc (package libsim).
//
// The servers are miniature but architecturally faithful: an epoll event
// loop with retry error handling (the critical path, §V-B), per-request
// allocation with checked malloc (the non-critical error paths the fault
// injection experiments target), static file serving with open/fstat/
// pread, response writes (irrecoverable transaction breaks), access
// logging through embedded printf calls, and the error-handling idioms of
// the paper's Listing 1. Each server speaks a small real protocol that the
// workload generators in package workload drive and validate.
package apps

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/minic"
)

// App describes one server application.
type App struct {
	// Name is the analog's name ("nginx", "apache", ...).
	Name string

	// Source is the mini-C program text.
	Source string

	// Port is the TCP port the server listens on.
	Port int64

	// Setup prepares the simulated OS (document root, data files).
	Setup func(o *libsim.OS)

	// Protocol selects the workload generator family: "http", "redis"
	// or "sql".
	Protocol string

	// QuiesceFunc names the function holding the app's quiesce point —
	// the accept/event loop the recovery runtime's request-shedding rung
	// may rewind to when the rest of the ladder is exhausted. Empty means
	// the app declares no safe quiesce point and shedding stays disabled.
	QuiesceFunc string
}

// Compile builds the app's IR program.
func (a *App) Compile() (*ir.Program, error) {
	prog, err := minic.Compile(a.Source, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		return nil, fmt.Errorf("apps: compiling %s: %w", a.Name, err)
	}
	return prog, nil
}

// All returns the five servers in the paper's order.
func All() []*App {
	return []*App{Nginx(), Apache(), Lighttpd(), Redis(), Postgres()}
}

// ByName returns the named app (including the pool variants) or nil.
func ByName(name string) *App {
	for _, a := range append(All(), PoolApps()...) {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// WebServers returns the three HTTP servers (Table III's subjects).
func WebServers() []*App {
	return []*App{Nginx(), Apache(), Lighttpd()}
}

// docRoot installs the standard document root used by the HTTP servers'
// workloads.
func docRoot(o *libsim.OS) {
	fs := o.FS()
	fs.Add("/www/index.html", []byte("<html><body>welcome to the test suite</body></html>"))
	fs.Add("/www/about.html", []byte("<html><body>about page with somewhat longer content: "+
		"the quick brown fox jumps over the lazy dog</body></html>"))
	fs.Add("/www/small.txt", []byte("ok"))
	fs.Add("/www/data.bin", make([]byte, 16*1024))
	fs.Add("/www/ssi.shtml", []byte("<html>header <!--#echo var=x--> footer</html>"))
	fs.Add("/www/big.bin", make([]byte, 48*1024))
	fs.Add("/dav/notes.txt", []byte("dav resource content"))
}
