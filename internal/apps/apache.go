package apps

import "github.com/firestarter-go/firestarter/internal/libsim"

// Apache returns the Apache httpd analog. Architecturally it differs from
// the Nginx analog the way the originals differ: requests are handled to
// completion one event at a time (worker-MPM style), and request
// processing leans heavily on the C string library — header parsing with
// strncmp/strlen per line, field copies with memcpy — which is what gives
// Apache its very high embedded-libcall count in the paper's Table III.
// Every access is also appended to an access-log file (write(2): an
// irrecoverable transaction break).
func Apache() *App {
	return &App{
		Name:        "apache",
		Port:        8081,
		Protocol:    "http",
		QuiesceFunc: "main",
		Setup: func(o *libsim.OS) {
			docRoot(o)
			o.FS().Add("/logs/access.log", nil)
		},
		Source: apacheSrc,
	}
}

const apacheSrc = `
// apache-sim: worker-style HTTP server with header parsing and access log.

int g_listen = -1;
int g_epoll = -1;
int g_logfd = -1;
int g_stop = 0;
int g_conns[128];

struct request {
	int fd;
	int rlen;
	int keepalive;
	char rbuf[768];
	char path[256];
	char host[64];
};

int sa_append(char *dst, int pos, char *s) {
	int n = strlen(s);
	memcpy(dst + pos, s, n);
	return pos + n;
}

int sa_int(char *dst, int pos, int v) {
	char tmp[24];
	int i = 0;
	if (v == 0) { dst[pos] = '0'; return pos + 1; }
	while (v > 0) { tmp[i] = '0' + v % 10; v /= 10; i++; }
	while (i > 0) { i--; dst[pos] = tmp[i]; pos++; }
	return pos;
}

void log_access(char *path, int status) {
	if (g_logfd < 0) { return; }
	char line[300];
	int pos = sa_append(line, 0, "GET ");
	pos = sa_append(line, pos, path);
	pos = sa_append(line, pos, " ");
	pos = sa_int(line, pos, status);
	pos = sa_append(line, pos, "\n");
	if (write(g_logfd, line, pos) < 0) {
		puts("access log write failed");
	}
}

int respond(int fd, int code, char *body, int blen) {
	char hdr[256];
	int pos = 0;
	pos = sa_append(hdr, pos, "HTTP/1.1 ");
	pos = sa_int(hdr, pos, code);
	if (code == 200) {
		pos = sa_append(hdr, pos, " OK");
	} else if (code == 404) {
		pos = sa_append(hdr, pos, " Not Found");
	} else {
		pos = sa_append(hdr, pos, " Internal Server Error");
	}
	pos = sa_append(hdr, pos, "\r\nServer: apache-sim\r\nContent-Length: ");
	pos = sa_int(hdr, pos, blen);
	pos = sa_append(hdr, pos, "\r\n\r\n");
	if (write(fd, hdr, pos) < 0) { return -1; }
	if (blen > 0) {
		if (write(fd, body, blen) < 0) { return -1; }
	}
	return 0;
}

int fail_request(int fd, int code, char *path) {
	char body[80];
	int pos = 0;
	if (code == 404) {
		pos = sa_append(body, pos, "<html><h1>Not Found</h1></html>");
	} else {
		pos = sa_append(body, pos, "<html><h1>Internal Server Error</h1></html>");
	}
	log_access(path, code);
	return respond(fd, code, body, pos);
}

// parse_headers walks the header lines with the string library, the way
// httpd's protocol.c does: one strncmp per known field.
int parse_headers(struct request *r) {
	char *buf = r->rbuf;
	int len = r->rlen;
	int i = 0;
	// Request line: METHOD SP PATH SP VERSION CRLF
	if (strncmp(buf, "GET ", 4) != 0 && strncmp(buf, "HEAD", 4) != 0) {
		return -1;
	}
	while (i < len && buf[i] != ' ') { i++; }
	i++;
	int p = 0;
	while (i < len && buf[i] != ' ' && p < 255) {
		r->path[p] = buf[i];
		i++;
		p++;
	}
	r->path[p] = 0;
	while (i < len && buf[i] != '\n') { i++; }
	i++;
	r->keepalive = 1;
	r->host[0] = 0;
	// Header lines.
	while (i < len) {
		if (buf[i] == '\r') { break; }
		int start = i;
		while (i < len && buf[i] != '\r') { i++; }
		int llen = i - start;
		i += 2;
		if (llen > 6 && strncmp(buf + start, "Host: ", 6) == 0) {
			int hl = llen - 6;
			if (hl > 63) { hl = 63; }
			memcpy(r->host, buf + start + 6, hl);
			r->host[hl] = 0;
		}
		if (llen > 12 && strncmp(buf + start, "Connection: ", 12) == 0) {
			if (strncmp(buf + start + 12, "close", 5) == 0) {
				r->keepalive = 0;
			}
		}
	}
	return 0;
}

int serve_large_file(struct request *r, int f, int size) {
	char *body = calloc(1, size + 1);
	if (!body) {
		puts("apache: calloc failed, aborting request");
		close(f);
		return fail_request(r->fd, 500, r->path);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		free(body);
		close(f);
		return fail_request(r->fd, 500, r->path);
	}
	close(f);
	log_access(r->path, 200);
	int rc = respond(r->fd, 200, body, got);
	free(body);
	return rc;
}

int serve_file(struct request *r) {
	char full[300];
	int pos = sa_append(full, 0, "/www");
	if (strcmp(r->path, "/") == 0) {
		pos = sa_append(full, pos, "/index.html");
	} else {
		pos = sa_append(full, pos, r->path);
	}
	full[pos] = 0;

	int f = open(full, 0);
	if (f == -1) {
		return fail_request(r->fd, 404, r->path);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		puts("apache: fstat failed");
		close(f);
		return fail_request(r->fd, 500, r->path);
	}
	int size = st[0];
	if (size > 32768) {
		return serve_large_file(r, f, size);
	}
	char *body = calloc(1, size + 1);
	if (!body) {
		puts("apache: calloc failed, aborting request");
		close(f);
		return fail_request(r->fd, 500, r->path);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		puts("apache: pread failed");
		free(body);
		close(f);
		return fail_request(r->fd, 500, r->path);
	}
	close(f);
	log_access(r->path, 200);
	int rc = respond(r->fd, 200, body, got);
	free(body);
	return rc;
}

int process(struct request *r) {
	if (parse_headers(r) == -1) {
		return fail_request(r->fd, 500, r->path);
	}
	if (strcmp(r->path, "/quit") == 0) {
		g_stop = 1;
		char none[4];
		log_access(r->path, 200);
		return respond(r->fd, 200, none, 0);
	}
	if (strncmp(r->path, "/ssi", 4) == 0) {
		// apache-sim serves SSI pages as plain files.
		int n = strlen(r->path);
		if (n < 250) {
			memcpy(r->path + n, ".shtml", 7);
		}
	}
	return serve_file(r);
}

void drop_conn(struct request *r) {
	epoll_ctl(g_epoll, 2, r->fd);
	close(r->fd);
	g_conns[r->fd] = 0;
	free(r);
}

void readable(struct request *r) {
	int n = read(r->fd, r->rbuf + r->rlen, 767 - r->rlen);
	if (n == 0) {
		drop_conn(r);
		return;
	}
	if (n < 0) {
		if (errno() == 11) { return; }
		drop_conn(r);
		return;
	}
	r->rlen = r->rlen + n;
	r->rbuf[r->rlen] = 0;
	if (r->rlen < 4) { return; }
	int e = r->rlen;
	if (r->rbuf[e-4] != '\r' || r->rbuf[e-3] != '\n' || r->rbuf[e-2] != '\r' || r->rbuf[e-1] != '\n') {
		return;
	}
	int rc = process(r);
	if (rc < 0 || !r->keepalive) {
		drop_conn(r);
		return;
	}
	r->rlen = 0;
}

void acceptable() {
	while (1) {
		int fd = accept(g_listen);
		if (fd < 0) { return; }
		if (fd >= 128) { close(fd); return; }
		struct request *r = calloc(1, sizeof(struct request));
		if (!r) {
			puts("apache: out of memory on accept");
			close(fd);
			return;
		}
		r->fd = fd;
		g_conns[fd] = r;
		if (epoll_ctl(g_epoll, 1, fd) == -1) {
			puts("apache: epoll_ctl failed");
			close(fd);
			g_conns[fd] = 0;
			free(r);
			return;
		}
	}
}

int main() {
	int s = socket();
	if (s == -1) { puts("apache: socket failed"); return 1; }
	if (setsockopt(s, 2, 1) == -1) {
		puts("apache: setsockopt failed");
		close(s);
		return 1;
	}
	if (bind(s, 8081) == -1) {
		puts("apache: bind failed");
		close(s);
		return 1;
	}
	if (listen(s, 64) == -1) {
		puts("apache: listen failed");
		close(s);
		return 1;
	}
	g_listen = s;

	char logpath[20];
	int lp = sa_append(logpath, 0, "/logs/access.log");
	logpath[lp] = 0;
	int lf = open(logpath, 0x401);      // O_WRONLY|O_APPEND
	if (lf == -1) {
		puts("apache: cannot open access log");
	} else {
		g_logfd = lf;
	}

	int ep = epoll_create();
	if (ep == -1) { puts("apache: epoll_create failed"); return 1; }
	g_epoll = ep;
	if (epoll_ctl(ep, 1, s) == -1) { puts("apache: epoll_ctl failed"); return 1; }
	puts("apache-sim: ready");

	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				acceptable();
			} else {
				struct request *r = g_conns[fd];
				if (r) { readable(r); }
			}
		}
	}
	return 0;
}
`
