package apps

// Lighttpd returns the Lighttpd analog: an epoll event loop dispatching
// into a chain of small module handlers (mod_status, mod_webdav,
// mod_staticfile), mirroring lighttpd's plugin architecture. The many
// small handler functions give it the largest number of distinct
// transactions of the three web servers, as in the paper's Table III. The
// WebDAV module reproduces the structure of the paper's §VI-F case study:
// a per-connection resource opened with open64 whose injected failure
// turns into a "403 Forbidden" response.
func Lighttpd() *App {
	return &App{
		Name:        "lighttpd",
		Port:        8082,
		Protocol:    "http",
		QuiesceFunc: "main",
		Setup:       docRoot,
		Source:      lighttpdSrc,
	}
}

const lighttpdSrc = `
// lighttpd-sim: modular event-driven HTTP server.

int g_listen = -1;
int g_epoll = -1;
int g_stop = 0;
int g_requests = 0;
int g_conns[128];

struct con {
	int fd;
	int rlen;
	int dav_fd;       // mod_webdav per-connection resource
	char rbuf[512];
};

int lt_append(char *dst, int pos, char *s) {
	int n = strlen(s);
	memcpy(dst + pos, s, n);
	return pos + n;
}

int lt_int(char *dst, int pos, int v) {
	char tmp[24];
	int i = 0;
	if (v == 0) { dst[pos] = '0'; return pos + 1; }
	while (v > 0) { tmp[i] = '0' + v % 10; v /= 10; i++; }
	while (i > 0) { i--; dst[pos] = tmp[i]; pos++; }
	return pos;
}

int http_reply(int fd, int code, char *body, int blen) {
	char hdr[192];
	int pos = 0;
	pos = lt_append(hdr, pos, "HTTP/1.1 ");
	pos = lt_int(hdr, pos, code);
	if (code == 200) {
		pos = lt_append(hdr, pos, " OK");
	} else if (code == 404) {
		pos = lt_append(hdr, pos, " Not Found");
	} else if (code == 403) {
		pos = lt_append(hdr, pos, " Forbidden");
	} else {
		pos = lt_append(hdr, pos, " Internal Server Error");
	}
	pos = lt_append(hdr, pos, "\r\nContent-Length: ");
	pos = lt_int(hdr, pos, blen);
	pos = lt_append(hdr, pos, "\r\n\r\n");
	if (write(fd, hdr, pos) < 0) { return -1; }
	if (blen > 0) {
		if (write(fd, body, blen) < 0) { return -1; }
	}
	return 0;
}

int http_error(int fd, int code) {
	char body[48];
	int pos = 0;
	if (code == 404) {
		pos = lt_append(body, pos, "404 - Not Found");
	} else if (code == 403) {
		pos = lt_append(body, pos, "403 - Forbidden");
	} else {
		pos = lt_append(body, pos, "500 - Internal Server Error");
	}
	return http_reply(fd, code, body, pos);
}

// mod_status: generated status page, exercises allocation + formatting.
int mod_status(int fd) {
	char *page = malloc(128);
	if (!page) {
		puts("lighttpd: status alloc failed");
		return http_error(fd, 500);
	}
	int pos = lt_append(page, 0, "<html>requests handled: ");
	pos = lt_int(page, pos, g_requests);
	pos = lt_append(page, pos, "</html>");
	int rc = http_reply(fd, 200, page, pos);
	free(page);
	return rc;
}

// mod_webdav: PROPFIND over /dav resources. The connection caches an open
// resource descriptor; a missing cleanup of that descriptor is the
// use-after-free shape of the paper's lighttpd bug.
int mod_webdav(struct con *c, char *path) {
	char full[256];
	int pos = lt_append(full, 0, path);
	full[pos] = 0;
	int f = open64(full, 0);
	if (f == -1) {
		// Compensated/injected failure path: 403, as in the paper.
		puts("lighttpd: webdav open failed");
		return http_error(c->fd, 403);
	}
	c->dav_fd = f;
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		c->dav_fd = -1;
		return http_error(c->fd, 500);
	}
	int size = st[0];
	char *xml = malloc(size + 96);
	if (!xml) {
		puts("lighttpd: webdav alloc failed");
		close(f);
		c->dav_fd = -1;
		return http_error(c->fd, 500);
	}
	memset(xml, 0, size + 96);
	int xpos = lt_append(xml, 0, "<propfind><size>");
	xpos = lt_int(xml, xpos, size);
	xpos = lt_append(xml, xpos, "</size><data>");
	int got = pread(f, xml + xpos, size, 0);
	if (got < 0) {
		free(xml);
		close(f);
		c->dav_fd = -1;
		return http_error(c->fd, 500);
	}
	xpos = xpos + got;
	xpos = lt_append(xml, xpos, "</data></propfind>");
	close(f);
	c->dav_fd = -1;
	int rc = http_reply(c->fd, 200, xml, xpos);
	free(xml);
	return rc;
}

// mod_largefile: delivery path for big resources (own allocation site).
int mod_largefile(int fd, int f, int size) {
	char *body = malloc(size + 1);
	if (!body) {
		puts("lighttpd: large alloc failed");
		close(f);
		return http_error(fd, 500);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		free(body);
		close(f);
		return http_error(fd, 500);
	}
	close(f);
	int rc = http_reply(fd, 200, body, got);
	free(body);
	return rc;
}

// mod_staticfile: plain file delivery.
int mod_staticfile(int fd, char *path) {
	char full[256];
	int pos = lt_append(full, 0, "/www");
	if (strcmp(path, "/") == 0) {
		pos = lt_append(full, pos, "/index.html");
	} else {
		pos = lt_append(full, pos, path);
	}
	full[pos] = 0;
	int f = open(full, 0);
	if (f == -1) {
		return http_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		return http_error(fd, 500);
	}
	int size = st[0];
	if (size > 32768) {
		return mod_largefile(fd, f, size);
	}
	char *body = malloc(size + 1);
	if (!body) {
		puts("lighttpd: alloc failed, aborting request");
		close(f);
		return http_error(fd, 500);
	}
	memset(body, 0, size + 1);
	int got = pread(f, body, size, 0);
	if (got < 0) {
		free(body);
		close(f);
		return http_error(fd, 500);
	}
	close(f);
	int rc = http_reply(fd, 200, body, got);
	free(body);
	return rc;
}

// mod_ssi: include processing (simplified: serve the .shtml source).
int mod_ssi(int fd) {
	char full[24];
	int pos = lt_append(full, 0, "/www/ssi.shtml");
	full[pos] = 0;
	int f = open(full, 0);
	if (f == -1) {
		return http_error(fd, 404);
	}
	int st[2];
	if (fstat(f, st) == -1) {
		close(f);
		return http_error(fd, 500);
	}
	int size = st[0];
	char *body = malloc(size + 1);
	if (!body) {
		close(f);
		return http_error(fd, 500);
	}
	int got = pread(f, body, size, 0);
	if (got < 0) {
		free(body);
		close(f);
		return http_error(fd, 500);
	}
	close(f);
	int rc = http_reply(fd, 200, body, got);
	free(body);
	return rc;
}

// dispatch walks the module chain, first match wins.
int dispatch(struct con *c, char *path) {
	g_requests = g_requests + 1;
	if (strcmp(path, "/quit") == 0) {
		g_stop = 1;
		char none[4];
		return http_reply(c->fd, 200, none, 0);
	}
	if (strcmp(path, "/status") == 0) {
		return mod_status(c->fd);
	}
	if (strncmp(path, "/dav", 4) == 0) {
		return mod_webdav(c, path);
	}
	if (strncmp(path, "/ssi", 4) == 0) {
		return mod_ssi(c->fd);
	}
	return mod_staticfile(c->fd, path);
}

void con_close(struct con *c) {
	epoll_ctl(g_epoll, 2, c->fd);
	close(c->fd);
	if (c->dav_fd >= 0) {
		close(c->dav_fd);
	}
	g_conns[c->fd] = 0;
	free(c);
}

void con_read(struct con *c) {
	int n = read(c->fd, c->rbuf + c->rlen, 511 - c->rlen);
	if (n == 0) { con_close(c); return; }
	if (n < 0) {
		if (errno() == 11) { return; }
		con_close(c);
		return;
	}
	c->rlen = c->rlen + n;
	c->rbuf[c->rlen] = 0;
	if (c->rlen < 4) { return; }
	int e = c->rlen;
	if (c->rbuf[e-4] != '\r' || c->rbuf[e-3] != '\n' || c->rbuf[e-2] != '\r' || c->rbuf[e-1] != '\n') {
		return;
	}
	// Parse the request line (accepts GET and PROPFIND).
	int i = 0;
	while (c->rbuf[i] != ' ' && c->rbuf[i] != 0) { i++; }
	if (c->rbuf[i] == 0) { con_close(c); return; }
	i++;
	int start = i;
	while (c->rbuf[i] != ' ' && c->rbuf[i] != 0) { i++; }
	if (c->rbuf[i] == 0) { con_close(c); return; }
	c->rbuf[i] = 0;
	if (dispatch(c, c->rbuf + start) < 0) {
		con_close(c);
		return;
	}
	c->rlen = 0;
}

void con_accept() {
	while (1) {
		int fd = accept(g_listen);
		if (fd < 0) { return; }
		if (fd >= 128) { close(fd); return; }
		struct con *c = malloc(sizeof(struct con));
		if (!c) {
			puts("lighttpd: accept alloc failed");
			close(fd);
			return;
		}
		c->fd = fd;
		c->rlen = 0;
		c->dav_fd = -1;
		g_conns[fd] = c;
		if (epoll_ctl(g_epoll, 1, fd) == -1) {
			close(fd);
			g_conns[fd] = 0;
			free(c);
			return;
		}
	}
}

int main() {
	int s = socket();
	if (s == -1) { puts("lighttpd: socket failed"); return 1; }
	if (setsockopt(s, 2, 1) == -1) {
		puts("lighttpd: setsockopt failed");
		close(s);
		return 1;
	}
	if (bind(s, 8082) == -1) {
		puts("lighttpd: bind failed");
		close(s);
		return 1;
	}
	if (listen(s, 64) == -1) {
		puts("lighttpd: listen failed");
		close(s);
		return 1;
	}
	g_listen = s;
	int ep = epoll_create();
	if (ep == -1) { puts("lighttpd: epoll_create failed"); return 1; }
	g_epoll = ep;
	if (epoll_ctl(ep, 1, s) == -1) { return 1; }
	puts("lighttpd-sim: ready");

	int events[16];
	while (!g_stop) {
		int n = epoll_wait(ep, events, 16);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == g_listen) {
				con_accept();
			} else {
				struct con *c = g_conns[fd];
				if (c) { con_read(c); }
			}
		}
	}
	return 0;
}
`
