package replay

import (
	"fmt"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/fleet"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/supervisor"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// Runner re-executes a recording, verifying the live span chain
// against it as the run unfolds (first divergence = hard error).
type Runner struct {
	Rec Recording

	// StopAt selects the halt point of an incarnation replay:
	//   -1  the recorded faulting instruction (the boundary before the
	//       final retired step — the forensic default),
	//    0  run to completion, verifying the whole recording,
	//    N  the first instruction boundary at or past cycle N.
	StopAt int64

	// StopAtStep, when positive, overrides StopAt with a retired-step
	// boundary instead of a cycle boundary — the precise handle the
	// reverse-step machinery and its tests use.
	StopAtStep int64

	// CkptEvery arms the runtime's periodic checkpoint ring (cycles
	// between captures; 0 disables). CkptRing bounds the ring (0: 64).
	CkptEvery int64
	CkptRing  int
}

// StateDump is the guest state frozen at a replay stop point.
type StateDump struct {
	Cycles    int64
	Steps     int64
	Func      string
	Depth     int
	InTx      bool
	Backtrace []string
	Frames    []interp.FrameInfo
	RegDigest uint64
	MemDigest uint64
	RSS       int64
	OpenFDs   []string
	Arena     *libsim.ArenaStats
	SpanCount int
	SpanFP    uint64

	spans []obsv.SpanEvent // the pre-stop span prefix, for verification
}

// Render formats the dump for the firetrace -replay report.
func (d *StateDump) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "halted at cycle %d, step %d: %s (depth %d", d.Cycles, d.Steps, d.Func, d.Depth)
	if d.InTx {
		sb.WriteString(", in transaction")
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "backtrace: %s\n", strings.Join(d.Backtrace, " <- "))
	fmt.Fprintf(&sb, "registers: digest %016x; memory: digest %016x, rss %d bytes\n",
		d.RegDigest, d.MemDigest, d.RSS)
	if len(d.OpenFDs) > 0 {
		fmt.Fprintf(&sb, "open fds: %s\n", strings.Join(d.OpenFDs, ", "))
	}
	if d.Arena != nil {
		fmt.Fprintf(&sb, "arenas: allocs=%d fallbacks=%d retires=%d slabs=%d\n",
			d.Arena.Allocs, d.Arena.Fallbacks, d.Arena.Retires, d.Arena.Slabs)
	}
	fmt.Fprintf(&sb, "spans: %d recorded, fingerprint %016x\n", d.SpanCount, d.SpanFP)
	if n := len(d.Frames); n > 0 {
		f := d.Frames[n-1]
		fmt.Fprintf(&sb, "innermost frame %s.b%d.%d regs=%v\n", f.Func, f.Block, f.Index, f.Regs)
	}
	return sb.String()
}

// Result is one replay pass.
type Result struct {
	Stopped     bool
	Dump        *StateDump // non-nil when Stopped
	Verified    int        // spans checked against the recording
	Fingerprint uint64     // live chain value at stop/end
	Spans       []obsv.SpanEvent
	Checkpoints []core.Checkpoint
	FinalCycles int64
	FinalSteps  int64
}

// ReverseResult is a reverse-step: the stop-point state plus the state
// one retired instruction earlier, with the checkpoint-ring anchors
// that verified the two passes executed identically.
type ReverseResult struct {
	At      *Result // pass 1: stopped at the target
	Prev    *Result // pass 2: stopped one step earlier
	Anchors int     // checkpoint pairs compared equal across the passes
}

// instState is one booted hardened server — the same pipeline the
// bench harness boots, duplicated here because bench imports this
// package (the round-trip tests in replay_test pin the two together).
type instState struct {
	app *apps.App
	os  *libsim.OS
	m   *interp.Machine
	rt  *core.Runtime
}

// bootRecorded compiles the app, plants the recorded fault, hardens
// and attaches, exactly as the recording's run was booted.
func bootRecorded(man *Manifest, cfg core.Config) (*instState, error) {
	app := apps.ByName(man.App)
	if app == nil {
		return nil, fmt.Errorf("replay: unknown app %q", man.App)
	}
	prog, err := app.Compile()
	if err != nil {
		return nil, err
	}
	if man.Fault != nil {
		prog, err = faultinj.Apply(prog, *man.Fault)
		if err != nil {
			return nil, err
		}
	}
	osim := libsim.New(mem.NewSpace())
	if app.Setup != nil {
		app.Setup(osim)
	}
	tr, err := transform.Apply(prog, nil)
	if err != nil {
		return nil, err
	}
	rt := core.New(tr, osim, cfg)
	m, err := interp.New(tr.Prog, osim, rt)
	if err != nil {
		return nil, err
	}
	switch man.Backend {
	case "", "tree":
	case "bytecode":
		if err := interp.UseBytecode(m); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("replay: unknown backend %q", man.Backend)
	}
	rt.Attach(m)
	return &instState{app: app, os: osim, m: m, rt: rt}, nil
}

// captureDump freezes the guest state (called from the watch callback,
// before the driver appends its trailing run-end spans — the captured
// span prefix is exactly what had been recorded by the stop boundary).
func captureDump(inst *instState) *StateDump {
	snap := inst.m.Snapshot()
	d := &StateDump{
		Cycles:    inst.m.Cycles,
		Steps:     inst.m.Steps,
		Func:      inst.m.CurrentFunc(),
		Depth:     inst.m.Depth(),
		InTx:      inst.rt.InTransaction(),
		Backtrace: inst.m.Backtrace(),
		Frames:    inst.m.Frames(),
		RegDigest: snap.Digest(),
		MemDigest: inst.os.Space.Digest(),
		RSS:       inst.os.Space.RSS(),
		OpenFDs:   inst.os.OpenFDList(),
		SpanFP:    inst.rt.SpanFingerprint(),
		spans:     inst.rt.Spans(),
	}
	d.SpanCount = len(d.spans)
	if inst.os.ArenasEnabled() {
		st := inst.os.ArenaStats()
		d.Arena = &st
	}
	return d
}

// verifySpans checks the live span stream against the recording: every
// live span must match the recorded one and reproduce its chain value;
// a full-run verification additionally requires the stream complete.
// Returns the spans verified and the live chain value.
func verifySpans(man *Manifest, recorded, live []obsv.SpanEvent, full bool) (int, uint64, error) {
	fp := obsv.FingerprintSeed
	for i, e := range live {
		if i >= len(recorded) {
			return i, fp, fmt.Errorf("replay diverged: produced span %d (%s at cycle %d) beyond the recording's %d spans",
				i+1, e.Kind, e.Cycles, len(recorded))
		}
		fp = obsv.ChainFingerprint(fp, e)
		if want := recorded[i]; e != want {
			return i, fp, fmt.Errorf("replay diverged at span %d: recorded %s at cycle %d (trace %d), replayed %s at cycle %d (trace %d)",
				i+1, want.Kind, want.Cycles, want.Trace, e.Kind, e.Cycles, e.Trace)
		}
		if got := fpHex(fp); got != man.SpanChain[i] {
			return i, fp, fmt.Errorf("replay diverged at span %d (%s at cycle %d): chain %s, recorded %s",
				i+1, e.Kind, e.Cycles, got, man.SpanChain[i])
		}
	}
	if full {
		if len(live) != len(recorded) {
			return len(live), fp, fmt.Errorf("replay diverged: produced %d spans, recording has %d (first missing: %s at cycle %d)",
				len(live), len(recorded), recorded[len(live)].Kind, recorded[len(live)].Cycles)
		}
		if got := fpHex(fp); got != man.Fingerprint {
			return len(live), fp, fmt.Errorf("replay diverged: final fingerprint %s, recorded %s", got, man.Fingerprint)
		}
	}
	return len(live), fp, nil
}

// Replay re-executes the recording, honoring StopAt for incarnation
// manifests. Openloop manifests replay verify-only.
func (r *Runner) Replay() (*Result, error) {
	switch r.Rec.Manifest.Kind {
	case KindIncarnation:
		watchCycles, watchSteps, err := r.stopTarget()
		if err != nil {
			return nil, err
		}
		return r.runIncarnation(watchCycles, watchSteps)
	case KindOpenLoop:
		if r.StopAt != 0 || r.StopAtStep > 0 {
			return nil, fmt.Errorf("replay: -stop-at-cycle and -reverse-step need an incarnation manifest; %q manifests replay verify-only (use -stop-at-cycle 0)", KindOpenLoop)
		}
		return r.replayOpenLoop()
	default:
		return nil, fmt.Errorf("replay: unknown manifest kind %q", r.Rec.Manifest.Kind)
	}
}

// stopTarget resolves StopAt into a watchpoint.
func (r *Runner) stopTarget() (watchCycles, watchSteps int64, err error) {
	man := &r.Rec.Manifest
	switch {
	case r.StopAtStep > 0:
		return 0, r.StopAtStep, nil
	case r.StopAt < 0:
		// The recorded faulting instruction: the machine died on retired
		// step FinalSteps, so freeze at the boundary just before it.
		if man.FinalSteps <= 1 {
			return 0, 0, fmt.Errorf("replay: manifest records no final step count; pass an explicit -stop-at-cycle")
		}
		return 0, man.FinalSteps - 1, nil
	case r.StopAt > 0:
		return r.StopAt, 0, nil
	}
	return 0, 0, nil
}

// runIncarnation boots the recorded world and re-drives its closed-loop
// schedule, with an optional watchpoint freezing the machine at the
// requested boundary.
func (r *Runner) runIncarnation(watchCycles, watchSteps int64) (*Result, error) {
	man := &r.Rec.Manifest
	sc := man.Schedule
	if sc.Kind != "closed" {
		return nil, fmt.Errorf("replay: incarnation manifest with %q schedule", sc.Kind)
	}
	inst, err := bootRecorded(man, man.Core)
	if err != nil {
		return nil, err
	}
	inst.rt.EnableSpans()
	if r.CkptEvery > 0 {
		inst.rt.EnableCheckpoints(r.CkptEvery, r.CkptRing)
	}
	var dump *StateDump
	capture := func(*interp.Machine) { dump = captureDump(inst) }
	switch {
	case watchSteps > 0:
		inst.m.WatchSteps(watchSteps, capture)
	case watchCycles > 0:
		inst.m.WatchCycles(watchCycles, capture)
	}

	// Boot to the quiesce point exactly as the recording did. The watch
	// may fire during startup (an early -stop-at-cycle); that is a stop,
	// not an error.
	if inst.app.QuiesceFunc != "" {
		out := inst.m.Run(5_000_000)
		switch {
		case out.Kind == interp.OutWatch:
		case out.Kind != interp.OutBlocked:
			return nil, fmt.Errorf("replay: %s did not reach its quiesce point (outcome %v)", inst.app.Name, out.Kind)
		case inst.m.CurrentFunc() != inst.app.QuiesceFunc:
			return nil, fmt.Errorf("replay: %s blocked in %q, quiesce point is %q",
				inst.app.Name, inst.m.CurrentFunc(), inst.app.QuiesceFunc)
		default:
			inst.rt.ArmQuiesce(inst.m)
		}
	}
	if dump == nil {
		d := sc.Driver()
		d.OS, d.M, d.Port, d.Sink = inst.os, inst.m, inst.app.Port, inst.rt
		d.Run(sc.Requests)
	}

	res := &Result{
		Stopped:     dump != nil,
		Dump:        dump,
		Checkpoints: inst.rt.Checkpoints(),
		FinalCycles: inst.m.Cycles,
		FinalSteps:  inst.m.Steps,
	}
	live := inst.rt.Spans()
	if dump != nil {
		// The driver's trailing run-end spans postdate the stop boundary;
		// verify the prefix the watch callback froze.
		live = dump.spans
	}
	res.Verified, res.Fingerprint, err = verifySpans(man, r.Rec.Spans, live, dump == nil)
	if err != nil {
		return res, err
	}
	if dump == nil && (watchCycles > 0 || watchSteps > 0) {
		// The spans verified, yet the armed watch never fired — the run
		// ended before the requested boundary.
		return res, fmt.Errorf("replay: run ended at cycle %d, step %d before reaching the stop target",
			inst.m.Cycles, inst.m.Steps)
	}
	res.Spans = live
	return res, nil
}

// replayOpenLoop re-drives an open-loop rung against a fresh 1-replica
// fleet and verifies the normalized merged span stream.
func (r *Runner) replayOpenLoop() (*Result, error) {
	man := &r.Rec.Manifest
	sc := man.Schedule
	if sc.Kind != "open" || sc.Open == nil {
		return nil, fmt.Errorf("replay: openloop manifest without an open schedule")
	}
	app := apps.ByName(man.App)
	if app == nil {
		return nil, fmt.Errorf("replay: unknown app %q", man.App)
	}
	boot := func(rep, inc int, bootSeed int64) (*fleet.Backend, error) {
		cfg := man.Core
		cfg.HTM.Seed = bootSeed
		inst, err := bootRecorded(man, cfg)
		if err != nil {
			return nil, err
		}
		inst.rt.EnableSpans()
		if app.QuiesceFunc != "" {
			out := inst.m.Run(5_000_000)
			if out.Kind != interp.OutBlocked || inst.m.CurrentFunc() != app.QuiesceFunc {
				return nil, fmt.Errorf("replay: %s did not reach its quiesce point", app.Name)
			}
			inst.rt.ArmQuiesce(inst.m)
		}
		return &fleet.Backend{OS: inst.os, Exec: fleet.MachineExec(inst.m), RT: inst.rt}, nil
	}
	fl := fleet.New(fleet.Config{
		Replicas: 1,
		Port:     app.Port,
		Sup:      supervisor.Config{Seed: sc.Seed},
	}, boot)
	d := &workload.Driver{
		Port: app.Port,
		Gen:  workload.ForProtocol(sc.Proto),
		Seed: sc.Seed,
		Srv:  fl,
		Sink: fl,
	}
	d.RunOpen(*sc.Open)
	fl.Finish()
	if err := fl.Err(); err != nil {
		return nil, err
	}
	res := &Result{FinalCycles: fl.Cycles()}
	live := NormalizeSpans(fl.Spans())
	var err error
	res.Verified, res.Fingerprint, err = verifySpans(man, r.Rec.Spans, live, true)
	if err != nil {
		return res, err
	}
	res.Spans = live
	return res, nil
}

// ReverseStep steps one retired instruction backwards from the stop
// point: pass 1 replays to the stop target (gathering the checkpoint
// ring), pass 2 re-executes from boot to the boundary one step
// earlier, and every ring entry the passes share is compared as a
// determinism anchor — the rr recipe, with re-execution from boot
// standing in for checkpoint restore (a simulated world boots in
// milliseconds; the ring proves the second pass retraced the first).
func (r *Runner) ReverseStep() (*ReverseResult, error) {
	if r.Rec.Manifest.Kind != KindIncarnation {
		return nil, fmt.Errorf("replay: -reverse-step needs an incarnation manifest")
	}
	if r.CkptEvery <= 0 {
		return nil, fmt.Errorf("replay: -reverse-step needs checkpoints (set -ckpt-every)")
	}
	at, err := r.Replay()
	if err != nil {
		return nil, err
	}
	if !at.Stopped {
		return nil, fmt.Errorf("replay: run completed without hitting the stop target; nothing to step back from")
	}
	if at.Dump.Steps <= 1 {
		return nil, fmt.Errorf("replay: stopped at step %d; no earlier boundary exists", at.Dump.Steps)
	}
	prev, err := r.runIncarnation(0, at.Dump.Steps-1)
	if err != nil {
		return nil, fmt.Errorf("replay: reverse pass: %w", err)
	}
	if !prev.Stopped {
		return nil, fmt.Errorf("replay: reverse pass ran past step %d without stopping", at.Dump.Steps-1)
	}
	anchors, err := compareAnchors(at.Checkpoints, prev.Checkpoints)
	if err != nil {
		return nil, err
	}
	return &ReverseResult{At: at, Prev: prev, Anchors: anchors}, nil
}

// compareAnchors cross-checks the two passes' checkpoint rings: every
// entry captured at the same retired-step count must be identical.
func compareAnchors(a, b []core.Checkpoint) (int, error) {
	bySteps := make(map[int64]core.Checkpoint, len(a))
	for _, c := range a {
		bySteps[c.Steps] = c
	}
	n := 0
	for _, c := range b {
		want, ok := bySteps[c.Steps]
		if !ok {
			continue
		}
		if c.RegDigest != want.RegDigest || c.MemDigest != want.MemDigest ||
			c.Cycles != want.Cycles || c.Func != want.Func {
			return n, fmt.Errorf("replay: reverse pass diverged at checkpoint step %d: reg %016x/%016x mem %016x/%016x cycle %d/%d func %s/%s",
				c.Steps, c.RegDigest, want.RegDigest, c.MemDigest, want.MemDigest,
				c.Cycles, want.Cycles, c.Func, want.Func)
		}
		n++
	}
	return n, nil
}
