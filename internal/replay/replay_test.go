package replay_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/bench"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/fleet"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/replay"
	"github.com/firestarter-go/firestarter/internal/supervisor"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// recordChaos runs a small chaos campaign with the flight recorder
// armed and returns the manifest paths it wrote, in name order.
func recordChaos(t *testing.T, r bench.Runner) []string {
	t.Helper()
	dir := t.TempDir()
	r.RecordDir = dir
	if _, err := r.Chaos(); err != nil {
		t.Fatalf("chaos: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatal("chaos campaign recorded no manifests; pick a seed with a failing incarnation")
	}
	return paths
}

var chaosRunner = bench.Runner{Requests: 24, Concurrency: 2, Seed: 3, FaultsPerServer: 1, Parallelism: 4}

// A recorded incarnation must replay to a byte-identical span stream:
// full verification succeeds, the final fingerprint matches, and
// WriteSpans reproduces the companion file exactly.
func TestChaosRecordingRoundTrip(t *testing.T) {
	for _, path := range recordChaos(t, chaosRunner) {
		rec, err := replay.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		r := &replay.Runner{Rec: rec, StopAt: 0}
		res, err := r.Replay()
		if err != nil {
			t.Fatalf("%s: replay: %v", path, err)
		}
		if res.Stopped {
			t.Fatalf("%s: full replay stopped early", path)
		}
		if res.Verified != len(rec.Spans) {
			t.Errorf("%s: verified %d of %d spans", path, res.Verified, len(rec.Spans))
		}
		want, err := replay.ParseFingerprint(rec.Manifest.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fingerprint != want {
			t.Errorf("%s: fingerprint %016x, recorded %016x", path, res.Fingerprint, want)
		}

		var buf bytes.Buffer
		if err := replay.WriteSpans(&buf, res.Spans); err != nil {
			t.Fatal(err)
		}
		companion, err := os.ReadFile(filepath.Join(filepath.Dir(path), rec.Manifest.SpansFile))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), companion) {
			t.Errorf("%s: replayed span stream is not byte-identical to the companion file", path)
		}
	}
}

// The reverse-step property: pass 2 (re-executed from boot with the
// checkpoint ring armed) must land on exactly the state of the
// boundary one retired instruction before the stop point — identical,
// digest for digest, to a straight-line run with no checkpoints at
// all. This pins both halves of the rr recipe: checkpoint capture does
// not perturb execution, and step-targeted re-execution is exact.
func TestReverseStepMatchesStraightLine(t *testing.T) {
	paths := recordChaos(t, chaosRunner)
	rec, err := replay.Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	man := rec.Manifest
	if man.Incarnation < 2 {
		t.Fatalf("want a deep incarnation for the supervised-reboot case, got %d", man.Incarnation)
	}

	r := &replay.Runner{Rec: rec, StopAt: -1, CkptEvery: 250, CkptRing: 64}
	rr, err := r.ReverseStep()
	if err != nil {
		t.Fatalf("reverse-step: %v", err)
	}
	if got, want := rr.At.Dump.Steps, man.FinalSteps-1; got != want {
		t.Errorf("stop boundary at step %d, want %d (the recorded faulting instruction)", got, want)
	}
	if got, want := rr.Prev.Dump.Steps, man.FinalSteps-2; got != want {
		t.Errorf("reverse boundary at step %d, want %d", got, want)
	}
	if rr.Anchors == 0 {
		t.Error("no checkpoint anchors compared across the passes")
	}
	if rr.Prev.Dump.Cycles >= rr.At.Dump.Cycles {
		t.Errorf("reverse cycles %d not before stop cycles %d", rr.Prev.Dump.Cycles, rr.At.Dump.Cycles)
	}

	straight := &replay.Runner{Rec: rec, StopAtStep: man.FinalSteps - 2}
	res, err := straight.Replay()
	if err != nil {
		t.Fatalf("straight-line pass: %v", err)
	}
	if !res.Stopped {
		t.Fatal("straight-line pass did not stop")
	}
	if len(res.Checkpoints) != 0 {
		t.Errorf("straight-line pass captured %d checkpoints with the ring disabled", len(res.Checkpoints))
	}
	a, b := rr.Prev.Dump, res.Dump
	if a.RegDigest != b.RegDigest || a.MemDigest != b.MemDigest ||
		a.Cycles != b.Cycles || a.Steps != b.Steps || a.Func != b.Func {
		t.Errorf("reverse-step state diverges from the straight-line run:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}

// A checkpoint period far below the transaction length must capture
// rings on both sides of transaction boundaries, including inside a
// live crash transaction — the dump's InTx flag and the ring's InTx
// stamps are what let a forensic stop say "inside the protected
// window".
func TestCheckpointRingStamps(t *testing.T) {
	paths := recordChaos(t, chaosRunner)
	rec, err := replay.Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	r := &replay.Runner{Rec: rec, StopAt: -1, CkptEvery: 100, CkptRing: 256}
	res, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(res.Checkpoints) == 0 {
		t.Fatal("no checkpoints captured")
	}
	inTx, outTx := 0, 0
	for _, c := range res.Checkpoints {
		if c.InTx {
			inTx++
		} else {
			outTx++
		}
	}
	if inTx == 0 || outTx == 0 {
		t.Errorf("checkpoints all on one side of the transaction boundary: in-tx=%d out=%d", inTx, outTx)
	}
}

// An explicit -stop-at-cycle freezes the machine at the first
// instruction boundary at or past the requested cycle, with the span
// prefix up to that point verified.
func TestStopAtArbitraryCycle(t *testing.T) {
	paths := recordChaos(t, chaosRunner)
	rec, err := replay.Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	target := rec.Manifest.FaultCycle / 2
	if target == 0 {
		t.Fatalf("fault cycle %d too small to halve", rec.Manifest.FaultCycle)
	}
	r := &replay.Runner{Rec: rec, StopAt: target}
	res, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !res.Stopped {
		t.Fatal("watch did not fire")
	}
	if res.Dump.Cycles < target {
		t.Errorf("halted at cycle %d, before the %d target", res.Dump.Cycles, target)
	}
	if res.Dump.Cycles >= rec.Manifest.FinalCycles {
		t.Errorf("halted at cycle %d, at or past the recorded end %d", res.Dump.Cycles, rec.Manifest.FinalCycles)
	}
}

// Tampering with the companion span stream must fail at Load — the
// recomputed chain no longer reproduces the manifest fingerprint —
// rather than surfacing later as a bogus replay divergence.
func TestLoadRejectsTamperedSpans(t *testing.T) {
	paths := recordChaos(t, chaosRunner)
	src, err := replay.Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(paths[0])
	companion := filepath.Join(dir, src.Manifest.SpansFile)
	data, err := os.ReadFile(companion)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"cycles":`), []byte(`"cycles":1`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper pattern not found")
	}
	if err := os.WriteFile(companion, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Load(paths[0]); err == nil {
		t.Fatal("Load accepted a tampered span stream")
	}
}

// bootOpen mirrors the open-loop boot the bench harness uses (the
// replay package cannot import bench — bench imports it), so the test
// can produce an original fleet run to record and then replay.
func bootOpen(t *testing.T, app *apps.App) func(rep, inc int, bootSeed int64) (*fleet.Backend, error) {
	t.Helper()
	return func(rep, inc int, bootSeed int64) (*fleet.Backend, error) {
		prog, err := app.Compile()
		if err != nil {
			return nil, err
		}
		osim := libsim.New(mem.NewSpace())
		if app.Setup != nil {
			app.Setup(osim)
		}
		tr, err := transform.Apply(prog, nil)
		if err != nil {
			return nil, err
		}
		rt := core.New(tr, osim, core.Config{HTM: htm.Config{Seed: bootSeed}})
		m, err := interp.New(tr.Prog, osim, rt)
		if err != nil {
			return nil, err
		}
		rt.Attach(m)
		rt.EnableSpans()
		if app.QuiesceFunc != "" {
			out := m.Run(5_000_000)
			if out.Kind != interp.OutBlocked || m.CurrentFunc() != app.QuiesceFunc {
				t.Fatalf("%s did not reach its quiesce point", app.Name)
			}
			rt.ArmQuiesce(m)
		}
		return &fleet.Backend{OS: osim, Exec: fleet.MachineExec(m), RT: rt}, nil
	}
}

// An open-loop recording round-trips: the replayed 1-replica fleet
// reproduces the normalized merged span stream span for span.
func TestOpenLoopRecordingRoundTrip(t *testing.T) {
	app := apps.ByName("nginx")
	if app == nil {
		t.Fatal("nginx not registered")
	}
	const seed = 11
	cfg := workload.OpenConfig{
		Shape:         workload.ShapePoisson,
		RatePerMcycle: 40,
		Total:         40,
		Clients:       100,
		MaxConns:      8,
		PipelineDepth: 2,
		Patience:      2_000_000,
		ChurnEvery:    5,
		SlowEvery:     7,
		FragmentEvery: 11,
	}
	fl := fleet.New(fleet.Config{
		Replicas: 1,
		Port:     app.Port,
		Sup:      supervisor.Config{Seed: seed},
	}, bootOpen(t, app))
	d := &workload.Driver{
		Port: app.Port,
		Gen:  workload.ForProtocol(app.Protocol),
		Seed: seed,
		Srv:  fl,
		Sink: fl,
	}
	d.RunOpen(cfg)
	fl.Finish()
	if err := fl.Err(); err != nil {
		t.Fatal(err)
	}

	rec := replay.RecordOpenLoop(replay.OpenLoopRun{
		App:         app.Name,
		Seed:        seed,
		Proto:       app.Protocol,
		Open:        cfg,
		Outcome:     replay.OutcomeUnrecovered,
		FinalCycles: fl.Cycles(),
		Spans:       fl.Spans(),
	})
	dir := t.TempDir()
	path, err := rec.Write(dir, "openloop-000")
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := replay.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r := &replay.Runner{Rec: loaded}
	res, err := r.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Verified != len(loaded.Spans) {
		t.Errorf("verified %d of %d spans", res.Verified, len(loaded.Spans))
	}

	// Forensic stops need a single machine to freeze; an open-loop rung
	// spreads state across fleet incarnations and replays verify-only.
	bad := &replay.Runner{Rec: loaded, StopAt: 100}
	if _, err := bad.Replay(); err == nil {
		t.Error("openloop replay accepted -stop-at-cycle")
	}
	badStep := &replay.Runner{Rec: loaded, StopAtStep: 100}
	if _, err := badStep.Replay(); err == nil {
		t.Error("openloop replay accepted a step target")
	}
}
