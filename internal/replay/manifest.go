// Package replay is the flight recorder: deterministic record/replay
// for supervised campaign runs, plus rr-style reverse-step forensics.
//
// The simulation is a closed, seeded cycle domain — a run is a pure
// function of (program, fault plan, runtime config, seeds, workload
// schedule). Recording therefore captures *inputs*, not state: a
// Manifest names everything one run consumed, and a companion JSONL
// file holds the span stream the run produced, each span annotated in
// the manifest with the value of an incremental hash chain
// (obsv.ChainFingerprint). Replaying rebuilds the identical world from
// the manifest and verifies the live span chain against the recording;
// the first divergent span is a hard error naming both sides.
//
// Two manifest kinds exist. An "incarnation" manifest records one
// supervised incarnation of a chaos campaign — independently
// replayable because every incarnation boots a fresh world from its
// own supervisor-issued seed. An "openloop" manifest records one rung
// of the open-loop sweep (a 1-replica fleet); it replays verify-only,
// since the interesting machine state is spread across fleet
// incarnations.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// Version is the manifest wire-format version.
const Version = 1

// Manifest kinds.
const (
	KindIncarnation = "incarnation"
	KindOpenLoop    = "openloop"
)

// Recorded outcomes — only failing runs are recorded, so these are the
// only two values.
const (
	OutcomeUnrecovered = "unrecovered"
	OutcomeBreakerOpen = "breaker-open"
)

// Manifest is the serializable description of everything one recorded
// run consumed, plus the span-stream fingerprint it produced.
type Manifest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"` // "incarnation" or "openloop"
	App     string `json:"app"`
	Backend string `json:"backend,omitempty"` // "" / "tree" / "bytecode"

	// Core is the runtime configuration the run booted with. For
	// openloop manifests the HTM seed is per-incarnation (the fleet
	// derives it); the recorded value is the pre-seed template.
	Core core.Config `json:"core"`

	// Fault is the planted fault (name-encoded kind; see faultinj).
	Fault *faultinj.Fault `json:"fault,omitempty"`

	// Incarnation is the 1-based supervisor incarnation this manifest
	// records (incarnation manifests only).
	Incarnation int `json:"incarnation,omitempty"`

	// Schedule is the workload the run consumed; Schedule.Seed is the
	// driver seed (and, for openloop, the fleet's supervision seed).
	Schedule workload.Schedule `json:"schedule"`

	// Outcome is why the run was recorded: "unrecovered" or
	// "breaker-open".
	Outcome string `json:"outcome"`

	// FaultCycle is the machine-local cycle of the first unrecovered
	// span (the default -stop-at-cycle target), or the final cycle
	// count when the run died without one.
	FaultCycle int64 `json:"fault_cycle,omitempty"`

	// FinalCycles/FinalSteps are the machine's counters when the run
	// ended. FinalSteps anchors the default stop point and reverse-step
	// (steps are exact where cycle thresholds straddle instruction
	// costs); openloop manifests record fleet wall cycles and no steps.
	FinalCycles int64 `json:"final_cycles"`
	FinalSteps  int64 `json:"final_steps,omitempty"`

	// Fingerprint is the final span-chain value (16 hex digits), and
	// SpanChain the chain value after each span — the divergence
	// detector: the first replayed span whose chain value differs names
	// exactly where the re-execution left the recording.
	Fingerprint string   `json:"fingerprint"`
	SpanChain   []string `json:"span_chain"`

	// SpansFile names the companion JSONL span stream, relative to the
	// manifest's directory.
	SpansFile string `json:"spans_file,omitempty"`
}

// Recording pairs a manifest with the span stream it fingerprints.
type Recording struct {
	Manifest Manifest
	Spans    []obsv.SpanEvent
}

// fpHex renders a chain value the way manifests store it.
func fpHex(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// ParseFingerprint decodes a manifest fingerprint field.
func ParseFingerprint(s string) (uint64, error) {
	fp, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("replay: bad fingerprint %q: %v", s, err)
	}
	return fp, nil
}

// chainOf walks the span stream through the incremental fingerprint,
// returning the per-span chain values and the final one.
func chainOf(spans []obsv.SpanEvent) ([]string, string) {
	fp := obsv.FingerprintSeed
	chain := make([]string, 0, len(spans))
	for _, e := range spans {
		fp = obsv.ChainFingerprint(fp, e)
		chain = append(chain, fpHex(fp))
	}
	return chain, fpHex(fp)
}

// NormalizeSpans re-stamps a merged span stream (fleet/campaign logs
// carry per-incarnation sequence numbers) with dense 1-based sequence
// numbers, exactly as the exported JSONL trace does — the canonical
// form openloop manifests fingerprint.
func NormalizeSpans(spans []obsv.SpanEvent) []obsv.SpanEvent {
	log := &obsv.SpanLog{Limit: len(spans) + 1}
	for _, e := range spans {
		e.Seq = 0
		log.Append(e)
	}
	return log.Events()
}

// FailureOutcome classifies a span stream for recording: "unrecovered"
// if any unrecovered span is present, else "breaker-open" if the
// breaker opened, else "" (nothing worth recording).
func FailureOutcome(spans []obsv.SpanEvent) string {
	breaker := false
	for _, e := range spans {
		switch e.Kind {
		case obsv.SpanUnrecovered:
			return OutcomeUnrecovered
		case obsv.SpanBreakerOpen:
			breaker = true
		}
	}
	if breaker {
		return OutcomeBreakerOpen
	}
	return ""
}

// faultCycle finds the first unrecovered span's cycle stamp, falling
// back to the run's final cycle count.
func faultCycle(spans []obsv.SpanEvent, final int64) int64 {
	for _, e := range spans {
		if e.Kind == obsv.SpanUnrecovered {
			return e.Cycles
		}
	}
	return final
}

// IncarnationRun is everything one supervised incarnation consumed —
// the input to RecordIncarnation.
type IncarnationRun struct {
	App         string
	Backend     string
	Core        core.Config
	Fault       *faultinj.Fault
	Incarnation int
	Seed        int64 // supervisor-issued incarnation seed (= driver seed)
	Proto       string
	Requests    int // remaining workload budget at incarnation start
	Concurrency int
	TraceBase   int64 // trace-ID base at incarnation start
	Outcome     string
	FinalCycles int64
	FinalSteps  int64
	Spans       []obsv.SpanEvent // the incarnation's own span log, pre-rebase
}

// RecordIncarnation builds an incarnation recording.
func RecordIncarnation(r IncarnationRun) Recording {
	chain, final := chainOf(r.Spans)
	var fault *faultinj.Fault
	if r.Fault != nil {
		f := *r.Fault
		fault = &f
	}
	return Recording{
		Manifest: Manifest{
			Version:     Version,
			Kind:        KindIncarnation,
			App:         r.App,
			Backend:     r.Backend,
			Core:        r.Core,
			Fault:       fault,
			Incarnation: r.Incarnation,
			Schedule: workload.Schedule{
				Kind:        "closed",
				Proto:       r.Proto,
				Seed:        r.Seed,
				Requests:    r.Requests,
				Concurrency: r.Concurrency,
				TraceBase:   r.TraceBase,
			},
			Outcome:     r.Outcome,
			FaultCycle:  faultCycle(r.Spans, r.FinalCycles),
			FinalCycles: r.FinalCycles,
			FinalSteps:  r.FinalSteps,
			Fingerprint: final,
			SpanChain:   chain,
		},
		Spans: append([]obsv.SpanEvent(nil), r.Spans...),
	}
}

// OpenLoopRun is everything one open-loop rung consumed — the input to
// RecordOpenLoop.
type OpenLoopRun struct {
	App         string
	Backend     string
	Core        core.Config
	Fault       *faultinj.Fault
	Seed        int64 // rung seed: driver + fleet supervision
	Proto       string
	Open        workload.OpenConfig
	Outcome     string
	FinalCycles int64            // fleet wall cycles
	Spans       []obsv.SpanEvent // fleet-merged spans, pre-normalization
}

// RecordOpenLoop builds an open-loop rung recording. The fingerprinted
// stream is the normalized (densely re-sequenced) fleet span log.
func RecordOpenLoop(r OpenLoopRun) Recording {
	spans := NormalizeSpans(r.Spans)
	chain, final := chainOf(spans)
	var fault *faultinj.Fault
	if r.Fault != nil {
		f := *r.Fault
		fault = &f
	}
	open := r.Open
	return Recording{
		Manifest: Manifest{
			Version: Version,
			Kind:    KindOpenLoop,
			App:     r.App,
			Backend: r.Backend,
			Core:    r.Core,
			Fault:   fault,
			Schedule: workload.Schedule{
				Kind:  "open",
				Proto: r.Proto,
				Seed:  r.Seed,
				Open:  &open,
			},
			Outcome:     r.Outcome,
			FaultCycle:  faultCycle(spans, r.FinalCycles),
			FinalCycles: r.FinalCycles,
			Fingerprint: final,
			SpanChain:   chain,
		},
		Spans: spans,
	}
}

// WriteSpans writes a span stream as JSONL, one event per line — the
// byte format of companion files and of firetrace -replay-spans, so
// the two can be compared with cmp.
func WriteSpans(w io.Writer, spans []obsv.SpanEvent) error {
	enc := json.NewEncoder(w)
	for _, e := range spans {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path and writes through render, propagating close
// errors.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Write stores the recording as dir/base.json plus the companion span
// stream dir/base.spans.jsonl, creating dir as needed, and returns the
// manifest path.
func (rec Recording) Write(dir, base string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	rec.Manifest.SpansFile = base + ".spans.jsonl"
	if err := writeFile(filepath.Join(dir, rec.Manifest.SpansFile), func(w io.Writer) error {
		return WriteSpans(w, rec.Spans)
	}); err != nil {
		return "", err
	}
	path := filepath.Join(dir, base+".json")
	err := writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rec.Manifest)
	})
	return path, err
}

// Load reads a manifest and its companion span stream, verifying the
// stored fingerprint against the spans — a mismatched or edited
// companion fails here rather than as a bogus replay divergence.
func Load(path string) (Recording, error) {
	var rec Recording
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec.Manifest); err != nil {
		return rec, fmt.Errorf("replay: %s: %v", path, err)
	}
	man := &rec.Manifest
	if man.Version != Version {
		return rec, fmt.Errorf("replay: %s: manifest version %d, want %d", path, man.Version, Version)
	}
	switch man.Kind {
	case KindIncarnation, KindOpenLoop:
	default:
		return rec, fmt.Errorf("replay: %s: unknown manifest kind %q", path, man.Kind)
	}
	if _, err := ParseFingerprint(man.Fingerprint); err != nil {
		return rec, fmt.Errorf("replay: %s: %v", path, err)
	}
	if man.SpansFile != "" {
		spans, err := readSpans(filepath.Join(filepath.Dir(path), man.SpansFile))
		if err != nil {
			return rec, fmt.Errorf("replay: %s: companion: %v", path, err)
		}
		rec.Spans = spans
	}
	if len(rec.Spans) != len(man.SpanChain) {
		return rec, fmt.Errorf("replay: %s: %d spans but %d chain entries",
			path, len(rec.Spans), len(man.SpanChain))
	}
	if _, final := chainOf(rec.Spans); final != man.Fingerprint {
		return rec, fmt.Errorf("replay: %s: companion span stream fingerprints to %s, manifest says %s",
			path, final, man.Fingerprint)
	}
	return rec, nil
}

// readSpans decodes a companion JSONL span stream.
func readSpans(path string) ([]obsv.SpanEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var spans []obsv.SpanEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e obsv.SpanEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		spans = append(spans, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}
