package ir

// Builder provides a convenient fluent interface for emitting instructions
// into a function, used by the mini-C code generator and by tests that
// construct programs by hand.
type Builder struct {
	F   *Func
	Cur *Block
}

// NewBuilder returns a builder positioned at a fresh entry block of a new
// function with the given name and parameter count.
func NewBuilder(name string, params int) *Builder {
	f := &Func{Name: name, Params: params, NumRegs: params}
	b := &Builder{F: f}
	b.Cur = f.NewBlock("entry")
	return b
}

// Block starts (and switches to) a new block with the given label.
func (b *Builder) Block(label string) *Block {
	blk := b.F.NewBlock(label)
	b.Cur = blk
	return blk
}

// SetBlock repositions the builder at an existing block.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// emit appends an instruction to the current block.
func (b *Builder) emit(in Instr) {
	b.Cur.Instrs = append(b.Cur.Instrs, in)
}

// Const emits dst = imm into a fresh register and returns it.
func (b *Builder) Const(imm int64) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpConst, Dst: r, Imm: imm})
	return r
}

// ConstInto emits dst = imm into an existing register.
func (b *Builder) ConstInto(dst int, imm int64) {
	b.emit(Instr{Op: OpConst, Dst: dst, Imm: imm})
}

// Mov emits dst = src.
func (b *Builder) Mov(dst, src int) {
	b.emit(Instr{Op: OpMov, Dst: dst, A: src})
}

// Bin emits a binary operation into a fresh register.
func (b *Builder) Bin(op BinKind, x, y int) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpBin, Dst: r, A: x, B: y, Bin: op})
	return r
}

// BinInto emits a binary operation into an existing register.
func (b *Builder) BinInto(dst int, op BinKind, x, y int) {
	b.emit(Instr{Op: OpBin, Dst: dst, A: x, B: y, Bin: op})
}

// Neg emits dst = -x into a fresh register.
func (b *Builder) Neg(x int) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpNeg, Dst: r, A: x})
	return r
}

// Not emits logical negation into a fresh register.
func (b *Builder) Not(x int) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpNot, Dst: r, A: x})
	return r
}

// Load emits dst = mem[addr+off] of the given width into a fresh register.
func (b *Builder) Load(addr int, off int64, width int) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpLoad, Dst: r, A: addr, Imm: off, Width: width})
	return r
}

// LoadInto emits a load into an existing register.
func (b *Builder) LoadInto(dst, addr int, off int64, width int) {
	b.emit(Instr{Op: OpLoad, Dst: dst, A: addr, Imm: off, Width: width})
}

// Store emits mem[addr+off] = val of the given width.
func (b *Builder) Store(addr int, off int64, val, width int) {
	b.emit(Instr{Op: OpStore, A: addr, Imm: off, B: val, Width: width})
}

// FrameAddr emits dst = fp+off into a fresh register, growing the frame if
// needed to cover off+size bytes.
func (b *Builder) FrameAddr(off, size int64) int {
	if off+size > b.F.FrameSize {
		b.F.FrameSize = off + size
	}
	r := b.F.NewReg()
	b.emit(Instr{Op: OpFrameAddr, Dst: r, Imm: off})
	return r
}

// GlobalAddr emits dst = &name into a fresh register.
func (b *Builder) GlobalAddr(name string) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpGlobalAddr, Dst: r, Name: name})
	return r
}

// Call emits a direct call returning into a fresh register.
func (b *Builder) Call(name string, args ...int) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpCall, Dst: r, Name: name, Args: args})
	return r
}

// CallVoid emits a direct call discarding the result.
func (b *Builder) CallVoid(name string, args ...int) {
	b.emit(Instr{Op: OpCall, Dst: -1, Name: name, Args: args})
}

// Lib emits a library call returning into a fresh register.
func (b *Builder) Lib(name string, args ...int) int {
	r := b.F.NewReg()
	b.emit(Instr{Op: OpLib, Dst: r, Name: name, Args: args})
	return r
}

// LibVoid emits a library call discarding the result.
func (b *Builder) LibVoid(name string, args ...int) {
	b.emit(Instr{Op: OpLib, Dst: -1, Name: name, Args: args})
}

// Jmp emits an unconditional jump.
func (b *Builder) Jmp(target *Block) {
	b.emit(Instr{Op: OpJmp, Then: target.ID})
}

// Br emits a conditional branch.
func (b *Builder) Br(cond int, then, els *Block) {
	b.emit(Instr{Op: OpBr, A: cond, Then: then.ID, Else: els.ID})
}

// Ret emits a return of register r.
func (b *Builder) Ret(r int) {
	b.emit(Instr{Op: OpRet, A: r})
}

// RetVoid emits a valueless return.
func (b *Builder) RetVoid() {
	b.emit(Instr{Op: OpRet, A: -1})
}

// Trap emits a fatal trap with the given code.
func (b *Builder) Trap(code int64) {
	b.emit(Instr{Op: OpTrap, Imm: code})
}
