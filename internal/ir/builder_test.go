package ir

import (
	"strings"
	"testing"
)

// TestBuilderFullSurface constructs a program exercising every builder
// method and instruction form, then validates it — the builder must only
// ever produce well-formed IR.
func TestBuilderFullSurface(t *testing.T) {
	p := NewProgram()
	p.AddGlobal("counter", 8, nil)
	p.AddGlobal("msg", 0, []byte("hey"))

	callee := NewBuilder("twice", 1)
	two := callee.Const(2)
	r := callee.Bin(BinMul, 0, two)
	callee.Ret(r)
	p.AddFunc(callee.F)

	b := NewBuilder("main", 0)
	entry := b.Cur

	// Arithmetic and logic.
	x := b.Const(6)
	y := b.Const(7)
	prod := b.Bin(BinMul, x, y)
	neg := b.Neg(prod)
	notv := b.Not(neg)
	dst := b.F.NewReg()
	b.Mov(dst, notv)
	b.ConstInto(dst, 5)
	b.BinInto(dst, BinAdd, dst, x)

	// Memory.
	g := b.GlobalAddr("counter")
	b.Store(g, 0, dst, 8)
	loaded := b.Load(g, 0, 8)
	ld2 := b.F.NewReg()
	b.LoadInto(ld2, g, 0, 8)
	fa := b.FrameAddr(0, 16)
	b.Store(fa, 8, loaded, 8)

	// Calls.
	cr := b.Call("twice", ld2)
	b.CallVoid("twice", cr)
	lr := b.Lib("getpid")
	b.LibVoid("puts", b.GlobalAddr("msg"))

	// Control flow.
	loop := b.F.NewBlock("loop")
	done := b.F.NewBlock("done")
	dead := b.F.NewBlock("dead")
	b.Br(lr, loop, done)

	b.SetBlock(loop)
	b.Jmp(done)

	b.SetBlock(dead)
	b.Trap(TrapAssert)

	b.SetBlock(done)
	b.Ret(cr)
	p.AddFunc(b.F)

	if err := p.Validate(); err != nil {
		t.Fatalf("builder produced invalid IR: %v", err)
	}
	if entry.Terminator() == nil {
		t.Fatal("entry block unterminated")
	}
	d := p.Dump()
	for _, want := range []string{"call twice", "lib getpid", "trap 2", "frame+0"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

// TestValidateInstrumentationOps covers the validation rules of the
// transform-inserted opcodes.
func TestValidateInstrumentationOps(t *testing.T) {
	mk := func(mutate func(f *Func)) error {
		p := NewProgram()
		b := NewBuilder("main", 0)
		b.RetVoid()
		mutate(b.F)
		p.AddFunc(b.F)
		return p.Validate()
	}
	prepend := func(f *Func, in Instr) {
		f.Blocks[0].Instrs = append([]Instr{in}, f.Blocks[0].Instrs...)
	}

	if err := mk(func(f *Func) {
		prepend(f, Instr{Op: OpTxBegin, Imm: TxHTM})
		prepend(f, Instr{Op: OpTxEnd})
		prepend(f, Instr{Op: OpRegSave})
	}); err != nil {
		t.Errorf("valid instrumentation rejected: %v", err)
	}
	if err := mk(func(f *Func) {
		prepend(f, Instr{Op: OpTxBegin, Imm: 9})
	}); err == nil || !strings.Contains(err.Error(), "txbegin with variant") {
		t.Errorf("bad txbegin variant: %v", err)
	}
	if err := mk(func(f *Func) {
		f.Blocks[0].Instrs = []Instr{{Op: OpGate, Site: 1, Dst: -1, Then: 0, Else: 7}}
	}); err == nil || !strings.Contains(err.Error(), "gate stm target") {
		t.Errorf("bad gate else target: %v", err)
	}
	if err := mk(func(f *Func) {
		f.Blocks[0].Instrs = []Instr{{Op: OpGate, Site: 1, Dst: 5, Then: 0, Else: 0}}
	}); err == nil || !strings.Contains(err.Error(), "gate return register") {
		t.Errorf("bad gate dst: %v", err)
	}
	if err := mk(func(f *Func) {
		prepend(f, Instr{Op: OpStmStore, A: 0, B: 0, Width: 8})
	}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("stmstore with bad regs: %v", err)
	}
	if err := mk(func(f *Func) {
		prepend(f, Instr{Op: Opcode(99)})
	}); err == nil || !strings.Contains(err.Error(), "unknown opcode") {
		t.Errorf("unknown opcode: %v", err)
	}
	if err := mk(func(f *Func) {
		r := f.NewReg()
		prepend(f, Instr{Op: OpFrameAddr, Dst: r, Imm: 64})
	}); err == nil || !strings.Contains(err.Error(), "frame offset") {
		t.Errorf("frame offset out of frame: %v", err)
	}
	if err := mk(func(f *Func) {
		r := f.NewReg()
		prepend(f, Instr{Op: OpBin, Dst: r, A: r, B: r, Bin: BinKind(99)})
	}); err == nil || !strings.Contains(err.Error(), "unknown binary operator") {
		t.Errorf("unknown binop: %v", err)
	}
	if err := mk(func(f *Func) {
		prepend(f, Instr{Op: OpRet, A: 7})
	}); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("mid-block ret: %v", err)
	}
}

func TestInstrStringInstrumentationForms(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpTxBegin, Imm: TxHTM, Site: 2}, "txbegin htm #site2"},
		{Instr{Op: OpTxEnd}, "txend"},
		{Instr{Op: OpRegSave}, "regsave"},
		{Instr{Op: OpStmStore, A: 1, B: 2, Imm: 4, Width: 8}, "stmstore8 [r1+4] = r2"},
		{Instr{Op: OpNeg, Dst: 1, A: 0}, "r1 = -r0"},
		{Instr{Op: OpNot, Dst: 1, A: 0}, "r1 = !r0"},
		{Instr{Op: OpMov, Dst: 3, A: 2}, "r3 = r2"},
		{Instr{Op: OpFrameAddr, Dst: 1, Imm: 24}, "r1 = frame+24"},
		{Instr{Op: OpGlobalAddr, Dst: 1, Name: "g"}, "r1 = &g"},
		{Instr{Op: OpCall, Dst: -1, Name: "f", Args: []int{1}}, "call f(r1)"},
		{Instr{Op: OpJmp, Then: 3}, "jmp b3"},
		{Instr{Op: OpRet, A: -1}, "ret"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestBinKindStringUnknown(t *testing.T) {
	if got := BinKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown binop string = %q", got)
	}
	if v, ok := BinKind(99).Eval(1, 2); ok || v != 0 {
		t.Errorf("unknown binop Eval = %d, %v", v, ok)
	}
}
