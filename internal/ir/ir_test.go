package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBinKindEval(t *testing.T) {
	tests := []struct {
		op   BinKind
		x, y int64
		want int64
		ok   bool
	}{
		{BinAdd, 2, 3, 5, true},
		{BinSub, 2, 3, -1, true},
		{BinMul, -4, 3, -12, true},
		{BinDiv, 7, 2, 3, true},
		{BinDiv, 7, 0, 0, false},
		{BinRem, 7, 2, 1, true},
		{BinRem, 7, 0, 0, false},
		{BinAnd, 0b1100, 0b1010, 0b1000, true},
		{BinOr, 0b1100, 0b1010, 0b1110, true},
		{BinXor, 0b1100, 0b1010, 0b0110, true},
		{BinShl, 1, 4, 16, true},
		{BinShr, 16, 4, 1, true},
		{BinEq, 5, 5, 1, true},
		{BinEq, 5, 6, 0, true},
		{BinNe, 5, 6, 1, true},
		{BinLt, -1, 0, 1, true},
		{BinLe, 0, 0, 1, true},
		{BinGt, 1, 0, 1, true},
		{BinGe, 0, 1, 0, true},
	}
	for _, tt := range tests {
		got, ok := tt.op.Eval(tt.x, tt.y)
		if got != tt.want || ok != tt.ok {
			t.Errorf("%v.Eval(%d, %d) = (%d, %v), want (%d, %v)", tt.op, tt.x, tt.y, got, ok, tt.want, tt.ok)
		}
	}
}

func TestBinKindEvalCommutative(t *testing.T) {
	// +, *, &, |, ^, ==, != are commutative; check via testing/quick.
	for _, op := range []BinKind{BinAdd, BinMul, BinAnd, BinOr, BinXor, BinEq, BinNe} {
		op := op
		f := func(x, y int64) bool {
			a, _ := op.Eval(x, y)
			b, _ := op.Eval(y, x)
			return a == b
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("operator %v not commutative: %v", op, err)
		}
	}
}

func TestBinKindComparisonsAreBoolean(t *testing.T) {
	for _, op := range []BinKind{BinEq, BinNe, BinLt, BinLe, BinGt, BinGe} {
		op := op
		f := func(x, y int64) bool {
			v, ok := op.Eval(x, y)
			return ok && (v == 0 || v == 1)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("operator %v yields non-boolean: %v", op, err)
		}
	}
}

func buildReturn42(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	b := NewBuilder("main", 0)
	r := b.Const(42)
	b.Ret(r)
	p.AddFunc(b.F)
	return p
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := buildReturn42(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateMissingEntry(t *testing.T) {
	p := NewProgram()
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "entry function") {
		t.Fatalf("Validate() = %v, want entry-function error", err)
	}
}

func TestValidateMissingTerminator(t *testing.T) {
	p := NewProgram()
	b := NewBuilder("main", 0)
	b.Const(1) // no terminator
	p.AddFunc(b.F)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "missing terminator") {
		t.Fatalf("Validate() = %v, want missing-terminator error", err)
	}
}

func TestValidateRegisterOutOfRange(t *testing.T) {
	p := NewProgram()
	b := NewBuilder("main", 0)
	b.Cur.Instrs = append(b.Cur.Instrs, Instr{Op: OpMov, Dst: 0, A: 99})
	b.F.NumRegs = 1
	b.RetVoid()
	p.AddFunc(b.F)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Validate() = %v, want out-of-range error", err)
	}
}

func TestValidateUndefinedCallee(t *testing.T) {
	p := NewProgram()
	b := NewBuilder("main", 0)
	b.CallVoid("nowhere")
	b.RetVoid()
	p.AddFunc(b.F)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("Validate() = %v, want undefined-function error", err)
	}
}

func TestValidateArityMismatch(t *testing.T) {
	p := NewProgram()
	callee := NewBuilder("f", 2)
	callee.RetVoid()
	p.AddFunc(callee.F)
	b := NewBuilder("main", 0)
	x := b.Const(1)
	b.CallVoid("f", x)
	b.RetVoid()
	p.AddFunc(b.F)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Fatalf("Validate() = %v, want arity error", err)
	}
}

func TestValidateBadWidth(t *testing.T) {
	p := NewProgram()
	b := NewBuilder("main", 0)
	a := b.Const(0)
	b.Cur.Instrs = append(b.Cur.Instrs, Instr{Op: OpLoad, Dst: a, A: a, Width: 3})
	b.RetVoid()
	p.AddFunc(b.F)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "width") {
		t.Fatalf("Validate() = %v, want width error", err)
	}
}

func TestValidateBranchTargets(t *testing.T) {
	p := NewProgram()
	b := NewBuilder("main", 0)
	b.Cur.Instrs = append(b.Cur.Instrs, Instr{Op: OpJmp, Then: 7})
	p.AddFunc(b.F)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "block 7 out of range") {
		t.Fatalf("Validate() = %v, want block-range error", err)
	}
}

func TestValidateUnknownGlobal(t *testing.T) {
	p := NewProgram()
	b := NewBuilder("main", 0)
	r := b.F.NewReg()
	b.Cur.Instrs = append(b.Cur.Instrs, Instr{Op: OpGlobalAddr, Dst: r, Name: "ghost"})
	b.RetVoid()
	p.AddFunc(b.F)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unknown global") {
		t.Fatalf("Validate() = %v, want unknown-global error", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildReturn42(t)
	p.AddGlobal("g", 8, []byte{1, 2, 3})
	cp := p.Clone()

	// Mutating the clone must not affect the original.
	cp.Funcs["main"].Blocks[0].Instrs[0].Imm = 7
	cp.Globals[0].Data[0] = 9
	cp.Funcs["main"].NumRegs = 99

	if got := p.Funcs["main"].Blocks[0].Instrs[0].Imm; got != 42 {
		t.Errorf("original instruction mutated through clone: imm = %d", got)
	}
	if got := p.Globals[0].Data[0]; got != 1 {
		t.Errorf("original global data mutated through clone: %d", got)
	}
	if got := p.Funcs["main"].NumRegs; got == 99 {
		t.Errorf("original func mutated through clone")
	}
}

func TestCloneCopiesArgs(t *testing.T) {
	p := NewProgram()
	f := NewBuilder("f", 1)
	f.RetVoid()
	p.AddFunc(f.F)
	b := NewBuilder("main", 0)
	x := b.Const(1)
	b.CallVoid("f", x)
	b.RetVoid()
	p.AddFunc(b.F)

	cp := p.Clone()
	var callInstr *Instr
	for i := range cp.Funcs["main"].Blocks[0].Instrs {
		if cp.Funcs["main"].Blocks[0].Instrs[i].Op == OpCall {
			callInstr = &cp.Funcs["main"].Blocks[0].Instrs[i]
		}
	}
	if callInstr == nil {
		t.Fatal("clone lost the call instruction")
	}
	callInstr.Args[0] = 42
	for i := range p.Funcs["main"].Blocks[0].Instrs {
		in := &p.Funcs["main"].Blocks[0].Instrs[i]
		if in.Op == OpCall && in.Args[0] == 42 {
			t.Error("original call args mutated through clone")
		}
	}
}

func TestDumpContainsStructure(t *testing.T) {
	p := buildReturn42(t)
	p.AddGlobal("msg", 0, []byte("hi"))
	d := p.Dump()
	for _, want := range []string{"global msg", "func main", "const 42", "ret r0"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump() missing %q:\n%s", want, d)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 1, Imm: 5}, "r1 = const 5"},
		{Instr{Op: OpBin, Dst: 2, A: 0, B: 1, Bin: BinAdd}, "r2 = r0 + r1"},
		{Instr{Op: OpLoad, Dst: 1, A: 0, Imm: 8, Width: 8}, "r1 = load8 [r0+8]"},
		{Instr{Op: OpStore, A: 0, B: 1, Imm: -4, Width: 4}, "store4 [r0-4] = r1"},
		{Instr{Op: OpLib, Dst: 3, Name: "socket", Args: []int{1, 2}, Site: 9}, "r3 = lib socket(r1, r2) #site9"},
		{Instr{Op: OpBr, A: 1, Then: 2, Else: 3}, "br r1 ? b2 : b3"},
		{Instr{Op: OpTxBegin, Imm: TxSTM, Site: 4}, "txbegin stm #site4"},
		{Instr{Op: OpGate, Site: 2, Then: 5}, "gate #site2 -> b5"},
		{Instr{Op: OpTrap, Imm: TrapInjected}, "trap 1"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewBlockAssignsSequentialIDs(t *testing.T) {
	f := &Func{Name: "f"}
	for i := 0; i < 5; i++ {
		b := f.NewBlock("x")
		if b.ID != i {
			t.Fatalf("block %d got ID %d", i, b.ID)
		}
	}
}

func TestFrameAddrGrowsFrame(t *testing.T) {
	b := NewBuilder("f", 0)
	b.FrameAddr(0, 16)
	b.FrameAddr(16, 64)
	b.RetVoid()
	if b.F.FrameSize != 80 {
		t.Fatalf("FrameSize = %d, want 80", b.F.FrameSize)
	}
}

func TestTerminatorDetection(t *testing.T) {
	b := &Block{}
	if b.Terminator() != nil {
		t.Error("empty block reported a terminator")
	}
	b.Instrs = []Instr{{Op: OpConst, Dst: 0, Imm: 1}}
	if b.Terminator() != nil {
		t.Error("const reported as terminator")
	}
	b.Instrs = append(b.Instrs, Instr{Op: OpRet, A: -1})
	if b.Terminator() == nil {
		t.Error("ret not reported as terminator")
	}
}

func TestProgramGlobalLookup(t *testing.T) {
	p := NewProgram()
	p.AddGlobal("a", 8, nil)
	p.AddGlobal("b", 0, []byte("xyz"))
	if g := p.Global("b"); g == nil || g.Size != 3 {
		t.Fatalf("Global(b) = %+v, want size 3", g)
	}
	if p.Global("c") != nil {
		t.Fatal("Global(c) should be nil")
	}
}

func TestInstrCount(t *testing.T) {
	p := buildReturn42(t)
	if got := p.InstrCount(); got != 2 {
		t.Fatalf("InstrCount() = %d, want 2", got)
	}
}
