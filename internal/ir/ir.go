// Package ir defines the intermediate representation that the mini-C
// frontend compiles to and that the FIRestarter transformation passes
// operate on.
//
// The IR is a conventional register machine: each function owns a set of
// 64-bit virtual registers and a list of basic blocks; the last instruction
// of every block is a terminator (jmp/br/ret/trap). Memory is accessed
// through explicit load/store instructions against the simulated address
// space (package mem). Interaction with the environment happens exclusively
// through OpLib instructions, which name a simulated library function
// (package libsim) — these are the seams where FIRestarter plants its
// transaction boundaries.
//
// The representation is deliberately non-SSA: registers are mutable. This
// keeps the Checkpoint Manager's code-cloning pass (which must merge local
// state between the HTM and STM variants of a region, §IV-B of the paper)
// a straightforward block-level transformation.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Opcode enumerates IR instruction kinds.
type Opcode int

// Instruction opcodes. The first group is produced by the frontend; the
// second group (Tx*, StmStore, RegSave, Gate) is inserted only by the
// FIRestarter transformation passes.
const (
	OpConst      Opcode = iota + 1 // Dst = Imm
	OpMov                          // Dst = A
	OpBin                          // Dst = A <Bin> B
	OpNeg                          // Dst = -A
	OpNot                          // Dst = (A == 0) ? 1 : 0
	OpLoad                         // Dst = mem[A + Imm] (Width bytes, zero-extended)
	OpStore                        // mem[A + Imm] = B (Width bytes)
	OpFrameAddr                    // Dst = frame pointer + Imm
	OpGlobalAddr                   // Dst = address of global Name
	OpCall                         // Dst = Name(Args...)
	OpLib                          // Dst = library call Name(Args...)
	OpJmp                          // goto Then
	OpBr                           // if A != 0 goto Then else goto Else
	OpRet                          // return A (A < 0 means no value)
	OpTrap                         // fatal fault (fail-stop crash); Imm = trap code

	// Instrumentation opcodes (inserted by internal/transform).
	OpTxBegin  // begin transaction at gate Site; Imm = variant (TxHTM/TxSTM)
	OpTxEnd    // commit the current transaction
	OpStmStore // like OpStore, but logs the old value to the undo log first
	OpRegSave  // snapshot registers for STM rollback (setjmp analog)
	OpGate     // transaction entry gate for Site: dispatch on gate state
)

// Trap codes carried in the Imm field of OpTrap.
const (
	TrapInjected  = 1 // planted by the fault injector (persistent fatal fault)
	TrapAssert    = 2 // application assertion failure
	TrapDivZero   = 3 // division by zero
	TrapBadAccess = 4 // set by the interpreter on unmapped memory access
	TrapBadCall   = 5 // OpCall whose callee cannot be resolved at run time
	TrapDomain    = 6 // cross-domain access under heap-domain isolation
)

// BinKind enumerates binary operators for OpBin.
type BinKind int

// Binary operators.
const (
	BinAdd BinKind = iota + 1
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

var binNames = map[BinKind]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinRem: "%",
	BinAnd: "&", BinOr: "|", BinXor: "^", BinShl: "<<", BinShr: ">>",
	BinEq: "==", BinNe: "!=", BinLt: "<", BinLe: "<=", BinGt: ">", BinGe: ">=",
}

// String returns the operator's source-level spelling.
func (b BinKind) String() string {
	if s, ok := binNames[b]; ok {
		return s
	}
	return fmt.Sprintf("bin(%d)", int(b))
}

// Eval applies the operator to two signed 64-bit operands. Comparison
// operators yield 0 or 1. Division and remainder by zero are reported via
// ok=false so the interpreter can raise a trap.
func (b BinKind) Eval(x, y int64) (v int64, ok bool) {
	switch b {
	case BinAdd:
		return x + y, true
	case BinSub:
		return x - y, true
	case BinMul:
		return x * y, true
	case BinDiv:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case BinRem:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case BinAnd:
		return x & y, true
	case BinOr:
		return x | y, true
	case BinXor:
		return x ^ y, true
	case BinShl:
		return x << (uint64(y) & 63), true
	case BinShr:
		return x >> (uint64(y) & 63), true
	case BinEq:
		return b2i(x == y), true
	case BinNe:
		return b2i(x != y), true
	case BinLt:
		return b2i(x < y), true
	case BinLe:
		return b2i(x <= y), true
	case BinGt:
		return b2i(x > y), true
	case BinGe:
		return b2i(x >= y), true
	default:
		return 0, false
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Transaction variant selectors carried in the Imm field of OpTxBegin.
const (
	TxHTM = 1
	TxSTM = 2
)

// Instr is a single IR instruction. Fields are interpreted per-opcode; see
// the Opcode constants. A flat struct (rather than an interface hierarchy)
// keeps the interpreter's dispatch loop allocation-free.
type Instr struct {
	Op    Opcode
	Dst   int     // destination register (-1 if unused)
	A, B  int     // register operands
	Imm   int64   // immediate / offset / variant / trap code
	Width int     // access width in bytes for OpLoad/OpStore/OpStmStore
	Bin   BinKind // operator for OpBin
	Name  string  // callee (OpCall), library function (OpLib), global (OpGlobalAddr)
	Args  []int   // argument registers for OpCall/OpLib
	Then  int     // target block for OpJmp/OpBr, gate block for OpGate
	Else  int     // false target for OpBr

	// Site is a program-unique library-call-site identifier assigned by
	// the Library Interface Analyzer. It links an OpLib instruction with
	// the OpGate/OpTxBegin instrumentation derived from it. Zero means
	// unassigned.
	Site int

	// Pos is the source position (line number) carried from the frontend
	// for diagnostics; zero when synthesized.
	Pos int

	// Callee (for OpCall) and Global (for OpGlobalAddr) are resolution
	// caches filled by Program.Resolve so the interpreter's hot loop can
	// skip per-instruction map lookups. Name stays authoritative: both
	// pointers must refer to objects of the owning Program (Clone remaps
	// them), and the interpreter falls back to a by-name lookup — trapping
	// with TrapBadCall on failure — whenever Callee is nil.
	Callee *Func
	Global *Global
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. ID is the block's index in its function's Blocks slice.
type Block struct {
	ID     int
	Label  string
	Instrs []Instr

	// Variant tags blocks produced by the Checkpoint Manager's cloning
	// pass: 0 for original/shared blocks, TxHTM or TxSTM for clones.
	// Counterpart holds the block ID of the same code in the other
	// variant (used by flow switches at return sites), or -1.
	Variant     int
	Counterpart int
}

// Terminator returns the block's final instruction, or nil if the block is
// empty or ends in a non-terminator (which Validate reports as an error).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := &b.Instrs[len(b.Instrs)-1]
	switch t.Op {
	case OpJmp, OpBr, OpRet, OpTrap, OpGate:
		// OpGate is a two-way terminator: Then is the HTM clone of the
		// following region, Else the STM clone.
		return t
	}
	return nil
}

// Func is an IR function.
type Func struct {
	Name    string
	Params  int // parameters arrive in registers 0..Params-1
	NumRegs int // total virtual registers (>= Params)
	Blocks  []*Block

	// FrameSize is the number of bytes of simulated stack memory the
	// function needs for address-taken locals and arrays.
	FrameSize int64

	// Cloned marks functions already processed by the Checkpoint
	// Manager (they have HTM/STM variants and an entry flow switch).
	Cloned bool

	// EntryHTM and EntrySTM are the entry block IDs of the two variants
	// of a cloned function. The interpreter's call dispatch acts as the
	// paper's function-entry flow switch: it enters the variant matching
	// the caller's current transaction type. Both are 0 for un-cloned
	// functions.
	EntryHTM int
	EntrySTM int
}

// NewBlock appends a fresh block with the given label and returns it.
func (f *Func) NewBlock(label string) *Block {
	b := &Block{ID: len(f.Blocks), Label: label, Counterpart: -1}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewReg allocates a fresh virtual register and returns its index.
func (f *Func) NewReg() int {
	r := f.NumRegs
	f.NumRegs++
	return r
}

// Global is a program global: a named, fixed-size region in the data
// segment, optionally initialized with Data (zero-filled beyond it).
type Global struct {
	Name string
	Size int64
	Data []byte
	Addr int64 // assigned at load time by the interpreter
}

// Program is a complete compilation unit.
type Program struct {
	Funcs   map[string]*Func
	Globals []*Global
	Entry   string // entry function name, normally "main"

	// NumSites is one past the highest Site assigned by the Library
	// Interface Analyzer; gate state arrays are sized by it.
	NumSites int
}

// NewProgram returns an empty program with entry point "main".
func NewProgram() *Program {
	return &Program{Funcs: make(map[string]*Func), Entry: "main"}
}

// AddFunc registers f, replacing any previous function of the same name.
func (p *Program) AddFunc(f *Func) {
	p.Funcs[f.Name] = f
}

// AddGlobal appends a global and returns it. Size defaults to len(data)
// when zero.
func (p *Program) AddGlobal(name string, size int64, data []byte) *Global {
	if size == 0 {
		size = int64(len(data))
	}
	g := &Global{Name: name, Size: size, Data: data}
	p.Globals = append(p.Globals, g)
	return g
}

// Global looks up a global by name.
func (p *Program) Global(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// FuncNames returns the program's function names in sorted order.
func (p *Program) FuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InstrCount returns the total number of instructions across all functions.
// The benchmark harness uses it as the code-size (binary-size) metric for
// the Fig. 9 memory-overhead comparison.
func (p *Program) InstrCount() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Validate checks structural invariants: every block ends in exactly one
// terminator, branch targets are in range, register indices are within the
// function's register file, and called functions exist. It returns a
// combined error describing every violation found.
func (p *Program) Validate() error {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if p.Entry != "" {
		if _, ok := p.Funcs[p.Entry]; !ok {
			addf("entry function %q not defined", p.Entry)
		}
	}
	for _, name := range p.FuncNames() {
		f := p.Funcs[name]
		if f.NumRegs < f.Params {
			addf("%s: NumRegs %d < Params %d", name, f.NumRegs, f.Params)
		}
		for _, b := range f.Blocks {
			if b.Terminator() == nil {
				addf("%s.b%d: missing terminator", name, b.ID)
				continue
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if i != len(b.Instrs)-1 {
					switch in.Op {
					case OpJmp, OpBr, OpRet, OpTrap, OpGate:
						addf("%s.b%d.%d: terminator %s in mid-block", name, b.ID, i, opName(in.Op))
					}
				}
				if err := checkInstr(p, f, in); err != nil {
					addf("%s.b%d.%d: %v", name, b.ID, i, err)
				}
			}
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("ir: invalid program:\n  %s", strings.Join(problems, "\n  "))
}

// Resolve fills the per-instruction resolution caches: OpCall gets a
// direct *Func pointer and OpGlobalAddr a direct *Global pointer, so the
// interpreter needs no map lookups on the hot path. It is idempotent and
// cheap; the interpreter runs it at load time, and the transformation and
// fault-injection passes run it on their outputs so instrumented programs
// arrive pre-resolved. Resolution never changes observable semantics or
// the cost model — it only removes lookups.
func (p *Program) Resolve() error {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case OpCall:
					callee := p.Funcs[in.Name]
					if callee == nil {
						return fmt.Errorf("ir: resolve: call to undefined function %q in %s.b%d", in.Name, f.Name, b.ID)
					}
					in.Callee = callee
				case OpGlobalAddr:
					g := p.Global(in.Name)
					if g == nil {
						return fmt.Errorf("ir: resolve: unknown global %q in %s.b%d", in.Name, f.Name, b.ID)
					}
					in.Global = g
				}
			}
		}
	}
	return nil
}

func checkInstr(p *Program, f *Func, in *Instr) error {
	checkReg := func(r int, what string) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("%s register %d out of range [0,%d)", what, r, f.NumRegs)
		}
		return nil
	}
	checkBlock := func(id int, what string) error {
		if id < 0 || id >= len(f.Blocks) {
			return fmt.Errorf("%s block %d out of range [0,%d)", what, id, len(f.Blocks))
		}
		return nil
	}
	switch in.Op {
	case OpConst:
		return checkReg(in.Dst, "dst")
	case OpMov, OpNeg, OpNot:
		if err := checkReg(in.Dst, "dst"); err != nil {
			return err
		}
		return checkReg(in.A, "src")
	case OpBin:
		if err := checkReg(in.Dst, "dst"); err != nil {
			return err
		}
		if err := checkReg(in.A, "lhs"); err != nil {
			return err
		}
		if err := checkReg(in.B, "rhs"); err != nil {
			return err
		}
		if _, ok := binNames[in.Bin]; !ok {
			return fmt.Errorf("unknown binary operator %d", int(in.Bin))
		}
		return nil
	case OpLoad:
		if err := checkReg(in.Dst, "dst"); err != nil {
			return err
		}
		if err := checkReg(in.A, "addr"); err != nil {
			return err
		}
		return checkWidth(in.Width)
	case OpStore, OpStmStore:
		if err := checkReg(in.A, "addr"); err != nil {
			return err
		}
		if err := checkReg(in.B, "value"); err != nil {
			return err
		}
		return checkWidth(in.Width)
	case OpFrameAddr:
		if err := checkReg(in.Dst, "dst"); err != nil {
			return err
		}
		if in.Imm < 0 || in.Imm >= f.FrameSize {
			return fmt.Errorf("frame offset %d outside frame of %d bytes", in.Imm, f.FrameSize)
		}
		return nil
	case OpGlobalAddr:
		if err := checkReg(in.Dst, "dst"); err != nil {
			return err
		}
		g := p.Global(in.Name)
		if g == nil {
			return fmt.Errorf("unknown global %q", in.Name)
		}
		if in.Global != nil && in.Global != g {
			return fmt.Errorf("stale resolved global for %q (points outside this program)", in.Name)
		}
		return nil
	case OpCall:
		callee, ok := p.Funcs[in.Name]
		if !ok {
			return fmt.Errorf("call to undefined function %q", in.Name)
		}
		if in.Callee != nil && in.Callee != callee {
			return fmt.Errorf("stale resolved callee for %q (points outside this program)", in.Name)
		}
		if len(in.Args) != callee.Params {
			return fmt.Errorf("call to %q with %d args, want %d", in.Name, len(in.Args), callee.Params)
		}
		for _, a := range in.Args {
			if err := checkReg(a, "arg"); err != nil {
				return err
			}
		}
		if in.Dst >= 0 {
			return checkReg(in.Dst, "dst")
		}
		return nil
	case OpLib:
		for _, a := range in.Args {
			if err := checkReg(a, "arg"); err != nil {
				return err
			}
		}
		if in.Dst >= 0 {
			return checkReg(in.Dst, "dst")
		}
		return nil
	case OpJmp:
		return checkBlock(in.Then, "target")
	case OpBr:
		if err := checkReg(in.A, "cond"); err != nil {
			return err
		}
		if err := checkBlock(in.Then, "then"); err != nil {
			return err
		}
		return checkBlock(in.Else, "else")
	case OpRet:
		if in.A >= 0 {
			return checkReg(in.A, "result")
		}
		return nil
	case OpTrap:
		return nil
	case OpTxBegin:
		if in.Imm != TxHTM && in.Imm != TxSTM {
			return fmt.Errorf("txbegin with variant %d", in.Imm)
		}
		return nil
	case OpTxEnd, OpRegSave:
		return nil
	case OpGate:
		if err := checkBlock(in.Then, "gate htm target"); err != nil {
			return err
		}
		if err := checkBlock(in.Else, "gate stm target"); err != nil {
			return err
		}
		if in.Dst >= 0 {
			return checkReg(in.Dst, "gate return register")
		}
		return nil
	default:
		return fmt.Errorf("unknown opcode %d", int(in.Op))
	}
}

func checkWidth(w int) error {
	switch w {
	case 1, 2, 4, 8:
		return nil
	}
	return fmt.Errorf("invalid access width %d", w)
}

var opNames = map[Opcode]string{
	OpConst: "const", OpMov: "mov", OpBin: "bin", OpNeg: "neg", OpNot: "not",
	OpLoad: "load", OpStore: "store", OpFrameAddr: "frameaddr",
	OpGlobalAddr: "globaladdr", OpCall: "call", OpLib: "lib", OpJmp: "jmp",
	OpBr: "br", OpRet: "ret", OpTrap: "trap", OpTxBegin: "txbegin",
	OpTxEnd: "txend", OpStmStore: "stmstore", OpRegSave: "regsave",
	OpGate: "gate",
}

func opName(op Opcode) string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// String renders the instruction in a readable assembly-like form.
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("r%d = r%d %s r%d", in.Dst, in.A, in.Bin, in.B)
	case OpNeg:
		return fmt.Sprintf("r%d = -r%d", in.Dst, in.A)
	case OpNot:
		return fmt.Sprintf("r%d = !r%d", in.Dst, in.A)
	case OpLoad:
		return fmt.Sprintf("r%d = load%d [r%d%+d]", in.Dst, in.Width, in.A, in.Imm)
	case OpStore:
		return fmt.Sprintf("store%d [r%d%+d] = r%d", in.Width, in.A, in.Imm, in.B)
	case OpStmStore:
		return fmt.Sprintf("stmstore%d [r%d%+d] = r%d", in.Width, in.A, in.Imm, in.B)
	case OpFrameAddr:
		return fmt.Sprintf("r%d = frame%+d", in.Dst, in.Imm)
	case OpGlobalAddr:
		return fmt.Sprintf("r%d = &%s", in.Dst, in.Name)
	case OpCall, OpLib:
		kind := "call"
		if in.Op == OpLib {
			kind = "lib"
		}
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		site := ""
		if in.Site != 0 {
			site = fmt.Sprintf(" #site%d", in.Site)
		}
		if in.Dst >= 0 {
			return fmt.Sprintf("r%d = %s %s(%s)%s", in.Dst, kind, in.Name, strings.Join(args, ", "), site)
		}
		return fmt.Sprintf("%s %s(%s)%s", kind, in.Name, strings.Join(args, ", "), site)
	case OpJmp:
		return fmt.Sprintf("jmp b%d", in.Then)
	case OpBr:
		return fmt.Sprintf("br r%d ? b%d : b%d", in.A, in.Then, in.Else)
	case OpRet:
		if in.A >= 0 {
			return fmt.Sprintf("ret r%d", in.A)
		}
		return "ret"
	case OpTrap:
		return fmt.Sprintf("trap %d", in.Imm)
	case OpTxBegin:
		v := "htm"
		if in.Imm == TxSTM {
			v = "stm"
		}
		return fmt.Sprintf("txbegin %s #site%d", v, in.Site)
	case OpTxEnd:
		return "txend"
	case OpRegSave:
		return "regsave"
	case OpGate:
		return fmt.Sprintf("gate #site%d -> b%d", in.Site, in.Then)
	default:
		return opName(in.Op)
	}
}

// Dump renders the whole program as readable pseudo-assembly, useful in
// tests and the firec tool.
func (p *Program) Dump() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s [%d bytes]\n", g.Name, g.Size)
	}
	for _, name := range p.FuncNames() {
		f := p.Funcs[name]
		fmt.Fprintf(&sb, "\nfunc %s(params=%d regs=%d frame=%d)\n", f.Name, f.Params, f.NumRegs, f.FrameSize)
		for _, b := range f.Blocks {
			variant := ""
			switch b.Variant {
			case TxHTM:
				variant = " [htm]"
			case TxSTM:
				variant = " [stm]"
			}
			fmt.Fprintf(&sb, "b%d: %s%s\n", b.ID, b.Label, variant)
			for i := range b.Instrs {
				fmt.Fprintf(&sb, "    %s\n", b.Instrs[i].String())
			}
		}
	}
	return sb.String()
}

// Clone returns a deep copy of the program. The transformation passes
// operate on copies so the vanilla program remains available as the
// baseline for the benchmark harness.
func (p *Program) Clone() *Program {
	cp := &Program{
		Funcs:    make(map[string]*Func, len(p.Funcs)),
		Globals:  make([]*Global, len(p.Globals)),
		Entry:    p.Entry,
		NumSites: p.NumSites,
	}
	for i, g := range p.Globals {
		ng := *g
		ng.Data = append([]byte(nil), g.Data...)
		cp.Globals[i] = &ng
	}
	for name, f := range p.Funcs {
		nf := &Func{
			Name:      f.Name,
			Params:    f.Params,
			NumRegs:   f.NumRegs,
			FrameSize: f.FrameSize,
			Cloned:    f.Cloned,
			EntryHTM:  f.EntryHTM,
			EntrySTM:  f.EntrySTM,
			Blocks:    make([]*Block, len(f.Blocks)),
		}
		for i, b := range f.Blocks {
			nb := &Block{
				ID:          b.ID,
				Label:       b.Label,
				Variant:     b.Variant,
				Counterpart: b.Counterpart,
				Instrs:      make([]Instr, len(b.Instrs)),
			}
			copy(nb.Instrs, b.Instrs)
			for j := range nb.Instrs {
				if b.Instrs[j].Args != nil {
					nb.Instrs[j].Args = append([]int(nil), b.Instrs[j].Args...)
				}
			}
			nf.Blocks[i] = nb
		}
		cp.Funcs[name] = nf
	}
	// Remap resolution caches: a copied Callee/Global pointer would refer
	// to the *source* program, so a machine running the clone could execute
	// the un-transformed (or un-faulted) original code. Point them at the
	// clone's own objects instead, preserving resolved-ness.
	for _, nf := range cp.Funcs {
		for _, nb := range nf.Blocks {
			for j := range nb.Instrs {
				in := &nb.Instrs[j]
				if in.Callee != nil {
					in.Callee = cp.Funcs[in.Name]
				}
				if in.Global != nil {
					in.Global = cp.Global(in.Name)
				}
			}
		}
	}
	return cp
}
