package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/supervisor"
)

// fakeRep is a scripted replica: a newline-framed server driven Go-side
// through the real library-call surface (socket/bind/listen/accept/read/
// write), so the balancer's byte plumbing, trace promotion and errno
// propagation are exercised exactly as with an interpreted app, while the
// test scripts crashes, sheds, held and partial responses.
type fakeRep struct {
	os    *libsim.OS
	sp    *mem.Space
	lfd   int64
	buf   int64
	cyc   int64
	steps int64
	fds   []int64
	acc   map[int64][]byte

	// mode: "echo" answers each line with itself; "hold" reads requests
	// and never answers; "partial" answers with half the line then holds;
	// "shed" closes the conn server-side upon a full request; "sheddie"
	// sheds and then traps in the same run; "deaf" never even accepts.
	mode string
	die  bool // trap at the start of the next Run
}

func newFake(t *testing.T, port int64, mode string) *fakeRep {
	t.Helper()
	sp := mem.NewSpace()
	if err := sp.Map(mem.GlobalBase, 1<<16); err != nil {
		t.Fatal(err)
	}
	o := libsim.New(sp)
	r := &fakeRep{os: o, sp: sp, buf: mem.GlobalBase, acc: map[int64][]byte{}, mode: mode, cyc: 1000}
	lfd, err := o.Call("socket", nil)
	if err != nil || lfd < 0 {
		t.Fatalf("socket: fd=%d err=%v", lfd, err)
	}
	if rv, err := o.Call("bind", []int64{lfd, port}); err != nil || rv != 0 {
		t.Fatalf("bind: rv=%d err=%v", rv, err)
	}
	if rv, err := o.Call("listen", []int64{lfd, 64}); err != nil || rv != 0 {
		t.Fatalf("listen: rv=%d err=%v", rv, err)
	}
	r.lfd = lfd
	return r
}

func (r *fakeRep) send(fd int64, data []byte) {
	if err := r.sp.WriteBytes(r.buf, data); err != nil {
		panic(err)
	}
	r.os.Call("write", []int64{fd, r.buf, int64(len(data))})
	r.cyc += int64(len(data))
}

func (r *fakeRep) Run(int64) interp.Outcome {
	r.steps++
	r.cyc += 100
	if r.die {
		return interp.Outcome{Kind: interp.OutTrapped, Code: 7}
	}
	if r.mode == "deaf" {
		return interp.Outcome{Kind: interp.OutBlocked}
	}
	for {
		fd, _ := r.os.Call("accept", []int64{r.lfd})
		if fd < 0 {
			break
		}
		r.fds = append(r.fds, fd)
	}
	trap := false
	var closed []int64
	for _, fd := range r.fds {
		gone := false
		for {
			n, _ := r.os.Call("read", []int64{fd, r.buf, 4096})
			if n < 0 {
				if r.os.Errno == libsim.ECONNRESET {
					gone = true
				}
				break // EAGAIN: drained
			}
			if n == 0 { // EOF: client closed
				gone = true
				break
			}
			r.cyc += n
			data, err := r.sp.ReadBytes(r.buf, n)
			if err != nil {
				panic(err)
			}
			r.acc[fd] = append(r.acc[fd], data...)
		}
		if gone {
			r.os.Call("close", []int64{fd})
			closed = append(closed, fd)
			continue
		}
		for {
			i := bytes.IndexByte(r.acc[fd], '\n')
			if i < 0 {
				break
			}
			line := append([]byte(nil), r.acc[fd][:i+1]...)
			r.acc[fd] = r.acc[fd][i+1:]
			switch r.mode {
			case "hold":
				// swallow: the request started but never answers
			case "shed", "sheddie":
				r.os.Call("shutdown", []int64{fd, 1})
				r.os.Call("close", []int64{fd})
				closed = append(closed, fd)
				if r.mode == "sheddie" {
					trap = true
				}
			case "partial":
				r.send(fd, line[:len(line)/2])
				r.mode = "hold" // the rest never comes
			default:
				r.send(fd, line)
			}
		}
	}
	for _, fd := range closed {
		for i, have := range r.fds {
			if have == fd {
				r.fds = append(r.fds[:i], r.fds[i+1:]...)
				break
			}
		}
		delete(r.acc, fd)
	}
	if trap {
		return interp.Outcome{Kind: interp.OutTrapped, Code: 9}
	}
	return interp.Outcome{Kind: interp.OutBlocked}
}

func (r *fakeRep) Cycles() int64 { return r.cyc }
func (r *fakeRep) Steps() int64  { return r.steps }

// quickSup is a supervision policy with short, deterministic backoffs.
func quickSup() supervisor.Config {
	return supervisor.Config{
		Seed: 1, MaxRestarts: 8, WindowCycles: 1 << 40,
		BackoffBase: 10_000, BackoffFactor: 2, BackoffMax: 80_000,
	}
}

// fleetOf builds a fleet whose replica incarnations are fakeReps with
// per-(replica, incarnation) modes, records every booted fake, and runs
// the first Slice so all replicas are up.
func fleetOf(t *testing.T, cfg Config, mode func(rep, inc int) string) (*Fleet, *[]*fakeRep) {
	t.Helper()
	if cfg.Port == 0 {
		cfg.Port = 80
	}
	if cfg.Sup.BackoffBase == 0 {
		cfg.Sup = quickSup()
	}
	var fakes []*fakeRep
	f := New(cfg, func(rep, inc int, seed int64) (*Backend, error) {
		fr := newFake(t, cfg.Port, mode(rep, inc))
		fakes = append(fakes, fr)
		return &Backend{OS: fr.os, Exec: fr}, nil
	})
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("first slice = %+v", out)
	}
	return f, &fakes
}

func echoMode(int, int) string { return "echo" }

// send delivers one traced request line on a front conn and slices.
func send(t *testing.T, f *Fleet, front *libsim.Conn, line string, trace int64) {
	t.Helper()
	front.ClientDeliverTraced([]byte(line), trace)
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("slice = %+v", out)
	}
}

func wantResp(t *testing.T, front *libsim.Conn, want string) {
	t.Helper()
	if got := string(front.ClientTake()); got != want {
		t.Fatalf("response = %q, want %q", got, want)
	}
}

func TestEchoThroughBalancer(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 1}, echoMode)
	front := f.Connect(80)
	if front == nil {
		t.Fatal("connect failed")
	}
	send(t, f, front, "ping\n", 7)
	wantResp(t, front, "ping\n")
	if f.ReqDone(7, true) {
		t.Error("clean request reported touched")
	}
	f.Finish()
	st := f.Stats()
	if st.Boots != 1 || st.Deaths != 0 || st.Handoffs != 0 || st.ReqsDone != 1 {
		t.Errorf("stats = %+v", st)
	}
	var ups, dones int
	for _, e := range f.Spans() {
		switch e.Kind {
		case obsv.SpanReplicaUp:
			ups++
			if e.Replica != 1 || e.Inc != 1 {
				t.Errorf("replica-up stamped %d/%d", e.Replica, e.Inc)
			}
		case obsv.SpanReqDone:
			dones++
		}
	}
	if ups != 1 || dones != 1 {
		t.Errorf("spans: %d replica-up, %d req-done", ups, dones)
	}
}

func TestConnectRejectsWrongPort(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 1}, echoMode)
	if f.Connect(81) != nil {
		t.Error("connect on the wrong port succeeded")
	}
}

func TestRoundRobinSpreadsConns(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 2}, echoMode)
	for i := 0; i < 4; i++ {
		if f.Connect(80) == nil {
			t.Fatal("connect failed")
		}
	}
	want := []int{0, 1, 0, 1}
	for i, vc := range f.conns {
		if vc.rep != want[i] {
			t.Errorf("conn %d on replica %d, want %d", i, vc.rep, want[i])
		}
	}
}

func TestLeastOutstandingPicksIdleReplica(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 2, Policy: PolicyLeastOutstanding}, echoMode)
	f.reps[0].outstanding = 5 // replica 0 artificially loaded
	if f.Connect(80); f.conns[0].rep != 1 {
		t.Errorf("conn on replica %d, want the idle replica 1", f.conns[0].rep)
	}
	f.reps[1].outstanding = 7 // now replica 0 is the lighter one
	if f.Connect(80); f.conns[1].rep != 0 {
		t.Errorf("conn on replica %d, want 0", f.conns[1].rep)
	}
}

// A replica death mid-request fails the conn over: the buffered request
// replays on a healthy replica. The request had started (the dying server
// read it), so the replay is untraced — its one req-start already
// happened — and the handoff span carries the trace ID.
func TestFailoverReplaysStartedRequest(t *testing.T) {
	f, fakes := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
		if rep == 0 && inc == 0 {
			return "hold"
		}
		return "echo"
	})
	front := f.Connect(80) // round-robin: replica 0
	send(t, f, front, "ping\n", 7)
	if got := string(front.ClientTake()); got != "" {
		t.Fatalf("held request answered: %q", got)
	}
	(*fakes)[0].die = true
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("slice = %+v", out)
	}
	wantResp(t, front, "ping\n")
	st := f.Stats()
	if st.Deaths != 1 || st.Failovers != 1 || st.Handoffs != 1 || st.ConnsLost != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !f.touched[7] {
		t.Error("failed-over request not marked touched")
	}
	f.Finish()
	for _, e := range f.Spans() {
		if e.Kind == obsv.SpanHandoff {
			if e.Cause != CauseFailover || e.Trace != 7 || e.Replica != 2 {
				t.Errorf("handoff span = %+v", e)
			}
		}
	}
}

// A death before the server ever read the request also fails over, but
// the replay is re-stamped with the trace (the req-start must fire on the
// new replica) and the handoff span carries no trace ID yet.
func TestFailoverReplaysUnstartedRequestTraced(t *testing.T) {
	f, fakes := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
		if rep == 0 && inc == 0 {
			return "deaf"
		}
		return "echo"
	})
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7)
	(*fakes)[0].die = true
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("slice = %+v", out)
	}
	wantResp(t, front, "ping\n")
	vc := f.conns[0]
	if vc.rep != 1 || vc.back.Trace() != 7 {
		t.Errorf("replayed conn: rep=%d back trace=%d, want 1/7", vc.rep, vc.back.Trace())
	}
	f.Finish()
	for _, e := range f.Spans() {
		if e.Kind == obsv.SpanHandoff && e.Trace != 0 {
			t.Errorf("unstarted handoff carries trace %d", e.Trace)
		}
	}
}

// A connection the dying server had already shed is closed toward the
// client, never failed over: the drop was deliberate, replaying it would
// resurrect a request the ladder chose to sacrifice.
func TestShedConnNeverFailsOver(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
		if rep == 0 && inc == 0 {
			return "sheddie"
		}
		return "echo"
	})
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7) // shed + trap in one run, before any pump
	if !front.ServerClosed() {
		t.Fatal("shed not propagated to the client")
	}
	st := f.Stats()
	if st.Deaths != 1 || st.Failovers != 0 || st.Handoffs != 0 || st.ConnsLost != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// The plain shed path (no death): the server closes the conn, the
// balancer propagates it, the client reconnects through the balancer.
func TestShedPropagatesWithoutDeath(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 1}, func(int, int) string { return "shed" })
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7)
	if !front.ServerClosed() {
		t.Fatal("shed not propagated")
	}
	if st := f.Stats(); st.Deaths != 0 || st.ConnsClosed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// A fresh request arriving on a draining replica moves to a healthy one
// at the request boundary, before any bytes reach the old back.
func TestDrainBoundaryMovesFreshRequest(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 2}, echoMode)
	front := f.Connect(80) // replica 0
	send(t, f, front, "a\n", 1)
	wantResp(t, front, "a\n")
	f.reps[0].state = repDraining
	f.reps[0].drainStart = f.wall
	front.ClientDeliverTraced([]byte("b\n"), 2)
	f.pump()
	vc := f.conns[0]
	if vc.rep != 1 {
		t.Fatalf("conn still on replica %d after drain boundary", vc.rep)
	}
	st := f.Stats()
	if st.Drains != 1 || st.Handoffs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if f.touched[2] {
		t.Error("boundary move marked the request touched (no bytes were forwarded)")
	}
}

// With no healthy peer, a draining replica keeps serving: degraded beats
// stalled, and the drain deadline extends rather than forcing conns off.
func TestDrainWithoutPeerKeepsServing(t *testing.T) {
	f, fakes := fleetOf(t, Config{Replicas: 1}, echoMode)
	front := f.Connect(80)
	// Drive the balancer internals directly: a Slice's health check would
	// end a zero-occupancy drain immediately, but the boundary and expiry
	// logic must still hold while the state is draining.
	f.reps[0].state = repDraining
	f.reps[0].drainStart = f.wall
	front.ClientDeliverTraced([]byte("a\n"), 1)
	f.pump() // boundary check: no healthy peer, so the request stays put
	if st := f.Stats(); st.Drains != 0 || st.Handoffs != 0 {
		t.Errorf("stats = %+v", st)
	}
	f.expireDrain(f.reps[0])
	if f.conns[0].closed {
		t.Fatal("drain expiry with no peer closed the conn")
	}
	(*fakes)[0].Run(0)
	f.pump()
	wantResp(t, front, "a\n")
}

// Drain deadline expiry: an unanswered request is forced off and replays
// on a healthy replica (satellite: drain deadline expiry).
func TestDrainExpiryReplaysUnansweredRequest(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
		if rep == 0 && inc == 0 {
			return "hold"
		}
		return "echo"
	})
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7) // read by replica 0, never answered
	f.reps[0].state = repDraining
	f.reps[0].drainStart = f.wall
	f.expireDrain(f.reps[0])
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("slice = %+v", out)
	}
	wantResp(t, front, "ping\n")
	st := f.Stats()
	if st.DrainExpired != 1 || st.Handoffs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !f.touched[7] {
		t.Error("forced-off request not marked touched")
	}
}

// A conn already mid-response at the drain deadline cannot be replayed
// (response bytes already reached the client): it closes and the client
// reconnects.
func TestDrainExpiryClosesMidResponseConn(t *testing.T) {
	f, _ := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
		if rep == 0 && inc == 0 {
			return "partial"
		}
		return "echo"
	})
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7)
	if got := string(front.ClientTake()); got != "pi" {
		t.Fatalf("partial response = %q", got)
	}
	f.reps[0].state = repDraining
	f.reps[0].drainStart = f.wall
	f.expireDrain(f.reps[0])
	if !front.ServerClosed() {
		t.Fatal("mid-response conn not closed at drain expiry")
	}
	if st := f.Stats(); st.DrainExpired != 0 || st.Handoffs != 0 || st.ConnsClosed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// A client that resets mid-drain is dropped from the drain set: the reset
// propagates to the replica (its read sees ECONNRESET) and the conn is
// neither handed off nor counted lost (satellite: client reset mid-drain).
func TestClientResetMidDrain(t *testing.T) {
	f, fakes := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
		if rep == 0 && inc == 0 {
			return "hold"
		}
		return "echo"
	})
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7)
	f.reps[0].state = repDraining
	f.reps[0].drainStart = f.wall
	front.ClientReset()
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("slice = %+v", out)
	}
	if !f.conns[0].closed || f.reps[0].outstanding != 0 {
		t.Errorf("conn closed=%v outstanding=%d", f.conns[0].closed, f.reps[0].outstanding)
	}
	if st := f.Stats(); st.Handoffs != 0 || st.ConnsLost != 0 || st.ConnsClosed != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len((*fakes)[0].fds) != 0 {
		t.Error("replica did not observe the reset (conn fd still open)")
	}
	f.expireDrain(f.reps[0])
	if st := f.Stats(); st.DrainExpired != 0 {
		t.Error("reset conn was still in the drain set at expiry")
	}
}

// With one replica, a death parks in-flight-capable conns until the
// supervisor's backoff is served; the wall fast-forwards through the idle
// gap and the replay lands on the next incarnation.
func TestParkedConnReplaysAfterReboot(t *testing.T) {
	f, fakes := fleetOf(t, Config{Replicas: 1}, func(rep, inc int) string {
		if inc == 0 {
			return "hold"
		}
		return "echo"
	})
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7)
	rebootEarliest := f.wall + 10_000 // BackoffBase
	(*fakes)[0].die = true
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("slice = %+v", out)
	}
	wantResp(t, front, "ping\n")
	st := f.Stats()
	if st.Parked != 1 || st.Failovers != 1 || st.Boots != 2 {
		t.Errorf("stats = %+v", st)
	}
	if f.wall < rebootEarliest {
		t.Errorf("wall %d did not fast-forward past the backoff point %d", f.wall, rebootEarliest)
	}
}

// A replica crashing its way through the breaker window goes broken; with
// every replica broken the fleet itself traps and refuses connections.
func TestBreakerExhaustionTrapsFleet(t *testing.T) {
	sup := quickSup()
	sup.MaxRestarts = 2
	var fakes []*fakeRep
	f := New(Config{Replicas: 1, Port: 80, Sup: sup}, func(rep, inc int, seed int64) (*Backend, error) {
		fr := newFake(t, 80, "echo")
		fr.die = true
		fakes = append(fakes, fr)
		return &Backend{OS: fr.os, Exec: fr}, nil
	})
	out := f.Slice(0)
	if out.Kind != interp.OutTrapped || out.Code != 7 {
		t.Fatalf("slice = %+v", out)
	}
	if f.Connect(80) != nil {
		t.Error("broken fleet accepted a connection")
	}
	st := f.Stats()
	if st.Boots != 3 || st.Deaths != 3 || st.BreakersOpen != 1 {
		t.Errorf("stats = %+v", st)
	}
	if ph := f.ReplicaPhase(0); ph != supervisor.PhaseBreakerOpen {
		t.Errorf("phase = %v", ph)
	}
}

// The occupancy-driven drain lifecycle end to end: a death fills the
// breaker window to the drain threshold, the reboot comes back draining,
// and the occupancy decaying below the threshold returns it to rotation.
func TestDrainFollowsWindowOccupancy(t *testing.T) {
	sup := quickSup()
	sup.WindowCycles = 60_000
	sup.BackoffBase = 200
	f, fakes := fleetOf(t, Config{Replicas: 2, Sup: sup, DrainWindow: 1}, echoMode)
	(*fakes)[0].die = true
	if out := f.Slice(0); out.Kind != interp.OutBlocked {
		t.Fatalf("slice = %+v", out)
	}
	// The wall reaching the backoff point reboots the replica; it comes
	// back with window occupancy 1 and the health check drains it.
	draining := false
	for i := 0; i < 50 && !draining; i++ {
		if out := f.Slice(0); out.Kind != interp.OutBlocked {
			t.Fatalf("slice = %+v", out)
		}
		draining = f.Draining(0)
	}
	if !draining {
		t.Fatal("rebooted replica not draining at window occupancy 1")
	}
	if st := f.Stats(); st.DrainsStarted != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The shared clock advancing past the window forgives the restart:
	// occupancy decays to zero and the replica rejoins the rotation.
	back := false
	for i := 0; i < 2000 && !back; i++ {
		if out := f.Slice(0); out.Kind != interp.OutBlocked {
			t.Fatalf("slice = %+v", out)
		}
		back = !f.Draining(0)
	}
	if !back {
		t.Fatal("replica never left the draining state as the window decayed")
	}
	if f.reps[0].state != repUp {
		t.Fatalf("state = %v", f.reps[0].state)
	}
}

func TestFinishFreezesOrderedSpansAndMetrics(t *testing.T) {
	f, fakes := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
		if rep == 0 && inc == 0 {
			return "hold"
		}
		return "echo"
	})
	front := f.Connect(80)
	send(t, f, front, "ping\n", 7)
	(*fakes)[0].die = true
	f.Slice(0)
	wantResp(t, front, "ping\n")
	if f.ReqDone(7, true) != true {
		t.Error("failed-over request not reported touched at ReqDone")
	}
	f.Finish()
	f.Finish() // idempotent
	spans := f.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Cycles < spans[i-1].Cycles {
			t.Fatalf("span %d out of order: %d after %d", i, spans[i].Cycles, spans[i-1].Cycles)
		}
	}
	st := f.Stats()
	counts := map[string]int{}
	for _, e := range spans {
		counts[e.Kind]++
	}
	if counts[obsv.SpanReplicaUp] != st.Boots || counts[obsv.SpanReplicaDown] != st.Deaths ||
		counts[obsv.SpanHandoff] != st.Handoffs || counts[obsv.SpanReqDone] != int(st.ReqsDone) {
		t.Errorf("span counts %v vs stats %+v", counts, st)
	}
	reg := f.Registry()
	for name, want := range map[string]int64{
		"fleet.boots": int64(st.Boots), "fleet.deaths": int64(st.Deaths),
		"fleet.handoffs": int64(st.Handoffs), "fleet.failovers": int64(st.Failovers),
		"fleet.req_done": st.ReqsDone, "fleet.replicas": int64(st.Replicas),
		"supervisor.incarnations": int64(st.Boots),
		"supervisor.state_lost":   int64(st.Deaths),
	} {
		if got := reg.Total(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// The same scripted scenario replays byte-identically: stats, spans and
// the wall clock are pure functions of the seed and the script.
func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, []obsv.SpanEvent, int64) {
		f, fakes := fleetOf(t, Config{Replicas: 2}, func(rep, inc int) string {
			if rep == 0 && inc == 0 {
				return "hold"
			}
			return "echo"
		})
		fronts := make([]*libsim.Conn, 3)
		for i := range fronts {
			fronts[i] = f.Connect(80)
		}
		for i, fr := range fronts {
			send(t, f, fr, "ping\n", int64(i+1))
		}
		(*fakes)[0].die = true
		f.Slice(0)
		for _, fr := range fronts {
			fr.ClientTake()
		}
		f.Finish()
		return f.Stats(), f.Spans(), f.Cycles()
	}
	s1, sp1, w1 := run()
	s2, sp2, w2 := run()
	if s1 != s2 || w1 != w2 {
		t.Errorf("stats/wall diverged: %+v @%d vs %+v @%d", s1, w1, s2, w2)
	}
	if !reflect.DeepEqual(sp1, sp2) {
		t.Error("span logs diverged across identical runs")
	}
}
