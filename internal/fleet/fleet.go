// Package fleet is the tier above the recovery escalation ladder: a
// deterministic, cycle-domain L4 load balancer that owns the listening
// endpoint and proxies byte streams to N replica backends, each a full
// supervised server with its own escalation ladder, per-incarnation seed
// and supervisor.
//
// The balancer consumes the ladder's signals as health state. A replica
// whose crash-loop breaker opened is down for good; one whose supervisor
// is waiting out a reboot backoff takes no traffic until the shared cycle
// clock catches up to its reboot point; one whose breaker window is
// filling up is drained — no new assignments, quiesced requests allowed
// to finish, a deadline forcing the stragglers off. When a replica dies,
// connections whose request has not begun answering fail over to a
// healthy replica (the buffered request bytes are replayed); everything
// else is closed toward the client, which reconnects through the
// balancer.
//
// Everything is cycle-domain deterministic: the fleet wall clock is the
// maximum replica campaign clock, replicas are driven in id order, and
// idle replicas are advanced to the wall each round, so a fleet campaign
// is byte-identical for a fixed seed at any harness parallelism.
package fleet

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/supervisor"
)

// Pick policies.
const (
	PolicyRoundRobin       = "round-robin"
	PolicyLeastOutstanding = "least-outstanding"
)

// Handoff causes (span Cause values on SpanHandoff events).
const (
	CauseFailover     = "failover"      // the conn's replica died mid-request
	CauseDrain        = "drain"         // moved at a request boundary off a draining replica
	CauseDrainExpired = "drain-expired" // forced off at the drain deadline
)

// Exec abstracts the replica's execution engine so tests can script
// replicas without a compiled program; MachineExec adapts the real
// interpreter.
type Exec interface {
	// Run advances the replica up to budget instructions and reports how
	// it stopped (blocked, step limit, trapped, exited).
	Run(budget int64) interp.Outcome
	// Cycles and Steps report the engine's monotonic cost-model clocks.
	Cycles() int64
	Steps() int64
}

type machineExec struct{ m *interp.Machine }

func (r machineExec) Run(budget int64) interp.Outcome { return r.m.Run(budget) }
func (r machineExec) Cycles() int64                   { return r.m.Cycles }
func (r machineExec) Steps() int64                    { return r.m.Steps }

// MachineExec adapts an interpreter machine to the Exec interface.
func MachineExec(m *interp.Machine) Exec { return machineExec{m} }

// Backend is one booted replica incarnation as the balancer sees it.
type Backend struct {
	OS   *libsim.OS
	Exec Exec
	RT   *core.Runtime // nil when the replica has no hardened runtime
}

// BootFunc boots one replica incarnation: a fresh OS/machine (and
// usually a hardened runtime with spans enabled and its quiesce point
// armed), listening on the fleet's port. The seed is the replica
// supervisor's per-incarnation seed.
type BootFunc func(replica, incarnation int, seed int64) (*Backend, error)

// Config parameterizes the fleet.
type Config struct {
	// Replicas is the number of supervised backends (default 1).
	Replicas int

	// Policy selects the pick policy for new assignments: PolicyRoundRobin
	// (default) or PolicyLeastOutstanding.
	Policy string

	// Port is the endpoint the balancer serves and every replica listens on.
	Port int64

	// Sup is the per-replica supervision policy. Replica r supervises with
	// Seed + SeedStride*r so incarnation seeds never collide across
	// replicas.
	Sup        supervisor.Config
	SeedStride int64 // default 1_000_000

	// DrainWindow is the breaker-window occupancy at which a replica is
	// drained instead of taking new work (default MaxRestarts-1, min 1):
	// one more death inside the window would open its breaker.
	DrainWindow int

	// DrainCycles is the drain deadline: conns still on a draining replica
	// this many cycles after the drain began are forced off (default 2M).
	DrainCycles int64

	// SpanLimit bounds the balancer's own span log (0 = obsv default).
	SpanLimit int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Policy == "" {
		c.Policy = PolicyRoundRobin
	}
	if c.SeedStride == 0 {
		c.SeedStride = 1_000_000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 2_000_000
	}
	if c.DrainWindow == 0 {
		mr := c.Sup.MaxRestarts
		if mr == 0 {
			mr = 8 // supervisor default
		}
		c.DrainWindow = mr - 1
		if c.DrainWindow < 1 {
			c.DrainWindow = 1
		}
	}
	return c
}

// Stats is the fleet's accounting. The published fleet.* metrics and the
// balancer span log reconcile exactly with it.
type Stats struct {
	Replicas int

	Boots  int // replica-up spans: incarnations booted (including firsts)
	Deaths int // replica-down spans: incarnations that trapped or exited

	Handoffs     int // live connections migrated between replicas (all causes)
	Failovers    int // handoffs caused by a replica death
	Drains       int // handoffs at a request boundary off a draining replica
	DrainExpired int // handoffs forced at the drain deadline
	Parked       int // migrations that had to wait for a replica to boot

	DrainsStarted int // drain episodes the health check opened
	BreakersOpen  int // replicas whose crash-loop breaker opened

	ConnsClosed int // fronts closed toward the client (any reason)
	ConnsLost   int // conns a death closed with no fail-over (RecordDeath's count)

	// Terminal accounting: the balancer is the driver's trace sink, so
	// req-done/req-lost totals live here (replica runtimes count only
	// req-starts).
	ReqsDone int64
	ReqsLost int64

	// Harvested replica-runtime totals, summed across every incarnation of
	// every replica.
	Crashes       int64
	Retries       int64
	Injections    int64
	Unrecovered   int64
	Sheds         int64
	ShedConnsLost int64
	ReqStarts     int64
	Dropped       int64
}

type repState int

const (
	repDown     repState = iota // waiting out a reboot backoff (or never booted)
	repUp                       // serving, assignable
	repDraining                 // serving residual conns only; no new assignments
	repBroken                   // crash-loop breaker open: down for good
)

// replica is one supervised backend slot.
type replica struct {
	id          int
	sup         *supervisor.Supervisor
	be          *Backend
	state       repState
	inc         int   // current incarnation number
	bootClock   int64 // campaign clock at the incarnation's boot (span rebase offset)
	lastCycles  int64 // Exec.Cycles at the last supervisor Advance
	rebootAt    int64 // campaign clock at which the next incarnation is due
	drainStart  int64 // wall clock when the current drain episode began
	outstanding int   // live conns assigned here
}

func (rep *replica) live() bool { return rep.state == repUp || rep.state == repDraining }

// connPhase tracks where a front connection is in its request cycle.
type connPhase int

const (
	phaseIdle    connPhase = iota // at a request boundary: safe to reassign without replay
	phaseRequest                  // a request is buffered/forwarded with no response bytes yet
)

// vconn is one virtual connection: the client-facing front plus the
// current back connection into a replica. The balancer buffers the
// in-flight request so it can be replayed on fail-over.
type vconn struct {
	id    int64
	front *libsim.Conn
	back  *libsim.Conn
	rep   int // owning replica, -1 = parked (waiting for an assignable one)

	inflight []byte // current request bytes (the replay buffer)
	fwd      int    // bytes of inflight already delivered to the back
	trace    int64  // current request's trace ID (0 = untraced)
	started  bool   // the back's server consumed the request's first bytes
	phase    connPhase

	// Migration bookkeeping: set when the conn is detached, consumed by
	// the attach that completes the handoff.
	handoffCause string
	from         int

	closed bool
}

// refreshStarted latches whether the back's server promoted the conn's
// trace (its first read of the request happened) — the flag that decides
// whether a replay is re-stamped with the trace ID (exactly one req-start
// per trace).
func (vc *vconn) refreshStarted() {
	if vc.back != nil && vc.trace != 0 && !vc.started && vc.back.Trace() == vc.trace {
		vc.started = true
	}
}

// Fleet is the L4 balancer over N supervised replicas. It implements
// workload.Server (the driver connects, slices and reads the clock
// through it) and workload.TraceSink (terminal request outcomes are
// balancer-level events — requests outlive replica incarnations).
type Fleet struct {
	cfg  Config
	boot BootFunc
	reps []*replica

	conns []*vconn
	nconn int64
	rr    int // round-robin cursor

	wall      int64 // fleet wall clock: max replica campaign clock
	stepsDone int64 // steps of harvested incarnations

	spans    obsv.SpanLog // balancer events + terminals, wall-stamped
	repSpans []obsv.SpanEvent
	merged   []obsv.SpanEvent
	touched  map[int64]bool
	reg      *obsv.Registry
	stats    Stats

	lastTrap int64
	err      error
	finished bool
}

// New builds a fleet; nothing boots until the first Slice.
func New(cfg Config, boot BootFunc) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:     cfg,
		boot:    boot,
		touched: map[int64]bool{},
		reg:     obsv.NewRegistry(),
	}
	f.spans.Limit = cfg.SpanLimit
	for i := 0; i < cfg.Replicas; i++ {
		sc := cfg.Sup
		sc.Seed = cfg.Sup.Seed + cfg.SeedStride*int64(i)
		f.reps = append(f.reps, &replica{id: i, sup: supervisor.New(sc)})
	}
	f.stats.Replicas = cfg.Replicas
	return f
}

// Err returns the first boot error (the campaign is unusable past it).
func (f *Fleet) Err() error { return f.err }

// Registry returns the fleet's metrics registry: per-incarnation runtime
// metrics (labelled by replica), per-replica supervisor metrics, and the
// fleet.* counters, all landed by harvest/Finish.
func (f *Fleet) Registry() *obsv.Registry { return f.reg }

// Stats returns a snapshot of the fleet accounting.
func (f *Fleet) Stats() Stats { return f.stats }

// SupStats returns replica i's supervisor accounting.
func (f *Fleet) SupStats(i int) supervisor.Stats { return f.reps[i].sup.Stats() }

// ReplicaPhase returns replica i's supervisor phase (tests, health
// introspection).
func (f *Fleet) ReplicaPhase(i int) supervisor.Phase { return f.reps[i].sup.Phase() }

// Draining reports whether replica i is currently draining.
func (f *Fleet) Draining(i int) bool { return f.reps[i].state == repDraining }

// Spans returns the merged campaign span log: every incarnation's runtime
// spans (rebased onto the campaign clock, stamped with replica and
// incarnation), every supervisor's reboot/breaker events, and the
// balancer's own replica-up/replica-down/handoff/terminal events, in
// non-decreasing cycle order. Valid after Finish.
func (f *Fleet) Spans() []obsv.SpanEvent {
	return append([]obsv.SpanEvent(nil), f.merged...)
}

// --- workload.Server -----------------------------------------------------

// Connect opens a client connection through the balancer. The front conn
// is detached (owned Go-side); a back conn is attached immediately when a
// replica is assignable, otherwise on a later pump. Returns nil when
// every replica's breaker is open.
func (f *Fleet) Connect(port int64) *libsim.Conn {
	if port != f.cfg.Port || f.allBroken() || f.err != nil {
		return nil
	}
	f.nconn++
	vc := &vconn{id: f.nconn, front: libsim.NewConn(), rep: -1, from: -1}
	f.conns = append(f.conns, vc)
	if t := f.pick(); t >= 0 {
		f.attach(vc, t)
	}
	return vc.front
}

// Cycles returns the fleet wall clock (the driver's throughput and
// latency clock).
func (f *Fleet) Cycles() int64 { return f.wall }

// Steps returns retired instructions across all incarnations.
func (f *Fleet) Steps() int64 {
	steps := f.stepsDone
	for _, rep := range f.reps {
		if rep.be != nil {
			steps += rep.be.Exec.Steps()
		}
	}
	return steps
}

// Slice advances the whole fleet until nothing makes progress: health
// transitions, due reboots, byte pumping, and one Run per live replica
// per round, with deaths handled (fail-over, park, close) as they occur.
// Returns OutBlocked while any replica can still serve, OutTrapped once
// every replica's breaker is open (or a boot failed).
func (f *Fleet) Slice(budget int64) interp.Outcome {
	if budget <= 0 {
		budget = 2_000_000
	}
	f.compact()
	for {
		progress := false
		f.refreshHealth()
		if f.bootDue() {
			progress = true
		}
		if f.err != nil || f.allBroken() {
			return interp.Outcome{Kind: interp.OutTrapped, Code: f.lastTrap}
		}
		if f.pump() {
			progress = true
		}
		limited := false
		for _, rep := range f.reps {
			if !rep.live() {
				continue
			}
			out := rep.be.Exec.Run(budget)
			if delta := rep.be.Exec.Cycles() - rep.lastCycles; delta > 0 {
				rep.lastCycles = rep.be.Exec.Cycles()
				rep.sup.Advance(delta)
			}
			if rep.sup.Clock() > f.wall {
				f.wall = rep.sup.Clock()
			}
			switch out.Kind {
			case interp.OutTrapped:
				f.lastTrap = out.Code
				f.replicaDied(rep, "trapped", fmt.Sprintf("code=%d", out.Code))
				progress = true
			case interp.OutExited:
				f.replicaDied(rep, "exited", fmt.Sprintf("code=%d", out.Code))
				progress = true
			case interp.OutStepLimit:
				limited = true
			}
		}
		// Idle catch-up: live replicas that ran less than the round's
		// leader still experienced the time — aligning their campaign
		// clocks with the wall keeps backoff windows and drain decay on
		// one shared time domain.
		for _, rep := range f.reps {
			if !rep.live() {
				continue
			}
			if gap := f.wall - rep.sup.Clock(); gap > 0 {
				rep.sup.Advance(gap)
			}
		}
		if f.pump() {
			progress = true
		}
		if limited || !progress {
			break
		}
	}
	return interp.Outcome{Kind: interp.OutBlocked}
}

// compact drops retired vconns once they dominate the table, keeping pump
// linear in live connections across a long churny campaign.
func (f *Fleet) compact() {
	if len(f.conns) < 64 {
		return
	}
	live := 0
	for _, vc := range f.conns {
		if !vc.closed {
			live++
		}
	}
	if live*2 >= len(f.conns) {
		return
	}
	kept := f.conns[:0]
	for _, vc := range f.conns {
		if !vc.closed {
			kept = append(kept, vc)
		}
	}
	f.conns = kept
}

// --- workload.TraceSink --------------------------------------------------

// ReqDone records a validated (ok) or rejected (!ok) response and reports
// whether recovery machinery — on any incarnation of any replica, or the
// balancer's own fail-over path — touched the request.
func (f *Fleet) ReqDone(trace int64, ok bool) bool {
	f.stats.ReqsDone++
	detail := "ok"
	if !ok {
		detail = "bad"
	}
	f.spans.Append(obsv.SpanEvent{Cycles: f.wall, Trace: trace, Kind: obsv.SpanReqDone, Detail: detail})
	return f.wasTouched(trace)
}

// ReqLost records a traced request that can never complete.
func (f *Fleet) ReqLost(trace int64, cause string) {
	f.stats.ReqsLost++
	f.spans.Append(obsv.SpanEvent{Cycles: f.wall, Trace: trace, Kind: obsv.SpanReqLost, Cause: cause})
}

// wasTouched consults the balancer's own touch set (handoffs, harvested
// incarnations) and every live runtime.
func (f *Fleet) wasTouched(trace int64) bool {
	if f.touched[trace] {
		return true
	}
	for _, rep := range f.reps {
		if rep.be != nil && rep.be.RT != nil && rep.be.RT.WasTouched(trace) {
			return true
		}
	}
	return false
}

// --- health and boot -----------------------------------------------------

func (f *Fleet) allBroken() bool {
	for _, rep := range f.reps {
		if rep.state != repBroken {
			return false
		}
	}
	return true
}

func (f *Fleet) anyUp() bool {
	for _, rep := range f.reps {
		if rep.state == repUp {
			return true
		}
	}
	return false
}

// refreshHealth applies the ladder's health signals: a replica whose
// breaker window occupancy reached DrainWindow drains (one more death
// would open its breaker); occupancy decaying below the threshold ends
// the drain; a drain past its deadline forces the remaining conns off.
func (f *Fleet) refreshHealth() {
	for _, rep := range f.reps {
		switch rep.state {
		case repUp:
			if f.cfg.Replicas > 1 && rep.sup.WindowOccupancy() >= f.cfg.DrainWindow {
				rep.state = repDraining
				rep.drainStart = f.wall
				f.stats.DrainsStarted++
			}
		case repDraining:
			if rep.sup.WindowOccupancy() < f.cfg.DrainWindow {
				rep.state = repUp
				rep.drainStart = 0
			} else if f.wall-rep.drainStart >= f.cfg.DrainCycles {
				f.expireDrain(rep)
			}
		}
	}
}

// bootDue boots every down replica whose backoff the shared clock has
// served (in id order). When nothing is live the wall fast-forwards to
// the earliest due reboot — idle time with no replica serving.
func (f *Fleet) bootDue() bool {
	booted := false
	for f.err == nil {
		due := -1
		for _, rep := range f.reps {
			if rep.state == repDown && rep.rebootAt <= f.wall {
				due = rep.id
				break
			}
		}
		if due < 0 {
			live := false
			for _, rep := range f.reps {
				if rep.live() {
					live = true
					break
				}
			}
			if !live {
				for _, rep := range f.reps {
					if rep.state != repDown {
						continue
					}
					if due < 0 || rep.rebootAt < f.reps[due].rebootAt {
						due = rep.id
					}
				}
				if due >= 0 {
					f.wall = f.reps[due].rebootAt
				}
			}
		}
		if due < 0 {
			break
		}
		f.bootReplica(f.reps[due])
		booted = true
	}
	return booted
}

// bootReplica boots the next incarnation of a down replica. The boot is
// charged on the replica's own clock only — replicas boot concurrently in
// wall time (the wall is the max, not the sum), and the end-of-round idle
// catch-up rejoins any laggard with the shared time domain.
func (f *Fleet) bootReplica(rep *replica) {
	inc, seed := rep.sup.BeginIncarnation()
	rep.bootClock = rep.sup.Clock()
	be, err := f.boot(rep.id, inc, seed)
	if err != nil {
		f.err = fmt.Errorf("fleet: replica %d incarnation %d: %w", rep.id, inc, err)
		rep.state = repBroken
		return
	}
	rep.be = be
	rep.inc = inc
	rep.lastCycles = be.Exec.Cycles() // startup-to-quiesce cycles
	rep.sup.Advance(rep.lastCycles)
	if rep.sup.Clock() > f.wall {
		f.wall = rep.sup.Clock()
	}
	rep.state = repUp
	rep.drainStart = 0
	f.stats.Boots++
	f.spans.Append(obsv.SpanEvent{
		Cycles:  rep.sup.Clock(),
		Replica: rep.id + 1,
		Inc:     inc + 1,
		Kind:    obsv.SpanReplicaUp,
		Detail:  fmt.Sprintf("seed=%d", seed),
	})
}

// --- connection plumbing -------------------------------------------------

// pick selects an up replica for a new assignment under the configured
// policy, or -1 when none is assignable. Draining, down and broken
// replicas never receive new work.
func (f *Fleet) pick() int {
	if f.cfg.Policy == PolicyLeastOutstanding {
		best := -1
		for _, rep := range f.reps {
			if rep.state != repUp {
				continue
			}
			if best < 0 || rep.outstanding < f.reps[best].outstanding {
				best = rep.id
			}
		}
		return best
	}
	n := len(f.reps)
	for k := 0; k < n; k++ {
		i := (f.rr + k) % n
		if f.reps[i].state == repUp {
			f.rr = i + 1
			return i
		}
	}
	return -1
}

// attach connects vc into replica t. When the attachment completes a
// migration (handoffCause set by migrate) it emits the handoff span —
// carrying the trace ID only if the request already started somewhere,
// so the span never references a trace with no req-start.
func (f *Fleet) attach(vc *vconn, t int) bool {
	back := f.reps[t].be.OS.Connect(f.cfg.Port)
	if back == nil {
		return false // listener backlog full; retried on a later pump
	}
	vc.back = back
	vc.rep = t
	vc.fwd = 0
	f.reps[t].outstanding++
	if vc.handoffCause != "" {
		f.stats.Handoffs++
		switch vc.handoffCause {
		case CauseFailover:
			f.stats.Failovers++
		case CauseDrain:
			f.stats.Drains++
		case CauseDrainExpired:
			f.stats.DrainExpired++
		}
		var tr int64
		if vc.started {
			tr = vc.trace
		}
		f.spans.Append(obsv.SpanEvent{
			Cycles:  f.wall,
			Replica: t + 1,
			Inc:     f.reps[t].inc + 1,
			Trace:   tr,
			Kind:    obsv.SpanHandoff,
			Cause:   vc.handoffCause,
			Detail:  fmt.Sprintf("conn=%d from=%d", vc.id, vc.from+1),
		})
		vc.handoffCause = ""
	}
	return true
}

// migrate detaches vc from its replica for the given cause and tries to
// place it immediately; with no assignable replica it parks until one
// boots. A request that had already been (partially) delivered to the old
// back counts as touched by recovery — its completion went through the
// fail-over machinery.
func (f *Fleet) migrate(vc *vconn, cause string) {
	if vc.rep >= 0 {
		f.reps[vc.rep].outstanding--
	}
	if vc.trace != 0 && vc.fwd > 0 {
		f.touched[vc.trace] = true
	}
	vc.from = vc.rep
	vc.rep = -1
	vc.back = nil
	vc.fwd = 0
	vc.handoffCause = cause
	if t := f.pick(); t < 0 || !f.attach(vc, t) {
		f.stats.Parked++
	}
}

// release retires a vconn.
func (f *Fleet) release(vc *vconn) {
	if vc.rep >= 0 {
		f.reps[vc.rep].outstanding--
	}
	vc.rep = -1
	vc.back = nil
	vc.closed = true
	f.stats.ConnsClosed++
}

// closeFront propagates a server-side close to the client and retires the
// vconn; the driver observes ServerClosed and reconnects.
func (f *Fleet) closeFront(vc *vconn) {
	vc.front.CloseServer()
	f.release(vc)
}

// drainBack forwards everything the back's server has written toward the
// client. The first response byte of a request moves the conn to the
// idle phase: from here a replay would duplicate response bytes, so the
// conn is no longer fail-over capable until the next request.
func (f *Fleet) drainBack(vc *vconn) bool {
	if vc.back == nil {
		return false
	}
	out := vc.back.ClientTake()
	if len(out) == 0 {
		return false
	}
	vc.front.ProxyDeliver(out)
	vc.phase = phaseIdle
	return true
}

// pump moves bytes through every live vconn: client hangs and server
// closes propagate, new request bytes are buffered (and drain-boundary
// moves happen), parked conns retry attachment, buffered requests flush
// to the back, and responses flow to the front. Reports whether anything
// changed — the Slice progress signal.
func (f *Fleet) pump() bool {
	progress := false
	for _, vc := range f.conns {
		if vc.closed {
			continue
		}
		vc.refreshStarted()
		if vc.started {
			// Mirror the back-end promotion onto the client-facing front:
			// a pipelining client gates its next traced request on the
			// server having started this one, and the front is the only
			// endpoint it can observe.
			vc.front.PromoteTrace(vc.trace)
		}

		// Client gone (FIN or RST): propagate and drop — a conn whose
		// client left is never failed over.
		if vc.front.ClientGone() {
			if vc.back != nil {
				if vc.front.ClientResetSeen() {
					vc.back.ClientReset()
				} else {
					vc.back.ClientClose()
				}
			}
			f.release(vc)
			progress = true
			continue
		}

		// Back closed by the server (request shed, app-level close):
		// forward any final bytes, then propagate the close.
		if vc.back != nil && vc.back.ServerClosed() {
			if f.drainBack(vc) {
				progress = true
			}
			f.closeFront(vc)
			progress = true
			continue
		}

		// Buffer new client bytes; a trace stamp (or an idle phase) marks
		// a request boundary and resets the replay buffer.
		if data, tr := vc.front.ProxyTake(); len(data) > 0 {
			if tr != 0 || vc.phase == phaseIdle {
				vc.inflight = vc.inflight[:0]
				vc.fwd = 0
				vc.trace = tr
				vc.started = false
				vc.phase = phaseRequest
			}
			vc.inflight = append(vc.inflight, data...)
			progress = true
		}

		// Drain boundary: a fresh request on a draining replica moves to a
		// healthy one before any bytes reach the old back — but only when
		// a healthy one exists; with no peer up the draining replica keeps
		// serving (degraded beats stalled).
		if vc.rep >= 0 && f.reps[vc.rep].state == repDraining &&
			vc.phase == phaseRequest && vc.fwd == 0 && f.anyUp() {
			f.migrate(vc, CauseDrain)
		}

		// Parked (no assignable replica at detach time): retry.
		if vc.rep < 0 {
			t := f.pick()
			if t < 0 || !f.attach(vc, t) {
				continue
			}
			progress = true
		}

		// Flush the request to the back. A replay of a request the old
		// server never started is re-stamped with the trace so the new
		// server's first read still fires the one req-start; a started
		// request replays untraced (its req-start already happened).
		if vc.fwd < len(vc.inflight) {
			chunk := vc.inflight[vc.fwd:]
			if vc.fwd == 0 && vc.trace != 0 && !vc.started {
				vc.back.ClientDeliverTraced(chunk, vc.trace)
			} else {
				vc.back.ClientDeliver(chunk)
			}
			vc.fwd = len(vc.inflight)
			progress = true
		}

		if f.drainBack(vc) {
			progress = true
		}
	}
	return progress
}

// --- death, drain expiry, harvest ---------------------------------------

// replicaDied harvests the dead incarnation and disposes of its
// connections: a conn already shed by the dying server propagates its
// close (never replayed — the request was deliberately dropped); a conn
// whose request has not begun answering fails over with its buffered
// request; everything else closes toward the client. The loss count
// feeds the supervisor's RecordDeath, whose backoff decides the replica's
// reboot point (or opens its breaker).
func (f *Fleet) replicaDied(rep *replica, cause, detail string) {
	now := rep.sup.Clock()
	f.harvest(rep)
	// Not assignable from here on: the fail-over picks below must never
	// land a connection back on the replica that is dying.
	rep.state = repDown
	lost := 0
	for _, vc := range f.conns {
		if vc.closed || vc.rep != rep.id {
			continue
		}
		vc.refreshStarted()
		if vc.back.ServerClosed() {
			f.drainBack(vc)
			f.closeFront(vc)
			continue
		}
		f.drainBack(vc)
		if vc.phase == phaseRequest {
			f.migrate(vc, CauseFailover)
		} else {
			f.closeFront(vc)
			lost++
		}
	}
	f.stats.Deaths++
	f.stats.ConnsLost += lost
	backoff, open := rep.sup.RecordDeath(rep.inc, lost)
	f.spans.Append(obsv.SpanEvent{
		Cycles:  now,
		Replica: rep.id + 1,
		Inc:     rep.inc + 1,
		Kind:    obsv.SpanReplicaDown,
		Cause:   cause,
		Detail:  fmt.Sprintf("%s conns_lost=%d", detail, lost),
	})
	rep.be = nil
	if open {
		rep.state = repBroken
		f.stats.BreakersOpen++
	} else {
		rep.state = repDown
		rep.rebootAt = now + backoff
	}
}

// expireDrain forces the remaining conns off a replica whose drain
// deadline passed: unanswered requests replay elsewhere, conns
// mid-response close (the client reconnects). With no healthy peer the
// deadline extends instead — a drain cannot complete into nowhere.
func (f *Fleet) expireDrain(rep *replica) {
	if !f.anyUp() {
		rep.drainStart = f.wall
		return
	}
	for _, vc := range f.conns {
		if vc.closed || vc.rep != rep.id {
			continue
		}
		vc.refreshStarted()
		if vc.back.ServerClosed() {
			f.drainBack(vc)
			f.closeFront(vc)
			continue
		}
		f.drainBack(vc)
		if vc.phase == phaseRequest {
			f.migrate(vc, CauseDrainExpired)
		} else {
			f.closeFront(vc)
		}
	}
	rep.drainStart = f.wall
}

// harvest folds a finished (or dying) incarnation's runtime accounting
// into the fleet: stats, recovery-touched traces, published metrics
// (labelled by replica), and spans rebased from incarnation-local cycles
// onto the campaign clock, stamped with the replica and incarnation that
// produced them.
func (f *Fleet) harvest(rep *replica) {
	be := rep.be
	if be == nil {
		return
	}
	f.stepsDone += be.Exec.Steps()
	if be.RT == nil {
		return
	}
	st := be.RT.Stats()
	f.stats.Crashes += st.Crashes
	f.stats.Retries += st.Retries
	f.stats.Injections += st.Injections
	f.stats.Unrecovered += st.Unrecovered
	f.stats.Sheds += st.Sheds
	f.stats.ShedConnsLost += st.ShedConnsLost
	f.stats.ReqStarts += st.ReqStarts
	for _, tr := range be.RT.TouchedTraces() {
		f.touched[tr] = true
	}
	for _, e := range be.RT.Spans() {
		e.Cycles += rep.bootClock
		e.Seq = 0
		e.Replica = rep.id + 1
		e.Inc = rep.inc + 1
		f.repSpans = append(f.repSpans, e)
	}
	f.stats.Dropped += be.RT.TraceDropped()
	be.RT.PublishMetrics(f.reg, obsv.L("replica", strconv.Itoa(rep.id+1)))
}

// Finish ends the campaign after the driver's run: live incarnations are
// harvested and their supervisors marked done, per-replica supervisor
// metrics and spans land, the fleet.* counters publish, and the merged
// span log is frozen in non-decreasing cycle order.
func (f *Fleet) Finish() {
	if f.finished {
		return
	}
	f.finished = true
	for _, rep := range f.reps {
		if rep.be != nil {
			f.harvest(rep)
			rep.sup.Finish()
			rep.be = nil
		}
		rep.sup.PublishMetrics(f.reg, obsv.L("replica", strconv.Itoa(rep.id+1)))
		for _, e := range rep.sup.Spans() {
			e.Seq = 0
			e.Replica = rep.id + 1
			f.repSpans = append(f.repSpans, e)
		}
	}
	all := append(f.repSpans, f.spans.Events()...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Cycles < all[j].Cycles })
	for i := range all {
		all[i].Seq = 0
	}
	f.merged = all
	f.stats.Dropped += f.spans.Dropped()
	f.publishMetrics()
}

// publishMetrics lands the fleet.* counters; they reconcile exactly with
// Stats and with the balancer span counts.
func (f *Fleet) publishMetrics() {
	st := f.stats
	f.reg.Gauge("fleet.replicas").Set(int64(st.Replicas))
	f.reg.Counter("fleet.boots").Add(int64(st.Boots))
	f.reg.Counter("fleet.deaths").Add(int64(st.Deaths))
	f.reg.Counter("fleet.handoffs").Add(int64(st.Handoffs))
	f.reg.Counter("fleet.failovers").Add(int64(st.Failovers))
	f.reg.Counter("fleet.drains").Add(int64(st.Drains))
	f.reg.Counter("fleet.drain_expired").Add(int64(st.DrainExpired))
	f.reg.Counter("fleet.parked").Add(int64(st.Parked))
	f.reg.Counter("fleet.drains_started").Add(int64(st.DrainsStarted))
	f.reg.Counter("fleet.breakers_open").Add(int64(st.BreakersOpen))
	f.reg.Counter("fleet.conns_closed").Add(int64(st.ConnsClosed))
	f.reg.Counter("fleet.conns_lost").Add(int64(st.ConnsLost))
	f.reg.Counter("fleet.req_done").Add(st.ReqsDone)
	f.reg.Counter("fleet.req_lost").Add(st.ReqsLost)
}
