package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMapAndAccess(t *testing.T) {
	s := NewSpace()
	if err := s.Map(GlobalBase, 100); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := s.Store(GlobalBase+8, 0x1122334455667788, 8); err != nil {
		t.Fatalf("Store: %v", err)
	}
	v, err := s.Load(GlobalBase+8, 8)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("Load = %#x", v)
	}
}

func TestLoadWidthsZeroExtend(t *testing.T) {
	s := NewSpace()
	if err := s.Map(HeapBase, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(HeapBase, -1, 8); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		width int
		want  int64
	}{
		{1, 0xff},
		{2, 0xffff},
		{4, 0xffffffff},
		{8, -1},
	}
	for _, tt := range tests {
		got, err := s.Load(HeapBase, tt.width)
		if err != nil {
			t.Fatalf("Load width %d: %v", tt.width, err)
		}
		if got != tt.want {
			t.Errorf("Load width %d = %#x, want %#x", tt.width, got, tt.want)
		}
	}
}

func TestUnmappedAccessTraps(t *testing.T) {
	s := NewSpace()
	if _, err := s.Load(0, 8); !errors.Is(err, ErrUnmapped) {
		t.Errorf("null load error = %v, want ErrUnmapped", err)
	}
	if err := s.Store(0x123456, 1, 8); !errors.Is(err, ErrUnmapped) {
		t.Errorf("wild store error = %v, want ErrUnmapped", err)
	}
	var ae *AccessError
	err := s.Store(0x40, 1, 4)
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an AccessError", err)
	}
	if ae.Addr != 0x40 || !ae.Write || ae.Width != 4 {
		t.Errorf("AccessError = %+v", ae)
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := NewSpace()
	addr := int64(GlobalBase + PageSize - 4)
	if err := s.Map(GlobalBase, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(addr, 0x0123456789abcdef, 8); err != nil {
		t.Fatalf("cross-page store: %v", err)
	}
	v, err := s.Load(addr, 8)
	if err != nil {
		t.Fatalf("cross-page load: %v", err)
	}
	if v != 0x0123456789abcdef {
		t.Fatalf("cross-page roundtrip = %#x", v)
	}
}

func TestCrossPageIntoUnmappedFails(t *testing.T) {
	s := NewSpace()
	if err := s.Map(GlobalBase, PageSize); err != nil {
		t.Fatal(err)
	}
	addr := int64(GlobalBase + PageSize - 4)
	if err := s.Store(addr, 1, 8); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("store spilling into unmapped page: err = %v, want ErrUnmapped", err)
	}
}

func TestUnmapRemovesWholePagesOnly(t *testing.T) {
	s := NewSpace()
	if err := s.Map(HeapBase, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	// Unmap a range that only fully covers the middle page.
	if err := s.Unmap(HeapBase+100, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if !s.Mapped(HeapBase, PageSize) {
		t.Error("first (partially covered) page was unmapped")
	}
	if s.Mapped(HeapBase+PageSize, PageSize) {
		t.Error("fully covered middle page still mapped")
	}
	if !s.Mapped(HeapBase+2*PageSize, PageSize) {
		t.Error("last (partially covered) page was unmapped")
	}
}

func TestBadRanges(t *testing.T) {
	s := NewSpace()
	if err := s.Map(100, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("Map size 0: %v", err)
	}
	if err := s.Map(-5, 10); !errors.Is(err, ErrBadRange) {
		t.Errorf("Map negative: %v", err)
	}
	if err := s.Unmap(100, -1); !errors.Is(err, ErrBadRange) {
		t.Errorf("Unmap negative: %v", err)
	}
	if s.Mapped(100, 0) {
		t.Error("Mapped(size 0) = true")
	}
}

func TestRSSAccounting(t *testing.T) {
	s := NewSpace()
	if err := s.Map(HeapBase, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if got := s.RSS(); got != 4*PageSize {
		t.Errorf("RSS = %d, want %d", got, 4*PageSize)
	}
	if err := s.Unmap(HeapBase, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if got := s.RSS(); got != 0 {
		t.Errorf("RSS after unmap = %d, want 0", got)
	}
	if got := s.PeakPages(); got != 4 {
		t.Errorf("PeakPages = %d, want 4", got)
	}
}

func TestReadWriteBytes(t *testing.T) {
	s := NewSpace()
	if err := s.Map(GlobalBase, PageSize); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, firestarter")
	if err := s.WriteBytes(GlobalBase+10, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBytes(GlobalBase+10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("ReadBytes = %q", got)
	}
}

func TestReadCString(t *testing.T) {
	s := NewSpace()
	if err := s.Map(GlobalBase, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(GlobalBase, append([]byte("abc"), 0)); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCString(GlobalBase, 100)
	if err != nil || got != "abc" {
		t.Fatalf("ReadCString = %q, %v", got, err)
	}
	if _, err := s.ReadCString(GlobalBase, 2); err == nil {
		t.Error("ReadCString within limit 2 should fail (no NUL)")
	}
}

func TestStoreLoadRoundtripProperty(t *testing.T) {
	s := NewSpace()
	if err := s.Map(HeapBase, 16*PageSize); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, val int64) bool {
		addr := HeapBase + int64(off)
		if err := s.Store(addr, val, 8); err != nil {
			return false
		}
		got, err := s.Load(addr, 8)
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineHelpers(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 64 || LineAddr(130) != 128 {
		t.Error("LineAddr rounding wrong")
	}
	first, second, spans := LinesTouched(60, 8)
	if !spans || first != 0 || second != 64 {
		t.Errorf("LinesTouched(60,8) = %d,%d,%v", first, second, spans)
	}
	first, _, spans = LinesTouched(64, 8)
	if spans || first != 64 {
		t.Errorf("LinesTouched(64,8) = %d,%v", first, spans)
	}
}

func TestZeroValueSpaceUsable(t *testing.T) {
	var s Space
	if err := s.Map(GlobalBase, 8); err != nil {
		t.Fatalf("zero-value Map: %v", err)
	}
	if err := s.Store(GlobalBase, 7, 8); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load(GlobalBase, 8)
	if err != nil || v != 7 {
		t.Fatalf("zero-value roundtrip = %d, %v", v, err)
	}
}
