package mem

import (
	"errors"
	"testing"
)

// TestUnmapInvalidatesTLB is the fails-if-broken regression test for the
// Unmap/TLB contract: every unmapped page must leave the translation
// cache, including pages unmapped by partially-covering ranges. If Unmap
// forgot the TLB (delete the pages map entry only), a warm cache entry
// would keep serving the stale page and the post-unmap access would
// silently succeed instead of trapping.
func TestUnmapInvalidatesTLB(t *testing.T) {
	s := NewSpace()
	if err := s.Map(HeapBase, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	// Warm the TLB on every page we are about to unmap.
	for p := int64(0); p < 4; p++ {
		if err := s.Store(HeapBase+p*PageSize, 0x42+p, 8); err != nil {
			t.Fatalf("warm store page %d: %v", p, err)
		}
	}
	// Partial unmap: the range starts and ends mid-page, so only the two
	// fully covered middle pages go away; the edge pages stay mapped.
	if err := s.Unmap(HeapBase+100, 3*PageSize-50); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		page   int64
		mapped bool
	}{
		{0, true}, {1, false}, {2, false}, {3, true},
	} {
		_, err := s.Load(HeapBase+tc.page*PageSize, 8)
		if tc.mapped && err != nil {
			t.Errorf("page %d: expected mapped, Load err = %v", tc.page, err)
		}
		if !tc.mapped && !errors.Is(err, ErrUnmapped) {
			t.Errorf("page %d: unmapped page served from stale TLB entry (err = %v, want ErrUnmapped)", tc.page, err)
		}
	}
}

// TestUnmapInvalidatesAliasedTLBSlot covers the direct-mapped collision
// case: two pages tlbSize apart share a cache slot, and unmapping one
// must not leave the slot pointing at the dead page.
func TestUnmapInvalidatesAliasedTLBSlot(t *testing.T) {
	s := NewSpace()
	lo := int64(HeapBase)
	hi := lo + tlbSize*PageSize // same slot as lo
	if err := s.Map(lo, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(hi, PageSize); err != nil {
		t.Fatal(err)
	}
	// Touch hi then lo: the shared slot now holds lo.
	if err := s.Store(hi, 1, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(lo, 2, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(lo, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(lo, 8); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped page behind warm aliased slot: err = %v, want ErrUnmapped", err)
	}
	if v, err := s.Load(hi, 8); err != nil || v != 1 {
		t.Fatalf("aliasing survivor page: v=%d err=%v, want 1, nil", v, err)
	}
}

func TestDomainsOffIsUnchecked(t *testing.T) {
	s := NewSpace()
	if err := s.Map(ArenaBase, PageSize); err != nil {
		t.Fatal(err)
	}
	// Without EnableDomains even a tag would not be consulted; accesses
	// from the (implicit) shared domain succeed.
	if err := s.Store(ArenaBase, 7, 8); err != nil {
		t.Fatalf("domains-off store: %v", err)
	}
	if v, err := s.Load(ArenaBase, 8); err != nil || v != 7 {
		t.Fatalf("domains-off load: v=%d err=%v", v, err)
	}
}

func TestCrossDomainAccessTraps(t *testing.T) {
	s := NewSpace()
	s.EnableDomains()
	if err := s.Map(ArenaBase, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.TagDomain(ArenaBase, PageSize, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.TagDomain(ArenaBase+PageSize, PageSize, 4); err != nil {
		t.Fatal(err)
	}

	// Shared domain (0) may not touch a tagged page.
	err := s.Store(ArenaBase, 1, 8)
	if !errors.Is(err, ErrDomain) {
		t.Fatalf("shared->dom3 store err = %v, want ErrDomain", err)
	}
	var de *DomainError
	if !errors.As(err, &de) || de.Dom != 3 || de.Cur != 0 || !de.Write {
		t.Fatalf("DomainError = %+v", de)
	}

	// The owning domain may.
	s.SetDomain(3)
	if err := s.Store(ArenaBase, 11, 8); err != nil {
		t.Fatalf("dom3 store to own page: %v", err)
	}
	if v, err := s.Load(ArenaBase, 8); err != nil || v != 11 {
		t.Fatalf("dom3 load of own page: v=%d err=%v", v, err)
	}
	// ... but not a sibling domain's page.
	if _, err := s.Load(ArenaBase+PageSize, 8); !errors.Is(err, ErrDomain) {
		t.Fatalf("dom3->dom4 load err = %v, want ErrDomain", err)
	}
	// Shared pages stay reachable from any domain.
	if err := s.Map(HeapBase, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(HeapBase, 9, 8); err != nil {
		t.Fatalf("dom3 store to shared page: %v", err)
	}
}

func TestCrossDomainStraddlingAccessTraps(t *testing.T) {
	s := NewSpace()
	s.EnableDomains()
	if err := s.Map(ArenaBase, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.TagDomain(ArenaBase+PageSize, PageSize, 5); err != nil {
		t.Fatal(err)
	}
	// An 8-byte store straddling from an untagged page into a foreign
	// domain's page must take the slow-path check too.
	addr := int64(ArenaBase + PageSize - 4)
	if err := s.Store(addr, 1, 8); !errors.Is(err, ErrDomain) {
		t.Fatalf("straddling store err = %v, want ErrDomain", err)
	}
	if _, err := s.Load(addr, 8); !errors.Is(err, ErrDomain) {
		t.Fatalf("straddling load err = %v, want ErrDomain", err)
	}
}

// TestDomainTeardownThroughUnmap checks that tearing a domain region down
// with Unmap clears both the TLB entries and the domain tags: after a
// remap of the same range, the pages are shared (domain 0) again and
// reachable from any domain — a stale tag would make the recycled slab
// trap for its next owner.
func TestDomainTeardownThroughUnmap(t *testing.T) {
	s := NewSpace()
	s.EnableDomains()
	if err := s.Map(ArenaBase, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.TagDomain(ArenaBase, 2*PageSize, 7); err != nil {
		t.Fatal(err)
	}
	s.SetDomain(7)
	if err := s.Store(ArenaBase, 1, 8); err != nil { // warm the TLB
		t.Fatal(err)
	}
	s.SetDomain(0)
	if err := s.Unmap(ArenaBase, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(ArenaBase, 8); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("post-teardown load err = %v, want ErrUnmapped", err)
	}
	if d := s.PageDomain(ArenaBase); d != 0 {
		t.Fatalf("PageDomain after Unmap = %d, want 0", d)
	}
	if err := s.Map(ArenaBase, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(ArenaBase, 2, 8); err != nil {
		t.Fatalf("recycled region store from shared domain: %v", err)
	}
}

func TestTagDomainErrors(t *testing.T) {
	s := NewSpace()
	s.EnableDomains()
	if err := s.TagDomain(ArenaBase, PageSize, 1); !errors.Is(err, ErrUnmapped) {
		t.Errorf("tag of unmapped page: err = %v, want ErrUnmapped", err)
	}
	if err := s.TagDomain(ArenaBase, -1, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("tag of negative range: err = %v, want ErrBadRange", err)
	}
}
