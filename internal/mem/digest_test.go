package mem

import "testing"

func TestDigestReflectsContentAndAddress(t *testing.T) {
	var a, b Space
	for _, s := range []*Space{&a, &b} {
		if err := s.Map(GlobalBase, 2*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatal("identical empty spaces digest differently")
	}
	if err := a.Store(GlobalBase+8, 42, 8); err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Fatal("content change did not move the digest")
	}
	if err := b.Store(GlobalBase+8, 42, 8); err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("converged spaces digest differently")
	}
	// Same bytes at a different address is a different image.
	if err := b.Store(GlobalBase+8, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(GlobalBase+16, 42, 8); err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Fatal("relocated content digests equal")
	}
}

func TestDigestIsReadOnly(t *testing.T) {
	var s Space
	if err := s.Map(HeapBase, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(HeapBase, 7, 8); err != nil {
		t.Fatal(err)
	}
	d1 := s.Digest()
	d2 := s.Digest()
	if d1 != d2 {
		t.Fatal("repeated digest differs")
	}
	v, err := s.Load(HeapBase, 8)
	if err != nil || v != 7 {
		t.Fatalf("load after digest = %d, %v", v, err)
	}
}
