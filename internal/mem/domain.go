// Heap protection domains: an MPK-style tagging model over the paged
// space. Every mapped page carries a domain ID (0 = shared, the default);
// the space holds a current-domain register, and scalar guest accesses
// (Load/Store — the interpreter's memory traffic) to a page tagged with a
// foreign non-zero domain fail with a DomainError, which the interpreter
// converts into a fail-stop trap exactly like a segfault. Bulk operations
// (ReadBytes/WriteBytes/ReadInto/ReadCString) model kernel copies and are
// deliberately unchecked, mirroring how PKU register state does not
// constrain the kernel; the libsim write-path audit (WriteTaints) covers
// that gap for containment checking instead.
//
// The checks are entirely off the fast path until EnableDomains is called:
// a disabled space adds a single always-false branch per access and no map
// lookups, so the cost model and all existing outputs are unchanged.
package mem

import (
	"errors"
	"fmt"
)

// Arena segment: per-request bump-pointer arenas are carved from this
// range, between the heap and the stack segments, so a domain-tagged
// arena address is never confused with an ordinary heap or stack address.
const (
	ArenaBase  = 0x6000_0000
	ArenaLimit = 0x7000_0000
)

// ErrDomain is returned for a guest access to a page owned by a foreign
// protection domain. The interpreter turns it into a fail-stop trap
// (TrapDomain), a new crash cause attributed like any other.
var ErrDomain = errors.New("mem: cross-domain access")

// DomainError describes a cross-domain access; it wraps ErrDomain so
// callers can match with errors.Is while recovering the faulting address
// and the two domains involved.
type DomainError struct {
	Addr  int64
	Width int
	Write bool
	Dom   int32 // owning domain of the touched page
	Cur   int32 // current domain register at the time of access
}

// Error implements error.
func (e *DomainError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: %s of %d bytes at %#x owned by domain %d (current domain %d)",
		kind, e.Width, e.Addr, e.Dom, e.Cur)
}

// Unwrap makes errors.Is(err, ErrDomain) hold.
func (e *DomainError) Unwrap() error { return ErrDomain }

// EnableDomains switches on domain checking for this space. Before the
// first call every access behaves exactly as without the feature.
func (s *Space) EnableDomains() {
	s.domOn = true
	if s.pageDom == nil {
		s.pageDom = make(map[int64]int32)
	}
}

// DomainsEnabled reports whether domain checking is on.
func (s *Space) DomainsEnabled() bool { return s.domOn }

// SetDomain sets the current-domain register. Domain 0 is the shared
// domain: code running in it may touch only untagged pages, and pages
// tagged 0 are accessible from every domain.
func (s *Space) SetDomain(d int32) { s.curDom = d }

// CurrentDomain returns the current-domain register.
func (s *Space) CurrentDomain() int32 { return s.curDom }

// TagDomain tags every page covering [addr, addr+size) with dom. The
// range must be mapped. Tagging with 0 clears the tag.
func (s *Space) TagDomain(addr, size int64, dom int32) error {
	if size <= 0 || addr < 0 || addr+size < addr {
		return fmt.Errorf("%w: tag [%#x, +%d)", ErrBadRange, addr, size)
	}
	if s.pageDom == nil {
		s.pageDom = make(map[int64]int32)
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if _, ok := s.pages[p]; !ok {
			return fmt.Errorf("%w: tag of unmapped page %#x", ErrUnmapped, p*PageSize)
		}
		if dom == 0 {
			delete(s.pageDom, p)
		} else {
			s.pageDom[p] = dom
		}
	}
	return nil
}

// PageDomain returns the domain tag of the page containing addr (0 for
// untagged or unmapped pages).
func (s *Space) PageDomain(addr int64) int32 {
	if s.pageDom == nil || addr < 0 {
		return 0
	}
	return s.pageDom[addr/PageSize]
}

// domDeny reports whether the current domain may not access pageIdx,
// returning the owning domain. Only called with s.domOn set.
func (s *Space) domDeny(pageIdx int64) (int32, bool) {
	d := s.pageDom[pageIdx]
	return d, d != 0 && d != s.curDom
}

// domCheckRange applies the domain check to every page of a
// page-straddling scalar access (the slow path of Load/Store).
func (s *Space) domCheckRange(addr int64, width int, write bool) error {
	first := addr / PageSize
	last := (addr + int64(width) - 1) / PageSize
	for p := first; p <= last; p++ {
		if d, deny := s.domDeny(p); deny {
			return &DomainError{Addr: addr, Width: width, Write: write, Dom: d, Cur: s.curDom}
		}
	}
	return nil
}
