// Package mem implements the simulated 64-bit address space that protected
// programs execute against.
//
// The space is paged (4 KiB pages) and sparse: pages materialize on Map and
// any access to an unmapped page raises ErrUnmapped, which the interpreter
// converts into a fail-stop crash (the SIGSEGV of the paper's fault model).
// Three conventional segments are laid out by Layout: globals, a heap
// managed by the allocator in package libsim, and a downward-growing stack.
//
// The address space also keeps the resident-set accounting used by the
// Fig. 9 memory-overhead experiment.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// PageSize is the size of a simulated page in bytes.
const PageSize = 4096

// Conventional segment base addresses. Address 0 is never mapped so null
// dereferences always trap.
const (
	GlobalBase = 0x0001_0000
	HeapBase   = 0x1000_0000
	HeapLimit  = 0x5000_0000
	StackTop   = 0x7fff_f000 // stack grows down from here
	StackLimit = 0x7ff0_0000 // lowest mappable stack address
)

// ErrUnmapped is returned for any access touching an unmapped page. The
// interpreter turns it into a fail-stop trap.
var ErrUnmapped = errors.New("mem: access to unmapped address")

// ErrBadRange is returned for zero/negative-length or overflowing ranges.
var ErrBadRange = errors.New("mem: invalid address range")

// AccessError describes a faulting access; it wraps ErrUnmapped so callers
// can match with errors.Is while still recovering the faulting address.
type AccessError struct {
	Addr  int64
	Width int
	Write bool
}

// Error implements error.
func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: %s of %d bytes at unmapped address %#x", kind, e.Width, e.Addr)
}

// Unwrap makes errors.Is(err, ErrUnmapped) hold.
func (e *AccessError) Unwrap() error { return ErrUnmapped }

// Space is a sparse paged address space. The zero value is ready to use.
// Space is not safe for concurrent use; the simulation is single-threaded,
// matching the paper's fault model (§VII defers multithreading).
type Space struct {
	pages map[int64]*[PageSize]byte

	// tlb is a small direct-mapped translation cache in front of the
	// page map: interpreter memory traffic alternates between a handful
	// of pages (stack, heap object, globals), so most accesses skip the
	// map lookup entirely. Entries are invalidated on Unmap; Map only
	// adds pages, which cannot stale an entry.
	tlb [tlbSize]tlbEntry

	// peakPages tracks the high-water mark of mapped pages for RSS
	// accounting (Fig. 9).
	peakPages int

	// Protection domains (see domain.go). domOn gates every check so a
	// space that never calls EnableDomains pays one predictable branch
	// per access and no map lookups.
	domOn   bool
	curDom  int32
	pageDom map[int64]int32
}

// tlbSize must be a power of two.
const tlbSize = 8

type tlbEntry struct {
	page *[PageSize]byte // nil = invalid
	idx  int64
}

// lookup translates a page index, consulting the cache first.
func (s *Space) lookup(pageIdx int64) *[PageSize]byte {
	e := &s.tlb[pageIdx&(tlbSize-1)]
	if e.page != nil && e.idx == pageIdx {
		return e.page
	}
	p, ok := s.pages[pageIdx]
	if !ok {
		return nil
	}
	e.page, e.idx = p, pageIdx
	return p
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{pages: make(map[int64]*[PageSize]byte)}
}

// Map materializes all pages covering [addr, addr+size). Already-mapped
// pages are left untouched. size must be positive.
func (s *Space) Map(addr, size int64) error {
	if size <= 0 || addr < 0 || addr+size < addr {
		return fmt.Errorf("%w: map [%#x, +%d)", ErrBadRange, addr, size)
	}
	if s.pages == nil {
		s.pages = make(map[int64]*[PageSize]byte)
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if _, ok := s.pages[p]; !ok {
			s.pages[p] = new([PageSize]byte)
		}
	}
	if len(s.pages) > s.peakPages {
		s.peakPages = len(s.pages)
	}
	return nil
}

// Unmap removes all pages fully contained in [addr, addr+size). Partial
// pages at the edges are kept mapped (mirroring munmap page rounding).
func (s *Space) Unmap(addr, size int64) error {
	if size <= 0 || addr < 0 || addr+size < addr {
		return fmt.Errorf("%w: unmap [%#x, +%d)", ErrBadRange, addr, size)
	}
	first := (addr + PageSize - 1) / PageSize
	last := (addr + size) / PageSize // exclusive
	for p := first; p < last; p++ {
		delete(s.pages, p)
		e := &s.tlb[p&(tlbSize-1)]
		if e.page != nil && e.idx == p {
			*e = tlbEntry{}
		}
		if s.pageDom != nil {
			delete(s.pageDom, p)
		}
	}
	return nil
}

// Mapped reports whether every byte of [addr, addr+size) is mapped.
func (s *Space) Mapped(addr, size int64) bool {
	if size <= 0 || addr < 0 || addr+size < addr {
		return false
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if _, ok := s.pages[p]; !ok {
			return false
		}
	}
	return true
}

// MappedPages returns the number of currently mapped pages.
func (s *Space) MappedPages() int { return len(s.pages) }

// PeakPages returns the high-water mark of mapped pages.
func (s *Space) PeakPages() int { return s.peakPages }

// RSS returns the current resident set size in bytes.
func (s *Space) RSS() int64 { return int64(len(s.pages)) * PageSize }

// Digest returns an FNV-1a hash over the mapped pages — indices in
// sorted order, then contents — identifying the guest-visible memory
// image. Domain tags and the translation cache are excluded: two spaces
// holding the same bytes at the same addresses digest equal. Read-only;
// used by the record/replay layer to compare checkpointed states.
func (s *Space) Digest() uint64 {
	idx := make([]int64, 0, len(s.pages))
	for k := range s.pages {
		idx = append(idx, k)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, k := range idx {
		u := uint64(k)
		for i := 0; i < 8; i++ {
			h = (h ^ (u>>(8*i))&0xff) * prime
		}
		pg := s.pages[k]
		for _, b := range pg {
			h = (h ^ uint64(b)) * prime
		}
	}
	return h
}

// Load reads width (1, 2, 4 or 8) bytes at addr, zero-extending to int64.
func (s *Space) Load(addr int64, width int) (int64, error) {
	// Fast path: the access sits inside a single page, which is every
	// access except the rare page-straddling one (scalars are at most
	// 8 bytes).
	if off := addr % PageSize; addr >= 0 && off <= PageSize-int64(width) {
		page := s.lookup(addr / PageSize)
		if page == nil {
			return 0, &AccessError{Addr: addr, Width: width}
		}
		if s.domOn {
			if d, deny := s.domDeny(addr / PageSize); deny {
				return 0, &DomainError{Addr: addr, Width: width, Dom: d, Cur: s.curDom}
			}
		}
		switch width {
		case 1:
			return int64(page[off]), nil
		case 2:
			return int64(binary.LittleEndian.Uint16(page[off : off+2])), nil
		case 4:
			return int64(binary.LittleEndian.Uint32(page[off : off+4])), nil
		case 8:
			return int64(binary.LittleEndian.Uint64(page[off : off+8])), nil
		default:
			return 0, fmt.Errorf("%w: load width %d", ErrBadRange, width)
		}
	}
	var buf [8]byte
	switch width {
	case 1, 2, 4, 8:
	default:
		return 0, fmt.Errorf("%w: load width %d", ErrBadRange, width)
	}
	if s.domOn && addr >= 0 {
		if err := s.domCheckRange(addr, width, false); err != nil {
			return 0, err
		}
	}
	if err := s.read(addr, buf[:width]); err != nil {
		return 0, &AccessError{Addr: addr, Width: width}
	}
	return int64(binary.LittleEndian.Uint64(buf[:8])), nil
}

// Store writes the low width bytes of val at addr.
func (s *Space) Store(addr int64, val int64, width int) error {
	switch width {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("%w: store width %d", ErrBadRange, width)
	}
	// Fast path: single-page access (see Load).
	if off := addr % PageSize; addr >= 0 && off <= PageSize-int64(width) {
		page := s.lookup(addr / PageSize)
		if page == nil {
			return &AccessError{Addr: addr, Width: width, Write: true}
		}
		if s.domOn {
			if d, deny := s.domDeny(addr / PageSize); deny {
				return &DomainError{Addr: addr, Width: width, Write: true, Dom: d, Cur: s.curDom}
			}
		}
		switch width {
		case 1:
			page[off] = byte(val)
		case 2:
			binary.LittleEndian.PutUint16(page[off:off+2], uint16(val))
		case 4:
			binary.LittleEndian.PutUint32(page[off:off+4], uint32(val))
		case 8:
			binary.LittleEndian.PutUint64(page[off:off+8], uint64(val))
		}
		return nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(val))
	if s.domOn && addr >= 0 {
		if err := s.domCheckRange(addr, width, true); err != nil {
			return err
		}
	}
	if err := s.write(addr, buf[:width]); err != nil {
		return &AccessError{Addr: addr, Width: width, Write: true}
	}
	return nil
}

// ReadBytes copies size bytes starting at addr into a fresh slice.
func (s *Space) ReadBytes(addr, size int64) ([]byte, error) {
	if size < 0 {
		return nil, fmt.Errorf("%w: read %d bytes", ErrBadRange, size)
	}
	out := make([]byte, size)
	if err := s.read(addr, out); err != nil {
		return nil, &AccessError{Addr: addr, Width: int(size)}
	}
	return out, nil
}

// ReadInto copies len(dst) bytes starting at addr into dst. It is the
// allocation-free variant of ReadBytes for callers that reuse a buffer.
func (s *Space) ReadInto(addr int64, dst []byte) error {
	if err := s.read(addr, dst); err != nil {
		return &AccessError{Addr: addr, Width: len(dst)}
	}
	return nil
}

// WriteBytes copies data into the space starting at addr.
func (s *Space) WriteBytes(addr int64, data []byte) error {
	if err := s.write(addr, data); err != nil {
		return &AccessError{Addr: addr, Width: len(data), Write: true}
	}
	return nil
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes (a safety bound against runaway reads of corrupted memory).
func (s *Space) ReadCString(addr int64, max int) (string, error) {
	out := make([]byte, 0, 32)
	for i := 0; i < max; i++ {
		b, err := s.Load(addr+int64(i), 1)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return "", fmt.Errorf("mem: unterminated string at %#x (limit %d)", addr, max)
}

func (s *Space) read(addr int64, dst []byte) error {
	if addr < 0 {
		return ErrUnmapped
	}
	for len(dst) > 0 {
		page := s.lookup(addr / PageSize)
		if page == nil {
			return ErrUnmapped
		}
		off := int(addr % PageSize)
		n := copy(dst, page[off:])
		dst = dst[n:]
		addr += int64(n)
	}
	return nil
}

func (s *Space) write(addr int64, src []byte) error {
	if addr < 0 {
		return ErrUnmapped
	}
	for len(src) > 0 {
		page := s.lookup(addr / PageSize)
		if page == nil {
			return ErrUnmapped
		}
		off := int(addr % PageSize)
		n := copy(page[off:], src)
		src = src[n:]
		addr += int64(n)
	}
	return nil
}

// CacheLineSize is the cache-line granularity (64 B) the HTM model tracks
// write sets at.
const CacheLineSize = 64

// LineAddr returns addr rounded down to its cache line.
func LineAddr(addr int64) int64 { return addr &^ (CacheLineSize - 1) }

// LinesTouched returns the cache lines covered by an access of width bytes
// at addr (one or two lines; simulated accesses are at most 8 bytes).
func LinesTouched(addr int64, width int) (first, second int64, spans bool) {
	first = LineAddr(addr)
	last := LineAddr(addr + int64(width) - 1)
	if last != first {
		return first, last, true
	}
	return first, 0, false
}
