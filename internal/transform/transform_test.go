package transform_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libmodel"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/minic"
	"github.com/firestarter-go/firestarter/internal/transform"
)

func apply(t *testing.T, src string) *transform.Result {
	t.Helper()
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := transform.Apply(prog, libmodel.Default())
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return tr
}

const gateSrc = `
int main() {
	char *p = malloc(64);
	if (!p) { return 1; }
	p[0] = 'x';
	free(p);
	return 0;
}`

func TestInputProgramUntouched(t *testing.T) {
	prog, err := minic.Compile(gateSrc, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	before := prog.InstrCount()
	if _, err := transform.Apply(prog, nil); err != nil {
		t.Fatal(err)
	}
	if prog.InstrCount() != before {
		t.Fatal("transform mutated the input program")
	}
	for _, f := range prog.Funcs {
		if f.Cloned {
			t.Fatal("input function marked cloned")
		}
	}
}

func TestGateStructure(t *testing.T) {
	tr := apply(t, gateSrc)
	f := tr.Prog.Funcs["main"]
	if !f.Cloned {
		t.Fatal("main not cloned")
	}
	var gates, txBegins, txEnds, regSaves int
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpGate:
				gates++
				if b.Instrs[i].Site == 0 {
					t.Error("gate without site ID")
				}
				then := f.Blocks[b.Instrs[i].Then]
				els := f.Blocks[b.Instrs[i].Else]
				if then.Variant != ir.TxHTM || els.Variant != ir.TxSTM {
					t.Errorf("gate targets variants %d/%d, want HTM/STM", then.Variant, els.Variant)
				}
			case ir.OpTxBegin:
				txBegins++
			case ir.OpTxEnd:
				txEnds++
			case ir.OpRegSave:
				regSaves++
			}
		}
	}
	// malloc is a gate; free is embedded (void). One gate per variant
	// copy of the block containing it.
	if gates != 2 {
		t.Errorf("gates = %d, want 2 (one per variant)", gates)
	}
	if txBegins != 2 || regSaves != 2 {
		t.Errorf("txbegins/regsaves = %d/%d, want 2/2", txBegins, regSaves)
	}
	if txEnds != 2 {
		t.Errorf("txends = %d, want 2", txEnds)
	}
	if len(tr.Gates) != 1 {
		t.Errorf("gate sites = %d, want 1", len(tr.Gates))
	}
}

func TestClonesAreInstructionParallel(t *testing.T) {
	tr := apply(t, `
int helper(int x) {
	char buf[64];
	memset(buf, x, 64);
	return buf[0];
}
int main() {
	int fd = open("/f", 0);
	if (fd < 0) { return 1; }
	int v = helper(fd);
	close(fd);
	return v;
}`)
	for _, name := range tr.Prog.FuncNames() {
		f := tr.Prog.Funcs[name]
		n := len(f.Blocks) / 2
		if len(f.Blocks) != 2*n {
			t.Fatalf("%s: odd block count %d", name, len(f.Blocks))
		}
		for i := 0; i < n; i++ {
			h, s := f.Blocks[i], f.Blocks[i+n]
			if h.Counterpart != s.ID || s.Counterpart != h.ID {
				t.Errorf("%s.b%d: counterpart links broken", name, i)
			}
			if len(h.Instrs) != len(s.Instrs) {
				t.Errorf("%s.b%d: clone instruction counts differ (%d vs %d)",
					name, i, len(h.Instrs), len(s.Instrs))
				continue
			}
			for j := range h.Instrs {
				hi, si := h.Instrs[j], s.Instrs[j]
				switch hi.Op {
				case ir.OpStore:
					if si.Op != ir.OpStmStore {
						t.Errorf("%s.b%d.%d: store not undo-instrumented in STM clone", name, i, j)
					}
				case ir.OpTxBegin:
					if si.Imm != ir.TxSTM {
						t.Errorf("%s.b%d.%d: STM clone txbegin variant %d", name, i, j, si.Imm)
					}
				case ir.OpJmp:
					if si.Then != hi.Then+n {
						t.Errorf("%s.b%d.%d: STM jmp not retargeted", name, i, j)
					}
				case ir.OpBr:
					if si.Then != hi.Then+n || si.Else != hi.Else+n {
						t.Errorf("%s.b%d.%d: STM br not retargeted", name, i, j)
					}
				case ir.OpGate:
					if si.Then != hi.Then || si.Else != hi.Else {
						t.Errorf("%s.b%d.%d: gate targets differ between clones", name, i, j)
					}
				default:
					if si.Op != hi.Op {
						t.Errorf("%s.b%d.%d: opcode mismatch %d vs %d", name, i, j, hi.Op, si.Op)
					}
				}
			}
		}
	}
}

func TestBreakCallGetsTxEndOnly(t *testing.T) {
	tr := apply(t, `
int main() {
	char buf[4];
	int rc = write(1, buf, 4);
	if (rc < 0) { return 1; }
	return 0;
}`)
	f := tr.Prog.Funcs["main"]
	gates := 0
	var txEndBeforeWrite bool
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpGate {
				gates++
			}
			if in.Op == ir.OpLib && in.Name == "write" && i > 0 && b.Instrs[i-1].Op == ir.OpTxEnd {
				txEndBeforeWrite = true
			}
		}
	}
	if gates != 0 {
		t.Errorf("write (irrecoverable) received a gate")
	}
	if !txEndBeforeWrite {
		t.Error("no txend before irrecoverable write")
	}
}

func TestCodeSizeRoughlyDoubles(t *testing.T) {
	prog, err := minic.Compile(gateSrc, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	before := prog.InstrCount()
	tr, err := transform.Apply(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := tr.Prog.InstrCount()
	if after < 2*before {
		t.Errorf("instrumented size %d < 2× original %d; cloning missing?", after, before)
	}
	if after > 3*before {
		t.Errorf("instrumented size %d > 3× original %d; unexpected bloat", after, before)
	}
}

func TestInstrumentedProgramValidates(t *testing.T) {
	tr := apply(t, `
struct req { int fd; char *buf; int len; };
int handle(struct req *r) {
	char tmp[128];
	int n = read(r->fd, tmp, 128);
	if (n <= 0) { return -1; }
	r->len = n;
	return n;
}
int main() {
	int s = socket();
	if (s < 0) { return 1; }
	if (bind(s, 80) == -1) { return 2; }
	if (listen(s, 8) == -1) { return 3; }
	struct req *r = malloc(sizeof(struct req));
	if (!r) { return 4; }
	r->fd = accept(s);
	if (r->fd >= 0) { handle(r); close(r->fd); }
	free(r);
	return 0;
}`)
	if err := tr.Prog.Validate(); err != nil {
		t.Fatalf("instrumented program invalid: %v", err)
	}
	// socket, bind, listen, malloc, read are checked through registers;
	// accept's result is stored into struct memory before the check (the
	// register tracer conservatively treats that as unchecked), and
	// close/free are unchecked → embedded.
	gates, embeds, breaks := tr.Analysis.Counts()
	if gates != 5 {
		t.Errorf("gates = %d, want 5 (socket/bind/listen/malloc/read)", gates)
	}
	if embeds != 3 {
		t.Errorf("embeds = %d, want 3 (accept/close/free)", embeds)
	}
	if breaks != 0 {
		t.Errorf("breaks = %d, want 0", breaks)
	}
}
