// Package transform implements FIRestarter's compiler transformation
// pipeline (Fig. 1 of the paper) as IR-to-IR passes:
//
//  1. Library Interface Analyzer (package analysis + package libmodel):
//     assigns site IDs and classifies every library call site as a
//     transaction Gate, an Embedded call, or a transaction Break.
//  2. Adaptive Transaction Shaper: splits basic blocks so that every Gate
//     call ends its block, inserts a transaction-end before every Gate and
//     Break call, and plants a transaction entry gate (ir.OpGate) right
//     after each Gate call.
//  3. Checkpoint Manager: clones every function into an HTM variant and an
//     STM variant (stores become undo-logged OpStmStore in the latter),
//     prepends register-save + transaction-begin instrumentation to each
//     gate target, and wires the gates to dispatch between the variants —
//     the code layout of the paper's Fig. 2/4. The clones are instruction-
//     parallel, which is what lets the interpreter's return-site flow
//     switch move between variants at the same index.
//  4. Fault Injector: instrumentation-wise this is the gate's inject path
//     (the gate writes the library call's documented error value into its
//     return register); the decision logic lives in the recovery runtime
//     (package core).
//
// The input program is left untouched; Apply returns an instrumented deep
// copy, so the vanilla program remains available as the benchmark baseline.
package transform

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/analysis"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libmodel"
)

// Result is the transformed program plus the metadata the recovery runtime
// needs at execution time.
type Result struct {
	// Prog is the instrumented program.
	Prog *ir.Program

	// Analysis is the site analysis of the instrumented program.
	Analysis *analysis.Result

	// Gates maps site ID → site for every site that received a
	// transaction entry gate.
	Gates map[int]*analysis.Site

	// Model is the library model used.
	Model *libmodel.Model
}

// Apply runs the full pipeline over a deep copy of prog.
func Apply(prog *ir.Program, model *libmodel.Model) (*Result, error) {
	if model == nil {
		model = libmodel.Default()
	}
	p := prog.Clone()

	// Pass 1: Library Interface Analyzer.
	res := analysis.Analyze(p, model)
	siteByID := res.ByID

	// Passes 2+3 per function.
	for _, name := range p.FuncNames() {
		f := p.Funcs[name]
		shapeFunc(f, siteByID)
		cloneFunc(f)
	}

	gates := make(map[int]*analysis.Site)
	for _, s := range res.Sites {
		if s.Role == analysis.RoleGate {
			gates[s.ID] = s
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("transform: instrumented program invalid: %w", err)
	}
	// Pre-resolve call and global references so instrumented programs hit
	// the interpreter's load-time fast path without another pass.
	if err := p.Resolve(); err != nil {
		return nil, fmt.Errorf("transform: resolving instrumented program: %w", err)
	}
	return &Result{Prog: p, Analysis: res, Gates: gates, Model: model}, nil
}

// shapeFunc is the Adaptive Transaction Shaper: it splits blocks at Gate
// calls and inserts transaction ends. After this pass every Gate call site
// is the second-to-last instruction of its block, followed only by an
// OpGate terminator whose Then/Else both point at the continuation block
// (retargeted to the variant clones by cloneFunc).
func shapeFunc(f *ir.Func, sites map[int]*analysis.Site) {
	// Iterate with an explicit index: blocks appended during splitting
	// must themselves be scanned.
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op != ir.OpLib {
				continue
			}
			site := sites[in.Site]
			if site == nil {
				continue
			}
			switch site.Role {
			case analysis.RoleEmbed:
				continue
			case analysis.RoleBreak:
				// Commit the running transaction before the
				// irrecoverable call; execution continues unprotected.
				b.Instrs = insertAt(b.Instrs, i, ir.Instr{Op: ir.OpTxEnd})
				i++ // skip over the call we just shifted
			case analysis.RoleGate:
				// Split: continuation moves to a fresh block.
				cont := f.NewBlock(fmt.Sprintf("%s.post%d", b.Label, in.Site))
				cont.Counterpart = -1
				cont.Instrs = append(cont.Instrs, b.Instrs[i+1:]...)
				kept := b.Instrs[:i+1]
				// [... txend, lib, gate]
				kept = insertAt(kept, i, ir.Instr{Op: ir.OpTxEnd})
				kept = append(kept, ir.Instr{
					Op:   ir.OpGate,
					Site: in.Site,
					Dst:  in.Dst,
					Then: cont.ID,
					Else: cont.ID,
				})
				b.Instrs = kept
				// Prepend the checkpoint instrumentation to the
				// continuation; the STM clone's copy becomes the
				// STM variant of it.
				cont.Instrs = append([]ir.Instr{
					{Op: ir.OpRegSave},
					{Op: ir.OpTxBegin, Site: in.Site, Imm: ir.TxHTM},
				}, cont.Instrs...)
				// The rest of this block is the gate terminator;
				// continue scanning in the continuation block (it is
				// appended, so the outer loop reaches it).
				i = len(b.Instrs)
			}
		}
	}
}

func insertAt(instrs []ir.Instr, i int, in ir.Instr) []ir.Instr {
	instrs = append(instrs, ir.Instr{})
	copy(instrs[i+1:], instrs[i:])
	instrs[i] = in
	return instrs
}

// cloneFunc is the Checkpoint Manager's code-cloning pass: the function's
// N blocks (the HTM variant) are duplicated into N STM-variant blocks with
// undo-log instrumentation, and gates/branches are wired so that a dynamic
// transaction stays on one variant until its gate decides otherwise.
func cloneFunc(f *ir.Func) {
	n := len(f.Blocks)
	for i := 0; i < n; i++ {
		orig := f.Blocks[i]
		orig.Variant = ir.TxHTM
		orig.Counterpart = i + n

		clone := &ir.Block{
			ID:          i + n,
			Label:       orig.Label + ".stm",
			Variant:     ir.TxSTM,
			Counterpart: i,
			Instrs:      make([]ir.Instr, len(orig.Instrs)),
		}
		copy(clone.Instrs, orig.Instrs)
		for j := range clone.Instrs {
			in := &clone.Instrs[j]
			if in.Args != nil {
				in.Args = append([]int(nil), in.Args...)
			}
			switch in.Op {
			case ir.OpStore:
				in.Op = ir.OpStmStore
			case ir.OpTxBegin:
				in.Imm = ir.TxSTM
			case ir.OpJmp:
				in.Then += n
			case ir.OpBr:
				in.Then += n
				in.Else += n
			case ir.OpGate:
				// Gates dispatch across variants: Then stays in the
				// HTM set, Else moves to the STM set — in both copies.
			}
		}
		f.Blocks = append(f.Blocks, clone)
	}
	// Retarget every gate's Else to the STM clone of its continuation.
	for i := 0; i < n; i++ {
		for j := range f.Blocks[i].Instrs {
			in := &f.Blocks[i].Instrs[j]
			if in.Op == ir.OpGate {
				in.Else = in.Then + n
				// Mirror into the STM copy (same index).
				cl := &f.Blocks[i+n].Instrs[j]
				cl.Then = in.Then
				cl.Else = in.Else
			}
		}
	}
	f.Cloned = true
	f.EntryHTM = 0
	f.EntrySTM = n
}
