package libmodel

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
)

func TestTableIIMatchesPaper(t *testing.T) {
	m := Default()
	if got := m.CanonicalCount(); got != 101 {
		t.Fatalf("canonical function count = %d, want 101", got)
	}
	// Paper Table II: rows are (divertable, not divertable).
	want := map[Class][2]int{
		Reversible:    {23, 0},
		NoReversion:   {9, 26},
		Deferrable:    {5, 2},
		StateRestore:  {12, 8},
		Irrecoverable: {12, 4},
	}
	got := m.TableII()
	for class, w := range want {
		if got[class] != w {
			t.Errorf("%s: got %v, want %v", class, got[class], w)
		}
	}
	divert, noDivert := 0, 0
	for _, c := range got {
		divert += c[0]
		noDivert += c[1]
	}
	if divert != 61 || noDivert != 40 {
		t.Errorf("column totals = %d/%d, want 61/40", divert, noDivert)
	}
}

func TestInjectableRules(t *testing.T) {
	m := Default()
	tests := []struct {
		name       string
		injectable bool
	}{
		{"malloc", true},     // state-restore + error-checked
		{"open", true},       // reversible + error-checked
		{"epoll_wait", true}, // idempotent + error-checked
		{"strlen", false},    // cannot report errors
		{"free", false},      // void return
		{"write", false},     // irrecoverable
		{"fork", false},      // irrecoverable and unchecked
		{"memset", false},    // no error reporting
		{"pread", true},      // the paper's Nginx SSI case study
		{"close", true},      // deferrable + error-checked
	}
	for _, tt := range tests {
		e := m.Lookup(tt.name)
		if e == nil {
			t.Errorf("Lookup(%q) = nil", tt.name)
			continue
		}
		if e.Injectable() != tt.injectable {
			t.Errorf("%s.Injectable() = %v, want %v", tt.name, e.Injectable(), tt.injectable)
		}
	}
}

func TestRecoverableRules(t *testing.T) {
	m := Default()
	for _, name := range []string{"write", "send", "rename", "fsync", "fork"} {
		if m.Lookup(name).Recoverable() {
			t.Errorf("%s should be irrecoverable", name)
		}
	}
	for _, name := range []string{"malloc", "open", "free", "strlen", "getpid"} {
		if !m.Lookup(name).Recoverable() {
			t.Errorf("%s should be recoverable", name)
		}
	}
}

func TestErrorSpecs(t *testing.T) {
	m := Default()
	if e := m.Lookup("malloc"); e.ErrorReturn != 0 || e.Errno != libsim.ENOMEM {
		t.Errorf("malloc error spec = %d/%d", e.ErrorReturn, e.Errno)
	}
	if e := m.Lookup("pread"); e.ErrorReturn != -1 || e.Errno != libsim.EINVAL {
		// The paper's Nginx case study: pread returns -1, errno EINVAL.
		t.Errorf("pread error spec = %d/%d", e.ErrorReturn, e.Errno)
	}
	if e := m.Lookup("posix_memalign"); !e.ErrnoDirect || e.ErrorReturn != libsim.ENOMEM {
		t.Errorf("posix_memalign spec = %+v", e)
	}
}

func newOS(t *testing.T) *libsim.OS {
	t.Helper()
	s := mem.NewSpace()
	if err := s.Map(mem.GlobalBase, 1<<16); err != nil {
		t.Fatal(err)
	}
	return libsim.New(s)
}

func TestCompensateMalloc(t *testing.T) {
	o := newOS(t)
	m := Default()
	p, err := o.Call("malloc", []int64{64})
	if err != nil || p == 0 {
		t.Fatalf("malloc: %v", err)
	}
	m.Lookup("malloc").Compensate(o, Call{Name: "malloc", Args: []int64{64}, Ret: p}, nil)
	if o.Heap().SizeOf(p) >= 0 {
		t.Fatal("compensation did not free the block")
	}
}

func TestCompensateOpenClosesFD(t *testing.T) {
	o := newOS(t)
	o.FS().Add("/f", []byte("x"))
	if err := o.Space.WriteBytes(mem.GlobalBase, append([]byte("/f"), 0)); err != nil {
		t.Fatal(err)
	}
	fd, err := o.Call("open", []int64{mem.GlobalBase, libsim.ORdOnly})
	if err != nil || fd < 0 {
		t.Fatalf("open: %d, %v", fd, err)
	}
	Default().Lookup("open").Compensate(o, Call{Name: "open", Ret: fd}, nil)
	if o.OpenFDs() != 0 {
		t.Fatalf("OpenFDs = %d after compensation", o.OpenFDs())
	}
}

func TestCompensateBindReleasesPort(t *testing.T) {
	o := newOS(t)
	s, _ := o.Call("socket", nil)
	if r, _ := o.Call("bind", []int64{s, 8080}); r != 0 {
		t.Fatal("bind failed")
	}
	Default().Lookup("bind").Compensate(o, Call{Name: "bind", Args: []int64{s, 8080}, Ret: 0}, nil)
	if o.ListenerOn(8080) != nil {
		t.Fatal("port still bound after compensation")
	}
	// The fd itself must remain open for the app's error handler to close.
	if o.OpenFDs() != 1 {
		t.Fatalf("OpenFDs = %d, want 1", o.OpenFDs())
	}
}

func TestCompensateSetsockoptRestoresValue(t *testing.T) {
	o := newOS(t)
	s, _ := o.Call("socket", nil)
	if _, err := o.Call("setsockopt", []int64{s, 2, 10}); err != nil {
		t.Fatal(err)
	}
	e := Default().Lookup("setsockopt")
	c := Call{Name: "setsockopt", Args: []int64{s, 2, 99}}
	aux := e.Capture(o, c)
	if _, err := o.Call("setsockopt", []int64{s, 2, 99}); err != nil {
		t.Fatal(err)
	}
	c.Ret = 0
	e.Compensate(o, c, aux)
	v, _ := o.Call("getsockopt", []int64{s, 2})
	if v != 10 {
		t.Fatalf("option value = %d after compensation, want 10", v)
	}
}

func TestCompensateReadPushesBytesBack(t *testing.T) {
	o := newOS(t)
	s, _ := o.Call("socket", nil)
	_, _ = o.Call("bind", []int64{s, 80})
	_, _ = o.Call("listen", []int64{s, 4})
	conn := o.Connect(80)
	conn.ClientDeliver([]byte("abc"))
	fd, _ := o.Call("accept", []int64{s})
	n, _ := o.Call("read", []int64{fd, mem.GlobalBase, 64})
	if n != 3 {
		t.Fatalf("read = %d", n)
	}
	e := Default().Lookup("read")
	e.Compensate(o, Call{Name: "read", Args: []int64{fd, mem.GlobalBase, 64}, Ret: n}, nil)
	// Bytes must be readable again.
	n2, _ := o.Call("read", []int64{fd, mem.GlobalBase + 0x100, 64})
	if n2 != 3 {
		t.Fatalf("re-read = %d, want 3", n2)
	}
}

func TestCompensateLseekRestoresOffset(t *testing.T) {
	o := newOS(t)
	o.FS().Add("/f", []byte("0123456789"))
	if err := o.Space.WriteBytes(mem.GlobalBase, append([]byte("/f"), 0)); err != nil {
		t.Fatal(err)
	}
	fd, _ := o.Call("open", []int64{mem.GlobalBase, libsim.ORdOnly})
	if _, err := o.Call("lseek", []int64{fd, 3, libsim.SeekSet}); err != nil {
		t.Fatal(err)
	}
	e := Default().Lookup("lseek")
	c := Call{Name: "lseek", Args: []int64{fd, 8, libsim.SeekSet}}
	aux := e.Capture(o, c)
	if _, err := o.Call("lseek", []int64{fd, 8, libsim.SeekSet}); err != nil {
		t.Fatal(err)
	}
	c.Ret = 8
	e.Compensate(o, c, aux)
	pos, _ := o.Call("lseek", []int64{fd, 0, libsim.SeekCur})
	if pos != 3 {
		t.Fatalf("offset = %d after compensation, want 3", pos)
	}
}

func TestCompensateEpollCtl(t *testing.T) {
	o := newOS(t)
	ep, _ := o.Call("epoll_create", nil)
	s, _ := o.Call("socket", nil)
	if _, err := o.Call("epoll_ctl", []int64{ep, libsim.EpollCtlAdd, s}); err != nil {
		t.Fatal(err)
	}
	e := Default().Lookup("epoll_ctl")
	e.Compensate(o, Call{Name: "epoll_ctl", Args: []int64{ep, libsim.EpollCtlAdd, s}, Ret: 0}, nil)
	// After compensation (DEL), re-adding must succeed and the watch set
	// must behave as if never added: bind+listen, connect, epoll_wait
	// should block because s is no longer watched.
	_, _ = o.Call("bind", []int64{s, 80})
	_, _ = o.Call("listen", []int64{s, 4})
	o.Connect(80)
	_, err := o.Call("epoll_wait", []int64{ep, mem.GlobalBase, 8})
	if err != libsim.ErrBlocked {
		t.Fatalf("epoll_wait after compensation: %v, want ErrBlocked", err)
	}
}

func TestEveryDivertableRecoverableHasErrorSpec(t *testing.T) {
	m := Default()
	for _, name := range m.Names() {
		e := m.Lookup(name)
		if !e.Injectable() {
			continue
		}
		// Every injectable function must document a failure mode: either
		// an errno (with any return value, e.g. malloc returns 0) or an
		// errno-direct return.
		if e.Errno == 0 && !e.ErrnoDirect {
			t.Errorf("%s is injectable but has no errno spec", name)
		}
	}
}

func TestEveryImplementedCallHasModelEntry(t *testing.T) {
	// Every function libsim implements must be classified so the
	// transform pass never meets an unknown call in the example apps.
	m := Default()
	for _, name := range []string{
		"malloc", "calloc", "realloc", "posix_memalign", "free", "mmap",
		"munmap", "memset", "memcpy", "strlen", "strcmp", "strncmp",
		"strcpy", "atoi", "socket", "setsockopt", "getsockopt", "bind",
		"listen", "accept", "read", "recv", "write", "send", "close",
		"shutdown", "fcntl", "epoll_create", "epoll_ctl", "epoll_wait",
		"open", "open64", "fstat", "stat", "pread", "pwrite", "lseek",
		"unlink", "rename", "fsync", "getpid", "time", "clock_gettime",
		"gettimeofday", "usleep", "puts", "printf", "putint",
	} {
		if m.Lookup(name) == nil {
			t.Errorf("no model entry for implemented call %q", name)
		}
	}
}

func TestDefaultMaskedReclassifiesSocketWrites(t *testing.T) {
	m := DefaultMasked()
	for _, name := range []string{"write", "send"} {
		e := m.Lookup(name)
		if e == nil || !e.Injectable() {
			t.Errorf("%s not injectable under the masked model", name)
			continue
		}
		if e.Class != StateRestore || e.Errno != libsim.EPIPE {
			t.Errorf("%s = class %v errno %d", name, e.Class, e.Errno)
		}
	}
	// The conservative model is untouched.
	if Default().Lookup("write").Injectable() {
		t.Error("Default model mutated by DefaultMasked")
	}
	// Other irrecoverables stay irrecoverable.
	if m.Lookup("fsync").Injectable() || m.Lookup("rename").Injectable() {
		t.Error("masking leaked beyond write/send")
	}
}

func TestMaskedWriteCompensationRetractsBytes(t *testing.T) {
	o := newOS(t)
	s, _ := o.Call("socket", nil)
	_, _ = o.Call("bind", []int64{s, 80})
	_, _ = o.Call("listen", []int64{s, 4})
	conn := o.Connect(80)
	fd, _ := o.Call("accept", []int64{s})

	if err := o.Space.WriteBytes(mem.GlobalBase, []byte("prefix|secret")); err != nil {
		t.Fatal(err)
	}
	// An earlier committed write stays; the masked one is retracted.
	if _, err := o.Call("write", []int64{fd, mem.GlobalBase, 7}); err != nil {
		t.Fatal(err)
	}
	e := DefaultMasked().Lookup("write")
	c := Call{Name: "write", Args: []int64{fd, mem.GlobalBase + 7, 6}}
	aux := e.Capture(o, c)
	if _, err := o.Call("write", []int64{fd, mem.GlobalBase + 7, 6}); err != nil {
		t.Fatal(err)
	}
	c.Ret = 6
	e.Compensate(o, c, aux)
	if got := string(conn.ClientTake()); got != "prefix|" {
		t.Fatalf("client sees %q after compensation, want only the committed prefix", got)
	}
}

func TestMaskedWriteOnFileIsNoopCompensation(t *testing.T) {
	o := newOS(t)
	o.FS().Add("/f", nil)
	if err := o.Space.WriteBytes(mem.GlobalBase, append([]byte("/f"), 0)); err != nil {
		t.Fatal(err)
	}
	fd, _ := o.Call("open", []int64{mem.GlobalBase, libsim.OWrOnly})
	if err := o.Space.WriteBytes(mem.GlobalBase+0x40, []byte("data")); err != nil {
		t.Fatal(err)
	}
	e := DefaultMasked().Lookup("write")
	c := Call{Name: "write", Args: []int64{fd, mem.GlobalBase + 0x40, 4}}
	aux := e.Capture(o, c)
	if aux != nil {
		t.Fatalf("Capture on a file descriptor = %v, want nil (not maskable)", aux)
	}
	if _, err := o.Call("write", []int64{fd, mem.GlobalBase + 0x40, 4}); err != nil {
		t.Fatal(err)
	}
	c.Ret = 4
	e.Compensate(o, c, aux) // must not panic or touch the file
	if f := o.FS().Lookup("/f"); string(f.Data) != "data" {
		t.Fatalf("file data = %q", f.Data)
	}
}
