// Package libmodel is the knowledge base of the Library Interface Analyzer
// (§III and §V-A of the paper): for every standard library function it
// records the recoverability class, whether fault-injection-based execution
// diversion is possible, the documented error return value and errno, and —
// for the recoverable classes — an executable compensation action that
// reverts the call's effects before a fault is injected into it.
//
// The canonical data set is the 101 functions of the paper's Table II,
// whose per-class and per-column totals this package reproduces exactly
// (23/35/7/20/16 rows; 61 divertable / 40 not). A handful of extra entries
// (marked InTable=false) cover simulation-only helpers so the runtime has
// semantics for every call the example servers make.
package libmodel

import (
	"fmt"
	"sort"

	"github.com/firestarter-go/firestarter/internal/libsim"
)

// Class is a recoverability class from Table II.
type Class int

// Recoverability classes (§V-A).
const (
	// Reversible: a revert operation exists (munmap reverts mmap,
	// close reverts open).
	Reversible Class = iota + 1
	// NoReversion: the call is idempotent and does not modify
	// application-visible state (getpid, stat).
	NoReversion
	// Deferrable: the call's effect can be deferred until the enclosing
	// transaction commits (free, close).
	Deferrable
	// StateRestore: reversible only if specific pre-call state is
	// restored (malloc needs the block freed, read needs the bytes
	// pushed back, lseek needs the old offset).
	StateRestore
	// Irrecoverable: externally visible side effects that process-local
	// operations cannot undo (write, send, rename).
	Irrecoverable
)

// String returns the class name as used in Table II.
func (c Class) String() string {
	switch c {
	case Reversible:
		return "Operation reversible"
	case NoReversion:
		return "No reversion needed"
	case Deferrable:
		return "Operation deferrable"
	case StateRestore:
		return "State restoration needed"
	case Irrecoverable:
		return "Irrecoverable"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Call records one executed library call: the runtime captures it at every
// transaction gate so the Fault Injector can compensate and divert.
type Call struct {
	Name string
	Args []int64
	Ret  int64
}

// Entry describes one library function.
type Entry struct {
	Name  string
	Class Class

	// Divertable reports whether fault-injection-based execution path
	// diversion is possible: the function documents an error return
	// that callers are expected to check (Table II's first column).
	Divertable bool

	// ErrorReturn and Errno describe the documented failure mode used
	// when injecting a fault. ErrnoDirect marks posix_memalign-style
	// functions that return the error number instead of setting errno.
	ErrorReturn int64
	Errno       int64
	ErrnoDirect bool

	// InTable marks the canonical 101 functions counted in Table II.
	InTable bool

	// Capture snapshots pre-call state needed by Compensate (e.g. the
	// file offset before lseek). It runs just before the call executes;
	// nil when no state is needed.
	Capture func(o *libsim.OS, c Call) any

	// Compensate reverts the call's effects prior to fault injection
	// (§V-B). nil for classes that need no compensation. aux is the
	// value Capture returned.
	Compensate func(o *libsim.OS, c Call, aux any)
}

// Recoverable reports whether a crash transaction starting after this call
// can be recovered at all (every class except Irrecoverable).
func (e *Entry) Recoverable() bool { return e.Class != Irrecoverable }

// Injectable reports whether the Fault Injector can divert execution at
// this call: the function must be both recoverable and divertable.
func (e *Entry) Injectable() bool { return e.Recoverable() && e.Divertable }

// Model is the complete knowledge base.
type Model struct {
	entries map[string]*Entry
}

// Lookup returns the entry for a function, or nil if unknown.
func (m *Model) Lookup(name string) *Entry { return m.entries[name] }

// Names returns all function names in sorted order.
func (m *Model) Names() []string {
	names := make([]string, 0, len(m.entries))
	for n := range m.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableII aggregates the canonical entries into the paper's Table II
// layout: counts[class][0] is the number of functions where diversion is
// possible, counts[class][1] where it is not.
func (m *Model) TableII() map[Class][2]int {
	counts := make(map[Class][2]int)
	for _, e := range m.entries {
		if !e.InTable {
			continue
		}
		c := counts[e.Class]
		if e.Divertable {
			c[0]++
		} else {
			c[1]++
		}
		counts[e.Class] = c
	}
	return counts
}

// CanonicalCount returns the number of Table II functions (101).
func (m *Model) CanonicalCount() int {
	n := 0
	for _, e := range m.entries {
		if e.InTable {
			n++
		}
	}
	return n
}

// Default builds the standard knowledge base. The function lists mirror
// Table II's totals exactly; see the package comment.
func Default() *Model {
	m := &Model{entries: make(map[string]*Entry)}

	compCloseRet := func(o *libsim.OS, c Call, _ any) {
		if c.Ret >= 0 {
			o.CloseFD(c.Ret)
		}
	}
	compFreeRet := func(o *libsim.OS, c Call, _ any) {
		if c.Ret > 0 {
			o.Heap().Free(c.Ret)
		}
	}

	// --- Operation reversible, diversion possible (23) ---------------------
	// Descriptor/region creators: reverted by closing/unmapping the result.
	for _, name := range []string{
		"open", "open64", "openat", "creat", "socket", "accept", "accept4",
		"epoll_create", "epoll_create1", "dup", "dup2", "pipe", "socketpair",
		"eventfd", "timerfd_create", "signalfd", "inotify_init",
		"memfd_create", "shm_open", "mkstemp", "fopen", "opendir",
	} {
		errno := int64(libsim.EMFILE)
		if name == "open" || name == "open64" || name == "openat" || name == "creat" || name == "fopen" || name == "opendir" {
			errno = libsim.EACCES
		}
		m.add(&Entry{
			Name: name, Class: Reversible, Divertable: true,
			ErrorReturn: -1, Errno: errno, InTable: true,
			Compensate: compCloseRet,
		})
	}
	m.add(&Entry{
		Name: "mmap", Class: Reversible, Divertable: true,
		ErrorReturn: -1, Errno: libsim.ENOMEM, InTable: true,
		Compensate: compFreeRet,
	})

	// --- No reversion needed, diversion possible (9) -----------------------
	for _, e := range []Entry{
		{Name: "stat", Errno: libsim.EACCES},
		{Name: "fstat", Errno: libsim.EBADF},
		{Name: "lstat", Errno: libsim.EACCES},
		{Name: "access", Errno: libsim.EACCES},
		{Name: "getsockname", Errno: libsim.EBADF},
		{Name: "getpeername", Errno: libsim.ENOTCONN},
		{Name: "getsockopt", Errno: libsim.EINVAL},
		{Name: "readlink", Errno: libsim.EINVAL},
		{Name: "epoll_wait", Errno: libsim.EINTR},
	} {
		e.Class = NoReversion
		e.Divertable = true
		e.ErrorReturn = -1
		e.InTable = true
		m.add(&e)
	}

	// --- No reversion needed, diversion NOT possible (26) ------------------
	// Calls that cannot report errors (strlen) or whose return values are
	// conventionally ignored (printf); their sites cannot start a
	// transaction but embed into the enclosing one.
	for _, name := range []string{
		"getpid", "getppid", "getuid", "geteuid", "getgid", "getegid",
		"time", "clock_gettime", "gettimeofday", "strlen", "strcmp",
		"strncmp", "memcmp", "htons", "ntohl", "isatty", "getenv",
		"sysconf", "getpagesize", "printf", "puts", "putchar", "snprintf",
		"random", "usleep", "atoi",
	} {
		m.add(&Entry{Name: name, Class: NoReversion, InTable: true})
	}

	// --- Operation deferrable, diversion possible (5) ----------------------
	// The deferred-action machinery (runtime) postpones the real effect to
	// commit time; at injection time there is nothing left to revert.
	for _, e := range []Entry{
		{Name: "close", Errno: libsim.EBADF},
		{Name: "fclose", Errno: libsim.EBADF},
		{Name: "closedir", Errno: libsim.EBADF},
		{Name: "munmap", Errno: libsim.EINVAL},
		{Name: "shutdown", Errno: libsim.ENOTCONN},
	} {
		e.Class = Deferrable
		e.Divertable = true
		e.ErrorReturn = -1
		e.InTable = true
		m.add(&e)
	}

	// --- Operation deferrable, diversion NOT possible (2) ------------------
	for _, name := range []string{"free", "cfree"} {
		m.add(&Entry{Name: name, Class: Deferrable, InTable: true})
	}

	// --- State restoration needed, diversion possible (12) -----------------
	for _, name := range []string{"malloc", "calloc", "realloc"} {
		m.add(&Entry{
			Name: name, Class: StateRestore, Divertable: true,
			ErrorReturn: 0, Errno: libsim.ENOMEM, InTable: true,
			Compensate: compFreeRet,
		})
	}
	m.add(&Entry{
		Name: "posix_memalign", Class: StateRestore, Divertable: true,
		ErrorReturn: libsim.ENOMEM, ErrnoDirect: true, InTable: true,
		Compensate: func(o *libsim.OS, c Call, _ any) {
			// The block address went through the out-pointer (arg 0).
			if c.Ret != 0 || len(c.Args) == 0 {
				return
			}
			if p, err := o.Space.Load(c.Args[0], 8); err == nil && p != 0 {
				o.Heap().Free(p)
			}
		},
	})
	for _, name := range []string{"read", "recv"} {
		m.add(&Entry{
			Name: name, Class: StateRestore, Divertable: true,
			ErrorReturn: -1, Errno: libsim.ECONNRESET, InTable: true,
			Compensate: func(o *libsim.OS, c Call, _ any) {
				// Push consumed bytes back so environment state matches
				// the pre-call checkpoint.
				if rec := o.LastRead(); rec != nil && len(c.Args) > 0 && rec.FD == c.Args[0] && c.Ret > 0 {
					o.Unread(rec.FD, rec.Data)
				}
			},
		})
	}
	m.add(&Entry{
		Name: "pread", Class: StateRestore, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EINVAL, InTable: true,
		// pread does not move the offset: nothing to restore.
	})
	m.add(&Entry{
		Name: "setsockopt", Class: StateRestore, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EINVAL, InTable: true,
		Capture: func(o *libsim.OS, c Call) any {
			if len(c.Args) < 2 {
				return nil
			}
			old, err := o.Call("getsockopt", []int64{c.Args[0], c.Args[1]})
			if err != nil {
				return nil
			}
			return old
		},
		Compensate: func(o *libsim.OS, c Call, aux any) {
			old, ok := aux.(int64)
			if !ok || len(c.Args) < 2 {
				return
			}
			_, _ = o.Call("setsockopt", []int64{c.Args[0], c.Args[1], old})
		},
	})
	m.add(&Entry{
		Name: "bind", Class: StateRestore, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EACCES, InTable: true,
		Compensate: func(o *libsim.OS, c Call, _ any) {
			if c.Ret == 0 && len(c.Args) >= 2 {
				o.Unbind(c.Args[1])
			}
		},
	})
	m.add(&Entry{
		Name: "listen", Class: StateRestore, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EADDRINUSE, InTable: true,
		// Re-listening is idempotent; the backlog value is harmless.
	})
	m.add(&Entry{
		Name: "epoll_ctl", Class: StateRestore, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EBADF, InTable: true,
		Compensate: func(o *libsim.OS, c Call, _ any) {
			if c.Ret != 0 || len(c.Args) < 3 {
				return
			}
			switch c.Args[1] {
			case libsim.EpollCtlAdd:
				_, _ = o.Call("epoll_ctl", []int64{c.Args[0], libsim.EpollCtlDel, c.Args[2]})
			case libsim.EpollCtlDel:
				_, _ = o.Call("epoll_ctl", []int64{c.Args[0], libsim.EpollCtlAdd, c.Args[2]})
			}
		},
	})
	m.add(&Entry{
		Name: "lseek", Class: StateRestore, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EINVAL, InTable: true,
		Capture: func(o *libsim.OS, c Call) any {
			if len(c.Args) < 1 {
				return nil
			}
			old, err := o.Call("lseek", []int64{c.Args[0], 0, libsim.SeekCur})
			if err != nil || old < 0 {
				return nil
			}
			return old
		},
		Compensate: func(o *libsim.OS, c Call, aux any) {
			old, ok := aux.(int64)
			if !ok || len(c.Args) < 1 {
				return
			}
			_, _ = o.Call("lseek", []int64{c.Args[0], old, libsim.SeekSet})
		},
	})

	// --- State restoration needed, diversion NOT possible (8) --------------
	// Memory writers whose stores the enclosing transaction captures (they
	// go through the transaction-aware store function), so rollback
	// restores them; they cannot report errors, so no diversion.
	for _, name := range []string{
		"memset", "memcpy", "memmove", "strcpy", "strncpy", "strcat",
		"sprintf", "fcntl",
	} {
		m.add(&Entry{Name: name, Class: StateRestore, InTable: true})
	}

	// --- Irrecoverable, diversion possible (12) ----------------------------
	// External effects: recovery windows end before these calls.
	for _, e := range []Entry{
		{Name: "write", Errno: libsim.EPIPE},
		{Name: "send", Errno: libsim.EPIPE},
		{Name: "pwrite", Errno: libsim.ENOSPC},
		{Name: "sendto", Errno: libsim.EPIPE},
		{Name: "sendfile", Errno: libsim.EPIPE},
		{Name: "writev", Errno: libsim.EPIPE},
		{Name: "ftruncate", Errno: libsim.EINVAL},
		{Name: "rename", Errno: libsim.EACCES},
		{Name: "unlink", Errno: libsim.EACCES},
		{Name: "mkdir", Errno: libsim.EACCES},
		{Name: "fsync", Errno: libsim.EBADF},
		{Name: "kill", Errno: libsim.EINVAL},
	} {
		e.Class = Irrecoverable
		e.Divertable = true
		e.ErrorReturn = -1
		e.InTable = true
		m.add(&e)
	}

	// --- Irrecoverable, diversion NOT possible (4) --------------------------
	for _, name := range []string{"fork", "execve", "exit", "abort"} {
		m.add(&Entry{Name: name, Class: Irrecoverable, InTable: true})
	}

	// --- Simulation-only helpers (not part of the canonical 101) -----------
	m.add(&Entry{Name: "putint", Class: NoReversion})
	m.add(&Entry{Name: "errno", Class: NoReversion})

	// --- Threads (pthread analogs; not part of the canonical 101) ----------
	// mutex_lock is a divertable boundary: pthread_mutex_lock documents
	// EINVAL, callers check it, and diverting into the error path simply
	// skips the critical section. Its compensation action releases the
	// lock, so a persistent crash inside a critical section can never
	// leak a held mutex into the injected error path (the "unlock
	// compensation" the transaction design requires).
	m.add(&Entry{
		Name: "mutex_lock", Class: StateRestore, Divertable: true,
		ErrorReturn: libsim.EINVAL, ErrnoDirect: true,
		Compensate: func(o *libsim.OS, c Call, _ any) {
			if c.Ret == 0 && o.Threads() != nil && len(c.Args) == 1 {
				o.Threads().MutexUnlock(c.Args[0]) //nolint:errcheck
			}
		},
	})
	// mutex_unlock publishes the critical section to other threads: once
	// another thread can acquire the lock the release cannot be undone,
	// so it breaks the transaction (like write); the preceding region
	// commits before the lock is dropped.
	m.add(&Entry{Name: "mutex_unlock", Class: Irrecoverable})
	// thread_create is divertable (EAGAIN, callers check for -1); its
	// compensation cancels the thread so a rolled-back create does not
	// leave a live twin running.
	m.add(&Entry{
		Name: "thread_create", Class: Reversible, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EAGAIN,
		Compensate: func(o *libsim.OS, c Call, _ any) {
			if c.Ret >= 1 && o.Threads() != nil {
				o.Threads().Cancel(c.Ret)
			}
		},
	})
	// thread_join only observes another thread; re-joining after a
	// rollback is harmless (a second join on an exited thread returns
	// immediately).
	m.add(&Entry{
		Name: "thread_join", Class: NoReversion, Divertable: true,
		ErrorReturn: -1, Errno: libsim.EINVAL,
	})

	return m
}

// DefaultMasked builds the knowledge base with the paper's proposed
// write-masking extension (§V-A): socket write/send become recoverable —
// their network-visible effect is retracted by truncating the connection's
// outbound queue back to its pre-call length, and the injected EPIPE sends
// the application down its broken-connection error path. This converts the
// most common irrecoverable transaction breaks in server code into gates,
// enlarging the recovery surface; the AblationMaskedWrites experiment
// quantifies the gain.
//
// Masking reclassifies write/send, so a Table II computed over this model
// intentionally differs from the paper's conservative table (the paper
// itself frames masking as a "less-conservative approximation"). For
// non-socket descriptors the compensation is a no-op: the injected error
// stands but the durable effect does too — the file-write caveat of the
// approximation.
func DefaultMasked() *Model {
	m := Default()
	for _, name := range []string{"write", "send"} {
		e := m.entries[name]
		masked := *e
		masked.Class = StateRestore
		masked.Divertable = true
		masked.ErrorReturn = -1
		masked.Errno = libsim.EPIPE
		masked.Capture = func(o *libsim.OS, c Call) any {
			if len(c.Args) == 0 {
				return nil
			}
			if n := o.SockOutLen(c.Args[0]); n >= 0 {
				return n
			}
			return nil // not a socket: keep irrecoverable semantics
		}
		masked.Compensate = func(o *libsim.OS, c Call, aux any) {
			if mark, ok := aux.(int64); ok && len(c.Args) > 0 {
				o.TruncateSockOut(c.Args[0], mark)
			}
		}
		m.entries[name] = &masked
	}
	return m
}

// WithArena builds the knowledge base extended with the per-request
// arena calls of the rewind-and-discard backend. arena_alloc is modelled
// exactly like malloc (state restoration needed, divertable, NULL/ENOMEM
// on failure); its compensation routes through the free handler, which
// treats arena addresses as no-ops (bump arenas reclaim wholesale).
// arena_reset is the application's request-end marker: no reversion, not
// divertable — it cannot fail. Both stay out of Table II (InTable=false)
// so the paper's 61/40 totals are untouched.
func WithArena() *Model {
	m := Default()
	m.add(&Entry{
		Name: "arena_alloc", Class: StateRestore, Divertable: true,
		ErrorReturn: 0, Errno: libsim.ENOMEM,
		Compensate: func(o *libsim.OS, c Call, _ any) {
			if c.Ret > 0 {
				// Heap fallback chunks are really freed; arena chunks
				// are bump-allocated and the transaction's rewind (or
				// the request's discard) reclaims them.
				o.Call("free", []int64{c.Ret})
			}
		},
	})
	m.add(&Entry{Name: "arena_reset", Class: NoReversion})
	return m
}

func (m *Model) add(e *Entry) {
	if _, dup := m.entries[e.Name]; dup {
		panic("libmodel: duplicate entry " + e.Name)
	}
	m.entries[e.Name] = e
}
