package bench

import (
	"fmt"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/libmodel"
)

// MaskedRow compares one server's recovery surface and survivability with
// and without write masking.
type MaskedRow struct {
	Server string

	// Recoverable surface (Table III metric).
	BaseRecoverablePct   float64
	MaskedRecoverablePct float64
	BaseBreaks           int
	MaskedBreaks         int

	// Survivability (Table IV metric) over the same fault plan.
	Injected        int
	BaseRecovered   int
	MaskedRecovered int
}

// MaskedResult is the write-masking extension experiment.
type MaskedResult struct {
	Rows []MaskedRow
}

// AblationMaskedWrites evaluates the paper's proposed §V-A extension
// ("allowing a socket write() to produce network-visible side effects that
// can be masked by injecting a network error may enable a larger recovery
// surface"): the same workloads and fault plans run under the conservative
// model and the masked model, measuring the growth in recoverable surface
// and in faults survived.
func (r Runner) AblationMaskedWrites() (MaskedResult, error) {
	r = r.withDefaults()
	var out MaskedResult
	for _, app := range apps.WebServers() {
		row := MaskedRow{Server: app.Name}

		for _, masked := range []bool{false, true} {
			var model *libmodel.Model
			if masked {
				model = libmodel.DefaultMasked()
			}
			inst, res, err := r.measure(app, bootOpts{model: model})
			if err != nil {
				return out, err
			}
			if res.ServerDied {
				return out, fmt.Errorf("masked-writes %s (masked=%v): server died", app.Name, masked)
			}
			st := inst.rt.Stats()
			gates, breaks := len(st.GateSites), len(st.BreakSites)
			pct := 0.0
			if gates+breaks > 0 {
				pct = 100 * float64(gates) / float64(gates+breaks)
			}
			if masked {
				row.MaskedRecoverablePct = pct
				row.MaskedBreaks = breaks
			} else {
				row.BaseRecoverablePct = pct
				row.BaseBreaks = breaks
			}
		}

		// Same fault plan under both models.
		faults, err := r.planFaults(app, faultinj.FailStop, r.FaultsPerServer)
		if err != nil {
			return out, err
		}
		for _, f := range faults {
			f := f
			baseInst, baseRes, err := r.measure(app, bootOpts{fault: &f})
			if err != nil {
				return out, err
			}
			maskInst, maskRes, err := r.measure(app, bootOpts{fault: &f, model: libmodel.DefaultMasked()})
			if err != nil {
				return out, err
			}
			baseTriggered := baseRes.ServerDied || baseInst.rt.Stats().Crashes > 0
			maskTriggered := maskRes.ServerDied || maskInst.rt.Stats().Crashes > 0
			if !baseTriggered && !maskTriggered {
				continue
			}
			row.Injected++
			if !baseRes.ServerDied {
				row.BaseRecovered++
			}
			if !maskRes.ServerDied {
				row.MaskedRecovered++
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the extension experiment.
func (m MaskedResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension (§V-A): masking socket writes enlarges the recovery surface\n")
	fmt.Fprintf(&sb, "%-10s %18s %18s | %8s %12s %12s\n",
		"server", "recoverable base", "recoverable mask", "injected", "recov base", "recov mask")
	for _, row := range m.Rows {
		fmt.Fprintf(&sb, "%-10s %17.1f%% %17.1f%% | %8d %12d %12d\n",
			row.Server, row.BaseRecoverablePct, row.MaskedRecoverablePct,
			row.Injected, row.BaseRecovered, row.MaskedRecovered)
	}
	return sb.String()
}
