package bench

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/htm"
)

// TestRunsAreDeterministic is the reproducibility guarantee behind every
// number in EXPERIMENTS.md: identical configuration and seed must yield
// bit-identical cycles and statistics, even with the interrupt process and
// recovery machinery active.
func TestRunsAreDeterministic(t *testing.T) {
	r := Runner{Requests: 120, Concurrency: 4, Seed: 9}
	cfg := core.Config{
		Threshold:  0.01,
		SampleSize: 4,
		HTM:        htm.Config{MeanInstrsPerInterrupt: 50_000, Seed: 9},
	}
	type fingerprint struct {
		cycles    int64
		completed int
		stats     string
	}
	run := func() fingerprint {
		inst, res, err := r.measure(apps.Nginx(), bootOpts{cfg: cfg})
		if err != nil {
			t.Fatal(err)
		}
		st := inst.rt.Stats()
		st.LatencyCycles = nil
		st.GateSites, st.EmbedSites, st.BreakSites = nil, nil, nil
		return fingerprint{
			cycles:    inst.m.Cycles,
			completed: res.Completed,
			stats:     statsKey(st),
		}
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	// A different interrupt seed must (almost surely) change something.
	cfg.HTM.Seed = 10
	inst, _, err := r.measure(apps.Nginx(), bootOpts{cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if inst.m.Cycles == a.cycles {
		t.Log("warning: different interrupt seed produced identical cycles (possible, unlikely)")
	}
}

func statsKey(st core.Stats) string {
	return fmt.Sprintf("g=%d hb=%d ha=%d sb=%d c=%d i=%d u=%d",
		st.GateExecs, st.HTMBegins, st.HTMAborts, st.STMBegins,
		st.Crashes, st.Injections, st.Unrecovered)
}

// TestObservabilityOutputIsByteDeterministic renders all three
// observability exports of a full observed run twice and requires the
// bytes to match — the cycle-domain guarantee firebench's
// -trace-out/-metrics-out/-profile files rely on.
func TestObservabilityOutputIsByteDeterministic(t *testing.T) {
	r := Runner{Requests: 80, Concurrency: 4, Seed: 9}
	run := func() [3]string {
		res, err := r.Observe("nginx")
		if err != nil {
			t.Fatal(err)
		}
		var trace, metrics, profile bytes.Buffer
		if err := res.WriteTrace(&trace); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteMetrics(&metrics); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteProfile(&profile); err != nil {
			t.Fatal(err)
		}
		if trace.Len() == 0 || metrics.Len() == 0 || profile.Len() == 0 {
			t.Fatal("empty observability export")
		}
		return [3]string{trace.String(), metrics.String(), profile.String()}
	}
	a := run()
	b := run()
	for i, name := range []string{"trace", "metrics", "profile"} {
		if a[i] != b[i] {
			t.Errorf("%s output differs between identical runs", name)
		}
	}
}

// TestThreadsRenderIdenticalAcrossParallelism runs the registry-aggregated
// threads campaign serially and with a worker pool: the rendered output
// (and therefore every metric total behind it) must be byte-identical.
func TestThreadsRenderIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign")
	}
	r := Runner{Requests: 40, Concurrency: 4, Seed: 9}
	run := func(parallelism int) string {
		r := r
		r.Parallelism = parallelism
		res, err := r.Threads()
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Errorf("threads render differs across -parallel 1 vs 4:\n--- serial\n%s\n--- parallel\n%s",
			serial, parallel)
	}
}
