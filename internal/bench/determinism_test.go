package bench

import (
	"fmt"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/htm"
)

// TestRunsAreDeterministic is the reproducibility guarantee behind every
// number in EXPERIMENTS.md: identical configuration and seed must yield
// bit-identical cycles and statistics, even with the interrupt process and
// recovery machinery active.
func TestRunsAreDeterministic(t *testing.T) {
	r := Runner{Requests: 120, Concurrency: 4, Seed: 9}
	cfg := core.Config{
		Threshold:  0.01,
		SampleSize: 4,
		HTM:        htm.Config{MeanInstrsPerInterrupt: 50_000, Seed: 9},
	}
	type fingerprint struct {
		cycles    int64
		completed int
		stats     string
	}
	run := func() fingerprint {
		inst, res, err := r.measure(apps.Nginx(), bootOpts{cfg: cfg})
		if err != nil {
			t.Fatal(err)
		}
		st := inst.rt.Stats()
		st.LatencyCycles = nil
		st.GateSites, st.EmbedSites, st.BreakSites = nil, nil, nil
		return fingerprint{
			cycles:    inst.m.Cycles,
			completed: res.Completed,
			stats:     statsKey(st),
		}
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	// A different interrupt seed must (almost surely) change something.
	cfg.HTM.Seed = 10
	inst, _, err := r.measure(apps.Nginx(), bootOpts{cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if inst.m.Cycles == a.cycles {
		t.Log("warning: different interrupt seed produced identical cycles (possible, unlikely)")
	}
}

func statsKey(st core.Stats) string {
	return fmt.Sprintf("g=%d hb=%d ha=%d sb=%d c=%d i=%d u=%d",
		st.GateExecs, st.HTMBegins, st.HTMAborts, st.STMBegins,
		st.Crashes, st.Injections, st.Unrecovered)
}
