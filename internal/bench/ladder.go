package bench

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/replay"
	"github.com/firestarter-go/firestarter/internal/supervisor"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// ladderRun is one supervised campaign: the Runner's workload driven to
// completion across as many incarnations as the supervisor allows, with
// every rung of the recovery escalation ladder armed on hardened boots
// (rollback -> STM retry -> gate injection -> request shedding ->
// supervised microreboot -> crash-loop breaker).
type ladderRun struct {
	Completed int
	Failed    int
	Cycles    int64 // workload cycles across incarnations (throughput accounting)

	// Runtime recovery counters summed across incarnations (zero for
	// vanilla campaigns, which have no runtime).
	Crashes       int64
	Retries       int64
	Injections    int64
	Unrecovered   int64
	Sheds         int64
	ShedConnsLost int64

	// Request-trace accounting summed across incarnations (hardened
	// campaigns only): starts and terminal outcomes as the runtime saw
	// them, plus the total trace IDs the drivers consumed — the campaign's
	// ID space is [1, Traces], which Chaos rebases per campaign.
	ReqStarts int64
	ReqsDone  int64
	ReqsLost  int64
	Traces    int64

	// Heap-domain accounting (all zero unless the campaign enabled the
	// rewind-and-discard strategy): runtime domain counters, libsim arena
	// counters, and the corruption-reach audit over every connection
	// write — Taints writes checked, Leaks the (must-be-empty) verdicts.
	DomainBegins     int64
	DomainCommits    int64
	DomainSwitches   int64
	DomainRetires    int64
	DomainDiscards   int64
	DomainViolations int64
	DomainLatches    int64
	ArenaAllocs      int64
	ArenaFallbacks   int64
	ArenaRetires     int64
	Taints           int64
	Leaks            []faultinj.Leak

	Sup supervisor.Stats

	// Spans holds every incarnation's runtime span events rebased onto the
	// supervisor's campaign clock and merged with the supervisor's own
	// reboot/breaker-open events, in non-decreasing cycle order.
	Spans   []obsv.SpanEvent
	Dropped int64

	// Registry accumulates each incarnation's published runtime metrics
	// plus the supervisor's; reconcile() checks it against the counters
	// above.
	Registry *obsv.Registry

	// Recordings holds the flight-recorder captures (Runner.RecordDir
	// set): one per incarnation that ended unrecovered, plus the final
	// incarnation when the breaker opened. The campaign reducers write
	// them out in job order.
	Recordings []replay.Recording
}

// ladderRun drives r.Requests against app under supervision. Hardened
// boots (o.vanilla false) get spans enabled and their quiesce point armed
// so the shedding rung is live; vanilla boots exercise the bare
// restart-on-crash policy. Residual work abandoned when the breaker opens
// is counted as Failed — never silently dropped.
func (r Runner) ladderRun(app *apps.App, o bootOpts, sc supervisor.Config) (*ladderRun, error) {
	o.backend = r.Backend
	lr := &ladderRun{Registry: obsv.NewRegistry()}
	if sc.Seed == 0 {
		sc.Seed = r.Seed
	}
	sup := supervisor.New(sc)
	remaining := r.Requests

	// Flight-recorder candidates: with RecordDir set, every incarnation
	// is captured (spans in machine-local cycles, pre-rebase) and the
	// failing ones are kept once the campaign's verdicts are known.
	type incCand struct {
		rec   replay.Recording
		unrec bool
	}
	var recCands []incCand

	err := sup.Supervise(func(inc int, seed int64) (supervisor.RunResult, error) {
		if remaining <= 0 {
			// The previous incarnation's death consumed the last of the
			// budget; its restart is already accounted, nothing to run.
			return supervisor.RunResult{Done: true}, nil
		}
		offset := sup.Clock()
		inst, err := boot(app, o)
		if err != nil {
			return supervisor.RunResult{}, err
		}
		if inst.rt != nil {
			inst.rt.EnableSpans()
			if err := armQuiesce(inst); err != nil {
				return supervisor.RunResult{}, err
			}
		}
		d := &workload.Driver{
			OS: inst.os, M: inst.m, Port: app.Port,
			Gen:         workload.ForProtocol(app.Protocol),
			Concurrency: r.Concurrency,
			Seed:        seed,
		}
		if inst.rt != nil {
			// Trace every request; IDs continue where the previous
			// incarnation stopped so the campaign's causal chains never
			// collide. (Guarded: a typed-nil *core.Runtime in the
			// interface would defeat the driver's nil check.)
			d.Sink = inst.rt
			d.TraceBase = lr.Traces
		}
		reqBefore := remaining
		res := d.Run(remaining)
		lr.Completed += res.Completed
		lr.Failed += res.BadResp
		lr.Cycles += res.Cycles
		lr.Traces += int64(res.Sent)
		remaining -= res.Completed + res.BadResp

		rr := supervisor.RunResult{Cycles: inst.m.Cycles}
		if inst.rt != nil {
			st := inst.rt.Stats()
			lr.Crashes += st.Crashes
			lr.Retries += st.Retries
			lr.Injections += st.Injections
			lr.Unrecovered += st.Unrecovered
			lr.Sheds += st.Sheds
			lr.ShedConnsLost += st.ShedConnsLost
			lr.ReqStarts += st.ReqStarts
			lr.ReqsDone += st.ReqsDone
			lr.ReqsLost += st.ReqsLost
			lr.DomainBegins += st.DomainBegins
			lr.DomainCommits += st.DomainCommits
			lr.DomainSwitches += st.DomainSwitches
			lr.DomainRetires += st.DomainRetires
			lr.DomainDiscards += st.DomainDiscards
			lr.DomainViolations += st.DomainViolations
			lr.DomainLatches += st.DomainLatches
			if inst.os.ArenasEnabled() {
				ast := inst.os.ArenaStats()
				lr.ArenaAllocs += ast.Allocs
				lr.ArenaFallbacks += ast.Fallbacks
				lr.ArenaRetires += ast.Retires
				taints := inst.os.WriteTaints()
				lr.Taints += int64(len(taints))
				lr.Leaks = append(lr.Leaks, faultinj.CheckReach(taints)...)
			}
			for _, e := range inst.rt.Spans() {
				e.Cycles += offset
				e.Seq = 0
				lr.Spans = append(lr.Spans, e)
			}
			lr.Dropped += inst.rt.TraceDropped()
			inst.rt.PublishMetrics(lr.Registry)
			if r.RecordDir != "" {
				recCands = append(recCands, incCand{
					rec: replay.RecordIncarnation(replay.IncarnationRun{
						App:         app.Name,
						Backend:     r.Backend,
						Core:        o.cfg,
						Fault:       o.fault,
						Incarnation: inc,
						Seed:        seed,
						Proto:       app.Protocol,
						Requests:    reqBefore,
						Concurrency: r.Concurrency,
						TraceBase:   d.TraceBase,
						FinalCycles: inst.m.Cycles,
						FinalSteps:  inst.m.Steps,
						Spans:       inst.rt.Spans(),
					}),
					unrec: st.Unrecovered > 0,
				})
			}
		}
		if res.ServerDied || res.Stalled {
			rr.Died = res.ServerDied
			lost := res.Outstanding
			if lost > remaining {
				lost = remaining
			}
			lr.Failed += lost
			remaining -= lost
			rr.ConnsLost = lost
			// A death is a death even when the in-flight loss drained the
			// budget: the restart is counted and the next incarnation
			// reports done without booting.
			return rr, nil
		}
		rr.Done = remaining <= 0
		return rr, nil
	})
	if err != nil {
		return nil, err
	}
	lr.Sup = sup.Stats()
	// Residual work the breaker abandoned is failed, not forgotten (the
	// old inline restart loop under-reported exactly this).
	if remaining > 0 {
		lr.Failed += remaining
	}
	sup.PublishMetrics(lr.Registry)
	lr.Spans = mergeSpans(lr.Spans, sup.Spans())
	// Keep the failing incarnations' recordings: every unrecovered one,
	// plus the final incarnation when the crash-loop breaker gave up.
	for i := range recCands {
		c := &recCands[i]
		switch {
		case c.unrec:
			c.rec.Manifest.Outcome = replay.OutcomeUnrecovered
		case lr.Sup.BreakerOpen && i == len(recCands)-1:
			c.rec.Manifest.Outcome = replay.OutcomeBreakerOpen
		default:
			continue
		}
		lr.Recordings = append(lr.Recordings, c.rec)
	}
	return lr, nil
}

// mergeSpans merges two cycle-ordered span slices, preferring a's events
// on ties (runtime events precede the supervisor's verdict about them).
func mergeSpans(a, b []obsv.SpanEvent) []obsv.SpanEvent {
	out := make([]obsv.SpanEvent, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Cycles < a[i].Cycles {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// rung names the coarsest ladder rung the campaign escalated to — the
// rung that absorbed (or failed to absorb) its fault.
func (l *ladderRun) rung() string {
	switch {
	case l.Sup.BreakerOpen:
		return "breaker-open"
	case l.Sup.Restarts > 0:
		return "rebooted"
	case l.Sheds > 0:
		return "shed"
	case l.Injections > 0:
		return "injected"
	case l.Crashes > 0:
		return "recovered"
	default:
		return "none"
	}
}

// reconcile cross-checks the campaign's three accounting surfaces —
// aggregated runtime/supervisor stats, the published metrics registry,
// and the span log — and returns every discrepancy. An empty slice means
// the ladder accounted for every fault on every surface.
func (l *ladderRun) reconcile() []string {
	var errs []string
	check := func(name string, got, want int64) {
		if got != want {
			errs = append(errs, fmt.Sprintf("%s: metric %d != stat %d", name, got, want))
		}
	}
	check("core.crashes", l.Registry.Total("core.crashes"), l.Crashes)
	check("core.retries", l.Registry.Total("core.retries"), l.Retries)
	check("core.injections", l.Registry.Total("core.injections"), l.Injections)
	check("core.unrecovered", l.Registry.Total("core.unrecovered"), l.Unrecovered)
	check("core.sheds", l.Registry.Total("core.sheds"), l.Sheds)
	check("core.shed_conns_lost", l.Registry.Total("core.shed_conns_lost"), l.ShedConnsLost)
	check("supervisor.incarnations", l.Registry.Total("supervisor.incarnations"), int64(l.Sup.Incarnations))
	check("supervisor.restarts", l.Registry.Total("supervisor.restarts"), int64(l.Sup.Restarts))
	check("supervisor.state_lost", l.Registry.Total("supervisor.state_lost"), int64(l.Sup.StateLost))
	check("supervisor.conns_lost", l.Registry.Total("supervisor.conns_lost"), int64(l.Sup.ConnsLost))
	check("supervisor.backoff_cycles_total", l.Registry.Total("supervisor.backoff_cycles_total"), l.Sup.BackoffCycles)
	var breaker int64
	if l.Sup.BreakerOpen {
		breaker = 1
	}
	check("supervisor.breaker_open", l.Registry.Total("supervisor.breaker_open"), breaker)

	// Health-surface gauges (current backoff delay, breaker window
	// occupancy) reconcile against the Stats snapshot like every counter.
	check("supervisor.backoff_cycles", l.Registry.Total("supervisor.backoff_cycles"), l.Sup.LastBackoff)
	check("supervisor.breaker_window", l.Registry.Total("supervisor.breaker_window"), int64(l.Sup.Window))

	// Zero silent deaths: every incarnation that died is attributed to a
	// reboot or to the breaker opening.
	if got, want := int64(l.Sup.StateLost), int64(l.Sup.Restarts)+breaker; got != want {
		errs = append(errs, fmt.Sprintf("silent deaths: state_lost %d != restarts %d + breaker %d", got, int64(l.Sup.Restarts), breaker))
	}

	check("core.req_starts", l.Registry.Total("core.req_starts"), l.ReqStarts)
	check("core.req_done", l.Registry.Total("core.req_done"), l.ReqsDone)
	check("core.req_lost", l.Registry.Total("core.req_lost"), l.ReqsLost)

	// Heap-domain surfaces. Domains-off campaigns publish none of these
	// metrics and accumulate zero stats, so every check degrades to 0 == 0.
	check("core.domain_begins", l.Registry.Total("core.domain_begins"), l.DomainBegins)
	check("core.domain_commits", l.Registry.Total("core.domain_commits"), l.DomainCommits)
	check("core.domain_switches", l.Registry.Total("core.domain_switches"), l.DomainSwitches)
	check("core.domain_retires", l.Registry.Total("core.domain_retires"), l.DomainRetires)
	check("core.domain_discards", l.Registry.Total("core.domain_discards"), l.DomainDiscards)
	check("core.domain_violations", l.Registry.Total("core.domain_violations"), l.DomainViolations)
	check("core.domain_latches", l.Registry.Total("core.domain_latches"), l.DomainLatches)
	check("core.arena_allocs", l.Registry.Total("core.arena_allocs"), l.ArenaAllocs)
	check("core.arena_fallbacks", l.Registry.Total("core.arena_fallbacks"), l.ArenaFallbacks)
	check("core.arena_retires", l.Registry.Total("core.arena_retires"), l.ArenaRetires)

	// Span log cross-check (skipped if the bounded log overflowed).
	if l.Dropped == 0 {
		counts := map[string]int64{}
		for _, e := range l.Spans {
			counts[e.Kind]++
		}
		check("span:"+obsv.SpanShed, counts[obsv.SpanShed], l.Sheds)
		check("span:"+obsv.SpanReboot, counts[obsv.SpanReboot], int64(l.Sup.Restarts))
		check("span:"+obsv.SpanBreakerOpen, counts[obsv.SpanBreakerOpen], breaker)
		check("span:"+obsv.SpanUnrecovered, counts[obsv.SpanUnrecovered], l.Unrecovered)
		check("span:"+obsv.SpanReqStart, counts[obsv.SpanReqStart], l.ReqStarts)
		check("span:"+obsv.SpanReqDone, counts[obsv.SpanReqDone], l.ReqsDone)
		check("span:"+obsv.SpanReqLost, counts[obsv.SpanReqLost], l.ReqsLost)
		check("span:"+obsv.SpanDomainSwitch, counts[obsv.SpanDomainSwitch], l.DomainSwitches)
		check("span:"+obsv.SpanDomainDiscard, counts[obsv.SpanDomainDiscard], l.DomainDiscards)
		check("span:"+obsv.SpanDomainViolation, counts[obsv.SpanDomainViolation], l.DomainViolations)
		check("span:"+obsv.SpanLatchDomains, counts[obsv.SpanLatchDomains], l.DomainLatches)
		errs = append(errs, traceCausality(l.Spans)...)
	}
	return errs
}

// traceCausality validates the trace-ID causal chains of a span log:
// every req-start has exactly one terminal (req-done or req-lost), a
// req-done never appears for a request the server never started reading,
// and no recovery/transaction span references a trace with no req-start
// (orphaned trace reference). A req-lost without a req-start is legal —
// the request was delivered but the server died before reading it.
func traceCausality(spans []obsv.SpanEvent) []string {
	var errs []string
	started := map[int64]int{}
	terminals := map[int64]int{}
	doneNoStartOK := map[int64]bool{}
	refs := map[int64]bool{}
	for _, e := range spans {
		switch e.Kind {
		case obsv.SpanReqStart:
			started[e.Trace]++
		case obsv.SpanReqDone:
			terminals[e.Trace]++
		case obsv.SpanReqLost:
			terminals[e.Trace]++
			doneNoStartOK[e.Trace] = true
		default:
			if e.Trace != 0 {
				refs[e.Trace] = true
			}
		}
	}
	for tr, n := range started {
		if n != 1 {
			errs = append(errs, fmt.Sprintf("trace %d: %d req-start spans, want 1", tr, n))
		}
		if terminals[tr] != 1 {
			errs = append(errs, fmt.Sprintf("trace %d: %d terminal spans, want 1", tr, terminals[tr]))
		}
	}
	for tr := range terminals {
		if started[tr] == 0 && !doneNoStartOK[tr] {
			errs = append(errs, fmt.Sprintf("trace %d: req-done without req-start", tr))
		}
	}
	for tr := range refs {
		if started[tr] == 0 {
			errs = append(errs, fmt.Sprintf("trace %d: orphaned trace reference (no req-start)", tr))
		}
	}
	return errs
}
