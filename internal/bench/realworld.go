package bench

import (
	"fmt"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/interp"
)

// CaseResult is one §VI-F real-world bug reproduction.
type CaseResult struct {
	Name          string
	Survived      bool
	FaultResponse string // first line of the response to the triggering request
	Injections    int64
	FollowupOK    bool // a normal request after recovery succeeds
}

// RealWorldResult carries both case studies.
type RealWorldResult struct {
	Cases []CaseResult
}

// RealWorld reproduces the paper's two production-bug case studies:
//
//   - Nginx SSI null-pointer dereference (ticket #1263): the crash sits in
//     the SSI substitution code after a successful pread; FIRestarter
//     rolls back, makes pread return -1/EINVAL, and the server answers
//     with an empty response.
//   - Lighttpd WebDAV use-after-free (#2780): the crash follows the
//     open64 of the DAV resource; the injected open64 failure turns into
//     a "403 - Forbidden" response.
//
// In both cases the server keeps serving subsequent requests.
func (r Runner) RealWorld() (RealWorldResult, error) {
	r = r.withDefaults()
	var out RealWorldResult

	nginx, err := r.runCase(apps.Nginx(), "serve_ssi", "memcpy", 1,
		"GET /ssi HTTP/1.1\r\n\r\n", "GET /index.html HTTP/1.1\r\n\r\n")
	if err != nil {
		return out, fmt.Errorf("nginx SSI case: %w", err)
	}
	nginx.Name = "nginx SSI null-deref (ticket #1263)"
	out.Cases = append(out.Cases, nginx)

	lighttpd, err := r.runCase(apps.Lighttpd(), "mod_webdav", "fstat", 1,
		"PROPFIND /dav/notes.txt HTTP/1.1\r\n\r\n", "GET /index.html HTTP/1.1\r\n\r\n")
	if err != nil {
		return out, fmt.Errorf("lighttpd WebDAV case: %w", err)
	}
	lighttpd.Name = "lighttpd WebDAV use-after-free (#2780)"
	out.Cases = append(out.Cases, lighttpd)
	return out, nil
}

// runCase plants a fail-stop fault at the start of the block containing
// the nth `lib` call inside `fn` (the code region the production bug
// crashes in), boots the hardened server, sends the triggering request,
// and then a follow-up request.
func (r Runner) runCase(app *apps.App, fn, lib string, nth int, trigger, followup string) (CaseResult, error) {
	var res CaseResult
	prog, err := app.Compile()
	if err != nil {
		return res, err
	}
	ref, err := findLibBlock(prog, fn, lib, nth)
	if err != nil {
		return res, err
	}
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0}
	inst, err := boot(app, bootOpts{fault: &fault, backend: r.Backend})
	if err != nil {
		return res, err
	}
	if out := inst.m.Run(10_000_000); out.Kind != interp.OutBlocked {
		return res, fmt.Errorf("server did not reach its event loop: %v", out.Kind)
	}

	conn := inst.os.Connect(app.Port)
	if conn == nil {
		return res, fmt.Errorf("connect failed")
	}
	conn.ClientDeliver([]byte(trigger))
	out := inst.m.Run(50_000_000)
	if out.Kind == interp.OutTrapped {
		res.Survived = false
		return res, nil
	}
	res.Survived = true
	resp := string(conn.ClientTake())
	if i := strings.Index(resp, "\r\n"); i > 0 {
		res.FaultResponse = resp[:i]
	} else {
		res.FaultResponse = resp
	}
	res.Injections = inst.rt.Stats().Injections

	// The server must keep serving.
	conn2 := inst.os.Connect(app.Port)
	if conn2 != nil {
		conn2.ClientDeliver([]byte(followup))
		if out := inst.m.Run(50_000_000); out.Kind != interp.OutTrapped {
			res.FollowupOK = strings.HasPrefix(string(conn2.ClientTake()), "HTTP/1.1 200")
		}
	}
	return res, nil
}

// Render prints the case-study outcomes.
func (c RealWorldResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§VI-F: real-world bug reproductions\n")
	for _, cs := range c.Cases {
		fmt.Fprintf(&sb, "  %-45s survived=%v injections=%d response=%q followup200=%v\n",
			cs.Name, cs.Survived, cs.Injections, cs.FaultResponse, cs.FollowupOK)
	}
	return sb.String()
}
