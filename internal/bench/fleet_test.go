package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The fleet experiment is the determinism tentpole: for a fixed seed the
// rendered table, the merged span log and the trace bytes are
// byte-identical across repeats and across harness parallelism.
func TestFleetDeterministicAcrossRepeatsAndParallelism(t *testing.T) {
	base := Runner{Requests: 30, Concurrency: 2, Seed: 3}
	run := func(r Runner) (string, FleetResult) {
		res, err := r.Fleet(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render(), res
	}
	r1, res1 := run(base)
	r2, res2 := run(base)
	if r1 != r2 {
		t.Errorf("repeat render diverged:\n%s\nvs\n%s", r1, r2)
	}
	if !reflect.DeepEqual(res1.Spans, res2.Spans) {
		t.Error("repeat span logs diverged")
	}

	par := base
	par.Parallelism = 4
	r3, res3 := run(par)
	if r1 != r3 {
		t.Errorf("parallel render diverged:\n%s\nvs\n%s", r1, r3)
	}
	if !reflect.DeepEqual(res1.Spans, res3.Spans) {
		t.Error("parallel span log diverged from serial")
	}

	var tr1, tr3 bytes.Buffer
	if err := res1.WriteTrace(&tr1); err != nil {
		t.Fatal(err)
	}
	if err := res3.WriteTrace(&tr3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr1.Bytes(), tr3.Bytes()) {
		t.Error("trace bytes diverged across parallelism")
	}
}

// The experiment-global span log (rebased across campaigns) must stay
// causally valid: exactly one terminal per started trace, no orphaned
// trace references, no silent request drops.
func TestFleetGlobalSpanLogIsCausal(t *testing.T) {
	r := Runner{Requests: 30, Concurrency: 2, Seed: 5}
	res, err := r.Fleet(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if errs := traceCausality(res.Spans); len(errs) > 0 {
		t.Fatalf("global span log causality:\n  %s", strings.Join(errs, "\n  "))
	}
	if len(res.Rows) != 2 || res.Rows[0].Replicas != 1 || res.Rows[1].Replicas != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.Campaigns == 0 || row.Completed == 0 || row.Goodput <= 0 {
			t.Errorf("degenerate row: %+v", row)
		}
	}
	if res.Traces == 0 {
		t.Error("no traced requests")
	}
	// Every campaign booted at least its replica count once.
	if res.Rows[1].Boots < 2*res.Rows[1].Campaigns {
		t.Errorf("2-replica row booted %d times across %d campaigns",
			res.Rows[1].Boots, res.Rows[1].Campaigns)
	}
}
