package bench

import (
	"fmt"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// Ablation experiments probe the design choices the paper fixes without
// sweeping: the divert policy (re-arm per episode vs. permanently disable
// the path), the transient-retry budget, and the sensitivity of the whole
// scheme to the HTM capacity the hardware provides.

// --- divert policy ----------------------------------------------------------------

// DivertRow compares recovery behaviour under one divert policy.
type DivertRow struct {
	Policy       string
	Crashes      int64
	Injections   int64
	Completed    int
	Bad          int
	CyclesPerReq float64
}

// DivertResult is the divert-policy ablation.
type DivertResult struct {
	Rows []DivertRow
}

// AblationDivert runs the Nginx analog with a persistent fault in the SSI
// handler under both divert policies. Per-episode re-arming pays the full
// crash-rollback-inject cycle on every poisoned request; sticky diversion
// ("gracefully disabling the affected path", §V) crashes once and serves
// the error path directly afterwards.
func (r Runner) AblationDivert() (DivertResult, error) {
	r = r.withDefaults()
	app := apps.Nginx()
	prog, err := app.Compile()
	if err != nil {
		return DivertResult{}, err
	}
	ref, err := findLibBlock(prog, "serve_ssi", "memcpy", 1)
	if err != nil {
		return DivertResult{}, err
	}
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0}

	var out DivertResult
	for _, sticky := range []bool{false, true} {
		cfg := core.Config{StickyDivert: sticky}
		inst, res, err := r.measure(app, bootOpts{cfg: cfg, fault: &fault})
		if err != nil {
			return out, err
		}
		st := inst.rt.Stats()
		name := "per-episode (re-arm on commit)"
		if sticky {
			name = "sticky (path disabled)"
		}
		out.Rows = append(out.Rows, DivertRow{
			Policy:       name,
			Crashes:      st.Crashes,
			Injections:   st.Injections,
			Completed:    res.Completed,
			Bad:          res.BadResp,
			CyclesPerReq: res.CyclesPerRequest(),
		})
	}
	return out, nil
}

// Render prints the divert ablation.
func (d DivertResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: divert policy under a persistent SSI fault (Nginx)\n")
	fmt.Fprintf(&sb, "%-32s %8s %11s %10s %6s %14s\n",
		"policy", "crashes", "injections", "completed", "bad", "cycles/req")
	for _, row := range d.Rows {
		fmt.Fprintf(&sb, "%-32s %8d %11d %10d %6d %14s\n",
			row.Policy, row.Crashes, row.Injections, row.Completed, row.Bad,
			workload.FormatCPR(row.CyclesPerReq))
	}
	return sb.String()
}

// --- retry budget ------------------------------------------------------------------

// RetryRow is one retry-budget measurement.
type RetryRow struct {
	Retries    int
	Crashes    int64
	RetryExecs int64
	Injections int64
	MeanLatUs  float64
}

// RetryResult is the retry-budget ablation.
type RetryResult struct {
	Rows []RetryRow
}

// AblationRetry sweeps the transient-retry budget against a persistent
// fault: every extra retry buys nothing for persistent bugs (the crash
// recurs) and linearly inflates recovery latency — the reason the paper
// re-executes only once before injecting.
func (r Runner) AblationRetry() (RetryResult, error) {
	r = r.withDefaults()
	app := apps.Nginx()
	prog, err := app.Compile()
	if err != nil {
		return RetryResult{}, err
	}
	ref, err := findLibBlock(prog, "serve_ssi", "memcpy", 1)
	if err != nil {
		return RetryResult{}, err
	}
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0}

	var out RetryResult
	for _, retries := range []int{1, 2, 4, 8} {
		cfg := core.Config{RetryTransient: retries}
		inst, _, err := r.measure(app, bootOpts{cfg: cfg, fault: &fault})
		if err != nil {
			return out, err
		}
		st := inst.rt.Stats()
		// Mean via the shared histogram helper: Sum and Count are exact
		// (only quantiles are bucketed), so this renders byte-identically
		// to the old inline sum loop.
		h := histOf(st.LatencyCycles)
		var mean float64
		if h.Count() > 0 {
			mean = h.Mean() / 1000
		}
		out.Rows = append(out.Rows, RetryRow{
			Retries:    retries,
			Crashes:    st.Crashes,
			RetryExecs: st.Retries,
			Injections: st.Injections,
			MeanLatUs:  mean,
		})
	}
	return out, nil
}

// Render prints the retry ablation.
func (d RetryResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: transient-retry budget vs a persistent fault (Nginx)\n")
	fmt.Fprintf(&sb, "%8s %9s %8s %11s %14s\n", "retries", "crashes", "re-execs", "injections", "mean lat (µs)")
	for _, row := range d.Rows {
		fmt.Fprintf(&sb, "%8d %9d %8d %11d %14.1f\n",
			row.Retries, row.Crashes, row.RetryExecs, row.Injections, row.MeanLatUs)
	}
	return sb.String()
}

// --- HTM geometry -----------------------------------------------------------------

// GeometryRow is one cache-size measurement.
type GeometryRow struct {
	CacheKiB     int
	AbortPct     float64
	OverheadPct  float64
	STMLatchedTx int64
}

// GeometryResult is the HTM-capacity ablation.
type GeometryResult struct {
	Rows []GeometryRow
}

// AblationGeometry sweeps the modelled L1D capacity (8–128 KiB at fixed
// 8-way associativity) on the Nginx analog: a smaller transactional buffer
// pushes more regions over the capacity cliff, raising the abort rate and
// shifting more transactions to STM — quantifying how much FIRestarter's
// performance depends on the hardware's transactional capacity.
func (r Runner) AblationGeometry() (GeometryResult, error) {
	r = r.withDefaults()
	app := apps.Nginx()
	_, vres, err := r.measure(app, bootOpts{vanilla: true})
	if err != nil {
		return GeometryResult{}, err
	}
	base := vres.CyclesPerRequest()

	var out GeometryResult
	for _, kib := range []int{8, 16, 32, 64, 128} {
		sets := kib * 1024 / 64 / 8 // lines / ways
		cfg := core.Config{
			HTM: htm.Config{Sets: sets, Ways: 8, Seed: r.Seed},
		}
		inst, res, err := r.measure(app, bootOpts{cfg: cfg})
		if err != nil {
			return out, err
		}
		st := inst.rt.Stats()
		out.Rows = append(out.Rows, GeometryRow{
			CacheKiB:     kib,
			AbortPct:     100 * st.HTMAbortRate(),
			OverheadPct:  overheadPct(res.CyclesPerRequest(), base),
			STMLatchedTx: st.STMBegins,
		})
	}
	return out, nil
}

// Render prints the geometry ablation.
func (d GeometryResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: HTM capacity vs abort rate and overhead (Nginx)\n")
	fmt.Fprintf(&sb, "%10s %10s %11s %9s\n", "L1D (KiB)", "abort %", "overhead %", "STM txs")
	for _, row := range d.Rows {
		fmt.Fprintf(&sb, "%10d %10.2f %11.1f %9d\n",
			row.CacheKiB, row.AbortPct, row.OverheadPct, row.STMLatchedTx)
	}
	return sb.String()
}
