package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/replay"
	"github.com/firestarter-go/firestarter/internal/supervisor"
)

// ChaosRow aggregates one app x fault-kind sweep of the chaos campaign:
// how many seeded faults of that kind the app faced, how many campaigns
// survived to workload completion, and which ladder rung absorbed each
// fault.
type ChaosRow struct {
	App      string
	Kind     string
	Faults   int
	Survived int // campaigns that completed the workload (breaker stayed closed)

	// Rung attribution: each campaign is attributed to the coarsest rung
	// it escalated to. None means the fault never fired under the
	// workload.
	None      int
	Recovered int // rollback + STM retry absorbed it
	Injected  int // gate error-injection diverted it
	Shed      int // a connection was shed at the quiesce point
	Rebooted  int // the supervisor microrebooted the process
	Breaker   int // the crash-loop breaker gave up

	Lost      int // requests not completed across the row's campaigns
	StateLost int // incarnation deaths (in-memory state discarded)
}

// ChaosResult is the chaos soak campaign outcome.
type ChaosResult struct {
	Rows      []ChaosRow
	Requests  int // workload size per campaign
	Campaigns int
	Survived  int

	// Spans is every campaign's merged span log concatenated on a single
	// campaign-global clock (suitable for obsvlint's trace schema).
	Spans []obsv.SpanEvent

	// Traces is the total number of traced requests delivered across all
	// campaigns; rebasing gives them campaign-global IDs 1..Traces, and
	// every one must reach exactly one terminal span in Spans.
	Traces int64
}

// chaosKinds are the fault models the soak sweeps: the paper's fail-stop
// plus HSFI's fail-silent mutations.
var chaosKinds = []faultinj.Kind{
	faultinj.FailStop,
	faultinj.FlipBranch,
	faultinj.CorruptConst,
	faultinj.WrongOperator,
	faultinj.OffByOne,
}

// Chaos runs the chaos soak campaign: seeded faults of every kind planted
// in profiled serving blocks of all five apps, each faced by the full
// recovery escalation ladder (rollback -> STM retry -> gate injection ->
// request shedding -> supervised microreboot -> crash-loop breaker).
// Every campaign's three accounting surfaces (stats, metrics, spans) are
// reconciled; any campaign whose deaths are not attributed to a rung
// fails the whole experiment.
func (r Runner) Chaos() (ChaosResult, error) {
	r = r.withDefaults()
	var out ChaosResult
	out.Requests = r.Requests

	// Plan serially (planning shares nothing and is cheap relative to the
	// supervised runs); fan the campaigns out below.
	type chaosJob struct {
		app   *apps.App
		kind  faultinj.Kind
		fault faultinj.Fault
	}
	var jobs []chaosJob
	for _, app := range apps.All() {
		for _, kind := range chaosKinds {
			max := r.FaultsPerServer
			if kind != faultinj.FailStop {
				max = r.FaultsPerServer/(len(chaosKinds)-1) + 1
			}
			faults, err := r.planFaults(app, kind, max)
			if err != nil {
				return out, fmt.Errorf("chaos %s/%s: %w", app.Name, kind, err)
			}
			for _, f := range faults {
				jobs = append(jobs, chaosJob{app: app, kind: kind, fault: f})
			}
		}
	}

	runs := make([]*ladderRun, len(jobs))
	if err := r.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		f := j.fault
		lr, err := r.ladderRun(j.app, bootOpts{fault: &f},
			supervisor.Config{Seed: r.Seed + 1000*int64(i+1)})
		if err != nil {
			return fmt.Errorf("chaos %s/%s fault %d: %w", j.app.Name, j.kind, f.ID, err)
		}
		if errs := lr.reconcile(); len(errs) > 0 {
			return fmt.Errorf("chaos %s/%s fault %d: accounting did not reconcile:\n  %s",
				j.app.Name, j.kind, f.ID, strings.Join(errs, "\n  "))
		}
		runs[i] = lr
		return nil
	}); err != nil {
		return out, err
	}

	// Reduce in job order so the render and the combined span log are
	// byte-identical for every Parallelism setting. Cycles are rebased
	// onto a campaign-global clock and trace IDs onto a campaign-global
	// ID space, so the merged log stays causally valid (obsvlint
	// -causality) across campaigns.
	rowIdx := map[string]int{}
	var clock, traceBase int64
	recIdx := 0
	for i, j := range jobs {
		lr := runs[i]
		// Flight-recorder output rides the same job-order reduction, so
		// the manifest numbering is identical at any Parallelism.
		for _, rec := range lr.Recordings {
			if _, err := rec.Write(r.RecordDir, fmt.Sprintf("chaos-%03d", recIdx)); err != nil {
				return out, fmt.Errorf("chaos: recording %s/%s fault %d: %w",
					j.app.Name, j.kind, j.fault.ID, err)
			}
			recIdx++
		}
		key := j.app.Name + "/" + j.kind.String()
		idx, ok := rowIdx[key]
		if !ok {
			idx = len(out.Rows)
			rowIdx[key] = idx
			out.Rows = append(out.Rows, ChaosRow{App: j.app.Name, Kind: j.kind.String()})
		}
		row := &out.Rows[idx]
		row.Faults++
		out.Campaigns++
		if !lr.Sup.BreakerOpen {
			row.Survived++
			out.Survived++
		}
		row.Lost += r.Requests - lr.Completed
		row.StateLost += lr.Sup.StateLost
		switch lr.rung() {
		case "breaker-open":
			row.Breaker++
		case "rebooted":
			row.Rebooted++
		case "shed":
			row.Shed++
		case "injected":
			row.Injected++
		case "recovered":
			row.Recovered++
		default:
			row.None++
		}
		for _, e := range lr.Spans {
			e.Cycles += clock
			if e.Trace != 0 {
				e.Trace += traceBase
			}
			e.Seq = 0
			out.Spans = append(out.Spans, e)
		}
		clock += lr.Sup.ClockCycles
		traceBase += lr.Traces
	}
	out.Traces = traceBase
	return out, nil
}

// Render prints the soak table plus the campaign-level summary.
func (c ChaosResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos soak: seeded faults vs the full recovery ladder (%d requests per campaign)\n", c.Requests)
	fmt.Fprintf(&sb, "%-10s %-14s %6s %7s | %5s %6s %7s %5s %7s %4s | %6s %6s\n",
		"app", "kind", "faults", "survive",
		"none", "recov", "inject", "shed", "reboot", "brk",
		"lost", "state")
	var rungs ChaosRow
	for _, row := range c.Rows {
		fmt.Fprintf(&sb, "%-10s %-14s %6d %7d | %5d %6d %7d %5d %7d %4d | %6d %6d\n",
			row.App, row.Kind, row.Faults, row.Survived,
			row.None, row.Recovered, row.Injected, row.Shed, row.Rebooted, row.Breaker,
			row.Lost, row.StateLost)
		rungs.None += row.None
		rungs.Recovered += row.Recovered
		rungs.Injected += row.Injected
		rungs.Shed += row.Shed
		rungs.Rebooted += row.Rebooted
		rungs.Breaker += row.Breaker
	}
	pct := 0.0
	if c.Campaigns > 0 {
		pct = float64(c.Survived) / float64(c.Campaigns) * 100
	}
	fmt.Fprintf(&sb, "overall: %d/%d campaigns survived (%.1f%%); rungs: none=%d recovered=%d injected=%d shed=%d rebooted=%d breaker-open=%d\n",
		c.Survived, c.Campaigns, pct,
		rungs.None, rungs.Recovered, rungs.Injected, rungs.Shed, rungs.Rebooted, rungs.Breaker)
	return sb.String()
}

// WriteTrace writes the campaign-global span log as JSONL, re-stamped
// with dense sequence numbers (the obsvlint trace schema).
func (c ChaosResult) WriteTrace(w io.Writer) error {
	log := &obsv.SpanLog{Limit: len(c.Spans) + 1}
	for _, e := range c.Spans {
		e.Seq = 0
		log.Append(e)
	}
	return log.WriteJSONL(w)
}

// Fingerprint returns the hash-chain value of the campaign-global span
// stream in its exported (densely re-sequenced) form — one number that
// commits to every byte -trace-out would write. Identical for a fixed
// seed at any Parallelism.
func (c ChaosResult) Fingerprint() uint64 {
	return obsv.Fingerprint(replay.NormalizeSpans(c.Spans))
}
