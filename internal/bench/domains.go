package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/libmodel"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/supervisor"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// The heap-domain experiments evaluate the rewind-and-discard checkpoint
// strategy on the allocation-heavy pool servers: the ablation compares
// per-store STM undo logging against the O(1) arena discard (and shows
// the HTM capacity cliff re-routing to domains under the three-way §IV-C
// policy); the containment campaign proves that fail-silent corruption
// never leaks another request's (or a discarded request's) bytes into a
// response.

// --- strategy ablation --------------------------------------------------------------

// DomainsRow is one app x checkpoint-strategy measurement under a
// persistent fail-stop fault.
type DomainsRow struct {
	App          string
	Strategy     string
	Crashes      int64
	UndoStores   int64 // per-store undo log entries (STM write instrumentation)
	Discards     int64 // O(1) arena rewinds (domain crash rollbacks)
	DomainTxs    int64
	Completed    int
	CyclesPerReq float64
}

// CapacityRow is one HTM-geometry x domains measurement: where the
// capacity cliff sends capacity-aborted gates once domains are available.
type CapacityRow struct {
	CacheKiB   int
	Domains    bool
	AbortPct   float64
	STMTxs     int64
	DomainTxs  int64
	UndoStores int64
}

// DomainsResult is the heap-domain strategy ablation.
type DomainsResult struct {
	Rows     []DomainsRow
	Capacity []CapacityRow
}

// domainStrategies are the three checkpoint strategies the ablation
// compares on the pool servers. All three enable arenas so the servers'
// request memory behaves identically; only the checkpoint/rollback
// mechanism differs — STM pays a log entry per store and replays it
// backwards on a crash, rewind snapshots registers only and discards the
// arena suffix in O(1).
var domainStrategies = []struct {
	name string
	cfg  core.Config
}{
	{"stm (per-store undo)", core.Config{Mode: core.ModeSTMOnly, EnableDomains: true}},
	{"hybrid (three-way policy)", core.Config{EnableDomains: true}},
	{"rewind (O(1) discard)", core.Config{Mode: core.ModeRewind}},
}

// AblationDomains measures the checkpoint strategies on the pool servers
// with one planted persistent fail-stop fault each, then sweeps the HTM
// geometry on the lighttpd pool variant with domains off and on.
func (r Runner) AblationDomains() (DomainsResult, error) {
	r = r.withDefaults()
	var out DomainsResult

	// One persistent fail-stop fault per app, planted in a non-critical
	// handler the workload mix exercises on a fraction of requests (the
	// targeted placement of the §VI-F case studies): the lighttpd pool's
	// SSI include read, the redis pool's GET reply copy.
	pool := apps.PoolApps()
	targets := []struct{ fn, lib string }{
		{"mod_ssi", "pread"},
		{"execute", "memcpy"},
	}
	faults := make([]faultinj.Fault, len(pool))
	for i, app := range pool {
		prog, err := app.Compile()
		if err != nil {
			return out, fmt.Errorf("domains %s: %w", app.Name, err)
		}
		ref, err := findLibBlock(prog, targets[i].fn, targets[i].lib, 1)
		if err != nil {
			return out, fmt.Errorf("domains %s: %w", app.Name, err)
		}
		faults[i] = faultinj.Fault{
			ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0,
		}
	}

	type capJob struct {
		kib     int
		domains bool
	}
	var capJobs []capJob
	for _, kib := range []int{8, 32, 128} {
		for _, domains := range []bool{false, true} {
			capJobs = append(capJobs, capJob{kib: kib, domains: domains})
		}
	}

	// One fan-out over both tables; rows are reduced in job order so the
	// render is byte-identical for every Parallelism setting.
	nStrat := len(pool) * len(domainStrategies)
	stratRows := make([]DomainsRow, nStrat)
	capRows := make([]CapacityRow, len(capJobs))
	if err := r.forEach(nStrat+len(capJobs), func(i int) error {
		if i < nStrat {
			app, strat := pool[i/len(domainStrategies)], domainStrategies[i%len(domainStrategies)]
			fault := faults[i/len(domainStrategies)]
			inst, res, err := r.measure(app, bootOpts{
				cfg: strat.cfg, fault: &fault, model: libmodel.WithArena(),
			})
			if err != nil {
				return fmt.Errorf("domains %s/%s: %w", app.Name, strat.name, err)
			}
			st := inst.rt.Stats()
			stratRows[i] = DomainsRow{
				App:          app.Name,
				Strategy:     strat.name,
				Crashes:      st.Crashes,
				UndoStores:   inst.rt.STMStats().TotalStores,
				Discards:     st.DomainDiscards,
				DomainTxs:    st.DomainBegins,
				Completed:    res.Completed,
				CyclesPerReq: res.CyclesPerRequest(),
			}
			return nil
		}
		j := capJobs[i-nStrat]
		sets := j.kib * 1024 / 64 / 8 // lines / ways
		cfg := core.Config{
			HTM:           htm.Config{Sets: sets, Ways: 8, Seed: r.Seed},
			EnableDomains: j.domains,
		}
		inst, _, err := r.measure(apps.LighttpdPool(), bootOpts{
			cfg: cfg, model: libmodel.WithArena(),
		})
		if err != nil {
			return fmt.Errorf("domains capacity %dKiB: %w", j.kib, err)
		}
		st := inst.rt.Stats()
		capRows[i-nStrat] = CapacityRow{
			CacheKiB:   j.kib,
			Domains:    j.domains,
			AbortPct:   100 * st.HTMAbortRate(),
			STMTxs:     st.STMBegins,
			DomainTxs:  st.DomainBegins,
			UndoStores: inst.rt.STMStats().TotalStores,
		}
		return nil
	}); err != nil {
		return out, err
	}
	out.Rows, out.Capacity = stratRows, capRows
	return out, nil
}

// Render prints both ablation tables.
func (d DomainsResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: per-store undo vs O(1) arena discard on the pool servers (persistent fail-stop fault)\n")
	fmt.Fprintf(&sb, "%-14s %-26s %8s %12s %9s %8s %10s %14s\n",
		"app", "strategy", "crashes", "undo-stores", "discards", "dom-txs", "completed", "cycles/req")
	for _, row := range d.Rows {
		fmt.Fprintf(&sb, "%-14s %-26s %8d %12d %9d %8d %10d %14s\n",
			row.App, row.Strategy, row.Crashes, row.UndoStores, row.Discards,
			row.DomainTxs, row.Completed, workload.FormatCPR(row.CyclesPerReq))
	}
	sb.WriteString("\nAblation: HTM capacity cliff with and without domains (lighttpd-pool)\n")
	fmt.Fprintf(&sb, "%10s %8s %10s %9s %9s %12s\n",
		"L1D (KiB)", "domains", "abort %", "stm txs", "dom txs", "undo-stores")
	for _, row := range d.Capacity {
		onOff := "off"
		if row.Domains {
			onOff = "on"
		}
		fmt.Fprintf(&sb, "%10d %8s %10.2f %9d %9d %12d\n",
			row.CacheKiB, onOff, row.AbortPct, row.STMTxs, row.DomainTxs, row.UndoStores)
	}
	return sb.String()
}

// --- chaos containment --------------------------------------------------------------

// ContainRow aggregates one pool-app x fail-silent-kind sweep of the
// containment campaign.
type ContainRow struct {
	App        string
	Kind       string
	Faults     int
	Survived   int
	Crashes    int64
	Violations int64 // cross-domain accesses trapped as crashes
	Discards   int64 // O(1) crash rewinds
	Retires    int64 // request-end arena discards
	Writes     int64 // connection writes audited for domain provenance
	Leaks      int   // corruption-reach verdicts (the table's reason to exist: 0)
	Silent     int64 // deaths unattributed to a reboot or the breaker (must be 0)
}

// ContainResult is the chaos containment campaign outcome.
type ContainResult struct {
	Rows      []ContainRow
	Requests  int
	Campaigns int
	Survived  int
	Writes    int64

	// Spans and Traces mirror ChaosResult: every campaign's span log
	// merged on a campaign-global clock and trace-ID space, suitable for
	// obsvlint's trace schema and -causality (which also validates the
	// domain switch/discard/violation ordering rules).
	Spans  []obsv.SpanEvent
	Traces int64
}

// containKinds is the fail-silent fault matrix: every silent-corruption
// mutation model, excluding fail-stop (which cannot scribble).
var containKinds = []faultinj.Kind{
	faultinj.FlipBranch,
	faultinj.CorruptConst,
	faultinj.WrongOperator,
	faultinj.OffByOne,
}

// Containment runs the fail-silent chaos matrix against the pool servers
// with heap domains enabled under the full recovery escalation ladder,
// and audits every connection write's domain provenance: no post-recovery
// response byte may derive from another live request's arena or from a
// discarded one. Any leak, any silent death, or any cross-surface
// accounting drift fails the experiment.
func (r Runner) Containment() (ContainResult, error) {
	r = r.withDefaults()
	var out ContainResult
	out.Requests = r.Requests

	type job struct {
		app   *apps.App
		kind  faultinj.Kind
		fault faultinj.Fault
	}
	var jobs []job
	for _, app := range apps.PoolApps() {
		for _, kind := range containKinds {
			max := r.FaultsPerServer/len(containKinds) + 1
			faults, err := r.planFaults(app, kind, max)
			if err != nil {
				return out, fmt.Errorf("containment %s/%s: %w", app.Name, kind, err)
			}
			for _, f := range faults {
				jobs = append(jobs, job{app: app, kind: kind, fault: f})
			}
		}
	}

	runs := make([]*ladderRun, len(jobs))
	if err := r.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		f := j.fault
		lr, err := r.ladderRun(j.app, bootOpts{
			cfg:   core.Config{EnableDomains: true},
			fault: &f,
			model: libmodel.WithArena(),
		}, supervisor.Config{Seed: r.Seed + 1000*int64(i+1)})
		if err != nil {
			return fmt.Errorf("containment %s/%s fault %d: %w", j.app.Name, j.kind, f.ID, err)
		}
		if errs := lr.reconcile(); len(errs) > 0 {
			return fmt.Errorf("containment %s/%s fault %d: accounting did not reconcile:\n  %s",
				j.app.Name, j.kind, f.ID, strings.Join(errs, "\n  "))
		}
		if len(lr.Leaks) > 0 {
			return fmt.Errorf("containment %s/%s fault %d: cross-request corruption leaked:\n  %v",
				j.app.Name, j.kind, f.ID, lr.Leaks)
		}
		runs[i] = lr
		return nil
	}); err != nil {
		return out, err
	}

	// Reduce in job order (byte-identical for every Parallelism setting).
	rowIdx := map[string]int{}
	var clock, traceBase int64
	for i, j := range jobs {
		lr := runs[i]
		key := j.app.Name + "/" + j.kind.String()
		idx, ok := rowIdx[key]
		if !ok {
			idx = len(out.Rows)
			rowIdx[key] = idx
			out.Rows = append(out.Rows, ContainRow{App: j.app.Name, Kind: j.kind.String()})
		}
		row := &out.Rows[idx]
		row.Faults++
		out.Campaigns++
		if !lr.Sup.BreakerOpen {
			row.Survived++
			out.Survived++
		}
		row.Crashes += lr.Crashes
		row.Violations += lr.DomainViolations
		row.Discards += lr.DomainDiscards
		row.Retires += lr.DomainRetires
		row.Writes += lr.Taints
		row.Leaks += len(lr.Leaks)
		var breaker int64
		if lr.Sup.BreakerOpen {
			breaker = 1
		}
		row.Silent += int64(lr.Sup.StateLost) - int64(lr.Sup.Restarts) - breaker
		out.Writes += lr.Taints
		for _, e := range lr.Spans {
			e.Cycles += clock
			if e.Trace != 0 {
				e.Trace += traceBase
			}
			e.Seq = 0
			out.Spans = append(out.Spans, e)
		}
		clock += lr.Sup.ClockCycles
		traceBase += lr.Traces
	}
	out.Traces = traceBase
	return out, nil
}

// Render prints the containment table plus the campaign-level summary.
func (c ContainResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos containment: fail-silent faults vs heap domains (%d requests per campaign)\n", c.Requests)
	fmt.Fprintf(&sb, "%-14s %-14s %6s %7s | %7s %5s %8s %7s | %7s %6s %7s\n",
		"app", "kind", "faults", "survive",
		"crashes", "viol", "discard", "retire",
		"writes", "leaks", "silent")
	for _, row := range c.Rows {
		fmt.Fprintf(&sb, "%-14s %-14s %6d %7d | %7d %5d %8d %7d | %7d %6d %7d\n",
			row.App, row.Kind, row.Faults, row.Survived,
			row.Crashes, row.Violations, row.Discards, row.Retires,
			row.Writes, row.Leaks, row.Silent)
	}
	fmt.Fprintf(&sb, "overall: %d/%d campaigns survived; %d response writes audited, 0 cross-request leaks, 0 silent deaths; stats==metrics==spans on every campaign\n",
		c.Survived, c.Campaigns, c.Writes)
	return sb.String()
}

// WriteTrace writes the campaign-global span log as JSONL, re-stamped
// with dense sequence numbers (the obsvlint trace schema).
func (c ContainResult) WriteTrace(w io.Writer) error {
	log := &obsv.SpanLog{Limit: len(c.Spans) + 1}
	for _, e := range c.Spans {
		e.Seq = 0
		log.Append(e)
	}
	return log.WriteJSONL(w)
}
