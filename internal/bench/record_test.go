package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// readDir returns name -> contents for every file in dir.
func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// The span fingerprint commits to every byte -trace-out would write, so
// it must be identical serial vs parallel — and arming the flight
// recorder must not perturb the campaign at all.
func TestChaosFingerprintAndRecordingInvariance(t *testing.T) {
	serial := Runner{Requests: 24, Concurrency: 2, Seed: 3, FaultsPerServer: 1}
	parallel := serial
	parallel.Parallelism = 4
	parallel.RecordDir = t.TempDir()
	serialDir := t.TempDir()
	serialRec := serial
	serialRec.RecordDir = serialDir

	base, err := serial.Chaos()
	if err != nil {
		t.Fatal(err)
	}
	recSerial, err := serialRec.Chaos()
	if err != nil {
		t.Fatal(err)
	}
	recParallel, err := parallel.Chaos()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := recSerial.Fingerprint(), base.Fingerprint(); got != want {
		t.Errorf("recording perturbed the span stream: fingerprint %016x, want %016x", got, want)
	}
	if got, want := recParallel.Fingerprint(), base.Fingerprint(); got != want {
		t.Errorf("parallel fingerprint %016x, serial %016x", got, want)
	}
	if got, want := recParallel.Render(), base.Render(); got != want {
		t.Errorf("parallel render differs from serial:\n%s\nvs\n%s", got, want)
	}

	a, b := readDir(t, serialDir), readDir(t, parallel.RecordDir)
	if len(a) == 0 {
		t.Fatal("no recordings written")
	}
	if len(a) != len(b) {
		t.Fatalf("serial wrote %d files, parallel %d", len(a), len(b))
	}
	for name, data := range a {
		other, ok := b[name]
		if !ok {
			t.Errorf("parallel run missing %s", name)
			continue
		}
		if string(data) != string(other) {
			t.Errorf("%s differs between serial and parallel runs", name)
		}
	}
}

// Same invariant for the open-loop sweep's experiment-global stream.
func TestOpenLoopFingerprintInvariance(t *testing.T) {
	serial := Runner{Requests: 60, Seed: 1}
	parallel := Runner{Requests: 60, Seed: 1, Parallelism: 4}
	a, err := serial.OpenLoop()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.OpenLoop()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("openloop fingerprint %016x serial, %016x parallel", a.Fingerprint(), b.Fingerprint())
	}
}
