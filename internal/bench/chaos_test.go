package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/supervisor"
)

// chaosRunner keeps the soak small enough for unit tests: one fail-stop
// fault plus one of each silent kind per app.
func chaosRunner() Runner {
	return Runner{Requests: 24, Concurrency: 2, Seed: 3, FaultsPerServer: 1}
}

func TestChaosAttributesEveryFault(t *testing.T) {
	res, err := chaosRunner().Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaigns == 0 {
		t.Fatal("no campaigns planned")
	}
	total := 0
	for _, row := range res.Rows {
		attributed := row.None + row.Recovered + row.Injected + row.Shed + row.Rebooted + row.Breaker
		if attributed != row.Faults {
			t.Errorf("%s/%s: %d faults, %d attributed", row.App, row.Kind, row.Faults, attributed)
		}
		if row.Survived > row.Faults {
			t.Errorf("%s/%s: survived %d > faults %d", row.App, row.Kind, row.Survived, row.Faults)
		}
		total += row.Faults
	}
	if total != res.Campaigns {
		t.Errorf("rows cover %d campaigns, ran %d", total, res.Campaigns)
	}
	if res.Survived == 0 {
		t.Error("full ladder survived no campaign")
	}
	// The combined span log must satisfy the obsvlint trace schema:
	// non-decreasing campaign-global cycles, non-empty kinds.
	for i, e := range res.Spans {
		if e.Kind == "" {
			t.Fatalf("span %d has no kind", i)
		}
		if i > 0 && e.Cycles < res.Spans[i-1].Cycles {
			t.Fatalf("span %d cycles %d < previous %d", i, e.Cycles, res.Spans[i-1].Cycles)
		}
	}
	// After cycle/trace rebasing the merged log must stay causally valid:
	// every traced request reaches exactly one terminal and no span
	// references a trace that was never delivered.
	if errs := traceCausality(res.Spans); len(errs) > 0 {
		if len(errs) > 10 {
			errs = errs[:10]
		}
		t.Errorf("merged chaos spans violate trace causality:\n  %s", strings.Join(errs, "\n  "))
	}
	// 100% of delivered requests must be attributed to a terminal
	// outcome — IDs are campaign-global 1..Traces after rebasing.
	terminals := map[int64]bool{}
	for _, e := range res.Spans {
		if e.Kind == obsv.SpanReqDone || e.Kind == obsv.SpanReqLost {
			terminals[e.Trace] = true
		}
	}
	if int64(len(terminals)) != res.Traces {
		t.Errorf("%d distinct terminal traces, %d requests delivered", len(terminals), res.Traces)
	}
	for tr := int64(1); tr <= res.Traces; tr++ {
		if !terminals[tr] {
			t.Fatalf("trace %d has no terminal span", tr)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(res.Spans) {
		t.Errorf("trace has %d lines, %d spans", got, len(res.Spans))
	}
	t.Logf("\n%s", res.Render())
}

func TestChaosRenderDeterministic(t *testing.T) {
	run := func(parallelism int) (string, string) {
		r := chaosRunner()
		r.Parallelism = parallelism
		res, err := r.Chaos()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return res.Render(), buf.String()
	}
	r1, t1 := run(1)
	r2, t2 := run(1)
	if r1 != r2 || t1 != t2 {
		t.Fatal("repeat serial runs differ")
	}
	if testing.Short() {
		t.Skip("parallel cross-check skipped in -short")
	}
	r4, t4 := run(4)
	if r1 != r4 {
		t.Errorf("render differs between -parallel 1 and 4:\n%s\nvs\n%s", r1, r4)
	}
	if t1 != t4 {
		t.Error("combined trace differs between -parallel 1 and 4")
	}
}

// TestLadderCountsBreakerResidualAsFailed is the regression test for the
// silent under-reporting bug: the old inline restart loop exited its
// 50-incarnation cap with work still outstanding and never counted it.
// The supervised ladder must attribute every request even when the
// crash-loop breaker gives up.
func TestLadderCountsBreakerResidualAsFailed(t *testing.T) {
	r := testRunner()
	// A long enough campaign that the persistent fault kills more than
	// one incarnation before the workload drains.
	r.Requests = 300
	app := apps.Redis()
	prog, err := app.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := findLibBlock(prog, "execute", "atoi", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0}
	// One allowed restart in an effectively unbounded window: the second
	// death opens the breaker with most of the workload outstanding.
	lr, err := r.ladderRun(app, bootOpts{vanilla: true, fault: &fault},
		supervisor.Config{MaxRestarts: 1, WindowCycles: 1 << 60})
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Sup.BreakerOpen {
		t.Fatalf("breaker did not open: %+v", lr.Sup)
	}
	if got := lr.Completed + lr.Failed; got != r.withDefaults().Requests {
		t.Errorf("accounted %d of %d requests", got, r.withDefaults().Requests)
	}
	if errs := lr.reconcile(); len(errs) > 0 {
		t.Errorf("accounting did not reconcile:\n  %s", strings.Join(errs, "\n  "))
	}
}
