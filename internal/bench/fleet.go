package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/fleet"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/supervisor"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// FleetRow aggregates the fleet scaling experiment at one replica count:
// every app x fault-kind campaign of the chaos matrix run behind the
// balancer, with goodput (completed requests per Mcycle of fleet wall
// clock) and the clean/recovery tail-latency split.
type FleetRow struct {
	Replicas  int
	Campaigns int
	Survived  int // campaigns that never lost the whole fleet

	Completed int
	Lost      int

	// Fleet-tier event totals across the row's campaigns.
	Boots     int
	Deaths    int
	Failovers int
	Drains    int // boundary + deadline-forced drain handoffs
	Parked    int
	Breakers  int // replica breakers opened (not necessarily the whole fleet)

	WallCycles int64
	Goodput    float64 // completed requests per Mcycle of wall clock
	ScaleX     float64 // goodput relative to the 1-replica row

	Clean    obsv.Percentiles
	Recovery obsv.Percentiles

	cleanHist *obsv.Hist
	recovHist *obsv.Hist
}

// FleetResult is the replica-scaling chaos experiment outcome.
type FleetResult struct {
	Rows      []FleetRow
	Requests  int
	Campaigns int
	Survived  int

	// Spans is every campaign's merged span log concatenated on a single
	// experiment-global clock and trace-ID space (obsvlint trace schema,
	// causality-clean).
	Spans  []obsv.SpanEvent
	Traces int64
}

// fleetRun is one fleet campaign: a replicated supervised fleet of app
// instances (all carrying the same seeded fault) behind the balancer,
// driven to workload completion.
type fleetRun struct {
	Res  workload.Result
	St   fleet.Stats
	Sups []supervisor.Stats

	Spans []obsv.SpanEvent
	Wall  int64
	Reg   *obsv.Registry
}

// fleetRun boots and drives one campaign. Every replica incarnation is a
// full hardened boot with spans enabled and its quiesce point armed; the
// incarnation's HTM interrupt seed is the replica supervisor's
// per-incarnation seed, so no two incarnations anywhere in the fleet
// replay the same interrupt process.
func (r Runner) fleetRun(app *apps.App, fault *faultinj.Fault, size int, seed int64) (*fleetRun, error) {
	fcfg := fleet.Config{
		Replicas: size,
		Port:     app.Port,
		Sup:      supervisor.Config{Seed: seed},
	}
	fl := fleet.New(fcfg, r.fleetBoot(app, fault))
	d := &workload.Driver{
		Port:        app.Port,
		Gen:         workload.ForProtocol(app.Protocol),
		Concurrency: r.Concurrency,
		Seed:        seed,
		Srv:         fl,
		Sink:        fl,
	}
	res := d.Run(r.Requests)
	fl.Finish()
	if err := fl.Err(); err != nil {
		return nil, err
	}
	fr := &fleetRun{Res: res, St: fl.Stats(), Spans: fl.Spans(), Wall: fl.Cycles(), Reg: fl.Registry()}
	for i := 0; i < size; i++ {
		fr.Sups = append(fr.Sups, fl.SupStats(i))
	}
	return fr, nil
}

// reconcile cross-checks the campaign's three accounting surfaces — the
// fleet/supervisor/runtime stats, the published metrics registry, and the
// merged span log — and returns every discrepancy. Zero silent deaths:
// every incarnation death must be attributed to a reboot or a breaker,
// and every traced request to exactly one terminal.
func (fr *fleetRun) reconcile() []string {
	var errs []string
	check := func(name string, got, want int64) {
		if got != want {
			errs = append(errs, fmt.Sprintf("%s: %d != %d", name, got, want))
		}
	}
	st, reg := fr.St, fr.Reg

	for name, want := range map[string]int64{
		"fleet.replicas":       int64(st.Replicas),
		"fleet.boots":          int64(st.Boots),
		"fleet.deaths":         int64(st.Deaths),
		"fleet.handoffs":       int64(st.Handoffs),
		"fleet.failovers":      int64(st.Failovers),
		"fleet.drains":         int64(st.Drains),
		"fleet.drain_expired":  int64(st.DrainExpired),
		"fleet.parked":         int64(st.Parked),
		"fleet.drains_started": int64(st.DrainsStarted),
		"fleet.breakers_open":  int64(st.BreakersOpen),
		"fleet.conns_closed":   int64(st.ConnsClosed),
		"fleet.conns_lost":     int64(st.ConnsLost),
		"fleet.req_done":       st.ReqsDone,
		"fleet.req_lost":       st.ReqsLost,
	} {
		check("metric "+name, reg.Total(name), want)
	}

	// Harvested runtime counters, summed across replica labels by Total.
	check("metric core.crashes", reg.Total("core.crashes"), st.Crashes)
	check("metric core.retries", reg.Total("core.retries"), st.Retries)
	check("metric core.injections", reg.Total("core.injections"), st.Injections)
	check("metric core.unrecovered", reg.Total("core.unrecovered"), st.Unrecovered)
	check("metric core.sheds", reg.Total("core.sheds"), st.Sheds)
	check("metric core.req_starts", reg.Total("core.req_starts"), st.ReqStarts)

	// Supervisor surface vs the balancer's view of the same events.
	var incs, restarts, stateLost, connsLost, backoffs, window, breakers int64
	for _, s := range fr.Sups {
		incs += int64(s.Incarnations)
		restarts += int64(s.Restarts)
		stateLost += int64(s.StateLost)
		connsLost += int64(s.ConnsLost)
		backoffs += s.LastBackoff
		window += int64(s.Window)
		if s.BreakerOpen {
			breakers++
		}
	}
	check("supervisor incarnations vs fleet boots", incs, int64(st.Boots))
	check("supervisor state_lost vs fleet deaths", stateLost, int64(st.Deaths))
	check("supervisor conns_lost vs fleet conns_lost", connsLost, int64(st.ConnsLost))
	check("metric supervisor.incarnations", reg.Total("supervisor.incarnations"), incs)
	check("metric supervisor.state_lost", reg.Total("supervisor.state_lost"), stateLost)
	check("metric supervisor.breaker_open", reg.Total("supervisor.breaker_open"), breakers)
	check("metric supervisor.backoff_cycles", reg.Total("supervisor.backoff_cycles"), backoffs)
	check("metric supervisor.breaker_window", reg.Total("supervisor.breaker_window"), window)
	check("fleet breakers vs supervisor breakers", int64(st.BreakersOpen), breakers)

	// Zero silent deaths: every incarnation death is a reboot or a breaker.
	check("silent deaths (state_lost vs restarts+breakers)", stateLost, restarts+breakers)

	// Every traced request reaches exactly one terminal at the balancer.
	check("terminals vs sent", st.ReqsDone+st.ReqsLost, int64(fr.Res.Sent))

	// Span-log cross-check (skipped when the bounded log overflowed).
	if st.Dropped == 0 {
		counts := map[string]int64{}
		for _, e := range fr.Spans {
			counts[e.Kind]++
		}
		check("span replica-up vs boots", counts[obsv.SpanReplicaUp], int64(st.Boots))
		check("span replica-down vs deaths", counts[obsv.SpanReplicaDown], int64(st.Deaths))
		check("span handoff vs handoffs", counts[obsv.SpanHandoff], int64(st.Handoffs))
		check("span reboot vs restarts", counts[obsv.SpanReboot], restarts)
		check("span breaker-open vs breakers", counts[obsv.SpanBreakerOpen], breakers)
		check("span shed vs sheds", counts[obsv.SpanShed], st.Sheds)
		check("span unrecovered", counts[obsv.SpanUnrecovered], st.Unrecovered)
		check("span req-start vs req_starts", counts[obsv.SpanReqStart], st.ReqStarts)
		check("span req-done vs req_done", counts[obsv.SpanReqDone], st.ReqsDone)
		check("span req-lost vs req_lost", counts[obsv.SpanReqLost], st.ReqsLost)
		errs = append(errs, traceCausality(fr.Spans)...)
	}
	return errs
}

// fleetSizes is the paper-style scaling sweep.
var fleetSizes = []int{1, 2, 4, 8}

// Fleet runs the replica-scaling chaos experiment: the chaos fault matrix
// (fail-stop + fail-silent x all five apps, one planted fault per cell)
// with every campaign replicated behind the deterministic L4 balancer at
// each requested replica count (default 1/2/4/8). Every campaign's three
// accounting surfaces are reconciled; the result is byte-identical for a
// fixed seed at any Parallelism.
func (r Runner) Fleet(sizes ...int) (FleetResult, error) {
	r = r.withDefaults()
	if len(sizes) == 0 {
		sizes = fleetSizes
	}
	var out FleetResult
	out.Requests = r.Requests

	// Plan serially: one planted fault per app x kind cell, shared by
	// every replica of every campaign that runs the cell (a homogeneous
	// fleet with a seeded bug).
	type fleetJob struct {
		app   *apps.App
		kind  faultinj.Kind
		fault faultinj.Fault
		size  int
	}
	var jobs []fleetJob
	for _, app := range apps.All() {
		for _, kind := range chaosKinds {
			faults, err := r.planFaults(app, kind, 1)
			if err != nil {
				return out, fmt.Errorf("fleet %s/%s: %w", app.Name, kind, err)
			}
			if len(faults) == 0 {
				continue
			}
			for _, size := range sizes {
				jobs = append(jobs, fleetJob{app: app, kind: kind, fault: faults[0], size: size})
			}
		}
	}

	runs := make([]*fleetRun, len(jobs))
	if err := r.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		f := j.fault
		fr, err := r.fleetRun(j.app, &f, j.size, r.Seed+1000*int64(i+1))
		if err != nil {
			return fmt.Errorf("fleet %s/%s x%d: %w", j.app.Name, j.kind, j.size, err)
		}
		if errs := fr.reconcile(); len(errs) > 0 {
			return fmt.Errorf("fleet %s/%s x%d: accounting did not reconcile:\n  %s",
				j.app.Name, j.kind, j.size, strings.Join(errs, "\n  "))
		}
		runs[i] = fr
		return nil
	}); err != nil {
		return out, err
	}

	// Reduce in job order: rows aggregate per size; spans concatenate on
	// an experiment-global clock and trace-ID space so the merged log is
	// causally valid across campaigns at any Parallelism.
	rowIdx := map[int]int{}
	var clock, traceBase int64
	for i, j := range jobs {
		fr := runs[i]
		idx, ok := rowIdx[j.size]
		if !ok {
			idx = len(out.Rows)
			rowIdx[j.size] = idx
			out.Rows = append(out.Rows, FleetRow{
				Replicas: j.size, cleanHist: obsv.NewHist(), recovHist: obsv.NewHist(),
			})
		}
		row := &out.Rows[idx]
		row.Campaigns++
		out.Campaigns++
		survived := !fr.Res.ServerDied && !fr.Res.Stalled
		if survived {
			row.Survived++
			out.Survived++
		}
		row.Completed += fr.Res.Completed
		row.Lost += r.Requests - fr.Res.Completed
		row.Boots += fr.St.Boots
		row.Deaths += fr.St.Deaths
		row.Failovers += fr.St.Failovers
		row.Drains += fr.St.Drains + fr.St.DrainExpired
		row.Parked += fr.St.Parked
		row.Breakers += fr.St.BreakersOpen
		row.WallCycles += fr.Wall
		if fr.Res.CleanLatency != nil {
			row.cleanHist.Merge(fr.Res.CleanLatency)
		}
		if fr.Res.RecoveryLatency != nil {
			row.recovHist.Merge(fr.Res.RecoveryLatency)
		}
		for _, e := range fr.Spans {
			e.Cycles += clock
			if e.Trace != 0 {
				e.Trace += traceBase
			}
			e.Seq = 0
			out.Spans = append(out.Spans, e)
		}
		clock += fr.Wall
		traceBase += int64(fr.Res.Sent)
	}
	out.Traces = traceBase

	var base float64
	for i := range out.Rows {
		row := &out.Rows[i]
		if row.WallCycles > 0 {
			row.Goodput = float64(row.Completed) / float64(row.WallCycles) * 1e6
		}
		if i == 0 {
			base = row.Goodput
		}
		if base > 0 {
			row.ScaleX = row.Goodput / base
		}
		row.Clean = row.cleanHist.Percentiles()
		row.Recovery = row.recovHist.Percentiles()
	}
	return out, nil
}

// Render prints the scaling table plus the experiment summary.
func (f FleetResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet scaling: chaos fault matrix behind the L4 balancer (%d requests per campaign)\n", f.Requests)
	fmt.Fprintf(&sb, "%4s %5s %4s | %9s %6s | %5s %6s %8s %6s %6s %4s | %8s %6s | %11s %11s\n",
		"reps", "camps", "surv",
		"completed", "lost",
		"boots", "deaths", "failover", "drain", "parked", "brk",
		"goodput", "scale",
		"p999(clean)", "p999(recov)")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%4d %5d %4d | %9d %6d | %5d %6d %8d %6d %6d %4d | %8.2f %5.2fx | %11d %11d\n",
			row.Replicas, row.Campaigns, row.Survived,
			row.Completed, row.Lost,
			row.Boots, row.Deaths, row.Failovers, row.Drains, row.Parked, row.Breakers,
			row.Goodput, row.ScaleX,
			row.Clean.P999, row.Recovery.P999)
	}
	pct := 0.0
	if f.Campaigns > 0 {
		pct = float64(f.Survived) / float64(f.Campaigns) * 100
	}
	fmt.Fprintf(&sb, "overall: %d/%d campaigns survived (%.1f%%), %d traced requests across %d spans\n",
		f.Survived, f.Campaigns, pct, f.Traces, len(f.Spans))
	return sb.String()
}

// WriteTrace writes the experiment-global span log as JSONL, re-stamped
// with dense sequence numbers (the obsvlint trace schema).
func (f FleetResult) WriteTrace(w io.Writer) error {
	log := &obsv.SpanLog{Limit: len(f.Spans) + 1}
	for _, e := range f.Spans {
		e.Seq = 0
		log.Append(e)
	}
	return log.WriteJSONL(w)
}
