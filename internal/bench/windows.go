package bench

import (
	"fmt"
	"sort"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
)

// WindowRow profiles one server's crash-transaction windows.
type WindowRow struct {
	Server        string
	Transactions  int
	PerRequest    float64
	StepsP50      int64
	StepsP90      int64
	StepsMax      int64
	WriteLinesP50 int64
	WriteLinesMax int64
}

// WindowResult is the transaction-window profile.
type WindowResult struct {
	Rows []WindowRow
}

// TxWindows quantifies the abstract's claim that FIRestarter's "recovery
// windows are small and frequent compared to traditional checkpoint-
// restart": per server, how many crash transactions a request spans and
// how many instructions/dirty lines each window holds. Small windows are
// what make HTM checkpointing viable and rollback near-instantaneous.
func (r Runner) TxWindows() (WindowResult, error) {
	r = r.withDefaults()
	var out WindowResult
	for _, app := range apps.All() {
		inst, res, err := r.measure(app, bootOpts{})
		if err != nil {
			return out, err
		}
		if res.ServerDied || res.Completed == 0 {
			return out, fmt.Errorf("txwindows %s: run failed (%+v)", app.Name, res)
		}
		st := inst.rt.Stats()
		row := WindowRow{
			Server:       app.Name,
			Transactions: len(st.TxSteps),
			PerRequest:   float64(len(st.TxSteps)) / float64(res.Completed),
		}
		// Exact sorted-rank percentiles: this table is part of the default
		// suite, whose output is pinned byte-for-byte across releases, so
		// it must not move to the log-bucket histogram approximation the
		// request-latency tables use.
		if n := len(st.TxSteps); n > 0 {
			steps := append([]int64(nil), st.TxSteps...)
			sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
			row.StepsP50 = steps[n/2]
			row.StepsP90 = steps[n*9/10]
			row.StepsMax = steps[n-1]
		}
		if n := len(st.TxWriteLines); n > 0 {
			lines := append([]int64(nil), st.TxWriteLines...)
			sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
			row.WriteLinesP50 = lines[n/2]
			row.WriteLinesMax = lines[n-1]
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the window profile.
func (w WindowResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Crash-transaction windows: small and frequent (abstract's claim)\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s | %8s %8s %8s | %10s %10s\n",
		"server", "txs", "tx/req", "p50", "p90", "max", "wset p50", "wset max")
	for _, row := range w.Rows {
		fmt.Fprintf(&sb, "%-10s %8d %8.1f | %8d %8d %8d | %10d %10d\n",
			row.Server, row.Transactions, row.PerRequest,
			row.StepsP50, row.StepsP90, row.StepsMax,
			row.WriteLinesP50, row.WriteLinesMax)
	}
	sb.WriteString("(steps = instructions per window; wset = dirty lines / undo entries)\n")
	return sb.String()
}
