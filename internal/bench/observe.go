package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// ObserveResult is one fully-instrumented run: the hardened app driven
// under the standard workload with structured spans, the metrics registry
// and the guest profiler all enabled.
type ObserveResult struct {
	App      string
	Workload workload.Result
	Spans    []obsv.SpanEvent
	Dropped  int64
	Registry *obsv.Registry
	Profile  *obsv.Profile
	TopN     int

	// RecoveryEvents is the trap→resume recovery-latency distribution
	// (Stats().LatencyCycles rebuilt as a histogram); the per-request
	// clean/recovery split lives on Workload.CleanLatency /
	// Workload.RecoveryLatency.
	RecoveryEvents *obsv.Hist

	errors []string
}

// Observe boots the named app hardened (default config, the Fig. 7
// fault-free setup), attaches the full observability stack, drives the
// standard workload, and cross-checks the three outputs against the
// runtime's own counters before returning. Everything is cycle-domain:
// for a fixed seed the result renders byte-identical on any host.
func (r Runner) Observe(appName string) (*ObserveResult, error) {
	r = r.withDefaults()
	app := apps.ByName(appName)
	if app == nil {
		return nil, fmt.Errorf("bench: unknown app %q", appName)
	}
	inst, err := boot(app, bootOpts{cfg: perfConfig(0, 0, 0, r.Seed), backend: r.Backend})
	if err != nil {
		return nil, err
	}
	inst.rt.EnableSpans()
	prof := obsv.NewProfile()
	inst.m.SetProfiler(prof)

	reg := obsv.NewRegistry()
	d := &workload.Driver{
		OS: inst.os, M: inst.m, Port: inst.app.Port,
		Gen:         workload.ForProtocol(inst.app.Protocol),
		Concurrency: r.Concurrency,
		Seed:        r.Seed,
		Metrics:     reg,
		Sink:        inst.rt,
	}
	res := d.Run(r.Requests)
	prof.Finish(inst.m.Cycles, inst.m.Steps)
	inst.rt.PublishMetrics(reg)

	recovery := histOf(inst.rt.Stats().LatencyCycles)
	out := &ObserveResult{
		App:            appName,
		Workload:       res,
		Spans:          inst.rt.Spans(),
		Dropped:        inst.rt.TraceDropped(),
		Registry:       reg,
		Profile:        prof,
		TopN:           12,
		RecoveryEvents: recovery,
	}
	out.reconcile(inst)
	if len(out.errors) > 0 {
		return out, fmt.Errorf("bench: observability reconciliation failed:\n  %s",
			strings.Join(out.errors, "\n  "))
	}
	return out, nil
}

// reconcile cross-checks the three observability outputs against the
// runtime's hand-rolled counters — the tentpole's acceptance criterion.
func (o *ObserveResult) reconcile(inst *instance) {
	check := func(name string, got, want int64) {
		if got != want {
			o.errors = append(o.errors, fmt.Sprintf("%s: %d != %d", name, got, want))
		}
	}
	st := inst.rt.Stats()
	hs := inst.rt.HTMStats()
	reg := o.Registry
	check("metrics core.crashes vs Stats", reg.Total("core.crashes"), st.Crashes)
	check("metrics core.injections vs Stats", reg.Total("core.injections"), st.Injections)
	check("metrics core.htm_begins vs Stats", reg.Total("core.htm_begins"), st.HTMBegins)
	check("metrics htm.begins vs HTMStats", reg.Total("htm.begins"), hs.Begins)
	check("metrics htm.aborts vs HTMStats", reg.Total("htm.aborts"), hs.Aborts)
	check("metrics workload.completed vs Result",
		reg.Total("workload.completed"), int64(o.Workload.Completed))

	// Spans: one begin per transaction begin, one commit per commit.
	var begins, commits int64
	for _, e := range o.Spans {
		switch e.Kind {
		case obsv.SpanBegin:
			begins++
		case obsv.SpanCommit:
			commits++
		}
	}
	if o.Dropped == 0 {
		check("span begins vs begin counters", begins, st.HTMBegins+st.STMBegins)
		check("span commits vs commit counters", commits, st.HTMCommits+st.STMCommits)
	}

	// Request tracing: every span surface must agree with the runtime's
	// request counters, and the driver's latency split must account for
	// exactly the requests that reached a terminal req-done.
	check("metrics core.req_starts vs Stats", reg.Total("core.req_starts"), st.ReqStarts)
	check("metrics core.req_done vs Stats", reg.Total("core.req_done"), st.ReqsDone)
	check("metrics core.req_lost vs Stats", reg.Total("core.req_lost"), st.ReqsLost)
	check("req terminals vs sent", st.ReqsDone+st.ReqsLost, int64(o.Workload.Sent))
	clean, recovered := o.Workload.CleanLatency, o.Workload.RecoveryLatency
	check("latency split count vs req_done", clean.Count()+recovered.Count(), st.ReqsDone)
	if o.Dropped == 0 {
		// Replay the span log in emission order: a request lands in the
		// recovery-touched split iff a recovery span referenced its trace
		// before its terminal req-done — the same order-sensitive rule the
		// runtime applies live, reproduced here purely from the log.
		var reqStarts, reqDone, reqLost, touchedDone int64
		touched := map[int64]bool{}
		for _, e := range o.Spans {
			switch e.Kind {
			case obsv.SpanReqStart:
				reqStarts++
			case obsv.SpanReqDone:
				reqDone++
				if touched[e.Trace] {
					touchedDone++
				}
			case obsv.SpanReqLost:
				reqLost++
			default:
				if e.Trace != 0 && recoverySpanKind(e.Kind) {
					touched[e.Trace] = true
				}
			}
		}
		check("span req-start vs Stats", reqStarts, st.ReqStarts)
		check("span req-done vs Stats", reqDone, st.ReqsDone)
		check("span req-lost vs Stats", reqLost, st.ReqsLost)
		check("recovery-touched req-done vs latency split", touchedDone, recovered.Count())
	}

	// The recovery-event histogram must reproduce Stats().LatencyCycles
	// exactly on its lossless surfaces (count, sum, max).
	var latSum, latMax int64
	for _, v := range st.LatencyCycles {
		latSum += v
		if v > latMax {
			latMax = v
		}
	}
	check("recovery hist count vs LatencyCycles", o.RecoveryEvents.Count(), int64(len(st.LatencyCycles)))
	check("recovery hist sum vs LatencyCycles", o.RecoveryEvents.Sum(), latSum)
	check("recovery hist max vs LatencyCycles", o.RecoveryEvents.Max(), latMax)

	// Profiler: flat attribution must sum to the machine's charged total.
	var flat int64
	for _, f := range o.Profile.Funcs() {
		flat += f.FlatCycles
	}
	check("profiler flat sum vs machine cycles", flat, inst.m.Cycles)
	check("profiler total vs machine cycles", o.Profile.TotalCycles(), inst.m.Cycles)
}

// histOf builds a histogram over a sample slice.
func histOf(samples []int64) *obsv.Hist {
	h := obsv.NewHist()
	for _, v := range samples {
		h.Observe(v)
	}
	return h
}

// recoverySpanKind reports whether a span kind marks recovery machinery
// acting on a request (mirrors the runtime's touched-trace marking).
func recoverySpanKind(kind string) bool {
	switch kind {
	case obsv.SpanAbort, obsv.SpanCrash, obsv.SpanRetry, obsv.SpanInject,
		obsv.SpanLatchSTM, obsv.SpanRecovered, obsv.SpanUnrecovered, obsv.SpanShed:
		return true
	}
	return false
}

// WriteTrace writes the span log as JSONL.
func (o *ObserveResult) WriteTrace(w io.Writer) error {
	log := &obsv.SpanLog{Limit: len(o.Spans) + 1}
	for _, e := range o.Spans {
		e.Seq = 0 // re-stamped by the log
		log.Append(e)
	}
	return log.WriteJSONL(w)
}

// WriteMetrics writes the aggregated registry as JSONL.
func (o *ObserveResult) WriteMetrics(w io.Writer) error { return o.Registry.WriteJSONL(w) }

// WriteProfile writes the guest profile as JSONL.
func (o *ObserveResult) WriteProfile(w io.Writer) error { return o.Profile.WriteJSONL(w) }

// Render summarizes the observed run: workload outcome, span/metric
// volume, and the profiler's top-N table.
func (o *ObserveResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Observability: %s hardened, %d completed (%d bad), %s cycles/req\n",
		o.App, o.Workload.Completed, o.Workload.BadResp,
		workload.FormatCPR(o.Workload.CyclesPerRequest()))
	fmt.Fprintf(&sb, "spans: %d recorded, %d dropped; metrics: %d series\n",
		len(o.Spans), o.Dropped, o.Registry.Len())
	sb.WriteString("\nRequest latency (cycles, delivery to validated response):\n")
	fmt.Fprintf(&sb, "%-18s %7s %10s %10s %10s %10s %10s\n",
		"class", "count", "p50", "p90", "p99", "p999", "max")
	renderLatencyRow(&sb, "clean", o.Workload.CleanLatency)
	renderLatencyRow(&sb, "recovery-touched", o.Workload.RecoveryLatency)
	if o.RecoveryEvents.Count() > 0 {
		p := o.RecoveryEvents.Percentiles()
		fmt.Fprintf(&sb, "recovery events (trap->resume): count=%d p50=%d p99=%d p999=%d max=%d\n",
			o.RecoveryEvents.Count(), p.P50, p.P99, p.P999, o.RecoveryEvents.Max())
	}
	sb.WriteString("\nGuest profile (top by flat cycles):\n")
	sb.WriteString(o.Profile.RenderTop(o.TopN))
	return sb.String()
}

// renderLatencyRow prints one class of the tail-latency table.
func renderLatencyRow(sb *strings.Builder, class string, h *obsv.Hist) {
	if h == nil {
		h = obsv.NewHist()
	}
	p := h.Percentiles()
	fmt.Fprintf(sb, "%-18s %7d %10d %10d %10d %10d %10d\n",
		class, h.Count(), p.P50, p.P90, p.P99, p.P999, h.Max())
}
