// Package bench regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment returns a typed result with a Render
// method that prints the same rows/series the paper reports; the
// EXPERIMENTS.md file records paper-vs-measured for each.
//
// All experiments are deterministic: workloads, fault plans and the HTM
// interrupt process are seeded, and the performance metric is the
// interpreter's cost-model cycle count rather than wall-clock time.
package bench

import (
	"fmt"
	"math"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libmodel"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// Runner parameterizes all experiments.
type Runner struct {
	// Requests per measurement run (default 300).
	Requests int
	// Concurrency is the number of simulated clients (default 4).
	Concurrency int
	// Seed drives workload mixes, fault planning and the interrupt
	// process.
	Seed int64
	// FaultsPerServer bounds the Table IV fault campaigns (default 12).
	FaultsPerServer int

	// Parallelism bounds the worker pool the experiment campaigns fan
	// their isolated measurement runs across. Values <= 1 run serially.
	// Results are identical either way: every run is hermetically seeded
	// and results are assembled in job order (see parallel.go).
	Parallelism int

	// Backend selects the interpreter execution strategy for every
	// machine the experiments boot: "" or "tree" for the tree-walker,
	// "bytecode" for the compiled-bytecode backend. The two are
	// bit-identical in every observable (outcomes, cycles, stats,
	// rendered tables); the diff-smoke harness enforces it.
	Backend string

	// RecordDir, when set, arms the flight recorder: supervised
	// campaigns capture a replay manifest (plus companion span stream)
	// for every incarnation that ends unrecovered or with the breaker
	// open, and the open-loop sweep records every failing rung. Files
	// land in this directory, named in reduction (job) order so the set
	// is identical at any Parallelism. Empty (the default) records
	// nothing and changes no output.
	RecordDir string
}

func (r Runner) withDefaults() Runner {
	if r.Requests == 0 {
		r.Requests = 300
	}
	if r.Concurrency == 0 {
		r.Concurrency = 4
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.FaultsPerServer == 0 {
		r.FaultsPerServer = 12
	}
	return r
}

// instance is one booted server (vanilla or hardened).
type instance struct {
	app *apps.App
	os  *libsim.OS
	m   *interp.Machine
	rt  *core.Runtime // nil for vanilla
	tr  *transform.Result
}

// bootOpts configures boot.
type bootOpts struct {
	vanilla  bool
	cfg      core.Config
	fault    *faultinj.Fault
	prelatch []int
	model    *libmodel.Model // nil = libmodel.Default()
	backend  string          // interpreter backend (see Runner.Backend)
}

// installBackend applies a Runner.Backend selection to a machine.
func installBackend(m *interp.Machine, backend string) error {
	switch backend {
	case "", "tree":
		return nil
	case "bytecode":
		return interp.UseBytecode(m)
	default:
		return fmt.Errorf("bench: unknown backend %q (want tree or bytecode)", backend)
	}
}

// boot compiles (optionally fault-plants, optionally hardens) and loads an
// app.
func boot(app *apps.App, o bootOpts) (*instance, error) {
	prog, err := app.Compile()
	if err != nil {
		return nil, err
	}
	if o.fault != nil {
		prog, err = faultinj.Apply(prog, *o.fault)
		if err != nil {
			return nil, err
		}
	}
	osim := libsim.New(mem.NewSpace())
	if app.Setup != nil {
		app.Setup(osim)
	}
	inst := &instance{app: app, os: osim}
	if o.vanilla {
		m, err := interp.New(prog.Clone(), osim, nil)
		if err != nil {
			return nil, err
		}
		if err := installBackend(m, o.backend); err != nil {
			return nil, err
		}
		inst.m = m
		return inst, nil
	}
	tr, err := transform.Apply(prog, o.model)
	if err != nil {
		return nil, err
	}
	rt := core.New(tr, osim, o.cfg)
	m, err := interp.New(tr.Prog, osim, rt)
	if err != nil {
		return nil, err
	}
	if err := installBackend(m, o.backend); err != nil {
		return nil, err
	}
	rt.Attach(m)
	for _, site := range o.prelatch {
		rt.LatchSTM(site)
	}
	inst.m, inst.rt, inst.tr = m, rt, tr
	return inst, nil
}

// armQuiesce runs a freshly booted hardened server until it blocks for
// the first time — which must happen inside the app's declared quiesce
// function (its accept/event loop) — and registers the snapshot with the
// runtime, enabling the request-shedding rung. No-op for vanilla
// instances and apps that declare no quiesce point.
func armQuiesce(inst *instance) error {
	if inst.rt == nil || inst.app.QuiesceFunc == "" {
		return nil
	}
	out := inst.m.Run(5_000_000)
	if out.Kind != interp.OutBlocked {
		return fmt.Errorf("bench: %s did not reach its quiesce point (outcome %v)",
			inst.app.Name, out.Kind)
	}
	if fn := inst.m.CurrentFunc(); fn != inst.app.QuiesceFunc {
		return fmt.Errorf("bench: %s blocked in %q, quiesce point is %q",
			inst.app.Name, fn, inst.app.QuiesceFunc)
	}
	inst.rt.ArmQuiesce(inst.m)
	return nil
}

// drive runs the app's standard workload against the instance.
func (r Runner) drive(inst *instance) workload.Result {
	d := &workload.Driver{
		OS: inst.os, M: inst.m, Port: inst.app.Port,
		Gen:         workload.ForProtocol(inst.app.Protocol),
		Concurrency: r.Concurrency,
		Seed:        r.Seed,
	}
	return d.Run(r.Requests)
}

// measure boots and drives, returning cycles/request plus the instance for
// stat extraction.
func (r Runner) measure(app *apps.App, o bootOpts) (*instance, workload.Result, error) {
	o.backend = r.Backend
	inst, err := boot(app, o)
	if err != nil {
		return nil, workload.Result{}, err
	}
	res := r.drive(inst)
	return inst, res, nil
}

// overheadPct converts a variant/baseline cycles-per-request pair into the
// paper's "normalized performance overhead" percentage. Dead-server runs
// report +Inf cycles/request (Result.CyclesPerRequest); any non-finite
// input would poison the whole column, so the aggregation degrades to 0
// and the run's death stays visible through the completed/failed columns.
func overheadPct(variant, baseline float64) float64 {
	if baseline == 0 || math.IsInf(variant, 0) || math.IsInf(baseline, 0) {
		return 0
	}
	return (variant/baseline - 1) * 100
}

// findLibBlock locates the nth block of fn containing a call to lib — the
// targeted fault placement used by the real-world case studies (§VI-F).
func findLibBlock(prog *ir.Program, fn, lib string, nth int) (faultinj.BlockRef, error) {
	f := prog.Funcs[fn]
	if f == nil {
		return faultinj.BlockRef{}, fmt.Errorf("bench: no function %q", fn)
	}
	seen := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpLib && b.Instrs[i].Name == lib {
				seen++
				if seen == nth {
					return faultinj.BlockRef{Func: fn, Block: b.ID}, nil
				}
			}
		}
	}
	return faultinj.BlockRef{}, fmt.Errorf("bench: %s has no %d-th call to %s", fn, nth, lib)
}

// planFaults profiles app under the standard workload and plans faults in
// non-critical executed blocks (the §VI-B methodology).
func (r Runner) planFaults(app *apps.App, kind faultinj.Kind, max int) ([]faultinj.Fault, error) {
	prog, err := app.Compile()
	if err != nil {
		return nil, err
	}
	osim := libsim.New(mem.NewSpace())
	if app.Setup != nil {
		app.Setup(osim)
	}
	m, err := interp.New(prog.Clone(), osim, nil)
	if err != nil {
		return nil, err
	}
	// Fault planning profiles block execution; route it through the
	// selected backend too (the block-hook stream is backend-invariant,
	// which the differential harness relies on).
	if err := installBackend(m, r.Backend); err != nil {
		return nil, err
	}
	profile := faultinj.NewProfile()
	m.BlockHook = profile.HookFunc
	m.Run(5_000_000) // startup until the first block on I/O
	profile.MarkServing()
	d := &workload.Driver{
		OS: osim, M: m, Port: app.Port,
		Gen:         workload.ForProtocol(app.Protocol),
		Concurrency: r.Concurrency, Seed: r.Seed,
	}
	d.Run(r.Requests / 2)
	m.BlockHook = nil
	candidates := profile.ServingBlocks(prog.Entry)
	return faultinj.PlanFaults(prog, candidates, kind, max, r.Seed), nil
}
