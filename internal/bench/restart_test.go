package bench

import "testing"

// TestRestartBaselineDoesNotOvercountLostRequests is the regression test
// for the vanilla strategy's crash accounting: a crash used to charge the
// full client pool (r.Concurrency) as failed even when fewer requests
// were outstanding or the campaign owed fewer, driving `remaining`
// negative and inflating Failed past the request budget. With
// Requests=116, Concurrency=8, Seed=1 the server dies after completing
// 112 requests with the full burst of 8 in flight but only 4 still owed,
// so the old code reports Completed+Failed = 120 > 116. (The per-client
// request streams need enough depth per client to reach the INCR cases
// that arm the fault — each client draws its own seq, so the crash sits
// at request 112 rather than the shared-rng scenario's 16.)
func TestRestartBaselineDoesNotOvercountLostRequests(t *testing.T) {
	r := Runner{Requests: 116, Concurrency: 8, Seed: 1}
	res, err := r.AblationRestartBaseline()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0]
	if v.Restarts < 1 {
		t.Fatalf("scenario did not crash the vanilla server (restarts=%d); the test needs a death near the budget's end", v.Restarts)
	}
	if v.Completed+v.Failed > r.Requests {
		t.Fatalf("vanilla row over-counts: completed=%d + failed=%d = %d > %d requested",
			v.Completed, v.Failed, v.Completed+v.Failed, r.Requests)
	}
	if v.Failed < v.Restarts {
		t.Fatalf("each crash loses at least its outstanding request: failed=%d < restarts=%d", v.Failed, v.Restarts)
	}
}
