package bench

import "testing"

// TestRestartBaselineDoesNotOvercountLostRequests is the regression test
// for the vanilla strategy's crash accounting: a crash used to charge the
// full client pool (r.Concurrency) as failed even when fewer requests
// were outstanding or the campaign owed fewer, driving `remaining`
// negative and inflating Failed past the request budget. With
// Requests=20, Concurrency=8, Seed=1 the server dies when only 4
// requests remain, so the old code reports Completed+Failed = 24 > 20.
func TestRestartBaselineDoesNotOvercountLostRequests(t *testing.T) {
	r := Runner{Requests: 20, Concurrency: 8, Seed: 1}
	res, err := r.AblationRestartBaseline()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0]
	if v.Restarts < 1 {
		t.Fatalf("scenario did not crash the vanilla server (restarts=%d); the test needs a death near the budget's end", v.Restarts)
	}
	if v.Completed+v.Failed > r.Requests {
		t.Fatalf("vanilla row over-counts: completed=%d + failed=%d = %d > %d requested",
			v.Completed, v.Failed, v.Completed+v.Failed, r.Requests)
	}
	if v.Failed < v.Restarts {
		t.Fatalf("each crash loses at least its outstanding request: failed=%d < restarts=%d", v.Failed, v.Restarts)
	}
}
