package bench

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestParallelHarnessMatchesSerial is the determinism guarantee of the
// parallel harness: for a fixed seed, fanning a campaign's measurement
// runs across a worker pool must render byte-identical output to the
// serial campaign. Figure 6 covers the flattened multi-stage sweep,
// Figure 7 the per-server/per-variant fan-out, and Table IV the
// fault-campaign reduction.
func TestParallelHarnessMatchesSerial(t *testing.T) {
	serial := Runner{Requests: 60, Concurrency: 4, Seed: 5, FaultsPerServer: 3}
	parallel := serial
	parallel.Parallelism = 4

	t.Run("figure6", func(t *testing.T) {
		s, err := serial.Figure6()
		if err != nil {
			t.Fatal(err)
		}
		p, err := parallel.Figure6()
		if err != nil {
			t.Fatal(err)
		}
		if s.Render() != p.Render() {
			t.Errorf("parallel Figure6 diverged from serial:\nserial:\n%s\nparallel:\n%s", s.Render(), p.Render())
		}
	})

	t.Run("figure7", func(t *testing.T) {
		s, err := serial.Figure7()
		if err != nil {
			t.Fatal(err)
		}
		p, err := parallel.Figure7()
		if err != nil {
			t.Fatal(err)
		}
		if s.Render() != p.Render() {
			t.Errorf("parallel Figure7 diverged from serial:\nserial:\n%s\nparallel:\n%s", s.Render(), p.Render())
		}
		if s.RenderFigure8() != p.RenderFigure8() {
			t.Errorf("parallel Figure8 diverged from serial")
		}
	})

	t.Run("tableIV", func(t *testing.T) {
		s, err := serial.TableIV()
		if err != nil {
			t.Fatal(err)
		}
		p, err := parallel.TableIV()
		if err != nil {
			t.Fatal(err)
		}
		if s.Render() != p.Render() {
			t.Errorf("parallel TableIV diverged from serial:\nserial:\n%s\nparallel:\n%s", s.Render(), p.Render())
		}
	})
}

// TestForEach covers the pool mechanics: order-independent completion,
// full coverage, and lowest-index error reporting.
func TestForEach(t *testing.T) {
	for _, par := range []int{0, 1, 3, 16} {
		r := Runner{Parallelism: par}
		const n = 37
		var ran [n]int32
		if err := r.forEach(n, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("par=%d: job %d ran %d times", par, i, c)
			}
		}
	}

	// With workers, the reported error must be the lowest-indexed one —
	// what a serial run would have hit first.
	r := Runner{Parallelism: 4}
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := r.forEach(20, func(i int) error {
		switch i {
		case 3:
			return errLow
		case 17:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("err = %v, want the lowest-indexed error", err)
	}

	if err := r.forEach(0, func(int) error { t.Fatal("job ran for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}
