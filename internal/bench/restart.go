package bench

import (
	"fmt"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/supervisor"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// RestartRow is one strategy's outcome against the same persistent fault.
type RestartRow struct {
	Strategy     string
	Completed    int
	Failed       int // bad responses + requests lost to dead connections
	Restarts     int
	StateLost    int // times accumulated in-memory state was discarded
	Sheds        int // requests dropped by the shedding rung
	CyclesPerReq float64
}

// RestartResult compares crash-handling strategies.
type RestartResult struct {
	Rows []RestartRow
}

// AblationRestartBaseline stages the paper's motivating comparison (§I):
// a persistent fault in the Redis analog's request handling, faced by
//
//   - the traditional strategy — run unprotected under a supervisor that
//     restarts the process after every crash, losing all in-memory state
//     and every open connection;
//   - FIRestarter — roll back and divert, preserving both; and
//   - FIRestarter under the same supervisor — the full escalation ladder,
//     where shedding and microreboot back up the in-process rungs.
//
// The workload interleaves SETs with INCRs on hot keys; the fault sits on
// INCR's existing-key path, so it fires repeatedly once counters exist.
func (r Runner) AblationRestartBaseline() (RestartResult, error) {
	r = r.withDefaults()
	app := apps.Redis()
	prog, err := app.Compile()
	if err != nil {
		return RestartResult{}, err
	}
	ref, err := findLibBlock(prog, "execute", "atoi", 1)
	if err != nil {
		return RestartResult{}, err
	}
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0}

	var out RestartResult

	// Strategy 1: supervised restart of the unprotected server. The
	// breaker cap replaces the old ad-hoc 50-incarnation loop; work still
	// outstanding when it opens is counted as failed, not dropped.
	lr, err := r.ladderRun(app, bootOpts{vanilla: true, fault: &fault},
		supervisor.Config{MaxRestarts: 49, WindowCycles: 1 << 60})
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, lr.row("restart-on-crash (vanilla)"))

	// Strategy 2: FIRestarter alone on the same fault and workload volume.
	_, res, err := r.measure(app, bootOpts{fault: &fault})
	if err != nil {
		return out, err
	}
	firRow := RestartRow{
		Strategy:     "FIRestarter",
		Completed:    res.Completed,
		Failed:       res.BadResp,
		CyclesPerReq: res.CyclesPerRequest(),
	}
	if res.ServerDied {
		firRow.Restarts = 1
		firRow.StateLost = 1
	}
	out.Rows = append(out.Rows, firRow)

	// Strategy 3: the full ladder — FIRestarter hardened, quiesce point
	// armed, supervised with the default microreboot policy.
	lrFull, err := r.ladderRun(app, bootOpts{fault: &fault}, supervisor.Config{})
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, lrFull.row("FIRestarter + supervisor"))
	return out, nil
}

// row condenses a supervised campaign into one comparison row.
func (l *ladderRun) row(strategy string) RestartRow {
	row := RestartRow{
		Strategy:  strategy,
		Completed: l.Completed,
		Failed:    l.Failed,
		Restarts:  l.Sup.Restarts,
		StateLost: l.Sup.StateLost,
		Sheds:     int(l.Sheds),
	}
	row.CyclesPerReq = workload.Result{Cycles: l.Cycles, Completed: l.Completed}.CyclesPerRequest()
	return row
}

// Render prints the strategy comparison.
func (d RestartResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Baseline: restart-on-crash vs FIRestarter under a persistent fault (Redis)\n")
	fmt.Fprintf(&sb, "%-28s %10s %8s %9s %11s %7s %14s\n",
		"strategy", "completed", "failed", "restarts", "state lost", "sheds", "cycles/req")
	for _, row := range d.Rows {
		fmt.Fprintf(&sb, "%-28s %10d %8d %9d %11d %7d %14s\n",
			row.Strategy, row.Completed, row.Failed, row.Restarts, row.StateLost, row.Sheds,
			workload.FormatCPR(row.CyclesPerReq))
	}
	return sb.String()
}
