package bench

import (
	"fmt"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// RestartRow is one strategy's outcome against the same persistent fault.
type RestartRow struct {
	Strategy     string
	Completed    int
	Failed       int // bad responses + requests lost to dead connections
	Restarts     int
	StateLost    int // times accumulated in-memory state was discarded
	CyclesPerReq float64
}

// RestartResult compares crash-handling strategies.
type RestartResult struct {
	Rows []RestartRow
}

// AblationRestartBaseline stages the paper's motivating comparison (§I):
// a persistent fault in the Redis analog's request handling, faced by
//
//   - the traditional strategy — run unprotected and let a supervisor
//     restart the process after every crash, losing all in-memory state
//     and every open connection; and
//   - FIRestarter — roll back and divert, preserving both.
//
// The workload interleaves SETs with INCRs on hot keys; the fault sits on
// INCR's existing-key path, so it fires repeatedly once counters exist.
func (r Runner) AblationRestartBaseline() (RestartResult, error) {
	r = r.withDefaults()
	app := apps.Redis()
	prog, err := app.Compile()
	if err != nil {
		return RestartResult{}, err
	}
	ref, err := findLibBlock(prog, "execute", "atoi", 1)
	if err != nil {
		return RestartResult{}, err
	}
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0}

	var out RestartResult

	// Strategy 1: supervisor restart of the unprotected server.
	restartRow := RestartRow{Strategy: "restart-on-crash (vanilla)"}
	var totalCycles int64
	remaining := r.Requests
	for incarnation := 0; incarnation < 50 && remaining > 0; incarnation++ {
		inst, err := boot(app, bootOpts{vanilla: true, fault: &fault})
		if err != nil {
			return out, err
		}
		d := &workload.Driver{
			OS: inst.os, M: inst.m, Port: app.Port,
			Gen:         workload.ForProtocol(app.Protocol),
			Concurrency: r.Concurrency,
			Seed:        r.Seed + int64(incarnation),
		}
		res := d.Run(remaining)
		restartRow.Completed += res.Completed
		restartRow.Failed += res.BadResp
		totalCycles += res.Cycles
		remaining -= res.Completed + res.BadResp
		if res.ServerDied {
			restartRow.Restarts++
			restartRow.StateLost++
			// Every in-flight request dies with the process — the
			// requests actually outstanding at the crash, not the full
			// client pool (near the end of the campaign fewer than
			// Concurrency are in flight), and never more than the
			// campaign still owes.
			lost := res.Outstanding
			if lost > remaining {
				lost = remaining
			}
			restartRow.Failed += lost
			remaining -= lost
			continue
		}
		break
	}
	if restartRow.Completed > 0 {
		restartRow.CyclesPerReq = float64(totalCycles) / float64(restartRow.Completed)
	}
	out.Rows = append(out.Rows, restartRow)

	// Strategy 2: FIRestarter on the same fault and workload volume.
	inst, res, err := r.measure(app, bootOpts{fault: &fault})
	if err != nil {
		return out, err
	}
	firRow := RestartRow{
		Strategy:     "FIRestarter",
		Completed:    res.Completed,
		Failed:       res.BadResp,
		CyclesPerReq: res.CyclesPerRequest(),
	}
	if res.ServerDied {
		firRow.Restarts = 1
		firRow.StateLost = 1
	}
	_ = inst
	out.Rows = append(out.Rows, firRow)
	return out, nil
}

// Render prints the strategy comparison.
func (d RestartResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Baseline: restart-on-crash vs FIRestarter under a persistent fault (Redis)\n")
	fmt.Fprintf(&sb, "%-28s %10s %8s %9s %11s %14s\n",
		"strategy", "completed", "failed", "restarts", "state lost", "cycles/req")
	for _, row := range d.Rows {
		fmt.Fprintf(&sb, "%-28s %10d %8d %9d %11d %14.0f\n",
			row.Strategy, row.Completed, row.Failed, row.Restarts, row.StateLost, row.CyclesPerReq)
	}
	return sb.String()
}
