package bench

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/sched"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// threadWorkerCounts are the scaling points of the threads campaign.
var threadWorkerCounts = []int{1, 2, 4, 8}

// threadsQuantum is the scheduling slice of the campaign, in instructions.
// A request is a few hundred instructions (library calls are single
// instructions with large cycle costs), so the slice must be well below
// that for requests to actually overlap across workers — the default
// 4096-instruction quantum would let one worker drain the whole accept
// queue before anyone else runs.
const threadsQuantum = 192

// ThreadsRow is one worker-count measurement of the multi-worker server.
type ThreadsRow struct {
	Workers     int
	Completed   int
	BadResp     int
	WallPerReq  float64 // wall cycles (max per-thread) per completed request
	Speedup     float64 // row-0 WallPerReq / this row's WallPerReq
	HTMBegins   int64
	Aborts      int64
	ByCapacity  int64
	ByInterrupt int64
	ByConfl     int64
	ByExpl      int64
	STMCommits  int64
	Injections  int64
	Unrecovered int64
}

// ThreadsResult is the threads campaign: throughput scaling and the
// abort-cause breakdown, fault-free and under fault injection.
type ThreadsResult struct {
	FaultFree []ThreadsRow
	Faulted   []ThreadsRow
}

// mtInstance is one booted multi-worker server: a scheduler over N+1
// machines, with one recovery runtime per thread (hardened) joined
// through a shared conflict domain.
type mtInstance struct {
	app *apps.App
	os  *libsim.OS
	s   *sched.Sched
	rts []*core.Runtime
}

// bootMT compiles (optionally fault-plants, optionally hardens) and loads
// a multi-threaded app under the cooperative scheduler.
func bootMT(app *apps.App, o bootOpts) (*mtInstance, error) {
	prog, err := app.Compile()
	if err != nil {
		return nil, err
	}
	if o.fault != nil {
		prog, err = faultinj.Apply(prog, *o.fault)
		if err != nil {
			return nil, err
		}
	}
	osim := libsim.New(mem.NewSpace())
	if app.Setup != nil {
		app.Setup(osim)
	}
	inst := &mtInstance{app: app, os: osim}
	if o.vanilla {
		s, err := sched.New(prog.Clone(), osim, nil, sched.Options{Quantum: threadsQuantum})
		if err != nil {
			return nil, err
		}
		// Worker machines spawned later inherit the main machine's
		// backend through interp.NewThread.
		if err := installBackend(s.Main(), o.backend); err != nil {
			return nil, err
		}
		inst.s = s
		return inst, nil
	}
	tr, err := transform.Apply(prog, o.model)
	if err != nil {
		return nil, err
	}
	domain := htm.NewDomain()
	factory := func(tid int) sched.ThreadRuntime {
		cfg := o.cfg
		// Each thread is its own core: distinct TSX instance and
		// interrupt process, one shared conflict domain.
		cfg.HTM.Seed = cfg.HTM.Seed + int64(tid)*1_000_003
		rt := core.New(tr, osim, cfg)
		rt.SetDomain(domain, tid)
		inst.rts = append(inst.rts, rt)
		return rt
	}
	s, err := sched.New(tr.Prog, osim, factory, sched.Options{Quantum: threadsQuantum})
	if err != nil {
		return nil, err
	}
	if err := installBackend(s.Main(), o.backend); err != nil {
		return nil, err
	}
	inst.s = s
	return inst, nil
}

// driveMT runs the standard workload against a scheduled instance. The
// client pool is widened to at least 8 so every worker of the largest
// configuration has work.
func (r Runner) driveMT(inst *mtInstance) workload.Result {
	conc := r.Concurrency
	if conc < 8 {
		conc = 8
	}
	d := &workload.Driver{
		OS: inst.os, M: inst.s.Main(), S: inst.s, Port: inst.app.Port,
		Gen:         workload.ForProtocol(inst.app.Protocol),
		Concurrency: conc,
		Seed:        r.Seed,
	}
	return d.Run(r.Requests)
}

// threadsConfig is the hardened configuration of the threads campaign.
// Preemption-induced conflict aborts are transient — the line is free
// again two context switches later — so the single-core policy default
// (θ=1 %, S=4) would latch hot gates onto the serialized STM path almost
// immediately and erase the scaling the campaign measures. The campaign
// therefore runs the adaptive policy with a tolerance matched to
// multi-core noise, as the paper tunes θ per deployment (§IV-C).
func threadsConfig(seed int64) core.Config {
	return core.Config{
		Mode:       core.ModeHybrid,
		Threshold:  0.25,
		SampleSize: 256,
		HTM:        htm.Config{MeanInstrsPerInterrupt: interruptGap, Seed: seed},
	}
}

// threadsRow measures one worker count, hardened, optionally with a
// planted fault.
func (r Runner) threadsRow(workers int, fault *faultinj.Fault) (ThreadsRow, error) {
	app := apps.NginxMT(workers)
	inst, err := bootMT(app, bootOpts{cfg: threadsConfig(r.Seed), fault: fault, backend: r.Backend})
	if err != nil {
		return ThreadsRow{}, err
	}
	res := r.driveMT(inst)
	row := ThreadsRow{
		Workers:    workers,
		Completed:  res.Completed,
		BadResp:    res.BadResp,
		WallPerReq: res.CyclesPerRequest(),
	}
	// Each thread's runtime publishes into the shared registry under its
	// own thread label; the row reads cross-thread sums back out. The
	// registry is the same aggregation path `firebench -metrics-out`
	// exports, so the rendered table and the JSONL always agree.
	reg := inst.Metrics()
	row.HTMBegins = reg.Total("htm.begins")
	row.Aborts = reg.Total("htm.aborts")
	row.ByCapacity = reg.Total("htm.aborts_capacity")
	row.ByInterrupt = reg.Total("htm.aborts_interrupt")
	row.ByConfl = reg.Total("htm.aborts_conflict")
	row.ByExpl = reg.Total("htm.aborts_explicit")
	row.STMCommits = reg.Total("core.stm_commits")
	row.Injections = reg.Total("core.injections")
	row.Unrecovered = reg.Total("core.unrecovered")
	return row, nil
}

// Metrics aggregates every thread runtime's counters into one registry,
// each under its thread label, plus the scheduler's cycle accounting.
func (inst *mtInstance) Metrics() *obsv.Registry {
	reg := obsv.NewRegistry()
	for tid, rt := range inst.rts {
		rt.PublishMetrics(reg, obsv.L("thread", strconv.Itoa(tid)))
	}
	inst.s.PublishMetrics(reg)
	return reg
}

// Threads is the threads campaign (the multi-core half of the paper's
// testbed): the multi-worker Nginx analog is scaled across 1/2/4/8 worker
// threads, fault-free and with the §VI-F SSI fail-stop fault planted, and
// each point reports wall-cycle throughput and the abort-cause breakdown.
// Conflict aborts exist only here: they require another thread.
func (r Runner) Threads() (ThreadsResult, error) {
	r = r.withDefaults()

	// The planted fault reuses the real-world SSI case: fail-stop at the
	// block of serve_ssi's second pread, recovered by diverting EINVAL.
	prog, err := apps.NginxMT(1).Compile()
	if err != nil {
		return ThreadsResult{}, err
	}
	ref, err := findLibBlock(prog, "serve_ssi", "pread", 2)
	if err != nil {
		return ThreadsResult{}, err
	}
	fault := faultinj.Fault{ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0}

	out := ThreadsResult{
		FaultFree: make([]ThreadsRow, len(threadWorkerCounts)),
		Faulted:   make([]ThreadsRow, len(threadWorkerCounts)),
	}
	n := len(threadWorkerCounts)
	if err := r.forEach(2*n, func(i int) error {
		w := threadWorkerCounts[i%n]
		var f *faultinj.Fault
		if i >= n {
			f = &fault
		}
		row, err := r.threadsRow(w, f)
		if err != nil {
			return err
		}
		if i < n {
			out.FaultFree[i] = row
		} else {
			out.Faulted[i-n] = row
		}
		return nil
	}); err != nil {
		return ThreadsResult{}, err
	}
	for _, rows := range [][]ThreadsRow{out.FaultFree, out.Faulted} {
		base := rows[0].WallPerReq
		for i := range rows {
			if rows[i].WallPerReq > 0 && !math.IsInf(rows[i].WallPerReq, 0) && !math.IsInf(base, 0) {
				rows[i].Speedup = base / rows[i].WallPerReq
			}
		}
	}
	return out, nil
}

func renderThreadsTable(sb *strings.Builder, title string, rows []ThreadsRow) {
	sb.WriteString(title + "\n")
	fmt.Fprintf(sb, "%7s %9s %4s %14s %8s %9s %9s %10s %9s %9s %8s %7s\n",
		"workers", "completed", "bad", "wall-cyc/req", "speedup",
		"htm-txs", "capacity", "interrupt", "conflict", "explicit", "stm-cmt", "inject")
	for _, row := range rows {
		fmt.Fprintf(sb, "%7d %9d %4d %14s %7.2fx %9d %9d %10d %9d %9d %8d %7d\n",
			row.Workers, row.Completed, row.BadResp, workload.FormatCPR(row.WallPerReq), row.Speedup,
			row.HTMBegins, row.ByCapacity, row.ByInterrupt, row.ByConfl, row.ByExpl,
			row.STMCommits, row.Injections)
	}
}

// Render prints the scaling and abort-cause tables.
func (t ThreadsResult) Render() string {
	var sb strings.Builder
	renderThreadsTable(&sb, "Threads: multi-worker Nginx analog, hardened, fault-free", t.FaultFree)
	sb.WriteString("\n")
	renderThreadsTable(&sb, "Threads: same, with the SSI fail-stop fault planted (recovery via EINVAL divert)", t.Faulted)
	return sb.String()
}
