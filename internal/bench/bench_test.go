package bench

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/libmodel"
)

// Small runner so unit tests stay fast; the repo-root benchmarks use the
// full defaults.
func testRunner() Runner {
	return Runner{Requests: 80, Concurrency: 4, Seed: 1, FaultsPerServer: 4}
}

func TestTableIIMatchesPaperExactly(t *testing.T) {
	res := TableII()
	if res.Total != 101 {
		t.Fatalf("total = %d, want 101", res.Total)
	}
	want := map[libmodel.Class][2]int{
		libmodel.Reversible:    {23, 0},
		libmodel.NoReversion:   {9, 26},
		libmodel.Deferrable:    {5, 2},
		libmodel.StateRestore:  {12, 8},
		libmodel.Irrecoverable: {12, 4},
	}
	for class, w := range want {
		if res.Counts[class] != w {
			t.Errorf("%v: %v, want %v", class, res.Counts[class], w)
		}
	}
	out := res.Render()
	for _, s := range []string{"Operation reversible", "101", "61", "40"} {
		if !strings.Contains(out, s) {
			t.Errorf("render missing %q:\n%s", s, out)
		}
	}
}

func TestTableIIIRecoverableSurface(t *testing.T) {
	res, err := testRunner().TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.UniqueTx == 0 {
			t.Errorf("%s: no transactions observed", row.Server)
		}
		// Paper band: at least 77%% recoverable on all three servers.
		if row.RecoverablePct < 70 || row.RecoverablePct > 100 {
			t.Errorf("%s: recoverable = %.1f%%, want within [70,100]", row.Server, row.RecoverablePct)
		}
		if row.EmbeddedCalls == 0 {
			t.Errorf("%s: no embedded libcalls observed", row.Server)
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestTableIVSurvivability(t *testing.T) {
	res, err := testRunner().TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	totalInjected, totalRecovered := 0, 0
	for _, row := range res.Rows {
		totalInjected += row.FSInjected
		totalRecovered += row.FSRecovered
		// Fail-silent faults must mostly NOT crash (paper: 2 of 79).
		if row.SilInjected > 0 && row.SilTriggered > row.SilInjected/2 {
			t.Errorf("%s: %d/%d fail-silent faults crashed — too many",
				row.Server, row.SilTriggered, row.SilInjected)
		}
	}
	if totalInjected == 0 {
		t.Fatal("no fail-stop fault was ever triggered")
	}
	// Paper: overall recovery well above 70%.
	if float64(totalRecovered) < 0.5*float64(totalInjected) {
		t.Errorf("recovered %d of %d triggered faults — recovery surface collapsed",
			totalRecovered, totalInjected)
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure3PolicyOrdering(t *testing.T) {
	res, err := testRunner().Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	naive, manual, dynamic := res.Rows[0], res.Rows[1], res.Rows[2]
	// The paper's qualitative result: naive has the highest abort rate;
	// manual and dynamic both cut it drastically.
	if naive.HTMAbortPct <= manual.HTMAbortPct {
		t.Errorf("naive abort %.2f%% <= manual %.2f%%", naive.HTMAbortPct, manual.HTMAbortPct)
	}
	if naive.HTMAbortPct <= dynamic.HTMAbortPct {
		t.Errorf("naive abort %.2f%% <= dynamic %.2f%%", naive.HTMAbortPct, dynamic.HTMAbortPct)
	}
	if naive.DegradationPct <= dynamic.DegradationPct {
		t.Errorf("naive degradation %.1f%% <= dynamic %.1f%%", naive.DegradationPct, dynamic.DegradationPct)
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure5LatencyDistribution(t *testing.T) {
	res, err := testRunner().Figure5()
	if err != nil {
		t.Fatal(err)
	}
	gotSamples := false
	for _, row := range res.Rows {
		if row.Samples > 0 {
			gotSamples = true
			if row.MaxUs < row.P50us {
				t.Errorf("%s: max %.1f < p50 %.1f", row.Server, row.MaxUs, row.P50us)
			}
		}
	}
	if !gotSamples {
		t.Fatal("no recovery latency samples collected")
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure6SweepInsensitive(t *testing.T) {
	r := Runner{Requests: 60, Concurrency: 4, Seed: 1}
	res, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for name, cells := range res.Servers {
		if len(cells) != 16 {
			t.Errorf("%s: %d cells, want 16", name, len(cells))
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure7And8Shape(t *testing.T) {
	res, err := testRunner().Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The headline shape: FIRestarter is much cheaper than STM-only.
		if row.FIRestarterPct >= row.STMOnlyPct {
			t.Errorf("%s: FIRestarter %.1f%% >= STM-only %.1f%%",
				row.Server, row.FIRestarterPct, row.STMOnlyPct)
		}
		// And FIRestarter cuts HTM aborts versus HTM-only (Fig. 8).
		if row.FIRestarterAbortPct > row.HTMOnlyAbortPct && row.HTMOnlyAbortPct > 0 {
			t.Errorf("%s: FIRestarter abort %.2f%% > HTM-only %.2f%%",
				row.Server, row.FIRestarterAbortPct, row.HTMOnlyAbortPct)
		}
	}
	t.Logf("\n%s\n%s", res.Render(), res.RenderFigure8())
}

func TestFigure9MemoryOverhead(t *testing.T) {
	res, err := testRunner().Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Instrumented variants must cost memory (code duplication), but
		// not absurd amounts.
		if row.FIRestarterPct <= 0 {
			t.Errorf("%s: FIRestarter memory overhead %.1f%% <= 0", row.Server, row.FIRestarterPct)
		}
		if row.FIRestarterPct > 400 {
			t.Errorf("%s: FIRestarter memory overhead %.1f%% implausibly high", row.Server, row.FIRestarterPct)
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestRealWorldCaseStudies(t *testing.T) {
	res, err := testRunner().RealWorld()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(res.Cases))
	}
	for _, cs := range res.Cases {
		if !cs.Survived {
			t.Errorf("%s: server died", cs.Name)
			continue
		}
		if cs.Injections == 0 {
			t.Errorf("%s: no injection performed", cs.Name)
		}
		if !cs.FollowupOK {
			t.Errorf("%s: follow-up request failed", cs.Name)
		}
	}
	// The lighttpd case must produce the paper's 403.
	if !strings.Contains(res.Cases[1].FaultResponse, "403") {
		t.Errorf("lighttpd response = %q, want 403", res.Cases[1].FaultResponse)
	}
	t.Logf("\n%s", res.Render())
}
