package bench

import "sync"

// The experiment campaigns fan independent measurement runs across a
// bounded worker pool. This is safe because every run is hermetic: boot
// builds a fresh mem.Space / libsim.OS / interp.Machine triple, every
// random choice (workload mix, fault plan, HTM interrupt process) comes
// from an RNG seeded per run by Runner.Seed, and nothing in the repo
// touches global randomness or shared mutable state. Determinism is
// preserved by construction: each indexed job writes its result into a
// pre-sized slot and the caller assembles output in index order, so the
// rendered tables and figures are byte-identical to a serial run (a
// property locked in by TestParallelHarnessMatchesSerial).

// forEach runs jobs 0..n-1, in order when Parallelism <= 1, otherwise
// spread across min(Parallelism, n) workers. With workers, every job runs
// even if an earlier one fails (results land in caller-owned slots keyed
// by index); the error reported is the lowest-indexed one, matching what
// a serial run would have surfaced first.
func (r Runner) forEach(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := r.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
