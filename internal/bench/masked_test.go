package bench

import "testing"

func TestAblationMaskedWrites(t *testing.T) {
	res, err := testRunner().AblationMaskedWrites()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The masked model must strictly enlarge (or equal) the
		// recoverable surface and never shrink survivability.
		if row.MaskedRecoverablePct < row.BaseRecoverablePct {
			t.Errorf("%s: masked surface %.1f%% < base %.1f%%",
				row.Server, row.MaskedRecoverablePct, row.BaseRecoverablePct)
		}
		if row.MaskedBreaks > row.BaseBreaks {
			t.Errorf("%s: masked breaks %d > base %d", row.Server, row.MaskedBreaks, row.BaseBreaks)
		}
		if row.MaskedRecovered < row.BaseRecovered {
			t.Errorf("%s: masked recovered %d < base %d",
				row.Server, row.MaskedRecovered, row.BaseRecovered)
		}
	}
	// At least one server must show an actual gain somewhere (fewer
	// breaks), or the extension is a no-op.
	gained := false
	for _, row := range res.Rows {
		if row.MaskedBreaks < row.BaseBreaks {
			gained = true
		}
	}
	if !gained {
		t.Error("write masking removed no irrecoverable transactions on any server")
	}
	t.Logf("\n%s", res.Render())
}
