package bench

import (
	"fmt"
	"sort"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// interruptGap is the modelled mean instructions between asynchronous HTM
// aborts used by all performance experiments.
const interruptGap = 250_000

func perfConfig(mode core.Mode, threshold float64, sample int64, seed int64) core.Config {
	return core.Config{
		Mode:       mode,
		Threshold:  threshold,
		SampleSize: sample,
		HTM:        htm.Config{MeanInstrsPerInterrupt: interruptGap, Seed: seed},
	}
}

// --- Figure 3 -------------------------------------------------------------------

// Figure3Row is one policy's outcome on Nginx.
type Figure3Row struct {
	Policy         string
	HTMAbortPct    float64
	DegradationPct float64

	// HotSites attributes aborts to specific library calls, as the
	// paper's Fig. 3 discussion does (malloc 82%, posix_memalign 47%,
	// fcntl64 15% on real Nginx).
	HotSites []core.SiteAbortRate
}

// Figure3Result compares adaptive-transaction policies on Nginx.
type Figure3Result struct {
	Rows []Figure3Row
}

// Figure3 reproduces the policy comparison of Fig. 3: the naive
// always-try-HTM policy suffers a high abort rate and heavy degradation;
// manually marking the hot regions STM removes almost all aborts; the
// dynamic policy (θ=1 %, S=128) gets within a few points of manual.
func (r Runner) Figure3() (Figure3Result, error) {
	r = r.withDefaults()
	// The S=128 configuration needs enough traffic for hot gates to
	// accumulate 128 aborts before the policy check can fire.
	if r.Requests < 2000 {
		r.Requests = 2000
	}
	app := apps.Nginx()

	_, vres, err := r.measure(app, bootOpts{vanilla: true})
	if err != nil {
		return Figure3Result{}, err
	}
	base := vres.CyclesPerRequest()

	var out Figure3Result

	// Naive: threshold above 100% never latches, every execution tries
	// HTM first.
	naive, nres, err := r.measure(app, bootOpts{cfg: perfConfig(core.ModeHybrid, 2.0, 4, r.Seed)})
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, Figure3Row{
		Policy:         "naive (always HTM first)",
		HTMAbortPct:    100 * naive.rt.Stats().HTMAbortRate(),
		DegradationPct: overheadPct(nres.CyclesPerRequest(), base),
		HotSites:       naive.rt.SiteAbortRates(),
	})

	// Manual: learn the hot gates in a warmup run with the dynamic
	// policy, then pin them STM from the start of a fresh run.
	warm, _, err := r.measure(app, bootOpts{cfg: perfConfig(core.ModeHybrid, 0.01, 4, r.Seed)})
	if err != nil {
		return out, err
	}
	manual, mres, err := r.measure(app, bootOpts{
		cfg:      perfConfig(core.ModeHybrid, 0.01, 4, r.Seed),
		prelatch: warm.rt.LatchedSites(),
	})
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, Figure3Row{
		Policy:         "manual (hot regions pinned STM)",
		HTMAbortPct:    100 * manual.rt.Stats().HTMAbortRate(),
		DegradationPct: overheadPct(mres.CyclesPerRequest(), base),
	})

	// Dynamic: θ=1 %, S=128 — the configuration the paper's text uses.
	dyn, dres, err := r.measure(app, bootOpts{cfg: perfConfig(core.ModeHybrid, 0.01, 128, r.Seed)})
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, Figure3Row{
		Policy:         "dynamic (θ=1%, S=128)",
		HTMAbortPct:    100 * dyn.rt.Stats().HTMAbortRate(),
		DegradationPct: overheadPct(dres.CyclesPerRequest(), base),
	})
	return out, nil
}

// Render prints the figure's two series plus the per-call attribution of
// the naive policy's aborts.
func (f Figure3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: adaptive transaction policies on Nginx\n")
	fmt.Fprintf(&sb, "%-34s %12s %16s\n", "policy", "HTM abort %", "degradation %")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%-34s %12.2f %16.1f\n", row.Policy, row.HTMAbortPct, row.DegradationPct)
	}
	for _, row := range f.Rows {
		if len(row.HotSites) == 0 {
			continue
		}
		sb.WriteString("aborting transactions under the naive policy (per gate call):\n")
		sites := append([]core.SiteAbortRate(nil), row.HotSites...)
		sort.Slice(sites, func(i, j int) bool { return sites[i].AbortPct() > sites[j].AbortPct() })
		for i, s := range sites {
			if i == 5 {
				break
			}
			fmt.Fprintf(&sb, "  site %-3d %-10s %6.1f%% aborts (%d/%d executions)\n",
				s.Site, s.Call, s.AbortPct(), s.Aborts, s.Execs)
		}
		break
	}
	return sb.String()
}

// --- Figure 5 -------------------------------------------------------------------

// Figure5Row is one server's recovery-latency distribution.
type Figure5Row struct {
	Server  string
	Samples int
	P50us   float64
	P90us   float64
	MaxUs   float64
}

// Figure5Result is the latency distribution per web server.
type Figure5Result struct {
	Rows []Figure5Row
}

// Figure5 measures recovery latency (trap → resumed execution) across
// fault-triggered executions. Latency is reported in cost-model
// microseconds (1 cycle ≈ 1 ns); the paper's absolute numbers are larger
// because its transactions span real servers' working sets, but the
// shape — tight distribution with undo-log-sized outliers — is the
// comparison target.
func (r Runner) Figure5() (Figure5Result, error) {
	r = r.withDefaults()
	var out Figure5Result
	servers := apps.WebServers()

	// Stage 1: plan each server's fault campaign (one profiling run per
	// server, fanned across the pool).
	plans := make([][]faultinj.Fault, len(servers))
	if err := r.forEach(len(servers), func(i int) error {
		faults, err := r.planFaults(servers[i], faultinj.FailStop, r.FaultsPerServer)
		plans[i] = faults
		return err
	}); err != nil {
		return out, err
	}

	for si, app := range servers {
		faults := plans[si]
		// Stage 2: one isolated run per fault; samples are merged in
		// fault-plan order so the distribution is order-stable.
		perFault := make([][]int64, len(faults))
		if err := r.forEach(len(faults), func(i int) error {
			inst, _, err := r.measure(app, bootOpts{fault: &faults[i]})
			if err != nil {
				return err
			}
			perFault[i] = inst.rt.Stats().LatencyCycles
			return nil
		}); err != nil {
			return out, err
		}
		var samples []int64
		for _, s := range perFault {
			samples = append(samples, s...)
		}
		row := Figure5Row{Server: app.Name, Samples: len(samples)}
		if len(samples) > 0 {
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			row.P50us = float64(samples[len(samples)/2]) / 1000
			row.P90us = float64(samples[len(samples)*9/10]) / 1000
			row.MaxUs = float64(samples[len(samples)-1]) / 1000
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the distribution summary.
func (f Figure5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: crash recovery latency (cost-model µs)\n")
	fmt.Fprintf(&sb, "%-10s %8s %10s %10s %10s\n", "server", "samples", "p50", "p90", "max")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%-10s %8d %10.1f %10.1f %10.1f\n", row.Server, row.Samples, row.P50us, row.P90us, row.MaxUs)
	}
	return sb.String()
}

// --- Figure 6 -------------------------------------------------------------------

// Figure6Cell is one (threshold, sample size) measurement.
type Figure6Cell struct {
	ThresholdPct   float64
	SampleSize     int64
	DegradationPct float64
}

// Figure6Result is the parameter sweep per server.
type Figure6Result struct {
	Servers map[string][]Figure6Cell
	Order   []string
}

// Figure6 sweeps the HTM abort threshold (1–64 %) and accounting sample
// size (2–128) on the three web servers. The paper finds performance
// insensitive to both, with low thresholds slightly ahead.
func (r Runner) Figure6() (Figure6Result, error) {
	r = r.withDefaults()
	out := Figure6Result{Servers: map[string][]Figure6Cell{}}
	thresholds := []float64{0.01, 0.04, 0.16, 0.64}
	samples := []int64{2, 8, 32, 128}
	servers := apps.WebServers()

	// Stage 1: vanilla baselines, one per server.
	bases := make([]float64, len(servers))
	if err := r.forEach(len(servers), func(i int) error {
		_, vres, err := r.measure(servers[i], bootOpts{vanilla: true})
		if err != nil {
			return err
		}
		bases[i] = vres.CyclesPerRequest()
		return nil
	}); err != nil {
		return out, err
	}

	// Stage 2: the full θ×S sweep across all servers as one flat job
	// list; cells land in sweep order per server.
	type cellJob struct {
		server int
		th     float64
		s      int64
	}
	var jobs []cellJob
	for si := range servers {
		for _, th := range thresholds {
			for _, s := range samples {
				jobs = append(jobs, cellJob{server: si, th: th, s: s})
			}
		}
	}
	cells := make([]Figure6Cell, len(jobs))
	if err := r.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		_, res, err := r.measure(servers[j.server], bootOpts{cfg: perfConfig(core.ModeHybrid, j.th, j.s, r.Seed)})
		if err != nil {
			return err
		}
		cells[i] = Figure6Cell{
			ThresholdPct:   j.th * 100,
			SampleSize:     j.s,
			DegradationPct: overheadPct(res.CyclesPerRequest(), bases[j.server]),
		}
		return nil
	}); err != nil {
		return out, err
	}
	for i, j := range jobs {
		out.Servers[servers[j.server].Name] = append(out.Servers[servers[j.server].Name], cells[i])
	}
	for _, app := range servers {
		out.Order = append(out.Order, app.Name)
	}
	return out, nil
}

// Render prints one matrix per server.
func (f Figure6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: dynamic adaptation sweep — degradation % by (threshold, sample size)\n")
	for _, name := range f.Order {
		cells := f.Servers[name]
		fmt.Fprintf(&sb, "%s:\n", name)
		fmt.Fprintf(&sb, "  %10s", "θ \\ S")
		seen := map[int64]bool{}
		var ss []int64
		for _, c := range cells {
			if !seen[c.SampleSize] {
				seen[c.SampleSize] = true
				ss = append(ss, c.SampleSize)
			}
		}
		for _, s := range ss {
			fmt.Fprintf(&sb, "%8d", s)
		}
		sb.WriteString("\n")
		byTh := map[float64][]Figure6Cell{}
		var ths []float64
		for _, c := range cells {
			if _, ok := byTh[c.ThresholdPct]; !ok {
				ths = append(ths, c.ThresholdPct)
			}
			byTh[c.ThresholdPct] = append(byTh[c.ThresholdPct], c)
		}
		for _, th := range ths {
			fmt.Fprintf(&sb, "  %9.0f%%", th)
			for _, c := range byTh[th] {
				fmt.Fprintf(&sb, "%8.1f", c.DegradationPct)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// --- Figures 7 & 8 ----------------------------------------------------------------

// Figure7Row is one server's overhead under the three schemes.
type Figure7Row struct {
	Server         string
	HTMOnlyPct     float64
	STMOnlyPct     float64
	FIRestarterPct float64

	// Abort rates feed Figure 8.
	HTMOnlyAbortPct     float64
	FIRestarterAbortPct float64
}

// Figure7Result carries both Fig. 7 (overhead) and Fig. 8 (abort rates).
type Figure7Result struct {
	Rows []Figure7Row
}

// Figure7 measures normalized runtime overhead of HTM-only, STM-only and
// FIRestarter across all five servers (paper: FIRestarter ≤17 % on the
// web servers, ≤12 % Redis, with STM-only far worse; Fig. 8: FIRestarter
// slashes the HTM abort rate, least so on PostgreSQL).
func (r Runner) Figure7() (Figure7Result, error) {
	r = r.withDefaults()
	var out Figure7Result
	servers := apps.All()

	// Four isolated runs per server (vanilla + three schemes), all
	// flattened into one job list; rows assemble in server order below.
	const variants = 4 // 0: vanilla, 1: HTM-only, 2: STM-only, 3: hybrid
	type runOut struct {
		inst *instance
		cpr  float64
	}
	results := make([]runOut, len(servers)*variants)
	if err := r.forEach(len(results), func(i int) error {
		app := servers[i/variants]
		var o bootOpts
		switch i % variants {
		case 0:
			o = bootOpts{vanilla: true}
		case 1:
			o = bootOpts{cfg: perfConfig(core.ModeHTMOnly, 0.01, 4, r.Seed)}
		case 2:
			o = bootOpts{cfg: perfConfig(core.ModeSTMOnly, 0.01, 4, r.Seed)}
		case 3:
			o = bootOpts{cfg: perfConfig(core.ModeHybrid, 0.01, 4, r.Seed)}
		}
		inst, res, err := r.measure(app, o)
		if err != nil {
			return err
		}
		results[i] = runOut{inst: inst, cpr: res.CyclesPerRequest()}
		return nil
	}); err != nil {
		return out, err
	}

	for si, app := range servers {
		base := results[si*variants].cpr
		htmInst := results[si*variants+1].inst
		fsInst := results[si*variants+3].inst
		out.Rows = append(out.Rows, Figure7Row{
			Server:              app.Name,
			HTMOnlyPct:          overheadPct(results[si*variants+1].cpr, base),
			STMOnlyPct:          overheadPct(results[si*variants+2].cpr, base),
			FIRestarterPct:      overheadPct(results[si*variants+3].cpr, base),
			HTMOnlyAbortPct:     100 * htmInst.rt.Stats().HTMAbortRate(),
			FIRestarterAbortPct: 100 * fsInst.rt.Stats().HTMAbortRate(),
		})
	}
	return out, nil
}

// Render prints the Fig. 7 overhead series.
func (f Figure7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: normalized runtime overhead (% over vanilla)\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %13s\n", "server", "HTM-only", "STM-only", "FIRestarter")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%-10s %9.1f%% %9.1f%% %12.1f%%\n",
			row.Server, row.HTMOnlyPct, row.STMOnlyPct, row.FIRestarterPct)
	}
	return sb.String()
}

// RenderFigure8 prints the Fig. 8 abort-rate series from the same runs.
func (f Figure7Result) RenderFigure8() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: HTM transaction abort rate (%)\n")
	fmt.Fprintf(&sb, "%-10s %10s %13s\n", "server", "HTM-only", "FIRestarter")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%-10s %9.2f%% %12.2f%%\n",
			row.Server, row.HTMOnlyAbortPct, row.FIRestarterAbortPct)
	}
	return sb.String()
}

// --- Figure 9 -------------------------------------------------------------------

// Figure9Row is one server's memory overhead.
type Figure9Row struct {
	Server         string
	HTMOnlyPct     float64
	STMOnlyPct     float64
	FIRestarterPct float64
}

// Figure9Result is the normalized memory overhead per server.
type Figure9Result struct {
	Rows []Figure9Row
}

// memFootprint charges the simulated RSS plus instrumentation costs: the
// duplicated code (instruction count, 16 bytes/instr as a code-byte
// estimate) and the undo log's capacity.
func memFootprint(inst *instance) int64 {
	var prog int64
	if inst.tr != nil {
		prog = int64(inst.tr.Prog.InstrCount())
	} else {
		prog = int64(inst.m.Prog.InstrCount())
	}
	rss := int64(inst.os.Space.PeakPages()) * mem.PageSize
	code := prog * 16
	undo := int64(0)
	if inst.rt != nil {
		undo = inst.rt.MemoryOverheadBytes()
	}
	return rss + code + undo
}

// Figure9 measures mean memory overhead (RSS + code + checkpointing
// structures) normalized to vanilla (paper: modest overheads, mostly from
// code duplication; STM-only slightly higher from the undo log).
func (r Runner) Figure9() (Figure9Result, error) {
	r = r.withDefaults()
	var out Figure9Result
	servers := apps.All()
	modes := []core.Mode{0, core.ModeHTMOnly, core.ModeSTMOnly, core.ModeHybrid} // index 0 = vanilla
	footprints := make([]int64, len(servers)*len(modes))
	if err := r.forEach(len(footprints), func(i int) error {
		app := servers[i/len(modes)]
		o := bootOpts{vanilla: true}
		if mi := i % len(modes); mi != 0 {
			o = bootOpts{cfg: perfConfig(modes[mi], 0.01, 4, r.Seed)}
		}
		inst, _, err := r.measure(app, o)
		if err != nil {
			return err
		}
		footprints[i] = memFootprint(inst)
		return nil
	}); err != nil {
		return out, err
	}
	for si, app := range servers {
		base := float64(footprints[si*len(modes)])
		out.Rows = append(out.Rows, Figure9Row{
			Server:         app.Name,
			HTMOnlyPct:     overheadPct(float64(footprints[si*len(modes)+1]), base),
			STMOnlyPct:     overheadPct(float64(footprints[si*len(modes)+2]), base),
			FIRestarterPct: overheadPct(float64(footprints[si*len(modes)+3]), base),
		})
	}
	return out, nil
}

// Render prints the memory overhead series.
func (f Figure9Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: normalized mean memory overhead (% over vanilla)\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %13s\n", "server", "HTM-only", "STM-only", "FIRestarter")
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%-10s %9.1f%% %9.1f%% %12.1f%%\n",
			row.Server, row.HTMOnlyPct, row.STMOnlyPct, row.FIRestarterPct)
	}
	return sb.String()
}
