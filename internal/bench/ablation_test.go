package bench

import "testing"

func TestAblationDivert(t *testing.T) {
	res, err := testRunner().AblationDivert()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	episode, sticky := res.Rows[0], res.Rows[1]
	// Sticky diversion crashes at most once per gate; per-episode crashes
	// on every poisoned request.
	if sticky.Crashes >= episode.Crashes {
		t.Errorf("sticky crashes %d >= per-episode %d", sticky.Crashes, episode.Crashes)
	}
	// Both must keep the server alive and serving.
	for _, row := range res.Rows {
		if row.Completed == 0 {
			t.Errorf("%s: nothing served", row.Policy)
		}
		if row.Injections == 0 {
			t.Errorf("%s: no injections", row.Policy)
		}
	}
	t.Logf("\n%s", res.Render())
}

func TestAblationRetry(t *testing.T) {
	res, err := testRunner().AblationRetry()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// More retries → more wasted re-executions per injection.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Injections == 0 || last.Injections == 0 {
		t.Fatalf("no injections: %+v", res.Rows)
	}
	perInjFirst := float64(first.RetryExecs) / float64(first.Injections)
	perInjLast := float64(last.RetryExecs) / float64(last.Injections)
	if perInjLast <= perInjFirst {
		t.Errorf("retry executions per injection did not grow: %.1f → %.1f", perInjFirst, perInjLast)
	}
	t.Logf("\n%s", res.Render())
}

func TestAblationGeometry(t *testing.T) {
	res, err := testRunner().AblationGeometry()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// A bigger transactional buffer must never raise the STM share.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].STMLatchedTx > res.Rows[i-1].STMLatchedTx {
			t.Errorf("STM transactions grew with cache size: %d KiB=%d, %d KiB=%d",
				res.Rows[i-1].CacheKiB, res.Rows[i-1].STMLatchedTx,
				res.Rows[i].CacheKiB, res.Rows[i].STMLatchedTx)
		}
	}
	// The smallest cache must be the most abort/STM-prone configuration.
	if res.Rows[0].STMLatchedTx <= res.Rows[len(res.Rows)-1].STMLatchedTx {
		t.Errorf("8 KiB STM txs (%d) not above 128 KiB (%d)",
			res.Rows[0].STMLatchedTx, res.Rows[len(res.Rows)-1].STMLatchedTx)
	}
	t.Logf("\n%s", res.Render())
}

func TestAblationRestartBaseline(t *testing.T) {
	res, err := testRunner().AblationRestartBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	restart, fir, full := res.Rows[0], res.Rows[1], res.Rows[2]
	// FIRestarter must never restart or lose state; the baseline must
	// restart at least once (the fault is persistent and recurring).
	if fir.Restarts != 0 || fir.StateLost != 0 {
		t.Errorf("FIRestarter restarted: %+v", fir)
	}
	if restart.Restarts == 0 {
		t.Errorf("vanilla baseline never crashed: %+v", restart)
	}
	// And FIRestarter loses fewer requests.
	if fir.Failed >= restart.Failed+restart.Restarts {
		t.Errorf("FIRestarter failed %d vs baseline %d(+%d lost)",
			fir.Failed, restart.Failed, restart.Restarts)
	}
	// The full ladder serves the whole workload: the in-process rungs
	// absorb the persistent fault, so the supervisor never fires, and no
	// request is silently dropped.
	if full.Completed+full.Failed != testRunner().withDefaults().Requests {
		t.Errorf("ladder row drops requests: %+v", full)
	}
	if full.Failed > restart.Failed {
		t.Errorf("full ladder failed %d vs vanilla restart %d", full.Failed, restart.Failed)
	}
	if full.StateLost > 0 && full.Restarts == 0 {
		t.Errorf("state lost without an attributed reboot: %+v", full)
	}
	t.Logf("\n%s", res.Render())
}

func TestTxWindows(t *testing.T) {
	res, err := testRunner().TxWindows()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Transactions == 0 {
			t.Errorf("%s: no transactions profiled", row.Server)
		}
		// "Small and frequent": several windows per request, and the
		// median window must be far below the step budget of a request.
		if row.PerRequest < 1 {
			t.Errorf("%s: %.1f transactions/request, want >= 1", row.Server, row.PerRequest)
		}
		if row.StepsP50 > 5000 {
			t.Errorf("%s: median window %d steps — not small", row.Server, row.StepsP50)
		}
		if row.StepsMax < row.StepsP50 || row.WriteLinesMax < row.WriteLinesP50 {
			t.Errorf("%s: inconsistent percentiles %+v", row.Server, row)
		}
	}
	t.Logf("\n%s", res.Render())
}
