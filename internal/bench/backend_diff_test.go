package bench

import (
	"bytes"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/htm"
)

// TestBackendsProduceIdenticalResults is the differential-execution
// harness at the measurement level: the same experiment run through the
// tree-walker and the bytecode backend must agree on every observable —
// cycle counts, completed requests, and the full recovery statistics —
// with the interrupt process, fault injection and recovery machinery all
// active (the paths where a single mis-ticked instruction would show).
func TestBackendsProduceIdenticalResults(t *testing.T) {
	r := Runner{Requests: 120, Concurrency: 4, Seed: 9}
	cfg := core.Config{
		Threshold:  0.01,
		SampleSize: 4,
		HTM:        htm.Config{MeanInstrsPerInterrupt: 50_000, Seed: 9},
	}
	faults, err := r.planFaults(apps.Nginx(), faultinj.FailStop, 2)
	if err != nil {
		t.Fatal(err)
	}
	type fingerprint struct {
		cycles    int64
		steps     int64
		completed int
		bad       int
		stats     string
	}
	run := func(backend string, fault *faultinj.Fault) fingerprint {
		r := r
		r.Backend = backend
		inst, res, err := r.measure(apps.Nginx(), bootOpts{cfg: cfg, fault: fault})
		if err != nil {
			t.Fatal(err)
		}
		st := inst.rt.Stats()
		st.LatencyCycles = nil
		st.GateSites, st.EmbedSites, st.BreakSites = nil, nil, nil
		return fingerprint{
			cycles:    inst.m.Cycles,
			steps:     inst.m.Steps,
			completed: res.Completed,
			bad:       res.BadResp,
			stats:     statsKey(st),
		}
	}
	cases := []*faultinj.Fault{nil}
	for i := range faults {
		cases = append(cases, &faults[i])
	}
	for i, fault := range cases {
		tree := run("tree", fault)
		bc := run("bytecode", fault)
		if tree != bc {
			t.Errorf("case %d: backends diverged:\n  tree     %+v\n  bytecode %+v", i, tree, bc)
		}
	}
}

// TestObserveOutputIdenticalAcrossBackends byte-compares the three
// observability exports (span trace, metrics, guest profile) across
// backends: profiler Enter/Leave/Lib hooks and span emission must fire at
// identical cycle/step stamps.
func TestObserveOutputIdenticalAcrossBackends(t *testing.T) {
	run := func(backend string) [3]string {
		r := Runner{Requests: 80, Concurrency: 4, Seed: 9, Backend: backend}
		res, err := r.Observe("nginx")
		if err != nil {
			t.Fatal(err)
		}
		var trace, metrics, profile bytes.Buffer
		if err := res.WriteTrace(&trace); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteMetrics(&metrics); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteProfile(&profile); err != nil {
			t.Fatal(err)
		}
		return [3]string{trace.String(), metrics.String(), profile.String()}
	}
	tree := run("tree")
	bc := run("bytecode")
	for i, name := range []string{"trace", "metrics", "profile"} {
		if tree[i] != bc[i] {
			t.Errorf("%s output differs between backends", name)
		}
	}
}

// TestThreadsIdenticalAcrossBackends runs the multi-threaded campaign
// (scheduler quanta constantly stop machines mid-superinstruction; worker
// machines inherit the backend through NewThread) on both backends and
// requires byte-identical rendered results.
func TestThreadsIdenticalAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign")
	}
	run := func(backend string) string {
		r := Runner{Requests: 40, Concurrency: 4, Seed: 9, Backend: backend}
		res, err := r.Threads()
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	tree := run("tree")
	bc := run("bytecode")
	if tree != bc {
		t.Errorf("threads render differs across backends:\n--- tree\n%s\n--- bytecode\n%s", tree, bc)
	}
}
