package bench

import (
	"bytes"
	"strings"
	"testing"
)

// domainsRunner keeps the heap-domain campaigns small enough for unit
// tests: one fault per fail-silent kind per pool app. (Seed 1 avoids the
// seed-3 plant that crash-loops an incarnation through its whole breaker
// window — legal, but it burns hundreds of millions of simulated steps.)
func domainsRunner() Runner {
	return Runner{Requests: 24, Concurrency: 2, Seed: 1, FaultsPerServer: 1}
}

// ablationRunner is big enough that both planted case-study faults fire
// (the redis GET-reply copy needs a workload long enough to hit existing
// keys).
func ablationRunner() Runner {
	return Runner{Requests: 60, Concurrency: 4, Seed: 1, FaultsPerServer: 1}
}

// TestAblationDomainsShowsDiscardWin pins the experiment's reason to
// exist: under the same planted fault, the rewind strategy must recover
// through O(1) arena discards with (near-)zero per-store undo logging,
// while the pure-STM strategy pays an undo entry per store.
func TestAblationDomainsShowsDiscardWin(t *testing.T) {
	res, err := ablationRunner().AblationDomains()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	byStrategy := map[string][]DomainsRow{}
	for _, row := range res.Rows {
		byStrategy[row.Strategy] = append(byStrategy[row.Strategy], row)
	}
	for app := 0; app < 2; app++ {
		stm := byStrategy["stm (per-store undo)"][app]
		rew := byStrategy["rewind (O(1) discard)"][app]
		if stm.Crashes == 0 || rew.Crashes == 0 {
			t.Fatalf("%s: planted fault never fired (stm %d, rewind %d crashes)",
				stm.App, stm.Crashes, rew.Crashes)
		}
		if stm.UndoStores == 0 {
			t.Errorf("%s: STM strategy logged no undo stores", stm.App)
		}
		if rew.Discards != rew.Crashes {
			t.Errorf("%s: rewind crashes %d != discards %d", rew.App, rew.Crashes, rew.Discards)
		}
		if rew.UndoStores >= stm.UndoStores {
			t.Errorf("%s: rewind undo stores %d not below STM's %d",
				rew.App, rew.UndoStores, stm.UndoStores)
		}
		if rew.DomainTxs == 0 || stm.DomainTxs != 0 {
			t.Errorf("%s: domain txs stm=%d rewind=%d, want 0/>0",
				stm.App, stm.DomainTxs, rew.DomainTxs)
		}
	}
	// The capacity sub-table must show the cliff moving: at the smallest
	// geometry, enabling domains shifts latched gates from STM to the
	// rewind strategy and cuts the undo-store volume.
	if len(res.Capacity) != 6 {
		t.Fatalf("capacity rows = %d, want 6", len(res.Capacity))
	}
	off, on := res.Capacity[0], res.Capacity[1]
	if off.Domains || !on.Domains || off.CacheKiB != on.CacheKiB {
		t.Fatalf("capacity row order wrong: %+v / %+v", off, on)
	}
	if off.STMTxs == 0 {
		t.Errorf("smallest geometry latched no STM transactions: %+v", off)
	}
	if on.DomainTxs == 0 {
		t.Errorf("domains on but the capacity cliff latched none: %+v", on)
	}
	if on.UndoStores >= off.UndoStores {
		t.Errorf("domains did not cut undo stores: %d vs %d", on.UndoStores, off.UndoStores)
	}
	t.Logf("\n%s", res.Render())
}

// TestContainmentZeroLeaks runs the fail-silent matrix and checks the
// table's headline claims: every campaign's writes audited with zero
// cross-request leaks, zero silent deaths, and a merged span log that
// satisfies the trace schema and causality (Containment itself fails on
// any reconcile drift or leak, so reaching assertions means all three
// surfaces already agreed).
func TestContainmentZeroLeaks(t *testing.T) {
	res, err := domainsRunner().Containment()
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaigns == 0 {
		t.Fatal("no campaigns planned")
	}
	if res.Writes == 0 {
		t.Fatal("no connection writes audited")
	}
	retires := int64(0)
	for _, row := range res.Rows {
		if row.Leaks != 0 {
			t.Errorf("%s/%s: %d leaks", row.App, row.Kind, row.Leaks)
		}
		if row.Silent != 0 {
			t.Errorf("%s/%s: %d silent deaths", row.App, row.Kind, row.Silent)
		}
		retires += row.Retires
	}
	if retires == 0 {
		t.Error("no arenas retired across the whole matrix")
	}
	for i, e := range res.Spans {
		if e.Kind == "" {
			t.Fatalf("span %d has no kind", i)
		}
		if i > 0 && e.Cycles < res.Spans[i-1].Cycles {
			t.Fatalf("span %d cycles %d < previous %d", i, e.Cycles, res.Spans[i-1].Cycles)
		}
	}
	if errs := traceCausality(res.Spans); len(errs) > 0 {
		if len(errs) > 10 {
			errs = errs[:10]
		}
		t.Errorf("merged containment spans violate trace causality:\n  %s", strings.Join(errs, "\n  "))
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(res.Spans) {
		t.Errorf("trace has %d lines, %d spans", got, len(res.Spans))
	}
	t.Logf("\n%s", res.Render())
}

// TestDomainsRenderDeterministic locks byte-identical output across
// repeats and -parallel, for both tables and the exported trace.
func TestDomainsRenderDeterministic(t *testing.T) {
	run := func(parallelism int) (string, string) {
		r := domainsRunner()
		r.Parallelism = parallelism
		ab, err := r.AblationDomains()
		if err != nil {
			t.Fatal(err)
		}
		ct, err := r.Containment()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ct.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return ab.Render() + ct.Render(), buf.String()
	}
	r1, t1 := run(1)
	r2, t2 := run(1)
	if r1 != r2 || t1 != t2 {
		t.Fatal("repeat serial runs differ")
	}
	if testing.Short() {
		t.Skip("parallel cross-check skipped in -short")
	}
	r4, t4 := run(4)
	if r1 != r4 {
		t.Errorf("render differs between -parallel 1 and 4:\n%s\nvs\n%s", r1, r4)
	}
	if t1 != t4 {
		t.Error("combined trace differs between -parallel 1 and 4")
	}
}
