package bench

import (
	"bytes"
	"reflect"
	"testing"
)

// TestOpenLoopDeterministicAcrossParallelism runs the offered-load sweep
// serially and with a worker pool: rendered report, span log and every
// row must be byte-identical, the knee must be visible (the top rungs
// offer multiples of the calibrated service rate, so shedding must
// appear), and the overload rungs must still offer their full schedule.
func TestOpenLoopDeterministicAcrossParallelism(t *testing.T) {
	serial := Runner{Requests: 60, Seed: 1}
	parallel := Runner{Requests: 60, Seed: 1, Parallelism: 4}

	a, err := serial.OpenLoop()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.OpenLoop()
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Errorf("rendered reports diverge:\n--- serial ---\n%s--- parallel ---\n%s", a.Render(), b.Render())
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Error("rows diverge between serial and parallel runs")
	}
	var ta, tb bytes.Buffer
	if err := a.WriteTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("span logs diverge between serial and parallel runs")
	}

	if a.ServiceRate <= 0 {
		t.Fatalf("service rate = %v", a.ServiceRate)
	}
	if a.Knee == 0 {
		t.Errorf("no shedding knee in a sweep reaching %.2fx the service rate:\n%s",
			openLoopMults[len(openLoopMults)-1], a.Render())
	}
	for _, row := range a.Rows {
		if row.Offered != serial.Requests {
			t.Errorf("%.2fx: offered %d, want %d — open loop must not throttle", row.Mult, row.Offered, serial.Requests)
		}
		if row.Done+row.Shed+row.Lost != row.Offered {
			t.Errorf("%.2fx: done %d + shed %d + lost %d != offered %d",
				row.Mult, row.Done, row.Shed, row.Lost, row.Offered)
		}
	}
}
