package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/fleet"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/replay"
	"github.com/firestarter-go/firestarter/internal/supervisor"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// OpenLoopRow is one rung of the offered-load ladder: the hardened web
// server (fail-stop fault planted) behind a 1-replica supervised fleet,
// driven open-loop at a fixed multiple of its calibrated service rate.
type OpenLoopRow struct {
	Mult float64 // offered rate as a multiple of the calibrated service rate
	Rate float64 // offered arrivals per Mcycle

	Offered   int
	Done      int // answered (completed + rejected responses)
	Shed      int // abandoned undelivered after patience
	Lost      int // conn-closed + in-flight/queued at run end
	PeakQueue int

	Boots  int
	Deaths int

	WallCycles int64
	Goodput    float64 // answered requests per Mcycle of fleet wall clock

	Clean    obsv.Percentiles
	Recovery obsv.Percentiles
}

// OpenLoopResult is the open-loop latency-vs-offered-load experiment.
type OpenLoopResult struct {
	App      string
	Requests int // arrivals per rung

	// ServiceRate is the closed-loop calibration: answered requests per
	// Mcycle with the same fault planted, so "1.0x" means "exactly what
	// the recovering server can sustain".
	ServiceRate float64

	// Knee is the lowest swept multiplier at which the ladder shed
	// arrivals — where offered load first outruns recovery-inclusive
	// capacity (0 when no rung shed).
	Knee float64

	Rows []OpenLoopRow

	// Spans concatenates the calibration campaign and every rung on one
	// experiment-global clock and trace-ID space (obsvlint trace schema,
	// causality-clean).
	Spans  []obsv.SpanEvent
	Traces int64
}

// openLoopMults is the offered-load sweep, in multiples of the calibrated
// service rate: well under, at, and well past saturation.
var openLoopMults = []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5}

// fleetBoot returns the replica boot function shared by the fleet and
// open-loop campaigns: a full hardened boot with spans enabled, the
// quiesce point armed and a per-incarnation HTM interrupt seed.
func (r Runner) fleetBoot(app *apps.App, fault *faultinj.Fault) func(rep, inc int, bootSeed int64) (*fleet.Backend, error) {
	return func(rep, inc int, bootSeed int64) (*fleet.Backend, error) {
		f := *fault
		inst, err := boot(app, bootOpts{
			fault:   &f,
			backend: r.Backend,
			cfg:     core.Config{HTM: htm.Config{Seed: bootSeed}},
		})
		if err != nil {
			return nil, err
		}
		inst.rt.EnableSpans()
		if err := armQuiesce(inst); err != nil {
			return nil, err
		}
		return &fleet.Backend{OS: inst.os, Exec: fleet.MachineExec(inst.m), RT: inst.rt}, nil
	}
}

// openRun drives one open-loop rung against a fresh 1-replica fleet.
func (r Runner) openRun(app *apps.App, fault *faultinj.Fault, seed int64, cfg workload.OpenConfig) (*fleetRun, workload.OpenResult, error) {
	fl := fleet.New(fleet.Config{
		Replicas: 1,
		Port:     app.Port,
		Sup:      supervisor.Config{Seed: seed},
	}, r.fleetBoot(app, fault))
	d := &workload.Driver{
		Port: app.Port,
		Gen:  workload.ForProtocol(app.Protocol),
		Seed: seed,
		Srv:  fl,
		Sink: fl,
	}
	res := d.RunOpen(cfg)
	fl.Finish()
	if err := fl.Err(); err != nil {
		return nil, res, err
	}
	fr := &fleetRun{Res: res.Result, St: fl.Stats(), Spans: fl.Spans(), Wall: fl.Cycles(), Reg: fl.Registry()}
	fr.Sups = append(fr.Sups, fl.SupStats(0))
	return fr, res, nil
}

// OpenLoop runs the offered-load sweep. A closed-loop campaign first
// calibrates the hardened server's recovery-inclusive service rate; the
// ladder then offers fixed multiples of it on a Poisson schedule over a
// 20k-client population with churn, slow readers, fragmentation and
// pipelining. Each rung's three accounting surfaces are reconciled and
// the result is byte-identical for a fixed seed at any Parallelism.
func (r Runner) OpenLoop() (OpenLoopResult, error) {
	r = r.withDefaults()
	var out OpenLoopResult
	out.Requests = r.Requests

	app := apps.ByName("nginx")
	if app == nil {
		return out, fmt.Errorf("openloop: app nginx not registered")
	}
	out.App = app.Name
	faults, err := r.planFaults(app, faultinj.FailStop, 3)
	if err != nil {
		return out, fmt.Errorf("openloop: %w", err)
	}
	if len(faults) == 0 {
		return out, fmt.Errorf("openloop: no plantable fail-stop fault in %s", app.Name)
	}

	// Calibration doubles as fault selection: the sweep wants a server
	// that recovers *intermittently* — a fault pinning the runtime in a
	// recovery rung for the whole run (e.g. permanent shedding) leaves no
	// clean traffic to split the latency tail against. Each candidate is
	// driven closed-loop behind the same 1-replica fleet, in plan order,
	// and the first whose campaign survives with both clean and
	// recovery-touched completions wins; its answered-per-wall-cycle rate
	// defines the sweep's 1.0x rung. Selection is serial and seeded, so
	// it is identical at any Parallelism.
	var cal *fleetRun
	var fault faultinj.Fault
	for i := range faults {
		f := faults[i]
		fr, err := r.fleetRun(app, &f, 1, r.Seed+1000)
		if err != nil {
			return out, fmt.Errorf("openloop calibration: %w", err)
		}
		if errs := fr.reconcile(); len(errs) > 0 {
			return out, fmt.Errorf("openloop calibration: accounting did not reconcile:\n  %s", strings.Join(errs, "\n  "))
		}
		if cal == nil {
			cal, fault = fr, faults[i] // fallback: the first planted fault
		}
		if !fr.Res.ServerDied && !fr.Res.Stalled &&
			fr.Res.CleanLatency.Count() > 0 && fr.Res.RecoveryLatency.Count() > 0 {
			cal, fault = fr, faults[i]
			break
		}
	}
	answered := cal.Res.Completed + cal.Res.BadResp
	if answered == 0 || cal.Wall <= 0 {
		return out, fmt.Errorf("openloop calibration: no throughput to calibrate against (%+v)", cal.Res)
	}
	out.ServiceRate = float64(answered) / float64(cal.Wall) * 1e6

	// Patience scales with the service time: an arrival waits out ~25
	// mean service times (plenty for a microreboot, far less than a
	// saturated queue's growth) before its client gives up.
	patience := int64(25e6 / out.ServiceRate)

	type openJob struct {
		mult float64
		cfg  workload.OpenConfig
	}
	jobs := make([]openJob, len(openLoopMults))
	for i, mult := range openLoopMults {
		jobs[i] = openJob{mult: mult, cfg: workload.OpenConfig{
			Shape:         workload.ShapePoisson,
			RatePerMcycle: out.ServiceRate * mult,
			Total:         r.Requests,
			Clients:       20000,
			MaxConns:      32,
			PipelineDepth: 2,
			Patience:      patience,
			ChurnEvery:    5,
			SlowEvery:     7,
			FragmentEvery: 11,
		}}
	}

	runs := make([]*fleetRun, len(jobs))
	open := make([]workload.OpenResult, len(jobs))
	if err := r.forEach(len(jobs), func(i int) error {
		fa := fault
		fr, ores, err := r.openRun(app, &fa, r.Seed+1000*int64(i+2), jobs[i].cfg)
		if err != nil {
			return fmt.Errorf("openloop %.2fx: %w", jobs[i].mult, err)
		}
		if errs := fr.reconcile(); len(errs) > 0 {
			return fmt.Errorf("openloop %.2fx: accounting did not reconcile:\n  %s",
				jobs[i].mult, strings.Join(errs, "\n  "))
		}
		runs[i], open[i] = fr, ores
		return nil
	}); err != nil {
		return out, err
	}

	// Reduce in job order on an experiment-global clock and trace-ID
	// space, calibration campaign first.
	var clock, traceBase int64
	appendSpans := func(spans []obsv.SpanEvent, wall int64, sent int) {
		for _, e := range spans {
			e.Cycles += clock
			if e.Trace != 0 {
				e.Trace += traceBase
			}
			e.Seq = 0
			out.Spans = append(out.Spans, e)
		}
		clock += wall
		traceBase += int64(sent)
	}
	appendSpans(cal.Spans, cal.Wall, cal.Res.Sent)

	recIdx := 0
	for i, j := range jobs {
		fr, ores := runs[i], open[i]
		// Record failing rungs (any unrecovered fault or opened breaker
		// behind the fleet) for firetrace -replay, in job order.
		if r.RecordDir != "" {
			if outcome := replay.FailureOutcome(fr.Spans); outcome != "" {
				fa := fault
				rec := replay.RecordOpenLoop(replay.OpenLoopRun{
					App:         app.Name,
					Backend:     r.Backend,
					Fault:       &fa,
					Seed:        r.Seed + 1000*int64(i+2),
					Proto:       app.Protocol,
					Open:        jobs[i].cfg,
					Outcome:     outcome,
					FinalCycles: fr.Wall,
					Spans:       fr.Spans,
				})
				if _, err := rec.Write(r.RecordDir, fmt.Sprintf("openloop-%03d", recIdx)); err != nil {
					return out, fmt.Errorf("openloop %.2fx: recording: %w", j.mult, err)
				}
				recIdx++
			}
		}
		row := OpenLoopRow{
			Mult:       j.mult,
			Rate:       j.cfg.RatePerMcycle,
			Offered:    ores.Offered,
			Done:       ores.Completed + ores.BadResp,
			Shed:       ores.Shed,
			Lost:       ores.ConnLost + ores.Outstanding + ores.Abandoned,
			PeakQueue:  ores.PeakQueue,
			Boots:      fr.St.Boots,
			Deaths:     fr.St.Deaths,
			WallCycles: fr.Wall,
		}
		if fr.Wall > 0 {
			row.Goodput = float64(row.Done) / float64(fr.Wall) * 1e6
		}
		if ores.CleanLatency != nil {
			row.Clean = ores.CleanLatency.Percentiles()
		}
		if ores.RecoveryLatency != nil {
			row.Recovery = ores.RecoveryLatency.Percentiles()
		}
		if out.Knee == 0 && row.Shed > 0 {
			out.Knee = j.mult
		}
		out.Rows = append(out.Rows, row)
		appendSpans(fr.Spans, fr.Wall, fr.Res.Sent)
	}
	out.Traces = traceBase
	return out, nil
}

// Render prints the calibration line, the ladder and the knee.
func (o OpenLoopResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Open-loop offered-load sweep: %s behind a 1-replica supervised fleet (%d arrivals per rung, Poisson)\n",
		o.App, o.Requests)
	fmt.Fprintf(&sb, "calibrated service rate: %.2f req/Mcycle (closed loop, fault planted)\n", o.ServiceRate)
	fmt.Fprintf(&sb, "%5s %8s | %7s %7s %6s %6s %6s | %5s %6s | %8s | %11s %11s\n",
		"mult", "rate", "offered", "done", "shed", "lost", "peakq",
		"boots", "deaths", "goodput", "p999(clean)", "p999(recov)")
	for _, row := range o.Rows {
		fmt.Fprintf(&sb, "%4.2fx %8.2f | %7d %7d %6d %6d %6d | %5d %6d | %8.2f | %11d %11d\n",
			row.Mult, row.Rate,
			row.Offered, row.Done, row.Shed, row.Lost, row.PeakQueue,
			row.Boots, row.Deaths, row.Goodput,
			row.Clean.P999, row.Recovery.P999)
	}
	if o.Knee > 0 {
		fmt.Fprintf(&sb, "shedding knee: %.2fx the calibrated service rate\n", o.Knee)
	} else {
		fmt.Fprintf(&sb, "shedding knee: not reached within the sweep\n")
	}
	fmt.Fprintf(&sb, "overall: %d traced requests across %d spans\n", o.Traces, len(o.Spans))
	return sb.String()
}

// WriteTrace writes the experiment-global span log as JSONL, re-stamped
// with dense sequence numbers (the obsvlint trace schema).
func (o OpenLoopResult) WriteTrace(w io.Writer) error {
	log := &obsv.SpanLog{Limit: len(o.Spans) + 1}
	for _, e := range o.Spans {
		e.Seq = 0
		log.Append(e)
	}
	return log.WriteJSONL(w)
}

// Fingerprint returns the hash-chain value of the experiment-global
// span stream in its exported (densely re-sequenced) form. Identical
// for a fixed seed at any Parallelism.
func (o OpenLoopResult) Fingerprint() uint64 {
	return obsv.Fingerprint(replay.NormalizeSpans(o.Spans))
}
