package bench

import "testing"

// TestThreadsScalingAndConflicts locks in the threads campaign's
// acceptance properties: wall-cycle throughput improves monotonically
// from 1 to 4 workers fault-free, contention produces nonzero conflict
// aborts, and the planted fault produces nonzero explicit aborts with
// every request still answered.
func TestThreadsScalingAndConflicts(t *testing.T) {
	r := Runner{Requests: 300, Seed: 1}
	res, err := r.Threads()
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]ThreadsRow{res.FaultFree, res.Faulted} {
		if len(rows) != 4 {
			t.Fatalf("want 4 scaling points, got %d", len(rows))
		}
		for i, row := range rows {
			if row.Completed == 0 {
				t.Fatalf("workers=%d: no completed requests", row.Workers)
			}
			if row.Unrecovered != 0 {
				t.Fatalf("workers=%d: %d unrecovered crashes", row.Workers, row.Unrecovered)
			}
			// Monotonic improvement 1 → 2 → 4 workers; 8 may plateau
			// (the client pool is the limit by then) but not regress.
			if i > 0 && row.WallPerReq > rows[i-1].WallPerReq {
				t.Errorf("workers=%d: wall cycles/req %0.f worse than %d workers' %0.f",
					row.Workers, row.WallPerReq, rows[i-1].Workers, rows[i-1].WallPerReq)
			}
		}
	}
	var confl int64
	for _, row := range res.FaultFree[1:] {
		confl += row.ByConfl
	}
	if confl == 0 {
		t.Error("no conflict aborts across multi-worker fault-free runs")
	}
	if res.FaultFree[0].ByConfl != 0 {
		t.Errorf("single worker reported %d conflict aborts; conflicts need another thread",
			res.FaultFree[0].ByConfl)
	}
	for _, row := range res.Faulted {
		if row.ByExpl == 0 {
			t.Errorf("workers=%d: planted fault produced no explicit aborts", row.Workers)
		}
		if row.Injections == 0 {
			t.Errorf("workers=%d: persistent fault was never bypassed by injection", row.Workers)
		}
	}
}

// TestThreadsDeterministic locks the whole campaign output: a fixed seed
// must render byte-identically, serial or parallel.
func TestThreadsDeterministic(t *testing.T) {
	run := func(parallelism int) string {
		r := Runner{Requests: 300, Seed: 1, Parallelism: parallelism}
		res, err := r.Threads()
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	a, b, p := run(1), run(1), run(4)
	if a != b {
		t.Fatalf("two serial runs diverged:\n%s\nvs\n%s", a, b)
	}
	if a != p {
		t.Fatalf("parallel run diverged from serial:\n%s\nvs\n%s", a, p)
	}
}
