package bench

import (
	"sort"
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
)

// sortedCopy returns the samples in ascending order.
func sortedCopy(samples []int64) []int64 {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// TestTxWindowPercentilesPinned pins every percentile column of the
// TxWindows table against an independent recomputation from the raw
// window samples (before this test they were only sanity-checked for
// ordering, max >= p50), and requires the whole table to reproduce
// byte-identically on a re-run. The table is part of the default suite,
// so its rank rule (sorted[n/2], sorted[n*9/10], sorted[n-1]) is part of
// the byte-for-byte output contract and must match exactly — not merely
// within a histogram error bound.
func TestTxWindowPercentilesPinned(t *testing.T) {
	res, err := testRunner().TxWindows()
	if err != nil {
		t.Fatal(err)
	}
	again, err := testRunner().TxWindows()
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != again.Render() {
		t.Fatalf("TxWindows render differs across identical runs:\n%s\nvs\n%s",
			res.Render(), again.Render())
	}

	pin := func(server, col string, got, want int64) {
		if got != want {
			t.Errorf("%s %s = %d, want %d", server, col, got, want)
		}
	}
	r := testRunner().withDefaults()
	for _, row := range res.Rows {
		app := apps.ByName(row.Server)
		if app == nil {
			t.Fatalf("unknown server %q in window rows", row.Server)
		}
		inst, _, err := r.measure(app, bootOpts{})
		if err != nil {
			t.Fatalf("%s: %v", row.Server, err)
		}
		st := inst.rt.Stats()
		if len(st.TxSteps) != row.Transactions {
			t.Errorf("%s: re-measured %d transactions, row has %d",
				row.Server, len(st.TxSteps), row.Transactions)
			continue
		}
		steps := sortedCopy(st.TxSteps)
		n := len(steps)
		pin(row.Server, "steps p50", row.StepsP50, steps[n/2])
		pin(row.Server, "steps p90", row.StepsP90, steps[n*9/10])
		pin(row.Server, "steps max", row.StepsMax, steps[n-1])
		lines := sortedCopy(st.TxWriteLines)
		m := len(lines)
		pin(row.Server, "wset p50", row.WriteLinesP50, lines[m/2])
		pin(row.Server, "wset max", row.WriteLinesMax, lines[m-1])
	}
}
