package bench

import (
	"fmt"
	"strings"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/libmodel"
)

// --- Table II -----------------------------------------------------------------

// TableIIResult is the library-function classification matrix.
type TableIIResult struct {
	Counts map[libmodel.Class][2]int // [divertable, not divertable]
	Total  int
}

// TableII regenerates the paper's Table II from the Library Interface
// Analyzer's knowledge base.
func TableII() TableIIResult {
	m := libmodel.Default()
	return TableIIResult{Counts: m.TableII(), Total: m.CanonicalCount()}
}

// Render prints the matrix in the paper's layout.
func (t TableIIResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table II: library functions by recoverability × diversion\n")
	fmt.Fprintf(&sb, "%-28s %9s %13s %6s\n", "Recoverability", "possible", "NOT possible", "Total")
	order := []libmodel.Class{
		libmodel.Reversible, libmodel.NoReversion, libmodel.Deferrable,
		libmodel.StateRestore, libmodel.Irrecoverable,
	}
	var d, nd int
	for _, c := range order {
		row := t.Counts[c]
		fmt.Fprintf(&sb, "%-28s %9d %13d %6d\n", c.String(), row[0], row[1], row[0]+row[1])
		d += row[0]
		nd += row[1]
	}
	fmt.Fprintf(&sb, "%-28s %9d %13d %6d\n", "Total", d, nd, d+nd)
	return sb.String()
}

// --- Table III ----------------------------------------------------------------

// TableIIIRow is one server's runtime recoverable surface.
type TableIIIRow struct {
	Server          string
	UniqueTx        int // unique transactions observed (gate + break regions)
	EmbeddedCalls   int // unique embedded library call sites executed
	IrrecoverableTx int // unique unprotected regions (after irrecoverable calls)
	RecoverablePct  float64
}

// TableIIIResult is the full table.
type TableIIIResult struct {
	Rows []TableIIIRow
}

// TableIII measures the runtime recoverable surface of the three web
// servers under their standard test-suite workload (paper: 84.6 / 77.3 /
// 77.9 %).
func (r Runner) TableIII() (TableIIIResult, error) {
	r = r.withDefaults()
	var out TableIIIResult
	servers := apps.WebServers()
	rows := make([]TableIIIRow, len(servers))
	if err := r.forEach(len(servers), func(i int) error {
		app := servers[i]
		inst, res, err := r.measure(app, bootOpts{})
		if err != nil {
			return fmt.Errorf("table III %s: %w", app.Name, err)
		}
		if res.ServerDied {
			return fmt.Errorf("table III %s: server died (trap %d)", app.Name, res.TrapCode)
		}
		st := inst.rt.Stats()
		gates := len(st.GateSites)
		breaks := len(st.BreakSites)
		total := gates + breaks
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(gates) / float64(total)
		}
		rows[i] = TableIIIRow{
			Server:          app.Name,
			UniqueTx:        total,
			EmbeddedCalls:   len(st.EmbedSites),
			IrrecoverableTx: breaks,
			RecoverablePct:  pct,
		}
		return nil
	}); err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// Render prints the table in the paper's layout.
func (t TableIIIResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table III: runtime recoverable surface (standard workloads)\n")
	fmt.Fprintf(&sb, "%-36s", "")
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%10s", row.Server)
	}
	sb.WriteString("\n")
	line := func(label string, f func(TableIIIRow) string) {
		fmt.Fprintf(&sb, "%-36s", label)
		for _, row := range t.Rows {
			fmt.Fprintf(&sb, "%10s", f(row))
		}
		sb.WriteString("\n")
	}
	line("# unique transactions", func(r TableIIIRow) string { return fmt.Sprint(r.UniqueTx) })
	line("# libcalls embedded within", func(r TableIIIRow) string { return fmt.Sprint(r.EmbeddedCalls) })
	line("# unique irrecoverable transactions", func(r TableIIIRow) string { return fmt.Sprint(r.IrrecoverableTx) })
	line("Unique recoverable transactions", func(r TableIIIRow) string { return fmt.Sprintf("%.1f%%", r.RecoverablePct) })
	return sb.String()
}

// --- Table IV -----------------------------------------------------------------

// TableIVRow is one server's survivability results.
type TableIVRow struct {
	Server string

	// Fail-stop campaign.
	FSInjected  int
	FSRecovered int

	// Fail-silent campaign.
	SilInjected  int
	SilTriggered int // corruptions that escalated to crashes
	SilRecovered int // of those, recovered
}

// TableIVResult is the full table.
type TableIVResult struct {
	Rows []TableIVRow
}

// TableIV runs the paper's §VI-B survivability campaign: one persistent
// fault per experiment, planted in a profiled non-critical block, with the
// server's standard workload; then the same with fail-silent software
// faults (most of which must not crash).
func (r Runner) TableIV() (TableIVResult, error) {
	r = r.withDefaults()
	var out TableIVResult
	for _, app := range apps.All() {
		row := TableIVRow{Server: app.Name}

		failStop, err := r.planFaults(app, faultinj.FailStop, r.FaultsPerServer)
		if err != nil {
			return out, fmt.Errorf("table IV %s: %w", app.Name, err)
		}
		// Fan the per-fault runs across the pool; the outcomes reduce in
		// fault-plan order, so counters match the serial campaign.
		type fsOutcome struct {
			triggered bool
			died      bool
		}
		fsResults := make([]fsOutcome, len(failStop))
		if err := r.forEach(len(failStop), func(i int) error {
			inst, res, err := r.measure(app, bootOpts{fault: &failStop[i]})
			if err != nil {
				return err
			}
			st := inst.rt.Stats()
			fsResults[i] = fsOutcome{
				triggered: st.Crashes > 0 || st.Unrecovered > 0 || res.ServerDied,
				died:      res.ServerDied,
			}
			return nil
		}); err != nil {
			return out, err
		}
		for _, o := range fsResults {
			if !o.triggered {
				continue // the workload never reached the fault
			}
			row.FSInjected++
			if !o.died {
				row.FSRecovered++
			}
		}

		// Fail-silent faults: mix the HSFI corruption types. Planning
		// stays serial (each plan is a profiling run feeding the next
		// stage); the runs themselves fan out as one flat job list.
		kinds := []faultinj.Kind{
			faultinj.FlipBranch, faultinj.CorruptConst,
			faultinj.WrongOperator, faultinj.OffByOne,
		}
		var silFaults []faultinj.Fault
		for _, kind := range kinds {
			faults, err := r.planFaults(app, kind, r.FaultsPerServer/len(kinds)+1)
			if err != nil {
				return out, err
			}
			silFaults = append(silFaults, faults...)
		}
		type silOutcome struct {
			crashed bool
			died    bool
		}
		silResults := make([]silOutcome, len(silFaults))
		if err := r.forEach(len(silFaults), func(i int) error {
			inst, res, err := r.measure(app, bootOpts{fault: &silFaults[i]})
			if err != nil {
				return err
			}
			st := inst.rt.Stats()
			silResults[i] = silOutcome{
				crashed: st.Crashes > 0 || res.ServerDied,
				died:    res.ServerDied,
			}
			return nil
		}); err != nil {
			return out, err
		}
		for _, o := range silResults {
			row.SilInjected++
			if o.crashed {
				row.SilTriggered++
				if !o.died {
					row.SilRecovered++
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table in the paper's layout.
func (t TableIVResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table IV: crash recovery effectiveness against injected persistent faults\n")
	fmt.Fprintf(&sb, "%-10s | %9s %9s | %9s %9s %9s\n",
		"Server", "FS inj", "FS recov", "Sil inj", "Sil crash", "Sil recov")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s | %9d %9d | %9d %9d %9d\n",
			r.Server, r.FSInjected, r.FSRecovered, r.SilInjected, r.SilTriggered, r.SilRecovered)
	}
	return sb.String()
}
