package sched

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
	"github.com/firestarter-go/firestarter/internal/transform"
)

// mustCompile compiles a mini-C snippet against the simulated library.
func mustCompile(t *testing.T, src string) *transform.Result {
	t.Helper()
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := transform.Apply(prog, nil)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return tr
}

// protectedSched boots a transformed program under the scheduler with one
// recovery runtime (and TSX instance) per thread, all joined through a
// shared conflict domain.
func protectedSched(t *testing.T, tr *transform.Result, cfg core.Config, quantum int64) (*Sched, *[]*core.Runtime) {
	t.Helper()
	osim := libsim.New(mem.NewSpace())
	domain := htm.NewDomain()
	rts := &[]*core.Runtime{}
	factory := func(tid int) ThreadRuntime {
		c := cfg
		c.HTM.Seed = cfg.HTM.Seed + int64(tid)*1_000_003
		rt := core.New(tr, osim, c)
		rt.SetDomain(domain, tid)
		*rts = append(*rts, rt)
		return rt
	}
	s, err := New(tr.Prog, osim, factory, Options{Quantum: quantum})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	return s, rts
}

// A racy two-thread counter: each iteration opens a transaction at the
// malloc gate and stores to g_x inside it. Both threads write the same
// cache line, so suspending one mid-transaction and running the other
// must produce genuine AbortConflict aborts — and, because every abort
// rolls back and re-executes the iteration, the final count is still
// exact.
const racySrc = `
int g_x = 0;

int worker(int id) {
	int i = 0;
	while (i < 200) {
		char *p = malloc(16);
		if (p == 0) {
			return 1;
		}
		g_x = g_x + 1;
		free(p);
		i = i + 1;
	}
	return 0;
}

int main() {
	int a = thread_create("worker", 0);
	if (a < 0) {
		return 1;
	}
	int b = thread_create("worker", 1);
	if (b < 0) {
		return 2;
	}
	if (thread_join(a) != 0) {
		return 3;
	}
	if (thread_join(b) != 0) {
		return 4;
	}
	return 0;
}
`

func runRacy(t *testing.T, quantum int64) (*Sched, *[]*core.Runtime) {
	t.Helper()
	tr := mustCompile(t, racySrc)
	cfg := core.Config{
		// Keep the adaptive policy out of the way: no interrupt aborts,
		// and a threshold high enough that gates stay on HTM (an early
		// STM latch would serialize on the commit lock and stop the
		// very conflicts this test measures).
		Threshold:  0.95,
		SampleSize: 1 << 30,
	}
	s, rts := protectedSched(t, tr, cfg, quantum)
	out := s.Run(0)
	if !s.Main().Exited() || out.Code != 0 {
		t.Fatalf("program did not exit cleanly: %+v (sched: %s)", out, s)
	}
	return s, rts
}

// TestConflictAbortsAcrossThreads is the tentpole's acceptance test: two
// threads writing the same cache line inside hardware transactions must
// organically generate AbortConflict, and recovery must keep the counter
// exact despite the aborts.
func TestConflictAbortsAcrossThreads(t *testing.T) {
	s, rts := runRacy(t, 64)

	var confl, aborts int64
	for _, rt := range *rts {
		st := rt.HTMStats()
		confl += st.ByConfl
		aborts += st.Aborts
	}
	if confl == 0 {
		t.Fatalf("no conflict aborts despite racing transactions (aborts=%d)", aborts)
	}
	addr := s.Main().GlobalAddr("g_x")
	v, err := s.Main().Space.Load(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 400 {
		t.Fatalf("g_x = %d after recovery, want 400 (conflicts=%d)", v, confl)
	}
	t.Logf("conflict aborts: %d (total aborts %d)", confl, aborts)
}

// TestSchedulingIsDeterministic locks in the reproducibility contract:
// identical programs, seeds and quanta must produce bit-identical
// per-thread cycle counts and abort statistics.
func TestSchedulingIsDeterministic(t *testing.T) {
	type fp struct {
		cycles []int64
		confl  int64
		begins int64
	}
	run := func() fp {
		s, rts := runRacy(t, 64)
		var f fp
		for _, th := range s.Threads() {
			f.cycles = append(f.cycles, th.M.Cycles)
		}
		for _, rt := range *rts {
			st := rt.HTMStats()
			f.confl += st.ByConfl
			f.begins += st.Begins
		}
		return f
	}
	a, b := run(), run()
	if a.confl != b.confl || a.begins != b.begins || len(a.cycles) != len(b.cycles) {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.cycles {
		if a.cycles[i] != b.cycles[i] {
			t.Fatalf("thread %d cycles diverged: %d vs %d", i, a.cycles[i], b.cycles[i])
		}
	}
}

// TestMutexProtectsCounter exercises lock/unlock + join under the plain
// (unprotected) runtime: mutual exclusion and FIFO-ish wakeup, no
// transactions involved.
func TestMutexProtectsCounter(t *testing.T) {
	const src = `
int g_n = 0;

int worker(int id) {
	int i = 0;
	while (i < 100) {
		if (mutex_lock(7) != 0) {
			return 1;
		}
		g_n = g_n + 1;
		if (mutex_unlock(7) != 0) {
			return 2;
		}
		i = i + 1;
	}
	return 0;
}

int main() {
	int a = thread_create("worker", 0);
	int b = thread_create("worker", 1);
	int c = thread_create("worker", 2);
	if (a < 0 || b < 0 || c < 0) {
		return 1;
	}
	thread_join(a);
	thread_join(b);
	thread_join(c);
	return 0;
}
`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	osim := libsim.New(mem.NewSpace())
	s, err := New(prog, osim, nil, Options{Quantum: 37})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Run(0)
	if out.Kind != interp.OutExited || out.Code != 0 {
		t.Fatalf("unexpected outcome: %+v (sched: %s)", out, s)
	}
	v, err := s.Main().Space.Load(s.Main().GlobalAddr("g_n"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 300 {
		t.Fatalf("g_n = %d, want 300", v)
	}
	for _, th := range s.Threads()[1:] {
		if !th.Exited() || th.ExitCode() != 0 {
			t.Fatalf("thread %d: exited=%v code=%d", th.ID, th.Exited(), th.ExitCode())
		}
	}
}

// TestThreadErrors covers the error paths of the pthread-style calls.
func TestThreadErrors(t *testing.T) {
	const src = `
int main() {
	int bad = thread_create("nosuch", 0);
	if (bad != -1) {
		return 1;
	}
	if (thread_join(99) != -1) {
		return 2;
	}
	if (mutex_unlock(3) == 0) {
		return 3;
	}
	if (mutex_lock(3) != 0) {
		return 4;
	}
	if (mutex_lock(3) == 0) {
		return 5;
	}
	if (mutex_unlock(3) != 0) {
		return 6;
	}
	return 0;
}
`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	osim := libsim.New(mem.NewSpace())
	s, err := New(prog, osim, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Run(0)
	if out.Code != 0 {
		t.Fatalf("exit code %d, want 0 (%+v)", out.Code, out)
	}
}

// TestStmCommitLockSerializes drives one gate into the STM fallback and
// checks that hardware transactions of the other thread are doomed by the
// commit lock (lock elision) rather than committing concurrently.
func TestStmCommitLockSerializes(t *testing.T) {
	tr := mustCompile(t, racySrc)
	cfg := core.Config{
		// Latch aggressively: the first sampled abort flips the gate to
		// STM, after which the commit lock serializes everything.
		Threshold:  0.0001,
		SampleSize: 1,
	}
	s, rts := protectedSched(t, tr, cfg, 64)
	out := s.Run(0)
	if !s.Main().Exited() || out.Code != 0 {
		t.Fatalf("program did not exit cleanly: %+v (sched: %s)", out, s)
	}
	var stmBegins int64
	for _, rt := range *rts {
		stmBegins += rt.Stats().STMBegins
	}
	if stmBegins == 0 {
		t.Skip("no STM fallback triggered (no aborts at this quantum)")
	}
	v, err := s.Main().Space.Load(s.Main().GlobalAddr("g_x"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 400 {
		t.Fatalf("g_x = %d under STM serialization, want 400", v)
	}
}
