package sched

import (
	"strconv"

	"github.com/firestarter-go/firestarter/internal/obsv"
)

// PublishMetrics copies the scheduler's cycle accounting into a metrics
// registry: the wall/total cycle counters plus per-thread cycle and step
// gauges labelled thread=<tid>. Like the other publishers it runs at
// collection time only — scheduling hot paths never see the registry.
func (s *Sched) PublishMetrics(reg *obsv.Registry, labels ...obsv.Label) {
	reg.Gauge("sched.threads", labels...).Set(int64(len(s.threads)))
	reg.Gauge("sched.wall_cycles", labels...).SetMax(s.WallCycles())
	reg.Counter("sched.total_cycles", labels...).Add(s.TotalCycles())
	reg.Counter("sched.total_steps", labels...).Add(s.TotalSteps())
	for _, t := range s.threads {
		tl := append(append([]obsv.Label(nil), labels...), obsv.L("thread", strconv.Itoa(t.ID)))
		reg.Gauge("sched.thread_cycles", tl...).Set(t.M.Cycles)
		reg.Gauge("sched.thread_steps", tl...).Set(t.M.Steps)
	}
}
