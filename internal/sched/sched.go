// Package sched is a deterministic, quantum-based cooperative scheduler
// that multiplexes N interpreter machines (threads) over one shared
// address space and simulated OS.
//
// The paper's protected servers are multi-process/multi-threaded (Nginx
// workers, PostgreSQL backends); conflict aborts — a first-class TSX abort
// cause — only exist when another core can touch a transaction's cache
// lines. This package supplies that concurrency while keeping the repo's
// reproducibility contract: scheduling is round-robin over runnable
// threads with a fixed instruction quantum, wakeups are broadcast in
// thread order, and no host-level nondeterminism (goroutines, maps in
// iteration order, time) is involved, so a run is a pure function of the
// program, workload and seeds.
//
// Thread and mutex state lives here; the guest reaches it through the
// pthread-style library calls (thread_create, thread_join, mutex_lock,
// mutex_unlock) that libsim dispatches to the installed ThreadOps — which
// a Sched implements. Blocking follows the repo's existing discipline: a
// call that cannot proceed returns libsim.ErrBlocked, the machine yields,
// and the faulting instruction re-executes when the scheduler wakes the
// thread (mutex release, thread exit, new external input, or a possible
// STM commit-lock release).
//
// Each thread gets its own Runtime (for the recovery runtime: its own TSX
// instance, undo log and gate policy), all joined through one htm.Domain.
// The shared OS holds single-valued store/cycle hooks, so every context
// switch re-points them at the incoming thread.
package sched

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
)

// ThreadRuntime is what the scheduler needs from a per-thread runtime
// beyond interp.Runtime: binding to its machine, the store hook to install
// on context switch, and delivery of cross-thread aborts on resume.
// core.Runtime implements it; Direct adapts interp.Direct for
// unprotected (vanilla) multithreaded runs.
type ThreadRuntime interface {
	interp.Runtime
	Attach(m *interp.Machine)
	StoreFunc() libsim.StoreFunc
	OnResume()
}

// RuntimeFactory builds the runtime for thread tid (0 = main). Under the
// recovery runtime the factory is where per-thread TSX seeds and the
// shared conflict domain are wired up.
type RuntimeFactory func(tid int) ThreadRuntime

// Direct is the pass-through ThreadRuntime for unprotected programs.
type Direct struct{ interp.Direct }

// Attach implements ThreadRuntime.
func (Direct) Attach(*interp.Machine) {}

// StoreFunc implements ThreadRuntime: nil restores direct stores.
func (Direct) StoreFunc() libsim.StoreFunc { return nil }

// OnResume implements ThreadRuntime.
func (Direct) OnResume() {}

// thread states.
const (
	stRunnable  = iota // schedulable now
	stWaitIO           // blocked call with no scheduler-visible wake event
	stWaitMutex        // blocked in mutex_lock(waitID)
	stWaitJoin         // blocked in thread_join(waitID)
	stWaitLock         // TxBegin blocked on the STM commit lock
	stExited           // returned from its entry function (or cancelled)
)

// Thread is one schedulable machine.
type Thread struct {
	ID int
	M  *interp.Machine
	RT ThreadRuntime

	state    int
	waitID   int64 // mutex id (stWaitMutex) or thread id (stWaitJoin)
	exitCode int64

	// servingFD preserves the shared OS's "request being served"
	// descriptor across preemption: saved at slice end, restored on
	// activate, so a thread's shed rung and trace attribution never see
	// another thread's connection.
	servingFD int64
}

// Exited reports whether the thread has finished.
func (t *Thread) Exited() bool { return t.state == stExited }

// ExitCode returns the thread's exit value once Exited.
func (t *Thread) ExitCode() int64 { return t.exitCode }

type mutex struct {
	owner int // thread id, -1 free
}

// Options parameterizes a scheduler.
type Options struct {
	// Quantum is the instruction budget per scheduling slice (default
	// 4096). Smaller quanta interleave threads more finely — more
	// transaction overlap, more conflict aborts.
	Quantum int64
	// MaxThreads caps thread_create (default 64).
	MaxThreads int
}

// Sched multiplexes threads over one shared Space/OS.
type Sched struct {
	prog    *ir.Program
	os      *libsim.OS
	factory RuntimeFactory
	opts    Options

	threads []*Thread
	mutexes map[int64]*mutex
	current *Thread
	cursor  int

	// pendingWait/pendingID are set by a ThreadOps hook just before it
	// returns ErrBlocked, so the slice-end code can classify the block.
	pendingWait int
	pendingID   int64
}

var _ libsim.ThreadOps = (*Sched)(nil)

// New builds a scheduler whose main thread (tid 0) runs the program's
// entry function, and installs the scheduler behind the OS's pthread-style
// calls. The factory is invoked once per thread, starting with tid 0.
func New(prog *ir.Program, osim *libsim.OS, factory RuntimeFactory, opts Options) (*Sched, error) {
	if opts.Quantum <= 0 {
		opts.Quantum = 4096
	}
	if opts.MaxThreads <= 0 {
		opts.MaxThreads = 64
	}
	if factory == nil {
		factory = func(int) ThreadRuntime { return Direct{} }
	}
	s := &Sched{
		prog:    prog,
		os:      osim,
		factory: factory,
		opts:    opts,
		mutexes: make(map[int64]*mutex),
	}
	rt := factory(0)
	m, err := interp.New(prog, osim, rt)
	if err != nil {
		return nil, err
	}
	rt.Attach(m)
	s.threads = []*Thread{{ID: 0, M: m, RT: rt, state: stRunnable, servingFD: -1}}
	osim.SetThreads(s)
	return s, nil
}

// SetBlockHook installs a basic-block profiling hook on every machine,
// present and future (fault-injection profiling).
func (s *Sched) SetBlockHook(h func(fn string, block int)) {
	for _, t := range s.threads {
		t.M.BlockHook = h
	}
}

// Threads returns the thread table (tests and stats aggregation). Index 0
// is the main thread; entries are never removed.
func (s *Sched) Threads() []*Thread { return s.threads }

// Main returns the main thread's machine.
func (s *Sched) Main() *interp.Machine { return s.threads[0].M }

// WallCycles approximates parallel wall-clock time: the maximum per-thread
// cycle count. With work spread over more workers the maximum drops — this
// is the throughput metric of the threads campaign.
func (s *Sched) WallCycles() int64 {
	var max int64
	for _, t := range s.threads {
		if t.M.Cycles > max {
			max = t.M.Cycles
		}
	}
	return max
}

// TotalCycles is the summed per-thread cycle count (total work done).
func (s *Sched) TotalCycles() int64 {
	var sum int64
	for _, t := range s.threads {
		sum += t.M.Cycles
	}
	return sum
}

// TotalSteps sums executed instructions across threads.
func (s *Sched) TotalSteps() int64 {
	var sum int64
	for _, t := range s.threads {
		sum += t.M.Steps
	}
	return sum
}

// activate makes t the running thread: the shared OS's store, cycle,
// serving-connection and trace hooks point at its runtime and machine for
// the duration of the slice.
func (s *Sched) activate(t *Thread) {
	s.current = t
	s.os.SetStore(t.RT.StoreFunc())
	s.os.SetCycleSink(&t.M.Cycles)
	s.os.SetServingFD(t.servingFD)
	if th, ok := t.RT.(interface{ TraceHook() libsim.TraceFunc }); ok {
		s.os.SetTraceHook(th.TraceHook())
	} else {
		s.os.SetTraceHook(nil)
	}
	s.pendingWait = stRunnable
}

// deactivate saves per-thread OS state at the end of t's slice.
func (s *Sched) deactivate(t *Thread) {
	t.servingFD = s.os.ServingFD()
}

// pickNext returns the next runnable thread in round-robin order, nil if
// none.
func (s *Sched) pickNext() *Thread {
	n := len(s.threads)
	for i := 0; i < n; i++ {
		t := s.threads[(s.cursor+i)%n]
		if t.state == stRunnable {
			s.cursor = (s.cursor + i + 1) % n
			return t
		}
	}
	return nil
}

func (s *Sched) wake(state int, id int64) {
	for _, t := range s.threads {
		if t.state == state && t.waitID == id {
			t.state = stRunnable
		}
	}
}

// blockRetrySteps bounds how many instructions a thread can consume while
// "immediately" re-blocking (the retried call plus dispatch); slices at or
// under it count as idle for livelock detection.
const blockRetrySteps = 4

// Run schedules threads until the process exits, a thread traps fatally,
// every thread is blocked, or maxSteps instructions (0 = no limit) have
// been executed across all threads. The workload driver interleaves with
// Run exactly as with a single machine: on OutBlocked it feeds client
// bytes and calls Run again (which retries I/O-blocked threads).
func (s *Sched) Run(maxSteps int64) interp.Outcome {
	main := s.threads[0]
	if main.state == stExited {
		return interp.Outcome{Kind: interp.OutExited, Code: main.exitCode}
	}
	// The external world may have changed since the last Run: retry
	// blocked I/O (and commit-lock) waits.
	for _, t := range s.threads {
		if t.state == stWaitIO || t.state == stWaitLock {
			t.state = stRunnable
		}
	}
	limited := maxSteps > 0
	remaining := maxSteps
	idle := 0
	for {
		t := s.pickNext()
		if t == nil {
			return interp.Outcome{Kind: interp.OutBlocked}
		}
		q := s.opts.Quantum
		if limited && remaining < q {
			q = remaining
		}
		if q <= 0 {
			return interp.Outcome{Kind: interp.OutStepLimit}
		}
		s.activate(t)
		// Deliver any conflict abort doomed into this thread's live
		// transaction while it was suspended, before it executes.
		t.RT.OnResume()
		start := t.M.Steps
		out := t.M.Run(q)
		s.deactivate(t)
		used := t.M.Steps - start
		if limited {
			remaining -= used
		}
		switch out.Kind {
		case interp.OutExited:
			t.state = stExited
			t.exitCode = out.Code
			s.wake(stWaitJoin, int64(t.ID))
			if t.ID == 0 {
				// Main returning ends the process, like returning from
				// C main (our apps join their workers first).
				return out
			}
			idle = 0
		case interp.OutTrapped:
			// Fail-stop: the whole process dies with the trapping thread.
			return out
		case interp.OutBlocked:
			switch {
			case s.pendingWait != stRunnable:
				t.state = s.pendingWait
				t.waitID = s.pendingID
			case s.waitingCommitLock(t):
				t.state = stWaitLock
			default:
				t.state = stWaitIO
			}
			if used <= blockRetrySteps {
				idle++
			} else {
				idle = 0
			}
		case interp.OutStepLimit:
			idle = 0
		}
		// Another thread may have released the STM commit lock during the
		// slice; give lock waiters a retry.
		for _, u := range s.threads {
			if u.state == stWaitLock {
				u.state = stRunnable
			}
		}
		if limited && remaining <= 0 {
			return interp.Outcome{Kind: interp.OutStepLimit}
		}
		// Livelock guard: if a full rotation's worth of threads did
		// nothing but immediately re-block, yield to the driver.
		if idle > 2*len(s.threads)+2 {
			return interp.Outcome{Kind: interp.OutBlocked}
		}
	}
}

func (s *Sched) waitingCommitLock(t *Thread) bool {
	if w, ok := t.RT.(interface{ WaitingCommitLock() bool }); ok {
		return w.WaitingCommitLock()
	}
	return false
}

// --- libsim.ThreadOps ---------------------------------------------------------

// Create implements ThreadOps: spawn a thread running the named function.
func (s *Sched) Create(fnName string, arg int64) (int64, error) {
	fn := s.prog.Funcs[fnName]
	if fn == nil {
		s.os.Errno = libsim.EINVAL
		return -1, nil
	}
	if len(s.threads) >= s.opts.MaxThreads {
		s.os.Errno = libsim.EAGAIN
		return -1, nil
	}
	parent := s.current
	if parent == nil {
		parent = s.threads[0]
	}
	tid := len(s.threads)
	rt := s.factory(tid)
	m, err := interp.NewThread(parent.M, rt, fn, []int64{arg}, tid)
	if err != nil {
		s.os.Errno = libsim.EAGAIN
		return -1, nil
	}
	rt.Attach(m)
	m.BlockHook = parent.M.BlockHook
	s.threads = append(s.threads, &Thread{ID: tid, M: m, RT: rt, state: stRunnable, servingFD: -1})
	return int64(tid), nil
}

// Join implements ThreadOps: block until the thread exits.
func (s *Sched) Join(tid int64) (int64, error) {
	if tid <= 0 || tid >= int64(len(s.threads)) {
		s.os.Errno = libsim.EINVAL
		return -1, nil
	}
	if s.threads[tid].state == stExited {
		return 0, nil
	}
	s.pendingWait = stWaitJoin
	s.pendingID = tid
	return 0, libsim.ErrBlocked
}

// MutexLock implements ThreadOps. Mutexes are created on first use, keyed
// by the integer the program passes (pthread_mutex_t analog).
func (s *Sched) MutexLock(id int64) (int64, error) {
	mu := s.mutexes[id]
	if mu == nil {
		mu = &mutex{owner: -1}
		s.mutexes[id] = mu
	}
	cur := 0
	if s.current != nil {
		cur = s.current.ID
	}
	switch mu.owner {
	case -1:
		mu.owner = cur
		return 0, nil
	case cur:
		return libsim.EDEADLK, nil
	default:
		s.pendingWait = stWaitMutex
		s.pendingID = id
		return 0, libsim.ErrBlocked
	}
}

// MutexUnlock implements ThreadOps. All waiters are woken (broadcast, in
// thread order); the first one scheduled acquires, the rest re-block —
// deterministic and starvation-free under round-robin.
func (s *Sched) MutexUnlock(id int64) (int64, error) {
	mu := s.mutexes[id]
	cur := 0
	if s.current != nil {
		cur = s.current.ID
	}
	if mu == nil || mu.owner != cur {
		return libsim.EPERM, nil
	}
	mu.owner = -1
	s.wake(stWaitMutex, id)
	return 0, nil
}

// Cancel implements ThreadOps: the compensation action for a rolled-back
// thread_create. The thread is marked exited so it never runs again;
// instructions it already executed are the caller's responsibility (the
// recovery runtime only cancels threads created inside the transaction
// being rolled back).
func (s *Sched) Cancel(tid int64) bool {
	if tid <= 0 || tid >= int64(len(s.threads)) {
		return false
	}
	t := s.threads[tid]
	if t.state == stExited {
		return false
	}
	t.state = stExited
	t.exitCode = -1
	s.wake(stWaitJoin, tid)
	// Release any mutexes it holds so no waiter deadlocks on a corpse.
	for _, mu := range s.mutexes {
		if mu.owner == t.ID {
			mu.owner = -1
		}
	}
	for id, mu := range s.mutexes {
		if mu.owner == -1 {
			s.wake(stWaitMutex, id)
		}
	}
	return true
}

// String renders a short scheduler state summary (debugging).
func (s *Sched) String() string {
	states := [...]string{"runnable", "wait-io", "wait-mutex", "wait-join", "wait-lock", "exited"}
	out := ""
	for _, t := range s.threads {
		out += fmt.Sprintf("t%d:%s ", t.ID, states[t.state])
	}
	return out
}
