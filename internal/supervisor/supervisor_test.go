package supervisor

import (
	"errors"
	"reflect"
	"testing"

	"github.com/firestarter-go/firestarter/internal/obsv"
)

func TestBackoffIsExponentialAndCapped(t *testing.T) {
	s := New(Config{BackoffBase: 100, BackoffFactor: 2, BackoffMax: 1000})
	want := []int64{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := s.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestSuperviseRestartsUntilDone(t *testing.T) {
	s := New(Config{Seed: 10, BackoffBase: 100, BackoffFactor: 2, BackoffMax: 1000})
	var seeds []int64
	err := s.Supervise(func(inc int, seed int64) (RunResult, error) {
		seeds = append(seeds, seed)
		if inc < 3 {
			return RunResult{Died: true, Cycles: 50, ConnsLost: 2}, nil
		}
		return RunResult{Done: true, Cycles: 50}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seeds, []int64{10, 11, 12, 13}) {
		t.Errorf("seeds = %v", seeds)
	}
	st := s.Stats()
	if st.Incarnations != 4 || st.Restarts != 3 || st.StateLost != 3 || st.ConnsLost != 6 {
		t.Errorf("stats = %+v", st)
	}
	if st.BreakerOpen {
		t.Error("breaker opened on a completing campaign")
	}
	// Campaign clock: 4 incarnations x 50 cycles + backoffs 100+200+400.
	if st.BackoffCycles != 700 || st.ClockCycles != 200+700 {
		t.Errorf("backoff = %d, clock = %d", st.BackoffCycles, st.ClockCycles)
	}
	if len(st.Reboots) != 3 {
		t.Fatalf("reboots = %+v", st.Reboots)
	}
	// The reboot timeline is deterministic in the cycle domain.
	wantAt := []int64{50, 200, 450} // death stamps on the campaign clock
	for i, rb := range st.Reboots {
		if rb.Incarnation != i || rb.AtCycles != wantAt[i] {
			t.Errorf("reboot %d = %+v, want at %d", i, rb, wantAt[i])
		}
	}
	// Spans mirror the reboots one-to-one.
	var reboots int
	for _, e := range s.Spans() {
		if e.Kind == obsv.SpanReboot {
			reboots++
		}
	}
	if reboots != st.Restarts {
		t.Errorf("%d reboot spans for %d restarts", reboots, st.Restarts)
	}
}

func TestBreakerOpensOnCrashLoop(t *testing.T) {
	s := New(Config{MaxRestarts: 3, WindowCycles: 1 << 40})
	err := s.Supervise(func(inc int, seed int64) (RunResult, error) {
		return RunResult{Died: true, Cycles: 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !st.BreakerOpen {
		t.Fatal("breaker never opened")
	}
	// 3 restarts, then the 4th death trips the breaker.
	if st.Restarts != 3 || st.Incarnations != 4 || st.StateLost != 4 {
		t.Errorf("stats = %+v", st)
	}
	var opens int
	for _, e := range s.Spans() {
		if e.Kind == obsv.SpanBreakerOpen {
			opens++
		}
	}
	if opens != 1 {
		t.Errorf("%d breaker-open spans", opens)
	}
}

func TestBreakerWindowForgivesSpacedCrashes(t *testing.T) {
	// Deaths spaced wider than the window never accumulate: the campaign
	// keeps restarting (and here eventually completes).
	s := New(Config{MaxRestarts: 2, WindowCycles: 100, BackoffBase: 1, BackoffFactor: 1, BackoffMax: 1})
	err := s.Supervise(func(inc int, seed int64) (RunResult, error) {
		if inc < 10 {
			return RunResult{Died: true, Cycles: 500}, nil
		}
		return RunResult{Done: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BreakerOpen {
		t.Fatalf("breaker opened despite spaced crashes: %+v", st)
	}
	if st.Restarts != 10 {
		t.Errorf("restarts = %d", st.Restarts)
	}
}

func TestSuperviseTreatsHangAsDeath(t *testing.T) {
	s := New(Config{})
	calls := 0
	err := s.Supervise(func(inc int, seed int64) (RunResult, error) {
		calls++
		if calls == 1 {
			return RunResult{Cycles: 10}, nil // neither done nor died: hang
		}
		return RunResult{Done: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Restarts != 1 || st.StateLost != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestSupervisePropagatesRunError(t *testing.T) {
	s := New(Config{})
	boom := errors.New("boot failed")
	if err := s.Supervise(func(int, int64) (RunResult, error) {
		return RunResult{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublishMetricsReconcilesWithStats(t *testing.T) {
	s := New(Config{MaxRestarts: 2, WindowCycles: 1 << 40})
	if err := s.Supervise(func(inc int, seed int64) (RunResult, error) {
		return RunResult{Died: true, Cycles: 7, ConnsLost: 1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	reg := obsv.NewRegistry()
	s.PublishMetrics(reg)
	checks := map[string]int64{
		"supervisor.incarnations":         int64(st.Incarnations),
		"supervisor.restarts":             int64(st.Restarts),
		"supervisor.state_lost":           int64(st.StateLost),
		"supervisor.conns_lost":           int64(st.ConnsLost),
		"supervisor.backoff_cycles_total": st.BackoffCycles,
		"supervisor.breaker_open":         1,
		// Health-surface gauges reconcile with the Stats snapshot.
		"supervisor.backoff_cycles": st.LastBackoff,
		"supervisor.breaker_window": int64(st.Window),
	}
	for name, want := range checks {
		if got := reg.Total(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestPhaseAndHealthSurface(t *testing.T) {
	s := New(Config{MaxRestarts: 2, WindowCycles: 1 << 40, BackoffBase: 100, BackoffFactor: 2, BackoffMax: 1000})
	if s.Phase() != PhaseIdle {
		t.Fatalf("phase = %v before first incarnation", s.Phase())
	}
	inc, seed := s.BeginIncarnation()
	if inc != 0 || seed != 0 || s.Phase() != PhaseRunning {
		t.Fatalf("BeginIncarnation = (%d, %d), phase %v", inc, seed, s.Phase())
	}
	s.Advance(50)
	if s.Clock() != 50 {
		t.Fatalf("clock = %d", s.Clock())
	}
	backoff, open := s.RecordDeath(inc, 3)
	if open || backoff != 100 {
		t.Fatalf("RecordDeath = (%d, %v)", backoff, open)
	}
	if s.Phase() != PhaseBackoff || s.CurrentBackoff() != 100 || s.WindowOccupancy() != 1 {
		t.Fatalf("phase %v backoff %d window %d", s.Phase(), s.CurrentBackoff(), s.WindowOccupancy())
	}
	if s.Clock() != 150 {
		t.Fatalf("clock = %d after backoff charge", s.Clock())
	}

	inc, _ = s.BeginIncarnation()
	if s.Phase() != PhaseRunning {
		t.Fatalf("phase = %v after restart", s.Phase())
	}
	s.Advance(10)
	if backoff, open = s.RecordDeath(inc, 0); open || backoff != 200 {
		t.Fatalf("RecordDeath = (%d, %v)", backoff, open)
	}
	if s.WindowOccupancy() != 2 {
		t.Fatalf("window = %d", s.WindowOccupancy())
	}

	// Third death inside the window trips the breaker (MaxRestarts 2).
	inc, _ = s.BeginIncarnation()
	s.Advance(10)
	if _, open = s.RecordDeath(inc, 0); !open {
		t.Fatal("breaker did not open")
	}
	if s.Phase() != PhaseBreakerOpen || !s.BreakerOpen() {
		t.Fatalf("phase %v, BreakerOpen %v", s.Phase(), s.BreakerOpen())
	}
	st := s.Stats()
	if st.LastBackoff != 200 || st.Window != 2 {
		t.Fatalf("stats health fields = %+v", st)
	}
}

func TestWindowOccupancyDecaysWithClock(t *testing.T) {
	s := New(Config{MaxRestarts: 8, WindowCycles: 100, BackoffBase: 1, BackoffFactor: 1, BackoffMax: 1})
	inc, _ := s.BeginIncarnation()
	s.Advance(10)
	s.RecordDeath(inc, 0)
	if s.WindowOccupancy() != 1 {
		t.Fatalf("window = %d right after death", s.WindowOccupancy())
	}
	// The clock moving past the window forgives the restart without any
	// further death: occupancy is a pure function of clock and stamps.
	s.Advance(200)
	if s.WindowOccupancy() != 0 {
		t.Fatalf("window = %d after decay", s.WindowOccupancy())
	}
}

func TestSuperviseEndsInDonePhase(t *testing.T) {
	s := New(Config{})
	if err := s.Supervise(func(int, int64) (RunResult, error) {
		return RunResult{Done: true, Cycles: 1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if s.Phase() != PhaseDone {
		t.Fatalf("phase = %v", s.Phase())
	}
}

func TestStatsSnapshotDoesNotAliasReboots(t *testing.T) {
	s := New(Config{})
	s.stats.Reboots = []Reboot{{Incarnation: 0, AtCycles: 5}}
	snap := s.Stats()
	s.stats.Reboots[0].AtCycles = 99
	if snap.Reboots[0].AtCycles != 5 {
		t.Error("snapshot aliases the live reboot slice")
	}
}
