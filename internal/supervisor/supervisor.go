// Package supervisor is the microreboot rung of the recovery escalation
// ladder: process-level restart as a real subsystem instead of an ad-hoc
// loop in the benchmark harness.
//
// "Rebooting Microreboot" frames recovery as a ladder of progressively
// coarser supervised actions; this package owns the coarsest in-repo rung.
// When an incarnation of the supervised program dies (or hangs), the
// supervisor accounts the state and connections lost with it, waits out a
// deterministic exponential backoff in cost-model cycles, and boots a
// fresh incarnation with its own seed. A crash-loop breaker — more than
// MaxRestarts restarts inside a sliding WindowCycles window — makes the
// give-up point explicit: the supervisor opens the breaker, reports, and
// stops instead of silently under-counting abandoned work.
//
// Everything is cycle-domain: the campaign clock advances by the cycles
// each incarnation consumed plus the backoff, never by wall time, so a
// supervised campaign is byte-deterministic for a fixed seed.
package supervisor

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/obsv"
)

// Config parameterizes the supervision policy.
type Config struct {
	// MaxRestarts is the crash-loop breaker: more than this many restarts
	// within WindowCycles opens the breaker (default 8).
	MaxRestarts int

	// WindowCycles is the sliding window the breaker counts restarts in
	// (default 200M cycles).
	WindowCycles int64

	// BackoffBase is the first restart's backoff in cycles (default 50k);
	// each further restart doubles it (BackoffFactor) up to BackoffMax
	// (default 5M).
	BackoffBase   int64
	BackoffFactor int64
	BackoffMax    int64

	// Seed is the campaign seed; incarnation i runs with Seed+i so every
	// incarnation is deterministic but distinct.
	Seed int64
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 8
	}
	if c.WindowCycles == 0 {
		c.WindowCycles = 200_000_000
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 50_000
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = 2
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5_000_000
	}
	return c
}

// RunResult is one incarnation's outcome, reported by the run callback.
type RunResult struct {
	// Done means the supervised work finished: stop supervising. Checked
	// before Died, so a process that completes its work and then dies is
	// still a completed campaign.
	Done bool

	// Died means the incarnation crashed; false with Done false is
	// treated as a hang — both are restarted.
	Died bool

	// Cycles the incarnation consumed (advances the campaign clock).
	Cycles int64

	// ConnsLost is the number of connections that died with the process.
	ConnsLost int
}

// Reboot records one restart decision for the campaign timeline.
type Reboot struct {
	Incarnation   int   // incarnation that died
	AtCycles      int64 // campaign clock at the death
	BackoffCycles int64 // backoff charged before the next incarnation
}

// Phase is the supervisor's externally visible state — the health signal
// surface the fleet balancer consumes. Idle means no incarnation has
// been started yet.
type Phase int

// Supervisor phases.
const (
	PhaseIdle Phase = iota
	PhaseRunning
	PhaseBackoff     // an incarnation died; the reboot backoff is being waited out
	PhaseBreakerOpen // the crash-loop breaker opened: no further restarts
	PhaseDone        // the supervised work completed
)

// String renders the phase for spans and logs.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseRunning:
		return "running"
	case PhaseBackoff:
		return "backoff"
	case PhaseBreakerOpen:
		return "breaker-open"
	case PhaseDone:
		return "done"
	default:
		return "unknown"
	}
}

// Stats is the supervisor's accounting. The published obsv metrics
// reconcile exactly with it.
type Stats struct {
	Incarnations  int
	Restarts      int
	StateLost     int // incarnation deaths/hangs: in-memory state discarded
	ConnsLost     int
	BackoffCycles int64
	BreakerOpen   bool
	ClockCycles   int64 // campaign clock: run cycles + backoff
	Reboots       []Reboot

	// LastBackoff is the most recently charged reboot backoff (the
	// "current backoff delay" gauge); Window is the breaker window
	// occupancy — restarts still inside the sliding window — at
	// collection time. Both reconcile with the supervisor.backoff_cycles
	// and supervisor.breaker_window gauges.
	LastBackoff int64
	Window      int
}

// Supervisor runs a program through restarts under the configured policy.
type Supervisor struct {
	cfg         Config
	stats       Stats
	recent      []int64 // campaign-clock stamps of restarts inside the window
	spans       obsv.SpanLog
	phase       Phase
	lastBackoff int64
}

// New returns a supervisor with the given policy.
func New(cfg Config) *Supervisor {
	return &Supervisor{cfg: cfg.withDefaults()}
}

// Clock returns the campaign clock: cycles consumed by every incarnation
// so far plus accumulated backoff. Run callbacks use it as the offset to
// rebase per-incarnation span timestamps onto the campaign timeline.
func (s *Supervisor) Clock() int64 { return s.stats.ClockCycles }

// Stats returns a snapshot of the accounting (Reboots deep-copied).
func (s *Supervisor) Stats() Stats {
	st := s.stats
	st.Reboots = append([]Reboot(nil), s.stats.Reboots...)
	st.LastBackoff = s.lastBackoff
	st.Window = s.WindowOccupancy()
	return st
}

// Phase returns the supervisor's current phase — the health signal the
// fleet balancer routes on (Running → assignable, Backoff → stop new
// assignments and reconnect on recovery, BreakerOpen → down for good).
func (s *Supervisor) Phase() Phase { return s.phase }

// BreakerOpen reports whether the crash-loop breaker has opened.
func (s *Supervisor) BreakerOpen() bool { return s.stats.BreakerOpen }

// CurrentBackoff returns the most recently charged reboot backoff in
// cycles (0 before the first reboot) — the current backoff delay gauge.
func (s *Supervisor) CurrentBackoff() int64 { return s.lastBackoff }

// WindowOccupancy returns how many restarts are still inside the
// breaker's sliding window as of the campaign clock: how close the
// replica is to tripping the breaker. The fleet balancer drains a
// replica whose window is nearly full; the ladder reconciles the
// supervisor.breaker_window gauge against it.
func (s *Supervisor) WindowOccupancy() int {
	now := s.stats.ClockCycles
	n := 0
	for _, t := range s.recent {
		if t >= now-s.cfg.WindowCycles {
			n++
		}
	}
	return n
}

// Spans returns the supervisor's span events (reboot, breaker-open),
// timestamped on the campaign clock.
func (s *Supervisor) Spans() []obsv.SpanEvent { return s.spans.Events() }

// backoff returns the k-th restart's backoff (k is 1-based).
func (s *Supervisor) backoff(k int) int64 {
	b := s.cfg.BackoffBase
	for i := 1; i < k; i++ {
		b *= s.cfg.BackoffFactor
		if b >= s.cfg.BackoffMax {
			return s.cfg.BackoffMax
		}
	}
	if b > s.cfg.BackoffMax {
		return s.cfg.BackoffMax
	}
	return b
}

// BeginIncarnation starts the next incarnation incrementally: it returns
// the incarnation number and its seed (Config.Seed + incarnation) and
// moves the supervisor to PhaseRunning. Incremental drivers — the fleet
// balancer interleaves N supervised replicas on one cycle domain — pair
// it with Advance and RecordDeath/Finish; Supervise is the same loop
// packaged for the single-process case.
func (s *Supervisor) BeginIncarnation() (incarnation int, seed int64) {
	incarnation = s.stats.Incarnations
	s.stats.Incarnations++
	s.phase = PhaseRunning
	return incarnation, s.cfg.Seed + int64(incarnation)
}

// Advance moves the campaign clock by cycles the running incarnation
// consumed. Incremental drivers call it per scheduling slice so the
// breaker window and backoff stamps stay on the shared cycle domain.
func (s *Supervisor) Advance(cycles int64) { s.stats.ClockCycles += cycles }

// Finish marks the supervised work complete (PhaseDone).
func (s *Supervisor) Finish() { s.phase = PhaseDone }

// RecordDeath accounts one incarnation death at the current campaign
// clock: state and connections lost, the crash-loop breaker check, and —
// if the breaker stays closed — the reboot decision, charging its
// backoff to the clock. It returns the charged backoff and whether the
// breaker opened (backoff 0). The next incarnation is due once the
// caller has observed Clock() advance past the death point plus backoff
// — i.e. immediately for Supervise, or when the shared cycle domain
// catches up for the fleet balancer.
func (s *Supervisor) RecordDeath(incarnation, connsLost int) (backoff int64, open bool) {
	// The incarnation died (or hung): its in-memory state and open
	// connections are gone.
	s.stats.StateLost++
	s.stats.ConnsLost += connsLost
	now := s.stats.ClockCycles

	// Crash-loop breaker: count restarts inside the sliding window.
	cut := 0
	for cut < len(s.recent) && s.recent[cut] < now-s.cfg.WindowCycles {
		cut++
	}
	s.recent = s.recent[cut:]
	if len(s.recent) >= s.cfg.MaxRestarts {
		s.stats.BreakerOpen = true
		s.phase = PhaseBreakerOpen
		s.spans.Append(obsv.SpanEvent{
			Cycles: now,
			Kind:   obsv.SpanBreakerOpen,
			Cause:  "crash-loop",
			Detail: fmt.Sprintf("restarts=%d window=%d", len(s.recent), s.cfg.WindowCycles),
		})
		return 0, true
	}
	s.recent = append(s.recent, now)

	s.stats.Restarts++
	backoff = s.backoff(s.stats.Restarts)
	s.stats.BackoffCycles += backoff
	s.stats.ClockCycles += backoff
	s.lastBackoff = backoff
	s.phase = PhaseBackoff
	s.stats.Reboots = append(s.stats.Reboots, Reboot{
		Incarnation:   incarnation,
		AtCycles:      now,
		BackoffCycles: backoff,
	})
	s.spans.Append(obsv.SpanEvent{
		Cycles: now,
		Kind:   obsv.SpanReboot,
		Cause:  "incarnation died",
		Detail: fmt.Sprintf("incarnation=%d backoff=%d conns_lost=%d", incarnation, backoff, connsLost),
	})
	return backoff, false
}

// Supervise runs incarnations of the program until one reports Done, the
// crash-loop breaker opens, or the callback errors. The callback receives
// the incarnation number and its seed (Config.Seed + incarnation). A
// breaker-open return is nil — giving up is a reported policy outcome,
// not an error; check Stats().BreakerOpen.
func (s *Supervisor) Supervise(run func(incarnation int, seed int64) (RunResult, error)) error {
	for {
		inc, seed := s.BeginIncarnation()
		res, err := run(inc, seed)
		if err != nil {
			return err
		}
		s.Advance(res.Cycles)
		if res.Done {
			s.Finish()
			return nil
		}
		if _, open := s.RecordDeath(inc, res.ConnsLost); open {
			return nil
		}
	}
}

// PublishMetrics copies the supervisor's accounting into a metrics
// registry under the given labels. Collection-time only; the totals
// reconcile exactly with Stats().
func (s *Supervisor) PublishMetrics(reg *obsv.Registry, labels ...obsv.Label) {
	st := s.stats
	reg.Counter("supervisor.incarnations", labels...).Add(int64(st.Incarnations))
	reg.Counter("supervisor.restarts", labels...).Add(int64(st.Restarts))
	reg.Counter("supervisor.state_lost", labels...).Add(int64(st.StateLost))
	reg.Counter("supervisor.conns_lost", labels...).Add(int64(st.ConnsLost))
	reg.Counter("supervisor.backoff_cycles_total", labels...).Add(st.BackoffCycles)
	var open int64
	if st.BreakerOpen {
		open = 1
	}
	reg.Counter("supervisor.breaker_open", labels...).Add(open)

	// Health-surface gauges: the current backoff delay and the breaker
	// window occupancy — the signals the fleet balancer routes on. Both
	// reconcile with Stats().LastBackoff / Stats().Window in the ladder's
	// 3-surface check.
	reg.Gauge("supervisor.backoff_cycles", labels...).Set(s.lastBackoff)
	reg.Gauge("supervisor.breaker_window", labels...).Set(int64(s.WindowOccupancy()))
}
