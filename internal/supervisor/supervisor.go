// Package supervisor is the microreboot rung of the recovery escalation
// ladder: process-level restart as a real subsystem instead of an ad-hoc
// loop in the benchmark harness.
//
// "Rebooting Microreboot" frames recovery as a ladder of progressively
// coarser supervised actions; this package owns the coarsest in-repo rung.
// When an incarnation of the supervised program dies (or hangs), the
// supervisor accounts the state and connections lost with it, waits out a
// deterministic exponential backoff in cost-model cycles, and boots a
// fresh incarnation with its own seed. A crash-loop breaker — more than
// MaxRestarts restarts inside a sliding WindowCycles window — makes the
// give-up point explicit: the supervisor opens the breaker, reports, and
// stops instead of silently under-counting abandoned work.
//
// Everything is cycle-domain: the campaign clock advances by the cycles
// each incarnation consumed plus the backoff, never by wall time, so a
// supervised campaign is byte-deterministic for a fixed seed.
package supervisor

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/obsv"
)

// Config parameterizes the supervision policy.
type Config struct {
	// MaxRestarts is the crash-loop breaker: more than this many restarts
	// within WindowCycles opens the breaker (default 8).
	MaxRestarts int

	// WindowCycles is the sliding window the breaker counts restarts in
	// (default 200M cycles).
	WindowCycles int64

	// BackoffBase is the first restart's backoff in cycles (default 50k);
	// each further restart doubles it (BackoffFactor) up to BackoffMax
	// (default 5M).
	BackoffBase   int64
	BackoffFactor int64
	BackoffMax    int64

	// Seed is the campaign seed; incarnation i runs with Seed+i so every
	// incarnation is deterministic but distinct.
	Seed int64
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 8
	}
	if c.WindowCycles == 0 {
		c.WindowCycles = 200_000_000
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 50_000
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = 2
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5_000_000
	}
	return c
}

// RunResult is one incarnation's outcome, reported by the run callback.
type RunResult struct {
	// Done means the supervised work finished: stop supervising. Checked
	// before Died, so a process that completes its work and then dies is
	// still a completed campaign.
	Done bool

	// Died means the incarnation crashed; false with Done false is
	// treated as a hang — both are restarted.
	Died bool

	// Cycles the incarnation consumed (advances the campaign clock).
	Cycles int64

	// ConnsLost is the number of connections that died with the process.
	ConnsLost int
}

// Reboot records one restart decision for the campaign timeline.
type Reboot struct {
	Incarnation   int   // incarnation that died
	AtCycles      int64 // campaign clock at the death
	BackoffCycles int64 // backoff charged before the next incarnation
}

// Stats is the supervisor's accounting. The published obsv metrics
// reconcile exactly with it.
type Stats struct {
	Incarnations  int
	Restarts      int
	StateLost     int // incarnation deaths/hangs: in-memory state discarded
	ConnsLost     int
	BackoffCycles int64
	BreakerOpen   bool
	ClockCycles   int64 // campaign clock: run cycles + backoff
	Reboots       []Reboot
}

// Supervisor runs a program through restarts under the configured policy.
type Supervisor struct {
	cfg    Config
	stats  Stats
	recent []int64 // campaign-clock stamps of restarts inside the window
	spans  obsv.SpanLog
}

// New returns a supervisor with the given policy.
func New(cfg Config) *Supervisor {
	return &Supervisor{cfg: cfg.withDefaults()}
}

// Clock returns the campaign clock: cycles consumed by every incarnation
// so far plus accumulated backoff. Run callbacks use it as the offset to
// rebase per-incarnation span timestamps onto the campaign timeline.
func (s *Supervisor) Clock() int64 { return s.stats.ClockCycles }

// Stats returns a snapshot of the accounting (Reboots deep-copied).
func (s *Supervisor) Stats() Stats {
	st := s.stats
	st.Reboots = append([]Reboot(nil), s.stats.Reboots...)
	return st
}

// Spans returns the supervisor's span events (reboot, breaker-open),
// timestamped on the campaign clock.
func (s *Supervisor) Spans() []obsv.SpanEvent { return s.spans.Events() }

// backoff returns the k-th restart's backoff (k is 1-based).
func (s *Supervisor) backoff(k int) int64 {
	b := s.cfg.BackoffBase
	for i := 1; i < k; i++ {
		b *= s.cfg.BackoffFactor
		if b >= s.cfg.BackoffMax {
			return s.cfg.BackoffMax
		}
	}
	if b > s.cfg.BackoffMax {
		return s.cfg.BackoffMax
	}
	return b
}

// Supervise runs incarnations of the program until one reports Done, the
// crash-loop breaker opens, or the callback errors. The callback receives
// the incarnation number and its seed (Config.Seed + incarnation). A
// breaker-open return is nil — giving up is a reported policy outcome,
// not an error; check Stats().BreakerOpen.
func (s *Supervisor) Supervise(run func(incarnation int, seed int64) (RunResult, error)) error {
	for inc := 0; ; inc++ {
		s.stats.Incarnations++
		res, err := run(inc, s.cfg.Seed+int64(inc))
		if err != nil {
			return err
		}
		s.stats.ClockCycles += res.Cycles
		if res.Done {
			return nil
		}

		// The incarnation died (or hung): its in-memory state and open
		// connections are gone.
		s.stats.StateLost++
		s.stats.ConnsLost += res.ConnsLost
		now := s.stats.ClockCycles

		// Crash-loop breaker: count restarts inside the sliding window.
		cut := 0
		for cut < len(s.recent) && s.recent[cut] < now-s.cfg.WindowCycles {
			cut++
		}
		s.recent = s.recent[cut:]
		if len(s.recent) >= s.cfg.MaxRestarts {
			s.stats.BreakerOpen = true
			s.spans.Append(obsv.SpanEvent{
				Cycles: now,
				Kind:   obsv.SpanBreakerOpen,
				Cause:  "crash-loop",
				Detail: fmt.Sprintf("restarts=%d window=%d", len(s.recent), s.cfg.WindowCycles),
			})
			return nil
		}
		s.recent = append(s.recent, now)

		s.stats.Restarts++
		backoff := s.backoff(s.stats.Restarts)
		s.stats.BackoffCycles += backoff
		s.stats.ClockCycles += backoff
		s.stats.Reboots = append(s.stats.Reboots, Reboot{
			Incarnation:   inc,
			AtCycles:      now,
			BackoffCycles: backoff,
		})
		s.spans.Append(obsv.SpanEvent{
			Cycles: now,
			Kind:   obsv.SpanReboot,
			Cause:  "incarnation died",
			Detail: fmt.Sprintf("incarnation=%d backoff=%d conns_lost=%d", inc, backoff, res.ConnsLost),
		})
	}
}

// PublishMetrics copies the supervisor's accounting into a metrics
// registry under the given labels. Collection-time only; the totals
// reconcile exactly with Stats().
func (s *Supervisor) PublishMetrics(reg *obsv.Registry, labels ...obsv.Label) {
	st := s.stats
	reg.Counter("supervisor.incarnations", labels...).Add(int64(st.Incarnations))
	reg.Counter("supervisor.restarts", labels...).Add(int64(st.Restarts))
	reg.Counter("supervisor.state_lost", labels...).Add(int64(st.StateLost))
	reg.Counter("supervisor.conns_lost", labels...).Add(int64(st.ConnsLost))
	reg.Counter("supervisor.backoff_cycles", labels...).Add(st.BackoffCycles)
	var open int64
	if st.BreakerOpen {
		open = 1
	}
	reg.Counter("supervisor.breaker_open", labels...).Add(open)
}
