package minic

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
)

// FuzzBackendEquivalence is the differential fuzz target for the bytecode
// backend (go test -fuzz=FuzzBackendEquivalence ./internal/minic): every
// corpus program that compiles is executed on the tree-walker and the
// bytecode backend in lockstep, one instruction per Run call, and the
// machines must agree on outcome, steps, cycles, stack shape and exit
// code after every single instruction. In normal test runs it exercises
// the seed corpus.
func FuzzBackendEquivalence(f *testing.F) {
	seeds := []string{
		"int main() { return 0; }",
		"int f(int n) { if (n < 2) { return n; } return f(n-1) + f(n-2); } int main() { return f(10); }",
		"int main() { int s = 0; for (int i = 0; i < 50; i++) { s = s + i; } return s; }",
		"int g = 0; int main() { for (int i = 0; i < 20; i++) { g = g + 3; } return g; }",
		`char msg[6] = "hello"; int main() { return strlen(msg); }`,
		"int main() { int *p = malloc(16); if (!p) { return -1; } p[0] = 7; p[1] = p[0] * 6; int r = p[1]; free(p); return r; }",
		"int main() { int a = 100; int b = 7; return a / b + a % b; }",
		"int main() { int i = 0; while (1) { i++; if (i > 1000) { break; } } return i; }",
		"struct s { int a; int b; }; int main() { struct s v; v.a = 3; v.b = 4; return v.a * v.b; }",
		"int main() { int x = 0; return 1 / x; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src, Config{})
		if err != nil || prog == nil || prog.Validate() != nil {
			t.Skip()
		}
		mt, err := interp.New(prog, libsim.New(mem.NewSpace()), nil)
		if err != nil {
			t.Skip()
		}
		mb, err := interp.New(prog.Clone(), libsim.New(mem.NewSpace()), nil)
		if err != nil {
			t.Skip()
		}
		if berr := interp.UseBytecode(mb); berr != nil {
			t.Fatalf("bytecode compile failed on valid program: %v", berr)
		}

		check := func(stage string) {
			if mt.Steps != mb.Steps || mt.Cycles != mb.Cycles {
				t.Fatalf("%s: steps/cycles diverged: tree %d/%d, bytecode %d/%d\nsrc: %s",
					stage, mt.Steps, mt.Cycles, mb.Steps, mb.Cycles, truncate(src))
			}
			if mt.Depth() != mb.Depth() || mt.CurrentFunc() != mb.CurrentFunc() {
				t.Fatalf("%s: stack diverged: tree %d@%q, bytecode %d@%q\nsrc: %s",
					stage, mt.Depth(), mt.CurrentFunc(), mb.Depth(), mb.CurrentFunc(), truncate(src))
			}
			if mt.Exited() != mb.Exited() || mt.ExitCode() != mb.ExitCode() {
				t.Fatalf("%s: exit diverged: tree %v/%d, bytecode %v/%d\nsrc: %s",
					stage, mt.Exited(), mt.ExitCode(), mb.Exited(), mb.ExitCode(), truncate(src))
			}
		}

		// Lockstep phase: single-instruction quanta so every fused-region
		// boundary is also a stop/resume point.
		const lockstepSteps = 3000
		done := false
		for i := 0; i < lockstepSteps && !done; i++ {
			ot := mt.Run(1)
			ob := mb.Run(1)
			if ot.Kind != ob.Kind || ot.Code != ob.Code {
				t.Fatalf("lockstep: outcomes diverged: tree %v/%d, bytecode %v/%d\nsrc: %s",
					ot.Kind, ot.Code, ob.Kind, ob.Code, truncate(src))
			}
			check("lockstep")
			done = ot.Kind != interp.OutStepLimit
		}
		// Tail phase: run out longer programs in big quanta (bounded — fuzz
		// inputs may loop forever).
		for i := 0; i < 50 && !done; i++ {
			ot := mt.Run(20_000)
			ob := mb.Run(20_000)
			if ot.Kind != ob.Kind || ot.Code != ob.Code {
				t.Fatalf("tail: outcomes diverged: tree %v/%d, bytecode %v/%d\nsrc: %s",
					ot.Kind, ot.Code, ob.Kind, ob.Code, truncate(src))
			}
			check("tail")
			done = ot.Kind != interp.OutStepLimit
		}
	})
}
