package minic

import (
	"encoding/binary"
	"fmt"

	"github.com/firestarter-go/firestarter/internal/ir"
)

// Config controls compilation.
type Config struct {
	// KnownLib, when non-nil, validates library call names: calls to
	// undeclared functions not accepted by KnownLib are compile errors.
	// Pass libsim.Known to catch typos in the example applications.
	KnownLib func(name string) bool
}

// Compile translates mini-C source into an IR program and validates it.
func Compile(src string, cfg Config) (*ir.Program, error) {
	p := newParser(src)
	f := p.parseFile()
	errs := append(p.lex.errs, p.errs...)
	if len(errs) > 0 {
		return nil, errs
	}
	c := &compiler{
		cfg:     cfg,
		prog:    ir.NewProgram(),
		structs: map[string]*structLayout{},
		funcs:   map[string]*funcDef{},
		globals: map[string]*Type{},
		strs:    map[string]string{},
	}
	c.compileFile(f)
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	if err := c.prog.Validate(); err != nil {
		return nil, fmt.Errorf("minic: generated invalid IR (compiler bug): %w", err)
	}
	return c.prog, nil
}

type fieldInfo struct {
	off int64
	typ *Type
}

type structLayout struct {
	size   int64
	fields map[string]fieldInfo
	order  []string
}

type compiler struct {
	cfg     Config
	prog    *ir.Program
	structs map[string]*structLayout
	funcs   map[string]*funcDef
	globals map[string]*Type
	strs    map[string]string // literal → global name
	errs    ErrorList

	// per-function state
	b      *ir.Builder
	fn     *funcDef
	scopes []map[string]*local
	loops  []loopCtx
}

type local struct {
	typ      *Type
	reg      int
	frameOff int64
	isFrame  bool
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

func (c *compiler) errorf(line int, format string, args ...any) {
	if len(c.errs) < 50 {
		c.errs = append(c.errs, &Error{Line: line, Msg: fmt.Sprintf(format, args...)})
	}
}

// sizeOf returns a type's in-memory size in bytes.
func (c *compiler) sizeOf(line int, t *Type) int64 {
	switch t.Kind {
	case KindInt, KindPtr:
		return 8
	case KindChar:
		return 1
	case KindVoid:
		return 0
	case KindArray:
		return c.sizeOf(line, t.Elem) * t.N
	case KindStruct:
		sl := c.structs[t.StructName]
		if sl == nil {
			c.errorf(line, "undefined struct %q", t.StructName)
			return 8
		}
		return sl.size
	default:
		return 8
	}
}

func (c *compiler) compileFile(f *file) {
	// Struct layouts first (definition order; forward references to
	// undefined structs by value are errors).
	for _, sd := range f.structs {
		if _, dup := c.structs[sd.name]; dup {
			c.errorf(sd.line, "struct %q redefined", sd.name)
			continue
		}
		sl := &structLayout{fields: map[string]fieldInfo{}}
		for _, fd := range sd.fields {
			if _, dup := sl.fields[fd.name]; dup {
				c.errorf(sd.line, "field %q duplicated in struct %q", fd.name, sd.name)
				continue
			}
			sl.fields[fd.name] = fieldInfo{off: sl.size, typ: fd.typ}
			sl.order = append(sl.order, fd.name)
			sl.size += c.sizeOf(sd.line, fd.typ)
		}
		if sl.size == 0 {
			sl.size = 8
		}
		c.structs[sd.name] = sl
	}

	// Globals.
	for _, g := range f.globals {
		if _, dup := c.globals[g.name]; dup {
			c.errorf(g.line, "global %q redefined", g.name)
			continue
		}
		if g.typ.Kind == KindStruct {
			c.errorf(g.line, "struct values are not supported; use a pointer")
			continue
		}
		size := c.sizeOf(g.line, g.typ)
		var data []byte
		switch init := g.init.(type) {
		case nil:
		case *intLit:
			data = encodeScalar(init.v, size)
		case *unaryExpr:
			if lit, ok := init.x.(*intLit); ok && init.op == "-" {
				data = encodeScalar(-lit.v, size)
			} else {
				c.errorf(g.line, "global initializer must be a constant")
			}
		case *strLit:
			if g.typ.Kind == KindArray && g.typ.Elem.Kind == KindChar {
				if int64(len(init.s))+1 > size {
					c.errorf(g.line, "string initializer longer than array")
				} else {
					data = append([]byte(init.s), 0)
				}
			} else {
				c.errorf(g.line, "string initializer requires a char array; pointer globals must be initialized in main")
			}
		default:
			c.errorf(g.line, "global initializer must be a constant")
		}
		c.prog.AddGlobal(g.name, size, data)
		c.globals[g.name] = g.typ
	}

	// Function signatures (so forward calls resolve).
	for _, fd := range f.funcs {
		if _, dup := c.funcs[fd.name]; dup {
			c.errorf(fd.line, "function %q redefined", fd.name)
			continue
		}
		for _, prm := range fd.params {
			if !prm.typ.isScalar() {
				c.errorf(fd.line, "parameter %q: only scalar parameters are supported", prm.name)
			}
		}
		c.funcs[fd.name] = fd
	}

	for _, fd := range f.funcs {
		c.compileFunc(fd)
	}

	if c.funcs["main"] == nil {
		c.errorf(1, "no main function defined")
	}
}

func encodeScalar(v, size int64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	if size > 8 {
		size = 8
	}
	return append([]byte(nil), buf[:size]...)
}

func (c *compiler) compileFunc(fd *funcDef) {
	c.b = ir.NewBuilder(fd.name, len(fd.params))
	c.fn = fd
	c.scopes = []map[string]*local{{}}
	c.loops = nil

	for i, prm := range fd.params {
		c.scopes[0][prm.name] = &local{typ: prm.typ, reg: i}
	}
	c.genBlock(fd.body)
	// Ensure the last emission path is terminated.
	if c.b.Cur.Terminator() == nil {
		if fd.ret.Kind == KindVoid {
			c.b.RetVoid()
		} else {
			z := c.b.Const(0)
			c.b.Ret(z)
		}
	}
	c.prog.AddFunc(c.b.F)
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, map[string]*local{}) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) lookup(name string) *local {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if l, ok := c.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (c *compiler) declare(line int, name string, l *local) {
	scope := c.scopes[len(c.scopes)-1]
	if _, dup := scope[name]; dup {
		c.errorf(line, "variable %q redeclared", name)
	}
	scope[name] = l
}

// --- statements ---------------------------------------------------------------

func (c *compiler) genBlock(b *blockStmt) {
	c.pushScope()
	for _, s := range b.stmts {
		c.genStmt(s)
	}
	c.popScope()
}

func (c *compiler) genStmt(s stmt) {
	switch s := s.(type) {
	case *blockStmt:
		c.genBlock(s)
	case *declStmt:
		c.genDecl(s)
	case *exprStmt:
		c.genExpr(s.e)
	case *ifStmt:
		c.genIf(s)
	case *whileStmt:
		c.genWhile(s)
	case *forStmt:
		c.genFor(s)
	case *breakStmt:
		if len(c.loops) == 0 {
			c.errorf(s.line, "break outside loop")
			return
		}
		c.b.Jmp(c.loops[len(c.loops)-1].breakTo)
		c.b.Block("after.break")
	case *continueStmt:
		if len(c.loops) == 0 {
			c.errorf(s.line, "continue outside loop")
			return
		}
		c.b.Jmp(c.loops[len(c.loops)-1].continueTo)
		c.b.Block("after.continue")
	case *returnStmt:
		if s.e == nil {
			if c.fn.ret.Kind != KindVoid {
				c.errorf(s.line, "missing return value in %q", c.fn.name)
			}
			c.b.RetVoid()
		} else {
			if c.fn.ret.Kind == KindVoid {
				c.errorf(s.line, "void function %q returns a value", c.fn.name)
			}
			r, _ := c.genExpr(s.e)
			c.b.Ret(r)
		}
		c.b.Block("after.return")
	case *assertStmt:
		cond, _ := c.genExpr(s.e)
		okBlk := c.b.F.NewBlock("assert.ok")
		failBlk := c.b.F.NewBlock("assert.fail")
		c.b.Br(cond, okBlk, failBlk)
		c.b.SetBlock(failBlk)
		c.b.Trap(ir.TrapAssert)
		c.b.SetBlock(okBlk)
	default:
		c.errorf(s.stmtLine(), "unsupported statement")
	}
}

func (c *compiler) genDecl(d *declStmt) {
	switch d.typ.Kind {
	case KindStruct:
		c.errorf(d.line, "struct values are not supported; use a pointer")
		return
	case KindVoid:
		c.errorf(d.line, "cannot declare void variable %q", d.name)
		return
	case KindArray:
		off := c.b.F.FrameSize
		size := c.sizeOf(d.line, d.typ)
		// Reserve by emitting a frame-address instruction the register
		// of which becomes the array's base (decayed pointer value).
		reg := c.b.FrameAddr(off, size)
		c.declare(d.line, d.name, &local{typ: d.typ, reg: reg, frameOff: off, isFrame: true})
		if d.init != nil {
			c.errorf(d.line, "array initializers are not supported")
		}
		return
	}
	reg := c.b.F.NewReg()
	c.declare(d.line, d.name, &local{typ: d.typ, reg: reg})
	if d.init != nil {
		v, _ := c.genExpr(d.init)
		c.b.Mov(reg, v)
	} else {
		c.b.ConstInto(reg, 0)
	}
}

func (c *compiler) genIf(s *ifStmt) {
	cond, _ := c.genExpr(s.cond)
	thenBlk := c.b.F.NewBlock("if.then")
	var elseBlk *ir.Block
	mergeBlk := c.b.F.NewBlock("if.end")
	if s.els != nil {
		elseBlk = c.b.F.NewBlock("if.else")
		c.b.Br(cond, thenBlk, elseBlk)
	} else {
		c.b.Br(cond, thenBlk, mergeBlk)
	}
	c.b.SetBlock(thenBlk)
	c.genBlock(s.then)
	if c.b.Cur.Terminator() == nil {
		c.b.Jmp(mergeBlk)
	}
	if s.els != nil {
		c.b.SetBlock(elseBlk)
		c.genStmt(s.els)
		if c.b.Cur.Terminator() == nil {
			c.b.Jmp(mergeBlk)
		}
	}
	c.b.SetBlock(mergeBlk)
}

func (c *compiler) genWhile(s *whileStmt) {
	condBlk := c.b.F.NewBlock("while.cond")
	bodyBlk := c.b.F.NewBlock("while.body")
	endBlk := c.b.F.NewBlock("while.end")
	c.b.Jmp(condBlk)
	c.b.SetBlock(condBlk)
	cond, _ := c.genExpr(s.cond)
	c.b.Br(cond, bodyBlk, endBlk)
	c.b.SetBlock(bodyBlk)
	c.loops = append(c.loops, loopCtx{breakTo: endBlk, continueTo: condBlk})
	c.genBlock(s.body)
	c.loops = c.loops[:len(c.loops)-1]
	if c.b.Cur.Terminator() == nil {
		c.b.Jmp(condBlk)
	}
	c.b.SetBlock(endBlk)
}

func (c *compiler) genFor(s *forStmt) {
	c.pushScope() // the init declaration scopes to the loop
	if s.init != nil {
		c.genStmt(s.init)
	}
	condBlk := c.b.F.NewBlock("for.cond")
	bodyBlk := c.b.F.NewBlock("for.body")
	postBlk := c.b.F.NewBlock("for.post")
	endBlk := c.b.F.NewBlock("for.end")
	c.b.Jmp(condBlk)
	c.b.SetBlock(condBlk)
	if s.cond != nil {
		cond, _ := c.genExpr(s.cond)
		c.b.Br(cond, bodyBlk, endBlk)
	} else {
		c.b.Jmp(bodyBlk)
	}
	c.b.SetBlock(bodyBlk)
	c.loops = append(c.loops, loopCtx{breakTo: endBlk, continueTo: postBlk})
	c.genBlock(s.body)
	c.loops = c.loops[:len(c.loops)-1]
	if c.b.Cur.Terminator() == nil {
		c.b.Jmp(postBlk)
	}
	c.b.SetBlock(postBlk)
	if s.post != nil {
		c.genExpr(s.post)
	}
	c.b.Jmp(condBlk)
	c.b.SetBlock(endBlk)
	c.popScope()
}

// --- lvalues -------------------------------------------------------------------

// lvalue describes an assignable location: either a virtual register or a
// memory address held in a register.
type lvalue struct {
	typ   *Type
	isReg bool
	reg   int // value register when isReg, address register otherwise
}

func (c *compiler) genLvalue(e expr) (lvalue, bool) {
	switch e := e.(type) {
	case *identExpr:
		if l := c.lookup(e.name); l != nil {
			if l.isFrame {
				c.errorf(e.line, "array %q is not assignable", e.name)
				return lvalue{typ: typeInt, isReg: true, reg: l.reg}, false
			}
			return lvalue{typ: l.typ, isReg: true, reg: l.reg}, true
		}
		if gt, ok := c.globals[e.name]; ok {
			if gt.Kind == KindArray {
				c.errorf(e.line, "array %q is not assignable", e.name)
				return lvalue{typ: typeInt, isReg: true, reg: 0}, false
			}
			addr := c.b.GlobalAddr(e.name)
			return lvalue{typ: gt, reg: addr}, true
		}
		c.errorf(e.line, "undefined variable %q", e.name)
		return lvalue{typ: typeInt, isReg: true, reg: c.b.Const(0)}, false
	case *unaryExpr:
		if e.op != "*" {
			break
		}
		v, t := c.genExpr(e.x)
		if t.Kind != KindPtr {
			c.errorf(e.line, "cannot dereference non-pointer type %s", t)
			return lvalue{typ: typeInt, reg: v}, false
		}
		return lvalue{typ: t.Elem, reg: v}, true
	case *indexExpr:
		base, bt := c.genExpr(e.base)
		var elem *Type
		switch bt.Kind {
		case KindPtr:
			elem = bt.Elem
		case KindArray:
			elem = bt.Elem
		default:
			c.errorf(e.line, "cannot index type %s", bt)
			return lvalue{typ: typeInt, reg: base}, false
		}
		idx, _ := c.genExpr(e.idx)
		size := c.sizeOf(e.line, elem)
		var off int
		if size == 1 {
			off = idx
		} else {
			sz := c.b.Const(size)
			off = c.b.Bin(ir.BinMul, idx, sz)
		}
		addr := c.b.Bin(ir.BinAdd, base, off)
		if elem.Kind == KindArray || elem.Kind == KindStruct {
			// Aggregate element: the "lvalue" is its address (decay).
			return lvalue{typ: elem, reg: addr}, true
		}
		return lvalue{typ: elem, reg: addr}, true
	case *fieldExpr:
		base, bt := c.genExpr(e.base)
		if bt.Kind != KindPtr || bt.Elem.Kind != KindStruct {
			c.errorf(e.line, "-> requires a struct pointer, have %s", bt)
			return lvalue{typ: typeInt, reg: base}, false
		}
		sl := c.structs[bt.Elem.StructName]
		if sl == nil {
			c.errorf(e.line, "undefined struct %q", bt.Elem.StructName)
			return lvalue{typ: typeInt, reg: base}, false
		}
		fi, ok := sl.fields[e.field]
		if !ok {
			c.errorf(e.line, "struct %q has no field %q", bt.Elem.StructName, e.field)
			return lvalue{typ: typeInt, reg: base}, false
		}
		var addr int
		if fi.off == 0 {
			addr = base
		} else {
			off := c.b.Const(fi.off)
			addr = c.b.Bin(ir.BinAdd, base, off)
		}
		return lvalue{typ: fi.typ, reg: addr}, true
	}
	c.errorf(e.exprLine(), "expression is not assignable")
	return lvalue{typ: typeInt, isReg: true, reg: c.b.Const(0)}, false
}

// loadLv reads an lvalue's current value into a register.
func (c *compiler) loadLv(lv lvalue) (int, *Type) {
	if lv.isReg {
		return lv.reg, lv.typ
	}
	switch lv.typ.Kind {
	case KindArray:
		// Array lvalue decays to its address.
		return lv.reg, ptrTo(lv.typ.Elem)
	case KindStruct:
		return lv.reg, ptrTo(lv.typ)
	}
	return c.b.Load(lv.reg, 0, lv.typ.width()), lv.typ
}

// storeLv writes a value into an lvalue.
func (c *compiler) storeLv(lv lvalue, val int) {
	if lv.isReg {
		c.b.Mov(lv.reg, val)
		return
	}
	c.b.Store(lv.reg, 0, val, lv.typ.width())
}

// --- expressions -----------------------------------------------------------------

func (c *compiler) genExpr(e expr) (int, *Type) {
	switch e := e.(type) {
	case *intLit:
		return c.b.Const(e.v), typeInt
	case *strLit:
		name := c.internString(e.s)
		return c.b.GlobalAddr(name), ptrTo(typeChar)
	case *identExpr:
		if l := c.lookup(e.name); l != nil {
			if l.isFrame {
				// Array decays to pointer; its base register was
				// computed at declaration.
				return l.reg, ptrTo(l.typ.Elem)
			}
			return l.reg, l.typ
		}
		if gt, ok := c.globals[e.name]; ok {
			addr := c.b.GlobalAddr(e.name)
			if gt.Kind == KindArray {
				return addr, ptrTo(gt.Elem)
			}
			return c.b.Load(addr, 0, gt.width()), gt
		}
		c.errorf(e.line, "undefined variable %q", e.name)
		return c.b.Const(0), typeInt
	case *sizeofExpr:
		return c.b.Const(c.sizeOf(e.line, e.typ)), typeInt
	case *unaryExpr:
		return c.genUnary(e)
	case *binaryExpr:
		return c.genBinary(e)
	case *assignExpr:
		return c.genAssign(e)
	case *callExpr:
		return c.genCall(e)
	case *indexExpr, *fieldExpr:
		lv, _ := c.genLvalue(e)
		return c.loadLv(lv)
	case *incDecExpr:
		lv, ok := c.genLvalue(e.lhs)
		if !ok {
			return c.b.Const(0), typeInt
		}
		old, t := c.loadLv(lv)
		step := int64(1)
		if t.Kind == KindPtr {
			step = c.sizeOf(e.line, t.Elem)
		}
		stepReg := c.b.Const(step)
		op := ir.BinAdd
		if e.op == "--" {
			op = ir.BinSub
		}
		nv := c.b.Bin(op, old, stepReg)
		c.storeLv(lv, nv)
		return nv, t
	}
	c.errorf(e.exprLine(), "unsupported expression")
	return c.b.Const(0), typeInt
}

func (c *compiler) genUnary(e *unaryExpr) (int, *Type) {
	switch e.op {
	case "-":
		v, _ := c.genExpr(e.x)
		return c.b.Neg(v), typeInt
	case "!":
		v, _ := c.genExpr(e.x)
		return c.b.Not(v), typeInt
	case "~":
		v, _ := c.genExpr(e.x)
		m1 := c.b.Const(-1)
		return c.b.Bin(ir.BinXor, v, m1), typeInt
	case "*":
		lv, _ := c.genLvalue(e)
		return c.loadLv(lv)
	case "&":
		lv, ok := c.genLvalue(e.x)
		if !ok {
			return c.b.Const(0), typeInt
		}
		if lv.isReg {
			c.errorf(e.line, "cannot take the address of a register variable")
			return c.b.Const(0), typeInt
		}
		return lv.reg, ptrTo(lv.typ)
	}
	c.errorf(e.line, "unsupported unary operator %q", e.op)
	return c.b.Const(0), typeInt
}

var binOpOf = map[string]ir.BinKind{
	"+": ir.BinAdd, "-": ir.BinSub, "*": ir.BinMul, "/": ir.BinDiv,
	"%": ir.BinRem, "&": ir.BinAnd, "|": ir.BinOr, "^": ir.BinXor,
	"<<": ir.BinShl, ">>": ir.BinShr, "==": ir.BinEq, "!=": ir.BinNe,
	"<": ir.BinLt, "<=": ir.BinLe, ">": ir.BinGt, ">=": ir.BinGe,
}

func (c *compiler) genBinary(e *binaryExpr) (int, *Type) {
	switch e.op {
	case "&&", "||":
		return c.genShortCircuit(e)
	}
	x, tx := c.genExpr(e.x)
	y, ty := c.genExpr(e.y)
	op := binOpOf[e.op]

	// Pointer arithmetic scaling.
	if e.op == "+" || e.op == "-" {
		switch {
		case tx.Kind == KindPtr && ty.Kind != KindPtr:
			size := c.sizeOf(e.line, tx.Elem)
			if size != 1 {
				sz := c.b.Const(size)
				y = c.b.Bin(ir.BinMul, y, sz)
			}
			return c.b.Bin(op, x, y), tx
		case ty.Kind == KindPtr && tx.Kind != KindPtr && e.op == "+":
			size := c.sizeOf(e.line, ty.Elem)
			if size != 1 {
				sz := c.b.Const(size)
				x = c.b.Bin(ir.BinMul, x, sz)
			}
			return c.b.Bin(op, x, y), ty
		case tx.Kind == KindPtr && ty.Kind == KindPtr && e.op == "-":
			diff := c.b.Bin(ir.BinSub, x, y)
			size := c.sizeOf(e.line, tx.Elem)
			if size != 1 {
				sz := c.b.Const(size)
				diff = c.b.Bin(ir.BinDiv, diff, sz)
			}
			return diff, typeInt
		}
	}
	return c.b.Bin(op, x, y), typeInt
}

func (c *compiler) genShortCircuit(e *binaryExpr) (int, *Type) {
	res := c.b.F.NewReg()
	evalY := c.b.F.NewBlock("sc.rhs")
	short := c.b.F.NewBlock("sc.short")
	done := c.b.F.NewBlock("sc.done")

	x, _ := c.genExpr(e.x)
	if e.op == "&&" {
		c.b.Br(x, evalY, short) // false → short-circuit 0
	} else {
		c.b.Br(x, short, evalY) // true → short-circuit 1
	}

	c.b.SetBlock(evalY)
	y, _ := c.genExpr(e.y)
	z := c.b.Const(0)
	norm := c.b.Bin(ir.BinNe, y, z)
	c.b.Mov(res, norm)
	c.b.Jmp(done)

	c.b.SetBlock(short)
	if e.op == "&&" {
		c.b.ConstInto(res, 0)
	} else {
		c.b.ConstInto(res, 1)
	}
	c.b.Jmp(done)

	c.b.SetBlock(done)
	return res, typeInt
}

func (c *compiler) genAssign(e *assignExpr) (int, *Type) {
	lv, ok := c.genLvalue(e.lhs)
	if !ok {
		c.genExpr(e.rhs)
		return c.b.Const(0), typeInt
	}
	if e.op == "=" {
		v, _ := c.genExpr(e.rhs)
		c.storeLv(lv, v)
		return v, lv.typ
	}
	// Compound assignment: load, apply, store.
	old, t := c.loadLv(lv)
	rhs, tr := c.genExpr(e.rhs)
	op := binOpOf[e.op[:len(e.op)-1]]
	if (e.op == "+=" || e.op == "-=") && t.Kind == KindPtr && tr.Kind != KindPtr {
		size := c.sizeOf(e.line, t.Elem)
		if size != 1 {
			sz := c.b.Const(size)
			rhs = c.b.Bin(ir.BinMul, rhs, sz)
		}
	}
	nv := c.b.Bin(op, old, rhs)
	c.storeLv(lv, nv)
	return nv, lv.typ
}

func (c *compiler) genCall(e *callExpr) (int, *Type) {
	args := make([]int, len(e.args))
	for i, a := range e.args {
		args[i], _ = c.genExpr(a)
	}
	if fd, ok := c.funcs[e.name]; ok {
		if len(args) != len(fd.params) {
			c.errorf(e.line, "call to %q with %d args, want %d", e.name, len(args), len(fd.params))
			return c.b.Const(0), typeInt
		}
		r := c.b.Call(e.name, args...)
		if fd.ret.Kind == KindVoid {
			return r, typeVoid
		}
		return r, fd.ret
	}
	// Library call.
	if c.cfg.KnownLib != nil && !c.cfg.KnownLib(e.name) {
		c.errorf(e.line, "call to undefined function %q (not a known library call)", e.name)
		return c.b.Const(0), typeInt
	}
	return c.b.Lib(e.name, args...), typeInt
}

func (c *compiler) internString(s string) string {
	if name, ok := c.strs[s]; ok {
		return name
	}
	name := fmt.Sprintf(".str%d", len(c.strs))
	c.prog.AddGlobal(name, int64(len(s))+1, append([]byte(s), 0))
	c.strs[s] = name
	return name
}
