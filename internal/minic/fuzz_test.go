package minic

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompileNeverPanics feeds the compiler adversarial inputs: mutated
// valid programs, truncations, and random token soup. Whatever the input,
// Compile must return (program, nil) or (nil, error) — never panic.
func TestCompileNeverPanics(t *testing.T) {
	seed := `
struct s { int a; char b[8]; struct s *next; };
int g = 5;
char msg[16] = "hello";
int f(int x, char *p) {
	if (x > 0 && p[0] != 0) { return f(x - 1, p + 1); }
	return g;
}
int main() {
	struct s *n = malloc(sizeof(struct s));
	if (!n) { return -1; }
	for (int i = 0; i < 8; i++) { n->b[i] = 'a' + i; }
	int r = f(3, msg) + strlen(msg);
	free(n);
	return r;
}`
	rng := rand.New(rand.NewSource(99))
	tokens := []string{
		"int", "char", "struct", "if", "while", "for", "return", "{", "}",
		"(", ")", "[", "]", ";", "*", "&", "->", "==", "=", "+", "-",
		"x", "main", "0", "42", `"str"`, "'c'", "sizeof", "NULL", "/*", "*/",
	}

	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Compile panicked on %q: %v", truncate(src), r)
			}
		}()
		prog, err := Compile(src, Config{})
		if prog == nil && err == nil {
			t.Fatalf("Compile(%q) returned neither program nor error", truncate(src))
		}
	}

	// Truncations of a valid program.
	for i := 0; i < len(seed); i += 17 {
		check(seed[:i])
	}
	// Byte mutations.
	for i := 0; i < 200; i++ {
		b := []byte(seed)
		for j := 0; j < 5; j++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		}
		check(string(b))
	}
	// Random token soup.
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		n := rng.Intn(60)
		for j := 0; j < n; j++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		check(sb.String())
	}
	// Deep nesting (parser recursion).
	check("int main() { return " + strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200) + "; }")
	check("int main() " + strings.Repeat("{ if (1) ", 100) + "return 0;" + strings.Repeat(" }", 101))
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}

// FuzzCompile is the native fuzz target (go test -fuzz=FuzzCompile
// ./internal/minic); in normal test runs it exercises the seed corpus.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int main() { return x; }",
		"struct s { int a; }; int main() { struct s *p = NULL; return p->a; }",
		`char g[4] = "abc"; int main() { return g[0]; }`,
		"int f(int n) { if (n < 2) { return n; } return f(n-1) + f(n-2); } int main() { return f(5); }",
		"int main() { for (int i = 0; i < 10; i++) { if (i == 3) { break; } } return 0; }",
		"int main() { /* unterminated",
		"int main() { \"unterminated",
		"int main() { int a = 1 ++--->> 2; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src, Config{})
		if prog == nil && err == nil {
			t.Fatal("Compile returned neither program nor error")
		}
		if prog != nil {
			if verr := prog.Validate(); verr != nil {
				t.Fatalf("Compile accepted %q but produced invalid IR: %v", truncate(src), verr)
			}
		}
	})
}
