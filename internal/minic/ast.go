package minic

// TypeKind enumerates mini-C types.
type TypeKind int

// Type kinds.
const (
	KindInt TypeKind = iota + 1
	KindChar
	KindVoid
	KindPtr
	KindArray
	KindStruct
)

// Type is a mini-C type. Types are compared structurally.
type Type struct {
	Kind       TypeKind
	Elem       *Type // for Ptr and Array
	N          int64 // for Array
	StructName string
}

var (
	typeInt  = &Type{Kind: KindInt}
	typeChar = &Type{Kind: KindChar}
	typeVoid = &Type{Kind: KindVoid}
)

func ptrTo(t *Type) *Type { return &Type{Kind: KindPtr, Elem: t} }

// isScalar reports whether values of this type fit a register.
func (t *Type) isScalar() bool {
	switch t.Kind {
	case KindInt, KindChar, KindPtr:
		return true
	}
	return false
}

// width returns the memory access width for scalar loads/stores.
func (t *Type) width() int {
	if t.Kind == KindChar {
		return 1
	}
	return 8
}

func (t *Type) String() string {
	switch t.Kind {
	case KindInt:
		return "int"
	case KindChar:
		return "char"
	case KindVoid:
		return "void"
	case KindPtr:
		return t.Elem.String() + "*"
	case KindArray:
		return t.Elem.String() + "[]"
	case KindStruct:
		return "struct " + t.StructName
	default:
		return "?"
	}
}

// --- expressions -----------------------------------------------------------

type expr interface{ exprLine() int }

type intLit struct {
	line int
	v    int64
}

type strLit struct {
	line int
	s    string
}

type identExpr struct {
	line int
	name string
}

type unaryExpr struct {
	line int
	op   string // - ! * & ~
	x    expr
}

type binaryExpr struct {
	line int
	op   string
	x, y expr
}

type assignExpr struct {
	line int
	op   string // = += -= *= /= %= &= |= ^= <<= >>=
	lhs  expr
	rhs  expr
}

type callExpr struct {
	line int
	name string
	args []expr
}

type indexExpr struct {
	line int
	base expr
	idx  expr
}

type fieldExpr struct {
	line  int
	base  expr
	field string
}

type sizeofExpr struct {
	line int
	typ  *Type
}

type incDecExpr struct {
	line int
	op   string // "++" or "--"
	lhs  expr
}

func (e *intLit) exprLine() int     { return e.line }
func (e *strLit) exprLine() int     { return e.line }
func (e *identExpr) exprLine() int  { return e.line }
func (e *unaryExpr) exprLine() int  { return e.line }
func (e *binaryExpr) exprLine() int { return e.line }
func (e *assignExpr) exprLine() int { return e.line }
func (e *callExpr) exprLine() int   { return e.line }
func (e *indexExpr) exprLine() int  { return e.line }
func (e *fieldExpr) exprLine() int  { return e.line }
func (e *sizeofExpr) exprLine() int { return e.line }
func (e *incDecExpr) exprLine() int { return e.line }

// --- statements --------------------------------------------------------------

type stmt interface{ stmtLine() int }

type declStmt struct {
	line int
	typ  *Type
	name string
	init expr // nil when absent
}

type exprStmt struct {
	line int
	e    expr
}

type ifStmt struct {
	line int
	cond expr
	then *blockStmt
	els  stmt // *blockStmt, *ifStmt or nil
}

type whileStmt struct {
	line int
	cond expr
	body *blockStmt
}

type forStmt struct {
	line int
	init stmt // declStmt or exprStmt or nil
	cond expr // nil = true
	post expr // nil
	body *blockStmt
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

type returnStmt struct {
	line int
	e    expr // nil for void
}

type blockStmt struct {
	line  int
	stmts []stmt
}

type assertStmt struct {
	line int
	e    expr
}

func (s *declStmt) stmtLine() int     { return s.line }
func (s *exprStmt) stmtLine() int     { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *blockStmt) stmtLine() int    { return s.line }
func (s *assertStmt) stmtLine() int   { return s.line }

// --- top level ---------------------------------------------------------------

type structField struct {
	typ  *Type
	name string
}

type structDef struct {
	line   int
	name   string
	fields []structField
}

type funcParam struct {
	typ  *Type
	name string
}

type funcDef struct {
	line   int
	ret    *Type
	name   string
	params []funcParam
	body   *blockStmt
}

type globalDef struct {
	line int
	typ  *Type
	name string
	init expr // constant int or string literal; nil for zero
}

type file struct {
	structs []*structDef
	globals []*globalDef
	funcs   []*funcDef
}
