package minic

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/ir"
)

// --- lexer ---------------------------------------------------------------------

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer(src)
	var toks []token
	for {
		tok := l.next()
		if tok.kind == tokEOF {
			break
		}
		toks = append(toks, tok)
		if len(toks) > 10000 {
			t.Fatal("lexer did not terminate")
		}
	}
	if len(l.errs) > 0 {
		t.Fatalf("lex errors: %v", l.errs)
	}
	return toks
}

func TestLexNumbers(t *testing.T) {
	toks := lexAll(t, "0 42 0x1f 0XFF 123456789")
	want := []int64{0, 42, 0x1f, 0xff, 123456789}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].kind != tokInt || toks[i].val != w {
			t.Errorf("token %d = %+v, want int %d", i, toks[i], w)
		}
	}
}

func TestLexCharLiterals(t *testing.T) {
	toks := lexAll(t, `'a' '\n' '\0' '\\' '\''`)
	want := []int64{'a', '\n', 0, '\\', '\''}
	for i, w := range want {
		if toks[i].kind != tokChar || toks[i].val != w {
			t.Errorf("token %d = %+v, want char %d", i, toks[i], w)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := lexAll(t, `"line\r\n" "tab\there" "quote\"q"`)
	want := []string{"line\r\n", "tab\there", `quote"q`}
	for i, w := range want {
		if toks[i].kind != tokString || toks[i].lit != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].lit, w)
		}
	}
}

func TestLexOperatorsGreedy(t *testing.T) {
	toks := lexAll(t, "a<<=b >>= -> ++ -- <= >= == != && || += -=")
	var ops []string
	for _, tok := range toks {
		if tok.kind == tokPunct {
			ops = append(ops, tok.lit)
		}
	}
	want := []string{"<<=", ">>=", "->", "++", "--", "<=", ">=", "==", "!=", "&&", "||", "+=", "-="}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, `
// line comment with * and / inside
x /* block
   spanning lines */ y
`)
	if len(toks) != 2 || toks[0].lit != "x" || toks[1].lit != "y" {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[1].line != 4 {
		t.Errorf("y line = %d, want 4 (block comment newlines counted)", toks[1].line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	l := newLexer("x /* never closed")
	for l.next().kind != tokEOF {
	}
	if len(l.errs) == 0 {
		t.Fatal("unterminated block comment not reported")
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := lexAll(t, "int integer if iffy while whiles")
	kinds := []tokKind{tokKeyword, tokIdent, tokKeyword, tokIdent, tokKeyword, tokIdent}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d (%s) kind = %d, want %d", i, toks[i].lit, toks[i].kind, k)
		}
	}
}

// --- parser diagnostics -----------------------------------------------------------

func compileErr(t *testing.T, src string) string {
	t.Helper()
	_, err := Compile(src, Config{})
	if err == nil {
		t.Fatalf("Compile succeeded for %q", src)
	}
	return err.Error()
}

func TestParserReportsLineNumbers(t *testing.T) {
	msg := compileErr(t, "int main() {\n  int x = 1;\n  return y;\n}")
	if !strings.Contains(msg, "line 3") {
		t.Errorf("error %q missing line number", msg)
	}
}

func TestParserErrorRecovery(t *testing.T) {
	// Multiple independent errors must all surface.
	msg := compileErr(t, `
int main() {
	return a;
}
int other() {
	return b;
}`)
	if !strings.Contains(msg, `"a"`) || !strings.Contains(msg, `"b"`) {
		t.Errorf("error %q should mention both undefined variables", msg)
	}
}

func TestParserRejectsBadSyntax(t *testing.T) {
	cases := []string{
		"int main( { return 0; }",
		"int main() { if return; }",
		"int main() { int [5] x; }",
		"struct { int x; };",
		"int main() { return 1 + ; }",
		"int main() { for (;;;;) {} }",
	}
	for _, src := range cases {
		if _, err := Compile(src, Config{}); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestParserRejectsSemanticErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"struct s { int x; }; struct s g; int main() { return 0; }", "struct values"},
		{"int main() { continue; }", "continue outside loop"},
		{"struct s { int x; int x; }; int main() { return 0; }", "duplicated"},
		{"int f() { return 0; } int f() { return 1; } int main() { return 0; }", "redefined"},
		{"int g; int g; int main() { return 0; }", "redefined"},
		{"int main() { int v; return v[0]; }", "cannot index"},
		{"struct s { int x; }; int main() { struct s *p = NULL; return p->y; }", "no field"},
		{"int main() { int x; return &x == 0; }", "address of a register variable"},
		{"void v() { } int main() { int x = v(); return x; }", ""},
		{"int x[abc]; int main() { return 0; }", "integer literal"},
		{"int main() { char c = sizeof(struct nope); return c; }", "undefined struct"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src, Config{})
		if tc.want == "" {
			continue // documented-as-accepted oddity
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%q) err = %v, want contains %q", tc.src, err, tc.want)
		}
	}
}

func TestGlobalInitializerRules(t *testing.T) {
	if _, err := Compile(`char msg[4] = "toolong"; int main() { return 0; }`, Config{}); err == nil ||
		!strings.Contains(err.Error(), "longer than array") {
		t.Errorf("oversized string initializer: %v", err)
	}
	if _, err := Compile(`char *p = "x"; int main() { return 0; }`, Config{}); err == nil ||
		!strings.Contains(err.Error(), "initialized in main") {
		t.Errorf("pointer global initializer: %v", err)
	}
	if _, err := Compile(`int g = 1 + 2; int main() { return g; }`, Config{}); err == nil ||
		!strings.Contains(err.Error(), "constant") {
		t.Errorf("non-constant global initializer: %v", err)
	}
}

// --- codegen structure --------------------------------------------------------------

func TestSizeofLayouts(t *testing.T) {
	prog, err := Compile(`
struct inner { char tag; int v; };
struct outer {
	int a;
	char name[10];
	struct inner in;
	char *p;
};
int sz_inner;
int sz_outer;
int main() {
	sz_inner = sizeof(struct inner);
	sz_outer = sizeof(struct outer);
	return sizeof(int) * 1000 + sizeof(char) * 100 + sizeof(int*);
}`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// We can read the constants out of the generated IR.
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// sizeof(int)=8, char=1, ptr=8: return 8*1000+1*100+8 = 8108.
	found := false
	for _, b := range prog.Funcs["main"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst && in.Imm == 9 { // struct inner = 1+8
				found = true
			}
		}
	}
	if !found {
		t.Error("sizeof(struct inner) constant 9 not emitted (packing changed?)")
	}
}

func TestStringDeduplication(t *testing.T) {
	prog, err := Compile(`
int main() {
	puts("same");
	puts("same");
	puts("different");
	return 0;
}`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	strGlobals := 0
	for _, g := range prog.Globals {
		if strings.HasPrefix(g.Name, ".str") {
			strGlobals++
		}
	}
	if strGlobals != 2 {
		t.Errorf("string globals = %d, want 2 (deduplicated)", strGlobals)
	}
}

func TestLibCallsEmittedForUndeclared(t *testing.T) {
	prog, err := Compile(`
int helper(int x) { return x; }
int main() {
	helper(1);
	socket();
	return 0;
}`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var calls, libs int
	for _, b := range prog.Funcs["main"].Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCall:
				calls++
			case ir.OpLib:
				libs++
			}
		}
	}
	if calls != 1 || libs != 1 {
		t.Errorf("calls/libs = %d/%d, want 1/1", calls, libs)
	}
}

func TestKnownLibGateRejects(t *testing.T) {
	known := func(n string) bool { return n == "socket" }
	if _, err := Compile(`int main() { socket(); return 0; }`, Config{KnownLib: known}); err != nil {
		t.Errorf("known lib rejected: %v", err)
	}
	if _, err := Compile(`int main() { sokcet(); return 0; }`, Config{KnownLib: known}); err == nil {
		t.Error("typo'd lib call accepted")
	}
}

func TestEveryBlockTerminated(t *testing.T) {
	// Tortured control flow must still produce valid IR.
	prog, err := Compile(`
int f(int n) {
	for (int i = 0; i < n; i++) {
		if (i == 3) { continue; }
		if (i == 5) { break; }
		while (n > 100) {
			n--;
			if (n == 150) { return n; }
		}
	}
	if (n > 0) { return 1; } else if (n < 0) { return -1; }
	return 0;
}
int main() { return f(10); }`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Terminator() == nil {
				t.Errorf("%s.b%d unterminated", f.Name, b.ID)
			}
		}
	}
}

func TestFrameSizeAccountsAllArrays(t *testing.T) {
	prog, err := Compile(`
int main() {
	char a[100];
	int b[10];
	char c[3];
	a[0] = 1; b[0] = 2; c[0] = 3;
	return 0;
}`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Funcs["main"].FrameSize; got != 100+80+3 {
		t.Errorf("FrameSize = %d, want 183", got)
	}
}

func TestDumpRoundTripsThroughValidate(t *testing.T) {
	// A fairly complete program: compile, validate, dump (smoke test that
	// Dump handles every construct the frontend emits).
	prog, err := Compile(`
struct node { int v; struct node *next; };
int sum(struct node *n) {
	int s = 0;
	while (n) {
		s += n->v;
		n = n->next;
	}
	return s;
}
int main() {
	struct node *a = malloc(sizeof(struct node));
	if (!a) { return -1; }
	a->v = 7;
	a->next = NULL;
	int s = sum(a);
	free(a);
	return s;
}`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Dump()
	for _, want := range []string{"func main", "func sum", "lib malloc", "lib free"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}
