package minic

import "fmt"

type parser struct {
	lex  *lexer
	tok  token
	peek *token
	errs ErrorList

	structNames map[string]bool
}

func newParser(src string) *parser {
	p := &parser{lex: newLexer(src), structNames: map[string]bool{}}
	p.tok = p.lex.next()
	return p
}

func (p *parser) errorf(line int, format string, args ...any) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, &Error{Line: line, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) next() {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return
	}
	p.tok = p.lex.next()
}

func (p *parser) peekTok() token {
	if p.peek == nil {
		t := p.lex.next()
		p.peek = &t
	}
	return *p.peek
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.lit == s
}

func (p *parser) isKeyword(s string) bool {
	return p.tok.kind == tokKeyword && p.tok.lit == s
}

func (p *parser) expect(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.next()
		return true
	}
	p.errorf(p.tok.line, "expected %q, found %s", s, p.tok)
	return false
}

// sync skips tokens until a likely statement boundary, for error recovery.
func (p *parser) sync() {
	for p.tok.kind != tokEOF && !p.isPunct(";") && !p.isPunct("}") {
		p.next()
	}
	if p.isPunct(";") {
		p.next()
	}
}

// atType reports whether the current token starts a type.
func (p *parser) atType() bool {
	return p.isKeyword("int") || p.isKeyword("char") || p.isKeyword("void") ||
		p.isKeyword("struct")
}

// parseType parses a base type and any pointer suffixes.
func (p *parser) parseType() *Type {
	var t *Type
	switch {
	case p.isKeyword("int"):
		t = typeInt
		p.next()
	case p.isKeyword("char"):
		t = typeChar
		p.next()
	case p.isKeyword("void"):
		t = typeVoid
		p.next()
	case p.isKeyword("struct"):
		p.next()
		if p.tok.kind != tokIdent {
			p.errorf(p.tok.line, "expected struct name, found %s", p.tok)
			return typeInt
		}
		name := p.tok.lit
		p.next()
		t = &Type{Kind: KindStruct, StructName: name}
	default:
		p.errorf(p.tok.line, "expected type, found %s", p.tok)
		return typeInt
	}
	for p.isPunct("*") {
		t = ptrTo(t)
		p.next()
	}
	return t
}

// parseFile parses a whole translation unit.
func (p *parser) parseFile() *file {
	f := &file{}
	for p.tok.kind != tokEOF {
		switch {
		case p.isKeyword("struct") && p.peekIsStructDef():
			if sd := p.parseStructDef(); sd != nil {
				f.structs = append(f.structs, sd)
				p.structNames[sd.name] = true
			}
		case p.atType():
			p.parseTopDecl(f)
		default:
			p.errorf(p.tok.line, "expected declaration, found %s", p.tok)
			p.next()
		}
	}
	return f
}

// peekIsStructDef distinguishes `struct s { ... };` from `struct s *v;`.
func (p *parser) peekIsStructDef() bool {
	// current token is "struct"; we need the token after the name.
	// Use the single-token lookahead: if the name is followed by "{"
	// it is a definition. We can only peek one token, so look at the
	// name first.
	if p.peekTok().kind != tokIdent {
		return false
	}
	// Temporarily cannot double-peek; rely on structNames: a definition
	// introduces a new name or redefines; a use of an unknown struct
	// name before definition is an error anyway. Heuristic: treat as a
	// definition if the struct name has not been declared yet.
	return !p.structNames[p.peekTok().lit]
}

func (p *parser) parseStructDef() *structDef {
	line := p.tok.line
	p.expect("struct")
	if p.tok.kind != tokIdent {
		p.errorf(p.tok.line, "expected struct name")
		p.sync()
		return nil
	}
	sd := &structDef{line: line, name: p.tok.lit}
	p.next()
	if !p.expect("{") {
		p.sync()
		return nil
	}
	for !p.isPunct("}") && p.tok.kind != tokEOF {
		ft := p.parseType()
		if p.tok.kind != tokIdent {
			p.errorf(p.tok.line, "expected field name, found %s", p.tok)
			p.sync()
			continue
		}
		name := p.tok.lit
		p.next()
		if p.isPunct("[") {
			p.next()
			if p.tok.kind != tokInt {
				p.errorf(p.tok.line, "array size must be an integer literal")
			} else {
				ft = &Type{Kind: KindArray, Elem: ft, N: p.tok.val}
				p.next()
			}
			p.expect("]")
		}
		sd.fields = append(sd.fields, structField{typ: ft, name: name})
		p.expect(";")
	}
	p.expect("}")
	p.expect(";")
	return sd
}

// parseTopDecl parses a global variable or function definition.
func (p *parser) parseTopDecl(f *file) {
	line := p.tok.line
	typ := p.parseType()
	if p.tok.kind != tokIdent {
		p.errorf(p.tok.line, "expected name, found %s", p.tok)
		p.sync()
		return
	}
	name := p.tok.lit
	p.next()

	if p.isPunct("(") {
		fd := &funcDef{line: line, ret: typ, name: name}
		p.next()
		for !p.isPunct(")") && p.tok.kind != tokEOF {
			pt := p.parseType()
			if p.tok.kind != tokIdent {
				p.errorf(p.tok.line, "expected parameter name, found %s", p.tok)
				break
			}
			fd.params = append(fd.params, funcParam{typ: pt, name: p.tok.lit})
			p.next()
			if p.isPunct(",") {
				p.next()
			}
		}
		p.expect(")")
		fd.body = p.parseBlock()
		f.funcs = append(f.funcs, fd)
		return
	}

	// Global variable.
	g := &globalDef{line: line, typ: typ, name: name}
	if p.isPunct("[") {
		p.next()
		if p.tok.kind != tokInt {
			p.errorf(p.tok.line, "array size must be an integer literal")
		} else {
			g.typ = &Type{Kind: KindArray, Elem: typ, N: p.tok.val}
			p.next()
		}
		p.expect("]")
	}
	if p.isPunct("=") {
		p.next()
		g.init = p.parseExpr()
	}
	p.expect(";")
	f.globals = append(f.globals, g)
}

func (p *parser) parseBlock() *blockStmt {
	b := &blockStmt{line: p.tok.line}
	if !p.expect("{") {
		p.sync()
		return b
	}
	for !p.isPunct("}") && p.tok.kind != tokEOF {
		b.stmts = append(b.stmts, p.parseStmt())
	}
	p.expect("}")
	return b
}

func (p *parser) parseStmt() stmt {
	line := p.tok.line
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.atType():
		return p.parseDecl()
	case p.isKeyword("if"):
		return p.parseIf()
	case p.isKeyword("while"):
		p.next()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		return &whileStmt{line: line, cond: cond, body: p.blockOrSingle()}
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("break"):
		p.next()
		p.expect(";")
		return &breakStmt{line: line}
	case p.isKeyword("continue"):
		p.next()
		p.expect(";")
		return &continueStmt{line: line}
	case p.isKeyword("return"):
		p.next()
		var e expr
		if !p.isPunct(";") {
			e = p.parseExpr()
		}
		p.expect(";")
		return &returnStmt{line: line, e: e}
	case p.isKeyword("assert"):
		p.next()
		p.expect("(")
		e := p.parseExpr()
		p.expect(")")
		p.expect(";")
		return &assertStmt{line: line, e: e}
	case p.isPunct(";"):
		p.next()
		return &blockStmt{line: line}
	default:
		e := p.parseExpr()
		p.expect(";")
		return &exprStmt{line: line, e: e}
	}
}

func (p *parser) blockOrSingle() *blockStmt {
	if p.isPunct("{") {
		return p.parseBlock()
	}
	s := p.parseStmt()
	return &blockStmt{line: s.stmtLine(), stmts: []stmt{s}}
}

func (p *parser) parseDecl() stmt {
	line := p.tok.line
	typ := p.parseType()
	if p.tok.kind != tokIdent {
		p.errorf(p.tok.line, "expected variable name, found %s", p.tok)
		p.sync()
		return &blockStmt{line: line}
	}
	name := p.tok.lit
	p.next()
	if p.isPunct("[") {
		p.next()
		if p.tok.kind != tokInt {
			p.errorf(p.tok.line, "array size must be an integer literal")
		} else {
			typ = &Type{Kind: KindArray, Elem: typ, N: p.tok.val}
			p.next()
		}
		p.expect("]")
	}
	d := &declStmt{line: line, typ: typ, name: name}
	if p.isPunct("=") {
		p.next()
		d.init = p.parseExpr()
	}
	p.expect(";")
	return d
}

func (p *parser) parseIf() stmt {
	line := p.tok.line
	p.expect("if")
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	then := p.blockOrSingle()
	var els stmt
	if p.isKeyword("else") {
		p.next()
		if p.isKeyword("if") {
			els = p.parseIf()
		} else {
			els = p.blockOrSingle()
		}
	}
	return &ifStmt{line: line, cond: cond, then: then, els: els}
}

func (p *parser) parseFor() stmt {
	line := p.tok.line
	p.expect("for")
	p.expect("(")
	f := &forStmt{line: line}
	if !p.isPunct(";") {
		if p.atType() {
			f.init = p.parseDecl() // consumes the ';'
		} else {
			f.init = &exprStmt{line: p.tok.line, e: p.parseExpr()}
			p.expect(";")
		}
	} else {
		p.next()
	}
	if !p.isPunct(";") {
		f.cond = p.parseExpr()
	}
	p.expect(";")
	if !p.isPunct(")") {
		f.post = p.parseExpr()
	}
	p.expect(")")
	f.body = p.blockOrSingle()
	return f
}

// --- expressions (precedence climbing) ---------------------------------------

var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

// parseExpr parses an assignment expression (right-associative).
func (p *parser) parseExpr() expr {
	lhs := p.parseBinary(1)
	if p.tok.kind == tokPunct && assignOps[p.tok.lit] {
		op := p.tok.lit
		line := p.tok.line
		p.next()
		rhs := p.parseExpr()
		return &assignExpr{line: line, op: op, lhs: lhs, rhs: rhs}
	}
	return lhs
}

func (p *parser) parseBinary(minPrec int) expr {
	lhs := p.parseUnary()
	for {
		if p.tok.kind != tokPunct {
			return lhs
		}
		prec, ok := binPrec[p.tok.lit]
		if !ok || prec < minPrec {
			return lhs
		}
		op := p.tok.lit
		line := p.tok.line
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &binaryExpr{line: line, op: op, x: lhs, y: rhs}
	}
}

func (p *parser) parseUnary() expr {
	line := p.tok.line
	if p.tok.kind == tokPunct {
		switch p.tok.lit {
		case "-", "!", "*", "&", "~":
			op := p.tok.lit
			p.next()
			return &unaryExpr{line: line, op: op, x: p.parseUnary()}
		}
	}
	if p.isKeyword("sizeof") {
		p.next()
		p.expect("(")
		t := p.parseType()
		p.expect(")")
		return &sizeofExpr{line: line, typ: t}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() expr {
	e := p.parsePrimary()
	for {
		line := p.tok.line
		switch {
		case p.isPunct("["):
			p.next()
			idx := p.parseExpr()
			p.expect("]")
			e = &indexExpr{line: line, base: e, idx: idx}
		case p.isPunct("->"):
			p.next()
			if p.tok.kind != tokIdent {
				p.errorf(p.tok.line, "expected field name after ->")
				return e
			}
			e = &fieldExpr{line: line, base: e, field: p.tok.lit}
			p.next()
		case p.isPunct("++"), p.isPunct("--"):
			op := p.tok.lit
			p.next()
			e = &incDecExpr{line: line, op: op, lhs: e}
		default:
			return e
		}
	}
}

func (p *parser) parsePrimary() expr {
	line := p.tok.line
	switch p.tok.kind {
	case tokInt, tokChar:
		v := p.tok.val
		p.next()
		return &intLit{line: line, v: v}
	case tokString:
		s := p.tok.lit
		p.next()
		return &strLit{line: line, s: s}
	case tokIdent:
		name := p.tok.lit
		p.next()
		if p.isPunct("(") {
			p.next()
			c := &callExpr{line: line, name: name}
			for !p.isPunct(")") && p.tok.kind != tokEOF {
				c.args = append(c.args, p.parseExpr())
				if p.isPunct(",") {
					p.next()
				}
			}
			p.expect(")")
			return c
		}
		return &identExpr{line: line, name: name}
	case tokKeyword:
		if p.tok.lit == "NULL" {
			p.next()
			return &intLit{line: line, v: 0}
		}
	case tokPunct:
		if p.tok.lit == "(" {
			p.next()
			e := p.parseExpr()
			p.expect(")")
			return e
		}
	}
	p.errorf(line, "expected expression, found %s", p.tok)
	p.next()
	return &intLit{line: line, v: 0}
}
