// Package minic implements the miniature C-like language the example
// servers are written in, compiled to the IR of package ir.
//
// The language is the subset of C the paper's target applications need to
// be expressed faithfully:
//
//	int, char, void, pointers, fixed-size arrays, structs
//	globals, string literals, sizeof, NULL
//	if/else, while, for, break, continue, return, assert
//	assignment (including the C idiom `if ((rc = call()) == -1)`),
//	short-circuit && and ||, pointer arithmetic, a[i], p->f, i++
//
// Calls to undeclared functions compile to library calls (ir.OpLib) — the
// seams FIRestarter instruments. Calls to functions defined in the same
// program compile to direct calls.
package minic

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokInt
	tokChar
	tokString
	tokPunct // operators and punctuation, the text is in lit
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "struct": true,
	"if": true, "else": true, "while": true, "for": true,
	"break": true, "continue": true, "return": true,
	"sizeof": true, "assert": true, "NULL": true,
}

type token struct {
	kind tokKind
	lit  string
	val  int64 // for tokInt / tokChar
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokInt:
		return fmt.Sprintf("integer %d", t.val)
	case tokString:
		return fmt.Sprintf("string %q", t.lit)
	default:
		return fmt.Sprintf("%q", t.lit)
	}
}

// Error is a compilation diagnostic with a source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// ErrorList aggregates diagnostics.
type ErrorList []*Error

// Error implements error.
func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, 0, len(l))
	for i, e := range l {
		if i == 10 {
			msgs = append(msgs, fmt.Sprintf("... and %d more", len(l)-10))
			break
		}
		msgs = append(msgs, e.Error())
	}
	return "minic: " + strings.Join(msgs, "; ")
}

// multi-character operators, longest first so the lexer is greedy.
var operators = []string{
	"<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", ".",
}

type lexer struct {
	src  string
	pos  int
	line int
	errs ErrorList
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (l *lexer) errorf(format string, args ...any) {
	l.errs = append(l.errs, &Error{Line: l.line, Msg: fmt.Sprintf(format, args...)})
}

func (l *lexer) next() token {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		if keywords[word] {
			return token{kind: tokKeyword, lit: word, line: l.line}
		}
		return token{kind: tokIdent, lit: word, line: l.line}
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '\'':
		return l.lexChar()
	case c == '"':
		return l.lexString()
	}
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			return token{kind: tokPunct, lit: op, line: l.line}
		}
	}
	l.errorf("unexpected character %q", c)
	l.pos++
	return l.next()
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.errorf("unterminated block comment")
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() token {
	start := l.pos
	base := int64(10)
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		base = 16
		l.pos += 2
	}
	var v int64
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			goto done
		}
		v = v*base + d
		l.pos++
	}
done:
	return token{kind: tokInt, lit: l.src[start:l.pos], val: v, line: l.line}
}

func (l *lexer) lexChar() token {
	l.pos++ // opening quote
	if l.pos >= len(l.src) {
		l.errorf("unterminated character literal")
		return token{kind: tokChar, line: l.line}
	}
	var v int64
	if l.src[l.pos] == '\\' {
		l.pos++
		if l.pos >= len(l.src) {
			l.errorf("unterminated character literal")
			return token{kind: tokChar, line: l.line}
		}
		v = int64(unescape(l.src[l.pos]))
		l.pos++
	} else {
		v = int64(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		l.errorf("unterminated character literal")
	} else {
		l.pos++
	}
	return token{kind: tokChar, val: v, line: l.line}
}

func (l *lexer) lexString() token {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		c := l.src[l.pos]
		if c == '\n' {
			break
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			sb.WriteByte(unescape(l.src[l.pos+1]))
			l.pos += 2
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '"' {
		l.errorf("unterminated string literal")
	} else {
		l.pos++
	}
	return token{kind: tokString, lit: sb.String(), line: l.line}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	default:
		return c
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
