package workload

import (
	"reflect"
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
)

// newEchoDriver compiles the line-echo server and wraps it in a driver.
func newEchoDriver(t *testing.T) *Driver {
	t.Helper()
	prog, err := minic.Compile(echoSrc, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Driver{OS: o, M: m, Port: 9000, Gen: &echoGen{}, Seed: 1}
}

// checkOpenIdentity asserts the open-loop conservation law: every offered
// arrival reaches exactly one terminal.
func checkOpenIdentity(t *testing.T, res OpenResult) {
	t.Helper()
	terminals := res.Completed + res.BadResp + res.Shed + res.ConnLost +
		res.Outstanding + res.Abandoned
	if terminals != res.Offered {
		t.Errorf("terminals %d != offered %d (%+v)", terminals, res.Offered, res.Result)
	}
}

func TestOpenLoopAgainstEchoServer(t *testing.T) {
	d := newEchoDriver(t)
	res := d.RunOpen(OpenConfig{Total: 60, Clients: 16, RatePerMcycle: 200})
	if res.ServerDied || res.Stalled {
		t.Fatalf("result = %+v", res.Result)
	}
	if res.Offered != 60 {
		t.Fatalf("offered = %d, want 60", res.Offered)
	}
	if res.Completed != 60 || res.BadResp != 0 {
		t.Fatalf("completed %d bad %d, want 60/0", res.Completed, res.BadResp)
	}
	if res.Wall <= 0 || res.Cycles <= 0 {
		t.Errorf("no clock accounting: wall=%d cycles=%d", res.Wall, res.Cycles)
	}
	checkOpenIdentity(t, res)
}

// TestOpenLoopQuietPeriodNotAStall is the second regression case for the
// stall detector's round counting (the first is the compute burst in
// workload_test.go): an open-loop run whose arrival gaps dwarf the
// blocked-round limit spends many consecutive rounds with nothing to do
// — the server healthy and blocked, the next arrival far in the future.
// A round-counting detector declares that quiet period a stall; the
// driver must instead fast-forward the virtual clock to the next arrival
// and finish every request un-stalled.
func TestOpenLoopQuietPeriodNotAStall(t *testing.T) {
	d := newEchoDriver(t)
	// Mean gap 100M cycles — twice the whole DefaultStallCycles budget
	// per arrival, and far beyond anything stallRounds-many blocked
	// rounds would survive if quiet periods were charged as idle.
	res := d.RunOpen(OpenConfig{Total: 6, Clients: 4, RatePerMcycle: 0.01})
	if res.Stalled {
		t.Fatalf("quiet period misdetected as stall: %+v", res.Result)
	}
	if res.ServerDied || res.Completed != 6 {
		t.Fatalf("result = %+v, want 6 clean completions", res.Result)
	}
	if res.Shed != 0 {
		t.Errorf("idle-load run shed %d requests", res.Shed)
	}
	checkOpenIdentity(t, res)
}

// TestOpenLoopDeterministic runs the same configuration twice on fresh
// servers: every counter and both clocks must match exactly, for every
// arrival shape.
func TestOpenLoopDeterministic(t *testing.T) {
	for _, shape := range []ArrivalShape{ShapePoisson, ShapeBursty, ShapeDiurnal} {
		cfg := OpenConfig{
			Shape: shape, Total: 80, Clients: 24, RatePerMcycle: 300,
			MaxConns: 8, PipelineDepth: 2, ChurnEvery: 7,
			SlowEvery: 3, SlowBytes: 2, FragmentEvery: 5, FragSize: 2,
		}
		a := newEchoDriver(t).RunOpen(cfg)
		b := newEchoDriver(t).RunOpen(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeat runs diverge:\n a=%+v\n b=%+v", shape, a, b)
		}
		if a.Offered != 80 {
			t.Errorf("%s: offered = %d, want 80", shape, a.Offered)
		}
		checkOpenIdentity(t, a)
	}
}

// slowFake is a Go-side Server that answers at most one request per
// slice, each slice costing a fat tranche of cycles — a fixed service
// rate the arrival schedule can outrun.
type slowFake struct {
	conns []*libsim.Conn
	clock int64
	bufs  map[*libsim.Conn][]byte
}

func (s *slowFake) Connect(port int64) *libsim.Conn {
	c := libsim.NewConn()
	s.conns = append(s.conns, c)
	return c
}

func (s *slowFake) Slice(budget int64) interp.Outcome {
	s.clock += 20_000
	if s.bufs == nil {
		s.bufs = map[*libsim.Conn][]byte{}
	}
	for _, c := range s.conns {
		if c.ServerClosed() || c.ClientGone() {
			continue
		}
		data, _ := c.ProxyTake()
		buf := append(s.bufs[c], data...)
		for i, b := range buf {
			if b == '\n' {
				c.ProxyDeliver(buf[:i+1])
				s.bufs[c] = append([]byte(nil), buf[i+1:]...)
				return interp.Outcome{Kind: interp.OutBlocked}
			}
		}
		s.bufs[c] = buf
	}
	return interp.Outcome{Kind: interp.OutBlocked}
}

func (s *slowFake) Cycles() int64 { return s.clock }
func (s *slowFake) Steps() int64  { return s.clock }

// TestOpenLoopShedsUnderOverload offers load well past the server's
// service rate: the closed-loop driver would simply slow down, the
// open-loop driver must keep offering, build a backlog, and shed the
// arrivals whose patience expires — while still completing a healthy
// share. This is the shedding knee the bench campaign sweeps for.
func TestOpenLoopShedsUnderOverload(t *testing.T) {
	d := &Driver{Srv: &slowFake{}, Port: 9000, Gen: &echoGen{}, Seed: 3}
	// Service: 1 request / 20k cycles. Offered: 1 / 2k cycles — 10x.
	res := d.RunOpen(OpenConfig{
		Total: 200, Clients: 64, RatePerMcycle: 500,
		MaxConns: 4, Patience: 100_000,
	})
	if res.ServerDied || res.Stalled {
		t.Fatalf("result = %+v", res.Result)
	}
	if res.Offered != 200 {
		t.Fatalf("offered = %d, want 200 — open loop must not throttle", res.Offered)
	}
	if res.Shed == 0 {
		t.Fatal("10x overload shed nothing")
	}
	if res.Completed == 0 {
		t.Fatal("overloaded server completed nothing")
	}
	if res.PeakQueue <= res.Shed/200 {
		t.Errorf("peak queue %d implausibly small for %d sheds", res.PeakQueue, res.Shed)
	}
	checkOpenIdentity(t, res)
}

// countSink counts terminals per trace so tests can assert the causal
// contract: every trace ID reaches exactly one terminal.
type countSink struct {
	done, lost int
	causes     map[string]int
	terminals  map[int64]int
}

func (s *countSink) seen(trace int64) {
	if s.terminals == nil {
		s.terminals = map[int64]int{}
	}
	s.terminals[trace]++
}

func (s *countSink) ReqDone(trace int64, ok bool) bool {
	s.done++
	s.seen(trace)
	return false
}

func (s *countSink) ReqLost(trace int64, cause string) {
	s.lost++
	if s.causes == nil {
		s.causes = map[string]int{}
	}
	s.causes[cause]++
	s.seen(trace)
}

// TestOpenLoopTracedTerminals drives the full feature mix — pipelining,
// fragmentation, slow readers, churn — under tracing and checks zero
// silent deaths: done + lost == Sent == Offered, with every trace ID
// reaching exactly one terminal.
func TestOpenLoopTracedTerminals(t *testing.T) {
	sink := &countSink{}
	d := newEchoDriver(t)
	d.Sink = sink
	d.TraceBase = 1000
	res := d.RunOpen(OpenConfig{
		Total: 120, Clients: 32, RatePerMcycle: 400,
		MaxConns: 8, PipelineDepth: 3, ChurnEvery: 9,
		SlowEvery: 4, SlowBytes: 2, FragmentEvery: 6, FragSize: 2,
	})
	if res.ServerDied || res.Stalled {
		t.Fatalf("result = %+v", res.Result)
	}
	if res.Sent != res.Offered || res.Offered != 120 {
		t.Fatalf("sent %d offered %d, want 120/120", res.Sent, res.Offered)
	}
	if sink.done+sink.lost != res.Sent {
		t.Fatalf("silent deaths: done %d + lost %d != sent %d (causes %v)",
			sink.done, sink.lost, res.Sent, sink.causes)
	}
	if len(sink.terminals) != res.Sent {
		t.Fatalf("distinct traces terminated = %d, want %d", len(sink.terminals), res.Sent)
	}
	for tr, n := range sink.terminals {
		if n != 1 {
			t.Fatalf("trace %d reached %d terminals", tr, n)
		}
		if tr <= d.TraceBase || tr > d.TraceBase+int64(res.Sent) {
			t.Fatalf("trace %d outside [%d, %d]", tr, d.TraceBase+1, d.TraceBase+int64(res.Sent))
		}
	}
	if sink.done != res.Completed+res.BadResp {
		t.Errorf("done %d != completed %d + bad %d", sink.done, res.Completed, res.BadResp)
	}
	lat := res.CleanLatency.Count() + res.RecoveryLatency.Count()
	if lat != int64(res.Completed+res.BadResp) {
		t.Errorf("latency observations %d != %d answered", lat, res.Completed+res.BadResp)
	}
	checkOpenIdentity(t, res)
}

// TestOpenLoopRunEndAccounting stops the schedule while requests are
// still queued and in flight on a server that never answers: every one
// of them must reach a loss terminal with the right cause split.
func TestOpenLoopRunEndAccounting(t *testing.T) {
	prog, err := minic.Compile(`
int main() {
	int s = socket();
	if (bind(s, 9000) == -1) { return 1; }
	if (listen(s, 16) == -1) { return 2; }
	int ep = epoll_create();
	epoll_ctl(ep, 1, s);
	int events[8];
	while (1) {
		int n = epoll_wait(ep, events, 8);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			if (events[i] == s) {
				int nf = accept(s);
				if (nf < 0) { continue; }
				// accepted, never served: black hole
			}
		}
	}
	return 0;
}`, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countSink{}
	d := &Driver{OS: o, M: m, Port: 9000, Gen: &echoGen{}, Seed: 2, Sink: sink}
	res := d.RunOpen(OpenConfig{
		Total: 20, Clients: 8, RatePerMcycle: 1000,
		MaxConns: 4, Patience: 1 << 40, // never shed: losses come from the stall
	})
	if !res.Stalled {
		t.Fatalf("mute server not detected: %+v", res.Result)
	}
	if res.Completed != 0 || res.Shed != 0 {
		t.Fatalf("result = %+v, want nothing completed or shed", res.Result)
	}
	if sink.lost != res.Offered {
		t.Fatalf("lost %d != offered %d (causes %v)", sink.lost, res.Offered, sink.causes)
	}
	if sink.causes["stalled"] != res.Outstanding+res.Abandoned {
		t.Errorf("stalled causes %d != outstanding %d + abandoned %d",
			sink.causes["stalled"], res.Outstanding, res.Abandoned)
	}
	if res.Outstanding == 0 {
		t.Error("no requests were in flight at the stall")
	}
	checkOpenIdentity(t, res)
}
