package workload

// Schedule is the serializable description of the workload a recorded
// run consumed — enough, together with the program and fault plan, to
// re-drive the identical run (the cycle domain is deterministic, so
// recording the schedule's parameters records the schedule). A
// closed-loop schedule is its driver parameters; an open-loop schedule
// is the OpenConfig plus the seed its arrival clock was drawn from — the
// pre-drawn arrival times are a pure function of both.
type Schedule struct {
	// Kind is "closed" (Driver.Run) or "open" (Driver.RunOpen).
	Kind string `json:"kind"`

	// Proto selects the request generator via ForProtocol.
	Proto string `json:"proto"`

	// Seed is the driver seed (per-client rngs are Seed^clientID; the
	// open-loop arrival clock is Seed^openScheduleSeed).
	Seed int64 `json:"seed"`

	// Requests is the closed-loop request total (Driver.Run argument).
	Requests int `json:"requests,omitempty"`

	// Concurrency, StepBudget and StallCycles mirror the Driver fields;
	// zero means the driver default, recorded as zero so a replayed
	// driver resolves the same default.
	Concurrency int   `json:"concurrency,omitempty"`
	StepBudget  int64 `json:"step_budget,omitempty"`
	StallCycles int64 `json:"stall_cycles,omitempty"`

	// TraceBase is the driver's trace-ID base for this run (supervised
	// campaigns thread it across incarnations).
	TraceBase int64 `json:"trace_base,omitempty"`

	// Open holds the open-loop parameters when Kind is "open".
	Open *OpenConfig `json:"open,omitempty"`
}

// Driver builds a closed-loop driver configured exactly as the schedule
// records (OS, machine/server wiring is the caller's). Open-loop
// schedules configure the same driver; the caller passes Open to RunOpen.
func (sc Schedule) Driver() Driver {
	return Driver{
		Gen:         ForProtocol(sc.Proto),
		Concurrency: sc.Concurrency,
		Seed:        sc.Seed,
		StepBudget:  sc.StepBudget,
		StallCycles: sc.StallCycles,
		TraceBase:   sc.TraceBase,
	}
}
