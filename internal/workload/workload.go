// Package workload drives the simulated servers with closed-loop client
// load — the analog of the paper's wrk / ApacheBench / redis-benchmark /
// pgbench drivers — and validates responses.
//
// The driver interleaves with the single-threaded machine: it delivers
// request bytes into the simulated connections, runs the machine until it
// blocks in epoll_wait (or crashes), then drains and validates responses.
// Throughput is measured in cost-model cycles per completed request, which
// is deterministic and host-independent.
//
// A Driver can equally drive a multi-threaded server: set S to the
// scheduler instead of M, and each slice runs all runnable threads.
// Throughput then uses wall cycles — the maximum per-thread cycle count —
// so adding workers shows up as fewer cycles per request.
package workload

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/sched"
)

// Generator produces and validates protocol traffic.
type Generator interface {
	// Next returns the next request for client i.
	Next(i int, rng *rand.Rand) []byte

	// Split returns the length of the first complete response in buf, or
	// 0 if more bytes are needed.
	Split(buf []byte) int

	// Check validates a response to the given request.
	Check(req, resp []byte) bool
}

// Server abstracts the driven endpoint so the driver can front things
// other than one machine on one OS — the fleet balancer implements it
// over N supervised replicas. Connect returns a client connection to the
// served port (nil if nothing is accepting), Slice advances the whole
// backend until it blocks, and Cycles/Steps report the backend's
// throughput clock (wall cycles across replicas for a fleet).
type Server interface {
	Connect(port int64) *libsim.Conn
	Slice(budget int64) interp.Outcome
	Cycles() int64
	Steps() int64
}

// TraceSink receives request-lifecycle notifications from a tracing
// driver. core.Runtime implements it: terminals become req-done/req-lost
// spans and ReqDone reports whether recovery machinery touched the
// request, which drives the clean-vs-recovery latency split.
type TraceSink interface {
	// ReqDone records a validated (ok) or rejected (!ok) response for the
	// traced request and reports whether recovery touched it.
	ReqDone(trace int64, ok bool) bool
	// ReqLost records a traced request that can never complete, with the
	// cause ("conn-closed", "server-died", "stalled", "run-end").
	ReqLost(trace int64, cause string)
}

// Result summarizes one driven run.
type Result struct {
	Completed  int
	BadResp    int
	ServerDied bool
	TrapCode   int64
	Cycles     int64 // machine (or wall, see Driver.S) cycles consumed
	Steps      int64
	Stalled    bool // driver gave up waiting for progress

	// Outstanding counts requests that were sent but neither answered nor
	// failed when the run ended — the in-flight work a crash actually
	// kills, at most Concurrency but usually fewer near the end of a run.
	Outstanding int

	// Sent counts requests delivered to the server under tracing (the
	// number of trace IDs consumed from TraceBase); 0 without a Sink.
	Sent int

	// CleanLatency / RecoveryLatency split per-request latency — cycles
	// from delivery to validated response — by whether the recovery
	// machinery touched the request (per the Sink). Only populated under
	// tracing (Sink non-nil); requests that never complete appear in
	// neither histogram.
	CleanLatency    *obsv.Hist
	RecoveryLatency *obsv.Hist
}

// PublishMetrics copies the run's outcome counters into a metrics
// registry under the given labels.
func (r Result) PublishMetrics(reg *obsv.Registry, labels ...obsv.Label) {
	reg.Counter("workload.completed", labels...).Add(int64(r.Completed))
	reg.Counter("workload.bad_resp", labels...).Add(int64(r.BadResp))
	reg.Counter("workload.outstanding", labels...).Add(int64(r.Outstanding))
	reg.Counter("workload.sent", labels...).Add(int64(r.Sent))
	reg.Counter("workload.cycles", labels...).Add(r.Cycles)
	reg.Counter("workload.steps", labels...).Add(r.Steps)
	var died, stalled int64
	if r.ServerDied {
		died = 1
	}
	if r.Stalled {
		stalled = 1
	}
	reg.Counter("workload.server_died", labels...).Add(died)
	reg.Counter("workload.stalled", labels...).Add(stalled)
}

// CyclesPerRequest is the throughput metric (lower is better). A run
// that completed nothing is infinitely slow, not infinitely fast — it
// returns +Inf, which FormatCPR renders as "-" so a dead server never
// shows up as the best row of a lower-is-better table.
func (r Result) CyclesPerRequest() float64 {
	if r.Completed == 0 {
		return math.Inf(1)
	}
	return float64(r.Cycles) / float64(r.Completed)
}

// FormatCPR renders a cycles-per-request value for a table cell:
// finite values keep the historical %.0f form, while the +Inf of a run
// that completed nothing prints as "-". Pad with %Ns to preserve
// column alignment.
func FormatCPR(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

// Driver drives one machine with concurrent simulated clients.
type Driver struct {
	OS          *libsim.OS
	M           *interp.Machine
	Port        int64
	Gen         Generator
	Concurrency int
	Seed        int64

	// S, when non-nil, is a multi-threaded scheduler driven in place of M:
	// each slice runs every runnable thread and Cycles reports wall cycles
	// (max per-thread) rather than one machine's count.
	S *sched.Sched

	// Srv, when non-nil, is driven in place of OS/M/S entirely: the
	// driver connects, slices and reads the clock through the Server
	// interface. The fleet balancer plugs in here.
	Srv Server

	// StepBudget bounds each machine slice (default 2M instructions).
	StepBudget int64

	// StallCycles bounds the backend cycles the driver lets progress-free
	// rounds consume before declaring the run stalled (default
	// DefaultStallCycles). It replaces the old progress-free *round*
	// counter as the primary stall detector: a long in-server compute
	// burst — slices that exhaust their step budget without a response
	// ready yet — consumes cycles but is real work, and no longer trips
	// the detector until the budget is spent. A server that is *blocked*
	// with requests queued and nothing moving is stuck now (its clock
	// barely advances, so a cycle budget alone would never fire); that
	// zero-progress fixpoint still stalls after stallRounds consecutive
	// blocked rounds, matching the old closed-loop behavior.
	StallCycles int64

	// Metrics, when non-nil, receives the run's outcome counters (and,
	// under a scheduler, the per-thread cycle accounting) when Run
	// returns. Collection-time only: the drive loop never touches it.
	Metrics *obsv.Registry

	// Sink, when non-nil, turns on request tracing: every request is
	// stamped with a deterministic trace ID (TraceBase+1, TraceBase+2, …
	// in delivery order) and every terminal outcome is reported to the
	// sink. Nil (the default) leaves delivery byte-identical to the
	// untraced path.
	Sink TraceSink

	// TraceBase offsets this run's trace IDs so IDs stay unique across
	// incarnations of a supervised campaign (each run consumes Result.Sent
	// IDs above its base).
	TraceBase int64
}

// DefaultStallCycles is the default Driver.StallCycles: generous
// enough for any legitimate compute burst or supervised reboot wait,
// small enough that a livelocked server is still caught.
const DefaultStallCycles = 50_000_000

// stallRounds is the consecutive-blocked-round limit: a server that is
// blocked (not step-limited) while nothing progresses is already at a
// fixpoint, and this preserves the old detector's promptness there.
const stallRounds = 10

type clientState struct {
	conn    *libsim.Conn
	req     []byte
	resp    []byte
	pending bool

	// rng is the client's private request stream, seeded Seed^clientID:
	// request content depends only on (seed, client, position in the
	// client's own stream), never on cross-client delivery order, so a
	// reconnect or a recovery-induced reordering cannot reshuffle what
	// every *other* client is about to send.
	rng *rand.Rand

	trace  int64 // in-flight request's trace ID (0 = untraced)
	sentAt int64 // cycles() when the request was delivered
}

// Run completes `total` requests (or stops early on server death / stall).
// The server must already be running (or runnable); the driver first runs
// the machine until it blocks so startup completes.
func (d *Driver) Run(total int) Result {
	if d.Concurrency <= 0 {
		d.Concurrency = 4
	}
	if d.StepBudget <= 0 {
		d.StepBudget = 2_000_000
	}
	if d.StallCycles <= 0 {
		d.StallCycles = DefaultStallCycles
	}
	var res Result
	if d.Sink != nil {
		res.CleanLatency = obsv.NewHist()
		res.RecoveryLatency = obsv.NewHist()
	}
	nextTrace := d.TraceBase

	startCycles := d.cycles()
	startSteps := d.steps()

	// Let the server finish startup and block on epoll_wait.
	if ok, _ := d.slice(&res); !ok {
		res.Cycles = d.cycles() - startCycles
		res.Steps = d.steps() - startSteps
		if d.Metrics != nil {
			res.PublishMetrics(d.Metrics)
		}
		return res
	}

	clients := make([]*clientState, d.Concurrency)
	for i := range clients {
		clients[i] = &clientState{rng: rand.New(rand.NewSource(d.Seed ^ int64(i)))}
	}

	idleRounds := 0
	var idleCycles int64
	for res.Completed+res.BadResp < total {
		progressed := false
		roundStart := d.cycles()
		// Feed requests.
		for i, c := range clients {
			if c.conn == nil || c.conn.ServerClosed() {
				c.conn = d.connect()
				c.resp = nil
				c.pending = false
				if c.conn == nil {
					continue // port not bound (yet) or backlog full
				}
			}
			if !c.pending {
				c.req = d.Gen.Next(i, c.rng)
				if d.Sink != nil {
					nextTrace++
					c.trace = nextTrace
					c.sentAt = d.cycles()
					res.Sent++
					c.conn.ClientDeliverTraced(c.req, c.trace)
				} else {
					c.conn.ClientDeliver(c.req)
				}
				c.pending = true
				progressed = true
			}
		}

		ok, busy := d.slice(&res)
		if !ok {
			break
		}

		// Drain responses.
		for _, c := range clients {
			if c.conn == nil {
				continue
			}
			if out := c.conn.ClientTake(); len(out) > 0 {
				c.resp = append(c.resp, out...)
				progressed = true
			}
			for c.pending {
				n := d.Gen.Split(c.resp)
				if n == 0 {
					break
				}
				resp := c.resp[:n]
				c.resp = append([]byte(nil), c.resp[n:]...)
				ok := d.Gen.Check(c.req, resp)
				if ok {
					res.Completed++
				} else {
					res.BadResp++
				}
				if d.Sink != nil {
					touched := d.Sink.ReqDone(c.trace, ok)
					lat := d.cycles() - c.sentAt
					if touched {
						res.RecoveryLatency.Observe(lat)
					} else {
						res.CleanLatency.Observe(lat)
					}
					c.trace = 0
				}
				c.pending = false
			}
			if c.conn.ServerClosed() && c.pending {
				// Connection died mid-request (server error path):
				// count and reconnect on the next round.
				res.BadResp++
				if d.Sink != nil {
					d.Sink.ReqLost(c.trace, "conn-closed")
					c.trace = 0
				}
				c.pending = false
				progressed = true
			}
		}

		if progressed {
			idleRounds, idleCycles = 0, 0
		} else {
			// Progress-free round. A busy server (slice exhausted its
			// step budget mid-computation) is doing real work: charge the
			// cycle budget only. A blocked one is at a fixpoint — more
			// rounds cost almost nothing and change nothing — so the
			// consecutive-round limit fires at the old promptness.
			idleCycles += d.cycles() - roundStart
			if busy {
				idleRounds = 0
			} else {
				idleRounds++
			}
			if idleRounds > stallRounds || idleCycles > d.StallCycles {
				res.Stalled = true
				break
			}
		}
	}
	for _, c := range clients {
		if c.pending {
			res.Outstanding++
			if d.Sink != nil {
				cause := "run-end"
				switch {
				case res.ServerDied:
					cause = "server-died"
				case res.Stalled:
					cause = "stalled"
				}
				d.Sink.ReqLost(c.trace, cause)
				c.trace = 0
			}
		}
	}
	res.Cycles = d.cycles() - startCycles
	res.Steps = d.steps() - startSteps
	if d.Metrics != nil {
		res.PublishMetrics(d.Metrics)
		if d.S != nil {
			d.S.PublishMetrics(d.Metrics)
		}
	}
	return res
}

// connect opens a new client connection to the served port.
func (d *Driver) connect() *libsim.Conn {
	if d.Srv != nil {
		return d.Srv.Connect(d.Port)
	}
	return d.OS.Connect(d.Port)
}

// cycles returns the throughput clock: the Server's clock when one is
// plugged in, wall cycles under a scheduler, the machine's cycle count
// otherwise.
func (d *Driver) cycles() int64 {
	if d.Srv != nil {
		return d.Srv.Cycles()
	}
	if d.S != nil {
		return d.S.WallCycles()
	}
	return d.M.Cycles
}

func (d *Driver) steps() int64 {
	if d.Srv != nil {
		return d.Srv.Steps()
	}
	if d.S != nil {
		return d.S.TotalSteps()
	}
	return d.M.Steps
}

// slice runs the machine (or all runnable threads, or the plugged-in
// Server) until it blocks; ok is false when the server died or exited,
// and busy reports a slice that exhausted its step budget mid-work (the
// stall detector must not count such rounds as idle).
func (d *Driver) slice(res *Result) (ok, busy bool) {
	for {
		var out interp.Outcome
		switch {
		case d.Srv != nil:
			out = d.Srv.Slice(d.StepBudget)
		case d.S != nil:
			out = d.S.Run(d.StepBudget)
		default:
			out = d.M.Run(d.StepBudget)
		}
		switch out.Kind {
		case interp.OutBlocked:
			return true, false
		case interp.OutStepLimit:
			// Long-running slice (an accept/handle burst); treat like a
			// block so the driver can drain and keep feeding.
			return true, true
		case interp.OutTrapped:
			res.ServerDied = true
			res.TrapCode = out.Code
			return false, false
		case interp.OutWatch:
			// A replay watchpoint froze the machine at its target
			// boundary. Terminal for the run, but not a death: the server
			// is intact, merely halted for inspection.
			return false, false
		case interp.OutExited:
			return false, false
		default:
			return false, false
		}
	}
}

// --- HTTP ---------------------------------------------------------------------

// HTTPPath describes one weighted request target.
type HTTPPath struct {
	Path   string
	Status int // expected status code
}

// HTTPGen generates keep-alive HTTP/1.1 traffic over a path mix.
type HTTPGen struct {
	Paths []HTTPPath
	last  map[int]HTTPPath
}

// DefaultHTTPMix is the standard static-file mix used by the web server
// benchmarks (ApacheBench/wrk analog).
func DefaultHTTPMix() *HTTPGen {
	return &HTTPGen{Paths: []HTTPPath{
		{Path: "/", Status: 200},
		{Path: "/index.html", Status: 200},
		{Path: "/about.html", Status: 200},
		{Path: "/small.txt", Status: 200},
		// The medium transfer dominates the byte volume (listed thrice
		// to weight it), and — because its post-malloc initialization
		// fits the modelled L1 — it is where HTM checkpointing pays.
		{Path: "/data.bin", Status: 200},
		{Path: "/data.bin", Status: 200},
		{Path: "/data.bin", Status: 200},
		{Path: "/missing.html", Status: 404},
	}}
}

// TestSuiteHTTPMix adds the feature paths (SSI, WebDAV, big files) so the
// profiled surface resembles a standard test-suite run (Table III/IV).
func TestSuiteHTTPMix() *HTTPGen {
	g := DefaultHTTPMix()
	g.Paths = append(g.Paths,
		HTTPPath{Path: "/ssi", Status: 200},
		HTTPPath{Path: "/big.bin", Status: 200},
	)
	return g
}

// Next implements Generator.
func (g *HTTPGen) Next(i int, rng *rand.Rand) []byte {
	p := g.Paths[rng.Intn(len(g.Paths))]
	if g.last == nil {
		g.last = map[int]HTTPPath{}
	}
	g.last[i] = p
	return []byte("GET " + p.Path + " HTTP/1.1\r\nHost: sim\r\n\r\n")
}

// Split implements Generator: HTTP framing via Content-Length.
func (g *HTTPGen) Split(buf []byte) int {
	head := bytes.Index(buf, []byte("\r\n\r\n"))
	if head < 0 {
		return 0
	}
	bodyStart := head + 4
	cl := 0
	for _, line := range bytes.Split(buf[:head], []byte("\r\n")) {
		if v, ok := bytes.CutPrefix(line, []byte("Content-Length: ")); ok {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return 0
			}
			cl = n
		}
	}
	if len(buf) < bodyStart+cl {
		return 0
	}
	return bodyStart + cl
}

// Check implements Generator: the status line must match the expected
// status for the requested path.
func (g *HTTPGen) Check(req, resp []byte) bool {
	var path []byte
	if parts := bytes.SplitN(req, []byte(" "), 3); len(parts) == 3 {
		path = parts[1]
	}
	want := 200
	for _, p := range g.Paths {
		if string(path) == p.Path {
			want = p.Status
			break
		}
	}
	return bytes.HasPrefix(resp, []byte(fmt.Sprintf("HTTP/1.1 %d", want)))
}

// --- Redis ----------------------------------------------------------------------

// RedisGen alternates SET and GET over a small key space (the paper's
// SET/GET workload).
type RedisGen struct {
	Keys int
	seq  map[int]int // per-client statement counter (stream stability)
	vals map[string]string
	last map[int]string // client → last request kind+key
}

// Next implements Generator: a SET/GET-dominated mix with the secondary
// commands (INCR, EXISTS, DEL) redis-benchmark also exercises. The
// statement counter is keyed per client so a client's stream depends
// only on its own position, never on cross-client delivery order.
func (g *RedisGen) Next(i int, rng *rand.Rand) []byte {
	if g.Keys <= 0 {
		g.Keys = 16
	}
	if g.vals == nil {
		g.vals = map[string]string{}
		g.last = map[int]string{}
		g.seq = map[int]int{}
	}
	g.seq[i]++
	seq := g.seq[i]
	key := fmt.Sprintf("k%d", rng.Intn(g.Keys))
	switch seq % 8 {
	case 1, 3, 5:
		val := fmt.Sprintf("v%d", seq)
		g.vals[key] = val
		return []byte("SET " + key + " " + val + "\n")
	case 7:
		return []byte("INCR ctr" + key + "\n")
	case 2:
		return []byte("EXISTS " + key + "\n")
	case 4:
		return []byte("DEL " + key + "\n")
	default:
		return []byte("GET " + key + "\n")
	}
}

// Split implements Generator: newline framing.
func (g *RedisGen) Split(buf []byte) int {
	if i := bytes.IndexByte(buf, '\n'); i >= 0 {
		return i + 1
	}
	return 0
}

// Check implements Generator.
func (g *RedisGen) Check(req, resp []byte) bool {
	switch {
	case bytes.HasPrefix(req, []byte("SET ")):
		return bytes.Equal(resp, []byte("+OK\n"))
	case bytes.HasPrefix(req, []byte("GET ")):
		// Either $-1 (miss) or $<value>; interleaved clients race on the
		// key space, so any well-formed reply is accepted.
		return bytes.HasPrefix(resp, []byte("$"))
	case bytes.HasPrefix(req, []byte("INCR ")),
		bytes.HasPrefix(req, []byte("EXISTS ")),
		bytes.HasPrefix(req, []byte("DEL ")):
		return bytes.HasPrefix(resp, []byte(":"))
	default:
		return false
	}
}

// --- SQL-ish (PostgreSQL analog) ---------------------------------------------------

// SQLGen drives the PostgreSQL analog with INSERT/SELECT statements.
type SQLGen struct {
	Keys int
	seq  map[int]int // per-client statement counter (stream stability)
}

// Next implements Generator: INSERT/SELECT-dominated with occasional
// DELETE and COUNT statements, sequenced per client like RedisGen.
func (g *SQLGen) Next(i int, rng *rand.Rand) []byte {
	if g.Keys <= 0 {
		g.Keys = 16
	}
	if g.seq == nil {
		g.seq = map[int]int{}
	}
	g.seq[i]++
	seq := g.seq[i]
	key := rng.Intn(g.Keys)
	switch seq % 8 {
	case 1, 3, 5:
		return []byte(fmt.Sprintf("INSERT %d %d\n", key, seq))
	case 6:
		return []byte(fmt.Sprintf("DELETE %d\n", key))
	case 7:
		return []byte("COUNT\n")
	default:
		return []byte(fmt.Sprintf("SELECT %d\n", key))
	}
}

// Split implements Generator.
func (g *SQLGen) Split(buf []byte) int {
	if i := bytes.IndexByte(buf, '\n'); i >= 0 {
		return i + 1
	}
	return 0
}

// Check implements Generator.
func (g *SQLGen) Check(req, resp []byte) bool {
	switch {
	case bytes.HasPrefix(req, []byte("INSERT")):
		return bytes.Equal(resp, []byte("OK\n"))
	case bytes.HasPrefix(req, []byte("DELETE")):
		return bytes.Equal(resp, []byte("OK\n")) || bytes.Equal(resp, []byte("NONE\n"))
	case bytes.HasPrefix(req, []byte("COUNT")):
		return bytes.HasPrefix(resp, []byte("COUNT "))
	default:
		return bytes.HasPrefix(resp, []byte("ROW ")) || bytes.Equal(resp, []byte("NONE\n"))
	}
}

// ForProtocol returns the standard generator for an app protocol.
func ForProtocol(proto string) Generator {
	switch proto {
	case "redis":
		return &RedisGen{}
	case "sql":
		return &SQLGen{}
	default:
		return TestSuiteHTTPMix()
	}
}
