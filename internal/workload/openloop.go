package workload

import (
	"math"
	"math/rand"

	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/obsv"
)

// This file is the open-loop workload tier. The closed-loop Driver.Run
// stops offering load the moment the server stops answering — exactly the
// backlog a real population builds during a stall or a microreboot is the
// thing it cannot see. RunOpen offers load on a deterministic arrival
// schedule instead: arrivals keep coming whether or not the server keeps
// up, queue while it is busy, and are abandoned (shed client-side) when
// their patience runs out. The latency-vs-offered-load curve and the
// shedding knee fall straight out.

// ArrivalShape selects the deterministic arrival process of an open-loop
// run. All shapes are seeded from the driver seed and live entirely in
// the cycle domain — repeat runs are byte-identical.
type ArrivalShape string

const (
	// ShapePoisson draws exponential inter-arrival gaps — the memoryless
	// baseline of every queueing model.
	ShapePoisson ArrivalShape = "poisson"
	// ShapeBursty clusters arrivals into back-to-back groups of eight
	// separated by long lulls, preserving the configured mean rate.
	ShapeBursty ArrivalShape = "bursty"
	// ShapeDiurnal modulates a Poisson process sinusoidally (a compressed
	// day/night cycle): the instantaneous rate swings ±80% of the mean.
	ShapeDiurnal ArrivalShape = "diurnal"
)

// OpenConfig parameterizes an open-loop run. The zero value of every
// field selects a sane default, so tests can set only what they probe.
// The json tags make OpenConfig part of a recording's manifest
// (internal/replay): a recorded open-loop run is re-drawn from these
// parameters plus the driver seed.
type OpenConfig struct {
	Shape ArrivalShape `json:"shape"` // arrival process (default poisson)

	// RatePerMcycle is the offered load: mean arrivals per million
	// virtual cycles (default 50).
	RatePerMcycle float64 `json:"rate_per_mcycle"`

	// Total is the number of arrivals to offer (default 1000). Every
	// arrival reaches exactly one terminal: completed, bad response,
	// shed, conn-closed, or a run-end cause.
	Total int `json:"total"`

	// Clients is the modeled client population (default 10000). Each
	// arrival is assigned a client; a client's request stream depends
	// only on (seed, client id), never on delivery timing.
	Clients int `json:"clients"`

	// MaxConns bounds concurrently open connections — the population is
	// huge, the socket budget is not (default 32). Arrivals for clients
	// that cannot get a connection wait, and shed when Patience expires.
	MaxConns int `json:"max_conns"`

	// PipelineDepth is the maximum number of requests in flight on one
	// connection (default 1; >1 enables pipelining). Under tracing a
	// follow-up request is delivered only after the previous one was
	// started by the server (its trace promoted) and its bytes drained,
	// because the connection carries a single pending-trace slot.
	PipelineDepth int `json:"pipeline_depth"`

	// Patience is how many virtual cycles an undelivered arrival waits
	// before the client gives up and it is shed (default 2M).
	Patience int64 `json:"patience"`

	// ChurnEvery forces connection churn: every Nth arrival closes its
	// connection after its response (0 = close only when idle).
	ChurnEvery int `json:"churn_every,omitempty"`

	// SlowEvery marks every Nth distinct client a slow reader that
	// drains at most SlowBytes (default 3) per round instead of
	// everything — the slow-loris shape (0 = no slow readers).
	SlowEvery int `json:"slow_every,omitempty"`
	SlowBytes int `json:"slow_bytes,omitempty"`

	// FragmentEvery delivers every Nth arrival's request in FragSize
	// (default 4) byte fragments across consecutive rounds instead of one
	// write (0 = no fragmentation). Oversized requests exercise the same
	// path: any request longer than FragSize is split when selected.
	FragmentEvery int `json:"fragment_every,omitempty"`
	FragSize      int `json:"frag_size,omitempty"`
}

func (cfg *OpenConfig) defaults() {
	if cfg.Shape == "" {
		cfg.Shape = ShapePoisson
	}
	if cfg.RatePerMcycle <= 0 {
		cfg.RatePerMcycle = 50
	}
	if cfg.Total <= 0 {
		cfg.Total = 1000
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 10000
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 32
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 1
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 2_000_000
	}
	if cfg.SlowBytes <= 0 {
		cfg.SlowBytes = 3
	}
	if cfg.FragSize <= 0 {
		cfg.FragSize = 4
	}
}

// OpenResult extends the closed-loop Result with open-loop accounting.
// CleanLatency / RecoveryLatency measure from *arrival* (offer time), not
// delivery — queueing delay is the signal an open-loop run exists to
// expose.
type OpenResult struct {
	Result

	Offered   int   // arrivals offered (== Sent under tracing)
	Shed      int   // arrivals abandoned undelivered after Patience
	ConnLost  int   // delivered requests lost to a server-side close
	Abandoned int   // queued arrivals terminated by run end / death / stall
	PeakQueue int   // peak undelivered backlog — the knee shows here first
	Wall      int64 // virtual cycles from run start to the last terminal
}

// openScheduleSeed decorrelates the arrival schedule's rng from the
// per-client request rngs (which use Seed ^ clientID).
const openScheduleSeed = 0x6f6c6f6f70 // "oloop"

// arrivalClock generates the deterministic arrival schedule.
type arrivalClock struct {
	rng   *rand.Rand
	shape ArrivalShape
	mean  float64 // mean inter-arrival gap in cycles
	t     float64 // absolute time of the last arrival
	n     int
}

func (a *arrivalClock) next() int64 {
	var gap float64
	switch a.shape {
	case ShapeBursty:
		// Bursts of eight with jittered short gaps, then a long lull;
		// the expected gap stays exactly a.mean.
		j := 0.5 + a.rng.Float64()
		if a.n%8 == 7 {
			gap = 5 * a.mean * j
		} else {
			gap = (3.0 / 7.0) * a.mean * j
		}
	case ShapeDiurnal:
		// A compressed day: the rate swings sinusoidally over a period
		// of 200 mean gaps.
		phase := 2 * math.Pi * a.t / (200 * a.mean)
		gap = a.rng.ExpFloat64() * a.mean / (1 + 0.8*math.Sin(phase))
	default:
		gap = a.rng.ExpFloat64() * a.mean
	}
	a.n++
	a.t += gap
	return int64(a.t)
}

// openArrival is one offered request on its way to a terminal.
type openArrival struct {
	at    int64 // arrival (offer) time on the virtual clock
	idx   int   // global arrival index
	trace int64 // 0 when untraced
	req   []byte
	frag  bool // deliver in fragments
}

// openClient is the per-client connection state. Request content comes
// from the client's own rng; connections come and go underneath it.
type openClient struct {
	id       int
	rng      *rand.Rand
	conn     *libsim.Conn
	queue    []*openArrival // offered, not yet fully delivered (FIFO)
	inflight []*openArrival // delivered, awaiting response (FIFO)
	resp     []byte         // drained, not yet matched response bytes
	fragLeft []byte         // undelivered tail of queue[0]
	last     int64          // trace of the most recently delivered request
	slow     bool           // drains SlowBytes per round
	churn    bool           // close the connection after the next drain
}

// RunOpen drives the server open-loop. It shares every seam with Run —
// OS/M, a sched, or a Server such as the fleet balancer — plus the trace
// sink: every arrival consumes a trace ID in arrival order, so shed
// arrivals reach a req-lost terminal without a req-start (legal
// causality: the server never saw them).
func (d *Driver) RunOpen(cfg OpenConfig) OpenResult {
	cfg.defaults()
	if d.StepBudget <= 0 {
		d.StepBudget = 2_000_000
	}
	if d.StallCycles <= 0 {
		d.StallCycles = DefaultStallCycles
	}

	var res OpenResult
	if d.Sink != nil {
		res.CleanLatency = obsv.NewHist()
		res.RecoveryLatency = obsv.NewHist()
	}

	startCycles := d.cycles()
	startSteps := d.steps()
	finish := func() OpenResult {
		res.Cycles = d.cycles() - startCycles
		res.Steps = d.steps() - startSteps
		if d.Metrics != nil {
			res.PublishMetrics(d.Metrics)
			if d.S != nil {
				d.S.PublishMetrics(d.Metrics)
			}
		}
		return res
	}

	// Let the server finish startup and block on its event loop.
	if ok, _ := d.slice(&res.Result); !ok {
		return finish()
	}

	clock := &arrivalClock{
		rng:   rand.New(rand.NewSource(d.Seed ^ openScheduleSeed)),
		shape: cfg.Shape,
		mean:  1e6 / cfg.RatePerMcycle,
	}

	var (
		now       int64 // virtual wall clock, 0 = run start
		nextAt    = clock.next()
		offered   int
		terminals int
		queued    int // undelivered arrivals across all clients
		conns     int
		nextTrace = d.TraceBase
		clis      []*openClient
		byID      = map[int]*openClient{}
	)

	lose := func(a *openArrival, cause string) {
		terminals++
		if d.Sink != nil {
			d.Sink.ReqLost(a.trace, cause)
		}
	}
	closeConn := func(c *openClient) {
		if c.conn != nil {
			c.conn.ClientClose()
			c.conn = nil
			conns--
		}
	}

	idleRounds := 0
	var idleCycles int64
	for terminals < cfg.Total {
		progressed := false
		roundStart := d.cycles()

		// Offer every arrival that is due.
		for offered < cfg.Total && nextAt <= now {
			id := clock.rng.Intn(cfg.Clients)
			c := byID[id]
			if c == nil {
				c = &openClient{id: id, rng: rand.New(rand.NewSource(d.Seed ^ int64(id)))}
				if cfg.SlowEvery > 0 && (len(clis)+1)%cfg.SlowEvery == 0 {
					c.slow = true
				}
				byID[id] = c
				clis = append(clis, c)
			}
			a := &openArrival{at: nextAt, idx: offered}
			a.req = d.Gen.Next(id, c.rng)
			if cfg.FragmentEvery > 0 && (offered+1)%cfg.FragmentEvery == 0 && len(a.req) > cfg.FragSize {
				a.frag = true
			}
			if d.Sink != nil {
				nextTrace++
				a.trace = nextTrace
				res.Sent++
			}
			c.queue = append(c.queue, a)
			queued++
			offered++
			res.Offered++
			if queued > res.PeakQueue {
				res.PeakQueue = queued
			}
			nextAt = clock.next()
			progressed = true
		}

		// Deliver what the connection rules allow, in first-touch client
		// order (deterministic).
		for _, c := range clis {
			if len(c.queue) == 0 && len(c.inflight) == 0 {
				continue
			}
			if c.conn != nil && c.conn.ServerClosed() {
				// The server closed underneath us (shed, crash, reboot):
				// everything on the wire is gone.
				for _, a := range c.inflight {
					res.ConnLost++
					lose(a, "conn-closed")
				}
				c.inflight = c.inflight[:0]
				c.resp = nil
				if len(c.fragLeft) > 0 {
					// queue[0] was half-delivered; its prefix died with
					// the connection.
					res.ConnLost++
					lose(c.queue[0], "conn-closed")
					c.queue = c.queue[1:]
					queued--
					c.fragLeft = nil
				}
				c.conn = nil
				conns--
				progressed = true
			}
			if c.conn == nil {
				if len(c.queue) == 0 || conns >= cfg.MaxConns {
					continue
				}
				c.conn = d.connect()
				if c.conn == nil {
					continue // listener down or backlog full; retry
				}
				conns++
				c.last = 0
			}
			// A half-delivered request owns the connection until its
			// last fragment lands.
			if len(c.fragLeft) > 0 {
				n := min(cfg.FragSize, len(c.fragLeft))
				c.conn.ClientDeliver(c.fragLeft[:n])
				c.fragLeft = c.fragLeft[n:]
				progressed = true
				if len(c.fragLeft) > 0 {
					continue
				}
				a := c.queue[0]
				c.queue = c.queue[1:]
				queued--
				c.inflight = append(c.inflight, a)
			}
			for len(c.queue) > 0 && len(c.inflight) < cfg.PipelineDepth && len(c.fragLeft) == 0 {
				if d.Sink != nil && len(c.inflight) > 0 &&
					(c.conn.Trace() != c.last || c.conn.InboundLen() != 0) {
					// Pipelining under tracing: wait until the previous
					// request was started and its bytes consumed — the
					// conn's pending-trace slot holds one ID.
					break
				}
				a := c.queue[0]
				body := a.req
				if a.frag {
					body = a.req[:cfg.FragSize]
					c.fragLeft = a.req[cfg.FragSize:]
				}
				if d.Sink != nil {
					c.conn.ClientDeliverTraced(body, a.trace)
				} else {
					c.conn.ClientDeliver(body)
				}
				c.last = a.trace
				progressed = true
				if len(c.fragLeft) > 0 {
					break // rest of the request goes out next rounds
				}
				c.queue = c.queue[1:]
				queued--
				c.inflight = append(c.inflight, a)
			}
		}

		ok, busy := d.slice(&res.Result)
		now += d.cycles() - roundStart
		if !ok {
			break
		}

		// Drain and match responses; apply churn and idle-close.
		for _, c := range clis {
			if c.conn == nil {
				continue
			}
			var out []byte
			if c.slow {
				out = c.conn.ClientTakeN(cfg.SlowBytes)
			} else {
				out = c.conn.ClientTake()
			}
			if len(out) > 0 {
				c.resp = append(c.resp, out...)
				progressed = true
			}
			for len(c.inflight) > 0 {
				n := d.Gen.Split(c.resp)
				if n == 0 {
					break
				}
				a := c.inflight[0]
				c.inflight = c.inflight[1:]
				resp := c.resp[:n]
				c.resp = append([]byte(nil), c.resp[n:]...)
				okResp := d.Gen.Check(a.req, resp)
				if okResp {
					res.Completed++
				} else {
					res.BadResp++
				}
				terminals++
				if d.Sink != nil {
					touched := d.Sink.ReqDone(a.trace, okResp)
					lat := max(now-a.at, 0)
					if touched {
						res.RecoveryLatency.Observe(lat)
					} else {
						res.CleanLatency.Observe(lat)
					}
				}
				if cfg.ChurnEvery > 0 && (a.idx+1)%cfg.ChurnEvery == 0 {
					c.churn = true
				}
				progressed = true
			}
			if len(c.inflight) == 0 && len(c.fragLeft) == 0 &&
				(c.churn || len(c.queue) == 0) {
				// Keep-alive ends here: forced churn, or nothing left for
				// this client — free the socket for the population.
				closeConn(c)
				c.churn = false
			}
		}

		// Patience: the oldest undelivered arrivals abandon the queue.
		for _, c := range clis {
			for len(c.queue) > 0 && len(c.fragLeft) == 0 {
				a := c.queue[0]
				if now-a.at <= cfg.Patience {
					break // FIFO: everything behind is younger
				}
				c.queue = c.queue[1:]
				queued--
				res.Shed++
				lose(a, "shed")
				progressed = true
			}
		}

		if progressed {
			idleRounds, idleCycles = 0, 0
			continue
		}
		if offered < cfg.Total && nextAt > now {
			// Quiet period: nothing in flight can move and the next
			// arrival is in the future — real time passes without server
			// work, so jump the virtual clock. Never a stall.
			now = nextAt
			idleRounds, idleCycles = 0, 0
			continue
		}
		// Same stall accounting as the closed loop: compute-burst rounds
		// charge only the cycle budget, blocked fixpoints the round limit.
		idleCycles += d.cycles() - roundStart
		if busy {
			idleRounds = 0
		} else {
			idleRounds++
		}
		if idleRounds > stallRounds || idleCycles > d.StallCycles {
			res.Stalled = true
			break
		}
	}

	// Terminal accounting for everything still in the system.
	cause := "run-end"
	switch {
	case res.ServerDied:
		cause = "server-died"
	case res.Stalled:
		cause = "stalled"
	}
	for _, c := range clis {
		for _, a := range c.inflight {
			res.Outstanding++
			lose(a, cause)
		}
		c.inflight = nil
		for _, a := range c.queue {
			res.Abandoned++
			queued--
			lose(a, cause)
		}
		c.queue = nil
		c.fragLeft = nil
	}
	res.Wall = now
	return finish()
}
