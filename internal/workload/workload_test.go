package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
)

func TestHTTPSplit(t *testing.T) {
	g := DefaultHTTPMix()
	full := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	tests := []struct {
		name string
		buf  []byte
		want int
	}{
		{"empty", nil, 0},
		{"headers only", []byte("HTTP/1.1 200 OK\r\n"), 0},
		{"header complete body missing", []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhe"), 0},
		{"exact", full, len(full)},
		{"with trailing next response", append(append([]byte{}, full...), "HTTP/1.1 404"...), len(full)},
		{"zero length body", []byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"), 38},
	}
	for _, tt := range tests {
		if got := g.Split(tt.buf); got != tt.want {
			t.Errorf("%s: Split = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestHTTPCheck(t *testing.T) {
	g := DefaultHTTPMix()
	req := []byte("GET /missing.html HTTP/1.1\r\n\r\n")
	if !g.Check(req, []byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")) {
		t.Error("404 for /missing.html rejected")
	}
	if g.Check(req, []byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")) {
		t.Error("200 for /missing.html accepted")
	}
	ok := []byte("GET /index.html HTTP/1.1\r\n\r\n")
	if !g.Check(ok, []byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi")) {
		t.Error("200 for /index.html rejected")
	}
}

func TestHTTPNextIsWellFormed(t *testing.T) {
	g := TestSuiteHTTPMix()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		req := string(g.Next(0, rng))
		if !strings.HasPrefix(req, "GET /") || !strings.HasSuffix(req, "\r\n\r\n") {
			t.Fatalf("malformed request %q", req)
		}
	}
}

func TestRedisGen(t *testing.T) {
	g := &RedisGen{Keys: 4}
	rng := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		req := g.Next(0, rng)
		cmd, _, _ := strings.Cut(string(req), " ")
		cmd = strings.TrimSuffix(cmd, "\n")
		counts[cmd]++
		switch cmd {
		case "SET":
			if !g.Check(req, []byte("+OK\n")) {
				t.Errorf("SET response rejected")
			}
			if g.Check(req, []byte("-ERR\n")) {
				t.Errorf("SET error accepted")
			}
		case "GET":
			if !g.Check(req, []byte("$v1\n")) || !g.Check(req, []byte("$-1\n")) {
				t.Errorf("GET responses rejected")
			}
		case "INCR", "EXISTS", "DEL":
			if !g.Check(req, []byte(":1\n")) {
				t.Errorf("%s response rejected", cmd)
			}
			if g.Check(req, []byte("+OK\n")) {
				t.Errorf("%s accepted +OK", cmd)
			}
		default:
			t.Fatalf("unexpected request %q", req)
		}
	}
	for _, cmd := range []string{"SET", "GET", "INCR", "EXISTS", "DEL"} {
		if counts[cmd] == 0 {
			t.Errorf("mix missing %s", cmd)
		}
	}
	if g.Split([]byte("+OK")) != 0 || g.Split([]byte("+OK\nrest")) != 4 {
		t.Error("redis framing wrong")
	}
}

func TestSQLGen(t *testing.T) {
	g := &SQLGen{Keys: 4}
	rng := rand.New(rand.NewSource(3))
	ins := g.Next(0, rng)
	if !strings.HasPrefix(string(ins), "INSERT ") {
		t.Fatalf("first = %q", ins)
	}
	if !g.Check(ins, []byte("OK\n")) || g.Check(ins, []byte("ERR\n")) {
		t.Error("INSERT validation wrong")
	}
	sel := g.Next(0, rng)
	if !strings.HasPrefix(string(sel), "SELECT ") {
		t.Fatalf("second = %q", sel)
	}
	if !g.Check(sel, []byte("ROW 9\n")) || !g.Check(sel, []byte("NONE\n")) {
		t.Error("SELECT validation wrong")
	}
	// The extended statements appear and validate.
	sawDel, sawCount := false, false
	for i := 0; i < 20; i++ {
		req := g.Next(0, rng)
		if strings.HasPrefix(string(req), "DELETE ") {
			sawDel = true
			if !g.Check(req, []byte("OK\n")) || !g.Check(req, []byte("NONE\n")) {
				t.Error("DELETE validation wrong")
			}
		}
		if strings.HasPrefix(string(req), "COUNT") {
			sawCount = true
			if !g.Check(req, []byte("COUNT 4\n")) || g.Check(req, []byte("ROW x\n")) {
				t.Error("COUNT validation wrong")
			}
		}
	}
	if !sawDel || !sawCount {
		t.Errorf("mix missing DELETE/COUNT: %v %v", sawDel, sawCount)
	}
}

// TestCheckRejectsTruncatedResponses drives every generator's validator
// with responses cut off mid-frame: a reply truncated before the
// discriminating token must never validate, for any cut point.
func TestCheckRejectsTruncatedResponses(t *testing.T) {
	cases := []struct {
		name     string
		gen      Generator
		req      []byte
		resp     []byte
		keepOkAt int // shortest prefix length that may legally validate (-1: none)
	}{
		{"http status line", DefaultHTTPMix(),
			[]byte("GET /index.html HTTP/1.1\r\nHost: sim\r\n\r\n"),
			[]byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"), len("HTTP/1.1 200")},
		{"http 404 status line", DefaultHTTPMix(),
			[]byte("GET /missing.html HTTP/1.1\r\nHost: sim\r\n\r\n"),
			[]byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"), len("HTTP/1.1 404")},
		{"redis set", &RedisGen{}, []byte("SET k1 v1\n"), []byte("+OK\n"), len("+OK\n")},
		{"redis incr", &RedisGen{}, []byte("INCR ctrk1\n"), []byte(":2\n"), len(":")},
		{"sql insert", &SQLGen{}, []byte("INSERT 1 2\n"), []byte("OK\n"), len("OK\n")},
		{"sql select none", &SQLGen{}, []byte("SELECT 1\n"), []byte("NONE\n"), len("NONE\n")},
		{"sql count", &SQLGen{}, []byte("COUNT\n"), []byte("COUNT 3\n"), len("COUNT ")},
	}
	for _, tt := range cases {
		if !tt.gen.Check(tt.req, tt.resp) {
			t.Errorf("%s: full response rejected", tt.name)
		}
		for cut := 0; cut < tt.keepOkAt; cut++ {
			if tt.gen.Check(tt.req, tt.resp[:cut]) {
				t.Errorf("%s: truncated response %q accepted", tt.name, tt.resp[:cut])
			}
		}
	}
}

// TestCheckRejectsInterleavedResponses feeds each validator the reply
// that belongs to a different request kind (cross-talk on a shared
// connection) or a frame preceded by another client's frame: none may
// validate.
func TestCheckRejectsInterleavedResponses(t *testing.T) {
	httpGen := DefaultHTTPMix()
	redis := &RedisGen{}
	sql := &SQLGen{}
	cases := []struct {
		name string
		gen  Generator
		req  []byte
		resp []byte
	}{
		{"http wrong status for path", httpGen,
			[]byte("GET /missing.html HTTP/1.1\r\nHost: sim\r\n\r\n"),
			[]byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")},
		{"http other frame first", httpGen,
			[]byte("GET /index.html HTTP/1.1\r\nHost: sim\r\n\r\n"),
			[]byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\nHTTP/1.1 200 OK\r\n\r\n")},
		{"redis set got get reply", redis, []byte("SET k1 v1\n"), []byte("$v1\n")},
		{"redis get got set reply", redis, []byte("GET k1\n"), []byte("+OK\n")},
		{"redis set frame prefixed", redis, []byte("SET k1 v1\n"), []byte("$v0\n+OK\n")},
		{"redis incr got set reply", redis, []byte("INCR ctrk1\n"), []byte("+OK\n")},
		{"sql insert got row", sql, []byte("INSERT 1 2\n"), []byte("ROW 1 2\n")},
		{"sql select got ok", sql, []byte("SELECT 1\n"), []byte("OK\n")},
		{"sql insert frame appended", sql, []byte("INSERT 1 2\n"), []byte("OK\nROW 1 2\n")},
		{"sql count got row", sql, []byte("COUNT\n"), []byte("ROW 1 2\n")},
	}
	for _, tt := range cases {
		if tt.gen.Check(tt.req, tt.resp) {
			t.Errorf("%s: interleaved response %q accepted", tt.name, tt.resp)
		}
	}
}

func TestForProtocol(t *testing.T) {
	if _, ok := ForProtocol("redis").(*RedisGen); !ok {
		t.Error("redis generator wrong type")
	}
	if _, ok := ForProtocol("sql").(*SQLGen); !ok {
		t.Error("sql generator wrong type")
	}
	if _, ok := ForProtocol("http").(*HTTPGen); !ok {
		t.Error("http generator wrong type")
	}
}

// echoSrc is a minimal line-echo server used to exercise the driver.
const echoSrc = `
int g_conns[64];
struct c { int fd; int rlen; char rbuf[256]; };
int main() {
	int s = socket();
	if (bind(s, 9000) == -1) { return 1; }
	if (listen(s, 16) == -1) { return 2; }
	int ep = epoll_create();
	epoll_ctl(ep, 1, s);
	int events[8];
	while (1) {
		int n = epoll_wait(ep, events, 8);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == s) {
				int nf = accept(s);
				if (nf < 0) { continue; }
				struct c *cc = calloc(1, sizeof(struct c));
				if (!cc) { close(nf); continue; }
				cc->fd = nf;
				g_conns[nf] = cc;
				epoll_ctl(ep, 1, nf);
			} else {
				struct c *cc = g_conns[fd];
				if (!cc) { continue; }
				int got = read(fd, cc->rbuf + cc->rlen, 255 - cc->rlen);
				if (got == 0) {
					epoll_ctl(ep, 2, fd);
					close(fd);
					g_conns[fd] = 0;
					free(cc);
					continue;
				}
				if (got < 0) { continue; }
				cc->rlen = cc->rlen + got;
				int start = 0;
				for (int j = 0; j < cc->rlen; j++) {
					if (cc->rbuf[j] == '\n') {
						write(fd, cc->rbuf + start, j - start + 1);
						start = j + 1;
					}
				}
				int rest = cc->rlen - start;
				if (rest > 0 && start > 0) { memcpy(cc->rbuf, cc->rbuf + start, rest); }
				cc->rlen = rest;
			}
		}
	}
	return 0;
}`

// echoGen sends numbered lines and expects them back.
type echoGen struct{ n int }

func (g *echoGen) Next(i int, rng *rand.Rand) []byte {
	g.n++
	return []byte(strings.Repeat("x", g.n%5+1) + "\n")
}
func (g *echoGen) Split(buf []byte) int {
	for i, b := range buf {
		if b == '\n' {
			return i + 1
		}
	}
	return 0
}
func (g *echoGen) Check(req, resp []byte) bool { return string(req) == string(resp) }

func TestDriverAgainstEchoServer(t *testing.T) {
	prog, err := minic.Compile(echoSrc, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{OS: o, M: m, Port: 9000, Gen: &echoGen{}, Concurrency: 3, Seed: 1}
	res := d.Run(30)
	if res.ServerDied || res.Stalled {
		t.Fatalf("result = %+v", res)
	}
	if res.Completed != 30 || res.BadResp != 0 {
		t.Fatalf("completed %d bad %d, want 30/0", res.Completed, res.BadResp)
	}
	if res.Cycles <= 0 || res.CyclesPerRequest() <= 0 {
		t.Error("no cycle accounting")
	}
}

func TestDriverReportsServerDeath(t *testing.T) {
	src := `
int main() {
	int s = socket();
	if (bind(s, 9000) == -1) { return 1; }
	if (listen(s, 16) == -1) { return 2; }
	int ep = epoll_create();
	epoll_ctl(ep, 1, s);
	int events[8];
	int n = epoll_wait(ep, events, 8);
	int *p = NULL;
	*p = n;   // dies on the first event
	return 0;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{OS: o, M: m, Port: 9000, Gen: &echoGen{}, Concurrency: 1, Seed: 1}
	res := d.Run(5)
	if !res.ServerDied {
		t.Fatalf("death not reported: %+v", res)
	}
}

func TestDriverOutstandingOnMidBurstDeath(t *testing.T) {
	// A tiny listen backlog lets only two of the eight clients connect
	// before the server dies on its first epoll event: the crash kills a
	// burst smaller than the client pool, and Outstanding must count
	// exactly the requests actually in flight — not Concurrency, not the
	// remaining workload.
	src := `
int main() {
	int s = socket();
	if (bind(s, 9000) == -1) { return 1; }
	if (listen(s, 2) == -1) { return 2; }
	int ep = epoll_create();
	epoll_ctl(ep, 1, s);
	int events[8];
	int n = epoll_wait(ep, events, 8);
	int *p = NULL;
	*p = n;   // dies on the first event
	return 0;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{OS: o, M: m, Port: 9000, Gen: &echoGen{}, Concurrency: 8, Seed: 1}
	res := d.Run(20)
	if !res.ServerDied {
		t.Fatalf("death not reported: %+v", res)
	}
	if res.Completed != 0 || res.BadResp != 0 {
		t.Errorf("requests answered by a dead server: %+v", res)
	}
	if res.Outstanding != 2 {
		t.Errorf("outstanding = %d, want 2 (the backlog-limited burst)", res.Outstanding)
	}
	if res.Outstanding >= d.Concurrency {
		t.Errorf("outstanding %d not below concurrency %d", res.Outstanding, d.Concurrency)
	}
}

func TestDriverStallsGracefully(t *testing.T) {
	// A server that accepts but never answers: the driver must give up
	// rather than loop forever.
	src := `
int main() {
	int s = socket();
	if (bind(s, 9000) == -1) { return 1; }
	if (listen(s, 16) == -1) { return 2; }
	int ep = epoll_create();
	epoll_ctl(ep, 1, s);
	int events[8];
	while (1) {
		int n = epoll_wait(ep, events, 8);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			if (events[i] == s) {
				int nf = accept(s);
				if (nf < 0) { continue; }
				// accepted, never added to epoll: silence
			}
		}
	}
	return 0;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{OS: o, M: m, Port: 9000, Gen: &echoGen{}, Concurrency: 2, Seed: 1}
	res := d.Run(5)
	if !res.Stalled {
		t.Fatalf("stall not detected: %+v", res)
	}
	if res.Completed != 0 {
		t.Fatalf("completed = %d on a mute server", res.Completed)
	}
}

// TestCyclesPerRequestDeadServerNotFree is the regression test for
// Result.CyclesPerRequest returning 0 when nothing completed: in a
// lower-is-better table a server that died before its first response
// rendered as infinitely fast. A dead run must report +Inf and render
// as "-".
func TestCyclesPerRequestDeadServerNotFree(t *testing.T) {
	dead := Result{Cycles: 12345, ServerDied: true}
	if cpr := dead.CyclesPerRequest(); !math.IsInf(cpr, 1) {
		t.Fatalf("dead server cycles/request = %v, want +Inf", cpr)
	}
	if s := FormatCPR(dead.CyclesPerRequest()); s != "-" {
		t.Errorf("dead server renders as %q, want -", s)
	}
	live := Result{Cycles: 100, Completed: 4}
	if cpr := live.CyclesPerRequest(); cpr != 25 {
		t.Errorf("live cycles/request = %v, want 25", cpr)
	}
	if s := FormatCPR(live.CyclesPerRequest()); s != "25" {
		t.Errorf("live renders as %q, want 25", s)
	}
	if s := FormatCPR(math.NaN()); s != "-" {
		t.Errorf("NaN renders as %q, want -", s)
	}
}

// TestDriverSurvivesComputeBurst is the regression test for the stall
// detector counting progress-free rounds instead of cycles: a request
// whose in-server handling burns more than stallRounds slice budgets of
// pure compute used to flip Stalled even though the server was making
// steady progress. The busy (step-limited) rounds must not count toward
// the blocked-round limit, and the cycle budget must be generous enough
// to absorb the burst.
func TestDriverSurvivesComputeBurst(t *testing.T) {
	src := `
int g_spin;
int g_conns[64];
struct c { int fd; int rlen; char rbuf[256]; };
int main() {
	int s = socket();
	if (bind(s, 9000) == -1) { return 1; }
	if (listen(s, 16) == -1) { return 2; }
	int ep = epoll_create();
	epoll_ctl(ep, 1, s);
	int events[8];
	while (1) {
		int n = epoll_wait(ep, events, 8);
		if (n < 0) { continue; }
		for (int i = 0; i < n; i++) {
			int fd = events[i];
			if (fd == s) {
				int nf = accept(s);
				if (nf < 0) { continue; }
				struct c *cc = calloc(1, sizeof(struct c));
				if (!cc) { close(nf); continue; }
				cc->fd = nf;
				g_conns[nf] = cc;
				epoll_ctl(ep, 1, nf);
			} else {
				struct c *cc = g_conns[fd];
				if (!cc) { continue; }
				int got = read(fd, cc->rbuf + cc->rlen, 255 - cc->rlen);
				if (got <= 0) { continue; }
				cc->rlen = cc->rlen + got;
				int start = 0;
				for (int j = 0; j < cc->rlen; j++) {
					if (cc->rbuf[j] == '\n') {
						for (int k = 0; k < 20000; k++) { g_spin = g_spin + k; }
						write(fd, cc->rbuf + start, j - start + 1);
						start = j + 1;
					}
				}
				cc->rlen = 0;
			}
		}
	}
	return 0;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	m, err := interp.New(prog, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny slice budget makes the 20k-iteration burn span dozens of
	// step-limited rounds with no client-visible progress.
	d := &Driver{OS: o, M: m, Port: 9000, Gen: &echoGen{}, Concurrency: 1, Seed: 1, StepBudget: 2000}
	res := d.Run(3)
	if res.Stalled {
		t.Fatalf("compute burst misdetected as stall: %+v", res)
	}
	if res.ServerDied || res.Completed != 3 || res.BadResp != 0 {
		t.Fatalf("result = %+v, want 3 clean completions", res)
	}
}

// rngGen derives each request's body from the rng stream and records the
// per-client sequences so two runs can be compared draw for draw.
type rngGen struct{ got map[int][]string }

func (g *rngGen) Next(i int, rng *rand.Rand) []byte {
	if g.got == nil {
		g.got = map[int][]string{}
	}
	req := fmt.Sprintf("r%d\n", rng.Int63())
	g.got[i] = append(g.got[i], req)
	return []byte(req)
}
func (g *rngGen) Split(buf []byte) int {
	for i, b := range buf {
		if b == '\n' {
			return i + 1
		}
	}
	return 0
}
func (g *rngGen) Check(req, resp []byte) bool { return string(req) == string(resp) }

// echoFake is a Go-side Server: every Slice echoes the inbound bytes of
// each accepted connection and advances a synthetic cycle clock. At the
// closeAt-th served request it closes that connection server-side
// (dropping the request) and refuses the next reconnect once — the
// connection-churn shape a crashing incarnation produces.
type echoFake struct {
	conns        []*libsim.Conn
	clock        int64
	served       int
	closeAt      int
	failConnects int
}

func (s *echoFake) Connect(port int64) *libsim.Conn {
	if s.failConnects > 0 {
		s.failConnects--
		return nil
	}
	c := libsim.NewConn()
	s.conns = append(s.conns, c)
	return c
}

func (s *echoFake) Slice(budget int64) interp.Outcome {
	s.clock += 1000
	for _, c := range s.conns {
		if c.ServerClosed() {
			continue
		}
		data, _ := c.ProxyTake()
		if len(data) == 0 {
			continue
		}
		s.served++
		if s.closeAt > 0 && s.served == s.closeAt {
			c.CloseServer()
			s.failConnects = 1
			continue
		}
		c.ProxyDeliver(data)
	}
	return interp.Outcome{Kind: interp.OutBlocked}
}

func (s *echoFake) Cycles() int64 { return s.clock }
func (s *echoFake) Steps() int64  { return s.clock }

// TestRequestStreamsStableUnderChurn is the regression test for request
// generation drawing from one shared rng in delivery order: a reconnect
// after connection churn made one client skip a round, shifting every
// later client's draws and changing the workload bytes as a function of
// failure timing. With per-client rngs the common prefix of every
// client's request stream must be identical with and without churn.
func TestRequestStreamsStableUnderChurn(t *testing.T) {
	run := func(closeAt int) map[int][]string {
		g := &rngGen{}
		d := &Driver{Srv: &echoFake{closeAt: closeAt}, Port: 9000, Gen: g, Concurrency: 4, Seed: 7}
		res := d.Run(40)
		if res.Stalled || res.ServerDied {
			t.Fatalf("closeAt=%d: run failed: %+v", closeAt, res)
		}
		return g.got
	}
	calm := run(0)
	churned := run(6)
	if len(calm) != 4 || len(churned) != 4 {
		t.Fatalf("client counts = %d/%d, want 4", len(calm), len(churned))
	}
	for i, want := range calm {
		got := churned[i]
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		if n == 0 {
			t.Fatalf("client %d drew no requests", i)
		}
		for j := 0; j < n; j++ {
			if got[j] != want[j] {
				t.Fatalf("client %d request %d changed under churn: %q vs %q", i, j, got[j], want[j])
			}
		}
	}
}
