// Package analysis implements the static analyses of the Library Interface
// Analyzer (§V-A of the paper): it enumerates library call sites, assigns
// program-unique site IDs, and determines — by tracing the use of each
// call's return value — whether the site is followed by error-handling code
// and is therefore suitable for fault-injection-based execution diversion.
//
// The trace is interprocedural in the one way real server code requires:
// thin wrappers that forward a library call's return value to their caller
// (Nginx's ngx_close_socket pattern from the paper's Listing 1) are
// resolved by a fixpoint over "is this function's return value checked
// anywhere".
//
// Combining the per-site error-check result with the per-function
// recoverability model (package libmodel) yields each site's role in the
// transaction layout:
//
//	Gate  — recoverable class and error-checked: a crash transaction
//	        starts right after it and a fault can be injected into it.
//	Embed — recoverable class, not checked: the site is embedded inside
//	        the enclosing transaction; its effects are deferred or
//	        compensated on rollback.
//	Break — irrecoverable class: the transaction ends before the call and
//	        code runs unprotected until the next Gate site.
package analysis

import (
	"fmt"

	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libmodel"
)

// Role classifies a library call site's part in the transaction layout.
type Role int

// Site roles.
const (
	RoleGate Role = iota + 1
	RoleEmbed
	RoleBreak
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleGate:
		return "gate"
	case RoleEmbed:
		return "embed"
	case RoleBreak:
		return "break"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Site describes one library call site.
type Site struct {
	ID      int
	Func    string
	Block   int
	Index   int
	Name    string
	Checked bool // return value flows into a conditional branch
	Role    Role
	Entry   *libmodel.Entry
}

// Result is the analysis output.
type Result struct {
	Sites []*Site
	ByID  map[int]*Site
}

// Counts returns the number of sites per role.
func (r *Result) Counts() (gates, embeds, breaks int) {
	for _, s := range r.Sites {
		switch s.Role {
		case RoleGate:
			gates++
		case RoleEmbed:
			embeds++
		case RoleBreak:
			breaks++
		}
	}
	return gates, embeds, breaks
}

// Analyze assigns a unique Site ID to every OpLib instruction in the
// program (mutating the instructions' Site fields) and classifies each
// site. Unknown library functions (no model entry) are treated
// conservatively as irrecoverable Break sites.
func Analyze(prog *ir.Program, model *libmodel.Model) *Result {
	res := &Result{ByID: map[int]*Site{}}
	funcChecked := computeFuncChecked(prog)

	next := 1
	for _, fname := range prog.FuncNames() {
		f := prog.Funcs[fname]
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpLib {
					continue
				}
				site := &Site{
					ID:    next,
					Func:  fname,
					Block: b.ID,
					Index: i,
					Name:  in.Name,
					Entry: model.Lookup(in.Name),
				}
				next++
				in.Site = site.ID
				switch traceUse(f, b, i, in.Dst) {
				case useChecked:
					site.Checked = true
				case useReturned:
					site.Checked = funcChecked[fname]
				}
				site.Role = classify(site)
				res.Sites = append(res.Sites, site)
				res.ByID[site.ID] = site
			}
		}
	}
	prog.NumSites = next
	return res
}

func classify(s *Site) Role {
	if s.Entry == nil || s.Entry.Class == libmodel.Irrecoverable {
		return RoleBreak
	}
	if s.Entry.Divertable && s.Checked {
		return RoleGate
	}
	return RoleEmbed
}

// computeFuncChecked determines, per function, whether its return value is
// checked at some call site. A call site that merely forwards the value to
// its own caller (useReturned) contributes via a fixpoint, resolving
// wrapper chains.
func computeFuncChecked(prog *ir.Program) map[string]bool {
	type callUse struct {
		callee string
		caller string
		use    useKind
	}
	var uses []callUse
	for _, fname := range prog.FuncNames() {
		f := prog.Funcs[fname]
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpCall {
					continue
				}
				uses = append(uses, callUse{
					callee: in.Name,
					caller: fname,
					use:    traceUse(f, b, i, in.Dst),
				})
			}
		}
	}
	checked := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, u := range uses {
			if checked[u.callee] {
				continue
			}
			if u.use == useChecked || (u.use == useReturned && checked[u.caller]) {
				checked[u.callee] = true
				changed = true
			}
		}
	}
	return checked
}

type useKind int

const (
	useUnchecked useKind = iota
	useChecked
	useReturned
)

// traceUse follows the value in register dst forward through its basic
// block (tracking register copies and comparisons) and reports how it is
// consumed. The scan covers the remainder of the block and, when the block
// ends with an unconditional jump, one successor block: this matches every
// error-check idiom the mini-C compiler emits, including
//
//	rc = call(); if (rc == -1) ...     (copy, compare, branch)
//	if ((rc = call()) < 0) ...         (compare, branch)
//	p = malloc(n); if (!p) ...         (logical not, branch)
//	return call();                     (wrapper forwarding, useReturned)
func traceUse(f *ir.Func, b *ir.Block, callIdx, dst int) useKind {
	if dst < 0 {
		return useUnchecked
	}
	aliases := map[int]bool{dst: true}
	blocks := 0
	blk := b
	i := callIdx + 1
	for blocks < 2 {
		for ; i < len(blk.Instrs); i++ {
			in := &blk.Instrs[i]
			switch in.Op {
			case ir.OpMov:
				if aliases[in.A] {
					aliases[in.Dst] = true
					continue
				}
			case ir.OpBin:
				switch in.Bin {
				case ir.BinEq, ir.BinNe, ir.BinLt, ir.BinLe, ir.BinGt, ir.BinGe:
					if aliases[in.A] || aliases[in.B] {
						aliases[in.Dst] = true
						continue
					}
				}
			case ir.OpNot:
				if aliases[in.A] {
					aliases[in.Dst] = true
					continue
				}
			case ir.OpBr:
				if aliases[in.A] {
					return useChecked
				}
				return useUnchecked
			case ir.OpRet:
				if in.A >= 0 && aliases[in.A] {
					return useReturned
				}
				return useUnchecked
			case ir.OpTrap, ir.OpGate:
				return useUnchecked
			case ir.OpJmp:
				// Follow one unconditional edge (if-conditions are
				// normally emitted in the same block, but a call used
				// as a loop condition lands one hop away).
				blocks++
				blk = f.Blocks[in.Then]
				i = -1 // restarts at 0 after i++
				continue
			}
			// Any instruction overwriting an alias kills that alias.
			if w := destOf(in); w >= 0 && aliases[w] {
				delete(aliases, w)
				if len(aliases) == 0 {
					return useUnchecked
				}
			}
		}
		break
	}
	return useUnchecked
}

// destOf returns the register an instruction writes, or -1.
func destOf(in *ir.Instr) int {
	switch in.Op {
	case ir.OpConst, ir.OpMov, ir.OpBin, ir.OpNeg, ir.OpNot, ir.OpLoad,
		ir.OpFrameAddr, ir.OpGlobalAddr, ir.OpCall, ir.OpLib:
		return in.Dst
	}
	return -1
}
