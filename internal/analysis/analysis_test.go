package analysis_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/analysis"
	"github.com/firestarter-go/firestarter/internal/libmodel"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/minic"
)

func analyze(t *testing.T, src string) *analysis.Result {
	t.Helper()
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return analysis.Analyze(prog, libmodel.Default())
}

// siteFor returns the first site calling the named function.
func siteFor(t *testing.T, res *analysis.Result, name string) *analysis.Site {
	t.Helper()
	for _, s := range res.Sites {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no site for %q", name)
	return nil
}

func TestCheckedDirectComparison(t *testing.T) {
	res := analyze(t, `
int main() {
	int rc = socket();
	if (rc == -1) { return 1; }
	return 0;
}`)
	s := siteFor(t, res, "socket")
	if !s.Checked || s.Role != analysis.RoleGate {
		t.Fatalf("socket site = %+v, want checked gate", s)
	}
}

func TestCheckedAssignInCondition(t *testing.T) {
	res := analyze(t, `
int main() {
	int rc;
	if ((rc = socket()) == -1) { return 1; }
	return 0;
}`)
	if s := siteFor(t, res, "socket"); !s.Checked {
		t.Fatalf("assign-in-condition not detected: %+v", s)
	}
}

func TestCheckedNullPointerTest(t *testing.T) {
	res := analyze(t, `
int main() {
	char *p = malloc(64);
	if (!p) { return 1; }
	free(p);
	return 0;
}`)
	if s := siteFor(t, res, "malloc"); !s.Checked || s.Role != analysis.RoleGate {
		t.Fatalf("malloc null check not detected: %+v", s)
	}
}

func TestCheckedLessThanZero(t *testing.T) {
	res := analyze(t, `
int main() {
	int fd = socket();
	if (fd < 0) { return 1; }
	return 0;
}`)
	if s := siteFor(t, res, "socket"); !s.Checked {
		t.Fatalf("fd < 0 check not detected: %+v", s)
	}
}

func TestUncheckedReturn(t *testing.T) {
	res := analyze(t, `
int main() {
	int fd = socket();
	setsockopt(fd, 2, 1);
	return 0;
}`)
	s := siteFor(t, res, "setsockopt")
	if s.Checked {
		t.Fatalf("ignored setsockopt reported checked: %+v", s)
	}
	if s.Role != analysis.RoleEmbed {
		t.Fatalf("unchecked recoverable call role = %v, want embed", s.Role)
	}
}

func TestOverwrittenReturnKillsCheck(t *testing.T) {
	res := analyze(t, `
int main() {
	int rc = socket();
	rc = 5;
	if (rc == -1) { return 1; }
	return 0;
}`)
	if s := siteFor(t, res, "socket"); s.Checked {
		t.Fatalf("overwritten return value still reported checked: %+v", s)
	}
}

func TestIrrecoverableIsBreakEvenWhenChecked(t *testing.T) {
	res := analyze(t, `
int main() {
	char buf[4];
	int rc = write(1, buf, 4);
	if (rc == -1) { return 1; }
	return 0;
}`)
	s := siteFor(t, res, "write")
	if !s.Checked {
		t.Fatalf("write check not detected")
	}
	if s.Role != analysis.RoleBreak {
		t.Fatalf("checked write role = %v, want break", s.Role)
	}
}

func TestVoidReturnIsEmbed(t *testing.T) {
	res := analyze(t, `
int main() {
	char buf[8];
	memset(buf, 0, 8);
	int n = strlen(buf);
	return n;
}`)
	if s := siteFor(t, res, "memset"); s.Role != analysis.RoleEmbed {
		t.Fatalf("memset role = %v, want embed", s.Role)
	}
	// strlen's return is returned, not branched on: not a check.
	if s := siteFor(t, res, "strlen"); s.Role != analysis.RoleEmbed {
		t.Fatalf("strlen role = %v, want embed", s.Role)
	}
}

func TestUnknownCallIsBreak(t *testing.T) {
	res := analyze(t, `
int main() {
	int rc = htons(80);
	if (rc == -1) { return 1; }
	return 0;
}`)
	// htons is modelled but not divertable → embed despite the check.
	if s := siteFor(t, res, "htons"); s.Role != analysis.RoleEmbed {
		t.Fatalf("htons role = %v, want embed", s.Role)
	}
}

func TestSiteIDsAreUniqueAndAssigned(t *testing.T) {
	src := `
int main() {
	int a = socket();
	if (a == -1) { return 1; }
	int b = socket();
	if (b == -1) { return 2; }
	char *p = malloc(8);
	if (!p) { return 3; }
	free(p);
	return 0;
}`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog, libmodel.Default())
	if len(res.Sites) != 4 {
		t.Fatalf("found %d sites, want 4", len(res.Sites))
	}
	seen := map[int]bool{}
	for _, s := range res.Sites {
		if s.ID <= 0 || seen[s.ID] {
			t.Fatalf("bad/duplicate site ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	if prog.NumSites != 5 {
		t.Fatalf("NumSites = %d, want 5", prog.NumSites)
	}
	gates, embeds, breaks := res.Counts()
	if gates != 3 || embeds != 1 || breaks != 0 {
		t.Fatalf("counts = %d/%d/%d, want 3 gates, 1 embed, 0 breaks", gates, embeds, breaks)
	}
}

func TestCheckAcrossJump(t *testing.T) {
	// A call whose result is branched on as a loop condition: the branch
	// sits one unconditional jump away.
	res := analyze(t, `
int main() {
	char buf[8];
	int total = 0;
	int n = read(0, buf, 8);
	while (n > 0) {
		total += n;
		n = 0;
	}
	return total;
}`)
	if s := siteFor(t, res, "read"); !s.Checked {
		t.Fatalf("loop-condition check not detected: %+v", s)
	}
}

func TestPaperListing1Pattern(t *testing.T) {
	// The running example from the paper (Listing 1): setsockopt and
	// bind, both checked, both gates.
	res := analyze(t, `
int ngx_close_socket(int s) { return close(s); }
int main() {
	int s = socket();
	int reuseaddr = 1;
	int ret_s = setsockopt(s, 2, reuseaddr);
	if (ret_s == -1) {
		printf("setsockopt() failed");
		if (ngx_close_socket(s) == -1) {
			printf("ngx_close_socket failed");
		}
		return -1;
	}
	int ret_b = bind(s, 8080);
	if (ret_b == -1) {
		int err = errno();
		printf("bind() failed");
		if (ngx_close_socket(s) == -1) {
			printf("ngx_close_socket_n failed");
		}
		if (err != 98) {
			return -1;
		}
	}
	return 0;
}`)
	for _, name := range []string{"setsockopt", "bind", "close"} {
		s := siteFor(t, res, name)
		if s.Role != analysis.RoleGate {
			t.Errorf("%s role = %v (checked=%v), want gate", name, s.Role, s.Checked)
		}
	}
	// printf results are ignored → embedded.
	if s := siteFor(t, res, "printf"); s.Role != analysis.RoleEmbed {
		t.Errorf("printf role = %v, want embed", s.Role)
	}
}
