package core

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/minic"
	"github.com/firestarter-go/firestarter/internal/obsv"
	"github.com/firestarter-go/firestarter/internal/transform"
)

// newLadderRuntime builds a hardened runtime around a tiny program with
// at least one gate site, so escalation-ladder paths can be exercised by
// rigging the crash state directly (several of them — rollback failure,
// shed exhaustion — cannot be reached through ordinary execution).
func newLadderRuntime(t *testing.T, cfg Config) (*Runtime, *interp.Machine) {
	t.Helper()
	src := `
int main() {
	char *p = malloc(16);
	if (!p) { return 1; }
	free(p);
	return 0;
}
`
	prog, err := minic.Compile(src, minic.Config{KnownLib: libsim.Known})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := transform.Apply(prog, nil)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	o := libsim.New(mem.NewSpace())
	rt := New(tr, o, cfg)
	m, err := interp.New(tr.Prog, o, rt)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	rt.Attach(m)
	return rt, m
}

func findSpan(rt *Runtime, kind string) (obsv.SpanEvent, bool) {
	for _, e := range rt.Spans() {
		if e.Kind == kind {
			return e, true
		}
	}
	return obsv.SpanEvent{}, false
}

func TestShedAbsorbsCrashOutsideTransaction(t *testing.T) {
	rt, m := newLadderRuntime(t, Config{})
	rt.EnableSpans()
	rt.ArmQuiesce(m)
	if !rt.QuiesceArmed() {
		t.Fatal("quiesce not armed")
	}

	if act := rt.handleCrash(m, nil); act != interp.ActionContinue {
		t.Fatalf("action = %v, want continue", act)
	}
	s := rt.Stats()
	if s.Sheds != 1 || s.Unrecovered != 0 {
		t.Fatalf("sheds = %d, unrecovered = %d", s.Sheds, s.Unrecovered)
	}
	// No connection was being served, so nothing was torn down.
	if s.ShedConnsLost != 0 {
		t.Fatalf("shed closed a connection that does not exist: %+v", s)
	}
	if _, ok := findSpan(rt, obsv.SpanShed); !ok {
		t.Error("no shed span emitted")
	}
}

func TestShedExhaustionEscalatesToDeath(t *testing.T) {
	rt, m := newLadderRuntime(t, Config{MaxSheds: 1})
	rt.EnableSpans()
	rt.ArmQuiesce(m)

	if act := rt.handleCrash(m, nil); act != interp.ActionContinue {
		t.Fatalf("first crash: action = %v, want continue (shed)", act)
	}
	if act := rt.handleCrash(m, nil); act != interp.ActionDie {
		t.Fatalf("second crash: action = %v, want die (sheds exhausted)", act)
	}
	s := rt.Stats()
	if s.Sheds != 1 || s.Unrecovered != 1 {
		t.Fatalf("sheds = %d, unrecovered = %d", s.Sheds, s.Unrecovered)
	}
	if _, ok := findSpan(rt, obsv.SpanUnrecovered); !ok {
		t.Error("no unrecovered span for the post-exhaustion death")
	}
}

func TestShedOnPersistentFaultWithoutInjectableGate(t *testing.T) {
	rt, m := newLadderRuntime(t, Config{RetryTransient: 1})
	rt.EnableSpans()
	rt.ArmQuiesce(m)

	// Rig a crashing STM transaction at a site whose gate cannot divert:
	// already-injected sites take the same no-gate escalation path.
	site := 1
	rt.undo.Begin()
	rt.cur = &txState{site: site, variant: ir.TxSTM, snap: m.Snapshot()}
	rt.gs[site].crashes = 1 // next crash exceeds RetryTransient
	rt.gs[site].injected = true

	if act := rt.handleCrash(m, nil); act != interp.ActionContinue {
		t.Fatalf("action = %v, want continue (shed)", act)
	}
	s := rt.Stats()
	if s.Crashes != 1 || s.Sheds != 1 || s.Unrecovered != 0 {
		t.Fatalf("crashes = %d, sheds = %d, unrecovered = %d", s.Crashes, s.Sheds, s.Unrecovered)
	}
	// The crash episode is closed: the site starts fresh if it crashes
	// again after the shed.
	if rt.gs[site].crashes != 0 || rt.gs[site].injected {
		t.Errorf("crash episode not reset: %+v", rt.gs[site])
	}
	e, ok := findSpan(rt, obsv.SpanShed)
	if !ok {
		t.Fatal("no shed span emitted")
	}
	if e.Site != site {
		t.Errorf("shed span site = %d, want %d", e.Site, site)
	}
}

// TestRollbackFailureIsVisiblyUnrecovered is the regression test for the
// silent-death bug: a failed undo-log rollback incremented Unrecovered
// but emitted no event, so the death never appeared in the trace or span
// log. It must die visibly — even with shedding armed, because the heap
// is inconsistent.
func TestRollbackFailureIsVisiblyUnrecovered(t *testing.T) {
	rt, m := newLadderRuntime(t, Config{})
	rt.EnableSpans()
	rt.ArmQuiesce(m)

	// An STM transaction whose undo log was never begun: Rollback fails.
	rt.cur = &txState{site: 1, variant: ir.TxSTM, snap: m.Snapshot()}

	if act := rt.handleCrash(m, nil); act != interp.ActionDie {
		t.Fatalf("action = %v, want die", act)
	}
	s := rt.Stats()
	if s.Unrecovered != 1 || s.Sheds != 0 {
		t.Fatalf("unrecovered = %d, sheds = %d", s.Unrecovered, s.Sheds)
	}
	e, ok := findSpan(rt, obsv.SpanUnrecovered)
	if !ok {
		t.Fatal("rollback failure emitted no unrecovered span")
	}
	if !strings.Contains(e.Detail, "rollback") {
		t.Errorf("unrecovered span does not name the rollback failure: %+v", e)
	}
}
