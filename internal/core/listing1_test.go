package core_test

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/libsim"
)

// The paper's running example (Listing 1): Nginx's setsockopt/bind startup
// sequence with its real error handling. These tests reproduce §V-C's
// walk-through: a crash between setsockopt and bind rolls back, the
// compensation action reverts setsockopt, the injected -1 diverts into the
// handler which closes the socket and returns NGX_ERROR.
const listing1Src = `
int NGX_ERROR = -1;
int crash_between = 0;

int ngx_close_socket(int s) {
	return close(s);
}

int open_listening_socket() {
	int s = socket();
	if (s == -1) {
		puts("socket() failed");
		return NGX_ERROR;
	}
	int reuseaddr = 1;
	int ret_s = setsockopt(s, 2, reuseaddr);
	if (ret_s == -1) {                        // Error handling
		puts("setsockopt() failed");
		if (ngx_close_socket(s) == -1) {
			puts("ngx_close_socket failed");
		}
		return NGX_ERROR;
	}
	if (crash_between) {
		int *p = NULL;
		*p = 1;                               // persistent fault in the interval
	}
	int ret_b = bind(s, 8080);
	if (ret_b == -1) {                        // Error handling
		int err = errno();
		puts("bind() failed");
		if (ngx_close_socket(s) == -1) {
			puts("ngx_close_socket_n failed");
		}
		if (err != 98) {                      // NGX_EADDRINUSE
			return NGX_ERROR;
		}
		return NGX_ERROR;
	}
	return s;
}

int main() {
	int s = open_listening_socket();
	if (s == NGX_ERROR) { return 100; }
	close(s);
	return 0;
}`

func TestListing1CleanRun(t *testing.T) {
	h := newHarness(t, listing1Src, core.Config{})
	h.runToExit(t, 0)
	if st := h.rt.Stats(); st.Crashes != 0 || st.Injections != 0 {
		t.Errorf("clean run produced recovery events: %+v", st)
	}
	if h.os.OpenFDs() != 0 {
		t.Errorf("descriptor leak: %d", h.os.OpenFDs())
	}
}

func TestListing1CrashBetweenCalls(t *testing.T) {
	// Enable the persistent fault in the setsockopt–bind interval via the
	// global flag (patched in simulated memory before the run).
	h := newHarness(t, strings.Replace(listing1Src, "int crash_between = 0;", "int crash_between = 1;", 1), core.Config{})
	h.runToExit(t, 100)

	st := h.rt.Stats()
	if st.Injections != 1 {
		t.Fatalf("injections = %d, want 1 (into setsockopt)", st.Injections)
	}
	// §V-C: the handler logs the failure and closes the socket; the
	// injected error must have percolated as NGX_ERROR (exit 100).
	out := h.os.Stdout()
	if !strings.Contains(out, "setsockopt() failed") {
		t.Errorf("handler did not run: stdout = %q", out)
	}
	// ngx_close_socket succeeded (the fd was still open — the
	// compensation reverted the option, not the descriptor).
	if strings.Contains(out, "ngx_close_socket failed") {
		t.Errorf("close in handler failed: %q", out)
	}
	if h.os.OpenFDs() != 0 {
		t.Errorf("descriptor leak after recovery: %d", h.os.OpenFDs())
	}
	// Errno carries the documented code (setsockopt injects EINVAL).
	if h.os.Errno != libsim.EINVAL {
		t.Errorf("errno = %d, want EINVAL", h.os.Errno)
	}
}

func TestListing1BindErrnoPath(t *testing.T) {
	// The genuine EADDRINUSE path of Listing 1, no recovery involved: a
	// second program binding the same port must reach the err != 98
	// check with errno intact through the hardened runtime.
	src := `
int main() {
	int s1 = socket();
	if (bind(s1, 8080) == -1) { return 1; }
	int s2 = socket();
	int ret_b = bind(s2, 8080);
	if (ret_b == -1) {
		int err = errno();
		puts("bind() failed");
		if (close(s2) == -1) {
			puts("close failed");
		}
		if (err != 98) {
			return 2;
		}
		return 50;      // EADDRINUSE: the continue path
	}
	return 3;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 50)
	if st := h.rt.Stats(); st.Injections != 0 {
		t.Errorf("genuine error confused with injection: %+v", st)
	}
}
