package core_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/obsv"
)

// crashStormSrc crashes once per loop iteration: every malloc is followed
// by a persistent null dereference, so each pass runs the full recovery
// story (HTM abort, STM crash, retry, crash, inject) until the injected
// ENOMEM diverts into the handled branch.
const crashStormSrc = `
int main() {
	int handled = 0;
	for (int i = 0; i < 20; i++) {
		char *p = malloc(64);
		if (!p) {
			handled++;
			continue;
		}
		int *q = NULL;
		*q = 1;
		free(p);
	}
	return handled;
}`

// TestTraceTruncationIsSurfaced drives a crash storm past a tiny trace
// cap: the trace must end with a terminal truncated marker carrying the
// dropped count instead of losing events silently (the old behaviour).
func TestTraceTruncationIsSurfaced(t *testing.T) {
	h := newHarness(t, crashStormSrc, core.Config{TraceLimit: 8})
	h.rt.EnableTrace()
	h.runToExit(t, 20)

	if h.rt.TraceDropped() == 0 {
		t.Fatal("crash storm did not overflow the trace; raise the storm or lower the cap")
	}
	events := h.rt.Trace()
	if len(events) != 8+1 {
		t.Fatalf("got %d events, want cap 8 + 1 marker", len(events))
	}
	last := events[len(events)-1]
	if last.Kind != core.EvTruncated {
		t.Fatalf("last event = %v, want truncated marker", last)
	}
	if !strings.Contains(last.Detail, "dropped=") || !strings.Contains(last.Detail, "limit=8") {
		t.Errorf("marker detail = %q, want dropped count and limit", last.Detail)
	}
	rendered := h.rt.RenderTrace()
	if !strings.Contains(rendered, "truncated") || !strings.Contains(rendered, "dropped=") {
		t.Errorf("RenderTrace does not surface truncation:\n%s", rendered)
	}
	if strings.Count(rendered, "\n") != len(events) {
		t.Errorf("rendered %d lines for %d events", strings.Count(rendered, "\n"), len(events))
	}
}

// TestSpansRecordTransactionLifecycle checks the structured span log: with
// EnableSpans every transaction contributes a begin and a commit event,
// abort events carry their cause, and the JSONL export parses.
func TestSpansRecordTransactionLifecycle(t *testing.T) {
	src := `
int main() {
	char *p = malloc(64);
	if (!p) { return 1; }
	memset(p, 7, 64);
	free(p);
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.rt.EnableSpans()
	h.runToExit(t, 0)

	spans := h.rt.Spans()
	var begins, commits int
	for _, e := range spans {
		switch e.Kind {
		case obsv.SpanBegin:
			begins++
			if e.Variant == "" {
				t.Errorf("begin span without variant: %+v", e)
			}
		case obsv.SpanCommit:
			commits++
		}
	}
	st := h.rt.Stats()
	wantBegins := st.HTMBegins + st.STMBegins
	if int64(begins) != wantBegins {
		t.Errorf("begin spans = %d, want %d (HTM %d + STM %d)",
			begins, wantBegins, st.HTMBegins, st.STMBegins)
	}
	wantCommits := st.HTMCommits + st.STMCommits
	if int64(commits) != wantCommits {
		t.Errorf("commit spans = %d, want %d", commits, wantCommits)
	}

	var buf bytes.Buffer
	if err := h.rt.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(spans) {
		t.Fatalf("JSONL lines = %d, spans = %d", len(lines), len(spans))
	}
	var lastCycles int64 = -1
	for _, line := range lines {
		var e obsv.SpanEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("invalid span JSONL %q: %v", line, err)
		}
		if e.Cycles < lastCycles {
			t.Fatalf("span cycles went backwards: %q", line)
		}
		lastCycles = e.Cycles
	}
}

// TestSpanAbortsCarryCause checks that abort span events name the abort
// cause (capacity/interrupt/conflict/explicit).
func TestSpanAbortsCarryCause(t *testing.T) {
	h := newHarness(t, crashStormSrc, core.Config{})
	h.rt.EnableSpans()
	h.runToExit(t, 20)
	found := false
	for _, e := range h.rt.Spans() {
		if e.Kind == obsv.SpanAbort {
			found = true
			if e.Cause == "" {
				t.Fatalf("abort span without cause: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("crash storm recorded no abort spans")
	}
}

// TestPublishMetricsReconciles runs a crashy workload and checks the
// tentpole's reconciliation criterion: registry totals must equal the
// hand-rolled core.Stats / htm.Stats counters exactly.
func TestPublishMetricsReconciles(t *testing.T) {
	h := newHarness(t, crashStormSrc, core.Config{})
	h.runToExit(t, 20)

	reg := obsv.NewRegistry()
	h.rt.PublishMetrics(reg, obsv.L("thread", "0"))

	st := h.rt.Stats()
	hs := h.rt.HTMStats()
	ss := h.rt.STMStats()
	checks := []struct {
		name string
		want int64
	}{
		{"core.gate_execs", st.GateExecs},
		{"core.htm_begins", st.HTMBegins},
		{"core.stm_begins", st.STMBegins},
		{"core.stm_commits", st.STMCommits},
		{"core.htm_aborts", st.HTMAborts},
		{"core.crashes", st.Crashes},
		{"core.retries", st.Retries},
		{"core.injections", st.Injections},
		{"core.unrecovered", st.Unrecovered},
		{"htm.begins", hs.Begins},
		{"htm.aborts", hs.Aborts},
		{"htm.aborts_explicit", hs.ByExplcit},
		{"stm.begins", ss.Begins},
		{"stm.rollbacks", ss.Rollbacks},
		{"core.sites_gate", int64(len(st.GateSites))},
	}
	for _, c := range checks {
		if got := reg.Total(c.name); got != c.want {
			t.Errorf("registry %s = %d, want %d", c.name, got, c.want)
		}
	}
	if st.Crashes == 0 || st.Injections == 0 {
		t.Fatalf("workload not crashy enough to validate reconciliation: %+v", st)
	}
	// The latency histogram holds one sample per recovery.
	lat := reg.Histogram("core.recovery_latency_cycles", obsv.CycleBuckets, obsv.L("thread", "0"))
	if lat.Count != int64(len(st.LatencyCycles)) {
		t.Errorf("latency histogram count = %d, want %d samples", lat.Count, len(st.LatencyCycles))
	}
	var latSum int64
	for _, v := range st.LatencyCycles {
		latSum += v
	}
	if lat.Sum != latSum {
		t.Errorf("latency histogram sum = %d, want %d", lat.Sum, latSum)
	}
	// JSONL export parses line by line.
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid metrics JSONL %q: %v", line, err)
		}
	}
}

// TestProfilerAttributionSumsToMachineTotal attaches the guest profiler
// to a recovery-heavy run: snapshot restores, library calls and injected
// faults included, the per-function flat cycle attribution must sum to
// the machine's total charged cycles exactly.
func TestProfilerAttributionSumsToMachineTotal(t *testing.T) {
	h := newHarness(t, crashStormSrc, core.Config{})
	prof := obsv.NewProfile()
	h.m.SetProfiler(prof)
	h.runToExit(t, 20)
	prof.Finish(h.m.Cycles, h.m.Steps)

	if got := prof.TotalCycles(); got != h.m.Cycles {
		t.Fatalf("profiler total = %d cycles, machine charged %d", got, h.m.Cycles)
	}
	if got := prof.TotalSteps(); got != h.m.Steps {
		t.Fatalf("profiler steps = %d, machine retired %d", got, h.m.Steps)
	}
	var flatCycles, flatSteps int64
	sawMain, sawLib := false, false
	for _, f := range prof.Funcs() {
		flatCycles += f.FlatCycles
		flatSteps += f.FlatSteps
		if f.Name == "main" && !f.Lib {
			sawMain = true
		}
		if f.Lib && f.Name == "malloc" {
			sawLib = true
		}
	}
	if flatCycles != h.m.Cycles {
		t.Errorf("flat cycle sum = %d, want %d", flatCycles, h.m.Cycles)
	}
	if flatSteps != h.m.Steps {
		t.Errorf("flat step sum = %d, want %d", flatSteps, h.m.Steps)
	}
	if !sawMain || !sawLib {
		t.Errorf("profile missing expected rows (main=%v lib:malloc=%v):\n%s",
			sawMain, sawLib, prof.RenderTop(10))
	}
	// Library-site attribution is a partition of the library buckets.
	var siteCycles, libCycles int64
	for _, s := range prof.Sites() {
		siteCycles += s.Cycles
	}
	for _, f := range prof.Funcs() {
		if f.Lib {
			libCycles += f.FlatCycles
		}
	}
	if siteCycles != libCycles {
		t.Errorf("site cycles %d != library bucket cycles %d", siteCycles, libCycles)
	}
}
