package core_test

import (
	"strings"
	"testing"

	"github.com/firestarter-go/firestarter/internal/core"
)

func TestTraceRecordsRecoveryStory(t *testing.T) {
	src := `
int main() {
	char *p = malloc(64);
	if (!p) {
		puts("handled");
		return 9;
	}
	int *q = NULL;
	*q = 1;
	free(p);
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.rt.EnableTrace()
	h.runToExit(t, 9)

	events := h.rt.Trace()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	// Expected story: crash in HTM → htm-abort, crash under STM, retry,
	// crash again, inject.
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind.String())
	}
	story := strings.Join(kinds, " ")
	for _, want := range []string{"htm-abort", "crash", "retry", "inject"} {
		if !strings.Contains(story, want) {
			t.Errorf("trace %v missing %q", kinds, want)
		}
	}
	// The inject event names the gate's library call.
	found := false
	for _, e := range events {
		if e.Kind == core.EvInject {
			found = true
			if e.Call != "malloc" {
				t.Errorf("inject call = %q, want malloc", e.Call)
			}
			if !strings.Contains(e.Detail, "errno=12") {
				t.Errorf("inject detail = %q, want ENOMEM", e.Detail)
			}
		}
	}
	if !found {
		t.Fatal("no inject event")
	}
	// Cycles are monotonically non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Cycles < events[i-1].Cycles {
			t.Fatalf("trace cycles went backwards at %d: %v", i, events)
		}
	}
	// Rendering produces one line per event.
	rendered := h.rt.RenderTrace()
	if strings.Count(rendered, "\n") != len(events) {
		t.Errorf("rendered %d lines for %d events", strings.Count(rendered, "\n"), len(events))
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	src := `
int main() {
	char *p = malloc(64);
	if (!p) { return 9; }
	int *q = NULL;
	*q = 1;
	free(p);
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.runToExit(t, 9)
	if len(h.rt.Trace()) != 0 {
		t.Fatal("trace recorded without EnableTrace")
	}
}

func TestTraceUnrecoveredEvent(t *testing.T) {
	src := `
int main() {
	int *q = NULL;
	*q = 1;
	return 0;
}`
	h := newHarness(t, src, core.Config{})
	h.rt.EnableTrace()
	h.m.Run(1_000_000)
	events := h.rt.Trace()
	if len(events) != 1 || events[0].Kind != core.EvUnrecovered {
		t.Fatalf("events = %v, want one unrecovered", events)
	}
}
