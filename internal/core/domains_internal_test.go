package core

// Tests for the rewind-and-discard checkpoint strategy: the three-way
// §IV-C policy (HTM → STM → domains with back-off), the domain crash
// path (snapshot-restore while a domain-armed transaction is live), and
// cross-domain violation handling. Policy tests pin exact deterministic
// counts; the crash tests drive the real Gate/TxBegin/handleCrash path.

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/obsv"
)

// gateSite returns some gate site ID of the ladder program (its malloc).
func gateSite(t *testing.T, rt *Runtime) int {
	t.Helper()
	for id := range rt.gates {
		return id
	}
	t.Fatal("program has no gate sites")
	return 0
}

func TestUndoVolumeLatchesDomains(t *testing.T) {
	rt, _ := newLadderRuntime(t, Config{EnableDomains: true})
	rt.EnableSpans()
	site := gateSite(t, rt)
	st := rt.state(site)
	st.stmLatched = true

	// SampleSize defaults to 4: three heavy commits must not latch (the
	// sample window is not full), the fourth must. Mean undo volume
	// 30 >= DomainUndoMin default 24.
	for i := 0; i < 3; i++ {
		rt.stmCommitPolicy(site, 30)
		if st.domLatched {
			t.Fatalf("latched after %d commits, want 4", i+1)
		}
	}
	rt.stmCommitPolicy(site, 30)
	if !st.domLatched || !rt.GateLatchedDomains(site) {
		t.Fatal("undo volume did not latch domains")
	}
	if s := rt.Stats(); s.DomainLatches != 1 {
		t.Fatalf("DomainLatches = %d, want 1", s.DomainLatches)
	}
	if _, ok := findSpan(rt, obsv.SpanLatchDomains); !ok {
		t.Error("no latch-domains span")
	}

	// A latched gate stops sampling (counts stay pinned).
	rt.stmCommitPolicy(site, 1000)
	if s := rt.Stats(); s.DomainLatches != 1 {
		t.Fatalf("DomainLatches after re-sample = %d, want 1", s.DomainLatches)
	}
}

func TestLowUndoVolumeStaysSTM(t *testing.T) {
	rt, _ := newLadderRuntime(t, Config{EnableDomains: true})
	site := gateSite(t, rt)
	st := rt.state(site)
	st.stmLatched = true
	for i := 0; i < 8; i++ {
		rt.stmCommitPolicy(site, 10) // mean 10 < 24
	}
	if st.domLatched {
		t.Fatal("low undo volume latched domains")
	}
	if s := rt.Stats(); s.DomainLatches != 0 {
		t.Fatalf("DomainLatches = %d, want 0", s.DomainLatches)
	}
}

func TestCapacityAbortsLatchStraightToDomains(t *testing.T) {
	rt, _ := newLadderRuntime(t, Config{EnableDomains: true})
	rt.EnableTrace()
	site := gateSite(t, rt)
	st := rt.state(site)
	st.execs = 4

	// Four capacity aborts against four executions: at the fourth
	// (SampleSize boundary) the abort rate is 1.0 > θ and every abort is
	// a capacity abort, so the gate latches straight to domains — no STM
	// detour.
	for i := 0; i < 4; i++ {
		rt.noteHTMAbort(site, htm.AbortCapacity)
	}
	if !st.domLatched {
		t.Fatal("capacity-dominant aborts did not latch domains")
	}
	if st.stmLatched {
		t.Fatal("gate latched STM despite capacity-dominant aborts")
	}
	if s := rt.Stats(); s.DomainLatches != 1 {
		t.Fatalf("DomainLatches = %d, want 1", s.DomainLatches)
	}
}

func TestInterruptAbortsStillLatchSTM(t *testing.T) {
	rt, _ := newLadderRuntime(t, Config{EnableDomains: true})
	site := gateSite(t, rt)
	st := rt.state(site)
	st.execs = 4
	for i := 0; i < 4; i++ {
		rt.noteHTMAbort(site, htm.AbortInterrupt)
	}
	if st.domLatched {
		t.Fatal("interrupt aborts latched domains")
	}
	if !st.stmLatched {
		t.Fatal("gate did not latch STM")
	}
}

func TestDomainBackoffRelatchesSTMWithDoubledThreshold(t *testing.T) {
	rt, _ := newLadderRuntime(t, Config{EnableDomains: true})
	rt.EnableSpans()
	site := gateSite(t, rt)
	st := rt.state(site)
	st.domLatched = true

	// Each commit of a transaction whose arena overflowed into the heap
	// (fallbackMark below the manager's counter) counts one back-off
	// strike; the DomainBackoffMax'th (default 4) re-latches STM.
	overflowed := &txState{site: site, dom: true, fallbackMark: -1}
	for i := 0; i < 3; i++ {
		rt.domCommitPolicy(overflowed)
		if !st.domLatched {
			t.Fatalf("backed off after %d strikes, want 4", i+1)
		}
	}
	rt.domCommitPolicy(overflowed)
	if st.domLatched || !st.stmLatched {
		t.Fatalf("back-off state: dom=%v stm=%v", st.domLatched, st.stmLatched)
	}
	if st.undoMin != 48 {
		t.Fatalf("undoMin = %d, want doubled 48", st.undoMin)
	}
	if e, ok := findSpan(rt, obsv.SpanLatchSTM); !ok || e.Cause != "backoff" {
		t.Fatalf("latch-stm/backoff span missing (got %+v, %v)", e, ok)
	}

	// Returning to domains now needs the (cumulative) mean undo volume
	// over the doubled bar: 30 per commit (over the old 24) no longer
	// latches; pushing the running mean to (4*30+4*90)/8 = 60 >= 48 does.
	for i := 0; i < 4; i++ {
		rt.stmCommitPolicy(site, 30)
	}
	if st.domLatched {
		t.Fatal("re-latched below the doubled threshold")
	}
	for i := 0; i < 4; i++ {
		rt.stmCommitPolicy(site, 90)
	}
	if !st.domLatched {
		t.Fatal("did not re-latch above the doubled threshold")
	}
}

// armDomainTx drives the real Gate → TxBegin path to arm a domain
// transaction at the given gate, returning the live tx.
func armDomainTx(t *testing.T, rt *Runtime, m *interp.Machine, site int) *txState {
	t.Helper()
	snap := m.Snapshot()
	variant, inject, _ := rt.Gate(m, site, snap)
	if inject {
		t.Fatal("unexpected injection")
	}
	if variant != ir.TxHTM {
		t.Fatalf("domain gate variant = %d, want ir.TxHTM (%d)", variant, ir.TxHTM)
	}
	if err := rt.TxBegin(m, site, variant); err != nil {
		t.Fatalf("TxBegin: %v", err)
	}
	tx := rt.cur
	if tx == nil || !tx.dom || tx.htmTx != nil {
		t.Fatalf("armed tx = %+v, want domain-armed", tx)
	}
	return tx
}

func TestSnapshotRestoreDuringDomainArmedTransaction(t *testing.T) {
	rt, m := newLadderRuntime(t, Config{Mode: ModeRewind})
	rt.EnableSpans()
	site := gateSite(t, rt)

	// Pre-transaction arena state: one chunk holding 7.
	pre, err := rt.os.ArenaAlloc(32)
	if err != nil || pre == 0 {
		t.Fatalf("pre-tx ArenaAlloc: %#x %v", pre, err)
	}
	if err := rt.os.Space.Store(pre, 7, 8); err != nil {
		t.Fatal(err)
	}

	tx := armDomainTx(t, rt, m, site)
	if tx.arenaMark != 32 {
		t.Fatalf("arenaMark = %d, want 32", tx.arenaMark)
	}

	// In-transaction allocation and stores route raw (no undo logging).
	in, _ := rt.os.ArenaAlloc(48)
	if err := rt.Store(m, in, 9, 8, false); err != nil {
		t.Fatal(err)
	}
	if rt.STMStats().TotalStores != 0 {
		t.Fatal("domain transaction logged undo entries")
	}

	// Crash: registers restore from the snapshot, the arena rewinds to
	// the mark in O(1), and the episode retries under the same strategy.
	if act := rt.handleCrash(m, nil); act != interp.ActionContinue {
		t.Fatalf("action = %v, want continue", act)
	}
	s := rt.Stats()
	if s.Crashes != 1 || s.DomainDiscards != 1 || s.Retries != 1 {
		t.Fatalf("crashes=%d discards=%d retries=%d, want 1/1/1", s.Crashes, s.DomainDiscards, s.Retries)
	}
	if v, _ := rt.os.Space.Load(pre, 8); v != 7 {
		t.Fatalf("pre-tx chunk = %d, want 7 (survived)", v)
	}
	if v, _ := rt.os.Space.Load(in, 8); v != 0 {
		t.Fatalf("in-tx chunk = %d, want 0 (rewound)", v)
	}
	if !rt.state(site).oneShotDom {
		t.Fatal("retry not armed under the domain strategy")
	}
	if _, ok := findSpan(rt, obsv.SpanDomainDiscard); !ok {
		t.Error("no domain-discard span")
	}

	// The retry commits: pinned counters across the whole episode.
	tx2 := armDomainTx(t, rt, m, site)
	if tx2.arenaMark != 32 {
		t.Fatalf("retry arenaMark = %d, want 32 (rewound)", tx2.arenaMark)
	}
	if err := rt.TxEnd(m); err != nil {
		t.Fatalf("TxEnd: %v", err)
	}
	s = rt.Stats()
	if s.DomainBegins != 2 || s.DomainCommits != 1 || s.DomainDiscards != 1 {
		t.Fatalf("begins=%d commits=%d discards=%d, want 2/1/1", s.DomainBegins, s.DomainCommits, s.DomainDiscards)
	}
}

func TestDomainViolationTrapsAsCrashCause(t *testing.T) {
	rt, m := newLadderRuntime(t, Config{Mode: ModeRewind, RetryTransient: 1})
	rt.EnableSpans()
	site := gateSite(t, rt)
	if _, err := rt.os.ArenaAlloc(16); err != nil {
		t.Fatal(err)
	}
	armDomainTx(t, rt, m, site)

	trap := &interp.Trap{Code: ir.TrapDomain, Addr: 0x6000_0040}
	if act := rt.Handle(m, trap); act != interp.ActionContinue {
		t.Fatalf("action = %v, want continue", act)
	}
	s := rt.Stats()
	if s.DomainViolations != 1 || s.Crashes != 1 {
		t.Fatalf("violations=%d crashes=%d, want 1/1", s.DomainViolations, s.Crashes)
	}

	// Span order is the lintable contract: violation, then the crash it
	// becomes (variant domain, cause domain-violation), then the discard.
	var seq []string
	for _, e := range rt.Spans() {
		switch e.Kind {
		case obsv.SpanDomainViolation, obsv.SpanCrash, obsv.SpanDomainDiscard:
			seq = append(seq, e.Kind)
			if e.Kind == obsv.SpanCrash && (e.Variant != "domain" || e.Cause != "domain-violation") {
				t.Errorf("crash span = %+v", e)
			}
		}
	}
	want := []string{obsv.SpanDomainViolation, obsv.SpanCrash, obsv.SpanDomainDiscard}
	if len(seq) != 3 || seq[0] != want[0] || seq[1] != want[1] || seq[2] != want[2] {
		t.Fatalf("span sequence = %v, want %v", seq, want)
	}
}
