package core_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/htm"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// TestGenuineOOMIsNotConfusedWithInjection exhausts the allocator for
// real: the application's out-of-memory path must run without the
// recovery machinery counting crashes or injections, and later requests
// must succeed once memory frees up.
func TestGenuineOOMIsNotConfusedWithInjection(t *testing.T) {
	src := `
int main() {
	int served = 0;
	int failed = 0;
	for (int i = 0; i < 6; i++) {
		char *p = malloc(1024);
		if (!p) {
			puts("oom");
			failed++;
			continue;
		}
		memset(p, 1, 1024);
		served++;
		free(p);
	}
	return served * 10 + failed;
}`
	h := newHarness(t, src, core.Config{})
	// Fail the third allocation for real (allocator-level, like a
	// genuinely full heap).
	h.os.OOMAfter = 3
	h.runToExit(t, 51) // 5 served, 1 failed
	st := h.rt.Stats()
	if st.Crashes != 0 || st.Injections != 0 || st.Unrecovered != 0 {
		t.Errorf("genuine OOM produced recovery events: %+v", st)
	}
}

// TestEnduranceUnderCombinedStress runs the full gauntlet at once: a
// planted persistent fault, aggressive modelled interrupts, capacity
// aborts from large transfers, and hundreds of keep-alive requests. The
// hardened server must stay up, keep answering, and leak neither memory
// nor descriptors.
func TestEnduranceUnderCombinedStress(t *testing.T) {
	app := apps.Nginx()
	prog, err := app.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Persistent fault in the SSI substitution region.
	var ref *faultinj.BlockRef
	f := prog.Funcs["serve_ssi"]
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Name == "memcpy" {
				ref = &faultinj.BlockRef{Func: "serve_ssi", Block: b.ID}
			}
		}
	}
	if ref == nil {
		t.Fatal("no memcpy block in serve_ssi")
	}
	fp, err := faultinj.Apply(prog, faultinj.Fault{
		ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transform.Apply(fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	app.Setup(o)
	rt := core.New(tr, o, core.Config{
		HTM: htm.Config{MeanInstrsPerInterrupt: 20_000, Seed: 3},
	})
	m, err := interp.New(tr.Prog, o, rt)
	if err != nil {
		t.Fatal(err)
	}
	rt.Attach(m)

	d := &workload.Driver{
		OS: o, M: m, Port: app.Port,
		Gen:         workload.TestSuiteHTTPMix(), // includes the poisoned /ssi
		Concurrency: 6, Seed: 3,
	}
	res := d.Run(600)
	if res.ServerDied {
		t.Fatalf("server died under stress (trap %d)", res.TrapCode)
	}
	if res.Completed < 500 {
		t.Fatalf("completed %d/600 (bad %d, stalled %v)", res.Completed, res.BadResp, res.Stalled)
	}
	st := rt.Stats()
	if st.Injections == 0 {
		t.Error("poisoned route never triggered an injection")
	}
	if rt.HTMStats().ByIntr == 0 {
		t.Error("no interrupt aborts at mean gap 20k")
	}
	if st.Unrecovered != 0 {
		t.Errorf("unrecovered crashes: %d", st.Unrecovered)
	}
	// Long-run hygiene: the per-connection state may be live, but heap
	// usage must stay bounded (no leak per recovery).
	if live := o.Heap().LiveBytes(); live > 64*1024 {
		t.Errorf("heap grew to %d live bytes after 600 requests", live)
	}
	t.Logf("stress: %d completed, %d crashes, %d injections, %d HTM aborts, %d STM txs",
		res.Completed, st.Crashes, st.Injections, st.HTMAborts, st.STMBegins)
}

// TestRecoveryPreservesApplicationState drives the Redis analog, poisons
// it with a crash in the SET path, and checks the keys stored *before*
// the crash survive recovery — the state-preserving claim of the paper's
// abstract.
func TestRecoveryPreservesApplicationState(t *testing.T) {
	app := apps.Redis()
	prog, err := app.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transform.Apply(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	rt := core.New(tr, o, core.Config{})
	m, err := interp.New(tr.Prog, o, rt)
	if err != nil {
		t.Fatal(err)
	}
	rt.Attach(m)

	if out := m.Run(5_000_000); out.Kind != interp.OutBlocked {
		t.Fatalf("startup: %v", out.Kind)
	}
	c := o.Connect(app.Port)

	send := func(cmd string) string {
		c.ClientDeliver([]byte(cmd))
		if out := m.Run(50_000_000); out.Kind == interp.OutTrapped {
			t.Fatalf("server died on %q", cmd)
		}
		return string(c.ClientTake())
	}
	if got := send("SET durable before-crash\n"); got != "+OK\n" {
		t.Fatalf("SET = %q", got)
	}
	// A command whose value is huge enough to exhaust the allocator is a
	// graceful error; instead cause a real crash: a wild DEL through
	// corrupted state is hard to stage externally, so use the OOM knob to
	// push the server through its malloc error path first...
	o.OOMAfter = 1
	if got := send("SET other value\n"); got != "-OOM\n" {
		t.Fatalf("OOM SET = %q", got)
	}
	// ...and verify pre-existing state is intact afterwards.
	if got := send("GET durable\n"); got != "$before-crash\n" {
		t.Fatalf("GET after error = %q", got)
	}
	if st := rt.Stats(); st.Unrecovered != 0 {
		t.Errorf("unrecovered: %+v", st)
	}
}

// TestStatePreservedAcrossRealCrash plants a genuine persistent crash in
// the Redis analog's INCR handler. Recovery diverts the last boundary
// call (the command read) with ECONNRESET, the server drops that
// connection — and the keys stored before the crash remain readable on a
// fresh connection: state-preserving recovery under a real fail-stop bug.
func TestStatePreservedAcrossRealCrash(t *testing.T) {
	app := apps.Redis()
	prog, err := app.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// The INCR branch calls the user function itoa_r: plant the fault in
	// that dispatch block.
	var ref *faultinj.BlockRef
	ex := prog.Funcs["execute"]
	for _, b := range ex.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpCall && in.Name == "itoa_r" {
				ref = &faultinj.BlockRef{Func: "execute", Block: b.ID}
			}
		}
	}
	if ref == nil {
		t.Fatal("no itoa_r dispatch block in execute")
	}
	fp, err := faultinj.Apply(prog, faultinj.Fault{
		ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transform.Apply(fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	rt := core.New(tr, o, core.Config{})
	m, err := interp.New(tr.Prog, o, rt)
	if err != nil {
		t.Fatal(err)
	}
	rt.Attach(m)

	if out := m.Run(5_000_000); out.Kind != interp.OutBlocked {
		t.Fatalf("startup: %v", out.Kind)
	}
	ask := func(c *libsim.Conn, cmd string) string {
		c.ClientDeliver([]byte(cmd))
		if out := m.Run(50_000_000); out.Kind == interp.OutTrapped {
			t.Fatalf("server died on %q", cmd)
		}
		return string(c.ClientTake())
	}

	c1 := o.Connect(app.Port)
	// The planted fault sits on INCR's existing-key path: the first INCR
	// creates the key (no crash), the second one crashes persistently.
	if got := ask(c1, "SET durable gold\nINCR counter\n"); got != "+OK\n:1\n" {
		t.Fatalf("setup commands = %q", got)
	}
	got := ask(c1, "INCR counter\n")
	t.Logf("poisoned INCR response: %q (connection may have been dropped)", got)
	st := rt.Stats()
	if st.Crashes == 0 || st.Injections == 0 {
		t.Fatalf("no recovery happened: %+v", st)
	}
	if st.Unrecovered != 0 {
		t.Fatalf("unrecovered: %+v", st)
	}

	// Fresh connection: pre-crash state intact, non-INCR service normal.
	c2 := o.Connect(app.Port)
	if c2 == nil {
		t.Fatal("reconnect failed")
	}
	if got := ask(c2, "GET durable\n"); got != "$gold\n" {
		t.Fatalf("durable key after crash = %q, want $gold", got)
	}
	if got := ask(c2, "SET post recovery\n"); got != "+OK\n" {
		t.Fatalf("SET after crash = %q", got)
	}
	if got := ask(c2, "GET post\n"); got != "$recovery\n" {
		t.Fatalf("GET after crash = %q", got)
	}
}
