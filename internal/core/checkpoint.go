package core

import (
	"github.com/firestarter-go/firestarter/internal/interp"
)

// The checkpoint ring is the rr-style half of the record/replay layer
// (internal/replay): with EnableCheckpoints armed, the runtime captures
// a registers snapshot plus a memory digest every K cycles, keeping the
// last N in a ring. Reverse-step restores "the nearest checkpoint" the
// only way a simulated world allows — by re-executing the deterministic
// run from boot — and uses the ring entries as verified anchors: a
// re-execution whose ring disagrees with the recording's has diverged.
//
// Checkpoints ride the per-instruction Tick the tree walker already
// issues, so they fire regardless of transaction state — including mid
// transaction. Disabled (the default) they cost one predictable branch
// per tick and change no observable behaviour.

// Checkpoint is one entry of the periodic snapshot ring.
type Checkpoint struct {
	Cycles int64 // machine cycle count at capture
	Steps  int64 // retired instruction count at capture
	Regs   *interp.Snapshot
	// RegDigest/MemDigest identify the captured state for comparison
	// without holding the other run's snapshot.
	RegDigest uint64
	MemDigest uint64
	Func      string // function on top of the stack
	Depth     int    // call-stack depth
	InTx      bool   // captured inside a live crash transaction
}

// EnableCheckpoints arms periodic state capture: one checkpoint at the
// first tick at or past every multiple of every cycles, keeping the most
// recent ring entries. every <= 0 disarms; ring <= 0 defaults to 64.
func (rt *Runtime) EnableCheckpoints(every int64, ring int) {
	if every <= 0 {
		rt.ckptEvery, rt.ckptRing = 0, nil
		return
	}
	if ring <= 0 {
		ring = 64
	}
	rt.ckptEvery = every
	rt.ckptNext = every
	rt.ckptRing = make([]Checkpoint, 0, ring)
	rt.ckptCap = ring
	rt.ckptHead = 0
}

// Checkpoints returns the ring's live entries, oldest first.
func (rt *Runtime) Checkpoints() []Checkpoint {
	n := len(rt.ckptRing)
	out := make([]Checkpoint, 0, n)
	// ckptHead is the next write slot; when the ring has wrapped the
	// oldest entry lives there.
	start := 0
	if n == rt.ckptCap {
		start = rt.ckptHead
	}
	for i := 0; i < n; i++ {
		out = append(out, rt.ckptRing[(start+i)%n])
	}
	return out
}

// InTransaction reports whether a crash transaction is currently live —
// the replay layer's state dumps record it so a forensic stop can tell
// "inside the protected window" from "between transactions".
func (rt *Runtime) InTransaction() bool { return rt.cur != nil }

// checkpoint captures the machine state into the ring (called from Tick
// when the cycle threshold is crossed).
func (rt *Runtime) checkpoint(m *interp.Machine) {
	snap := m.Snapshot()
	c := Checkpoint{
		Cycles:    m.Cycles,
		Steps:     m.Steps,
		Regs:      snap,
		RegDigest: snap.Digest(),
		MemDigest: rt.os.Space.Digest(),
		Func:      m.CurrentFunc(),
		Depth:     m.Depth(),
		InTx:      rt.cur != nil,
	}
	if len(rt.ckptRing) < rt.ckptCap {
		rt.ckptRing = append(rt.ckptRing, c)
		rt.ckptHead = len(rt.ckptRing) % rt.ckptCap
		return
	}
	rt.ckptRing[rt.ckptHead] = c
	rt.ckptHead = (rt.ckptHead + 1) % rt.ckptCap
}
