package core_test

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/apps"
	"github.com/firestarter-go/firestarter/internal/core"
	"github.com/firestarter-go/firestarter/internal/faultinj"
	"github.com/firestarter-go/firestarter/internal/interp"
	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/mem"
	"github.com/firestarter-go/firestarter/internal/transform"
	"github.com/firestarter-go/firestarter/internal/workload"
)

// TestCriticalPathFaultCostsAvailabilityNotSurvival reproduces the paper's
// §VII limitation: a persistent fault in the event-processing loop (the
// critical path) cannot be meaningfully bypassed. FIRestarter still
// converts every crash into an injected epoll_wait error — the server
// never dies — but the error handler's retry loop makes no progress, so
// availability is lost: the workload driver stalls with zero completions.
func TestCriticalPathFaultCostsAvailabilityNotSurvival(t *testing.T) {
	app := apps.Nginx()
	prog, err := app.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Plant the fault in the event-dispatch block of the main loop (the
	// block that calls on_accept), inside the epoll_wait transaction.
	var ref *faultinj.BlockRef
	main := prog.Funcs["main"]
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpCall && in.Name == "on_accept" {
				ref = &faultinj.BlockRef{Func: "main", Block: b.ID}
			}
		}
	}
	if ref == nil {
		t.Fatal("no on_accept dispatch block found")
	}
	fp, err := faultinj.Apply(prog, faultinj.Fault{
		ID: 1, Kind: faultinj.FailStop, Func: ref.Func, Block: ref.Block, Index: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transform.Apply(fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := libsim.New(mem.NewSpace())
	app.Setup(o)
	rt := core.New(tr, o, core.Config{})
	m, err := interp.New(tr.Prog, o, rt)
	if err != nil {
		t.Fatal(err)
	}
	rt.Attach(m)

	d := &workload.Driver{
		OS: o, M: m, Port: app.Port,
		Gen:         workload.DefaultHTTPMix(),
		Concurrency: 2, Seed: 1,
		// Small slices: the recovery loop spins without progress, so
		// give the driver short turns before it detects the stall.
		StepBudget: 150_000,
	}
	res := d.Run(10)

	// Survival: yes. Availability: no.
	if res.ServerDied {
		t.Fatalf("server died (trap %d) — critical-path crash should still be absorbed", res.TrapCode)
	}
	if res.Completed != 0 {
		t.Fatalf("completed %d requests through a disabled event loop", res.Completed)
	}
	if !res.Stalled {
		t.Fatal("driver did not report the availability loss")
	}
	st := rt.Stats()
	if st.Injections == 0 {
		t.Error("no injections — the loop should repeatedly divert epoll_wait")
	}
	if st.Unrecovered != 0 {
		t.Errorf("unrecovered = %d", st.Unrecovered)
	}
	t.Logf("availability-loss loop: %d crashes, %d injections, 0 served (as §VII predicts)",
		st.Crashes, st.Injections)
}
