package core

import (
	"fmt"
	"strings"
)

// EventKind classifies recovery-trace events.
type EventKind int

// Trace event kinds.
const (
	EvHTMAbort EventKind = iota + 1
	EvCrash
	EvRetry
	EvInject
	EvLatchSTM
	EvUnrecovered
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EvHTMAbort:
		return "htm-abort"
	case EvCrash:
		return "crash"
	case EvRetry:
		return "retry"
	case EvInject:
		return "inject"
	case EvLatchSTM:
		return "latch-stm"
	case EvUnrecovered:
		return "unrecovered"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one recovery-relevant occurrence, timestamped in cost-model
// cycles.
type Event struct {
	Cycles int64
	Kind   EventKind
	Site   int
	Call   string // the gate's library function, when known
	Detail string
}

// String renders the event as one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("[%12d] %-11s site=%d", e.Cycles, e.Kind, e.Site)
	if e.Call != "" {
		s += " call=" + e.Call
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// maxTraceEvents bounds the trace buffer (crash storms, §VII).
const maxTraceEvents = 50_000

// EnableTrace turns on recovery-event recording.
func (rt *Runtime) EnableTrace() { rt.tracing = true }

// Trace returns the recorded events.
func (rt *Runtime) Trace() []Event {
	return append([]Event(nil), rt.trace...)
}

// RenderTrace formats the recorded events, one per line.
func (rt *Runtime) RenderTrace() string {
	var sb strings.Builder
	for _, e := range rt.trace {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// emit records a trace event (no-op unless EnableTrace was called).
func (rt *Runtime) emit(kind EventKind, site int, detail string) {
	if !rt.tracing || len(rt.trace) >= maxTraceEvents {
		return
	}
	call := ""
	if s := rt.gates[site]; s != nil {
		call = s.Name
	}
	var cycles int64
	if rt.m != nil {
		cycles = rt.m.Cycles
	}
	rt.trace = append(rt.trace, Event{
		Cycles: cycles,
		Kind:   kind,
		Site:   site,
		Call:   call,
		Detail: detail,
	})
}
