package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/libsim"
	"github.com/firestarter-go/firestarter/internal/obsv"
)

// EventKind classifies recovery-trace events.
type EventKind int

// Trace event kinds.
const (
	EvHTMAbort EventKind = iota + 1
	EvCrash
	EvRetry
	EvInject
	EvLatchSTM
	EvUnrecovered
	EvTxBegin
	EvTxCommit
	EvRecovered
	EvTruncated
	EvShed
	EvReqStart
	EvReqDone
	EvReqLost
	EvLatchDomains
	EvDomainSwitch
	EvDomainDiscard
	EvDomainViolation
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EvHTMAbort:
		return "htm-abort"
	case EvCrash:
		return "crash"
	case EvRetry:
		return "retry"
	case EvInject:
		return "inject"
	case EvLatchSTM:
		return "latch-stm"
	case EvUnrecovered:
		return "unrecovered"
	case EvTxBegin:
		return "begin"
	case EvTxCommit:
		return "commit"
	case EvRecovered:
		return "recovered"
	case EvTruncated:
		return "truncated"
	case EvShed:
		return "shed"
	case EvReqStart:
		return "req-start"
	case EvReqDone:
		return "req-done"
	case EvReqLost:
		return "req-lost"
	case EvLatchDomains:
		return "latch-domains"
	case EvDomainSwitch:
		return "domain-switch"
	case EvDomainDiscard:
		return "domain-discard"
	case EvDomainViolation:
		return "domain-violation"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one recovery-relevant occurrence, timestamped in cost-model
// cycles. It is the flat rendering of a structured span event (Spans).
type Event struct {
	Cycles int64
	Kind   EventKind
	Site   int
	Call   string // the site's library function, when known
	Detail string
}

// String renders the event as one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("[%12d] %-11s site=%d", e.Cycles, e.Kind, e.Site)
	if e.Call != "" {
		s += " call=" + e.Call
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// EnableTrace turns on recovery-event recording (aborts, crashes,
// retries, injections — the events of the old flat trace).
func (rt *Runtime) EnableTrace() { rt.tracing = true }

// EnableSpans turns on full structured span recording: everything
// EnableTrace records plus a begin/commit event for every transaction,
// suitable for JSONL export via WriteTrace.
func (rt *Runtime) EnableSpans() {
	rt.tracing = true
	rt.spanAll = true
}

// Spans returns the recorded structured span events, including the
// terminal truncated marker when the log overflowed.
func (rt *Runtime) Spans() []obsv.SpanEvent { return rt.spans.Events() }

// TraceDropped returns how many events were discarded once the trace
// buffer filled (crash storms past the configured TraceLimit).
func (rt *Runtime) TraceDropped() int64 { return rt.spans.Dropped() }

// SpanFingerprint returns the span log's incremental hash-chain value
// (obsv.FingerprintSeed while empty) — the divergence detector of the
// record/replay layer.
func (rt *Runtime) SpanFingerprint() uint64 { return rt.spans.Fingerprint() }

// WriteTrace writes the recorded spans as JSONL, one event per line.
func (rt *Runtime) WriteTrace(w io.Writer) error { return rt.spans.WriteJSONL(w) }

// flatKind maps a span kind (+ variant) to the flat-trace event kind.
func flatKind(e obsv.SpanEvent) EventKind {
	switch e.Kind {
	case obsv.SpanAbort:
		return EvHTMAbort
	case obsv.SpanCrash:
		return EvCrash
	case obsv.SpanRetry:
		return EvRetry
	case obsv.SpanInject:
		return EvInject
	case obsv.SpanLatchSTM:
		return EvLatchSTM
	case obsv.SpanUnrecovered:
		return EvUnrecovered
	case obsv.SpanBegin:
		return EvTxBegin
	case obsv.SpanCommit:
		return EvTxCommit
	case obsv.SpanRecovered:
		return EvRecovered
	case obsv.SpanShed:
		return EvShed
	case obsv.SpanTruncated:
		return EvTruncated
	case obsv.SpanReqStart:
		return EvReqStart
	case obsv.SpanReqDone:
		return EvReqDone
	case obsv.SpanReqLost:
		return EvReqLost
	case obsv.SpanLatchDomains:
		return EvLatchDomains
	case obsv.SpanDomainSwitch:
		return EvDomainSwitch
	case obsv.SpanDomainDiscard:
		return EvDomainDiscard
	case obsv.SpanDomainViolation:
		return EvDomainViolation
	default:
		return 0
	}
}

// Trace returns the recorded events as the flat rendering of the span
// log. A truncated span log ends with an EvTruncated event whose Detail
// carries the dropped count.
func (rt *Runtime) Trace() []Event {
	spans := rt.spans.Events()
	out := make([]Event, 0, len(spans))
	for _, se := range spans {
		e := Event{
			Cycles: se.Cycles,
			Kind:   flatKind(se),
			Site:   se.Site,
			Call:   se.Call,
			Detail: se.Detail,
		}
		if se.Cause != "" {
			cause := "cause=" + se.Cause
			if e.Detail == "" {
				e.Detail = cause
			} else {
				e.Detail = cause + " " + e.Detail
			}
		}
		out = append(out, e)
	}
	return out
}

// RenderTrace formats the recorded events, one per line.
func (rt *Runtime) RenderTrace() string {
	var sb strings.Builder
	for _, e := range rt.Trace() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// variantName renders a transaction variant for span output.
func variantName(variant int64) string {
	switch variant {
	case ir.TxHTM:
		return "htm"
	case ir.TxSTM:
		return "stm"
	default:
		return ""
	}
}

// emit records a basic trace event (no-op unless EnableTrace was called).
func (rt *Runtime) emit(kind EventKind, site int, detail string) {
	if !rt.tracing {
		return
	}
	var k string
	switch kind {
	case EvHTMAbort:
		k = obsv.SpanAbort
	case EvCrash:
		k = obsv.SpanCrash
	case EvRetry:
		k = obsv.SpanRetry
	case EvInject:
		k = obsv.SpanInject
	case EvLatchSTM:
		k = obsv.SpanLatchSTM
	case EvUnrecovered:
		k = obsv.SpanUnrecovered
	case EvRecovered:
		k = obsv.SpanRecovered
	case EvShed:
		k = obsv.SpanShed
	case EvLatchDomains:
		k = obsv.SpanLatchDomains
	default:
		return
	}
	rt.emitSpan(k, site, "", "", detail)
}

// emitSpan records one structured span event, attaching the trace ID of
// the request currently being served (the serving connection's active
// trace). Recovery-machinery kinds additionally mark that trace as
// touched-by-recovery so the driver can split latency clean vs recovered.
func (rt *Runtime) emitSpan(kind string, site int, variant, cause, detail string) {
	if !rt.tracing {
		return
	}
	var trace int64
	if rt.os != nil {
		trace = rt.os.CurrentTrace()
	}
	if trace != 0 && recoveryKind(kind) {
		rt.markTouched(trace)
	}
	rt.emitSpanTrace(kind, site, trace, variant, cause, detail)
}

// recoveryKind reports whether a span kind marks recovery machinery
// acting on the request (vs the ordinary begin/commit transaction flow).
func recoveryKind(kind string) bool {
	switch kind {
	case obsv.SpanAbort, obsv.SpanCrash, obsv.SpanRetry, obsv.SpanInject,
		obsv.SpanLatchSTM, obsv.SpanRecovered, obsv.SpanUnrecovered, obsv.SpanShed,
		obsv.SpanLatchDomains, obsv.SpanDomainDiscard, obsv.SpanDomainViolation:
		return true
	}
	return false
}

// markTouched records a trace as touched by recovery (no-op for trace 0
// or when tracing is off — the nil-observer fast path allocates nothing).
func (rt *Runtime) markTouched(trace int64) {
	if !rt.tracing || trace == 0 {
		return
	}
	if rt.touched == nil {
		rt.touched = make(map[int64]bool)
	}
	rt.touched[trace] = true
}

// WasTouched reports whether recovery machinery touched the traced
// request. The fleet balancer consults it when it terminates requests on
// behalf of a replica (fail-over, drain) so the clean-vs-recovery
// latency split survives connection migration.
func (rt *Runtime) WasTouched(trace int64) bool { return rt.touched[trace] }

// TouchedTraces returns the recovery-touched trace IDs in ascending
// order. The fleet balancer harvests them when an incarnation dies so
// touch state outlives the runtime that recorded it.
func (rt *Runtime) TouchedTraces() []int64 {
	if len(rt.touched) == 0 {
		return nil
	}
	out := make([]int64, 0, len(rt.touched))
	for tr := range rt.touched {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// emitSpanTrace records one structured span event with an explicit trace
// ID. The call name resolves through rt.gates first and falls back to the
// full site table, so events at embed/break sites carry their
// library-call name too.
func (rt *Runtime) emitSpanTrace(kind string, site int, trace int64, variant, cause, detail string) {
	if !rt.tracing {
		return
	}
	call := ""
	if s := rt.gates[site]; s != nil {
		call = s.Name
	} else if s := rt.sites[site]; s != nil {
		call = s.Name
	}
	var cycles int64
	if rt.m != nil {
		cycles = rt.m.Cycles
	}
	rt.spans.Append(obsv.SpanEvent{
		Cycles:  cycles,
		Thread:  rt.tid,
		Trace:   trace,
		Kind:    kind,
		Site:    site,
		Call:    call,
		Variant: variant,
		Cause:   cause,
		Detail:  detail,
	})
}

// traceStart is the libsim trace-activation hook: the server consumed the
// first bytes of a newly delivered traced request. It charges no cycles
// and, with tracing off, allocates nothing.
func (rt *Runtime) traceStart(trace int64) {
	rt.stats.ReqStarts++
	rt.emitSpanTrace(obsv.SpanReqStart, 0, trace, "", "", "")
}

// TraceHook exposes the activation hook so the scheduler can re-point the
// shared OS at the running thread's runtime on context switch (the same
// pattern as StoreFunc).
func (rt *Runtime) TraceHook() libsim.TraceFunc { return rt.traceStart }

// ReqDone implements workload.TraceSink: the driver validated (ok) or
// rejected (!ok) a response to the traced request. It emits the terminal
// req-done span and reports whether recovery machinery touched the
// request — the driver's clean-vs-recovery latency split.
func (rt *Runtime) ReqDone(trace int64, ok bool) bool {
	rt.stats.ReqsDone++
	detail := "ok"
	if !ok {
		detail = "bad"
	}
	rt.emitSpanTrace(obsv.SpanReqDone, 0, trace, "", "", detail)
	return rt.touched[trace]
}

// ReqLost implements workload.TraceSink: the traced request can never
// complete (connection died mid-request, server died, or the run ended
// with it in flight). Emits the terminal req-lost span.
func (rt *Runtime) ReqLost(trace int64, cause string) {
	rt.stats.ReqsLost++
	rt.emitSpanTrace(obsv.SpanReqLost, 0, trace, "", cause, "")
}
