package core

import (
	"fmt"
	"io"
	"strings"

	"github.com/firestarter-go/firestarter/internal/ir"
	"github.com/firestarter-go/firestarter/internal/obsv"
)

// EventKind classifies recovery-trace events.
type EventKind int

// Trace event kinds.
const (
	EvHTMAbort EventKind = iota + 1
	EvCrash
	EvRetry
	EvInject
	EvLatchSTM
	EvUnrecovered
	EvTxBegin
	EvTxCommit
	EvRecovered
	EvTruncated
	EvShed
)

// String returns the event name.
func (k EventKind) String() string {
	switch k {
	case EvHTMAbort:
		return "htm-abort"
	case EvCrash:
		return "crash"
	case EvRetry:
		return "retry"
	case EvInject:
		return "inject"
	case EvLatchSTM:
		return "latch-stm"
	case EvUnrecovered:
		return "unrecovered"
	case EvTxBegin:
		return "begin"
	case EvTxCommit:
		return "commit"
	case EvRecovered:
		return "recovered"
	case EvTruncated:
		return "truncated"
	case EvShed:
		return "shed"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one recovery-relevant occurrence, timestamped in cost-model
// cycles. It is the flat rendering of a structured span event (Spans).
type Event struct {
	Cycles int64
	Kind   EventKind
	Site   int
	Call   string // the site's library function, when known
	Detail string
}

// String renders the event as one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("[%12d] %-11s site=%d", e.Cycles, e.Kind, e.Site)
	if e.Call != "" {
		s += " call=" + e.Call
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// EnableTrace turns on recovery-event recording (aborts, crashes,
// retries, injections — the events of the old flat trace).
func (rt *Runtime) EnableTrace() { rt.tracing = true }

// EnableSpans turns on full structured span recording: everything
// EnableTrace records plus a begin/commit event for every transaction,
// suitable for JSONL export via WriteTrace.
func (rt *Runtime) EnableSpans() {
	rt.tracing = true
	rt.spanAll = true
}

// Spans returns the recorded structured span events, including the
// terminal truncated marker when the log overflowed.
func (rt *Runtime) Spans() []obsv.SpanEvent { return rt.spans.Events() }

// TraceDropped returns how many events were discarded once the trace
// buffer filled (crash storms past the configured TraceLimit).
func (rt *Runtime) TraceDropped() int64 { return rt.spans.Dropped() }

// WriteTrace writes the recorded spans as JSONL, one event per line.
func (rt *Runtime) WriteTrace(w io.Writer) error { return rt.spans.WriteJSONL(w) }

// flatKind maps a span kind (+ variant) to the flat-trace event kind.
func flatKind(e obsv.SpanEvent) EventKind {
	switch e.Kind {
	case obsv.SpanAbort:
		return EvHTMAbort
	case obsv.SpanCrash:
		return EvCrash
	case obsv.SpanRetry:
		return EvRetry
	case obsv.SpanInject:
		return EvInject
	case obsv.SpanLatchSTM:
		return EvLatchSTM
	case obsv.SpanUnrecovered:
		return EvUnrecovered
	case obsv.SpanBegin:
		return EvTxBegin
	case obsv.SpanCommit:
		return EvTxCommit
	case obsv.SpanRecovered:
		return EvRecovered
	case obsv.SpanShed:
		return EvShed
	case obsv.SpanTruncated:
		return EvTruncated
	default:
		return 0
	}
}

// Trace returns the recorded events as the flat rendering of the span
// log. A truncated span log ends with an EvTruncated event whose Detail
// carries the dropped count.
func (rt *Runtime) Trace() []Event {
	spans := rt.spans.Events()
	out := make([]Event, 0, len(spans))
	for _, se := range spans {
		e := Event{
			Cycles: se.Cycles,
			Kind:   flatKind(se),
			Site:   se.Site,
			Call:   se.Call,
			Detail: se.Detail,
		}
		if se.Cause != "" {
			cause := "cause=" + se.Cause
			if e.Detail == "" {
				e.Detail = cause
			} else {
				e.Detail = cause + " " + e.Detail
			}
		}
		out = append(out, e)
	}
	return out
}

// RenderTrace formats the recorded events, one per line.
func (rt *Runtime) RenderTrace() string {
	var sb strings.Builder
	for _, e := range rt.Trace() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// variantName renders a transaction variant for span output.
func variantName(variant int64) string {
	switch variant {
	case ir.TxHTM:
		return "htm"
	case ir.TxSTM:
		return "stm"
	default:
		return ""
	}
}

// emit records a basic trace event (no-op unless EnableTrace was called).
func (rt *Runtime) emit(kind EventKind, site int, detail string) {
	if !rt.tracing {
		return
	}
	var k string
	switch kind {
	case EvHTMAbort:
		k = obsv.SpanAbort
	case EvCrash:
		k = obsv.SpanCrash
	case EvRetry:
		k = obsv.SpanRetry
	case EvInject:
		k = obsv.SpanInject
	case EvLatchSTM:
		k = obsv.SpanLatchSTM
	case EvUnrecovered:
		k = obsv.SpanUnrecovered
	case EvRecovered:
		k = obsv.SpanRecovered
	case EvShed:
		k = obsv.SpanShed
	default:
		return
	}
	rt.emitSpan(k, site, "", "", detail)
}

// emitSpan records one structured span event. The call name resolves
// through rt.gates first and falls back to the full site table, so events
// at embed/break sites carry their library-call name too.
func (rt *Runtime) emitSpan(kind string, site int, variant, cause, detail string) {
	if !rt.tracing {
		return
	}
	call := ""
	if s := rt.gates[site]; s != nil {
		call = s.Name
	} else if s := rt.sites[site]; s != nil {
		call = s.Name
	}
	var cycles int64
	if rt.m != nil {
		cycles = rt.m.Cycles
	}
	rt.spans.Append(obsv.SpanEvent{
		Cycles:  cycles,
		Thread:  rt.tid,
		Kind:    kind,
		Site:    site,
		Call:    call,
		Variant: variant,
		Cause:   cause,
		Detail:  detail,
	})
}
