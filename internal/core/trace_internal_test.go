package core

import (
	"testing"

	"github.com/firestarter-go/firestarter/internal/analysis"
)

// TestStatsSnapshotDoesNotAliasSiteMaps is the regression test for the
// snapshot-aliasing bug: Stats() deep-copied the sample slices but
// returned the live GateSites/EmbedSites/BreakSites maps, so snapshots
// mutated under the caller as the runtime kept executing.
func TestStatsSnapshotDoesNotAliasSiteMaps(t *testing.T) {
	rt := &Runtime{}
	rt.stats.GateSites = map[int]bool{1: true}
	rt.stats.EmbedSites = map[int]bool{2: true}
	rt.stats.BreakSites = map[int]bool{3: true}

	snap := rt.Stats()

	// The runtime keeps executing after the snapshot.
	rt.stats.GateSites[10] = true
	rt.stats.EmbedSites[20] = true
	rt.stats.BreakSites[30] = true
	delete(rt.stats.GateSites, 1)

	if len(snap.GateSites) != 1 || !snap.GateSites[1] {
		t.Errorf("snapshot GateSites mutated: %v", snap.GateSites)
	}
	if len(snap.EmbedSites) != 1 || !snap.EmbedSites[2] {
		t.Errorf("snapshot EmbedSites mutated: %v", snap.EmbedSites)
	}
	if len(snap.BreakSites) != 1 || !snap.BreakSites[3] {
		t.Errorf("snapshot BreakSites mutated: %v", snap.BreakSites)
	}
	// And mutating the snapshot must not leak back.
	snap.EmbedSites[99] = true
	if rt.stats.EmbedSites[99] {
		t.Error("mutating the snapshot wrote through to the runtime")
	}
}

// TestEmitResolvesNonGateSiteNames is the regression test for the trace
// call-name bug: emit resolved the Call field only through rt.gates, so
// events at embed/break sites rendered with an empty call=.
func TestEmitResolvesNonGateSiteNames(t *testing.T) {
	rt := &Runtime{
		gates: map[int]*analysis.Site{
			1: {ID: 1, Name: "malloc"},
		},
		sites: map[int]*analysis.Site{
			1: {ID: 1, Name: "malloc"},
			2: {ID: 2, Name: "memcpy", Role: analysis.RoleEmbed},
			3: {ID: 3, Name: "write", Role: analysis.RoleBreak},
		},
	}
	rt.EnableTrace()
	rt.emit(EvCrash, 2, "")
	rt.emit(EvUnrecovered, 3, "")
	rt.emit(EvInject, 1, "")

	events := rt.Trace()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	want := []string{"memcpy", "write", "malloc"}
	for i, e := range events {
		if e.Call != want[i] {
			t.Errorf("event %d (site %d) call = %q, want %q", i, e.Site, e.Call, want[i])
		}
	}
}
